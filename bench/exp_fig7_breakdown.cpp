// Fig. 7: breakdown of time spent in the four main motifs (GS, Ortho, SpMV,
// Restr) for mxp and double runs, at 1 node and at full-system scale.
// Paper observations: GS dominates, mxp spends a smaller share in Ortho
// than double (Ortho benefits most from fp32), and at 9408 nodes Ortho's
// share grows (all-reduce synchronization).
#include "exhibit_common.hpp"

namespace {

void print_breakdown(const char* label, const hpgmx::PhaseResult& phase) {
  using namespace hpgmx;
  const Motif motifs[] = {Motif::GS, Motif::Ortho, Motif::SpMV,
                          Motif::Restrict};
  double main4 = 0;
  for (const Motif m : motifs) {
    main4 += phase.stats.seconds(m);
  }
  std::printf("%-14s", label);
  for (const Motif m : motifs) {
    std::printf(" %s %5.1f%%", std::string(motif_name(m)).c_str(),
                main4 > 0 ? phase.stats.seconds(m) / main4 * 100 : 0.0);
  }
  std::printf("   (4-motif share of total: %.0f%%)\n",
              phase.stats.total_seconds() > 0
                  ? main4 / phase.stats.total_seconds() * 100
                  : 0.0);
}

}  // namespace

int main() {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/0.8);
  banner("EXP fig7 motif time breakdown (paper Fig. 7)",
         "GS dominates; mxp's Ortho share < double's; Ortho share grows "
         "with scale (all-reduce sync)");

  const int small_ranks = cfg.ranks;
  const int large_ranks = static_cast<int>(env_int_or("HPGMX_RANKS_LARGE", 8));
  for (const int ranks : {small_ranks, large_ranks}) {
    BenchParams p = cfg.params;
    if (ranks > 1) {
      // Keep the total work affordable when time-sharing 8 virtual ranks.
      p.nx = p.ny = p.nz = std::max<local_index_t>(16, cfg.params.nx / 2);
    }
    BenchmarkDriver driver(p, ranks);
    const PhaseResult mxp = driver.run_phase(true);
    const PhaseResult dbl = driver.run_phase(false);
    std::printf("\n-- %d rank(s), local %d^3 --\n", ranks, p.nx);
    print_breakdown("mxp", mxp);
    print_breakdown("double", dbl);
  }
  std::printf(
      "\npaper Fig. 7 (qualitative): at 1 node GS ~50-60%%, Ortho ~20-25%%\n"
      "(double) vs ~15-20%% (mxp), SpMV ~15%%, Restr <10%%; at 9408 nodes\n"
      "Ortho's share grows for both. Check: mxp Ortho share < double Ortho\n"
      "share, GS largest bucket.\n");
  return 0;
}
