// Fig. 7: breakdown of time spent in the four main motifs (GS, Ortho, SpMV,
// Restr) for mxp and double runs, at 1 node and at full-system scale.
// Paper observations: GS dominates, mxp spends a smaller share in Ortho
// than double (Ortho benefits most from fp32), and at 9408 nodes Ortho's
// share grows (all-reduce synchronization).
//
//   $ ./exp_fig7_breakdown [--json]   # --json: machine-readable report
#include "exhibit_common.hpp"

namespace {

constexpr hpgmx::Motif kMotifs[] = {hpgmx::Motif::GS, hpgmx::Motif::Ortho,
                                    hpgmx::Motif::SpMV,
                                    hpgmx::Motif::Restrict};

void print_breakdown(const char* label, const hpgmx::PhaseResult& phase) {
  using namespace hpgmx;
  double main4 = 0;
  for (const Motif m : kMotifs) {
    main4 += phase.stats.seconds(m);
  }
  std::printf("%-14s", label);
  for (const Motif m : kMotifs) {
    std::printf(" %s %5.1f%%", std::string(motif_name(m)).c_str(),
                main4 > 0 ? phase.stats.seconds(m) / main4 * 100 : 0.0);
  }
  std::printf("   (4-motif share of total: %.0f%%)\n",
              phase.stats.total_seconds() > 0
                  ? main4 / phase.stats.total_seconds() * 100
                  : 0.0);
}

void print_breakdown_json(const char* label, const hpgmx::PhaseResult& phase,
                          bool last) {
  using namespace hpgmx;
  double main4 = 0;
  for (const Motif m : kMotifs) {
    main4 += phase.stats.seconds(m);
  }
  std::printf("       {\"phase\": \"%s\", \"four_motif_share\": %.6g", label,
              phase.stats.total_seconds() > 0
                  ? main4 / phase.stats.total_seconds()
                  : 0.0);
  for (const Motif m : kMotifs) {
    std::printf(", \"%s\": %.6g", std::string(motif_name(m)).c_str(),
                main4 > 0 ? phase.stats.seconds(m) / main4 : 0.0);
  }
  std::printf("}%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/0.8);
  if (!json) {
    banner("EXP fig7 motif time breakdown (paper Fig. 7)",
           "GS dominates; mxp's Ortho share < double's; Ortho share grows "
           "with scale (all-reduce sync)");
  } else {
    std::printf("{\n  \"exhibit\": \"fig7_motif_breakdown\",\n");
    std::printf("  \"runs\": [\n");
  }

  const int small_ranks = cfg.ranks;
  const int large_ranks = static_cast<int>(env_int_or("HPGMX_RANKS_LARGE", 8));
  const int rank_sweep[] = {small_ranks, large_ranks};
  for (std::size_t ri = 0; ri < std::size(rank_sweep); ++ri) {
    const int ranks = rank_sweep[ri];
    BenchParams p = cfg.params;
    if (ranks > 1) {
      // Keep the total work affordable when time-sharing 8 virtual ranks.
      p.nx = p.ny = p.nz = std::max<local_index_t>(16, cfg.params.nx / 2);
    }
    BenchmarkDriver driver(p, ranks);
    const PhaseResult mxp = driver.run_phase(true);
    const PhaseResult dbl = driver.run_phase(false);
    if (json) {
      std::printf("    {\"ranks\": %d, \"local_n\": %d, \"phases\": [\n",
                  ranks, p.nx);
      print_breakdown_json("mxp", mxp, /*last=*/false);
      print_breakdown_json("double", dbl, /*last=*/true);
      std::printf("    ]}%s\n", ri + 1 < std::size(rank_sweep) ? "," : "");
    } else {
      std::printf("\n-- %d rank(s), local %d^3 --\n", ranks, p.nx);
      print_breakdown("mxp", mxp);
      print_breakdown("double", dbl);
    }
  }
  if (json) {
    std::printf("  ]\n}\n");
    return 0;
  }
  std::printf(
      "\npaper Fig. 7 (qualitative): at 1 node GS ~50-60%%, Ortho ~20-25%%\n"
      "(double) vs ~15-20%% (mxp), SpMV ~15%%, Restr <10%%; at 9408 nodes\n"
      "Ortho's share grows for both. Check: mxp Ortho share < double Ortho\n"
      "share, GS largest bucket.\n");
  return 0;
}
