// Precision sweep: GMRES-IR with inner storage in fp32, bf16, and fp16 in
// one invocation — the sub-32-bit territory the paper's memory-wall thesis
// points at (speed is bought by shrinking bytes-per-value).
//
// For every format the exhibit reports the modeled SpMV bytes/row (strictly
// decreasing from fp32 to the 16-bit formats), the validation penalty
// n_d/n_ir that charges any convergence loss back against the throughput,
// and the resulting penalized GFLOP/s next to the all-double baseline.
//
//   $ ./exp_precision_sweep [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format) instead of the human table.
#include <cstring>
#include <string>
#include <vector>

#include "exhibit_common.hpp"
#include "precision/precision.hpp"

namespace {

using namespace hpgmx;

struct FormatRow {
  Precision precision = Precision::Fp32;
  std::size_t bytes_per_value = 0;
  double spmv_bytes_per_row = 0;
  ValidationResult validation;
  PhaseResult phase;

  [[nodiscard]] double penalized_gflops() const {
    return phase.raw_gflops * validation.penalty();
  }
};

void print_json(const bench::ExhibitConfig& cfg, const PhaseResult& dbl,
                const std::vector<FormatRow>& rows) {
  std::printf("{\n");
  std::printf("  \"exhibit\": \"precision_sweep\",\n");
  std::printf("  \"ranks\": %d,\n", cfg.ranks);
  std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
              cfg.params.ny, cfg.params.nz);
  std::printf("  \"double_gflops\": %.6g,\n", dbl.raw_gflops);
  std::printf("  \"formats\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FormatRow& r = rows[i];
    std::printf("    {\"name\": \"%s\", \"bytes_per_value\": %zu, "
                "\"spmv_bytes_per_row\": %.6g, \"n_d\": %d, \"n_ir\": %d, "
                "\"penalty\": %.6g, \"ir_converged\": %s, "
                "\"raw_gflops\": %.6g, \"penalized_gflops\": %.6g, "
                "\"speedup_vs_double\": %.6g}%s\n",
                std::string(precision_name(r.precision)).c_str(),
                r.bytes_per_value, r.spmv_bytes_per_row, r.validation.n_d,
                r.validation.n_ir, r.validation.penalty(),
                r.validation.ir_converged ? "true" : "false",
                r.phase.raw_gflops, r.penalized_gflops(),
                dbl.raw_gflops > 0 ? r.penalized_gflops() / dbl.raw_gflops : 0.0,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }

  const auto cfg = bench::ExhibitConfig::from_env(/*default_n=*/16,
                                                  /*default_ranks=*/2,
                                                  /*default_seconds=*/0.3);
  if (!json) {
    bench::banner("exp_precision_sweep: GMRES-IR inner storage format sweep",
                  "fp32 is the paper's mxp column; bf16/fp16 halve its "
                  "bytes/value again (HPL-MxP-style sub-32-bit formats)");
  }

  // The modeled streaming cost of one SpMV row per format (27-pt stencil).
  ProblemParams pp;
  pp.nx = cfg.params.nx;
  pp.ny = cfg.params.ny;
  pp.nz = cfg.params.nz;
  pp.gamma = cfg.params.gamma;
  const Problem prob =
      generate_problem(ProcessGrid::create(cfg.ranks), 0, pp);
  const std::int64_t nnz = prob.a.nnz();
  const local_index_t nrows = prob.a.num_rows;

  BenchmarkDriver driver(cfg.params, cfg.ranks);
  const PhaseResult dbl = driver.run_phase(/*mixed=*/false);

  const Precision sweep[] = {Precision::Fp32, Precision::Bf16,
                             Precision::Fp16};
  std::vector<FormatRow> rows;
  for (const Precision p : sweep) {
    driver.set_inner_precision(p);
    FormatRow row;
    row.precision = p;
    dispatch_precision(p, [&](auto tag) {
      using TLow = typename decltype(tag)::type;
      row.bytes_per_value = PrecisionTraits<TLow>::bytes;
      row.spmv_bytes_per_row =
          spmv_bytes<TLow>(nnz, nrows) / static_cast<double>(nrows);
    });
    row.validation = driver.run_validation(ValidationMode::Standard);
    row.phase = driver.run_phase(/*mixed=*/true);
    rows.push_back(row);
  }

  if (json) {
    print_json(cfg, dbl, rows);
  } else {
    std::printf("double baseline: %.2f GF/s (raw)\n\n", dbl.raw_gflops);
    std::printf("%-6s %9s %14s %6s %6s %8s %9s %10s %8s\n", "fmt", "B/value",
                "SpMV B/row", "n_d", "n_ir", "penalty", "raw GF/s",
                "penal GF/s", "vs fp64");
    for (const FormatRow& r : rows) {
      std::printf("%-6s %9zu %14.1f %6d %6d %8.3f %9.2f %10.2f %7.2fx\n",
                  std::string(precision_name(r.precision)).c_str(),
                  r.bytes_per_value, r.spmv_bytes_per_row, r.validation.n_d,
                  r.validation.n_ir, r.validation.penalty(),
                  r.phase.raw_gflops, r.penalized_gflops(),
                  dbl.raw_gflops > 0 ? r.penalized_gflops() / dbl.raw_gflops
                                     : 0.0);
    }
    std::printf("\nmodeled SpMV traffic: fp32 %.1f -> bf16 %.1f -> fp16 %.1f "
                "bytes/row (%s)\n",
                rows[0].spmv_bytes_per_row, rows[1].spmv_bytes_per_row,
                rows[2].spmv_bytes_per_row,
                rows[0].spmv_bytes_per_row > rows[1].spmv_bytes_per_row &&
                        rows[0].spmv_bytes_per_row > rows[2].spmv_bytes_per_row
                    ? "strictly decreasing, as the memory-wall argument "
                      "requires"
                    : "NOT decreasing — bytes model regression");
    std::printf("paper: Fig. 6 sweeps the validation penalty against "
                "throughput; HPL-MxP motivates the 16-bit formats\n");
  }

  // The sweep is a smoke-tested exhibit: fail loudly if a 16-bit format
  // stopped converging or the bytes model stopped crediting narrower values.
  bool ok = rows[0].spmv_bytes_per_row > rows[1].spmv_bytes_per_row &&
            rows[0].spmv_bytes_per_row > rows[2].spmv_bytes_per_row;
  for (const FormatRow& r : rows) {
    ok = ok && r.validation.ir_converged;
  }
  return ok ? 0 : 1;
}
