// Precision sweep: GMRES-IR with inner storage in fp32, bf16, and fp16 in
// one invocation — the sub-32-bit territory the paper's memory-wall thesis
// points at (speed is bought by shrinking bytes-per-value) — plus a
// progressive-precision *schedule* sweep, where each multigrid level keeps
// its own format (fp32 fine level, 16-bit coarse levels).
//
// For every uniform format the exhibit reports the modeled SpMV bytes/row
// (strictly decreasing from fp32 to the 16-bit formats), the validation
// penalty n_d/n_ir that charges any convergence loss back against the
// throughput, and the resulting penalized GFLOP/s next to the all-double
// baseline. For every schedule it reports the modeled SpMV + V-cycle
// bytes per fine row from the per-level traffic model — the progressive
// schedules must land strictly below uniform fp32 while the outer solve
// still reaches the 1e-9 double target.
//
//   $ ./exp_precision_sweep [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format) instead of the human table.
// HPGMX_PRECISION_SCHEDULE adds one extra user-chosen schedule to the sweep.
#include <string>
#include <vector>

#include "exhibit_common.hpp"
#include "precision/precision.hpp"
#include "sparse/ell.hpp"

namespace {

using namespace hpgmx;

struct FormatRow {
  Precision precision = Precision::Fp32;
  std::size_t bytes_per_value = 0;
  double spmv_bytes_per_row = 0;
  ValidationResult validation;
  PhaseResult phase;

  [[nodiscard]] double penalized_gflops() const {
    return phase.raw_gflops * validation.penalty();
  }
};

struct ScheduleRow {
  PrecisionSchedule schedule;
  double spmv_mg_bytes_per_row = 0;  ///< modeled SpMV + V-cycle, per fine row
  ValidationResult validation;
  PhaseResult phase;

  [[nodiscard]] double penalized_gflops() const {
    return phase.raw_gflops * validation.penalty();
  }
};

void print_json(const bench::ExhibitConfig& cfg, const PhaseResult& dbl,
                const std::vector<FormatRow>& rows,
                const std::vector<ScheduleRow>& schedules) {
  std::printf("{\n");
  std::printf("  \"exhibit\": \"precision_sweep\",\n");
  std::printf("  \"ranks\": %d,\n", cfg.ranks);
  std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
              cfg.params.ny, cfg.params.nz);
  std::printf("  \"double_gflops\": %.6g,\n", dbl.raw_gflops);
  std::printf("  \"formats\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FormatRow& r = rows[i];
    std::printf("    {\"name\": \"%s\", \"bytes_per_value\": %zu, "
                "\"spmv_bytes_per_row\": %.6g, \"n_d\": %d, \"n_ir\": %d, "
                "\"penalty\": %.6g, \"ir_converged\": %s, "
                "\"raw_gflops\": %.6g, \"penalized_gflops\": %.6g, "
                "\"speedup_vs_double\": %.6g}%s\n",
                std::string(precision_name(r.precision)).c_str(),
                r.bytes_per_value, r.spmv_bytes_per_row, r.validation.n_d,
                r.validation.n_ir, r.validation.penalty(),
                r.validation.ir_converged ? "true" : "false",
                r.phase.raw_gflops, r.penalized_gflops(),
                dbl.raw_gflops > 0 ? r.penalized_gflops() / dbl.raw_gflops : 0.0,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"schedules\": [\n");
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const ScheduleRow& s = schedules[i];
    std::printf("    {\"schedule\": \"%s\", \"spmv_mg_bytes_per_row\": %.6g, "
                "\"n_d\": %d, \"n_ir\": %d, \"penalty\": %.6g, "
                "\"ir_converged\": %s, \"raw_gflops\": %.6g, "
                "\"penalized_gflops\": %.6g, \"speedup_vs_double\": %.6g}%s\n",
                s.schedule.to_string().c_str(), s.spmv_mg_bytes_per_row,
                s.validation.n_d, s.validation.n_ir, s.validation.penalty(),
                s.validation.ir_converged ? "true" : "false",
                s.phase.raw_gflops, s.penalized_gflops(),
                dbl.raw_gflops > 0 ? s.penalized_gflops() / dbl.raw_gflops
                                   : 0.0,
                i + 1 < schedules.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::has_flag(argc, argv, "--json");

  const auto cfg = bench::ExhibitConfig::from_env(/*default_n=*/16,
                                                  /*default_ranks=*/2,
                                                  /*default_seconds=*/0.3);
  if (!json) {
    bench::banner("exp_precision_sweep: GMRES-IR inner storage format sweep",
                  "fp32 is the paper's mxp column; bf16/fp16 halve its "
                  "bytes/value again (HPL-MxP-style sub-32-bit formats); "
                  "per-level schedules narrow only the coarse V-cycle levels");
  }

  // The modeled streaming cost per format (27-pt stencil): fine-level SpMV
  // for the uniform rows, SpMV + full V-cycle for the schedule rows.
  ProblemParams pp;
  pp.nx = cfg.params.nx;
  pp.ny = cfg.params.ny;
  pp.nz = cfg.params.nz;
  pp.gamma = cfg.params.gamma;
  const ProblemHierarchy hier =
      build_hierarchy(generate_problem(ProcessGrid::create(cfg.ranks), 0, pp),
                      cfg.params.mg_levels, cfg.params.coloring_seed);
  const std::int64_t nnz = hier.levels[0].a.nnz();
  const local_index_t nrows = hier.levels[0].a.num_rows;
  const int nlevels = static_cast<int>(hier.levels.size());
  const std::vector<MgLevelDims> dims = hierarchy_level_dims(hier);

  // Column-index width each level's ELL kernels actually stream under the
  // configured HPGMX_IDX (Auto compresses to 16-bit deltas per level when
  // that level's column window permits) — the model must charge what the
  // runtime layout moves.
  std::vector<std::size_t> index_bytes(static_cast<std::size_t>(nlevels));
  for (int l = 0; l < nlevels; ++l) {
    const bool idx16 =
        cfg.params.index_width != IndexWidth::Idx32 &&
        ell_idx16_feasible(hier.levels[static_cast<std::size_t>(l)].a);
    index_bytes[static_cast<std::size_t>(l)] =
        idx16 ? kIndexBytes16 : kIndexBytes32;
  }

  // Modeled SpMV + V-cycle bytes per fine row under a per-level schedule
  // (empty = uniform `fmt`).
  const auto spmv_mg_bytes_per_row = [&](const PrecisionSchedule& schedule,
                                         Precision fmt) {
    const std::vector<std::size_t> widths =
        schedule_value_bytes(schedule, nlevels, fmt);
    const double total =
        spmv_bytes(nnz, nrows, widths[0], index_bytes[0]) +
        mg_vcycle_bytes(std::span<const MgLevelDims>(dims.data(), dims.size()),
                        std::span<const std::size_t>(widths.data(),
                                                     widths.size()),
                        cfg.params.pre_smooth_sweeps,
                        cfg.params.post_smooth_sweeps,
                        cfg.params.coarse_sweeps,
                        std::span<const std::size_t>(index_bytes.data(),
                                                     index_bytes.size()));
    return total / static_cast<double>(nrows);
  };

  BenchmarkDriver driver(cfg.params, cfg.ranks);
  const PhaseResult dbl = driver.run_phase(/*mixed=*/false);

  const Precision sweep[] = {Precision::Fp32, Precision::Bf16,
                             Precision::Fp16};
  std::vector<FormatRow> rows;
  for (const Precision p : sweep) {
    driver.set_inner_precision(p);
    FormatRow row;
    row.precision = p;
    row.bytes_per_value = precision_bytes(p);
    row.spmv_bytes_per_row =
        spmv_bytes(nnz, nrows, precision_bytes(p), index_bytes[0]) /
        static_cast<double>(nrows);
    row.validation = driver.run_validation(ValidationMode::Standard);
    row.phase = driver.run_phase(/*mixed=*/true);
    rows.push_back(row);
  }

  // --- progressive-precision schedule sweep -------------------------------
  // Uniform fp32 is the baseline the memory-wall argument must beat; the
  // progressive schedules narrow only the coarse levels, keeping the fine
  // level (and hence the Krylov basis) at fp32 accuracy.
  std::vector<PrecisionSchedule> schedules;
  schedules.push_back(*parse_precision_schedule("fp32"));
  schedules.push_back(*parse_precision_schedule("fp32,bf16,bf16"));
  schedules.push_back(*parse_precision_schedule("fp32,bf16,bf16,fp16"));
  // The exhibit's own progressive rows above must beat uniform fp32 on
  // modeled bytes (exit-code enforced); a user-supplied schedule rides
  // along for measurement only — it may legitimately widen formats.
  const std::size_t built_in_rows = schedules.size();
  const PrecisionSchedule env_schedule =
      schedule_from_env("HPGMX_PRECISION_SCHEDULE");
  if (!env_schedule.empty()) {
    bool already = false;
    for (const PrecisionSchedule& s : schedules) {
      already = already || s.to_string() == env_schedule.to_string();
    }
    if (!already) {
      schedules.push_back(env_schedule);
    }
  }

  std::vector<ScheduleRow> schedule_rows;
  for (const PrecisionSchedule& s : schedules) {
    ScheduleRow row;
    row.schedule = s;
    row.spmv_mg_bytes_per_row = spmv_mg_bytes_per_row(s, s.entry());
    if (s.to_string() == "fp32") {
      // Uniform fp32 is exactly the configuration the format sweep above
      // already measured — reuse its validation and timed phase.
      row.validation = rows[0].validation;
      row.phase = rows[0].phase;
    } else {
      driver.set_precision_schedule(s);
      row.validation = driver.run_validation(ValidationMode::Standard);
      row.phase = driver.run_phase(/*mixed=*/true);
    }
    schedule_rows.push_back(row);
  }

  if (json) {
    print_json(cfg, dbl, rows, schedule_rows);
  } else {
    std::printf("double baseline: %.2f GF/s (raw)\n\n", dbl.raw_gflops);
    std::printf("%-6s %9s %14s %6s %6s %8s %9s %10s %8s\n", "fmt", "B/value",
                "SpMV B/row", "n_d", "n_ir", "penalty", "raw GF/s",
                "penal GF/s", "vs fp64");
    for (const FormatRow& r : rows) {
      std::printf("%-6s %9zu %14.1f %6d %6d %8.3f %9.2f %10.2f %7.2fx\n",
                  std::string(precision_name(r.precision)).c_str(),
                  r.bytes_per_value, r.spmv_bytes_per_row, r.validation.n_d,
                  r.validation.n_ir, r.validation.penalty(),
                  r.phase.raw_gflops, r.penalized_gflops(),
                  dbl.raw_gflops > 0 ? r.penalized_gflops() / dbl.raw_gflops
                                     : 0.0);
    }
    std::printf("\nmodeled SpMV traffic: fp32 %.1f -> bf16 %.1f -> fp16 %.1f "
                "bytes/row (%s)\n",
                rows[0].spmv_bytes_per_row, rows[1].spmv_bytes_per_row,
                rows[2].spmv_bytes_per_row,
                rows[0].spmv_bytes_per_row > rows[1].spmv_bytes_per_row &&
                        rows[0].spmv_bytes_per_row > rows[2].spmv_bytes_per_row
                    ? "strictly decreasing, as the memory-wall argument "
                      "requires"
                    : "NOT decreasing — bytes model regression");
    std::printf("\nprogressive-precision schedules (%d MG levels; "
                "SpMV+V-cycle bytes per fine row):\n",
                nlevels);
    std::printf("%-22s %16s %6s %6s %8s %9s %10s\n", "schedule",
                "SpMV+MG B/row", "n_d", "n_ir", "penalty", "raw GF/s",
                "penal GF/s");
    for (const ScheduleRow& s : schedule_rows) {
      std::printf("%-22s %16.1f %6d %6d %8.3f %9.2f %10.2f\n",
                  s.schedule.to_string().c_str(), s.spmv_mg_bytes_per_row,
                  s.validation.n_d, s.validation.n_ir, s.validation.penalty(),
                  s.phase.raw_gflops, s.penalized_gflops());
    }
    std::printf("\npaper: Fig. 6 sweeps the validation penalty against "
                "throughput; HPL-MxP motivates the 16-bit formats; Carson's "
                "balancing argument motivates per-level schedules\n");
  }

  // The sweep is a smoke-tested exhibit: fail loudly if a 16-bit format
  // stopped converging, the bytes model stopped crediting narrower values,
  // or one of the exhibit's own progressive schedules stopped beating
  // uniform fp32 on modeled traffic while converging to the same 1e-9
  // outer target. The user's HPGMX_PRECISION_SCHEDULE row must converge
  // but is exempt from the bytes comparison (it may legitimately widen).
  bool ok = rows[0].spmv_bytes_per_row > rows[1].spmv_bytes_per_row &&
            rows[0].spmv_bytes_per_row > rows[2].spmv_bytes_per_row;
  for (const FormatRow& r : rows) {
    ok = ok && r.validation.ir_converged;
  }
  for (std::size_t i = 0; i < schedule_rows.size(); ++i) {
    const ScheduleRow& s = schedule_rows[i];
    ok = ok && s.validation.ir_converged;
    ok = ok && (i >= built_in_rows || s.schedule.uniform() ||
                s.spmv_mg_bytes_per_row <
                    schedule_rows[0].spmv_mg_bytes_per_row);
  }
  return ok ? 0 : 1;
}
