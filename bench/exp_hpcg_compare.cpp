// §4.1 comparison: the paper reports 17.23 PF for HPG-MxP (mxp) on 9408
// nodes vs 10.4 PF for HPCG on the same machine — different solvers, so
// the numbers are indicative, not directly comparable (the paper says so).
//
// Reproduction: run our HPCG-style CG (symmetric-GS multigrid) and the
// HPG-MxP GMRES-IR benchmark on the same problem and report both model
// GFLOP/s figures and their ratio.
//
//   $ ./exp_hpcg_compare [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format shared by every exhibit).
#include "core/cg.hpp"
#include "exhibit_common.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/0.8);
  if (!json) {
    banner("EXP hpcg-compare (paper §4.1)",
           "full-system HPG-MxP mxp 17.23 PF vs HPCG 10.4 PF (ratio 1.66, "
           "not directly comparable)");
  }

  // HPG-MxP mxp phase.
  BenchmarkDriver driver(cfg.params, cfg.ranks);
  const PhaseResult mxp = driver.run_phase(/*mixed=*/true);

  // HPCG-style run: fixed-iteration CG with symmetric-GS multigrid, double.
  ProblemParams pp;
  pp.nx = cfg.params.nx;
  pp.ny = cfg.params.ny;
  pp.nz = cfg.params.nz;
  const ProblemHierarchy h =
      build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                      cfg.params.mg_levels, cfg.params.coloring_seed);
  SelfComm comm;
  SymmetricMultigrid<double> mg(h, cfg.params);
  SolverOptions opts;
  opts.max_iters = cfg.params.max_iters_per_solve;
  opts.tol = 0.0;
  ConjugateGradient<double> cg(&mg.level_op(0), &mg, opts);
  MotifStats cg_stats;
  cg.set_stats(&cg_stats);

  WallTimer timer;
  int cg_iters = 0;
  while (timer.seconds() < cfg.params.bench_seconds) {
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    const SolveResult res = cg.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    cg_iters += res.iterations;
  }
  const double cg_gflops =
      static_cast<double>(cg_stats.total_flops()) / timer.seconds() * 1e-9;
  const double ratio = cg_gflops > 0 ? mxp.raw_gflops / cg_gflops : 0.0;

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"hpcg_compare\",\n");
    std::printf("  \"ranks\": %d,\n", cfg.ranks);
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"mxp_gflops\": %.6g,\n", mxp.raw_gflops);
    std::printf("  \"mxp_iterations\": %d,\n", mxp.iterations);
    std::printf("  \"hpcg_gflops\": %.6g,\n", cg_gflops);
    std::printf("  \"hpcg_iterations\": %d,\n", cg_iters);
    std::printf("  \"ratio\": %.6g,\n", ratio);
    std::printf("  \"paper\": {\"mxp_pf\": 17.23, \"hpcg_pf\": 10.4, "
                "\"ratio\": 1.66}\n");
    std::printf("}\n");
    return 0;
  }

  std::printf("%-28s %12s %12s\n", "", "GFLOP/s", "iters run");
  std::printf("%-28s %12.2f %12d\n", "HPG-MxP mxp (GMRES-IR)",
              mxp.raw_gflops, mxp.iterations);
  std::printf("%-28s %12.2f %12d\n", "HPCG-style (CG, sym-GS MG)", cg_gflops,
              cg_iters);
  std::printf("%-28s %11.2fx\n", "ratio", ratio);
  std::printf("\npaper: 17.23 PF vs 10.4 PF => 1.66x. Expect a ratio > 1\n"
              "here too: the GMRES-IR benchmark gets its fp32 bandwidth\n"
              "advantage while CG runs all-double with symmetric (2x) GS\n"
              "smoothing.\n");
  return 0;
}
