// §4.1 comparison: the paper reports 17.23 PF for HPG-MxP (mxp) on 9408
// nodes vs 10.4 PF for HPCG on the same machine — different solvers, so
// the numbers are indicative, not directly comparable (the paper says so).
//
// Reproduction: run our HPCG-style CG (symmetric-GS multigrid) and the
// HPG-MxP GMRES-IR benchmark on the same problem and report both model
// GFLOP/s figures and their ratio.
#include "core/cg.hpp"
#include "exhibit_common.hpp"

int main() {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/0.8);
  banner("EXP hpcg-compare (paper §4.1)",
         "full-system HPG-MxP mxp 17.23 PF vs HPCG 10.4 PF (ratio 1.66, "
         "not directly comparable)");

  // HPG-MxP mxp phase.
  BenchmarkDriver driver(cfg.params, cfg.ranks);
  const PhaseResult mxp = driver.run_phase(/*mixed=*/true);

  // HPCG-style run: fixed-iteration CG with symmetric-GS multigrid, double.
  ProblemParams pp;
  pp.nx = cfg.params.nx;
  pp.ny = cfg.params.ny;
  pp.nz = cfg.params.nz;
  const ProblemHierarchy h =
      build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                      cfg.params.mg_levels, cfg.params.coloring_seed);
  SelfComm comm;
  SymmetricMultigrid<double> mg(h, cfg.params);
  SolverOptions opts;
  opts.max_iters = cfg.params.max_iters_per_solve;
  opts.tol = 0.0;
  ConjugateGradient<double> cg(&mg.level_op(0), &mg, opts);
  MotifStats cg_stats;
  cg.set_stats(&cg_stats);

  WallTimer timer;
  int cg_iters = 0;
  while (timer.seconds() < cfg.params.bench_seconds) {
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    const SolveResult res = cg.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    cg_iters += res.iterations;
  }
  const double cg_gflops =
      static_cast<double>(cg_stats.total_flops()) / timer.seconds() * 1e-9;

  std::printf("%-28s %12s %12s\n", "", "GFLOP/s", "iters run");
  std::printf("%-28s %12.2f %12d\n", "HPG-MxP mxp (GMRES-IR)",
              mxp.raw_gflops, mxp.iterations);
  std::printf("%-28s %12.2f %12d\n", "HPCG-style (CG, sym-GS MG)", cg_gflops,
              cg_iters);
  std::printf("%-28s %11.2fx\n", "ratio",
              cg_gflops > 0 ? mxp.raw_gflops / cg_gflops : 0.0);
  std::printf("\npaper: 17.23 PF vs 10.4 PF => 1.66x. Expect a ratio > 1\n"
              "here too: the GMRES-IR benchmark gets its fp32 bandwidth\n"
              "advantage while CG runs all-double with symmetric (2x) GS\n"
              "smoothing.\n");
  return 0;
}
