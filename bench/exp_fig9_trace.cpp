// Fig. 9: rocprof traces of a 'middle' rank during an 8-node run showing
// that halo communication is completely hidden behind the interior
// Gauss–Seidel kernel on the fine grid (9a) but NOT fully hidden on the
// coarsest grid (9b), whose surface-to-volume ratio is worse.
//
// Reproduction: run multigrid V-cycles at 8 virtual ranks with the trace
// recorder attached, pick the rank with the most neighbors, render per-level
// ASCII timelines and print the halo-hidden-behind-compute fraction per
// level.
#include <algorithm>

#include "comm/thread_comm.hpp"
#include "core/multigrid.hpp"
#include "exhibit_common.hpp"
#include "perf/trace.hpp"

//   $ ./exp_fig9_trace [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format: per-level interior/wire times and the
// halo-hidden fraction) instead of the human timelines.
int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/8);
  if (!json) {
    banner("EXP fig9 compute-communication overlap traces (paper Fig. 9)",
           "fine grid: halo fully hidden behind interior GS; coarsest grid: "
           "overlap incomplete");
  }

  const int ranks = cfg.ranks;
  const ProcessGrid pgrid = ProcessGrid::create(ranks);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = cfg.params.nx;

  // A 'middle' rank communicates with the most neighbors; with 8 ranks on a
  // 2x2x2 grid every rank has 7 — rank 0 serves as the observed rank.
  const int observed = 0;
  const int sweeps = static_cast<int>(env_int_or("HPGMX_TRACE_SWEEPS", 20));
  const int levels_cap = cfg.params.mg_levels;

  // One recorder per level so per-level overlap can be separated.
  std::vector<TraceRecorder> recorders(static_cast<std::size_t>(levels_cap));
  std::vector<local_index_t> level_rows(static_cast<std::size_t>(levels_cap),
                                        0);
  std::vector<double> level_halo_bytes(static_cast<std::size_t>(levels_cap),
                                       0.0);
  std::vector<int> level_msgs(static_cast<std::size_t>(levels_cap), 0);

  ThreadCommWorld::execute(ranks, [&](Comm& comm) {
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                        levels_cap, cfg.params.coloring_seed);
    Multigrid<float> mg(h, cfg.params);
    for (int l = 0; l < mg.num_levels(); ++l) {
      if (comm.rank() == observed) {
        level_rows[static_cast<std::size_t>(l)] = mg.level_op(l).num_owned();
        const HaloPattern& pat = h.levels[static_cast<std::size_t>(l)].halo;
        for (const auto& nb : pat.neighbors) {
          level_halo_bytes[static_cast<std::size_t>(l)] +=
              static_cast<double>(nb.send_indices.size() +
                                  static_cast<std::size_t>(nb.recv_count)) *
              sizeof(float);
          level_msgs[static_cast<std::size_t>(l)] += 2;
        }
      }
      mg.level_op(l).set_event_sink(&recorders[static_cast<std::size_t>(l)]);
      AlignedVector<float> z(
          static_cast<std::size_t>(mg.level_op(l).vec_len()), 0.0f);
      const auto& b = h.levels[static_cast<std::size_t>(l)].b;
      AlignedVector<float> bf(b.size());
      for (std::size_t i = 0; i < b.size(); ++i) {
        bf[i] = static_cast<float>(b[i]);
      }
      for (int s = 0; s < sweeps; ++s) {
        mg.level_op(l).gs_forward(comm,
                                  std::span<const float>(bf.data(), bf.size()),
                                  std::span<float>(z.data(), z.size()));
      }
    }
  });

  // On a time-shared host, halo 'wait' time includes other ranks' compute
  // slices, so the paper's observable is computed as: measured interior
  // kernel time per sweep vs the *wire* time a real network would need for
  // this level's messages (host machine model). hidden = min(1, int/wire).
  const MachineModel net = MachineModel::host(/*bw, unused here*/ 10.0);
  std::vector<double> level_interior_s(static_cast<std::size_t>(levels_cap));
  std::vector<double> level_wire_s(static_cast<std::size_t>(levels_cap));
  std::vector<double> level_hidden(static_cast<std::size_t>(levels_cap));
  for (int l = 0; l < levels_cap; ++l) {
    double interior_s = 0;
    for (const auto& e : recorders[static_cast<std::size_t>(l)].events_for(
             observed)) {
      if (e.name == "GS-int-c0") {
        interior_s += e.t_end - e.t_begin;
      }
    }
    interior_s /= sweeps;
    const double wire_s =
        (level_msgs[static_cast<std::size_t>(l)] * net.halo_msg_us +
         level_halo_bytes[static_cast<std::size_t>(l)] /
             (net.link_gbs * 1e3)) *
        1e-6;
    level_interior_s[static_cast<std::size_t>(l)] = interior_s;
    level_wire_s[static_cast<std::size_t>(l)] = wire_s;
    level_hidden[static_cast<std::size_t>(l)] =
        wire_s > 0 ? std::min(1.0, interior_s / wire_s) : 1.0;
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"fig9_trace\",\n");
    std::printf("  \"ranks\": %d,\n", ranks);
    std::printf("  \"observed_rank\": %d,\n", observed);
    std::printf("  \"sweeps\": %d,\n", sweeps);
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"levels\": [\n");
    for (int l = 0; l < levels_cap; ++l) {
      const auto i = static_cast<std::size_t>(l);
      std::printf("    {\"level\": %d, \"rows\": %d, \"interior_ms\": %.6g, "
                  "\"wire_ms\": %.6g, \"halo_hidden\": %.6g}%s\n",
                  l, level_rows[i], level_interior_s[i] * 1e3,
                  level_wire_s[i] * 1e3, level_hidden[i],
                  l + 1 < levels_cap ? "," : "");
    }
    std::printf("  ]\n");
    std::printf("}\n");
    return 0;
  }

  std::printf("rank %d of %d, %d GS sweeps per level, local fine grid %d^3\n",
              observed, ranks, sweeps, cfg.params.nx);
  std::printf("\n%-6s %11s %14s %14s %18s\n", "level", "local rows",
              "interior ms", "wire-time ms", "halo hidden");
  for (int l = 0; l < levels_cap; ++l) {
    const auto i = static_cast<std::size_t>(l);
    std::printf("%-6d %11d %14.4f %14.4f %17.1f%%\n", l, level_rows[i],
                level_interior_s[i] * 1e3, level_wire_s[i] * 1e3,
                level_hidden[i] * 100.0);
  }

  std::printf("\nfine-grid timeline (level 0; p=pack/post, w=wait, "
              "G=interior GS c0):\n%s",
              recorders[0].render_timeline(observed).c_str());
  std::printf("\ncoarsest-grid timeline (level %d):\n%s", levels_cap - 1,
              recorders[static_cast<std::size_t>(levels_cap - 1)]
                  .render_timeline(observed)
                  .c_str());
  std::printf(
      "\npaper Fig. 9: fine grid (9a) hides pack+copy+comm entirely behind\n"
      "the first-color interior kernel; the coarsest grid (9b) cannot —\n"
      "its communication surface is too large relative to the interior\n"
      "work. Check: 'halo hidden' near 100%% on level 0, dropping on the\n"
      "coarsest level.\n");
  return 0;
}
