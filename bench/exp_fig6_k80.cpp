// Fig. 6: the same mxp-over-double speedups on a commodity NVIDIA K80
// cluster, demonstrating that the gain is not Frontier-specific. The paper
// shows speedups of similar structure (somewhat noisier, small cluster).
//
// Reproduction: bandwidth-bound speedup per motif is the fp64/fp32 ratio of
// the *bytes each motif moves*; we compute that ratio from the bytes model
// (identical on any bandwidth-bound machine — the portability claim) and
// show it alongside this host's measured speedups from the same harness as
// Fig. 5.
//   $ ./exp_fig6_k80 [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format) instead of the human tables.
#include "core/multigrid.hpp"
#include "exhibit_common.hpp"
#include "sparse/ell.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/0.6);
  if (!json) {
    banner("EXP fig6 K80 portability (paper Fig. 6)",
           "similar speedups on a K80 cluster: the gain is bandwidth-driven, "
           "not architecture-specific");
  }

  // Bytes-model speedup bounds (machine-independent for bandwidth-bound
  // kernels): ratio of fp64 to fp32 traffic per motif.
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = cfg.params.nx;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const std::int64_t nnz = prob.a.nnz();
  const local_index_t n = prob.a.num_rows;
  const int k = cfg.params.restart_length / 2;  // mid-restart CGS2 depth

  struct Row {
    const char* motif;
    Motif m;
    double bytes_d;
    double bytes_f;
  };
  // Charge the ELL index width the measured phases actually stream under
  // the configured HPGMX_IDX (Auto compresses to 16-bit deltas when this
  // grid's column window permits) — the bound-vs-measured comparison is
  // only meaningful when both describe the same layout. The restriction
  // kernel is CSR + injection maps and keeps 32-bit indices.
  const std::size_t ib = (cfg.params.index_width != IndexWidth::Idx32 &&
                          ell_idx16_feasible(prob.a))
                             ? kIndexBytes16
                             : kIndexBytes32;
  const Row rows[] = {
      {"GS", Motif::GS, gs_sweep_bytes(nnz, n, sizeof(double), ib),
       gs_sweep_bytes(nnz, n, sizeof(float), ib)},
      {"Ortho", Motif::Ortho, cgs2_bytes<double>(n, k),
       cgs2_bytes<float>(n, k)},
      {"SpMV", Motif::SpMV, spmv_bytes(nnz, n, sizeof(double), ib),
       spmv_bytes(nnz, n, sizeof(float), ib)},
      {"Restr", Motif::Restrict, fused_restrict_bytes<double>(nnz / 8, n, n / 8),
       fused_restrict_bytes<float>(nnz / 8, n, n / 8)},
  };
  const MachineModel k80 = MachineModel::k80();
  double total_d = 0, total_f = 0;
  for (const Row& r : rows) {
    total_d += r.bytes_d;
    total_f += r.bytes_f;
  }

  // Measured speedups on this host with the same harness as Fig. 5.
  BenchParams p = cfg.params;
  p.validation_ranks = 1;
  BenchmarkDriver driver(p, cfg.ranks);
  const ValidationResult v = driver.run_validation(ValidationMode::Standard);
  const PhaseResult mxp = driver.run_phase(true);
  const PhaseResult dbl = driver.run_phase(false);
  const double pen = v.penalty();
  const double total_speedup =
      dbl.raw_gflops > 0 ? mxp.raw_gflops * pen / dbl.raw_gflops : 0;

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"fig6_k80\",\n");
    std::printf("  \"ranks\": %d,\n", cfg.ranks);
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"motifs\": [\n");
    for (std::size_t i = 0; i < sizeof(rows) / sizeof(rows[0]); ++i) {
      const Row& r = rows[i];
      const double d = dbl.stats.gflops(r.m);
      std::printf("    {\"motif\": \"%s\", \"bytes_fp64\": %.6g, "
                  "\"bytes_fp32\": %.6g, \"bandwidth_bound\": %.6g, "
                  "\"measured_speedup\": %.6g}%s\n",
                  r.motif, r.bytes_d, r.bytes_f, r.bytes_d / r.bytes_f,
                  d > 0 ? mxp.stats.gflops(r.m) * pen / d : 0.0,
                  i + 1 < sizeof(rows) / sizeof(rows[0]) ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"total_bandwidth_bound\": %.6g,\n", total_d / total_f);
    std::printf("  \"total_measured_speedup\": %.6g,\n", total_speedup);
    std::printf("  \"penalty\": %.6g\n", pen);
    std::printf("}\n");
    return 0;
  }

  std::printf("bandwidth-bound speedup bound (bytes_fp64 / bytes_fp32),\n"
              "valid for ANY machine on the roofline incl. %s (%.0f GB/s):\n",
              k80.name.c_str(), k80.mem_bw_gbs);
  std::printf("%-8s %12s %12s %10s\n", "motif", "MB (fp64)", "MB (fp32)",
              "bound");
  for (const Row& r : rows) {
    std::printf("%-8s %12.2f %12.2f %9.2fx\n", r.motif, r.bytes_d * 1e-6,
                r.bytes_f * 1e-6, r.bytes_d / r.bytes_f);
  }
  std::printf("%-8s %12.2f %12.2f %9.2fx\n", "TOTAL", total_d * 1e-6,
              total_f * 1e-6, total_d / total_f);
  std::printf("\nmeasured on this host (third architecture data point):\n");
  std::printf("%-8s %10s\n", "motif", "speedup");
  std::printf("%-8s %9.2fx\n", "TOTAL", total_speedup);
  for (const Motif m : {Motif::GS, Motif::Ortho, Motif::SpMV, Motif::Restrict}) {
    const double d = dbl.stats.gflops(m);
    std::printf("%-8s %9.2fx\n", std::string(motif_name(m)).c_str(),
                d > 0 ? mxp.stats.gflops(m) * pen / d : 0.0);
  }
  std::printf("\npaper Fig. 6: K80 shows ~1.5-1.6x total — matching the\n"
              "bytes-bound, which is the paper's portability argument.\n");
  return 0;
}
