// Fig. 5: penalized speedup of mixed-precision GMRES-IR over double GMRES,
// overall and per computational motif, for the optimized implementation
// ("present") and the reference path ("xsdk").
//
// Paper: present total ≈ 1.6x (vs theoretical 2x), Ortho ≈ 2x (dense BLAS-2
// benefits fully), GS/SpMV lower (index arrays don't shrink with
// precision), xsdk substantially lower overall.
//
//   $ ./exp_fig5_speedup [--json]   # --json: machine-readable report
#include "exhibit_common.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/1.0);
  if (!json) {
    banner("EXP fig5 motif speedups (paper Fig. 5)",
           "present: total 1.6x, Ortho ~2x, GS/SpMV ~1.4-1.5x; xsdk lower");
  } else {
    std::printf("{\n  \"exhibit\": \"fig5_motif_speedup\",\n");
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"paths\": [\n");
  }

  const Motif motifs[] = {Motif::GS, Motif::Ortho, Motif::SpMV,
                          Motif::Restrict};
  const OptLevel opts_sweep[] = {OptLevel::Optimized, OptLevel::Reference};
  for (std::size_t oi = 0; oi < std::size(opts_sweep); ++oi) {
    const OptLevel opt = opts_sweep[oi];
    BenchParams p = cfg.params;
    p.opt = opt;
    // Small validation problem keeps the harness quick; the penalty feeds
    // the speedups as in the paper.
    p.validation_ranks = 1;
    BenchmarkDriver driver(p, cfg.ranks);
    BenchReport report;
    report.params = p;
    report.ranks = cfg.ranks;
    report.validation = driver.run_validation(ValidationMode::Standard);
    report.mxp = driver.run_phase(true);
    report.dbl = driver.run_phase(false);
    const double pen = report.validation.penalty();

    if (json) {
      std::printf("    {\"path\": \"%s\", \"series\": \"%s\", "
                  "\"penalty\": %.6g,\n",
                  opt_level_name(opt),
                  opt == OptLevel::Optimized ? "present" : "xsdk", pen);
      std::printf("     \"total\": {\"mxp_gflops\": %.6g, "
                  "\"double_gflops\": %.6g, \"raw_speedup\": %.6g, "
                  "\"penalized_speedup\": %.6g},\n",
                  report.mxp.raw_gflops, report.dbl.raw_gflops,
                  report.dbl.raw_gflops > 0
                      ? report.mxp.raw_gflops / report.dbl.raw_gflops
                      : 0.0,
                  report.speedup());
      std::printf("     \"motifs\": [\n");
      for (std::size_t mi = 0; mi < std::size(motifs); ++mi) {
        const Motif m = motifs[mi];
        const double d = report.dbl.stats.gflops(m);
        std::printf("       {\"motif\": \"%s\", \"mxp_gflops\": %.6g, "
                    "\"double_gflops\": %.6g, \"raw_speedup\": %.6g, "
                    "\"penalized_speedup\": %.6g}%s\n",
                    std::string(motif_name(m)).c_str(),
                    report.mxp.stats.gflops(m), d,
                    d > 0 ? report.mxp.stats.gflops(m) / d : 0.0,
                    d > 0 ? report.mxp.stats.gflops(m) * pen / d : 0.0,
                    mi + 1 < std::size(motifs) ? "," : "");
      }
      std::printf("     ]}%s\n", oi + 1 < std::size(opts_sweep) ? "," : "");
      continue;
    }

    std::printf("\n--- %s path ('%s' series) ---\n", opt_level_name(opt),
                opt == OptLevel::Optimized ? "present" : "xsdk");
    std::printf("penalty (n_d/n_ir capped): %.3f\n", pen);
    std::printf("%-8s %14s %14s %10s %10s\n", "motif", "mxp GF/s",
                "double GF/s", "raw", "penalized");
    std::printf("%-8s %14.2f %14.2f %9.2fx %9.2fx\n", "TOTAL",
                report.mxp.raw_gflops, report.dbl.raw_gflops,
                report.dbl.raw_gflops > 0
                    ? report.mxp.raw_gflops / report.dbl.raw_gflops
                    : 0.0,
                report.speedup());
    for (const Motif m : motifs) {
      const double d = report.dbl.stats.gflops(m);
      std::printf("%-8s %14.2f %14.2f %9.2fx %9.2fx\n",
                  std::string(motif_name(m)).c_str(),
                  report.mxp.stats.gflops(m), d,
                  d > 0 ? report.mxp.stats.gflops(m) / d : 0.0,
                  d > 0 ? report.mxp.stats.gflops(m) * pen / d : 0.0);
    }
  }
  if (json) {
    std::printf("  ]\n}\n");
    return 0;
  }
  std::printf(
      "\npaper Fig. 5 (present, Frontier): TOTAL 1.6x penalized (penalty\n"
      "0.968, so raw ≈ penalized there), Ortho ~2.0x, GS ~1.4x, SpMV ~1.4x,\n"
      "Restr ~1.6x. At laptop scale the penalty is harsher (~0.75: the\n"
      "refinement overhead amortizes over few iterations), so compare the\n"
      "RAW column for the bandwidth story and the penalized column for the\n"
      "benchmark metric. On a scalar CPU the levels are lower than on GPUs;\n"
      "the direction (mxp ≥ double, Restr/GS gains) must hold at\n"
      "memory-resident sizes (HPGMX_NX=96).\n");
  return 0;
}
