// Google-benchmark microbenchmarks of the individual kernels, covering the
// paper's §3.2 design choices as ablations:
//   CSR vs ELL SpMV           (§3.2.2)
//   level-scheduled vs multicolor Gauss–Seidel, fp64 vs fp32   (§3.2.1)
//   fused vs unfused residual+restriction                      (§3.2.4)
//   dot/WAXPBY in fp64 vs fp32 vs 16-bit (memory-bound 2x/4x expectation)
//
// `--json` is shorthand for --benchmark_format=json: one machine-readable
// report on stdout for the BENCH_* perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "blas/vector_ops.hpp"
#include "coloring/coloring.hpp"
#include "comm/comm.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/float16.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"

namespace {

using namespace hpgmx;

Problem make_problem(local_index_t n) {
  ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  return generate_problem(pgrid, 0, pp);
}

template <typename T>
void bm_spmv_csr(benchmark::State& state) {
  const Problem prob = make_problem(static_cast<local_index_t>(state.range(0)));
  const CsrMatrix<T> a = prob.a.convert<T>();
  AlignedVector<T> x(static_cast<std::size_t>(a.num_cols), T(1));
  AlignedVector<T> y(static_cast<std::size_t>(a.num_rows), T(0));
  for (auto _ : state) {
    csr_spmv(a, std::span<const T>(x.data(), x.size()),
             std::span<T>(y.data(), y.size()));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (a.nnz() * (sizeof(T) + sizeof(local_index_t)) +
                           a.num_rows * sizeof(T)));
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 *
          static_cast<double>(a.nnz()),
      benchmark::Counter::kIsRate);
}

template <typename T>
void bm_spmv_ell(benchmark::State& state) {
  const Problem prob = make_problem(static_cast<local_index_t>(state.range(0)));
  const CsrMatrix<T> a = prob.a.convert<T>();
  const EllMatrix<T> e = ell_from_csr(a);
  AlignedVector<T> x(static_cast<std::size_t>(e.num_cols), T(1));
  AlignedVector<T> y(static_cast<std::size_t>(e.num_rows), T(0));
  for (auto _ : state) {
    ell_spmv(e, std::span<const T>(x.data(), x.size()),
             std::span<T>(y.data(), y.size()));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      (e.padded_nnz() * (sizeof(T) + sizeof(local_index_t)) +
       e.num_rows * sizeof(T)));
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 *
          static_cast<double>(a.nnz()),
      benchmark::Counter::kIsRate);
}

template <typename T>
void bm_gs_levelsched(benchmark::State& state) {
  const Problem prob = make_problem(static_cast<local_index_t>(state.range(0)));
  const CsrMatrix<T> a = prob.a.convert<T>();
  const RowPartition levels = build_lower_level_schedule(a);
  AlignedVector<T> r(static_cast<std::size_t>(a.num_rows), T(1));
  AlignedVector<T> z(static_cast<std::size_t>(a.num_cols), T(0));
  AlignedVector<T> t(static_cast<std::size_t>(a.num_rows), T(0));
  for (auto _ : state) {
    gs_sweep_reference(a, levels, std::span<const T>(r.data(), r.size()),
                       std::span<T>(z.data(), z.size()),
                       std::span<T>(t.data(), t.size()));
    benchmark::DoNotOptimize(z.data());
  }
  state.counters["levels"] = levels.num_groups();
}

template <typename T>
void bm_gs_multicolor(benchmark::State& state) {
  const Problem prob = make_problem(static_cast<local_index_t>(state.range(0)));
  const CsrMatrix<T> a = prob.a.convert<T>();
  const EllMatrix<T> e = ell_from_csr(a);
  const auto colors = jpl_color(a, 42);
  const RowPartition part = color_partition(colors);
  AlignedVector<T> r(static_cast<std::size_t>(a.num_rows), T(1));
  AlignedVector<T> z(static_cast<std::size_t>(a.num_cols), T(0));
  for (auto _ : state) {
    gs_sweep_colored_ell(e, part, std::span<const T>(r.data(), r.size()),
                         std::span<T>(z.data(), z.size()));
    benchmark::DoNotOptimize(z.data());
  }
  state.counters["colors"] = part.num_groups();
}

template <typename T>
void bm_restrict_fused(benchmark::State& state) {
  Problem prob = make_problem(static_cast<local_index_t>(state.range(0)));
  const CoarseLevel cl = coarsen(prob);
  const CsrMatrix<T> a = prob.a.convert<T>();
  AlignedVector<T> b(static_cast<std::size_t>(a.num_rows), T(1));
  AlignedVector<T> x(static_cast<std::size_t>(a.num_cols), T(0.5));
  AlignedVector<T> rc(cl.c2f.size(), T(0));
  for (auto _ : state) {
    fused_restrict_residual(
        a, std::span<const T>(b.data(), b.size()),
        std::span<const T>(x.data(), x.size()),
        std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()),
        std::span<T>(rc.data(), rc.size()));
    benchmark::DoNotOptimize(rc.data());
  }
}

template <typename T>
void bm_restrict_unfused(benchmark::State& state) {
  Problem prob = make_problem(static_cast<local_index_t>(state.range(0)));
  const CoarseLevel cl = coarsen(prob);
  const CsrMatrix<T> a = prob.a.convert<T>();
  AlignedVector<T> b(static_cast<std::size_t>(a.num_rows), T(1));
  AlignedVector<T> x(static_cast<std::size_t>(a.num_cols), T(0.5));
  AlignedVector<T> rf(static_cast<std::size_t>(a.num_rows), T(0));
  AlignedVector<T> rc(cl.c2f.size(), T(0));
  for (auto _ : state) {
    csr_residual(a, std::span<const T>(b.data(), b.size()),
                 std::span<const T>(x.data(), x.size()),
                 std::span<T>(rf.data(), rf.size()));
    inject_restrict(std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()),
                    std::span<const T>(rf.data(), rf.size()),
                    std::span<T>(rc.data(), rc.size()));
    benchmark::DoNotOptimize(rc.data());
  }
}

template <typename T>
void bm_dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AlignedVector<T> x(n, T(1.5)), y(n, T(0.5));
  SelfComm comm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot<T>(comm, std::span<const T>(x.data(), n),
                                    std::span<const T>(y.data(), n)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(T)));
}

template <typename T>
void bm_waxpby(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AlignedVector<T> x(n, T(1.5)), y(n, T(0.5)), w(n, T(0));
  for (auto _ : state) {
    waxpby(2.0, std::span<const T>(x.data(), n), 3.0,
           std::span<const T>(y.data(), n), std::span<T>(w.data(), n));
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(T)));
}

}  // namespace

BENCHMARK(bm_spmv_csr<double>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_spmv_csr<float>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_spmv_ell<double>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_spmv_ell<float>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_spmv_ell<bf16_t>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_spmv_ell<fp16_t>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_gs_levelsched<double>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_gs_multicolor<double>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_gs_multicolor<float>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_gs_multicolor<bf16_t>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_restrict_fused<double>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_restrict_unfused<double>)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_dot<double>)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_dot<float>)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_dot<bf16_t>)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_waxpby<double>)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_waxpby<float>)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_waxpby<fp16_t>)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

// BENCHMARK_MAIN with a `--json` shorthand spliced in front of Google
// Benchmark's own flag parsing.
int main(int argc, char** argv) {
  std::vector<std::string> storage(argv, argv + argc);
  for (std::string& arg : storage) {
    if (arg == "--json") {
      arg = "--benchmark_format=json";
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& arg : storage) {
    args.push_back(arg.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
