// Kernel microbenchmarks covering the paper's §3.2 design choices as
// ablations, self-contained (no external benchmark framework so the
// harness always builds and owns its JSON schema):
//
//   CSR vs ELL SpMV                                    (§3.2.2)
//   scalar vs staged (blocked fp32-widening) 16-bit ELL SpMV and colored GS
//   idx32 (absolute columns) vs idx16 (compressed 16-bit delta) ELL layouts
//   fused vs unfused solver passes: spmv_dot, waxpby_norm, residual_norm,
//     and the CGS2 gemv_n_sub + norm fusion
//   batched vs scalar bf16/fp16 <-> fp32 span conversions
//   dot/WAXPBY across storage precisions (memory-bound 2x/4x expectation)
//
// Every row reports the *modeled* streaming bytes (bytes_model.hpp), the
// modeled bytes per matrix row where applicable, and the effective GB/s
// (modeled bytes / measured seconds) — "effective" because a 16-bit kernel
// that streams half the bytes at equal time shows half the GB/s, which is
// exactly the memory-wall win the trajectory tracks.
//
//   $ ./micro_kernels [--json]
//
// --json emits one machine-readable object on stdout (the BENCH_kernels
// perf-trajectory format; see bench/run_bench.sh). Exit code: nonzero when
// either gate fails —
//   (1) any 16-bit ELL SpMV variant whose modeled bytes/row is not
//       strictly below the fp32 idx32 baseline, or
//   (2) the compressed-index gate: bf16 ELL SpMV with 16-bit delta indices
//       must model strictly fewer bytes/row than with 32-bit indices.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "base/options.hpp"
#include "base/timer.hpp"
#include "blas/multivector.hpp"
#include "blas/vector_ops.hpp"
#include "coloring/coloring.hpp"
#include "core/bytes_model.hpp"
#include "exhibit_common.hpp"
#include "grid/problem.hpp"
#include "precision/convert_batch.hpp"
#include "precision/float16.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"

namespace {

using namespace hpgmx;

struct Row {
  std::string kernel;   ///< e.g. "spmv_ell"
  std::string format;   ///< "fp64" / "fp32" / "bf16" / "fp16"
  std::string variant;  ///< "scalar" / "staged" / "fused" / "unfused" / ...
  std::string index;    ///< "idx32" / "idx16" ("-": no index stream)
  double bytes = 0;          ///< modeled streaming bytes per call
  double bytes_per_row = 0;  ///< modeled bytes per matrix row (0: vector op)
  double seconds = 0;        ///< measured seconds per call
  int reps = 0;

  [[nodiscard]] double gbs() const {
    return seconds > 0 ? bytes / seconds * 1e-9 : 0.0;
  }
};

/// Time fn() adaptively: one warmup, one calibration call, then enough
/// repetitions to fill ~target_seconds. Returns seconds per call.
template <typename F>
double time_kernel_adaptive(double target_seconds, F&& fn, int* reps_out) {
  fn();  // warmup (page faults, frequency ramp)
  WallTimer cal;
  fn();
  const double t1 = std::max(cal.seconds(), 1e-9);
  const int reps = std::clamp(static_cast<int>(target_seconds / t1), 1, 20000);
  WallTimer t;
  for (int i = 0; i < reps; ++i) {
    fn();
  }
  *reps_out = reps;
  return t.seconds() / reps;
}

template <typename F>
Row make_row(const char* kernel, const char* format, const char* variant,
             double bytes, local_index_t rows_for_per_row, double target,
             F&& fn, const char* index = "-") {
  Row r;
  r.kernel = kernel;
  r.format = format;
  r.variant = variant;
  r.index = index;
  r.bytes = bytes;
  r.bytes_per_row =
      rows_for_per_row > 0 ? bytes / static_cast<double>(rows_for_per_row) : 0;
  r.seconds = time_kernel_adaptive(target, fn, &r.reps);
  return r;
}

Problem make_problem(local_index_t n) {
  ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  return generate_problem(pgrid, 0, pp);
}

template <typename T>
void add_spmv(std::vector<Row>& out, const Problem& prob, double target) {
  const CsrMatrix<T> a = prob.a.convert<T>();
  // Both ELL index layouts: absolute 32-bit columns (the ablation baseline)
  // and compressed 16-bit deltas (the production Auto path when feasible).
  const EllMatrix<T> e32 = ell_from_csr(a, IndexWidth::Idx32);
  const EllMatrix<T> e16 = ell_from_csr(a, IndexWidth::Idx16);
  const local_index_t n = e32.num_rows;
  const std::size_t vb = PrecisionTraits<T>::bytes;
  const char* fmt = PrecisionTraits<T>::name.data();
  AlignedVector<T> x(static_cast<std::size_t>(e32.num_cols), T(1));
  AlignedVector<T> y(static_cast<std::size_t>(n), T(0));
  const double csr_b = spmv_bytes(a.nnz(), n, vb);

  out.push_back(make_row(
      "spmv_csr", fmt, "scalar", csr_b, n, target,
      [&] {
        csr_spmv(a, std::span<const T>(x.data(), x.size()),
                 std::span<T>(y.data(), y.size()));
      },
      "idx32"));
  for (const EllMatrix<T>* e : {&e32, &e16}) {
    if (e == &e16 && !e16.has_idx16()) {
      continue;  // infeasible window: the Auto path is the idx32 row above
    }
    const char* idx = e->has_idx16() ? "idx16" : "idx32";
    const double ell_b = spmv_bytes(e->padded_nnz(), n, vb, e->index_bytes());
    out.push_back(make_row(
        "spmv_ell", fmt, "scalar", ell_b, n, target,
        [&] {
          ell_spmv_scalar(*e, std::span<const T>(x.data(), x.size()),
                          std::span<T>(y.data(), y.size()));
        },
        idx));
    if constexpr (detail::is_16bit_value_v<T>) {
      // The production dispatch (ell_spmv) takes the staged path for 16-bit
      // types; the scalar row above is the promote-through-float ablation.
      out.push_back(make_row(
          "spmv_ell", fmt, "staged", ell_b, n, target,
          [&] {
            ell_spmv(*e, std::span<const T>(x.data(), x.size()),
                     std::span<T>(y.data(), y.size()));
          },
          idx));
    }
  }
}

template <typename T>
void add_gs(std::vector<Row>& out, const Problem& prob, double target) {
  const CsrMatrix<T> a = prob.a.convert<T>();
  const EllMatrix<T> e32 = ell_from_csr(a, IndexWidth::Idx32);
  const EllMatrix<T> e16 = ell_from_csr(a, IndexWidth::Idx16);
  const local_index_t n = e32.num_rows;
  const char* fmt = PrecisionTraits<T>::name.data();
  const auto colors = jpl_color(a, 42);
  const RowPartition part = color_partition(colors);
  AlignedVector<T> r(static_cast<std::size_t>(n), T(1));
  AlignedVector<T> z(static_cast<std::size_t>(e32.num_cols), T(0));
  for (const EllMatrix<T>* e : {&e32, &e16}) {
    if (e == &e16 && !e16.has_idx16()) {
      continue;
    }
    const char* idx = e->has_idx16() ? "idx16" : "idx32";
    const double b = gs_sweep_bytes(e->padded_nnz(), n,
                                    PrecisionTraits<T>::bytes,
                                    e->index_bytes());
    out.push_back(make_row(
        "gs_multicolor_ell", fmt, "scalar", b, n, target,
        [&] {
          gs_sweep_colored_ell_scalar(*e, part,
                                      std::span<const T>(r.data(), r.size()),
                                      std::span<T>(z.data(), z.size()));
        },
        idx));
    if constexpr (detail::is_16bit_value_v<T>) {
      out.push_back(make_row(
          "gs_multicolor_ell", fmt, "staged", b, n, target,
          [&] {
            gs_sweep_colored_ell(*e, part,
                                 std::span<const T>(r.data(), r.size()),
                                 std::span<T>(z.data(), z.size()));
          },
          idx));
    }
  }
}

template <typename T>
void add_fused(std::vector<Row>& out, const Problem& prob, double target) {
  const CsrMatrix<T> a = prob.a.convert<T>();
  const local_index_t n = a.num_rows;
  const std::size_t vb = PrecisionTraits<T>::bytes;
  const char* fmt = PrecisionTraits<T>::name.data();
  AlignedVector<T> x(static_cast<std::size_t>(a.num_cols), T(1));
  AlignedVector<T> y(static_cast<std::size_t>(n), T(0));
  AlignedVector<T> b(static_cast<std::size_t>(n), T(1));
  AlignedVector<T> w(static_cast<std::size_t>(n), T(0));
  volatile double sink = 0;

  out.push_back(make_row(
      "spmv_dot", fmt, "fused", spmv_dot_bytes(a.nnz(), n, vb), n, target,
      [&] {
        sink = csr_spmv_dot(a, std::span<const T>(x.data(), x.size()),
                            std::span<T>(y.data(), y.size()));
      },
      "idx32"));
  out.push_back(make_row(
      "spmv_dot", fmt, "unfused",
      spmv_bytes(a.nnz(), n, vb) + dot_bytes<T>(n), n, target,
      [&] {
        csr_spmv(a, std::span<const T>(x.data(), x.size()),
                 std::span<T>(y.data(), y.size()));
        sink = dot_span_blocked(
            std::span<const T>(y.data(), y.size()),
            std::span<const T>(x.data(), static_cast<std::size_t>(n)));
      },
      "idx32"));
  out.push_back(make_row(
      "residual_norm", fmt, "fused", residual_norm_bytes(a.nnz(), n, vb), n,
      target,
      [&] {
        sink = csr_residual_norm2(a, std::span<const T>(b.data(), b.size()),
                                  std::span<const T>(x.data(), x.size()),
                                  std::span<T>(y.data(), y.size()));
      },
      "idx32"));
  out.push_back(make_row(
      "residual_norm", fmt, "unfused",
      residual_bytes(a.nnz(), n, vb) + dot_bytes<T>(n), n, target,
      [&] {
        csr_residual(a, std::span<const T>(b.data(), b.size()),
                     std::span<const T>(x.data(), x.size()),
                     std::span<T>(y.data(), y.size()));
        sink = dot_span_blocked(std::span<const T>(y.data(), y.size()),
                                std::span<const T>(y.data(), y.size()));
      },
      "idx32"));
  out.push_back(make_row(
      "waxpby_norm", fmt, "fused", waxpby_norm_bytes(n, vb), 0, target, [&] {
        sink = waxpby_norm(2.0,
                           std::span<const T>(b.data(), b.size()), 3.0,
                           std::span<const T>(y.data(), y.size()),
                           std::span<T>(w.data(), w.size()));
      }));
  out.push_back(make_row(
      "waxpby_norm", fmt, "unfused",
      3.0 * static_cast<double>(n) * static_cast<double>(vb) + dot_bytes<T>(n),
      0, target, [&] {
        waxpby(2.0, std::span<const T>(b.data(), b.size()), 3.0,
               std::span<const T>(y.data(), y.size()),
               std::span<T>(w.data(), w.size()));
        sink = dot_span_blocked(std::span<const T>(w.data(), w.size()),
                                std::span<const T>(w.data(), w.size()));
      }));
  (void)sink;
}

/// The CGS2 normalization fusion: w ← w − Q h with ‖w‖² folded in
/// (gemv_n_sub_norm) vs the unfused projection + separate blocked norm
/// sweep. k basis vectors, DRAM-resident length.
template <typename T>
void add_cgs2(std::vector<Row>& out, std::size_t len, double target) {
  const char* fmt = PrecisionTraits<T>::name.data();
  const std::size_t vb = PrecisionTraits<T>::bytes;
  const int k = 8;
  MultiVector<T> q(static_cast<local_index_t>(len), k);
  for (int j = 0; j < k; ++j) {
    auto col = q.column(j);
    for (std::size_t i = 0; i < len; ++i) {
      col[i] = T(0.25f + 0.001f * static_cast<float>(j));
    }
  }
  AlignedVector<T> h(static_cast<std::size_t>(k), T(0.01f));
  AlignedVector<T> w(len, T(1));
  volatile double sink = 0;
  out.push_back(make_row(
      "gemv_n_norm", fmt, "fused",
      gemv_n_norm_bytes(static_cast<local_index_t>(len), k, vb), 0, target,
      [&] {
        sink = gemv_n_sub_norm(q, k, std::span<const T>(h.data(), h.size()),
                               std::span<T>(w.data(), w.size()));
      }));
  out.push_back(make_row(
      "gemv_n_norm", fmt, "unfused",
      gemv_n_sub_bytes(static_cast<local_index_t>(len), k, vb) +
          dot_bytes<T>(static_cast<local_index_t>(len)),
      0, target, [&] {
        gemv_n_sub(q, k, std::span<const T>(h.data(), h.size()),
                   std::span<T>(w.data(), w.size()));
        sink = dot_span_blocked(std::span<const T>(w.data(), w.size()),
                                std::span<const T>(w.data(), w.size()));
      }));
  (void)sink;
}

template <typename T>
void add_convert(std::vector<Row>& out, std::size_t len, double target) {
  const char* fmt = PrecisionTraits<T>::name.data();
  AlignedVector<T> narrow(len, T(1.5f));
  AlignedVector<float> wide(len, 0.0f);
  const double bytes =
      static_cast<double>(len) * (sizeof(T) + sizeof(float));

  out.push_back(make_row("convert_widen", fmt, "batched", bytes, 0, target,
                         [&] {
                           convert_span(
                               std::span<const T>(narrow.data(), len),
                               std::span<float>(wide.data(), len));
                         }));
  out.push_back(make_row("convert_widen", fmt, "scalar", bytes, 0, target,
                         [&] {
                           const T* __restrict s = narrow.data();
                           float* __restrict d = wide.data();
#pragma omp parallel for schedule(static)
                           for (std::size_t i = 0; i < len; ++i) {
                             d[i] = static_cast<float>(s[i]);
                           }
                         }));
  out.push_back(make_row("convert_narrow", fmt, "batched", bytes, 0, target,
                         [&] {
                           convert_span(
                               std::span<const float>(wide.data(), len),
                               std::span<T>(narrow.data(), len));
                         }));
  out.push_back(make_row("convert_narrow", fmt, "scalar", bytes, 0, target,
                         [&] {
                           const float* __restrict s = wide.data();
                           T* __restrict d = narrow.data();
#pragma omp parallel for schedule(static)
                           for (std::size_t i = 0; i < len; ++i) {
                             d[i] = static_cast<T>(s[i]);
                           }
                         }));
}

template <typename T>
void add_blas1(std::vector<Row>& out, std::size_t len, double target) {
  const char* fmt = PrecisionTraits<T>::name.data();
  AlignedVector<T> x(len, T(1.5f)), y(len, T(0.5f)), w(len, T(0));
  volatile double sink = 0;
  out.push_back(make_row(
      "dot", fmt, "blocked", 2.0 * static_cast<double>(len) * sizeof(T), 0,
      target, [&] {
        sink = dot_span_blocked(std::span<const T>(x.data(), len),
                                std::span<const T>(y.data(), len));
      }));
  out.push_back(make_row(
      "waxpby", fmt, "scalar", 3.0 * static_cast<double>(len) * sizeof(T), 0,
      target, [&] {
        waxpby(2.0, std::span<const T>(x.data(), len), 3.0,
               std::span<const T>(y.data(), len), std::span<T>(w.data(), len));
      }));
  (void)sink;
}

[[nodiscard]] const Row* find_row(const std::vector<Row>& rows,
                                  const char* kernel, const char* format,
                                  const char* variant,
                                  const char* index = nullptr) {
  for (const Row& r : rows) {
    if (r.kernel == kernel && r.format == format && r.variant == variant &&
        (index == nullptr || r.index == index)) {
      return &r;
    }
  }
  return nullptr;
}

void print_json(const std::vector<Row>& rows, local_index_t nx, bool gate_pass,
                bool idx16_gate_pass, bool idx16_feasible, double bf16_speedup,
                double fp16_speedup, double idx16_bf16_speedup,
                double idx16_fp16_speedup) {
  std::printf("{\n");
  std::printf("  \"exhibit\": \"micro_kernels\",\n");
  std::printf("  \"local_grid\": [%d, %d, %d],\n", nx, nx, nx);
  std::printf("  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"kernel\": \"%s\", \"format\": \"%s\", "
                "\"variant\": \"%s\", \"index\": \"%s\", \"gbs\": %.6g, "
                "\"bytes_per_row\": %.6g, "
                "\"modeled_bytes\": %.6g, \"seconds_per_call\": %.6g, "
                "\"reps\": %d}%s\n",
                r.kernel.c_str(), r.format.c_str(), r.variant.c_str(),
                r.index.c_str(), r.gbs(), r.bytes_per_row, r.bytes, r.seconds,
                r.reps, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"staged_16bit_spmv_speedup\": "
              "{\"bf16\": %.6g, \"fp16\": %.6g},\n",
              bf16_speedup, fp16_speedup);
  std::printf("  \"idx16_spmv_speedup\": "
              "{\"bf16\": %.6g, \"fp16\": %.6g},\n",
              idx16_bf16_speedup, idx16_fp16_speedup);
  std::printf("  \"gate\": {\"rule\": \"16-bit ELL SpMV modeled bytes/row "
              "strictly below fp32 idx32\", \"pass\": %s},\n",
              gate_pass ? "true" : "false");
  std::printf("  \"idx16_gate\": {\"rule\": \"bf16 ELL SpMV idx16 modeled "
              "bytes/row strictly below bf16 idx32 (skipped when the column "
              "window makes idx16 infeasible)\", \"feasible\": %s, "
              "\"pass\": %s}\n",
              idx16_feasible ? "true" : "false",
              idx16_gate_pass ? "true" : "false");
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::has_flag(argc, argv, "--json");
  const auto nx =
      static_cast<local_index_t>(env_int_or("HPGMX_NX", 32));
  const double target = env_double_or("HPGMX_BENCH_SECONDS", 0.15);
  if (!json) {
    bench::banner("micro_kernels",
                  "per-kernel ablations: CSR/ELL, scalar vs staged 16-bit, "
                  "fused vs unfused solver passes, batched conversions");
  }

  const Problem prob = make_problem(nx);
  // BLAS1/conversion rows need a DRAM-resident working set or they measure
  // cache bandwidth instead of the memory wall; floor at 1M elements.
  const std::size_t veclen =
      std::max<std::size_t>(static_cast<std::size_t>(prob.a.num_rows),
                            std::size_t{1} << 20);
  std::vector<Row> rows;

  add_spmv<double>(rows, prob, target);
  add_spmv<float>(rows, prob, target);
  add_spmv<bf16_t>(rows, prob, target);
  add_spmv<fp16_t>(rows, prob, target);
  add_gs<float>(rows, prob, target);
  add_gs<bf16_t>(rows, prob, target);
  add_fused<float>(rows, prob, target);
  add_fused<bf16_t>(rows, prob, target);
  add_cgs2<float>(rows, veclen, target);
  add_cgs2<bf16_t>(rows, veclen, target);
  add_convert<bf16_t>(rows, veclen, target);
  add_convert<fp16_t>(rows, veclen, target);
  add_blas1<double>(rows, veclen, target);
  add_blas1<float>(rows, veclen, target);
  add_blas1<bf16_t>(rows, veclen, target);

  // Staged-vs-scalar 16-bit SpMV speedup (same kernel, same modeled bytes,
  // so the GB/s ratio is a pure time ratio), measured on the idx32 layout
  // (present for every grid size).
  auto speedup = [&](const char* fmt) {
    const Row* staged = find_row(rows, "spmv_ell", fmt, "staged", "idx32");
    const Row* scalar = find_row(rows, "spmv_ell", fmt, "scalar", "idx32");
    return (staged != nullptr && scalar != nullptr && staged->seconds > 0)
               ? scalar->seconds / staged->seconds
               : 0.0;
  };
  const double bf16_speedup = speedup("bf16");
  const double fp16_speedup = speedup("fp16");
  // Compressed-index speedup: same staged kernel, idx32 vs idx16 layout —
  // a pure measured-time ratio isolating the halved index stream.
  auto idx16_speedup = [&](const char* fmt) {
    const Row* i16 = find_row(rows, "spmv_ell", fmt, "staged", "idx16");
    const Row* i32 = find_row(rows, "spmv_ell", fmt, "staged", "idx32");
    return (i16 != nullptr && i32 != nullptr && i16->seconds > 0)
               ? i32->seconds / i16->seconds
               : 0.0;
  };
  const double idx16_bf16_speedup = idx16_speedup("bf16");
  const double idx16_fp16_speedup = idx16_speedup("fp16");

  // Smoke gate for CI: the memory-wall invariant. A 16-bit ELL SpMV must
  // model strictly fewer bytes per row than the fp32 idx32 kernel; if a
  // format or layout change regresses that, the whole mixed-precision
  // speedup story is broken and the benchmark exits nonzero.
  const Row* f32 = find_row(rows, "spmv_ell", "fp32", "scalar", "idx32");
  bool gate_pass = f32 != nullptr;
  for (const Row& r : rows) {
    if (r.kernel == "spmv_ell" && (r.format == "bf16" || r.format == "fp16")) {
      gate_pass = gate_pass && f32 != nullptr &&
                  r.bytes_per_row < f32->bytes_per_row;
    }
  }
  // Compressed-index gate: with value bytes already halved, index bytes are
  // the dominant SpMV traffic — 16-bit deltas must model strictly below the
  // 32-bit layout (27×2 instead of 27×4 per row here) or the next format
  // shrink has nothing to stand on. When the grid's column window makes the
  // delta layout infeasible (the documented ≥ ~181³ single-rank fallback),
  // there is nothing to gate: the idx16 rows are absent by design and the
  // gate reports a skip, not a failure.
  const bool idx16_feasible = ell_idx16_feasible(prob.a);
  const Row* b16_i16 = find_row(rows, "spmv_ell", "bf16", "staged", "idx16");
  const Row* b16_i32 = find_row(rows, "spmv_ell", "bf16", "staged", "idx32");
  const bool idx16_gate_pass =
      !idx16_feasible ||
      (b16_i16 != nullptr && b16_i32 != nullptr &&
       b16_i16->bytes_per_row < b16_i32->bytes_per_row);

  if (json) {
    print_json(rows, nx, gate_pass, idx16_gate_pass, idx16_feasible,
               bf16_speedup, fp16_speedup, idx16_bf16_speedup,
               idx16_fp16_speedup);
  } else {
    std::printf("%-16s %-6s %-8s %-6s %10s %12s %12s %7s\n", "kernel",
                "format", "variant", "index", "GB/s", "bytes/row", "us/call",
                "reps");
    for (const Row& r : rows) {
      std::printf("%-16s %-6s %-8s %-6s %10.2f %12.1f %12.2f %7d\n",
                  r.kernel.c_str(), r.format.c_str(), r.variant.c_str(),
                  r.index.c_str(), r.gbs(), r.bytes_per_row, r.seconds * 1e6,
                  r.reps);
    }
    std::printf("\nstaged 16-bit ELL SpMV speedup vs scalar: bf16 %.2fx, "
                "fp16 %.2fx\n",
                bf16_speedup, fp16_speedup);
    std::printf("idx16 vs idx32 staged SpMV speedup: bf16 %.2fx, "
                "fp16 %.2fx\n",
                idx16_bf16_speedup, idx16_fp16_speedup);
    std::printf("gate (16-bit SpMV bytes/row < fp32 idx32): %s\n",
                gate_pass ? "PASS" : "FAIL");
    std::printf("gate (bf16 idx16 bytes/row < bf16 idx32): %s\n",
                !idx16_feasible ? "SKIP (idx16 infeasible at this grid)"
                : idx16_gate_pass ? "PASS"
                                  : "FAIL");
  }
  return (gate_pass && idx16_gate_pass) ? 0 : 1;
}
