// Solver-as-a-service throughput exhibit: solves/sec vs batch size against
// one cached operator, cold-vs-warm setup cost, async queue drain, and the
// scenario catalog — the "millions of users" axis of the ROADMAP on top of
// the paper's single-solve GMRES-IR pipeline.
//
//   cold      first request: generation + coloring + hierarchy build + solve
//   warm B    repeat descriptor, B right-hand sides: cache hit amortizes the
//             whole setup across the batch (per-RHS results bit-identical to
//             B independent solves)
//   queue     several tickets submitted async, drained by the worker pool
//   scenarios every registered coefficient field solved to the same 1e-9
//
// Exit-code gates (CI runs this via bench/run_bench.sh):
//   - the second request of an identical descriptor is a cache hit with
//     near-zero setup time,
//   - warm-cache batched (B>=16) solves/sec strictly exceeds the cold
//     single-RHS request at unchanged per-RHS convergence (outer 1e-9),
//   - every scenario solve converges.
//
//   $ ./exp_throughput [--json]      # HPGMX_NX/HPGMX_SERVICE_* scale it
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "exhibit_common.hpp"
#include "service/solver_service.hpp"

namespace {

using namespace hpgmx;

struct BatchRow {
  int batch = 0;
  ServiceResult res;

  [[nodiscard]] double wall() const {
    return res.setup_seconds + res.solve_seconds;
  }
  [[nodiscard]] double solves_per_sec() const {
    return wall() > 0 ? batch / wall() : 0.0;
  }
  [[nodiscard]] double max_relres() const {
    double m = 0.0;
    for (const SolveResult& r : res.rhs) {
      m = std::max(m, r.relative_residual);
    }
    return m;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using hpgmx::bench::ExhibitConfig;
  using hpgmx::bench::has_flag;
  const bool json = has_flag(argc, argv, "--json");

  ExhibitConfig cfg = ExhibitConfig::from_env(/*default_n=*/16);
  ServiceConfig service_cfg = ServiceConfig::from_env();
  const ProblemDescriptor desc = ProblemDescriptor::from_bench_params(
      cfg.params, cfg.ranks, SolverKind::GmresIr);

  std::vector<int> batch_sizes{1, 4, 16, 64};
  const int batch_max =
      static_cast<int>(env_int_or("HPGMX_BATCH_MAX", batch_sizes.back()));
  std::erase_if(batch_sizes, [&](int b) { return b > batch_max; });

  if (!json) {
    hpgmx::bench::banner(
        "exp_throughput — solver-as-a-service: batched many-RHS solves "
        "against a cached operator",
        "single-solve HPG-MxP exhibits, extended to a served workload");
    std::printf("descriptor: %s\nhash: %016llx\n", desc.canonical().c_str(),
                static_cast<unsigned long long>(desc.hash()));
  }

  SolverService service(service_cfg);

  // -- cold: the first request pays generation + coloring + hierarchy ------
  SolveRequest cold_req;
  cold_req.desc = desc;
  const BatchRow cold{1, service.solve_now(cold_req)};

  // -- warm sweep: identical descriptor, growing RHS batches ---------------
  std::vector<BatchRow> rows;
  for (const int b : batch_sizes) {
    SolveRequest req;
    req.desc = desc;
    req.num_rhs = b;
    req.rhs_spread = 0.25;
    rows.push_back({b, service.solve_now(req)});
  }

  // -- async queue: one ticket per worker, drained concurrently ------------
  const int tickets = service_cfg.workers;
  const int queue_batch = 4;
  WallTimer queue_timer;
  std::vector<std::future<ServiceResult>> futures;
  futures.reserve(static_cast<std::size_t>(tickets));
  for (int t = 0; t < tickets; ++t) {
    SolveRequest req;
    req.desc = desc;
    req.num_rhs = queue_batch;
    req.rhs_spread = 0.25;
    futures.push_back(service.submit(req));
  }
  bool queue_converged = true;
  for (auto& f : futures) {
    queue_converged = f.get().all_converged() && queue_converged;
  }
  const double queue_wall = queue_timer.seconds();
  const double queue_solves_per_sec =
      queue_wall > 0 ? tickets * queue_batch / queue_wall : 0.0;

  // -- scenario catalog: every registered coefficient field to 1e-9 --------
  struct ScenarioRow {
    std::string name;
    ServiceResult res;
    double max_relres = 0.0;
  };
  std::vector<ScenarioRow> scenario_rows;
  for (const Scenario sc : scenario_catalog()) {
    ProblemDescriptor sd = desc;
    sd.scenario.kind = sc;
    // The convection-diffusion scenario is the gamma-biased stencil (an
    // exact binary fraction so demoted operators round identically).
    sd.gamma = sc == Scenario::ConvDiff ? 0.0625 : 0.0;
    SolveRequest req;
    req.desc = sd;
    req.num_rhs = 2;
    req.rhs_spread = 0.25;
    ScenarioRow row{scenario_name(sc), service.solve_now(req), 0.0};
    row.max_relres = BatchRow{req.num_rhs, row.res}.max_relres();
    scenario_rows.push_back(std::move(row));
  }

  const OperatorCacheStats cache = service.cache_stats();
  service.shutdown();

  // -- gates ---------------------------------------------------------------
  const BatchRow& warm1 = rows.front();
  const bool gate_cache_hit =
      warm1.res.cache_hit &&
      warm1.res.setup_seconds <
          std::max(1e-4, 0.1 * cold.res.setup_seconds);
  bool gate_throughput = true;
  bool any_large_batch = false;
  for (const BatchRow& r : rows) {
    if (r.batch >= 16) {
      any_large_batch = true;
      gate_throughput =
          gate_throughput && r.solves_per_sec() > cold.solves_per_sec();
    }
  }
  gate_throughput = gate_throughput && any_large_batch;
  // Unchanged convergence: every warm RHS reaches the same outer 1e-9, and
  // the warm batch's first column repeats the cold solve bit-for-bit (same
  // cached operator, same arithmetic).
  bool gate_convergence = cold.res.all_converged() && queue_converged;
  for (const BatchRow& r : rows) {
    gate_convergence = gate_convergence && r.res.all_converged();
  }
  gate_convergence =
      gate_convergence &&
      warm1.res.rhs[0].iterations == cold.res.rhs[0].iterations &&
      warm1.res.rhs[0].relative_residual == cold.res.rhs[0].relative_residual;
  bool gate_scenarios = true;
  for (const ScenarioRow& s : scenario_rows) {
    gate_scenarios = gate_scenarios && s.res.all_converged();
  }
  const bool ok =
      gate_cache_hit && gate_throughput && gate_convergence && gate_scenarios;

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"throughput\",\n");
    std::printf(
        "  \"config\": {\"nx\": %d, \"ranks\": %d, \"solver\": \"%s\", "
        "\"precision\": \"%s\", \"tol\": %.3g, \"workers\": %d, "
        "\"descriptor_hash\": \"%016llx\"},\n",
        static_cast<int>(cfg.params.nx), cfg.ranks,
        solver_kind_name(desc.solver),
        std::string(precision_name(desc.inner_precision)).c_str(), desc.tol,
        service_cfg.workers,
        static_cast<unsigned long long>(desc.hash()));
    std::printf(
        "  \"cold\": {\"setup_seconds\": %.6f, \"solve_seconds\": %.6f, "
        "\"solves_per_sec\": %.3f, \"iterations\": %d, \"relres\": %.3e, "
        "\"status\": \"%s\", \"attempts\": %zu, \"recoveries\": %d},\n",
        cold.res.setup_seconds, cold.res.solve_seconds, cold.solves_per_sec(),
        cold.res.rhs[0].iterations, cold.res.rhs[0].relative_residual,
        solve_status_name(cold.res.status).data(), cold.res.attempts.size(),
        cold.res.recoveries);
    std::printf("  \"batches\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BatchRow& r = rows[i];
      std::printf(
          "    {\"batch\": %d, \"cache_hit\": %s, \"setup_seconds\": %.6f, "
          "\"solve_seconds\": %.6f, \"solves_per_sec\": %.3f, "
          "\"iterations_per_rhs\": %d, \"max_relres\": %.3e, "
          "\"status\": \"%s\", \"attempts\": %zu, \"recoveries\": %d, "
          "\"all_converged\": %s}%s\n",
          r.batch, r.res.cache_hit ? "true" : "false", r.res.setup_seconds,
          r.res.solve_seconds, r.solves_per_sec(), r.res.rhs[0].iterations,
          r.max_relres(), solve_status_name(r.res.status).data(),
          r.res.attempts.size(), r.res.recoveries,
          r.res.all_converged() ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"queue\": {\"tickets\": %d, \"batch\": %d, \"wall_seconds\": "
        "%.6f, \"solves_per_sec\": %.3f, \"all_converged\": %s},\n",
        tickets, queue_batch, queue_wall, queue_solves_per_sec,
        queue_converged ? "true" : "false");
    std::printf("  \"scenarios\": [\n");
    for (std::size_t i = 0; i < scenario_rows.size(); ++i) {
      const ScenarioRow& s = scenario_rows[i];
      std::printf(
          "    {\"name\": \"%s\", \"iterations_per_rhs\": %d, "
          "\"max_relres\": %.3e, \"status\": \"%s\", \"attempts\": %zu, "
          "\"all_converged\": %s}%s\n",
          s.name.c_str(), s.res.rhs[0].iterations, s.max_relres,
          solve_status_name(s.res.status).data(), s.res.attempts.size(),
          s.res.all_converged() ? "true" : "false",
          i + 1 < scenario_rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"cache\": {\"hits\": %llu, \"misses\": %llu, \"evictions\": "
        "%llu, \"admission_rejects\": %llu, \"eviction_skips\": %llu, "
        "\"entries\": %zu, \"bytes\": %zu},\n",
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.admission_rejects),
        static_cast<unsigned long long>(cache.eviction_skips), cache.entries,
        cache.bytes);
    std::printf(
        "  \"gates\": {\"warm_cache_hit\": %s, "
        "\"warm_batched_faster_than_cold\": %s, \"identical_convergence\": "
        "%s, \"scenarios_converge\": %s}\n",
        gate_cache_hit ? "true" : "false", gate_throughput ? "true" : "false",
        gate_convergence ? "true" : "false",
        gate_scenarios ? "true" : "false");
    std::printf("}\n");
  } else {
    std::printf("\ncold request : setup %.4f s  solve %.4f s  -> %.2f "
                "solves/s (%d iters, relres %.2e)\n",
                cold.res.setup_seconds, cold.res.solve_seconds,
                cold.solves_per_sec(), cold.res.rhs[0].iterations,
                cold.res.rhs[0].relative_residual);
    std::printf("\n%6s %6s %10s %10s %12s %8s %10s\n", "batch", "hit",
                "setup(s)", "solve(s)", "solves/s", "iters", "max relres");
    for (const BatchRow& r : rows) {
      std::printf("%6d %6s %10.4f %10.4f %12.2f %8d %10.2e\n", r.batch,
                  r.res.cache_hit ? "yes" : "no", r.res.setup_seconds,
                  r.res.solve_seconds, r.solves_per_sec(),
                  r.res.rhs[0].iterations, r.max_relres());
    }
    std::printf("\nqueue: %d tickets x %d RHS on %d workers -> %.2f "
                "solves/s (%s)\n",
                tickets, queue_batch, service_cfg.workers,
                queue_solves_per_sec, queue_converged ? "converged" : "FAIL");
    std::printf("\nscenario catalog (GMRES-IR to %.0e):\n", desc.tol);
    for (const ScenarioRow& s : scenario_rows) {
      std::printf("  %-10s %5d iters/rhs  max relres %.2e  %s\n",
                  s.name.c_str(), s.res.rhs[0].iterations, s.max_relres,
                  s.res.all_converged() ? "ok" : "FAIL");
    }
    std::printf("\ncache: %llu hits / %llu misses, %zu entries, %.2f MiB\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses), cache.entries,
                static_cast<double>(cache.bytes) / (1024.0 * 1024.0));
    std::printf("gates: warm_cache_hit=%d warm_batched_faster_than_cold=%d "
                "identical_convergence=%d scenarios_converge=%d -> %s\n",
                gate_cache_hit ? 1 : 0, gate_throughput ? 1 : 0,
                gate_convergence ? 1 : 0, gate_scenarios ? 1 : 0,
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
