// Fig. 8: roofline of the ten most expensive kernels on one MI250x GCD —
// the paper's point is that every kernel sits at the HBM bandwidth limit
// (memory-bound), with fp32 variants at the same bandwidth but twice the
// effective FLOP rate per byte of values.
//
// Reproduction: measure this host's STREAM roof, time each kernel in both
// precisions, compute (AI, GFLOP/s) from the FLOP/bytes models, and print
// the %-of-roof column that encodes the paper's claim.
#include "blas/multivector.hpp"
#include "coloring/coloring.hpp"
#include "core/bytes_model.hpp"
#include "core/multigrid.hpp"
#include "exhibit_common.hpp"
#include "perf/bandwidth.hpp"
#include "perf/roofline.hpp"
#include "sparse/gauss_seidel.hpp"

namespace {

using namespace hpgmx;

template <typename T, typename F>
KernelSample time_kernel(const char* name, double flops, double bytes,
                         int reps, F&& fn) {
  fn();  // warmup
  WallTimer t;
  for (int i = 0; i < reps; ++i) {
    fn();
  }
  return KernelSample{name, flops * reps, bytes * reps, t.seconds()};
}

template <typename T>
void add_kernels(std::vector<KernelSample>& out, const Problem& prob,
                 const CoarseLevel& coarse, int reps) {
  const CsrMatrix<T> a = prob.a.convert<T>();
  const EllMatrix<T> e = ell_from_csr(a);
  const auto colors = jpl_color(a, 42);
  const RowPartition part = color_partition(colors);
  const local_index_t n = a.num_rows;
  const std::int64_t nnz = a.nnz();
  const char* suffix = std::is_same_v<T, double> ? "fp64" : "fp32";

  AlignedVector<T> x(static_cast<std::size_t>(a.num_cols), T(1));
  AlignedVector<T> y(static_cast<std::size_t>(n), T(0));
  AlignedVector<T> b(static_cast<std::size_t>(n), T(1));

  // Charge the index width the ELL kernels actually stream (the Auto path
  // compresses to 16-bit deltas when the column window permits) — modeled
  // bytes must match the measured kernel or the roofline overstates GB/s.
  out.push_back(time_kernel<T>(
      (std::string("GS-multicolor-") + suffix).c_str(),
      static_cast<double>(gs_sweep_flops(nnz, n)),
      gs_sweep_bytes(nnz, n, PrecisionTraits<T>::bytes, e.index_bytes()),
      reps, [&] {
        gs_sweep_colored_ell(e, part, std::span<const T>(b.data(), b.size()),
                             std::span<T>(x.data(), x.size()));
      }));
  out.push_back(time_kernel<T>(
      (std::string("SpMV-ell-") + suffix).c_str(),
      static_cast<double>(spmv_flops(nnz)),
      spmv_bytes(nnz, n, PrecisionTraits<T>::bytes, e.index_bytes()), reps,
      [&] {
        ell_spmv(e, std::span<const T>(x.data(), x.size()),
                 std::span<T>(y.data(), y.size()));
      }));

  // Fused SpMV-restriction (the two unlabelled kernels of Fig. 8).
  std::int64_t nnz_sel = 0;
  for (const local_index_t fr : coarse.c2f) {
    nnz_sel += prob.a.row_ptr[fr + 1] - prob.a.row_ptr[fr];
  }
  AlignedVector<T> rc(coarse.c2f.size(), T(0));
  out.push_back(time_kernel<T>(
      (std::string("FusedSpMV-restr-") + suffix).c_str(),
      static_cast<double>(fused_restrict_flops(
          nnz_sel, static_cast<local_index_t>(coarse.c2f.size()))),
      fused_restrict_bytes<T>(nnz_sel, n,
                              static_cast<local_index_t>(coarse.c2f.size())),
      reps, [&] {
        fused_restrict_residual(
            a, std::span<const T>(b.data(), b.size()),
            std::span<const T>(x.data(), x.size()),
            std::span<const local_index_t>(coarse.c2f.data(),
                                           coarse.c2f.size()),
            std::span<T>(rc.data(), rc.size()));
      }));

  // CGS2 GEMV pair at half restart depth.
  const int k = 15;
  MultiVector<T> q(n, k + 1);
  for (int j = 0; j <= k; ++j) {
    set_all(q.column(j), T(0.01) * static_cast<T>(j + 1));
  }
  SelfComm comm;
  AlignedVector<T> h(static_cast<std::size_t>(k) + 1, T(0));
  out.push_back(time_kernel<T>(
      (std::string("CGS2-gemv-") + suffix).c_str(),
      static_cast<double>(cgs2_flops(n, k)) / 2.0, cgs2_bytes<T>(n, k) / 2.0,
      reps, [&] {
        gemv_t(comm, q, k, std::span<const T>(y.data(), y.size()),
               std::span<T>(h.data(), h.size()));
        gemv_n_sub(q, k, std::span<const T>(h.data(), h.size()),
                   std::span<T>(y.data(), y.size()));
      }));
  out.push_back(time_kernel<T>(
      (std::string("WAXPBY-") + suffix).c_str(), 3.0 * n, waxpby_bytes<T>(n),
      reps, [&] {
        waxpby(T(1.5), std::span<const T>(b.data(), b.size()), T(0.5),
               std::span<const T>(y.data(),
                                  static_cast<std::size_t>(n)),
               std::span<T>(x.data(), static_cast<std::size_t>(n)));
      }));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  // 64^3 keeps the harness quick; kernels may sit above a DRAM roof when
  // the working set fits in a large L3 — use HPGMX_NX=96+ for a strictly
  // DRAM-resident roofline.
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/64, /*ranks=*/1);
  if (!json) {
    banner("EXP fig8 roofline (paper Fig. 8)",
           "ten most expensive kernels sit on the HBM bandwidth roof of one "
           "MI250x GCD (1.6 TB/s)");
  }

  const BandwidthResult bw = measure_stream_bandwidth();

  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = cfg.params.nx;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const CoarseLevel coarse = coarsen(prob);
  const int reps = static_cast<int>(env_int_or("HPGMX_ROOFLINE_REPS", 5));

  std::vector<KernelSample> samples;
  add_kernels<double>(samples, prob, coarse, reps);
  add_kernels<float>(samples, prob, coarse, reps);

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"fig8_roofline\",\n");
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"stream_triad_gbs\": %.6g,\n", bw.triad_gbs);
    std::printf("  \"stream_copy_gbs\": %.6g,\n", bw.copy_gbs);
    std::printf("  \"kernels\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const KernelSample& s = samples[i];
      const double gbs = s.seconds > 0 ? s.bytes / s.seconds * 1e-9 : 0.0;
      const double gflops = s.seconds > 0 ? s.flops / s.seconds * 1e-9 : 0.0;
      std::printf("    {\"name\": \"%s\", \"ai_flops_per_byte\": %.6g, "
                  "\"gflops\": %.6g, \"gbs\": %.6g, \"pct_roof\": %.6g}%s\n",
                  s.name.c_str(), s.arithmetic_intensity(), gflops, gbs,
                  bw.triad_gbs > 0 ? 100.0 * gbs / bw.triad_gbs : 0.0,
                  i + 1 < samples.size() ? "," : "");
    }
    std::printf("  ]\n");
    std::printf("}\n");
    return 0;
  }

  std::printf("host STREAM roof: triad %.2f GB/s, copy %.2f GB/s\n\n",
              bw.triad_gbs, bw.copy_gbs);
  std::printf("%s\n",
              roofline_report(samples, bw.triad_gbs, /*peak=*/0.0).c_str());
  std::printf("paper Fig. 8: all kernels line up at the HBM bandwidth limit\n"
              "(~O(0.1) FLOP/byte, >=70%% of roof). Check the %%roof column:\n"
              "streaming kernels should sit high; gather-heavy GS/SpMV may\n"
              "fall lower on a scalar CPU (no coalesced gathers) — the AI\n"
              "column must still match the paper's bandwidth-bound regime.\n");
  return 0;
}
