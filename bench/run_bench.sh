#!/usr/bin/env sh
# Produce the BENCH_kernels.json perf-trajectory artifact from the kernel
# microbenchmarks. Usage:
#
#   bench/run_bench.sh [output.json]
#
# Env: BUILD_DIR (default: build), plus the usual HPGMX_* scale knobs
# (HPGMX_NX, HPGMX_BENCH_SECONDS, ...). The emitted JSON covers both ELL
# index layouts (idx32 absolute columns vs idx16 compressed deltas). Exits
# nonzero when either micro_kernels gate fails — 16-bit value formats must
# model fewer SpMV bytes/row than fp32, and bf16+idx16 must model strictly
# fewer than bf16+idx32 — so CI can call this directly.
set -eu

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_kernels.json}
BIN="$BUILD_DIR/bench/micro_kernels"

if [ ! -x "$BIN" ]; then
  echo "run_bench.sh: $BIN not found — build first (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

"$BIN" --json > "$OUT"
echo "run_bench.sh: wrote $OUT" >&2
