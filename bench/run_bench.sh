#!/usr/bin/env sh
# Produce the benchmark-artifact JSONs:
#
#   bench/run_bench.sh [kernels.json] [throughput.json] [adaptive.json] \
#                      [resilience.json] [sdc.json]
#
#   BENCH_kernels.json     — kernel microbenchmarks (micro_kernels --json)
#   BENCH_throughput.json  — solver-service throughput exhibit
#                            (exp_throughput --json)
#   BENCH_adaptive.json    — adaptive-precision GMRES-IR vs static schedules
#                            (exp_adaptive --json)
#   BENCH_resilience.json  — deadlines, retry-with-promotion, chaos
#                            determinism (exp_resilience --json)
#   BENCH_sdc.json         — silent-data-corruption hardening: seeded fault
#                            injection, detection, checkpoint/rollback
#                            recovery (exp_sdc --json)
#
# Env: BUILD_DIR (default: build), plus the usual HPGMX_* scale knobs
# (HPGMX_NX, HPGMX_BENCH_SECONDS, HPGMX_SERVICE_WORKERS, HPGMX_BATCH_MAX,
# HPGMX_CHAOS, HPGMX_DEADLINE_MS, HPGMX_FAULT, HPGMX_FAULT_SEED, ...).
# Exits nonzero when any gate fails — the 16-bit byte-model gates of
# micro_kernels, the cache-hit / batched-throughput / convergence gates of
# exp_throughput, the adaptive-bytes-vs-static gates of exp_adaptive, the
# deadline / retry / chaos-determinism gates of exp_resilience, and the
# detect-and-recover / clean-bit-identical / seed-reproducible gates of
# exp_sdc — so CI can call this directly.
set -eu

BUILD_DIR=${BUILD_DIR:-build}
KERNELS_OUT=${1:-BENCH_kernels.json}
THROUGHPUT_OUT=${2:-BENCH_throughput.json}
ADAPTIVE_OUT=${3:-BENCH_adaptive.json}
RESILIENCE_OUT=${4:-BENCH_resilience.json}
SDC_OUT=${5:-BENCH_sdc.json}
KERNELS_BIN="$BUILD_DIR/bench/micro_kernels"
THROUGHPUT_BIN="$BUILD_DIR/bench/exp_throughput"
ADAPTIVE_BIN="$BUILD_DIR/bench/exp_adaptive"
RESILIENCE_BIN="$BUILD_DIR/bench/exp_resilience"
SDC_BIN="$BUILD_DIR/bench/exp_sdc"

for bin in "$KERNELS_BIN" "$THROUGHPUT_BIN" "$ADAPTIVE_BIN" \
           "$RESILIENCE_BIN" "$SDC_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "run_bench.sh: $bin not found — build first (cmake --build $BUILD_DIR)" >&2
    exit 2
  fi
done

"$KERNELS_BIN" --json > "$KERNELS_OUT"
echo "run_bench.sh: wrote $KERNELS_OUT" >&2

"$THROUGHPUT_BIN" --json > "$THROUGHPUT_OUT"
echo "run_bench.sh: wrote $THROUGHPUT_OUT" >&2

"$ADAPTIVE_BIN" --json > "$ADAPTIVE_OUT"
echo "run_bench.sh: wrote $ADAPTIVE_OUT" >&2

"$RESILIENCE_BIN" --json > "$RESILIENCE_OUT"
echo "run_bench.sh: wrote $RESILIENCE_OUT" >&2

"$SDC_BIN" --json > "$SDC_OUT"
echo "run_bench.sh: wrote $SDC_OUT" >&2
