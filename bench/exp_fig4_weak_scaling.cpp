// Fig. 4: 'weak' scaling of the benchmark on Frontier — penalized GFLOP/s
// per GCD vs node count for the paper's optimized code ("present") and the
// reference implementation ("xsdk"). Paper observations: flat scaling to
// ~1024 nodes, efficiency dropping to 78% at 9408 nodes (allreduce latency
// in CGS2 + coarse-level communication), xsdk far lower and flat.
//
// Reproduction: (a) real runs at 1..8 virtual ranks on this host (time-
// shared: per-rank numbers scale down with P by construction — shape only);
// (b) measured single-rank iteration profiles projected through the
// Frontier machine model over the paper's node counts.
//
// Real MPI ranks: build with -DHPGMX_WITH_MPI=ON and run
//   $ HPGMX_COMM=mpi mpirun -np 4 ./exp_fig4_weak_scaling --json
// Each process hosts one rank; the measurement section runs per process on
// a Self world, the scaling run spans the whole mpirun world, and only
// world rank 0 prints.
//
//   $ ./exp_fig4_weak_scaling [--json]   # --json: machine-readable report
#include <cmath>
#include <vector>

#include "comm/comm_world.hpp"
#include "comm/thread_comm.hpp"
#include "exhibit_common.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/1.0);
  const bool mpi = cfg.params.comm_backend == CommBackend::Mpi;
  // Under mpirun every process executes this whole program: the single-rank
  // profile measurements run per process on a Self world, and everything
  // below stays silent except on world rank 0.
  const bool root = !mpi || mpi_world_rank() == 0;
  if (root && !json) {
    banner("EXP fig4 weak-scaling (paper Fig. 4)",
           "present: ~flat to 1024 nodes, 78% efficiency at 9408 nodes "
           "(17.23 PF total); xsdk: ~5-7x lower, flat");
  }

  // --- measure single-rank per-iteration profiles on both code paths -----
  double opt_overlap = 0.95;  // measured separately by exp_fig9_trace
  IterationProfile prof_present, prof_xsdk;
  double flops_per_iter = 0;
  double present_ms_per_iter = 0;
  double xsdk_ms_per_iter = 0;
  {
    BenchParams p = cfg.params;
    p.opt = OptLevel::Optimized;
    if (mpi) {
      p.comm_backend = CommBackend::Self;
    }
    BenchmarkDriver driver(p, 1);
    const PhaseResult mxp = driver.run_phase(/*mixed=*/true);
    prof_present = iteration_profile_from_phase(mxp, p, 1, opt_overlap);
    flops_per_iter = prof_present.flops;
    present_ms_per_iter = prof_present.local_seconds * 1e3;
    if (root && !json) {
      std::printf("measured optimized mxp: %.3f ms/iter, %.1f MFLOP/iter\n",
                  present_ms_per_iter, flops_per_iter * 1e-6);
    }
  }
  {
    BenchParams p = cfg.params;
    p.opt = OptLevel::Reference;
    if (mpi) {
      p.comm_backend = CommBackend::Self;
    }
    BenchmarkDriver driver(p, 1);
    const PhaseResult mxp = driver.run_phase(/*mixed=*/true);
    prof_xsdk = iteration_profile_from_phase(mxp, p, 1, /*overlap=*/0.0);
    xsdk_ms_per_iter = prof_xsdk.local_seconds * 1e3;
    if (root && !json) {
      std::printf("measured reference mxp: %.3f ms/iter (xsdk path)\n\n",
                  xsdk_ms_per_iter);
    }
  }

  // --- (a) real multi-rank runs ------------------------------------------
  // Thread backend: time-shared virtual ranks at 1..8. Mpi backend: the
  // mpirun world is one fixed size, so there is exactly one (real,
  // process-parallel) point — sweep node counts by sweeping -np.
  if (root && !json) {
    if (mpi) {
      std::printf("real MPI-rank run (one process per rank):\n");
    } else {
      std::printf("real virtual-rank runs (time-shared on this host; per-rank\n"
                  "throughput divides by P — read the *shape*, not the level):\n");
    }
    std::printf("%8s %14s %14s\n", "ranks", "GF/s total", "GF/s per rank");
  }
  std::vector<int> real_ranks;
  if (mpi) {
    real_ranks.push_back(mpi_world_size());
  } else {
    real_ranks = {1, 2, 4, 8};
  }
  std::vector<double> real_gflops;
  for (const int p : real_ranks) {
    BenchParams bp = cfg.params;
    bp.bench_seconds = cfg.params.bench_seconds / 2;
    BenchmarkDriver driver(bp, p);
    const PhaseResult mxp = driver.run_phase(true);
    real_gflops.push_back(mxp.raw_gflops);
    if (root && !json) {
      std::printf("%8d %14.3f %14.3f\n", p, mxp.raw_gflops,
                  mxp.raw_gflops / p);
    }
  }

  if (!root) {
    return 0;  // the report below is world rank 0's job
  }

  // --- (b) machine-model projection over the paper's scale ---------------
  // Two rescalings take the measured profile to a Frontier GCD: (1) the
  // paper's per-GCD workload is 320^3 — scale work volume by (320/nx)^3;
  // (2) a GCD streams ~1.6 TB/s vs this host's measured rate — scale local
  // time by the bandwidth ratio. The weak-scaling *shape* then comes
  // entirely from the communication model.
  const MachineModel frontier = MachineModel::frontier_gcd();
  const double host_bw = env_double_or("HPGMX_HOST_BW_GBS", 10.0);
  const double bw_scale = host_bw / frontier.mem_bw_gbs;
  const double vol_scale =
      std::pow(320.0 / static_cast<double>(cfg.params.nx), 3.0);
  prof_present.local_seconds *= bw_scale * vol_scale;
  prof_present.flops = flops_per_iter * vol_scale;
  prof_present.halo_bytes = 6.0 * 320.0 * 320.0 * sizeof(double) *
                            (1 + 2 * cfg.params.mg_levels);
  prof_xsdk.local_seconds *= bw_scale * vol_scale;
  prof_xsdk.flops = prof_xsdk.flops * vol_scale;
  prof_xsdk.halo_bytes = prof_present.halo_bytes;

  const std::vector<int> nodes{1, 2, 8, 64, 512, 1024, 4096, 9408};
  const auto pts_present =
      project_weak_scaling(frontier, prof_present, nodes);
  const auto pts_xsdk = project_weak_scaling(frontier, prof_xsdk, nodes);
  const double full_pf = pts_present.back().gflops_per_rank *
                         static_cast<double>(pts_present.back().ranks) * 1e-6;

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"fig4_weak_scaling\",\n");
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"measured_ms_per_iter\": {\"present\": %.6g, "
                "\"xsdk\": %.6g},\n",
                present_ms_per_iter, xsdk_ms_per_iter);
    std::printf("  \"real_runs\": [\n");
    for (std::size_t i = 0; i < real_ranks.size(); ++i) {
      std::printf("    {\"ranks\": %d, \"gflops_total\": %.6g, "
                  "\"gflops_per_rank\": %.6g}%s\n",
                  real_ranks[i], real_gflops[i],
                  real_gflops[i] / real_ranks[i],
                  i + 1 < real_ranks.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"frontier_projection\": [\n");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::printf("    {\"nodes\": %d, \"present_gflops_per_gcd\": %.6g, "
                  "\"xsdk_gflops_per_gcd\": %.6g, "
                  "\"present_efficiency\": %.6g}%s\n",
                  pts_present[i].nodes, pts_present[i].gflops_per_rank,
                  pts_xsdk[i].gflops_per_rank, pts_present[i].efficiency,
                  i + 1 < nodes.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"projected_full_system_pf\": %.6g,\n", full_pf);
    std::printf("  \"paper_full_system_pf\": 17.23\n");
    std::printf("}\n");
    return 0;
  }

  std::printf("\nFrontier-model projection (GF/s per GCD, mxp):\n");
  std::printf("%8s %12s %12s %12s\n", "nodes", "present", "xsdk",
              "present eff");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::printf("%8d %12.1f %12.1f %11.1f%%\n", pts_present[i].nodes,
                pts_present[i].gflops_per_rank, pts_xsdk[i].gflops_per_rank,
                pts_present[i].efficiency * 100.0);
  }
  std::printf("\nprojected full-system: %.2f PF  (paper: 17.23 PF at 9408 "
              "nodes, 78%% weak-scaling efficiency)\n",
              full_pf);
  return 0;
}
