// Adaptive-precision GMRES-IR exhibit: the PrecisionController against the
// static schedules, on every registered coefficient scenario.
//
// For each scenario the harness solves the same operator to the 1e-9 outer
// target four ways — three static references (uniform fp32, the progressive
// fp32,bf16,bf16 schedule, uniform bf16) and the adaptive controller with
// its default ladder — and charges each run its *realized* modeled bytes:
// every executed inner cycle costs one fine-level SpMV plus one V-cycle at
// the per-level formats that cycle actually ran (ir_inner_iteration_bytes ×
// the controller's CycleRecords). A static run's bytes are its per-cycle
// cost times its measured cycle count, so the comparison is
// iteration-count-aware: a cheap format that needs twice the cycles pays
// for them.
//
// Exit-code gates (CI runs this via bench/run_bench.sh):
//   - the adaptive run converges to 1e-9 on every scenario,
//   - adaptive realized bytes <= the best *converged* static run's bytes on
//     every scenario,
//   - adaptive realized bytes < uniform fp32's bytes (strictly) on every
//     scenario.
//
//   $ ./exp_adaptive [--json]       # HPGMX_NX / HPGMX_MG_LEVELS scale it
#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/adaptive_ir.hpp"
#include "exhibit_common.hpp"
#include "grid/problem.hpp"
#include "grid/scenario.hpp"

namespace {

using namespace hpgmx;

struct RunRow {
  std::string label;
  bool is_adaptive = false;
  SolveResult result;
  double bytes = 0.0;
  int cycles = 0;      ///< inner GMRES cycles executed
  int promotions = 0;  ///< adaptive only
  std::string realized;  ///< per-cycle formats, run-length compressed
};

/// "bf16 x12, fp32 x7" — the realized format sequence, compressed.
std::string realized_string(const std::vector<Precision>& seq) {
  std::string out;
  std::size_t i = 0;
  while (i < seq.size()) {
    std::size_t j = i;
    while (j < seq.size() && seq[j] == seq[i]) {
      ++j;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += precision_name(seq[i]);
    out += " x" + std::to_string(j - i);
    i = j;
  }
  return out;
}

RunRow run_one(const ProblemHierarchy& h, const BenchParams& params,
               const std::string& label, bool adaptive) {
  SelfComm comm;
  SolverOptions opts;
  opts.max_iters = 4000;
  opts.tol = 1e-9;
  AdaptiveGmresIr solver(h, params, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  RunRow row;
  row.label = label;
  row.is_adaptive = adaptive;
  row.result = solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  row.bytes = solver.realized_bytes();
  row.cycles = static_cast<int>(solver.controller().records().size());
  row.promotions = solver.controller().promotions();
  row.realized = realized_string(solver.controller().realized());
  return row;
}

struct ScenarioReport {
  std::string name;
  std::vector<RunRow> rows;  ///< statics first, adaptive last
  double best_static_bytes = 0.0;
  double fp32_bytes = 0.0;

  [[nodiscard]] const RunRow& adaptive() const { return rows.back(); }
};

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::has_flag(argc, argv, "--json");
  const auto cfg = bench::ExhibitConfig::from_env(/*default_n=*/16);

  if (!json) {
    bench::banner(
        "exp_adaptive — adaptive per-iteration precision vs static schedules",
        "memory-wall thesis: the byte-optimal inner format is the lowest "
        "one that still converges — discovered at run time, per operator");
  }

  std::vector<ScenarioReport> reports;
  bool all_converged = true;
  bool all_le_static = true;
  bool all_lt_fp32 = true;

  for (const Scenario sc : scenario_catalog()) {
    ScenarioReport rep;
    rep.name = scenario_name(sc);

    BenchParams params = cfg.params;
    params.scenario = ScenarioSpec{};
    params.scenario.kind = sc;
    params.adaptive = AdaptiveConfig{};

    ProblemParams pp;
    pp.nx = params.nx;
    pp.ny = params.ny;
    pp.nz = params.nz;
    pp.gamma = params.gamma;
    pp.scenario = params.scenario;
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                        params.mg_levels, params.coloring_seed);

    // -- static references ------------------------------------------------
    struct StaticCase {
      const char* label;
      const char* schedule;  // nullptr = uniform `uniform`
      Precision uniform;
    };
    const StaticCase statics[] = {
        {"static fp32", nullptr, Precision::Fp32},
        {"static fp32,bf16,bf16", "fp32,bf16,bf16", Precision::Fp32},
        {"static bf16", nullptr, Precision::Bf16},
    };
    rep.best_static_bytes = std::numeric_limits<double>::infinity();
    for (const StaticCase& s : statics) {
      BenchParams p = params;
      if (s.schedule != nullptr) {
        p.set_precision_schedule(*parse_precision_schedule(s.schedule));
      } else {
        p.set_precision_schedule({});
        p.inner_precision = s.uniform;
      }
      RunRow row = run_one(h, p, s.label, /*adaptive=*/false);
      if (row.result.converged()) {
        rep.best_static_bytes = std::min(rep.best_static_bytes, row.bytes);
      }
      if (std::string(s.label) == "static fp32") {
        rep.fp32_bytes = row.bytes;
      }
      rep.rows.push_back(std::move(row));
    }

    // -- adaptive ----------------------------------------------------------
    // Exploratory bf16 start (not gated): shows the promote-on-stagnation
    // rescue and what the exploration cycles cost on this operator.
    {
      BenchParams p = params;
      p.adaptive.enabled = true;
      p.adaptive.start = Precision::Bf16;
      rep.rows.push_back(
          run_one(h, p, "adaptive bf16-start", /*adaptive=*/false));
    }
    BenchParams p = params;
    p.adaptive.enabled = true;  // default ladder/threshold/patience/start
    rep.rows.push_back(run_one(h, p, "adaptive", /*adaptive=*/true));

    const RunRow& ad = rep.adaptive();
    all_converged = all_converged && ad.result.converged();
    all_le_static = all_le_static && ad.bytes <= rep.best_static_bytes;
    all_lt_fp32 = all_lt_fp32 && rep.fp32_bytes > 0.0 && ad.bytes < rep.fp32_bytes;
    reports.push_back(std::move(rep));
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"adaptive\",\n");
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"scenarios\": [\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const ScenarioReport& rep = reports[i];
      std::printf("    {\"scenario\": \"%s\", \"runs\": [\n",
                  rep.name.c_str());
      for (std::size_t j = 0; j < rep.rows.size(); ++j) {
        const RunRow& r = rep.rows[j];
        std::printf(
            "      {\"label\": \"%s\", \"converged\": %s, \"cycles\": %d, "
            "\"iterations\": %d, \"promotions\": %d, \"bytes\": %.6g, "
            "\"realized\": \"%s\"}%s\n",
            r.label.c_str(), r.result.converged() ? "true" : "false", r.cycles,
            r.result.iterations, r.promotions, r.bytes, r.realized.c_str(),
            j + 1 < rep.rows.size() ? "," : "");
      }
      std::printf("    ], \"best_static_bytes\": %.6g}%s\n",
                  rep.best_static_bytes, i + 1 < reports.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"gates\": {\"adaptive_converged\": %s, "
                "\"adaptive_le_best_static\": %s, "
                "\"adaptive_lt_fp32\": %s}\n",
                all_converged ? "true" : "false",
                all_le_static ? "true" : "false",
                all_lt_fp32 ? "true" : "false");
    std::printf("}\n");
  } else {
    for (const ScenarioReport& rep : reports) {
      std::printf("\nscenario %-10s (best static %.4g MB)\n",
                  rep.name.c_str(), rep.best_static_bytes / 1e6);
      for (const RunRow& r : rep.rows) {
        std::printf(
            "  %-22s %s  cycles %4d  iters %5d  bytes %10.4g MB  [%s]\n",
            r.label.c_str(), r.result.converged() ? "conv" : "FAIL", r.cycles,
            r.result.iterations, r.bytes / 1e6, r.realized.c_str());
      }
    }
    std::printf("\ngates: converged=%d le_best_static=%d lt_fp32=%d\n",
                all_converged ? 1 : 0, all_le_static ? 1 : 0,
                all_lt_fp32 ? 1 : 0);
  }

  return (all_converged && all_le_static && all_lt_fp32) ? 0 : 1;
}
