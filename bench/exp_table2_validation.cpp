// Table 2: iteration ratios n_d/n_ir under the two validation methods at
// increasing scale, plus the fullscale achieved residual norm. Paper rows
// (nodes: std-ratio, fullscale-ratio, fullscale relres):
//     2: 0.968 0.966 9.98e-10        128: 0.968 1.023 2.82e-6
//     8: 0.968 1.008 9.99e-10       1024: 0.968 1.067 1.154e-5
//    64: 0.968 1.050 1.65e-6        4096: 0.968 0.958 1.148e-5
// Key mechanism: the standard ratio is scale-independent (fixed 1-node
// problem); the fullscale double solve converges to 1e-9 at small scale but
// hits the iteration cap at large scale, so the recorded target relaxes.
//
// Reproduction: virtual-rank counts 1..8 with a scaled-down iteration cap
// (HPGMX_T2_CAP) chosen so small worlds converge and large worlds hit the
// cap — the same two regimes as the paper's 8-node/64-node boundary.
//
//   $ ./exp_table2 [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format shared by every exhibit).
#include <vector>

#include "exhibit_common.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/16, /*ranks=*/8);
  if (!json) {
    banner("EXP table2 validation methodologies (paper Table 2 / §3.3)",
           "std ratio constant ~0.968; fullscale hits the cap at scale and "
           "its target relaxes above 1e-9");
  }

  const int cap = static_cast<int>(env_int_or("HPGMX_T2_CAP", 25));
  if (!json) {
    std::printf("iteration cap (scaled from the paper's 10000): %d\n\n", cap);
    std::printf("%8s %10s %12s %22s %12s\n", "ranks", "std", "fullscale",
                "fullscale relres", "d hit cap?");
  }

  struct Row {
    int ranks;
    ValidationResult std_v;
    ValidationResult fs_v;
  };
  std::vector<Row> rows;
  for (const int ranks : {1, 2, 4, 8}) {
    if (ranks > cfg.ranks) {
      break;
    }
    BenchParams p = cfg.params;
    p.validation_max_iters = cap;
    p.validation_ranks = 1;  // standard: small fixed subset, as in §3
    BenchmarkDriver driver(p, ranks);
    Row row;
    row.ranks = ranks;
    row.std_v = driver.run_validation(ValidationMode::Standard);
    row.fs_v = driver.run_validation(ValidationMode::FullScale);
    if (!json) {
      std::printf("%8d %10.3f %12.3f %22.3e %12s\n", ranks, row.std_v.ratio(),
                  row.fs_v.ratio(), row.fs_v.achieved_tol,
                  row.fs_v.d_converged ? "no" : "yes");
    }
    rows.push_back(row);
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"table2_validation\",\n");
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"iteration_cap\": %d,\n", cap);
    std::printf("  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"ranks\": %d, \"std_ratio\": %.6g, "
                  "\"fullscale_ratio\": %.6g, \"fullscale_relres\": %.6g, "
                  "\"d_hit_cap\": %s, \"std_n_d\": %d, \"std_n_ir\": %d}%s\n",
                  r.ranks, r.std_v.ratio(), r.fs_v.ratio(),
                  r.fs_v.achieved_tol, r.fs_v.d_converged ? "false" : "true",
                  r.std_v.n_d, r.std_v.n_ir,
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n");
    std::printf("}\n");
    return 0;
  }
  std::printf(
      "\ncheck against Table 2: (1) the std column is constant across rows\n"
      "(same fixed small problem each time); (2) rows where the double\n"
      "solve hits the cap report a relaxed target (> 1e-9), and the\n"
      "fullscale ratio stays near 1 — the paper's conclusion that standard\n"
      "small-scale validation is about as stringent as fullscale.\n");
  return 0;
}
