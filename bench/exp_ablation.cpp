// Ablation of the paper's §3.2 optimizations, one at a time, on the full
// solver: each row toggles a single design choice and reports the benchmark
// throughput delta against the optimized baseline. This quantifies the
// DESIGN.md claims about *why* the optimized implementation beats the
// reference ('xsdk') code.
//
// The two runtime paths bundle: {ELL + one-sweep multicolor GS + fused
// restrict + overlap} vs {CSR + two-kernel level-scheduled GS + unfused
// restrict + blocking}. Kernel-level ablations (format, smoother, fusion in
// isolation) live in micro_kernels; this harness shows the end-to-end gap
// and the per-motif attribution.
//
//   $ ./exp_ablation [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format shared by every exhibit).
#include "exhibit_common.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/32, /*ranks=*/1,
                                              /*seconds=*/0.8);
  if (!json) {
    banner("EXP ablation (paper §3.2 / DESIGN.md design choices)",
           "optimized vs reference path, end-to-end and per motif");
  }

  PhaseResult phases[2];
  int idx = 0;
  for (const OptLevel opt : {OptLevel::Optimized, OptLevel::Reference}) {
    BenchParams p = cfg.params;
    p.opt = opt;
    BenchmarkDriver driver(p, cfg.ranks);
    phases[idx++] = driver.run_phase(/*mixed=*/true);
  }
  const PhaseResult& opt_phase = phases[0];
  const PhaseResult& ref_phase = phases[1];
  const Motif motifs[] = {Motif::GS, Motif::SpMV, Motif::Restrict,
                          Motif::Ortho};

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"ablation\",\n");
    std::printf("  \"ranks\": %d,\n", cfg.ranks);
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"total\": {\"optimized_gflops\": %.6g, "
                "\"reference_gflops\": %.6g, \"gain\": %.6g},\n",
                opt_phase.raw_gflops, ref_phase.raw_gflops,
                ref_phase.raw_gflops > 0
                    ? opt_phase.raw_gflops / ref_phase.raw_gflops
                    : 0.0);
    std::printf("  \"motifs\": [\n");
    for (std::size_t i = 0; i < sizeof(motifs) / sizeof(motifs[0]); ++i) {
      const Motif m = motifs[i];
      const double o = opt_phase.stats.gflops(m);
      const double r = ref_phase.stats.gflops(m);
      std::printf("    {\"motif\": \"%s\", \"optimized_gflops\": %.6g, "
                  "\"reference_gflops\": %.6g, \"gain\": %.6g}%s\n",
                  std::string(motif_name(m)).c_str(), o, r,
                  r > 0 ? o / r : 0.0,
                  i + 1 < sizeof(motifs) / sizeof(motifs[0]) ? "," : "");
    }
    std::printf("  ]\n");
    std::printf("}\n");
    return 0;
  }

  std::printf("%-10s %16s %16s %10s\n", "motif", "optimized GF/s",
              "reference GF/s", "gain");
  std::printf("%-10s %16.2f %16.2f %9.2fx\n", "TOTAL", opt_phase.raw_gflops,
              ref_phase.raw_gflops,
              ref_phase.raw_gflops > 0
                  ? opt_phase.raw_gflops / ref_phase.raw_gflops
                  : 0.0);
  for (const Motif m : motifs) {
    const double o = opt_phase.stats.gflops(m);
    const double r = ref_phase.stats.gflops(m);
    std::printf("%-10s %16.2f %16.2f %9.2fx\n",
                std::string(motif_name(m)).c_str(), o, r,
                r > 0 ? o / r : 0.0);
  }
  std::printf(
      "\nattribution: GS gain = one-sweep multicolor relaxation replacing\n"
      "the two-kernel level-scheduled solve (§3.2.1); Restr gain = fused\n"
      "SpMV-restriction evaluating only coarse points (§3.2.4); SpMV gain =\n"
      "ELL + overlap (§3.2.2-3.2.3). Ortho is identical code on both paths\n"
      "(any residual delta is measurement noise).\n"
      "paper Fig. 4/5: the xsdk reference achieves several times lower\n"
      "overall throughput — the TOTAL row reproduces that gap's direction.\n");
  return 0;
}
