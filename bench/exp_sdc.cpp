// Silent-data-corruption exhibit: the end-to-end SDC layer (base/fault.hpp)
// exercised over the solver service — seeded value-fault injection, checksum
// + residual-audit detection, and checkpoint/rollback recovery
// (docs/RESILIENCE.md).
//
//   inject   bf16 GMRES-IR request with a scripted single bit flip (a high
//            exponent bit of the outer iterate at cycle 3, rank 0): the
//            growth audit must flag it, the solver must roll back to the
//            last checkpoint, and the request must still converge to the
//            outer 1e-9 with recoveries >= 1
//   clean    the same request fault-free, detection on vs detection off:
//            per-RHS iterations and residuals must match bit-for-bit — the
//            detection machinery (checksum lanes, verdict lanes, checkpoint
//            copies) must not perturb a healthy solve
//   repro    the injected scenario run twice under one HPGMX_FAULT_SEED:
//            flip sites, detection cycles, and recovered solutions are a
//            pure function of the seed, so the two runs must be bitwise
//            identical
//
// Exit-code gates (CI runs this via bench/run_bench.sh):
//   - the injected flip is detected and recovered (converged, recoveries>=1),
//   - the clean detection-on run is bit-identical to detection-off,
//   - same-seed injected runs are bit-identical to each other.
//
//   $ ./exp_sdc [--json]
//
// Env: HPGMX_NX / HPGMX_RANKS scale the descriptor; HPGMX_FAULT overrides
// the built-in flip spec; HPGMX_FAULT_SEED reseeds it; HPGMX_AUDIT* /
// HPGMX_CHECKPOINT* tune the detection/recovery policy.
#include <cstdio>
#include <string>

#include "exhibit_common.hpp"
#include "service/solver_service.hpp"

namespace {

using namespace hpgmx;

/// Observable fingerprint of a served request: equality means the solves
/// were bitwise identical (iterations count every reduction decision and the
/// residuals are the reduced doubles themselves).
bool bit_identical(const ServiceResult& a, const ServiceResult& b) {
  if (a.status != b.status || a.recoveries != b.recoveries ||
      a.rhs.size() != b.rhs.size()) {
    return false;
  }
  for (std::size_t j = 0; j < a.rhs.size(); ++j) {
    if (a.rhs[j].iterations != b.rhs[j].iterations ||
        a.rhs[j].recoveries != b.rhs[j].recoveries ||
        a.rhs[j].relative_residual != b.rhs[j].relative_residual) {
      return false;
    }
  }
  return a.realized_precisions == b.realized_precisions;
}

const char* status_name(SolveStatus s) {
  return solve_status_name(s).data();  // views of NUL-terminated literals
}

}  // namespace

int main(int argc, char** argv) {
  using hpgmx::bench::ExhibitConfig;
  using hpgmx::bench::has_flag;
  const bool json = has_flag(argc, argv, "--json");

  const ExhibitConfig cfg = ExhibitConfig::from_env(/*default_n=*/16);
  ProblemDescriptor desc = ProblemDescriptor::from_bench_params(
      cfg.params, cfg.ranks, SolverKind::GmresIr);
  desc.inner_precision = Precision::Bf16;
  desc.schedule = PrecisionSchedule{};  // uniform bf16 inner stack
  desc.tol = 1e-9;

  // The scripted flip: with HPGMX_FAULT set the env spec wins, otherwise a
  // single high-exponent-bit flip in the outer (double) iterate at cycle 3
  // on rank 0. By cycle 3 the best-residual baseline is tight, so the
  // residual jump from the corrupted element exceeds the growth threshold
  // and the audit must flag it (earlier cycles still carry an O(1)
  // baseline that a magnitude-shrinking flip can hide under); scripted so
  // the exhibit is deterministic under the default seed.
  FaultConfig fault = FaultConfig::from_env();
  if (!fault.enabled()) {
    const std::uint64_t seed = fault.seed;  // HPGMX_FAULT_SEED still applies
    fault = FaultConfig::parse("flip:1,target:vec,bit:57,iter:3,count:1,rank:0");
    fault.seed = seed;
  }
  SdcPolicy sdc = SdcPolicy::from_env();
  sdc.detect = true;

  SolveRequest req;
  req.desc = desc;

  if (!json) {
    hpgmx::bench::banner(
        "exp_sdc — silent-data-corruption hardening: seeded bit flips, "
        "checksum + residual-audit detection, checkpoint/rollback recovery",
        "value-level fault model on top of the HPG-MxP mixed-precision "
        "pipeline");
    std::printf("descriptor: %s\nfault: %s  seed: %llu\n",
                desc.canonical().c_str(), fault.to_string().c_str(),
                static_cast<unsigned long long>(fault.seed));
  }

  // -- inject: scripted flip, detection on ---------------------------------
  ServiceResult injected;
  ServiceResult injected_again;
  {
    ServiceConfig scfg;
    scfg.fault = fault;
    scfg.sdc = sdc;
    SolverService svc(scfg);
    injected = svc.solve_now(req);
    // Fresh service (fresh injector state), same seed: the repro leg.
    SolverService again(scfg);
    injected_again = again.solve_now(req);
  }
  const bool gate_recover = injected.status == SolveStatus::Converged &&
                            injected.recoveries >= 1;

  // -- clean: fault-free, detection on vs off ------------------------------
  ServiceResult detect_off;
  ServiceResult detect_on;
  {
    ServiceConfig plain;
    SolverService off(plain);
    detect_off = off.solve_now(req);

    ServiceConfig audited;
    audited.sdc = sdc;
    SolverService on(audited);
    detect_on = on.solve_now(req);
  }
  const bool gate_clean = detect_off.status == SolveStatus::Converged &&
                          detect_on.recoveries == 0 &&
                          bit_identical(detect_on, detect_off);

  const bool gate_repro = bit_identical(injected, injected_again);

  const bool ok = gate_recover && gate_clean && gate_repro;

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"sdc\",\n");
    std::printf(
        "  \"config\": {\"nx\": %d, \"ranks\": %d, \"precision\": \"%s\", "
        "\"tol\": %.3g, \"fault\": \"%s\", \"fault_seed\": %llu, "
        "\"audit_interval\": %d, \"checkpoint_interval\": %d, "
        "\"recovery_budget\": %d, \"descriptor_hash\": \"%016llx\"},\n",
        static_cast<int>(cfg.params.nx), cfg.ranks,
        std::string(precision_name(desc.inner_precision)).c_str(), desc.tol,
        fault.to_string().c_str(),
        static_cast<unsigned long long>(fault.seed), sdc.audit_interval,
        sdc.checkpoint_interval, sdc.max_recoveries,
        static_cast<unsigned long long>(desc.hash()));
    std::printf(
        "  \"inject\": {\"status\": \"%s\", \"iterations\": %d, "
        "\"relres\": %.3e, \"recoveries\": %d},\n",
        status_name(injected.status),
        injected.rhs.empty() ? -1 : injected.rhs[0].iterations,
        injected.rhs.empty() ? 0.0 : injected.rhs[0].relative_residual,
        injected.recoveries);
    std::printf(
        "  \"clean\": {\"detect_off_iterations\": %d, "
        "\"detect_on_iterations\": %d, \"detect_off_relres\": %.17e, "
        "\"detect_on_relres\": %.17e, \"bit_identical\": %s},\n",
        detect_off.rhs.empty() ? -1 : detect_off.rhs[0].iterations,
        detect_on.rhs.empty() ? -1 : detect_on.rhs[0].iterations,
        detect_off.rhs.empty() ? 0.0 : detect_off.rhs[0].relative_residual,
        detect_on.rhs.empty() ? 0.0 : detect_on.rhs[0].relative_residual,
        gate_clean ? "true" : "false");
    std::printf(
        "  \"repro\": {\"first_iterations\": %d, \"second_iterations\": %d, "
        "\"first_recoveries\": %d, \"second_recoveries\": %d, "
        "\"bit_identical\": %s},\n",
        injected.rhs.empty() ? -1 : injected.rhs[0].iterations,
        injected_again.rhs.empty() ? -1 : injected_again.rhs[0].iterations,
        injected.recoveries, injected_again.recoveries,
        gate_repro ? "true" : "false");
    std::printf(
        "  \"gates\": {\"detect_and_recover\": %s, \"clean_bit_identical\": "
        "%s, \"seed_reproducible\": %s}\n",
        gate_recover ? "true" : "false", gate_clean ? "true" : "false",
        gate_repro ? "true" : "false");
    std::printf("}\n");
  } else {
    std::printf("\ninject : %s after %d iters, relres %.2e, %d "
                "recover%s (flip %s)\n",
                status_name(injected.status),
                injected.rhs.empty() ? -1 : injected.rhs[0].iterations,
                injected.rhs.empty() ? 0.0
                                     : injected.rhs[0].relative_residual,
                injected.recoveries, injected.recoveries == 1 ? "y" : "ies",
                fault.to_string().c_str());
    std::printf("clean  : detect-off %d iters vs detect-on %d iters — %s\n",
                detect_off.rhs.empty() ? -1 : detect_off.rhs[0].iterations,
                detect_on.rhs.empty() ? -1 : detect_on.rhs[0].iterations,
                gate_clean ? "bit-identical" : "MISMATCH");
    std::printf("repro  : run1 %d iters / %d recoveries vs run2 %d / %d — "
                "%s\n",
                injected.rhs.empty() ? -1 : injected.rhs[0].iterations,
                injected.recoveries,
                injected_again.rhs.empty() ? -1
                                           : injected_again.rhs[0].iterations,
                injected_again.recoveries,
                gate_repro ? "bit-identical" : "MISMATCH");
    std::printf("\ngates: detect_and_recover=%s clean_bit_identical=%s "
                "seed_reproducible=%s -> %s\n",
                gate_recover ? "pass" : "FAIL", gate_clean ? "pass" : "FAIL",
                gate_repro ? "pass" : "FAIL", ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
