// §4 validation experiment: the paper reports that on 1 node (8 GCDs,
// 320³ local grid) double GMRES takes n_d = 2305 iterations to converge 9
// orders of magnitude and GMRES-IR takes n_ir = 2382 — ratio 0.968.
//
// We run the same standard validation (scaled down; grid/ranks via
// HPGMX_NX / HPGMX_RANKS) and report n_d, n_ir and the penalty.
//
//   $ ./exp_validation [--json]
//
// --json emits one machine-readable report object on stdout (the BENCH_*
// perf-trajectory format shared by every exhibit).
#include "exhibit_common.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  using namespace hpgmx::bench;
  const bool json = has_flag(argc, argv, "--json");
  ExhibitConfig cfg = ExhibitConfig::from_env(/*n=*/16, /*ranks=*/8);
  if (!json) {
    banner("EXP validation-1node (paper §4, validation paragraph)",
           "320^3/GCD on 8 GCDs: n_d=2305, n_ir=2382, ratio 0.968");
  }

  cfg.params.validation_ranks = cfg.ranks;
  BenchmarkDriver driver(cfg.params, cfg.ranks);
  const ValidationResult v = driver.run_validation(ValidationMode::Standard);

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"validation_1node\",\n");
    std::printf("  \"ranks\": %d,\n", v.ranks);
    std::printf("  \"local_grid\": [%d, %d, %d],\n", cfg.params.nx,
                cfg.params.ny, cfg.params.nz);
    std::printf("  \"tol\": %.6g,\n", cfg.params.validation_tol);
    std::printf("  \"n_d\": %d,\n", v.n_d);
    std::printf("  \"n_ir\": %d,\n", v.n_ir);
    std::printf("  \"ratio\": %.6g,\n", v.ratio());
    std::printf("  \"penalty\": %.6g,\n", v.penalty());
    std::printf("  \"d_converged\": %s,\n", v.d_converged ? "true" : "false");
    std::printf("  \"ir_converged\": %s,\n",
                v.ir_converged ? "true" : "false");
    std::printf("  \"paper\": {\"n_d\": 2305, \"n_ir\": 2382, "
                "\"ratio\": %.6g}\n",
                2305.0 / 2382.0);
    std::printf("}\n");
    return (v.d_converged && v.ir_converged) ? 0 : 1;
  }

  std::printf("ranks=%d local=%dx%dx%d tol=%.0e\n", v.ranks, cfg.params.nx,
              cfg.params.ny, cfg.params.nz, cfg.params.validation_tol);
  std::printf("%-22s %8s %8s %8s %9s\n", "", "n_d", "n_ir", "ratio",
              "penalty");
  std::printf("%-22s %8d %8d %8.3f %9.3f\n", "measured (this host)", v.n_d,
              v.n_ir, v.ratio(), v.penalty());
  std::printf("%-22s %8d %8d %8.3f %9.3f\n", "paper (Frontier)", 2305, 2382,
              2305.0 / 2382.0, 2305.0 / 2382.0);
  std::printf("\nnote: at small global sizes GMRES-IR pays its refinement\n"
              "overhead over few iterations, so the ratio sits below the\n"
              "paper's 0.968; it approaches the paper as the global problem\n"
              "grows (scale with HPGMX_NX / HPGMX_RANKS).\n");
  return (v.d_converged && v.ir_converged) ? 0 : 1;
}
