// Resilience exhibit: the deadline-aware fault-tolerant service under
// stress — deadline hit behaviour, retry-with-promotion, and deterministic
// chaos injection (docs/RESILIENCE.md).
//
//   deadline  requests with an unreachable tolerance and a short wall-clock
//             budget: every one must exit cooperatively with status
//             deadline_exceeded (the rank-consistent trip lane), never hang
//             or throw
//   retry     the fragile fp16 checkerboard-jump request: non_finite at
//             fp16, served converged by the promoted bf16 retry with the
//             ladder recorded in attempts; with retry disabled the raw
//             failure surfaces
//   chaos     the same request solved fault-free and twice under the chaos
//             layer (same seed): bit-identical results — chaos perturbs
//             timing and ordering, never values
//   latency   a warm-cache request stream under chaos, p50/p99 latency
//
// Exit-code gates (CI runs this via bench/run_bench.sh):
//   - every deadline-bounded request reports deadline_exceeded,
//   - the retried fp16 request converges with attempts = [fp16 non_finite,
//     bf16 converged] and the unretried one stays non_finite,
//   - chaos runs are bit-identical to each other and to the fault-free run,
//   - the chaotic request stream converges everywhere.
//
//   $ ./exp_resilience [--json]
//
// Env: HPGMX_NX / HPGMX_RANKS scale the deadline/latency descriptor;
// HPGMX_CHAOS / HPGMX_CHAOS_SEED override the built-in chaos spec;
// HPGMX_DEADLINE_MS, HPGMX_RESILIENCE_REQUESTS size the suites. The retry
// exhibit is a fixed 8^3 descriptor — it demonstrates the taxonomy, not
// scale.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "base/timer.hpp"
#include "exhibit_common.hpp"
#include "service/solver_service.hpp"

namespace {

using namespace hpgmx;

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto n = static_cast<double>(sorted_ms.size());
  const auto idx = static_cast<std::size_t>(
      std::min(n - 1.0, std::max(0.0, q * n - 0.5)));
  return sorted_ms[idx];
}

/// The fragile retry exhibit: a coefficient jump of 1e6 across a period-4
/// checkerboard overwhelms fp16 even through the ScaleGuard (backoff budget
/// exhausts -> non_finite) but sits inside bf16's exponent range.
SolveRequest fragile_fp16_request() {
  SolveRequest req;
  req.desc.nx = req.desc.ny = req.desc.nz = 8;
  req.desc.mg_levels = 3;
  req.desc.scenario.kind = Scenario::Jump;
  req.desc.scenario.jump_period = 4;
  req.desc.scenario.jump_ratio = 1e6;
  req.desc.solver = SolverKind::GmresIr;
  req.desc.inner_precision = Precision::Fp16;
  req.desc.tol = 1e-9;
  req.desc.max_iters = 300;
  return req;
}

const char* status_name(SolveStatus s) {
  return solve_status_name(s).data();  // views of NUL-terminated literals
}

}  // namespace

int main(int argc, char** argv) {
  using hpgmx::bench::ExhibitConfig;
  using hpgmx::bench::has_flag;
  const bool json = has_flag(argc, argv, "--json");

  const ExhibitConfig cfg = ExhibitConfig::from_env(/*default_n=*/16);
  const ProblemDescriptor desc = ProblemDescriptor::from_bench_params(
      cfg.params, cfg.ranks, SolverKind::GmresIr);

  // The exhibit always exercises chaos: the env spec when given, a built-in
  // deterministic one otherwise (tiny sleeps keep the suite fast).
  ChaosConfig chaos = ChaosConfig::from_env();
  if (!chaos.enabled()) {
    const std::uint64_t seed = chaos.seed;  // HPGMX_CHAOS_SEED still applies
    chaos = ChaosConfig::parse(
        "delay:0.25,reorder:0.5,slow_rank:0,delay_us:1,slow_us:1");
    chaos.seed = seed;
  }

  const double deadline_ms =
      static_cast<double>(env_int_or("HPGMX_DEADLINE_MS", 20));
  const int deadline_requests =
      static_cast<int>(env_int_or("HPGMX_RESILIENCE_DEADLINES", 6));
  const int stream_requests =
      static_cast<int>(env_int_or("HPGMX_RESILIENCE_REQUESTS", 16));

  if (!json) {
    hpgmx::bench::banner(
        "exp_resilience — deadlines, retry-with-promotion, and chaos "
        "injection over the solver service",
        "fault-tolerant serving of the HPG-MxP mixed-precision pipeline");
    std::printf("descriptor: %s\nchaos: %s  seed: %llu\n",
                desc.canonical().c_str(), chaos.to_string().c_str(),
                static_cast<unsigned long long>(chaos.seed));
  }

  // -- deadline suite: unreachable tolerance, short wall budget ------------
  int deadline_hits = 0;
  std::vector<double> deadline_ms_observed;
  {
    ServiceConfig scfg;
    scfg.chaos = chaos;
    SolverService svc(scfg);
    for (int i = 0; i < deadline_requests; ++i) {
      SolveRequest req;
      req.desc = desc;
      req.desc.tol = 1e-30;  // unreachable: only the deadline can stop it
      req.desc.max_iters = 1000000;
      req.deadline = Deadline::after(deadline_ms / 1e3);
      WallTimer t;
      const ServiceResult res = svc.solve_now(req);
      deadline_ms_observed.push_back(t.seconds() * 1e3);
      if (res.status == SolveStatus::DeadlineExceeded) {
        ++deadline_hits;
      }
    }
  }
  const bool gate_deadline = deadline_hits == deadline_requests;

  // -- retry suite: promoted re-execution of the fragile fp16 request ------
  ServiceResult retried;
  ServiceResult unretried;
  {
    ServiceConfig scfg;
    scfg.chaos = chaos;
    SolverService svc(scfg);
    retried = svc.solve_now(fragile_fp16_request());

    ServiceConfig no_retry = scfg;
    no_retry.retry.enabled = false;
    SolverService raw(no_retry);
    unretried = raw.solve_now(fragile_fp16_request());
  }
  const bool gate_retry =
      retried.status == SolveStatus::Converged &&
      retried.attempts.size() == 2 &&
      retried.attempts[0].precision == Precision::Fp16 &&
      retried.attempts[0].status == SolveStatus::NonFinite &&
      retried.attempts[1].precision == Precision::Bf16 &&
      retried.attempts[1].status == SolveStatus::Converged &&
      unretried.status == SolveStatus::NonFinite &&
      unretried.attempts.size() == 1;

  // -- chaos determinism: fault-free vs two same-seed chaotic runs ---------
  ServiceResult clean;
  ServiceResult chaotic_a;
  ServiceResult chaotic_b;
  {
    SolveRequest req;
    req.desc = desc;
    ServiceConfig plain_cfg;
    SolverService plain(plain_cfg);
    clean = plain.solve_now(req);

    ServiceConfig scfg;
    scfg.chaos = chaos;
    SolverService first(scfg);
    chaotic_a = first.solve_now(req);
    SolverService second(scfg);
    chaotic_b = second.solve_now(req);
  }
  auto bit_identical = [](const ServiceResult& a, const ServiceResult& b) {
    if (a.status != b.status || a.rhs.size() != b.rhs.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a.rhs.size(); ++j) {
      if (a.rhs[j].iterations != b.rhs[j].iterations ||
          a.rhs[j].relative_residual != b.rhs[j].relative_residual) {
        return false;
      }
    }
    return a.realized_precisions == b.realized_precisions;
  };
  const bool gate_chaos = clean.status == SolveStatus::Converged &&
                          bit_identical(chaotic_a, chaotic_b) &&
                          bit_identical(chaotic_a, clean);

  // -- latency: warm-cache request stream under chaos ----------------------
  std::vector<double> stream_ms;
  bool stream_converged = true;
  {
    ServiceConfig scfg;
    scfg.chaos = chaos;
    SolverService svc(scfg);
    for (int i = 0; i < stream_requests; ++i) {
      SolveRequest req;
      req.desc = desc;
      WallTimer t;
      const ServiceResult res = svc.solve_now(req);
      stream_ms.push_back(t.seconds() * 1e3);
      stream_converged = stream_converged && res.all_converged();
    }
  }
  const bool gate_stream = stream_converged;

  const bool ok = gate_deadline && gate_retry && gate_chaos && gate_stream;

  if (json) {
    std::printf("{\n");
    std::printf("  \"exhibit\": \"resilience\",\n");
    std::printf(
        "  \"config\": {\"nx\": %d, \"ranks\": %d, \"chaos\": \"%s\", "
        "\"chaos_seed\": %llu, \"deadline_ms\": %.1f, "
        "\"descriptor_hash\": \"%016llx\"},\n",
        static_cast<int>(cfg.params.nx), cfg.ranks, chaos.to_string().c_str(),
        static_cast<unsigned long long>(chaos.seed), deadline_ms,
        static_cast<unsigned long long>(desc.hash()));
    std::printf(
        "  \"deadline\": {\"requests\": %d, \"hits\": %d, \"hit_rate\": "
        "%.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
        deadline_requests, deadline_hits,
        deadline_requests > 0
            ? static_cast<double>(deadline_hits) / deadline_requests
            : 0.0,
        percentile(deadline_ms_observed, 0.50),
        percentile(deadline_ms_observed, 0.99));
    std::printf("  \"retry\": {\"served_status\": \"%s\", \"attempts\": [\n",
                status_name(retried.status));
    for (std::size_t i = 0; i < retried.attempts.size(); ++i) {
      const AttemptRecord& a = retried.attempts[i];
      std::printf(
          "    {\"precision\": \"%s\", \"status\": \"%s\", \"iterations\": "
          "%d, \"relres\": %.3e}%s\n",
          std::string(precision_name(a.precision)).c_str(),
          status_name(a.status), a.iterations, a.relative_residual,
          i + 1 < retried.attempts.size() ? "," : "");
    }
    std::printf("  ], \"unretried_status\": \"%s\"},\n",
                status_name(unretried.status));
    std::printf(
        "  \"chaos_determinism\": {\"clean_iterations\": %d, "
        "\"chaotic_iterations\": %d, \"bit_identical\": %s},\n",
        clean.rhs.empty() ? -1 : clean.rhs[0].iterations,
        chaotic_a.rhs.empty() ? -1 : chaotic_a.rhs[0].iterations,
        gate_chaos ? "true" : "false");
    std::printf(
        "  \"latency\": {\"requests\": %d, \"p50_ms\": %.3f, \"p99_ms\": "
        "%.3f, \"all_converged\": %s},\n",
        stream_requests, percentile(stream_ms, 0.50),
        percentile(stream_ms, 0.99), stream_converged ? "true" : "false");
    std::printf(
        "  \"gates\": {\"deadlines_hit\": %s, \"retry_promotes\": %s, "
        "\"chaos_bit_identical\": %s, \"stream_converges\": %s}\n",
        gate_deadline ? "true" : "false", gate_retry ? "true" : "false",
        gate_chaos ? "true" : "false", gate_stream ? "true" : "false");
    std::printf("}\n");
  } else {
    std::printf("\ndeadline  : %d/%d requests exited deadline_exceeded "
                "(budget %.0f ms, p50 %.1f ms, p99 %.1f ms)\n",
                deadline_hits, deadline_requests, deadline_ms,
                percentile(deadline_ms_observed, 0.50),
                percentile(deadline_ms_observed, 0.99));
    std::printf("retry     : served %s via", status_name(retried.status));
    for (const AttemptRecord& a : retried.attempts) {
      std::printf(" [%s %s %d it]",
                  std::string(precision_name(a.precision)).c_str(),
                  status_name(a.status), a.iterations);
    }
    std::printf("  (no retry: %s)\n", status_name(unretried.status));
    std::printf("chaos     : clean %d iters vs chaotic %d iters — %s\n",
                clean.rhs.empty() ? -1 : clean.rhs[0].iterations,
                chaotic_a.rhs.empty() ? -1 : chaotic_a.rhs[0].iterations,
                gate_chaos ? "bit-identical" : "MISMATCH");
    std::printf("latency   : %d requests under chaos, p50 %.2f ms, p99 %.2f "
                "ms, all converged: %s\n",
                stream_requests, percentile(stream_ms, 0.50),
                percentile(stream_ms, 0.99),
                stream_converged ? "yes" : "NO");
    std::printf("\ngates: deadlines_hit=%s retry_promotes=%s "
                "chaos_bit_identical=%s stream_converges=%s\n",
                gate_deadline ? "pass" : "FAIL",
                gate_retry ? "pass" : "FAIL", gate_chaos ? "pass" : "FAIL",
                gate_stream ? "pass" : "FAIL");
  }
  return ok ? 0 : 1;
}
