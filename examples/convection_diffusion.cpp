// Nonsymmetric scenario: the benchmark's γ-perturbed matrix stands in for a
// convection-diffusion discretization (upwind bias on the off-diagonals) —
// the problem class GMRES exists for, where CG is not applicable.
//
// Sweeps γ, solving each system with double GMRES and mixed GMRES-IR, and
// reports iteration counts and the penalty the benchmark would apply —
// showing how the mixed-precision overhead behaves as the matrix departs
// from symmetry.
//
//   $ ./convection_diffusion [n] [gamma_max] [--json]
//   $ HPGMX_SCENARIO=aniso ./convection_diffusion --json
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "comm/comm.hpp"
#include "core/gmres.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "exhibit_common.hpp"
#include "grid/problem.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  const bool json = bench::has_flag(argc, argv, "--json");
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      pos.push_back(argv[i]);
    }
  }
  BenchParams params = BenchParams::from_env();
  if (!env_int("HPGMX_NX").has_value()) {
    params.nx = params.ny = params.nz = 24;
  }
  if (!pos.empty()) {
    params.nx = params.ny = params.nz =
        static_cast<local_index_t>(std::atoi(pos[0]));
  }
  const local_index_t n = params.nx;
  const double gamma_max = pos.size() > 1 ? std::atof(pos[1]) : 0.8;

  if (!json) {
    std::printf("convection-diffusion sweep on a %d^3 grid (27-pt stencil,\n"
                "off-diagonals -1∓γ by upwind direction, scenario %s)\n\n",
                n, params.scenario.to_string().c_str());
    std::printf("%8s %10s %10s %10s %12s %14s\n", "gamma", "n_d", "n_ir",
                "penalty", "d relres", "ir relres");
  }

  struct Row {
    double gamma;
    SolveResult rd;
    SolveResult rir;
  };
  std::vector<Row> rows;
  for (double gamma = 0.0; gamma <= gamma_max + 1e-12; gamma += gamma_max / 4) {
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = n;
    pp.gamma = gamma;
    pp.scenario = params.scenario;
    params.gamma = gamma;

    const ProblemHierarchy h =
        build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                        params.mg_levels, params.coloring_seed);
    SelfComm comm;
    SolverOptions opts;
    opts.max_iters = 2000;
    opts.tol = 1e-9;

    Multigrid<double> mg_d(h, params);
    Gmres<double> gmres_d(&mg_d.level_op(0), &mg_d, opts);
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    const SolveResult rd = gmres_d.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));

    Multigrid<float> mg_f(h, params);
    DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                             90);
    GmresIr<float> gmres_ir(&a_d, &mg_f.level_op(0), &mg_f, opts);
    std::fill(x.begin(), x.end(), 0.0);
    const SolveResult rir = gmres_ir.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));

    rows.push_back({gamma, rd, rir});
    if (!json) {
      const double ratio =
          rir.iterations > 0
              ? static_cast<double>(rd.iterations) / rir.iterations
              : 0.0;
      std::printf("%8.2f %10d %10d %10.3f %12.2e %14.2e\n", gamma,
                  rd.iterations, rir.iterations, std::min(1.0, ratio),
                  rd.relative_residual, rir.relative_residual);
      if (!rd.converged() || !rir.converged()) {
        std::printf("  (warning: not converged at gamma=%.2f)\n", gamma);
      }
    }
  }

  bool all_converged = true;
  for (const Row& r : rows) {
    all_converged = all_converged && r.rd.converged() && r.rir.converged();
  }
  if (json) {
    std::printf("{\n  \"example\": \"convection_diffusion\",\n");
    std::printf("  \"n\": %d, \"scenario\": \"%s\", \"gamma_max\": %g,\n",
                n, params.scenario.to_string().c_str(), gamma_max);
    std::printf("  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"gamma\": %.4f, \"iters_double\": %d, "
                  "\"iters_ir\": %d, \"relres_double\": %.3e, "
                  "\"relres_ir\": %.3e, \"converged\": %s}%s\n",
                  r.gamma, r.rd.iterations, r.rir.iterations,
                  r.rd.relative_residual, r.rir.relative_residual,
                  r.rd.converged() && r.rir.converged() ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n  \"all_converged\": %s\n}\n",
                all_converged ? "true" : "false");
  } else {
    std::printf("\nBoth solvers reach 1e-9 for every γ; the mixed solver's\n"
                "extra iterations are what the HPG-MxP penalty charges for.\n");
  }
  return all_converged ? 0 : 1;
}
