// Quickstart: assemble the benchmark problem on one rank, solve it with
// double GMRES and with mixed-precision GMRES-IR, and compare.
//
//   $ ./quickstart [n]                  # local grid n^3, default 32
//   $ HPGMX_PRECISION=bf16 ./quickstart # inner cycles in bf16 (or fp16/fp32)
//   $ HPGMX_PRECISION_SCHEDULE=fp32,bf16,bf16 ./quickstart
//                          # progressive precision: one format per MG level
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "core/benchmark.hpp"
#include "core/gmres.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/precision.hpp"
#include "precision/scale_guard.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  const local_index_t n =
      argc > 1 ? static_cast<local_index_t>(std::atoi(argv[1])) : 32;

  // 1. Generate the HPG-MxP problem: 27-point stencil, diag 26, off-diag -1.
  ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  // Environment overrides (HPGMX_FUSED, HPGMX_IDX, HPGMX_OPT, precision
  // knobs, ...) apply; the command-line grid size wins over HPGMX_NX.
  BenchParams params = BenchParams::from_env();
  params.nx = params.ny = params.nz = n;

  ProblemHierarchy hierarchy =
      build_hierarchy(generate_problem(pgrid, 0, pp), params.mg_levels,
                      params.coloring_seed);
  std::printf("grid %dx%dx%d  rows=%d  nnz=%lld  mg-levels=%zu\n", n, n, n,
              hierarchy.levels[0].a.num_rows,
              static_cast<long long>(hierarchy.levels[0].a.nnz()),
              hierarchy.levels.size());

  SelfComm comm;
  SolverOptions opts;
  opts.restart = params.restart_length;
  opts.max_iters = 1000;
  opts.tol = 1e-9;
  opts.track_history = true;
  opts.fused_passes = params.fused;
  // HPGMX_BATCH_REDUCE=0 falls back to one allreduce per scalar (same bits,
  // more messages); HPGMX_OVERLAP=0 disables split-phase halo exchange.
  opts.batched_reductions = params.batched_reduce;

  const std::span<const double> b(hierarchy.levels[0].b.data(),
                                  hierarchy.levels[0].b.size());

  // 2. Reference: all-double GMRES with the multigrid preconditioner.
  WallTimer t_d;
  Multigrid<double> mg_d(hierarchy, params);
  Gmres<double> gmres_d(&mg_d.level_op(0), &mg_d, opts);
  AlignedVector<double> x_d(b.size(), 0.0);
  const SolveResult res_d =
      gmres_d.solve(comm, b, std::span<double>(x_d.data(), x_d.size()));
  const double sec_d = t_d.seconds();
  std::printf("double GMRES  : %4d iters, relres %.2e, %.3f s\n",
              res_d.iterations, res_d.relative_residual, sec_d);

  // 3. Mixed precision: GMRES-IR, inner cycles in the storage format chosen
  //    by HPGMX_PRECISION (fp32 default; bf16/fp16 halve the bytes again).
  //    HPGMX_PRECISION_SCHEDULE instead assigns one format per multigrid
  //    level (progressive precision) — the solver dispatches on its entry.
  params.inner_precision =
      precision_from_env("HPGMX_PRECISION", params.inner_precision);
  params.set_precision_schedule(schedule_from_env("HPGMX_PRECISION_SCHEDULE"));
  const Precision prec = params.inner_precision;
  WallTimer t_ir;
  AlignedVector<double> x_ir(b.size(), 0.0);
  const SolveResult res_ir = dispatch_precision(prec, [&](auto tag) {
    using TLow = typename decltype(tag)::type;
    const std::vector<double> lvl_max = hierarchy_level_max_abs(hierarchy);
    ScaleGuard guard;
    guard.initialize(
        guard_reference_max_abs(
            std::span<const double>(lvl_max.data(), lvl_max.size()),
            params.precision_schedule),
        PrecisionTraits<TLow>::max_finite);
    Multigrid<TLow> mg_low(hierarchy, params, /*tag_base=*/100, guard.scale(),
                           params.precision_schedule,
                           std::span<const double>(lvl_max.data(),
                                                   lvl_max.size()));
    DistOperator<double> a_d(hierarchy.levels[0].a,
                             hierarchy.structures[0].get(), params.opt,
                             /*tag=*/90, /*value_scale=*/1.0,
                             params.index_width);
    a_d.set_overlap(params.overlap);
    GmresIr<TLow> gmres_ir(&a_d, &mg_low.level_op(0), &mg_low, opts);
    gmres_ir.set_scale_guard(&guard);
    return gmres_ir.solve(comm, b, std::span<double>(x_ir.data(), x_ir.size()));
  });
  const double sec_ir = t_ir.seconds();
  const std::string prec_label =
      params.precision_schedule.empty()
          ? std::string(precision_name(prec))
          : params.precision_schedule.to_string();
  std::printf("GMRES-IR (%s): %4d iters, relres %.2e, %.3f s\n",
              prec_label.c_str(), res_ir.iterations, res_ir.relative_residual,
              sec_ir);

  // 4. Both reached the same 1e-9 accuracy; the exact solution is 1.
  double max_err = 0;
  for (const double v : x_ir) {
    max_err = std::max(max_err, std::abs(v - 1.0));
  }
  std::printf("GMRES-IR max |x-1| = %.2e\n", max_err);
  std::printf("iteration ratio n_d/n_ir = %.3f (penalty %.3f)\n",
              static_cast<double>(res_d.iterations) / res_ir.iterations,
              std::min(1.0, static_cast<double>(res_d.iterations) /
                                res_ir.iterations));
  return res_d.converged() && res_ir.converged() ? 0 : 1;
}
