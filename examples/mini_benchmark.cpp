// The full three-phase HPG-MxP benchmark, end to end, on virtual ranks:
// standard validation → timed mxp phase → timed double phase → report with
// the penalized GFLOP/s metric. This is the executable equivalent of the
// paper's §3 benchmark definition, scaled to one host.
//
//   $ ./mini_benchmark [ranks] [n] [seconds]
//   $ HPGMX_NX=48 ./mini_benchmark 8
//   $ HPGMX_RANKS=4 HPGMX_NX=32 ./mini_benchmark
#include <cstdio>
#include <cstdlib>

#include "base/options.hpp"
#include "core/benchmark.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  const int ranks = argc > 1 ? std::atoi(argv[1])
                             : static_cast<int>(env_int_or("HPGMX_RANKS", 2));
  BenchParams params = BenchParams::from_env();
  if (argc > 2) {
    params.nx = params.ny = params.nz =
        static_cast<local_index_t>(std::atoi(argv[2]));
  }
  if (argc > 3) {
    params.bench_seconds = std::atof(argv[3]);
  }
  params.validation_ranks = std::min(params.validation_ranks, ranks);

  std::printf("HPG-MxP mini benchmark: %d virtual rank(s), %dx%dx%d local "
              "grid, %.1fs per phase\n\n",
              ranks, params.nx, params.ny, params.nz, params.bench_seconds);

  BenchmarkDriver driver(params, ranks);
  const BenchReport report = driver.run_all();
  std::printf("%s\n", report.to_string().c_str());

  std::printf("paper (Frontier, 9408 nodes): 17.23 PF penalized mxp, 1.6x "
              "speedup over double.\n");
  return report.validation.ir_converged ? 0 : 1;
}
