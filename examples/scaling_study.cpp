// Weak-scaling study across virtual rank counts plus machine-model
// projection to the paper's exascale regime — a runnable miniature of the
// experiment campaign behind Fig. 4.
//
//   $ ./scaling_study [max_ranks] [n_local]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/benchmark.hpp"
#include "perf/bandwidth.hpp"
#include "perf/machine_model.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  const int max_ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const local_index_t n =
      argc > 2 ? static_cast<local_index_t>(std::atoi(argv[2])) : 24;

  BenchParams params;
  params.nx = params.ny = params.nz = n;
  params.bench_seconds = 0.5;

  std::printf("weak scaling: %d^3 per rank, mxp phase, 1..%d virtual ranks\n",
              n, max_ranks);
  std::printf("%8s %10s %14s %16s\n", "ranks", "global", "GF/s total",
              "ms per iteration");
  double one_rank_seconds_per_iter = 0;
  double flops_per_iter = 0;
  for (int p = 1; p <= max_ranks; p *= 2) {
    BenchmarkDriver driver(params, p);
    const PhaseResult mxp = driver.run_phase(/*mixed=*/true);
    const double ms_it = mxp.wall_seconds / mxp.iterations * 1e3;
    if (p == 1) {
      one_rank_seconds_per_iter = mxp.wall_seconds / mxp.iterations;
      flops_per_iter =
          static_cast<double>(mxp.stats.total_flops()) / mxp.iterations;
    }
    std::printf("%8d %10lld %14.3f %16.2f\n", p,
                static_cast<long long>(n) * n * n * p, mxp.raw_gflops, ms_it);
  }

  // Project the single-rank profile through the Frontier model.
  const MachineModel frontier = MachineModel::frontier_gcd();
  IterationProfile prof;
  prof.local_seconds = one_rank_seconds_per_iter;
  prof.flops = flops_per_iter;
  prof.allreduces = 3;
  prof.allreduce_bytes = 120;
  prof.halo_messages = 26 * 9;
  prof.halo_bytes = 6.0 * n * n * 8 * 9;
  prof.overlap_efficiency = 0.95;
  std::printf("\nFrontier-model projection of this profile:\n%8s %14s %12s\n",
              "nodes", "GF/s per GCD", "efficiency");
  for (const ScalePoint& pt : project_weak_scaling(
           frontier, prof, std::vector<int>{1, 64, 1024, 9408})) {
    std::printf("%8d %14.2f %11.1f%%\n", pt.nodes, pt.gflops_per_rank,
                pt.efficiency * 100.0);
  }
  std::printf("\n(see bench/exp_fig4_weak_scaling for the full Fig. 4 "
              "reproduction)\n");
  return 0;
}
