// Weak-scaling study across virtual rank counts plus machine-model
// projection to the paper's exascale regime — a runnable miniature of the
// experiment campaign behind Fig. 4.
//
//   $ ./scaling_study [max_ranks] [n_local] [--json]
//   $ HPGMX_RANKS=8 HPGMX_NX=16 ./scaling_study --json
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/benchmark.hpp"
#include "exhibit_common.hpp"
#include "perf/bandwidth.hpp"
#include "perf/machine_model.hpp"

int main(int argc, char** argv) {
  using namespace hpgmx;
  const bool json = bench::has_flag(argc, argv, "--json");
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      pos.push_back(argv[i]);
    }
  }
  const int max_ranks =
      !pos.empty() ? std::atoi(pos[0])
                   : static_cast<int>(env_int_or("HPGMX_RANKS", 4));

  BenchParams params = BenchParams::from_env();
  if (!env_int("HPGMX_NX").has_value()) {
    params.nx = params.ny = params.nz = 24;
  }
  if (pos.size() > 1) {
    params.nx = params.ny = params.nz =
        static_cast<local_index_t>(std::atoi(pos[1]));
  }
  const local_index_t n = params.nx;
  if (!env_double("HPGMX_BENCH_SECONDS").has_value()) {
    params.bench_seconds = 0.5;
  }

  if (!json) {
    std::printf(
        "weak scaling: %d^3 per rank, mxp phase, 1..%d virtual ranks\n", n,
        max_ranks);
    std::printf("%8s %10s %14s %16s\n", "ranks", "global", "GF/s total",
                "ms per iteration");
  }
  struct Row {
    int ranks;
    long long global;
    double gflops;
    double ms_per_iter;
  };
  std::vector<Row> rows;
  double one_rank_seconds_per_iter = 0;
  double flops_per_iter = 0;
  for (int p = 1; p <= max_ranks; p *= 2) {
    BenchmarkDriver driver(params, p);
    const PhaseResult mxp = driver.run_phase(/*mixed=*/true);
    const double ms_it = mxp.wall_seconds / mxp.iterations * 1e3;
    if (p == 1) {
      one_rank_seconds_per_iter = mxp.wall_seconds / mxp.iterations;
      flops_per_iter =
          static_cast<double>(mxp.stats.total_flops()) / mxp.iterations;
    }
    rows.push_back({p, static_cast<long long>(n) * n * n * p, mxp.raw_gflops,
                    ms_it});
    if (!json) {
      std::printf("%8d %10lld %14.3f %16.2f\n", p, rows.back().global,
                  mxp.raw_gflops, ms_it);
    }
  }

  // Project the single-rank profile through the Frontier model.
  const MachineModel frontier = MachineModel::frontier_gcd();
  IterationProfile prof;
  prof.local_seconds = one_rank_seconds_per_iter;
  prof.flops = flops_per_iter;
  prof.allreduces = 3;
  prof.allreduce_bytes = 120;
  prof.halo_messages = 26 * 9;
  prof.halo_bytes = 6.0 * n * n * 8 * 9;
  prof.overlap_efficiency = 0.95;
  const std::vector<ScalePoint> proj = project_weak_scaling(
      frontier, prof, std::vector<int>{1, 64, 1024, 9408});

  if (json) {
    std::printf("{\n  \"example\": \"scaling_study\",\n");
    std::printf("  \"n_local\": %d, \"max_ranks\": %d,\n", n, max_ranks);
    std::printf("  \"measured\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf("    {\"ranks\": %d, \"global_rows\": %lld, "
                  "\"gflops\": %.4f, \"ms_per_iteration\": %.4f}%s\n",
                  rows[i].ranks, rows[i].global, rows[i].gflops,
                  rows[i].ms_per_iter, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n  \"frontier_projection\": [\n");
    for (std::size_t i = 0; i < proj.size(); ++i) {
      std::printf("    {\"nodes\": %d, \"gflops_per_rank\": %.4f, "
                  "\"efficiency\": %.4f}%s\n",
                  proj[i].nodes, proj[i].gflops_per_rank, proj[i].efficiency,
                  i + 1 < proj.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("\nFrontier-model projection of this profile:\n%8s %14s %12s\n",
                "nodes", "GF/s per GCD", "efficiency");
    for (const ScalePoint& pt : proj) {
      std::printf("%8d %14.2f %11.1f%%\n", pt.nodes, pt.gflops_per_rank,
                  pt.efficiency * 100.0);
    }
    std::printf("\n(see bench/exp_fig4_weak_scaling for the full Fig. 4 "
                "reproduction)\n");
  }
  return 0;
}
