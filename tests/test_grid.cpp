// Tests for src/grid: process-grid factorization, 27-point problem
// generation (structure, values, rhs, halo pattern symmetry), coarsening.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "comm/thread_comm.hpp"
#include "grid/problem.hpp"
#include "grid/process_grid.hpp"

namespace hpgmx {
namespace {

TEST(ProcessGrid, FactorizationIsCubicAndComplete) {
  const struct {
    int size, px, py, pz;
  } cases[] = {
      {1, 1, 1, 1}, {2, 2, 1, 1}, {4, 2, 2, 1},
      {8, 2, 2, 2}, {27, 3, 3, 3}, {64, 4, 4, 4},
  };
  for (const auto& c : cases) {
    const ProcessGrid g = ProcessGrid::create(c.size);
    EXPECT_EQ(g.size(), c.size);
    EXPECT_EQ(g.px() * g.py() * g.pz(), c.size);
    EXPECT_EQ(g.px(), c.px) << "size " << c.size;
    EXPECT_EQ(g.py(), c.py) << "size " << c.size;
    EXPECT_EQ(g.pz(), c.pz) << "size " << c.size;
  }
}

TEST(ProcessGrid, CoordsRoundTrip) {
  const ProcessGrid g = ProcessGrid::create(24);
  for (int r = 0; r < g.size(); ++r) {
    const ProcCoords c = g.coords_of(r);
    EXPECT_TRUE(g.contains(c));
    EXPECT_EQ(g.rank_of(c), r);
  }
  EXPECT_FALSE(g.contains({-1, 0, 0}));
  EXPECT_FALSE(g.contains({g.px(), 0, 0}));
}

TEST(Problem, SingleRankStructure) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  EXPECT_EQ(prob.a.num_rows, 64);
  EXPECT_EQ(prob.halo.n_halo, 0);
  EXPECT_TRUE(prob.halo.neighbors.empty());
  // Interior point: 27 entries; corner: 8; edge: 12; face: 18.
  const local_index_t corner = prob.box.local_id(0, 0, 0);
  const local_index_t interior = prob.box.local_id(1, 1, 1);
  EXPECT_EQ(prob.a.row_ptr[corner + 1] - prob.a.row_ptr[corner], 8);
  EXPECT_EQ(prob.a.row_ptr[interior + 1] - prob.a.row_ptr[interior], 27);
}

TEST(Problem, MatrixValuesMatchBenchmarkDefinition) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  for (local_index_t r = 0; r < prob.a.num_rows; ++r) {
    const auto cols = prob.a.row_cols(r);
    const auto vals = prob.a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) {
        EXPECT_DOUBLE_EQ(vals[k], 26.0);
      } else {
        EXPECT_DOUBLE_EQ(vals[k], -1.0);
      }
    }
  }
}

TEST(Problem, WeakDiagonalDominance) {
  ProblemParams p;
  p.nx = 6;
  p.ny = 4;
  p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  for (local_index_t r = 0; r < prob.a.num_rows; ++r) {
    const auto cols = prob.a.row_cols(r);
    const auto vals = prob.a.row_vals(r);
    double offdiag = 0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != r) {
        offdiag += std::abs(vals[k]);
      }
    }
    EXPECT_LE(offdiag, 26.0);
  }
}

TEST(Problem, RhsIsRowSum) {
  // b = A·1, so every interior row gets 26 - 26 = 0 and the global corner
  // rows get 26 - 7 = 19.
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const local_index_t interior = prob.box.local_id(1, 1, 1);
  const local_index_t corner = prob.box.local_id(0, 0, 0);
  EXPECT_DOUBLE_EQ(prob.b[static_cast<std::size_t>(interior)], 0.0);
  EXPECT_DOUBLE_EQ(prob.b[static_cast<std::size_t>(corner)], 26.0 - 7.0);
}

TEST(Problem, NonsymmetricGammaPreservesDominance) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  p.gamma = 0.3;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const local_index_t interior = prob.box.local_id(1, 1, 1);
  const auto cols = prob.a.row_cols(interior);
  const auto vals = prob.a.row_vals(interior);
  double offdiag_sum_abs = 0;
  int above = 0, below = 0;
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == interior) {
      continue;
    }
    offdiag_sum_abs += std::abs(vals[k]);
    if (vals[k] < -1.0) {
      ++above;  // -1 - gamma: column with greater global id
    } else {
      ++below;
    }
  }
  EXPECT_EQ(above, 13);
  EXPECT_EQ(below, 13);
  EXPECT_NEAR(offdiag_sum_abs, 26.0, 1e-12);
}

TEST(Problem, GammaZeroIsSymmetric) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  // Check a_ij == a_ji for all owned pairs.
  std::map<std::pair<local_index_t, local_index_t>, double> entries;
  for (local_index_t r = 0; r < prob.a.num_rows; ++r) {
    const auto cols = prob.a.row_cols(r);
    const auto vals = prob.a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      entries[{r, cols[k]}] = vals[k];
    }
  }
  for (const auto& [rc, v] : entries) {
    const auto it = entries.find({rc.second, rc.first});
    ASSERT_NE(it, entries.end());
    EXPECT_DOUBLE_EQ(it->second, v);
  }
}

// Distributed generation: the assembled global matrix must be identical to
// a single-rank generation of the same global grid.
class DistributedGen : public ::testing::TestWithParam<int> {};

TEST_P(DistributedGen, GlobalAssemblyMatchesSerial) {
  const int p = GetParam();
  const ProcessGrid pgrid = ProcessGrid::create(p);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;

  // Serial oracle over the union grid.
  ProblemParams serial_pp;
  serial_pp.nx = static_cast<local_index_t>(pp.nx * pgrid.px());
  serial_pp.ny = static_cast<local_index_t>(pp.ny * pgrid.py());
  serial_pp.nz = static_cast<local_index_t>(pp.nz * pgrid.pz());
  const Problem oracle = generate_problem(ProcessGrid(1, 1, 1), 0, serial_pp);

  std::vector<Problem> parts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    parts[static_cast<std::size_t>(r)] = generate_problem(pgrid, r, pp);
  }

  // Rebuild a global (row -> col -> value) map from the distributed parts.
  std::map<global_index_t, std::map<global_index_t, double>> dist_entries;
  for (int r = 0; r < p; ++r) {
    const Problem& part = parts[static_cast<std::size_t>(r)];
    // Local id -> global id for owned + halo columns.
    std::vector<global_index_t> l2g(
        static_cast<std::size_t>(part.a.num_cols), -1);
    for (local_index_t k = 0; k < part.box.nz; ++k) {
      for (local_index_t j = 0; j < part.box.ny; ++j) {
        for (local_index_t i = 0; i < part.box.nx; ++i) {
          l2g[static_cast<std::size_t>(part.box.local_id(i, j, k))] =
              part.box.global_id(part.box.ox + i, part.box.oy + j,
                                 part.box.oz + k);
        }
      }
    }
    // Halo columns: reconstruct from each neighbor's send list (the sender
    // enumerates shared points in the same global order).
    for (const auto& nb : part.halo.neighbors) {
      const Problem& owner = parts[static_cast<std::size_t>(nb.rank)];
      // The owner's send list toward `r`:
      const HaloNeighbor* back = nullptr;
      for (const auto& onb : owner.halo.neighbors) {
        if (onb.rank == part.rank) {
          back = &onb;
        }
      }
      ASSERT_NE(back, nullptr);
      ASSERT_EQ(static_cast<local_index_t>(back->send_indices.size()),
                nb.recv_count);
      for (local_index_t k = 0; k < nb.recv_count; ++k) {
        const local_index_t owner_local =
            back->send_indices[static_cast<std::size_t>(k)];
        const local_index_t oi = owner_local % owner.box.nx;
        const local_index_t oj = (owner_local / owner.box.nx) % owner.box.ny;
        const local_index_t ok =
            owner_local / (owner.box.nx * owner.box.ny);
        l2g[static_cast<std::size_t>(part.halo.n_owned + nb.recv_offset + k)] =
            owner.box.global_id(owner.box.ox + oi, owner.box.oy + oj,
                                owner.box.oz + ok);
      }
    }
    for (local_index_t row = 0; row < part.a.num_rows; ++row) {
      const auto cols = part.a.row_cols(row);
      const auto vals = part.a.row_vals(row);
      const global_index_t grow = l2g[static_cast<std::size_t>(row)];
      for (std::size_t c = 0; c < cols.size(); ++c) {
        const global_index_t gcol = l2g[static_cast<std::size_t>(cols[c])];
        ASSERT_GE(gcol, 0) << "unmapped halo column";
        dist_entries[grow][gcol] = vals[c];
      }
    }
  }

  // Compare against the oracle.
  std::int64_t oracle_nnz = 0;
  for (local_index_t r = 0; r < oracle.a.num_rows; ++r) {
    const auto cols = oracle.a.row_cols(r);
    const auto vals = oracle.a.row_vals(r);
    for (std::size_t c = 0; c < cols.size(); ++c) {
      ++oracle_nnz;
      const auto row_it = dist_entries.find(r);
      ASSERT_NE(row_it, dist_entries.end());
      const auto col_it = row_it->second.find(cols[c]);
      ASSERT_NE(col_it, row_it->second.end())
          << "missing entry (" << r << "," << cols[c] << ")";
      EXPECT_DOUBLE_EQ(col_it->second, vals[c]);
    }
  }
  std::int64_t dist_nnz = 0;
  for (const auto& [row, colmap] : dist_entries) {
    dist_nnz += static_cast<std::int64_t>(colmap.size());
  }
  EXPECT_EQ(dist_nnz, oracle_nnz);
}

TEST_P(DistributedGen, HaloPatternIsPairwiseConsistent) {
  const int p = GetParam();
  const ProcessGrid pgrid = ProcessGrid::create(p);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;
  std::vector<Problem> parts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    parts[static_cast<std::size_t>(r)] = generate_problem(pgrid, r, pp);
  }
  for (int r = 0; r < p; ++r) {
    for (const auto& nb : parts[static_cast<std::size_t>(r)].halo.neighbors) {
      // Neighbor must list me, with send count == my recv count and vice
      // versa.
      const auto& other = parts[static_cast<std::size_t>(nb.rank)];
      const HaloNeighbor* back = nullptr;
      for (const auto& onb : other.halo.neighbors) {
        if (onb.rank == r) {
          back = &onb;
        }
      }
      ASSERT_NE(back, nullptr) << "halo pattern not symmetric";
      EXPECT_EQ(static_cast<local_index_t>(back->send_indices.size()),
                nb.recv_count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, DistributedGen, ::testing::Values(2, 4, 8));

TEST(Coarsen, DimsAndInjectionMap) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 8;
  const Problem fine = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const CoarseLevel cl = coarsen(fine);
  EXPECT_EQ(cl.problem.box.nx, 4);
  EXPECT_EQ(cl.problem.a.num_rows, 64);
  ASSERT_EQ(cl.c2f.size(), 64u);
  // Coarse (i,j,k) injects from fine (2i,2j,2k).
  for (local_index_t k = 0; k < 4; ++k) {
    for (local_index_t j = 0; j < 4; ++j) {
      for (local_index_t i = 0; i < 4; ++i) {
        EXPECT_EQ(cl.c2f[static_cast<std::size_t>(
                      cl.problem.box.local_id(i, j, k))],
                  fine.box.local_id(2 * i, 2 * j, 2 * k));
      }
    }
  }
}

TEST(Coarsen, OddDimsThrow) {
  ProblemParams p;
  p.nx = 5;
  p.ny = 4;
  p.nz = 4;
  const Problem fine = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  EXPECT_THROW(coarsen(fine), Error);
}

TEST(Problem, TooSmallGridThrows) {
  ProblemParams p;
  p.nx = 1;
  EXPECT_THROW(generate_problem(ProcessGrid(1, 1, 1), 0, p), Error);
}

}  // namespace
}  // namespace hpgmx
