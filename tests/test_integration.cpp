// End-to-end property sweeps: the solver stack must converge and preserve
// its invariants across the full configuration space — restart lengths,
// multigrid depths, code paths, nonsymmetry, coloring modes, rank counts —
// plus the matrix-free stencil operator extension.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/thread_comm.hpp"
#include "core/benchmark.hpp"
#include "core/gmres.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "core/stencil_operator.hpp"
#include "grid/problem.hpp"

namespace hpgmx {
namespace {

ProblemHierarchy serial_hierarchy(local_index_t n, const BenchParams& p) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = p.gamma;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         p.mg_levels, p.coloring_seed);
}

// ---------------------------------------------------------------------------
// Sweep: restart length × multigrid depth. GMRES must converge in every
// configuration; deeper hierarchies and longer restarts must not increase
// the iteration count (for this SPD-like problem).
// ---------------------------------------------------------------------------

class RestartByLevels
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RestartByLevels, GmresConverges) {
  const auto [restart, levels] = GetParam();
  BenchParams params;
  params.mg_levels = levels;
  params.restart_length = restart;
  const ProblemHierarchy h = serial_hierarchy(16, params);
  EXPECT_EQ(static_cast<int>(h.levels.size()), levels);

  SelfComm comm;
  Multigrid<double> mg(h, params);
  SolverOptions opts;
  opts.restart = restart;
  opts.max_iters = 2000;
  opts.tol = 1e-9;
  Gmres<double> solver(&mg.level_op(0), &mg, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged())
      << "restart=" << restart << " levels=" << levels
      << " iters=" << res.iterations;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RestartByLevels,
                         ::testing::Combine(::testing::Values(5, 10, 30),
                                            ::testing::Values(1, 2, 3, 4)));

// ---------------------------------------------------------------------------
// Sweep: OptLevel × ColoringMode. Both code paths with all three coloring
// algorithms must drive GMRES-IR to double accuracy.
// ---------------------------------------------------------------------------

class PathByColoring
    : public ::testing::TestWithParam<std::tuple<OptLevel, ColoringMode>> {};

TEST_P(PathByColoring, GmresIrReachesTolerance) {
  const auto [opt, coloring] = GetParam();
  BenchParams params;
  params.opt = opt;
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 16;
  Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);

  // Build a hierarchy with the requested coloring mode.
  ProblemHierarchy h;
  h.levels.push_back(std::move(prob));
  for (int l = 0; l < params.mg_levels - 1; ++l) {
    CoarseLevel cl = coarsen(h.levels.back());
    std::int64_t nnz_sel = 0;
    for (const local_index_t fr : cl.c2f) {
      nnz_sel += h.levels.back().a.row_ptr[fr + 1] -
                 h.levels.back().a.row_ptr[fr];
    }
    h.nnz_coarse_rows.push_back(nnz_sel);
    h.c2f.push_back(std::move(cl.c2f));
    h.levels.push_back(std::move(cl.problem));
  }
  for (const Problem& p : h.levels) {
    h.structures.push_back(std::make_unique<OperatorStructure>(
        build_structure(p, params.coloring_seed, coloring)));
  }

  SelfComm comm;
  Multigrid<float> mg_f(h, params);
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           90);
  SolverOptions opts;
  opts.max_iters = 1000;
  opts.tol = 1e-9;
  GmresIr<float> solver(&a_d, &mg_f.level_op(0), &mg_f, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged());
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathByColoring,
    ::testing::Combine(::testing::Values(OptLevel::Reference,
                                         OptLevel::Optimized),
                       ::testing::Values(ColoringMode::Geometric,
                                         ColoringMode::Jpl,
                                         ColoringMode::Greedy)));

// ---------------------------------------------------------------------------
// Sweep: nonsymmetry strength × rank count: the distributed mixed-precision
// solver must handle the benchmark's nonsymmetric variant at every world
// size.
// ---------------------------------------------------------------------------

class GammaByRanks
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GammaByRanks, DistributedGmresIrConverges) {
  const auto [gamma, ranks] = GetParam();
  const ProcessGrid pgrid = ProcessGrid::create(ranks);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  pp.gamma = gamma;
  BenchParams params;
  params.mg_levels = 2;
  params.gamma = gamma;

  SolverOptions opts;
  opts.max_iters = 2000;
  opts.tol = 1e-9;
  ThreadCommWorld::execute(ranks, [&](Comm& comm) {
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                        params.mg_levels, params.coloring_seed);
    Multigrid<float> mg_f(h, params);
    DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                             90);
    GmresIr<float> solver(&a_d, &mg_f.level_op(0), &mg_f, opts);
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    const SolveResult res = solver.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    EXPECT_TRUE(res.converged()) << "gamma=" << gamma << " ranks=" << ranks;
    for (const double v : x) {
      ASSERT_NEAR(v, 1.0, 1e-4);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, GammaByRanks,
                         ::testing::Combine(::testing::Values(0.0, 0.25, 0.5),
                                            ::testing::Values(1, 2, 8)));

// ---------------------------------------------------------------------------
// Matrix-free stencil operator (§5 extension).
// ---------------------------------------------------------------------------

class StencilOp : public ::testing::TestWithParam<int> {};

TEST_P(StencilOp, MatchesAssembledMatrixAcrossRanks) {
  const int ranks = GetParam();
  const ProcessGrid pgrid = ProcessGrid::create(ranks);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;
  pp.gamma = 0.2;
  ThreadCommWorld::execute(ranks, [&](Comm& comm) {
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<double> assembled(prob.a, &s, OptLevel::Optimized, 10);
    StencilOperator<double> matrix_free(&prob, 20);
    ASSERT_EQ(matrix_free.num_owned(), assembled.num_owned());
    ASSERT_EQ(matrix_free.vec_len(), assembled.vec_len());

    AlignedVector<double> x(static_cast<std::size_t>(assembled.vec_len()));
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::sin(0.3 * static_cast<double>(i) + comm.rank());
    }
    AlignedVector<double> x2 = x;
    AlignedVector<double> y1(static_cast<std::size_t>(assembled.num_owned()));
    AlignedVector<double> y2(y1.size());
    assembled.spmv(comm, std::span<double>(x.data(), x.size()),
                   std::span<double>(y1.data(), y1.size()));
    matrix_free.apply(comm, std::span<double>(x2.data(), x2.size()),
                      std::span<double>(y2.data(), y2.size()));
    for (std::size_t i = 0; i < y1.size(); ++i) {
      ASSERT_NEAR(y1[i], y2[i], 1e-12) << "row " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, StencilOp, ::testing::Values(1, 2, 8));

TEST(StencilOp, FloatInstantiationMatchesFloatMatrix) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 6;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const CsrMatrix<float> af = prob.a.convert<float>();
  StencilOperator<float> op(&prob, 30);
  AlignedVector<float> x(static_cast<std::size_t>(af.num_cols));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.001f * static_cast<float>(i % 97) - 0.05f;
  }
  AlignedVector<float> y1(static_cast<std::size_t>(af.num_rows), 0.0f);
  AlignedVector<float> y2(y1.size(), 0.0f);
  csr_spmv(af, std::span<const float>(x.data(), x.size()),
           std::span<float>(y1.data(), y1.size()));
  op.apply_local(std::span<const float>(x.data(), x.size()),
                 std::span<float>(y2.data(), y2.size()));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    ASSERT_NEAR(y1[i], y2[i], 1e-4f * (1.0f + std::abs(y1[i])));
  }
}

// ---------------------------------------------------------------------------
// Determinism: two identical runs produce identical iteration counts and
// residuals (seeded coloring, rank-ordered reductions).
// ---------------------------------------------------------------------------

TEST(Determinism, RepeatRunsAreBitIdentical) {
  BenchParams params;
  params.mg_levels = 2;
  SolverOptions opts;
  opts.max_iters = 300;
  opts.tol = 1e-9;
  double relres[2];
  int iters[2];
  for (int run = 0; run < 2; ++run) {
    ThreadCommWorld::execute(2, [&](Comm& comm) {
      const ProcessGrid pgrid = ProcessGrid::create(2);
      ProblemParams pp;
      pp.nx = pp.ny = pp.nz = 8;
      const ProblemHierarchy h =
          build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                          params.mg_levels, params.coloring_seed);
      Multigrid<double> mg(h, params);
      Gmres<double> solver(&mg.level_op(0), &mg, opts);
      AlignedVector<double> x(h.levels[0].b.size(), 0.0);
      const SolveResult res = solver.solve(
          comm,
          std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
          std::span<double>(x.data(), x.size()));
      if (comm.rank() == 0) {
        relres[run] = res.relative_residual;
        iters[run] = res.iterations;
      }
    });
  }
  EXPECT_EQ(iters[0], iters[1]);
  EXPECT_EQ(relres[0], relres[1]);  // bit-identical, not just close
}

// ---------------------------------------------------------------------------
// Failure injection: malformed configurations must fail loudly, not corrupt
// results.
// ---------------------------------------------------------------------------

TEST(FailureInjection, MismatchedMessageSizeThrows) {
  EXPECT_THROW(ThreadCommWorld::execute(2,
                                        [](Comm& comm) {
                                          std::vector<double> buf(4, 1.0);
                                          if (comm.rank() == 0) {
                                            comm.send(
                                                1, 9,
                                                std::span<const double>(
                                                    buf.data(), 2));
                                          } else {
                                            comm.recv(0, 9,
                                                      std::span<double>(
                                                          buf.data(), 4));
                                          }
                                        }),
               Error);
}

TEST(FailureInjection, HierarchyDeeperThanGridStopsCleanly) {
  // 8^3 can only support 2 coarsenings to 2^3; requesting 6 levels must
  // truncate, not crash or produce invalid levels.
  BenchParams params;
  params.mg_levels = 6;
  const ProblemHierarchy h = serial_hierarchy(8, params);
  EXPECT_LE(h.levels.size(), 3u);
  for (const auto& lvl : h.levels) {
    EXPECT_GE(lvl.box.nx, 2);
  }
}

TEST(FailureInjection, ZeroRhsIsHandled) {
  BenchParams params;
  params.mg_levels = 2;
  const ProblemHierarchy h = serial_hierarchy(8, params);
  SelfComm comm;
  Multigrid<double> mg(h, params);
  SolverOptions opts;
  Gmres<double> solver(&mg.level_op(0), &mg, opts);
  AlignedVector<double> zero(h.levels[0].b.size(), 0.0);
  AlignedVector<double> x(zero.size(), 5.0);  // nonzero guess
  const SolveResult res =
      solver.solve(comm, std::span<const double>(zero.data(), zero.size()),
                   std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged());
  for (const double v : x) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace hpgmx
