// Precision subsystem tests: bf16/fp16 conversion layer (round-trips, RNE
// tie cases, inf/NaN propagation, subnormals), PrecisionTraits/wider_t
// interplay, 16-bit collectives through SelfComm and ThreadComm, ScaleGuard
// policy, and the GMRES-IR convergence claims (bf16 reaches the double
// target; fp16 needs the guard on a badly scaled system).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "comm/thread_comm.hpp"
#include "core/dist_operator.hpp"
#include "precision/convert_batch.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/adaptive_controller.hpp"
#include "precision/float16.hpp"
#include "precision/precision.hpp"
#include "precision/scale_guard.hpp"
#include "precision_oracle.hpp"

namespace hpgmx {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// ---------------------------------------------------------------------------
// Conversion layer

TEST(Bf16, ExactValuesRoundTrip) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.75f, 256.0f, 0x1p100f,
                        -0x1p-100f, 0.00390625f}) {
    EXPECT_EQ(static_cast<float>(bf16_t(v)), v) << v;
  }
}

TEST(Bf16, AllBitPatternsRoundTrip) {
  // bf16 -> float -> bf16 must be the identity for every finite pattern and
  // map NaNs to NaNs.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const bf16_t x = bf16_t::from_bits(bits);
    const float f = static_cast<float>(x);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(static_cast<float>(bf16_t(f))));
      continue;
    }
    EXPECT_EQ(bf16_t(f).bits, bits) << "pattern " << b;
  }
}

TEST(Fp16, AllBitPatternsRoundTrip) {
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const fp16_t x = fp16_t::from_bits(bits);
    const float f = static_cast<float>(x);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(static_cast<float>(fp16_t(f))));
      continue;
    }
    EXPECT_EQ(fp16_t(f).bits, bits) << "pattern " << b;
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // 1 + 2^-8 lies exactly between 1.0 (mantissa 0, even) and 1 + 2^-7:
  // ties go to the even mantissa.
  EXPECT_EQ(static_cast<float>(bf16_t(1.0f + 0x1p-8f)), 1.0f);
  // 1 + 3*2^-8 lies between 1 + 2^-7 (odd) and 1 + 2^-6 (even).
  EXPECT_EQ(static_cast<float>(bf16_t(1.0f + 3 * 0x1p-8f)), 1.0f + 0x1p-6f);
  // Just above/below the tie rounds to nearest.
  EXPECT_EQ(static_cast<float>(bf16_t(1.0f + 0x1p-8f + 0x1p-16f)),
            1.0f + 0x1p-7f);
  EXPECT_EQ(static_cast<float>(bf16_t(1.0f + 0x1p-8f - 0x1p-16f)), 1.0f);
}

TEST(Fp16, RoundsToNearestEven) {
  // 1 + 2^-11 ties between 1.0 (even) and 1 + 2^-10.
  EXPECT_EQ(static_cast<float>(fp16_t(1.0f + 0x1p-11f)), 1.0f);
  // 1 + 3*2^-11 ties between 1 + 2^-10 (odd) and 1 + 2^-9 (even).
  EXPECT_EQ(static_cast<float>(fp16_t(1.0f + 3 * 0x1p-11f)), 1.0f + 0x1p-9f);
  EXPECT_EQ(static_cast<float>(fp16_t(1.0f + 0x1p-11f + 0x1p-20f)),
            1.0f + 0x1p-10f);
}

TEST(Fp16, OverflowAndMax) {
  EXPECT_EQ(static_cast<float>(fp16_t(65504.0f)), 65504.0f);  // largest finite
  EXPECT_EQ(static_cast<float>(fp16_t(65536.0f)), kInf);
  EXPECT_EQ(static_cast<float>(fp16_t(1.0e8f)), kInf);
  EXPECT_EQ(static_cast<float>(fp16_t(-1.0e8f)), -kInf);
  // 65520 ties between 65504 and 65536; IEEE RNE overflows to inf.
  EXPECT_EQ(static_cast<float>(fp16_t(65520.0f)), kInf);
  EXPECT_EQ(static_cast<float>(fp16_t(65519.0f)), 65504.0f);
}

TEST(Fp16, SubnormalsAndUnderflow) {
  // Smallest subnormal is 2^-24; 2^-25 ties to zero (even).
  EXPECT_EQ(static_cast<float>(fp16_t(0x1p-24f)), 0x1p-24f);
  EXPECT_EQ(static_cast<float>(fp16_t(0x1p-25f)), 0.0f);
  EXPECT_EQ(static_cast<float>(fp16_t(0x1p-25f * 1.5f)), 0x1p-24f);
  EXPECT_EQ(static_cast<float>(fp16_t(0x1p-26f)), 0.0f);
  // Smallest normal.
  EXPECT_EQ(static_cast<float>(fp16_t(0x1p-14f)), 0x1p-14f);
  // Sign of zero survives.
  EXPECT_TRUE(std::signbit(static_cast<float>(fp16_t(-0x1p-30f))));
}

TEST(Float16, InfAndNanPropagate) {
  EXPECT_EQ(static_cast<float>(bf16_t(kInf)), kInf);
  EXPECT_EQ(static_cast<float>(bf16_t(-kInf)), -kInf);
  EXPECT_TRUE(std::isnan(static_cast<float>(
      bf16_t(std::numeric_limits<float>::quiet_NaN()))));
  EXPECT_EQ(static_cast<float>(fp16_t(kInf)), kInf);
  EXPECT_EQ(static_cast<float>(fp16_t(-kInf)), -kInf);
  EXPECT_TRUE(std::isnan(static_cast<float>(
      fp16_t(std::numeric_limits<float>::quiet_NaN()))));
  // bf16 overflow saturates to inf: FLT_MAX's mantissa rounds up past the
  // largest bf16 (exponent 254, mantissa 0x7f).
  EXPECT_EQ(static_cast<float>(bf16_t(std::numeric_limits<float>::max())),
            kInf);
}

TEST(Float16, ArithmeticPromotesThroughFloat) {
  const bf16_t a(1.5f);
  const bf16_t b(0.25f);
  static_assert(std::is_same_v<decltype(a * b), float>);
  EXPECT_EQ(a * b, 0.375f);
  bf16_t acc(1.0f);
  acc += 0.5f;
  EXPECT_EQ(static_cast<float>(acc), 1.5f);
  acc /= 3.0f;  // result rounds to bf16
  EXPECT_NEAR(static_cast<float>(acc), 0.5f, 0.5f * 0x1p-7f);
  const fp16_t c(2.0f);
  EXPECT_EQ(c * c, 4.0f);
}

// ---------------------------------------------------------------------------
// Batched (SIMD-block) conversions vs the scalar routines
//
// The widen direction is exhaustively equal over all 65536 bit patterns;
// the narrow direction is checked over every widened 16-bit value, its
// float neighbors, and a pseudo-random sweep of raw float bit patterns —
// covering normals, subnormals, RNE ties, overflow, inf and NaN.

template <typename T>
void expect_widen_block_exhaustive() {
  std::vector<T> src(1u << 16);
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    src[b] = T::from_bits(static_cast<std::uint16_t>(b));
  }
  std::vector<float> dst(src.size(), 0.0f);
  widen_block(src.data(), dst.data(), src.size());
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const float scalar = static_cast<float>(src[b]);
    ASSERT_EQ(std::bit_cast<std::uint32_t>(dst[b]),
              std::bit_cast<std::uint32_t>(scalar))
        << "pattern " << b;
  }
}

TEST(ConvertBatch, WidenBf16MatchesScalarForAllBitPatterns) {
  expect_widen_block_exhaustive<bf16_t>();
}

TEST(ConvertBatch, WidenFp16MatchesScalarForAllBitPatterns) {
  expect_widen_block_exhaustive<fp16_t>();
}

template <typename T>
void expect_narrow_block_matches_scalar() {
  std::vector<float> src;
  src.reserve((1u << 16) * 3 + (1u << 18));
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const float f = static_cast<float>(T::from_bits(static_cast<std::uint16_t>(b)));
    src.push_back(f);
    // Neighbors exercise RNE ties and range-boundary selects.
    src.push_back(std::nextafter(f, kInf));
    src.push_back(std::nextafter(f, -kInf));
  }
  std::uint32_t lcg = 0x12345678u;
  for (int i = 0; i < (1 << 18); ++i) {
    lcg = lcg * 1664525u + 1013904223u;
    src.push_back(std::bit_cast<float>(lcg));
  }
  std::vector<T> dst(src.size());
  // Convert in kConvertBlock-sized chunks (the primitive's contract).
  for (std::size_t i0 = 0; i0 < src.size(); i0 += detail::kConvertBlock) {
    const std::size_t len = std::min(detail::kConvertBlock, src.size() - i0);
    narrow_block(src.data() + i0, dst.data() + i0, len);
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    const T scalar(src[i]);
    ASSERT_EQ(dst[i].bits, scalar.bits)
        << "input bits " << std::bit_cast<std::uint32_t>(src[i]);
  }
}

TEST(ConvertBatch, NarrowBf16MatchesScalarIncludingTiesAndSpecials) {
  expect_narrow_block_matches_scalar<bf16_t>();
}

TEST(ConvertBatch, NarrowFp16MatchesScalarIncludingTiesAndSpecials) {
  expect_narrow_block_matches_scalar<fp16_t>();
}

TEST(ConvertBatch, ConvertSpanMatchesPerElementStaticCast) {
  const std::size_t n = 4097;  // several blocks + ragged tail
  std::vector<double> src(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = (static_cast<double>(i) - 2000.0) * 0.37 + 1e-7;
  }
  // double -> bf16 -> float -> fp16 -> double, each leg against the scalar
  // conversion chain it must reproduce bit for bit.
  std::vector<bf16_t> as_bf(n);
  convert_span(std::span<const double>(src.data(), n),
               std::span<bf16_t>(as_bf.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(as_bf[i].bits, static_cast<bf16_t>(src[i]).bits);
  }
  std::vector<float> as_f(n);
  convert_span(std::span<const bf16_t>(as_bf.data(), n),
               std::span<float>(as_f.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(as_f[i], static_cast<float>(as_bf[i]));
  }
  std::vector<fp16_t> as_h(n);
  convert_span(std::span<const float>(as_f.data(), n),
               std::span<fp16_t>(as_h.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(as_h[i].bits, fp16_t(as_f[i]).bits);
  }
  std::vector<double> back(n);
  convert_span(std::span<const fp16_t>(as_h.data(), n),
               std::span<double>(back.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(back[i], static_cast<double>(static_cast<float>(as_h[i])));
  }
}

TEST(ConvertBatch, EllConvertRoutesThroughBatchedPrimitives) {
  // EllMatrix<double>::convert<bf16_t>() must equal the per-element
  // static_cast it replaced, entry for entry (values and diagonal).
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const EllMatrix<double> e = ell_from_csr(prob.a);
  const EllMatrix<bf16_t> c = e.convert<bf16_t>();
  ASSERT_EQ(c.values.size(), e.values.size());
  for (std::size_t i = 0; i < e.values.size(); ++i) {
    ASSERT_EQ(c.values[i].bits, static_cast<bf16_t>(e.values[i]).bits);
  }
  for (std::size_t i = 0; i < e.diag.size(); ++i) {
    ASSERT_EQ(c.diag[i].bits, static_cast<bf16_t>(e.diag[i]).bits);
  }
}

// ---------------------------------------------------------------------------
// Traits and type algebra

TEST(PrecisionTraits, SixteenBitFormats) {
  static_assert(is_supported_value_v<bf16_t>);
  static_assert(is_supported_value_v<fp16_t>);
  static_assert(PrecisionTraits<bf16_t>::bytes == 2);
  static_assert(PrecisionTraits<fp16_t>::bytes == 2);
  EXPECT_EQ(PrecisionTraits<bf16_t>::name, "bf16");
  EXPECT_EQ(PrecisionTraits<fp16_t>::name, "fp16");
  EXPECT_EQ(static_cast<float>(PrecisionTraits<bf16_t>::unit_roundoff),
            0x1p-8f);
  EXPECT_EQ(static_cast<float>(PrecisionTraits<fp16_t>::unit_roundoff),
            0x1p-11f);
  EXPECT_EQ(PrecisionTraits<fp16_t>::max_finite, 65504.0);
  // bf16 max: exponent 254, mantissa 0x7f.
  EXPECT_EQ(PrecisionTraits<bf16_t>::max_finite,
            static_cast<double>(static_cast<float>(bf16_t::from_bits(0x7f7f))));
}

TEST(PrecisionTraits, WiderAndAccumInterplay) {
  // Mixed kernels accumulate in the wider storage type; 16-bit formats are
  // narrower than everything hardware.
  static_assert(std::is_same_v<wider_t<bf16_t, float>, float>);
  static_assert(std::is_same_v<wider_t<double, fp16_t>, double>);
  static_assert(std::is_same_v<wider_t<bf16_t, fp16_t>, bf16_t>);  // tie: first
  // Running sums over 16-bit values promote through float.
  static_assert(std::is_same_v<accum_t<bf16_t>, float>);
  static_assert(std::is_same_v<accum_t<fp16_t>, float>);
  static_assert(std::is_same_v<accum_t<float>, float>);
  static_assert(std::is_same_v<accum_t<double>, double>);
}

TEST(PrecisionEnum, ParseAndName) {
  EXPECT_EQ(parse_precision("bf16"), Precision::Bf16);
  EXPECT_EQ(parse_precision("FP16"), Precision::Fp16);
  EXPECT_EQ(parse_precision("half"), Precision::Fp16);
  EXPECT_EQ(parse_precision("float"), Precision::Fp32);
  EXPECT_EQ(parse_precision("double"), Precision::Fp64);
  EXPECT_FALSE(parse_precision("fp8").has_value());
  EXPECT_EQ(precision_name(Precision::Bf16), "bf16");
  const auto bytes = dispatch_precision(
      Precision::Fp16, [](auto tag) {
        return PrecisionTraits<typename decltype(tag)::type>::bytes;
      });
  EXPECT_EQ(bytes, 2u);
}

// ---------------------------------------------------------------------------
// 16-bit payloads through the communicators

TEST(Comm16Bit, SelfCommAllreduceAndAllgather) {
  SelfComm comm;
  const bf16_t in[3] = {bf16_t(1.5f), bf16_t(-2.0f), bf16_t(0.25f)};
  bf16_t out[3] = {};
  comm.allreduce(std::span<const bf16_t>(in, 3), std::span<bf16_t>(out, 3),
                 ReduceOp::Sum);
  EXPECT_EQ(static_cast<float>(out[0]), 1.5f);
  EXPECT_EQ(static_cast<float>(out[1]), -2.0f);
  fp16_t gathered[2] = {};
  const fp16_t mine[2] = {fp16_t(3.0f), fp16_t(4.0f)};
  comm.allgather(std::span<const fp16_t>(mine, 2),
                 std::span<fp16_t>(gathered, 2));
  EXPECT_EQ(static_cast<float>(gathered[1]), 4.0f);
}

TEST(Comm16Bit, ThreadCommMovesTwoBytePayloads) {
  constexpr int kRanks = 4;
  ThreadCommWorld::execute(kRanks, [](Comm& comm) {
    // Allreduce: sum of rank+1 halves over all ranks; exact in fp16.
    const fp16_t mine(static_cast<float>(comm.rank() + 1) * 0.5f);
    fp16_t sum{};
    comm.allreduce(std::span<const fp16_t>(&mine, 1),
                   std::span<fp16_t>(&sum, 1), ReduceOp::Sum);
    EXPECT_EQ(static_cast<float>(sum), 5.0f);  // (1+2+3+4)/2

    const bf16_t big(static_cast<float>(comm.rank()));
    const bf16_t mx = comm.allreduce_scalar(big, ReduceOp::Max);
    EXPECT_EQ(static_cast<float>(mx), 3.0f);

    // Allgather: every rank contributes two bf16 values.
    const bf16_t in[2] = {bf16_t(static_cast<float>(comm.rank())),
                          bf16_t(-static_cast<float>(comm.rank()))};
    bf16_t all[2 * kRanks] = {};
    comm.allgather(std::span<const bf16_t>(in, 2),
                   std::span<bf16_t>(all, 2 * kRanks));
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_EQ(static_cast<float>(all[2 * r]), static_cast<float>(r));
      EXPECT_EQ(static_cast<float>(all[2 * r + 1]), -static_cast<float>(r));
    }

    // Point-to-point ring: payload is 2 bytes/value on the wire.
    const int next = (comm.rank() + 1) % kRanks;
    const int prev = (comm.rank() + kRanks - 1) % kRanks;
    const fp16_t tx(static_cast<float>(comm.rank()) + 0.5f);
    fp16_t rx{};
    Request rreq = comm.irecv(prev, /*tag=*/7, std::span<fp16_t>(&rx, 1));
    comm.send(next, /*tag=*/7, std::span<const fp16_t>(&tx, 1));
    rreq.wait();
    EXPECT_EQ(static_cast<float>(rx), static_cast<float>(prev) + 0.5f);
  });
}

// ---------------------------------------------------------------------------
// ScaleGuard policy

ProblemHierarchy make_hierarchy(local_index_t n, const BenchParams& params) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = params.gamma;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         params.mg_levels, params.coloring_seed);
}


TEST(ScaleGuard, StaysDormantForWellScaledValues) {
  ScaleGuard g;
  g.initialize(26.0, PrecisionTraits<fp16_t>::max_finite);
  EXPECT_EQ(g.scale(), 1.0);
  EXPECT_FALSE(g.engaged());
  g.initialize(26.0e9, PrecisionTraits<bf16_t>::max_finite);
  EXPECT_EQ(g.scale(), 1.0);  // bf16's range absorbs 2.6e10 easily
}

TEST(ScaleGuard, EquilibratesToPowerOfTwoNearOne) {
  ScaleGuard g;
  g.initialize(2.6e10, PrecisionTraits<fp16_t>::max_finite);
  EXPECT_TRUE(g.engaged());
  const double s = g.scale();
  EXPECT_EQ(std::exp2(std::round(std::log2(s))), s);  // power of two
  EXPECT_GT(2.6e10 * s, 0.25);  // lands within [target/2, target]
  EXPECT_LE(2.6e10 * s, 1.0);
}

TEST(ScaleGuard, BacksOffAndRegrowsToInitialCap) {
  ScaleGuardConfig cfg;
  cfg.growth_interval = 2;
  ScaleGuard g(cfg);
  g.initialize(1.0e6, PrecisionTraits<fp16_t>::max_finite);
  const double init = g.initial_scale();
  EXPECT_EQ(g.on_overflow(), 0.5);
  EXPECT_EQ(g.scale(), init * 0.5);
  EXPECT_EQ(g.on_overflow(), 0.5);
  EXPECT_EQ(g.scale(), init * 0.25);
  // Two clean cycles per growth step, never past the initial scale.
  EXPECT_EQ(g.on_good_cycle(), 1.0);
  EXPECT_EQ(g.on_good_cycle(), 2.0);
  EXPECT_EQ(g.scale(), init * 0.5);
  EXPECT_EQ(g.on_good_cycle(), 1.0);
  EXPECT_EQ(g.on_good_cycle(), 2.0);
  EXPECT_EQ(g.scale(), init);
  EXPECT_EQ(g.on_good_cycle(), 1.0);  // capped at the initial scale
  EXPECT_EQ(g.scale(), init);
  EXPECT_FALSE(g.exhausted());
}

TEST(ScaleGuard, RepeatedBackoffExhaustsTheBudget) {
  ScaleGuardConfig cfg;
  cfg.max_backoffs = 3;
  ScaleGuard g(cfg);
  g.initialize(1.0e6, PrecisionTraits<fp16_t>::max_finite);
  for (int i = 0; i < 3; ++i) {
    (void)g.on_overflow();
    EXPECT_FALSE(g.exhausted()) << "backoff " << i;
  }
  (void)g.on_overflow();  // one past the budget
  EXPECT_TRUE(g.exhausted());
  EXPECT_EQ(g.overflow_count(), 4);
  // Exhaustion is about the overflow count, not the scale: good cycles
  // never un-exhaust the guard.
  (void)g.on_good_cycle();
  EXPECT_TRUE(g.exhausted());
}

TEST(ScaleGuard, OverflowResetsTheRegrowthWindow) {
  ScaleGuardConfig cfg;
  cfg.growth_interval = 2;
  ScaleGuard g(cfg);
  g.initialize(1.0e6, PrecisionTraits<fp16_t>::max_finite);
  const double init = g.initial_scale();
  (void)g.on_overflow();
  EXPECT_EQ(g.on_good_cycle(), 1.0);  // one clean cycle: window half full
  (void)g.on_overflow();              // discards the partial window
  EXPECT_EQ(g.scale(), init * 0.25);
  EXPECT_EQ(g.on_good_cycle(), 1.0);  // window restarts from zero...
  EXPECT_EQ(g.on_good_cycle(), 2.0);  // ...and needs the full interval again
  EXPECT_EQ(g.scale(), init * 0.5);
}

TEST(ScaleGuard, ControllerPromotionOutranksGuardBackoff) {
  // GmresIr's non-finite sites ask the cycle observer first and only fall
  // through to the guard on Continue: a promotion fixes the range problem
  // outright, so the guard must not also back off (the promoted format
  // re-equilibrates from scratch). Replay both controller answers against
  // the same guard, with the oracle's scripted overflow cycle.
  const std::vector<OracleStep> overflow_cycle = {{1.0, 5, true}};
  AdaptiveConfig cfg;
  cfg.enabled = true;
  cfg.start = Precision::Bf16;

  ScaleGuard guard;
  guard.initialize(2.6e10, PrecisionTraits<fp16_t>::max_finite);
  const double scale_before = guard.scale();

  PrecisionController promoting(cfg);  // below the top: Promote wins
  for (const OracleStep& s : overflow_cycle) {
    promoting.observe_inner_iterations(s.inner_iterations);
    if (promoting.observe_non_finite() == CycleAction::Continue) {
      (void)guard.on_overflow();
    }
  }
  EXPECT_EQ(promoting.promotions(), 1);
  EXPECT_EQ(guard.scale(), scale_before);  // guard untouched
  EXPECT_EQ(guard.overflow_count(), 0);

  cfg.ladder = {Precision::Bf16};  // single rung: the controller is at top
  cfg.start.reset();
  PrecisionController pinned_at_top(cfg);
  for (const OracleStep& s : overflow_cycle) {
    pinned_at_top.observe_inner_iterations(s.inner_iterations);
    if (pinned_at_top.observe_non_finite() == CycleAction::Continue) {
      (void)guard.on_overflow();
    }
  }
  EXPECT_EQ(pinned_at_top.promotions(), 0);
  EXPECT_EQ(guard.scale(), scale_before * 0.5);  // backoff fell to the guard
  EXPECT_EQ(guard.overflow_count(), 1);
}

TEST(ScaleGuard, SetValueScaleRedemotesFromSourceAndIsIdempotent) {
  // Backoff/regrow must re-demote from the double source: multiplying the
  // rounded fp16 payload in place would destroy subnormal-range entries on
  // every round trip, and a second application of the same absolute scale
  // (GmresIr's a_low aliases the multigrid fine level) must be a no-op.
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(8, params);
  DistOperator<fp16_t> op(h.levels[0].a, h.structures[0].get(), params.opt,
                          /*tag=*/50, /*value_scale=*/0x1p-25);
  // diag 26 * 2^-25 = 13 * 2^-24: an *odd* multiple of fp16's subnormal
  // step. In-place halving would round it to 6 * 2^-24 and regrow to
  // 12 * 2^-24 — off by one unit forever; re-demotion restores 13 exactly.
  const AlignedVector<fp16_t> original = op.csr().values;
  op.set_value_scale(0x1p-26);  // back off
  op.set_value_scale(0x1p-26);  // aliased second application: no-op
  EXPECT_EQ(op.value_scale(), 0x1p-26);
  op.set_value_scale(0x1p-25);  // regrow to the initial scale
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(op.csr().values[i].bits, original[i].bits) << "entry " << i;
  }
}

TEST(ScaleGuard, AllFiniteDetector) {
  AlignedVector<fp16_t> v(64, fp16_t(1.0f));
  EXPECT_TRUE(all_finite(std::span<const fp16_t>(v.data(), v.size())));
  v[17] = fp16_t(1.0e8f);  // demotes to inf
  EXPECT_FALSE(all_finite(std::span<const fp16_t>(v.data(), v.size())));
}

// ---------------------------------------------------------------------------
// GMRES-IR convergence at 16-bit inner precision

/// Multiply the whole system (A, b) by `s` on every level: the solution is
/// unchanged (still the ones vector) but the matrix entries leave fp16's
/// finite range when s is large.
void scale_system(ProblemHierarchy& h, double s) {
  for (Problem& lvl : h.levels) {
    for (double& v : lvl.a.values) {
      v *= s;
    }
    for (double& v : lvl.a.diag) {
      v *= s;
    }
    for (double& v : lvl.b) {
      v *= s;
    }
  }
}

template <typename TLow>
SolveResult solve_ir(const ProblemHierarchy& h, bool use_guard,
                     std::span<double> x, int max_iters = 3000) {
  BenchParams params;
  SelfComm comm;
  SolverOptions opts;
  opts.max_iters = max_iters;
  opts.tol = 1e-9;
  ScaleGuard guard;
  guard.initialize(hierarchy_max_abs_value(h),
                   PrecisionTraits<TLow>::max_finite);
  Multigrid<TLow> mg(h, params, /*tag_base=*/100,
                     use_guard ? guard.scale() : 1.0);
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           /*tag=*/90);
  GmresIr<TLow> solver(&a_d, &mg.level_op(0), &mg, opts);
  if (use_guard) {
    solver.set_scale_guard(&guard);
  }
  return solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()), x);
}

TEST(GmresIr16Bit, Bf16ReachesDoubleTarget) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res =
      solve_ir<bf16_t>(h, /*use_guard=*/true, {x.data(), x.size()});
  EXPECT_TRUE(res.converged());
  EXPECT_LT(res.relative_residual, 1e-9);
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

TEST(GmresIr16Bit, Fp16ReachesDoubleTargetWhenWellScaled) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res =
      solve_ir<fp16_t>(h, /*use_guard=*/true, {x.data(), x.size()});
  EXPECT_TRUE(res.converged());
  EXPECT_LT(res.relative_residual, 1e-9);
}

TEST(GmresIr16Bit, Fp16OverflowsOnBadlyScaledSystemWithoutGuard) {
  // Matrix entries ~2.6e10 demote to inf in fp16: the inner basis turns
  // non-finite immediately and the solver must report failure (without
  // poisoning x or burning the whole iteration budget).
  BenchParams params;
  ProblemHierarchy h = make_hierarchy(16, params);
  scale_system(h, 1.0e9);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res =
      solve_ir<fp16_t>(h, /*use_guard=*/false, {x.data(), x.size()},
                       /*max_iters=*/500);
  EXPECT_FALSE(res.converged());
  for (const double v : x) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(GmresIr16Bit, Fp16ConvergesOnBadlyScaledSystemWithGuard) {
  BenchParams params;
  ProblemHierarchy h = make_hierarchy(16, params);
  scale_system(h, 1.0e9);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res =
      solve_ir<fp16_t>(h, /*use_guard=*/true, {x.data(), x.size()});
  EXPECT_TRUE(res.converged());
  EXPECT_LT(res.relative_residual, 1e-9);
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

TEST(GmresIr16Bit, Bf16UnaffectedByBadScaling) {
  // bf16 keeps fp32's exponent range: 2.6e10 is representable, the guard
  // stays dormant, and convergence matches the well-scaled case.
  BenchParams params;
  ProblemHierarchy h = make_hierarchy(16, params);
  scale_system(h, 1.0e9);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res =
      solve_ir<bf16_t>(h, /*use_guard=*/true, {x.data(), x.size()});
  EXPECT_TRUE(res.converged());
}

TEST(GmresIr16Bit, DistributedBf16SolveAgreesAcrossRanks) {
  // 16-bit halo exchange + CGS2 allreduces through ThreadComm: the solve
  // must converge and all ranks must agree on the iteration count.
  constexpr int kRanks = 2;
  const ProcessGrid pgrid = ProcessGrid::create(kRanks);
  ProblemParams pp;
  pp.nx = static_cast<local_index_t>(16 / pgrid.px());
  pp.ny = static_cast<local_index_t>(16 / pgrid.py());
  pp.nz = static_cast<local_index_t>(16 / pgrid.pz());
  BenchParams params;
  params.mg_levels = 2;
  SolverOptions opts;
  opts.max_iters = 3000;
  opts.tol = 1e-9;

  std::vector<SolveResult> results(kRanks);
  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                        params.mg_levels, params.coloring_seed);
    ScaleGuard guard;
    guard.initialize(
        comm.allreduce_scalar(hierarchy_max_abs_value(h), ReduceOp::Max),
        PrecisionTraits<bf16_t>::max_finite);
    Multigrid<bf16_t> mg(h, params, /*tag_base=*/100, guard.scale());
    DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                             /*tag=*/90);
    GmresIr<bf16_t> solver(&a_d, &mg.level_op(0), &mg, opts);
    solver.set_scale_guard(&guard);
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    results[static_cast<std::size_t>(comm.rank())] = solver.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    for (const double v : x) {
      ASSERT_NEAR(v, 1.0, 1e-5);
    }
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(results[static_cast<std::size_t>(r)].converged());
    EXPECT_EQ(results[static_cast<std::size_t>(r)].iterations,
              results[0].iterations);
  }
}

}  // namespace
}  // namespace hpgmx
