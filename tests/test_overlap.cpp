// Overlap / backend equivalence suite.
//
// The paper's overlap optimization (§3.2.3) hides halo latency behind
// interior compute. The contract that makes it an *optimization* and not a
// different algorithm is bit-identity: splitting each sweep into
// interior+boundary row lists around the split-phase exchange must produce
// exactly the bits the blocking exchange produces, for every value format
// and both column-index widths. This file pins that down, along with the
// sibling contracts: batched vs per-scalar allreduces are bit-identical,
// the Self and Thread backends agree at one rank, and the HPGMX_COMM /
// HPGMX_OVERLAP / HPGMX_BATCH_REDUCE environment switches parse correctly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "base/error.hpp"
#include "comm/comm_world.hpp"
#include "comm/thread_comm.hpp"
#include "comm_doubles.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "core/params.hpp"
#include "grid/problem.hpp"
#include "precision/float16.hpp"

namespace hpgmx {
namespace {

// ---------------------------------------------------------------------------
// Partition correctness: every owned row lands in exactly one of
// interior/boundary, boundary rows are precisely the rows reading a halo
// column, and the per-color splits repartition the same sets.

TEST(OverlapPartition, ClassifiesEveryRowExactlyOnce) {
  const ProcessGrid pgrid = ProcessGrid::create(4);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;
  for (int rank = 0; rank < 4; ++rank) {
    const Problem prob = generate_problem(pgrid, rank, pp);
    const OperatorStructure s = build_structure(prob, 42);
    const CsrMatrix<double>& a = prob.a;

    const auto reads_halo = [&](local_index_t row) {
      for (std::int64_t k = a.row_ptr[row]; k < a.row_ptr[row + 1]; ++k) {
        if (a.col_idx[static_cast<std::size_t>(k)] >= a.num_owned_cols) {
          return true;
        }
      }
      return false;
    };

    std::vector<int> seen(static_cast<std::size_t>(a.num_rows), 0);
    for (const local_index_t row : s.interior_rows) {
      ++seen[static_cast<std::size_t>(row)];
      EXPECT_FALSE(reads_halo(row)) << "rank " << rank << " row " << row;
    }
    for (const local_index_t row : s.boundary_rows) {
      ++seen[static_cast<std::size_t>(row)];
      EXPECT_TRUE(reads_halo(row)) << "rank " << rank << " row " << row;
    }
    for (std::size_t row = 0; row < seen.size(); ++row) {
      ASSERT_EQ(seen[row], 1) << "rank " << rank << " row " << row;
    }

    // The per-color splits partition the same two sets, color by color.
    ASSERT_EQ(s.colors_interior.num_groups(), s.colors.num_groups());
    ASSERT_EQ(s.colors_boundary.num_groups(), s.colors.num_groups());
    std::set<local_index_t> interior(s.interior_rows.begin(),
                                     s.interior_rows.end());
    std::set<local_index_t> boundary(s.boundary_rows.begin(),
                                     s.boundary_rows.end());
    std::set<local_index_t> color_interior;
    std::set<local_index_t> color_boundary;
    for (int c = 0; c < s.colors.num_groups(); ++c) {
      std::set<local_index_t> color_all(s.colors.group(c).begin(),
                                        s.colors.group(c).end());
      for (const local_index_t row : s.colors_interior.group(c)) {
        EXPECT_TRUE(color_all.count(row) == 1);
        color_interior.insert(row);
      }
      for (const local_index_t row : s.colors_boundary.group(c)) {
        EXPECT_TRUE(color_all.count(row) == 1);
        color_boundary.insert(row);
      }
    }
    EXPECT_EQ(color_interior, interior);
    EXPECT_EQ(color_boundary, boundary);
  }
}

// ---------------------------------------------------------------------------
// Kernel-level bit-identity: SpMV, fused SpMV-dot and GS with the overlap
// toggle on/off, across all four value formats and both index widths.

template <typename T>
void expect_overlap_bit_identity(IndexWidth idx) {
  constexpr int kRanks = 4;
  const ProcessGrid pgrid = ProcessGrid::create(kRanks);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;

  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<T> op_on(prob.a, &s, OptLevel::Optimized, /*tag=*/7,
                          /*value_scale=*/1.0, idx);
    DistOperator<T> op_off(prob.a, &s, OptLevel::Optimized, /*tag=*/507,
                           /*value_scale=*/1.0, idx);
    op_on.set_overlap(true);
    op_off.set_overlap(false);
    ASSERT_TRUE(op_on.overlap());
    ASSERT_FALSE(op_off.overlap());

    const auto n = static_cast<std::size_t>(op_on.vec_len());
    const auto owned = static_cast<std::size_t>(op_on.num_owned());
    AlignedVector<T> x_on(n, T{}), x_off(n, T{});
    for (std::size_t i = 0; i < owned; ++i) {
      const double v =
          0.01 * static_cast<double>(i) + static_cast<double>(comm.rank());
      x_on[i] = static_cast<T>(v);
      x_off[i] = static_cast<T>(v);
    }
    AlignedVector<T> y_on(n, T{}), y_off(n, T{});

    op_on.spmv(comm, std::span<T>(x_on.data(), n),
               std::span<T>(y_on.data(), n));
    op_off.spmv(comm, std::span<T>(x_off.data(), n),
                std::span<T>(y_off.data(), n));
    EXPECT_EQ(std::memcmp(y_on.data(), y_off.data(), n * sizeof(T)), 0);
    // The refreshed halo region of x must agree too.
    EXPECT_EQ(std::memcmp(x_on.data(), x_off.data(), n * sizeof(T)), 0);

    const double dot_on = op_on.spmv_dot(comm, std::span<T>(x_on.data(), n),
                                         std::span<T>(y_on.data(), n));
    const double dot_off = op_off.spmv_dot(comm, std::span<T>(x_off.data(), n),
                                           std::span<T>(y_off.data(), n));
    EXPECT_EQ(std::memcmp(&dot_on, &dot_off, sizeof(double)), 0);

    AlignedVector<T> r(owned, T{});
    for (std::size_t i = 0; i < owned; ++i) {
      r[i] = static_cast<T>(prob.b[i]);
    }
    AlignedVector<T> z_on(n, T{}), z_off(n, T{});
    op_on.gs_forward(comm, std::span<const T>(r.data(), owned),
                     std::span<T>(z_on.data(), n));
    op_off.gs_forward(comm, std::span<const T>(r.data(), owned),
                      std::span<T>(z_off.data(), n));
    EXPECT_EQ(std::memcmp(z_on.data(), z_off.data(), n * sizeof(T)), 0);
  });
}

TEST(OverlapBitIdentity, Fp64Idx32) {
  expect_overlap_bit_identity<double>(IndexWidth::Idx32);
}
TEST(OverlapBitIdentity, Fp64Idx16) {
  expect_overlap_bit_identity<double>(IndexWidth::Idx16);
}
TEST(OverlapBitIdentity, Fp32Idx32) {
  expect_overlap_bit_identity<float>(IndexWidth::Idx32);
}
TEST(OverlapBitIdentity, Fp32Idx16) {
  expect_overlap_bit_identity<float>(IndexWidth::Idx16);
}
TEST(OverlapBitIdentity, Bf16Idx32) {
  expect_overlap_bit_identity<bf16_t>(IndexWidth::Idx32);
}
TEST(OverlapBitIdentity, Bf16Idx16) {
  expect_overlap_bit_identity<bf16_t>(IndexWidth::Idx16);
}
TEST(OverlapBitIdentity, Fp16Idx32) {
  expect_overlap_bit_identity<fp16_t>(IndexWidth::Idx32);
}
TEST(OverlapBitIdentity, Fp16Idx16) {
  expect_overlap_bit_identity<fp16_t>(IndexWidth::Idx16);
}

// ---------------------------------------------------------------------------
// Solver-level equivalence: a full GMRES-IR solve under each configuration.

struct IrRun {
  std::vector<double> x;  ///< all ranks' owned entries, rank-concatenated
  int iterations = 0;
  bool converged = false;
};

IrRun run_gmres_ir(int ranks, const BenchParams& params, SolverOptions opts,
                   RecordingComm::Counts* counts = nullptr) {
  const ProcessGrid pgrid = ProcessGrid::create(ranks);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  pp.gamma = params.gamma;

  std::vector<std::vector<double>> xs(static_cast<std::size_t>(ranks));
  std::vector<SolveResult> results(static_cast<std::size_t>(ranks));
  std::vector<RecordingComm::Counts> rank_counts(
      static_cast<std::size_t>(ranks));
  opts.batched_reductions = params.batched_reduce;

  ThreadCommWorld::execute(ranks, [&](Comm& world_comm) {
    RecordingComm comm(world_comm);
    const auto slot = static_cast<std::size_t>(world_comm.rank());
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(pgrid, world_comm.rank(), pp),
                        params.mg_levels, params.coloring_seed);
    Multigrid<float> mg(h, params);
    DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                             /*tag=*/90, /*value_scale=*/1.0,
                             params.index_width);
    a_d.set_overlap(params.overlap);
    GmresIr<float> solver(&a_d, &mg.level_op(0), &mg, opts);
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    results[slot] = solver.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    xs[slot].assign(x.begin(), x.end());
    rank_counts[slot] = comm.counts();
  });

  IrRun run;
  run.iterations = results[0].iterations;
  run.converged = results[0].converged();
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].iterations,
              run.iterations);
    const auto& xr = xs[static_cast<std::size_t>(r)];
    run.x.insert(run.x.end(), xr.begin(), xr.end());
  }
  if (counts != nullptr) {
    *counts = rank_counts[0];
  }
  return run;
}

void expect_bitwise_equal(const IrRun& a, const IrRun& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.x.size(), b.x.size());
  EXPECT_EQ(std::memcmp(a.x.data(), b.x.data(), a.x.size() * sizeof(double)),
            0);
}

TEST(OverlapBitIdentity, GmresIrSolveMatchesAcrossToggle) {
  BenchParams params;
  SolverOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;

  params.overlap = true;
  const IrRun on = run_gmres_ir(2, params, opts);
  params.overlap = false;
  const IrRun off = run_gmres_ir(2, params, opts);
  EXPECT_TRUE(on.converged);
  expect_bitwise_equal(on, off);
}

TEST(BatchedReductions, GmresIrBitIdenticalWithFewerAllreduces) {
  BenchParams params;
  SolverOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;

  RecordingComm::Counts batched_counts;
  RecordingComm::Counts scalar_counts;
  params.batched_reduce = true;
  const IrRun batched = run_gmres_ir(2, params, opts, &batched_counts);
  params.batched_reduce = false;
  const IrRun scalar = run_gmres_ir(2, params, opts, &scalar_counts);

  EXPECT_TRUE(batched.converged);
  expect_bitwise_equal(batched, scalar);
  // Batching folds the finite-vote and the next cycle's residual norm into
  // one packed reduction per IR cycle: strictly fewer messages.
  EXPECT_LT(batched_counts.allreduces, scalar_counts.allreduces);
}

TEST(CommBackends, SelfMatchesSingleRankThreadWorld) {
  BenchParams params;
  SolverOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;

  std::vector<double> x_self;
  std::vector<double> x_thread;
  int iters_self = 0;
  int iters_thread = 0;

  const auto solve_on = [&](CommWorld& world, std::vector<double>& x_out,
                            int& iters_out) {
    world.execute([&](Comm& comm) {
      const ProblemHierarchy h = build_hierarchy(
          generate_problem(ProcessGrid(1, 1, 1), comm.rank(),
                           [] {
                             ProblemParams pp;
                             pp.nx = pp.ny = pp.nz = 8;
                             return pp;
                           }()),
          params.mg_levels, params.coloring_seed);
      Multigrid<float> mg(h, params);
      DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(),
                               params.opt, /*tag=*/90);
      GmresIr<float> solver(&a_d, &mg.level_op(0), &mg, opts);
      AlignedVector<double> x(h.levels[0].b.size(), 0.0);
      const SolveResult res = solver.solve(
          comm,
          std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
          std::span<double>(x.data(), x.size()));
      x_out.assign(x.begin(), x.end());
      iters_out = res.iterations;
    });
  };

  const std::unique_ptr<CommWorld> self =
      make_comm_world(CommBackend::Self, 1);
  EXPECT_EQ(self->backend(), CommBackend::Self);
  EXPECT_EQ(self->size(), 1);
  solve_on(*self, x_self, iters_self);

  const std::unique_ptr<CommWorld> thread =
      make_comm_world(CommBackend::Thread, 1);
  EXPECT_EQ(thread->backend(), CommBackend::Thread);
  solve_on(*thread, x_thread, iters_thread);

  EXPECT_EQ(iters_self, iters_thread);
  ASSERT_EQ(x_self.size(), x_thread.size());
  EXPECT_EQ(std::memcmp(x_self.data(), x_thread.data(),
                        x_self.size() * sizeof(double)),
            0);
}

TEST(CommBackends, MakeWorldRejectsBadConfigurations) {
  // Self is strictly one rank.
  EXPECT_THROW(make_comm_world(CommBackend::Self, 2), Error);
  // Without HPGMX_WITH_MPI (or outside mpirun at this size) the Mpi backend
  // must fail loudly, not fall back silently.
  if (!mpi_compiled()) {
    EXPECT_THROW(make_comm_world(CommBackend::Mpi, 4), Error);
  }
}

// ---------------------------------------------------------------------------
// Environment switches.

class EnvGuard {
 public:
  explicit EnvGuard(std::vector<const char*> names)
      : names_(std::move(names)) {}
  ~EnvGuard() {
    for (const char* name : names_) {
      ::unsetenv(name);
    }
  }

 private:
  std::vector<const char*> names_;
};

TEST(EnvParams, ParsesCommOverlapAndBatchSwitches) {
  const EnvGuard guard({"HPGMX_COMM", "HPGMX_OVERLAP", "HPGMX_BATCH_REDUCE"});

  {
    const BenchParams p = BenchParams::from_env();
    EXPECT_EQ(p.comm_backend, CommBackend::Thread);
    EXPECT_TRUE(p.overlap);
    EXPECT_TRUE(p.batched_reduce);
  }

  ::setenv("HPGMX_COMM", "self", 1);
  ::setenv("HPGMX_OVERLAP", "0", 1);
  ::setenv("HPGMX_BATCH_REDUCE", "0", 1);
  {
    const BenchParams p = BenchParams::from_env();
    EXPECT_EQ(p.comm_backend, CommBackend::Self);
    EXPECT_FALSE(p.overlap);
    EXPECT_FALSE(p.batched_reduce);
  }

  ::setenv("HPGMX_COMM", "mpi", 1);
  ::setenv("HPGMX_OVERLAP", "1", 1);
  ::setenv("HPGMX_BATCH_REDUCE", "1", 1);
  {
    const BenchParams p = BenchParams::from_env();
    EXPECT_EQ(p.comm_backend, CommBackend::Mpi);
    EXPECT_TRUE(p.overlap);
    EXPECT_TRUE(p.batched_reduce);
  }

  ::setenv("HPGMX_COMM", "carrier-pigeon", 1);
  EXPECT_THROW(BenchParams::from_env(), Error);
}

}  // namespace
}  // namespace hpgmx
