// Coloring and permutation tests: validity on stencil and random graphs,
// the paper's 8-color claim for the 27-point stencil, JPL determinism,
// permutation round trips, physically reordered matrices.
#include <gtest/gtest.h>

#include <random>

#include "coloring/coloring.hpp"
#include "coloring/permutation.hpp"
#include "grid/problem.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"

namespace hpgmx {
namespace {

Problem stencil_problem(local_index_t n) {
  ProblemParams p;
  p.nx = p.ny = p.nz = n;
  return generate_problem(ProcessGrid(1, 1, 1), 0, p);
}

/// Random symmetric sparse matrix with unit diagonal for property tests.
CsrMatrix<double> random_graph(local_index_t n, double density,
                               unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0, 1);
  std::vector<std::vector<local_index_t>> adj(static_cast<std::size_t>(n));
  for (local_index_t i = 0; i < n; ++i) {
    for (local_index_t j = i + 1; j < n; ++j) {
      if (dist(rng) < density) {
        adj[static_cast<std::size_t>(i)].push_back(j);
        adj[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  CsrBuilder<double> b(n, n, n);
  for (local_index_t i = 0; i < n; ++i) {
    b.push(i, 1.0);
    for (const local_index_t j : adj[static_cast<std::size_t>(i)]) {
      b.push(j, -0.01);
    }
    b.finish_row();
  }
  return b.build();
}

TEST(GreedyColoring, StencilUsesExactly8Colors) {
  // The 3D analog of paper Fig. 2: a 27-point stencil needs 8 independent
  // sets under greedy/lexicographic coloring (2x2x2 pattern).
  const Problem prob = stencil_problem(6);
  const auto colors = greedy_color(prob.a);
  EXPECT_TRUE(
      coloring_is_valid(prob.a.num_rows, prob.a.row_ptr, prob.a.col_idx, colors));
  EXPECT_EQ(num_colors(colors), 8);
}

TEST(JplColoring, ValidAndBoundedOnStencil) {
  const Problem prob = stencil_problem(6);
  const auto colors = jpl_color(prob.a, 42, JplPolicy::MinAvailable);
  EXPECT_TRUE(
      coloring_is_valid(prob.a.num_rows, prob.a.row_ptr, prob.a.col_idx, colors));
  // MinAvailable stays close to the chromatic bound; the 27-pt stencil has
  // max degree 26 but structure keeps the count far below degree+1.
  EXPECT_LE(num_colors(colors), 16);
  EXPECT_GE(num_colors(colors), 8);
}

TEST(JplColoring, RoundPolicyIsValidToo) {
  const Problem prob = stencil_problem(4);
  const auto colors = jpl_color(prob.a, 42, JplPolicy::RoundAsColor);
  EXPECT_TRUE(
      coloring_is_valid(prob.a.num_rows, prob.a.row_ptr, prob.a.col_idx, colors));
  // Round-as-color uses at least as many colors as min-available.
  const auto colors_min = jpl_color(prob.a, 42, JplPolicy::MinAvailable);
  EXPECT_GE(num_colors(colors), num_colors(colors_min));
}

TEST(JplColoring, DeterministicForFixedSeed) {
  const Problem prob = stencil_problem(4);
  const auto a = jpl_color(prob.a, 7);
  const auto b = jpl_color(prob.a, 7);
  EXPECT_EQ(a, b);
}

TEST(JplColoring, SeedChangesSelectionOrder) {
  const Problem prob = stencil_problem(4);
  const auto a = jpl_color(prob.a, 7);
  const auto b = jpl_color(prob.a, 8);
  EXPECT_NE(a, b);  // overwhelmingly likely for 64 vertices
}

class RandomGraphs : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(RandomGraphs, BothAlgorithmsProduceValidColorings) {
  const auto [n, density] = GetParam();
  const CsrMatrix<double> g =
      random_graph(static_cast<local_index_t>(n), density, 11);
  const auto greedy = greedy_color(g);
  const auto jpl = jpl_color(g, 3, JplPolicy::MinAvailable);
  EXPECT_TRUE(coloring_is_valid(g.num_rows, g.row_ptr, g.col_idx, greedy));
  EXPECT_TRUE(coloring_is_valid(g.num_rows, g.row_ptr, g.col_idx, jpl));
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, RandomGraphs,
    ::testing::Combine(::testing::Values(20, 100, 300),
                       ::testing::Values(0.02, 0.1, 0.4)));

TEST(ColorPartition, CoversEveryRowOnce) {
  const Problem prob = stencil_problem(4);
  const auto colors = jpl_color(prob.a, 42);
  const RowPartition part = color_partition(colors);
  EXPECT_EQ(part.num_rows(), prob.a.num_rows);
  std::vector<char> seen(static_cast<std::size_t>(prob.a.num_rows), 0);
  for (int c = 0; c < part.num_groups(); ++c) {
    for (const local_index_t r : part.group(c)) {
      EXPECT_EQ(colors[static_cast<std::size_t>(r)], c);
      EXPECT_EQ(seen[static_cast<std::size_t>(r)], 0);
      seen[static_cast<std::size_t>(r)] = 1;
    }
  }
}

TEST(Permutation, ColorSortIsValidBijection) {
  const Problem prob = stencil_problem(4);
  const auto colors = greedy_color(prob.a);
  const Permutation perm = color_sort_permutation(colors);
  EXPECT_TRUE(permutation_is_valid(perm));
  // Rows must appear in nondecreasing color order.
  int prev = -1;
  for (local_index_t i = 0; i < perm.size(); ++i) {
    const int c = colors[static_cast<std::size_t>(
        perm.perm[static_cast<std::size_t>(i)])];
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Permutation, VectorRoundTrip) {
  const std::vector<int> colors{2, 0, 1, 0, 2, 1};
  const Permutation perm = color_sort_permutation(colors);
  AlignedVector<double> x{10, 11, 12, 13, 14, 15};
  AlignedVector<double> px(6), back(6);
  permute_vector(perm, std::span<const double>(x.data(), x.size()),
                 std::span<double>(px.data(), px.size()));
  unpermute_vector(perm, std::span<const double>(px.data(), px.size()),
                   std::span<double>(back.data(), back.size()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], x[i]);
  }
}

TEST(Permutation, SymmetricPermutePreservesSpmv) {
  // (P A Pᵀ)(P x) = P (A x): physical reordering must not change results.
  const Problem prob = stencil_problem(4);
  const auto colors = greedy_color(prob.a);
  const Permutation perm = color_sort_permutation(colors);
  const CsrMatrix<double> pa = permute_symmetric(prob.a, perm);

  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1, 1);
  AlignedVector<double> x(static_cast<std::size_t>(prob.a.num_cols));
  for (auto& v : x) {
    v = dist(rng);
  }
  AlignedVector<double> y(static_cast<std::size_t>(prob.a.num_rows), 0);
  csr_spmv(prob.a, std::span<const double>(x.data(), x.size()),
           std::span<double>(y.data(), y.size()));

  AlignedVector<double> px(x.size()), py(y.size()), y_from_perm(y.size());
  permute_vector(perm,
                 std::span<const double>(x.data(),
                                         static_cast<std::size_t>(prob.a.num_rows)),
                 std::span<double>(px.data(),
                                   static_cast<std::size_t>(prob.a.num_rows)));
  csr_spmv(pa, std::span<const double>(px.data(), px.size()),
           std::span<double>(py.data(), py.size()));
  unpermute_vector(
      perm,
      std::span<const double>(py.data(), static_cast<std::size_t>(prob.a.num_rows)),
      std::span<double>(y_from_perm.data(),
                        static_cast<std::size_t>(prob.a.num_rows)));
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    ASSERT_NEAR(y_from_perm[i], y[i], 1e-12);
  }
}

TEST(Permutation, PhysicalReorderingMakesColorsContiguous) {
  // After P A Pᵀ with the color-sort permutation, the color partition of the
  // permuted matrix is [0..c0), [c0..c1) ... — the GPU-friendly layout of
  // §3.2.1. A GS sweep on contiguous ranges must equal the logical sweep.
  const Problem prob = stencil_problem(4);
  const auto colors = greedy_color(prob.a);
  const Permutation perm = color_sort_permutation(colors);
  const CsrMatrix<double> pa = permute_symmetric(prob.a, perm);

  // New color of new row i = old color of perm[i]; groups are contiguous.
  std::vector<int> new_colors(colors.size());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    new_colors[i] =
        colors[static_cast<std::size_t>(perm.perm[i])];
  }
  EXPECT_TRUE(
      coloring_is_valid(pa.num_rows, pa.row_ptr, pa.col_idx, new_colors));
  for (std::size_t i = 1; i < new_colors.size(); ++i) {
    EXPECT_GE(new_colors[i], new_colors[i - 1]);
  }

  // GS on the permuted system ≡ GS on the original in color order.
  const RowPartition part = color_partition(colors);
  AlignedVector<double> b(static_cast<std::size_t>(prob.a.num_rows), 1.0);
  AlignedVector<double> z(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                   std::span<double>(z.data(), z.size()));

  const RowPartition new_part = color_partition(new_colors);
  AlignedVector<double> pb(b.size()), pz(static_cast<std::size_t>(pa.num_cols), 0.0);
  permute_vector(perm, std::span<const double>(b.data(), b.size()),
                 std::span<double>(pb.data(), pb.size()));
  gs_sweep_colored(pa, new_part, std::span<const double>(pb.data(), pb.size()),
                   std::span<double>(pz.data(), pz.size()));
  AlignedVector<double> z_back(b.size());
  unpermute_vector(
      perm, std::span<const double>(pz.data(), b.size()),
      std::span<double>(z_back.data(), z_back.size()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_NEAR(z_back[i], z[i], 1e-13);
  }
}

TEST(Permutation, HaloSendListRemapped) {
  HaloPattern pat;
  pat.n_owned = 4;
  pat.n_halo = 1;
  HaloNeighbor nb;
  nb.rank = 1;
  nb.send_indices = {0, 3};
  nb.recv_offset = 0;
  nb.recv_count = 1;
  pat.neighbors.push_back(std::move(nb));

  const std::vector<int> colors{1, 0, 0, 1};
  const Permutation perm = color_sort_permutation(colors);
  const HaloPattern out = permute_halo_pattern(pat, perm);
  EXPECT_EQ(out.neighbors[0].send_indices[0],
            perm.iperm[0]);
  EXPECT_EQ(out.neighbors[0].send_indices[1],
            perm.iperm[3]);
}

TEST(Permutation, C2fComposition) {
  // fine ids 0..7, coarse ids 0..1 injecting from fine {0, 4}.
  const AlignedVector<local_index_t> c2f{0, 4};
  const std::vector<int> coarse_colors{1, 0};
  const std::vector<int> fine_colors{1, 0, 0, 0, 0, 1, 1, 1};
  const Permutation cp = color_sort_permutation(coarse_colors);
  const Permutation fp = color_sort_permutation(fine_colors);
  const auto out = permute_c2f(
      std::span<const local_index_t>(c2f.data(), c2f.size()), cp, fp);
  // New coarse 0 is old coarse 1 (color 0) → old fine 4 → new fine id.
  EXPECT_EQ(out[0], fp.iperm[4]);
  EXPECT_EQ(out[1], fp.iperm[0]);
}

}  // namespace
}  // namespace hpgmx
