// Resilience tests: the SolveStatus taxonomy, rank-consistent deadline /
// cancellation trips (base/cancel.hpp), the deterministic chaos layer
// (comm/chaos.hpp), and the service-level failure handling — structured
// zero-RHS rejection, bounded-wait try_submit, retry-with-promotion, and
// shutdown under concurrent load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "base/cancel.hpp"
#include "base/error.hpp"
#include "base/solve_status.hpp"
#include "comm/chaos.hpp"
#include "comm/comm.hpp"
#include "comm/thread_comm.hpp"
#include "core/gmres.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "grid/process_grid.hpp"
#include "service/solver_service.hpp"

namespace hpgmx {
namespace {

// ------------------------------------------------------------------ taxonomy

TEST(SolveStatusTaxonomy, NamesAreStable) {
  EXPECT_EQ(solve_status_name(SolveStatus::Converged), "converged");
  EXPECT_EQ(solve_status_name(SolveStatus::Stagnated), "stagnated");
  EXPECT_EQ(solve_status_name(SolveStatus::NonFinite), "non_finite");
  EXPECT_EQ(solve_status_name(SolveStatus::DeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(solve_status_name(SolveStatus::Cancelled), "cancelled");
  EXPECT_EQ(solve_status_name(SolveStatus::Rejected), "rejected");
}

TEST(SolveStatusTaxonomy, AggregateStatusIsWorstOfBatch) {
  EXPECT_EQ(aggregate_status({}), SolveStatus::Rejected);
  auto with = [](std::vector<SolveStatus> statuses) {
    std::vector<SolveResult> rhs(statuses.size());
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      rhs[i].status = statuses[i];
    }
    return aggregate_status(rhs);
  };
  EXPECT_EQ(with({SolveStatus::Converged, SolveStatus::Converged}),
            SolveStatus::Converged);
  EXPECT_EQ(with({SolveStatus::Converged, SolveStatus::Stagnated}),
            SolveStatus::Stagnated);
  EXPECT_EQ(with({SolveStatus::NonFinite, SolveStatus::Stagnated}),
            SolveStatus::NonFinite);
  EXPECT_EQ(with({SolveStatus::DeadlineExceeded, SolveStatus::NonFinite}),
            SolveStatus::DeadlineExceeded);
  EXPECT_EQ(with({SolveStatus::Converged, SolveStatus::Cancelled}),
            SolveStatus::Cancelled);
}

// -------------------------------------------------------- deadline and token

TEST(Deadline, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(),
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(Deadline::never().finite());
}

TEST(Deadline, AfterNonPositiveIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(0.0).expired());
  EXPECT_TRUE(Deadline::after(-1.0).expired());
  EXPECT_LE(Deadline::after(-1.0).remaining_seconds(), 0.0);
}

TEST(Deadline, AfterFutureIsFiniteAndPending) {
  const Deadline d = Deadline::after(3600.0);
  EXPECT_TRUE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(CancelToken, CancellationIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

// ---------------------------------------------------------- trip lane codec

TEST(SolveControl, DefaultIsInert) {
  const SolveControl ctl;
  EXPECT_FALSE(ctl.active());
  EXPECT_EQ(ctl.trip_lane(4), 0.0);
}

TEST(SolveControl, LaneEncodesCancelAboveDeadline) {
  CancelToken token;
  SolveControl ctl;
  ctl.cancel = &token;
  EXPECT_TRUE(ctl.active());
  EXPECT_EQ(ctl.trip_lane(4), 0.0);

  ctl.deadline = Deadline::after(-1.0);
  EXPECT_EQ(ctl.trip_lane(4), 1.0);  // deadline expired

  token.cancel();
  EXPECT_EQ(ctl.trip_lane(4), 5.0);  // cancel outranks the deadline
}

TEST(SolveControl, DecodeIsUnambiguousForEveryMixedSum) {
  // P ranks, d of them seeing an expired deadline and c seeing the token:
  // the reduced sum d·1 + c·(P+1) must decode to the worst cause present.
  for (const int p : {1, 2, 4, 8}) {
    for (int d = 0; d <= p; ++d) {
      for (int c = 0; c + d <= p; ++c) {
        const double sum = d * 1.0 + c * (p + 1.0);
        const TripCause cause = SolveControl::decode_trip(sum, p);
        if (c > 0) {
          EXPECT_EQ(cause, TripCause::Cancelled) << p << " " << d << " " << c;
        } else if (d > 0) {
          EXPECT_EQ(cause, TripCause::DeadlineExpired) << p << " " << d;
        } else {
          EXPECT_EQ(cause, TripCause::None) << p;
        }
      }
    }
  }
}

TEST(SolveControl, TripStatusMapsCauses) {
  EXPECT_EQ(trip_status(TripCause::DeadlineExpired),
            SolveStatus::DeadlineExceeded);
  EXPECT_EQ(trip_status(TripCause::Cancelled), SolveStatus::Cancelled);
}

// ------------------------------------------------------------- chaos config

TEST(ChaosConfig, DisabledByDefaultAndForOffSpec) {
  EXPECT_FALSE(ChaosConfig{}.enabled());
  EXPECT_FALSE(ChaosConfig::parse("").enabled());
  EXPECT_FALSE(ChaosConfig::parse("off").enabled());
  EXPECT_EQ(ChaosConfig{}.to_string(), "off");
}

TEST(ChaosConfig, ParsesEveryKey) {
  const ChaosConfig cfg = ChaosConfig::parse(
      "delay:0.25,reorder:0.5,slow_rank:1,delay_us:7,slow_us:9");
  EXPECT_TRUE(cfg.enabled());
  EXPECT_DOUBLE_EQ(cfg.delay_prob, 0.25);
  EXPECT_DOUBLE_EQ(cfg.reorder_prob, 0.5);
  EXPECT_EQ(cfg.slow_rank, 1);
  EXPECT_EQ(cfg.delay_us, 7);
  EXPECT_EQ(cfg.slow_us, 9);
}

TEST(ChaosConfig, ToStringRoundTripsThroughParse) {
  ChaosConfig cfg;
  cfg.delay_prob = 0.125;
  cfg.reorder_prob = 0.75;
  cfg.slow_rank = 2;
  cfg.delay_us = 13;
  cfg.slow_us = 17;
  const ChaosConfig back = ChaosConfig::parse(cfg.to_string());
  EXPECT_DOUBLE_EQ(back.delay_prob, cfg.delay_prob);
  EXPECT_DOUBLE_EQ(back.reorder_prob, cfg.reorder_prob);
  EXPECT_EQ(back.slow_rank, cfg.slow_rank);
  EXPECT_EQ(back.delay_us, cfg.delay_us);
  EXPECT_EQ(back.slow_us, cfg.slow_us);
}

TEST(ChaosConfig, RejectsMalformedSpecsWithStructuredErrors) {
  EXPECT_THROW((void)ChaosConfig::parse("delay"), Error);           // no colon
  EXPECT_THROW((void)ChaosConfig::parse("delay:abc"), Error);       // bad value
  EXPECT_THROW((void)ChaosConfig::parse("delay:1.5"), Error);       // p > 1
  EXPECT_THROW((void)ChaosConfig::parse("reorder:-0.1"), Error);    // p < 0
  EXPECT_THROW((void)ChaosConfig::parse("delay_us:-5"), Error);     // negative
  EXPECT_THROW((void)ChaosConfig::parse("frobnicate:1"), Error);    // unknown
}

// ------------------------------------------------- solver-level trip checks

SolverOptions solver_options() {
  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;
  return opts;
}

/// Run double GMRES on the 16³ global Poisson problem over `p` thread
/// ranks; returns the per-rank results and concatenated per-rank solutions.
std::vector<SolveResult> run_gmres(int p, const SolverOptions& opts,
                                   std::vector<std::vector<double>>* sols,
                                   const ChaosConfig* chaos = nullptr) {
  const ProcessGrid pgrid = ProcessGrid::create(p);
  ProblemParams pp;
  pp.nx = static_cast<local_index_t>(16 / pgrid.px());
  pp.ny = static_cast<local_index_t>(16 / pgrid.py());
  pp.nz = static_cast<local_index_t>(16 / pgrid.pz());
  BenchParams params;
  params.mg_levels = 2;
  std::vector<SolveResult> results(static_cast<std::size_t>(p));
  if (sols != nullptr) {
    sols->assign(static_cast<std::size_t>(p), {});
  }
  ThreadCommWorld::execute(p, [&](Comm& world_comm) {
    std::unique_ptr<ChaosComm> chaotic;
    if (chaos != nullptr && chaos->enabled()) {
      chaotic = std::make_unique<ChaosComm>(world_comm, *chaos);
    }
    Comm& comm = chaotic != nullptr ? *chaotic : world_comm;
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                        params.mg_levels, params.coloring_seed);
    Multigrid<double> mg(h, params);
    Gmres<double> solver(&mg.level_op(0), &mg, opts);
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    results[static_cast<std::size_t>(comm.rank())] = solver.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    if (sols != nullptr) {
      (*sols)[static_cast<std::size_t>(comm.rank())]
          .assign(x.begin(), x.end());
    }
  });
  return results;
}

TEST(SolverTrips, PreExpiredDeadlineExitsAtIterationZeroOnSelf) {
  SolverOptions opts = solver_options();
  opts.control.deadline = Deadline::after(-1.0);
  std::vector<std::vector<double>> sols;
  const std::vector<SolveResult> res = run_gmres(1, opts, &sols);
  EXPECT_EQ(res[0].status, SolveStatus::DeadlineExceeded);
  EXPECT_EQ(res[0].iterations, 0);
  EXPECT_DOUBLE_EQ(res[0].relative_residual, 1.0);  // x0 = 0 at the trip
  for (const double v : sols[0]) {
    EXPECT_EQ(v, 0.0);  // iterate untouched by a tripped exit
  }
}

TEST(SolverTrips, PreExpiredDeadlineIsRankConsistentOnFourRanks) {
  SolverOptions opts = solver_options();
  opts.control.deadline = Deadline::after(-1.0);
  const std::vector<SolveResult> res = run_gmres(4, opts, nullptr);
  for (const SolveResult& r : res) {
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.iterations, res[0].iterations);
    EXPECT_EQ(r.iterations, 0);
  }
}

TEST(SolverTrips, MidSolveDeadlineExitsTheSameIterationOnEveryRank) {
  // An unreachable tolerance forces the solver to run until the deadline
  // trips mid-solve; the trip decision is decoded from the shared reduced
  // lane, so all four ranks must report the same iteration count even
  // though their clocks saw the expiry at different instants.
  SolverOptions opts = solver_options();
  opts.tol = 0.0;
  opts.max_iters = 1000000;
  opts.control.deadline = Deadline::after(0.02);
  const std::vector<SolveResult> res = run_gmres(4, opts, nullptr);
  for (const SolveResult& r : res) {
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.iterations, res[0].iterations);
  }
}

TEST(SolverTrips, PreCancelledTokenWinsOverExpiredDeadline) {
  CancelToken token;
  token.cancel();
  SolverOptions opts = solver_options();
  opts.control.cancel = &token;
  opts.control.deadline = Deadline::after(-1.0);
  const std::vector<SolveResult> res = run_gmres(2, opts, nullptr);
  for (const SolveResult& r : res) {
    EXPECT_EQ(r.status, SolveStatus::Cancelled);
    EXPECT_EQ(r.iterations, 0);
  }
}

TEST(SolverTrips, MidSolveCancellationStopsEveryRankTogether) {
  auto token = std::make_shared<CancelToken>();
  SolverOptions opts = solver_options();
  opts.tol = 0.0;
  opts.max_iters = 1000000;
  opts.control.cancel = token.get();
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token->cancel();
  });
  const std::vector<SolveResult> res = run_gmres(2, opts, nullptr);
  canceller.join();
  for (const SolveResult& r : res) {
    EXPECT_EQ(r.status, SolveStatus::Cancelled);
    EXPECT_EQ(r.iterations, res[0].iterations);
  }
}

TEST(SolverTrips, ActiveButUntrippedControlIsBitIdenticalToControlFree) {
  // A finite-but-far deadline activates the packed trip-lane reduction;
  // entry 0 of that message must reproduce the stand-alone norm bit for
  // bit, so the whole solve matches the control-free run exactly.
  const SolverOptions plain = solver_options();
  SolverOptions active = solver_options();
  active.control.deadline = Deadline::after(1e6);
  ASSERT_TRUE(active.control.active());
  for (const int p : {1, 4}) {
    std::vector<std::vector<double>> sols_plain;
    std::vector<std::vector<double>> sols_active;
    const std::vector<SolveResult> a = run_gmres(p, plain, &sols_plain);
    const std::vector<SolveResult> b = run_gmres(p, active, &sols_active);
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      EXPECT_EQ(a[i].status, SolveStatus::Converged);
      EXPECT_EQ(b[i].status, SolveStatus::Converged);
      EXPECT_EQ(a[i].iterations, b[i].iterations);
      EXPECT_EQ(a[i].relative_residual, b[i].relative_residual);
      EXPECT_EQ(sols_plain[i], sols_active[i]);
    }
  }
}

// ------------------------------------------------------------ chaos harness

TEST(ChaosHarness, FaultInjectionNeverChangesSolverBits) {
  // Chaos perturbs timing and delivery order only; the solve under any
  // seed must be bitwise identical to the fault-free run.
  const SolverOptions opts = solver_options();
  std::vector<std::vector<double>> sols_ref;
  const std::vector<SolveResult> ref = run_gmres(4, opts, &sols_ref);
  ChaosConfig chaos = ChaosConfig::parse(
      "delay:0.5,reorder:0.5,slow_rank:1,delay_us:1,slow_us:1");
  for (const std::uint64_t seed : {7ull, 20260808ull}) {
    chaos.seed = seed;
    std::vector<std::vector<double>> sols;
    const std::vector<SolveResult> res = run_gmres(4, opts, &sols, &chaos);
    for (std::size_t r = 0; r < res.size(); ++r) {
      EXPECT_EQ(res[r].status, SolveStatus::Converged);
      EXPECT_EQ(res[r].iterations, ref[r].iterations) << "seed " << seed;
      EXPECT_EQ(res[r].relative_residual, ref[r].relative_residual);
      EXPECT_EQ(sols[r], sols_ref[r]) << "seed " << seed << " rank " << r;
    }
  }
}

TEST(ChaosHarness, DrawSequenceIsDeterministicPerSeed) {
  ChaosConfig chaos = ChaosConfig::parse("delay:0.5,reorder:0.5,delay_us:1");
  auto run = [&chaos] {
    SelfComm self;
    ChaosComm comm(self, chaos);
    std::vector<double> payload{1.0, 2.0};
    std::vector<double> out(2, 0.0);
    for (int i = 0; i < 8; ++i) {
      comm.send_bytes(0, i, payload.data(), payload.size() * sizeof(double));
      comm.recv_bytes(0, i, out.data(), out.size() * sizeof(double));
    }
    return comm.draws();
  };
  const std::uint64_t first = run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(run(), first);  // same seed, same operations, same draws
  chaos.seed ^= 0xBEEF;
  const std::uint64_t reseeded = run();
  EXPECT_EQ(run(), reseeded);
}

// ------------------------------------------------------------- service layer

ServiceConfig svc_config(int workers, std::size_t queue, std::size_t cache) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue;
  cfg.cache_entries = cache;
  // Ambient HPGMX_CHAOS runs the whole service suite under fault injection
  // (the sanitizer lanes do this); every assertion below must hold anyway,
  // because chaos perturbs timing and ordering, never values.
  cfg.chaos = ChaosConfig::from_env();
  return cfg;
}

SolveRequest quick_request() {
  SolveRequest req;
  req.desc.nx = req.desc.ny = req.desc.nz = 8;
  req.desc.mg_levels = 3;
  req.desc.tol = 1e-9;
  req.desc.max_iters = 300;
  return req;
}

/// The retry exhibit: a checkerboard-jump operator whose coefficient range
/// overwhelms fp16 even through the ScaleGuard (the guard exhausts its
/// backoff budget → non_finite) but sits comfortably inside bf16's range.
SolveRequest fragile_fp16_request() {
  SolveRequest req = quick_request();
  req.desc.scenario.kind = Scenario::Jump;
  req.desc.scenario.jump_period = 4;
  req.desc.scenario.jump_ratio = 1e6;
  req.desc.solver = SolverKind::GmresIr;
  req.desc.inner_precision = Precision::Fp16;
  return req;
}

TEST(ServiceResilience, ZeroRhsIsRejectedNotSolved) {
  SolverService svc(svc_config(1, 4, 4));
  SolveRequest req = quick_request();
  req.num_rhs = 0;

  const ServiceResult direct = svc.solve_now(req);
  EXPECT_EQ(direct.status, SolveStatus::Rejected);
  EXPECT_FALSE(direct.all_converged());
  EXPECT_TRUE(direct.rhs.empty());
  EXPECT_TRUE(direct.attempts.empty());
  EXPECT_EQ(direct.descriptor_hash, req.desc.hash());

  std::future<ServiceResult> queued = svc.submit(req);
  EXPECT_EQ(queued.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // resolved without touching a worker
  EXPECT_EQ(queued.get().status, SolveStatus::Rejected);

  auto bounded = svc.try_submit(req, std::chrono::milliseconds(1));
  ASSERT_TRUE(bounded.has_value());
  EXPECT_EQ(bounded->get().status, SolveStatus::Rejected);
}

TEST(ServiceResilience, RetryPromotesThroughTheLadder) {
  SolverService svc(svc_config(1, 4, 4));
  const ServiceResult res = svc.solve_now(fragile_fp16_request());
  EXPECT_EQ(res.status, SolveStatus::Converged);
  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.attempts[0].precision, Precision::Fp16);
  EXPECT_EQ(res.attempts[0].status, SolveStatus::NonFinite);
  EXPECT_EQ(res.attempts[1].precision, Precision::Bf16);
  EXPECT_EQ(res.attempts[1].status, SolveStatus::Converged);
  EXPECT_LT(res.attempts[1].relative_residual, 1e-9);
  // The served attempt's realized per-cycle formats are all promoted.
  ASSERT_FALSE(res.realized_precisions.empty());
  for (const Precision p : res.realized_precisions) {
    EXPECT_EQ(p, Precision::Bf16);
  }
}

TEST(ServiceResilience, DisabledRetrySurfacesTheRawFailure) {
  ServiceConfig cfg = svc_config(1, 4, 4);
  cfg.retry.enabled = false;
  SolverService svc(cfg);
  const ServiceResult res = svc.solve_now(fragile_fp16_request());
  EXPECT_EQ(res.status, SolveStatus::NonFinite);
  ASSERT_EQ(res.attempts.size(), 1u);
  EXPECT_EQ(res.attempts[0].precision, Precision::Fp16);
  EXPECT_EQ(res.attempts[0].status, SolveStatus::NonFinite);
  EXPECT_GT(res.attempts[0].relative_residual, 0.0);  // last reduced value
}

TEST(ServiceResilience, DeadlineTripIsNeverRetried) {
  SolverService svc(svc_config(1, 4, 4));
  SolveRequest req = fragile_fp16_request();
  req.deadline = Deadline::after(-1.0);
  const ServiceResult res = svc.solve_now(req);
  EXPECT_EQ(res.status, SolveStatus::DeadlineExceeded);
  ASSERT_EQ(res.attempts.size(), 1u);  // no promotion after a trip
  EXPECT_EQ(res.attempts[0].status, SolveStatus::DeadlineExceeded);
  EXPECT_EQ(res.attempts[0].iterations, 0);
}

TEST(ServiceResilience, CancelledRequestReportsCancelled) {
  SolverService svc(svc_config(1, 4, 4));
  SolveRequest req = quick_request();
  req.cancel = std::make_shared<CancelToken>();
  req.cancel->cancel();
  const ServiceResult res = svc.solve_now(req);
  EXPECT_EQ(res.status, SolveStatus::Cancelled);
  ASSERT_EQ(res.attempts.size(), 1u);
  EXPECT_EQ(res.attempts[0].iterations, 0);
}

TEST(ServiceResilience, DeadlineIsRankConsistentAcrossServiceRanks) {
  SolverService svc(svc_config(1, 4, 4));
  SolveRequest req = quick_request();
  req.desc.ranks = 4;
  req.desc.tol = 1e-30;  // unreachable: runs until the deadline trips
  req.desc.max_iters = 1000000;
  req.deadline = Deadline::after(0.02);
  const ServiceResult res = svc.solve_now(req);
  EXPECT_EQ(res.status, SolveStatus::DeadlineExceeded);
  ASSERT_EQ(res.rhs.size(), 1u);
  EXPECT_EQ(res.rhs[0].status, SolveStatus::DeadlineExceeded);
}

TEST(ServiceResilience, ChaosInjectionKeepsServiceResultsBitIdentical) {
  SolveRequest req = quick_request();
  req.desc.ranks = 2;
  req.desc.solver = SolverKind::GmresIr;
  req.desc.inner_precision = Precision::Bf16;

  SolverService plain(svc_config(1, 4, 4));
  const ServiceResult ref = plain.solve_now(req);
  ASSERT_EQ(ref.status, SolveStatus::Converged);

  ServiceConfig cfg = svc_config(1, 4, 4);
  cfg.chaos = ChaosConfig::parse(
      "delay:0.5,reorder:0.5,slow_rank:0,delay_us:1,slow_us:1");
  for (const std::uint64_t seed : {1ull, 99ull}) {
    cfg.chaos.seed = seed;
    SolverService chaotic(cfg);
    const ServiceResult res = chaotic.solve_now(req);
    EXPECT_EQ(res.status, SolveStatus::Converged);
    ASSERT_EQ(res.rhs.size(), ref.rhs.size());
    for (std::size_t j = 0; j < ref.rhs.size(); ++j) {
      EXPECT_EQ(res.rhs[j].iterations, ref.rhs[j].iterations);
      EXPECT_EQ(res.rhs[j].relative_residual, ref.rhs[j].relative_residual);
    }
    EXPECT_EQ(res.realized_precisions, ref.realized_precisions);
  }
}

TEST(ServiceResilience, TrySubmitTimesOutUnderBackpressure) {
  // One worker pinned on a cancellable long solve + a queue of one: the
  // bounded-wait submit must give up instead of blocking forever.
  SolverService svc(svc_config(1, 1, 4));
  auto token = std::make_shared<CancelToken>();
  SolveRequest slow = quick_request();
  slow.desc.tol = 1e-30;
  slow.desc.max_iters = 1000000;
  slow.cancel = token;

  std::future<ServiceResult> running = svc.submit(slow);
  // Wait for the worker to dequeue it so the next submit owns the queue.
  for (int i = 0; i < 5000 && svc.queued() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(svc.queued(), 0u);
  std::future<ServiceResult> waiting = svc.submit(slow);  // fills the queue

  auto overflow = svc.try_submit(quick_request(), std::chrono::milliseconds(50));
  EXPECT_FALSE(overflow.has_value());  // timed out in backpressure

  token->cancel();  // unblock both queued solves
  EXPECT_EQ(running.get().status, SolveStatus::Cancelled);
  EXPECT_EQ(waiting.get().status, SolveStatus::Cancelled);
}

TEST(ServiceResilience, ShutdownUnderLoadResolvesEveryFuture) {
  auto svc = std::make_unique<SolverService>(svc_config(2, 2, 4));
  std::mutex mu;
  std::vector<std::future<ServiceResult>> tickets;
  std::atomic<int> refused{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        SolveRequest req = quick_request();
        req.desc.tol = 1e-6;
        auto ticket = svc->try_submit(req, std::chrono::milliseconds(20));
        if (!ticket.has_value()) {
          refused.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        tickets.push_back(std::move(*ticket));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  svc->shutdown();  // races the submitters on purpose
  for (std::thread& t : submitters) {
    t.join();
  }
  EXPECT_TRUE(svc->shutting_down());

  // Every accepted ticket resolves — served or structurally cancelled —
  // and post-shutdown submission fails in the documented ways.
  for (std::future<ServiceResult>& f : tickets) {
    const ServiceResult res = f.get();
    EXPECT_TRUE(res.status == SolveStatus::Converged ||
                res.status == SolveStatus::Cancelled)
        << solve_status_name(res.status);
  }
  EXPECT_FALSE(
      svc->try_submit(quick_request(), std::chrono::milliseconds(1))
          .has_value());
  EXPECT_THROW((void)svc->submit(quick_request()), Error);
}

}  // namespace
}  // namespace hpgmx
