// Solver tests: Givens QR, GMRES (double & float), GMRES-IR accuracy
// equivalence, CG baseline, multigrid preconditioner quality, distributed
// consistency across rank counts.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "comm/thread_comm.hpp"
#include "core/cg.hpp"
#include "core/dist_operator.hpp"
#include "core/givens.hpp"
#include "core/gmres.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"

namespace hpgmx {
namespace {

TEST(Givens, RotationEliminatesSecondEntry) {
  const GivensRotation g = compute_givens(3.0, 4.0);
  EXPECT_NEAR(g.c * 3.0 + g.s * 4.0, 5.0, 1e-14);
  EXPECT_NEAR(-g.s * 3.0 + g.c * 4.0, 0.0, 1e-14);
  EXPECT_NEAR(g.c * g.c + g.s * g.s, 1.0, 1e-14);
}

TEST(Givens, ZeroSubdiagonalIsIdentity) {
  const GivensRotation g = compute_givens(2.0, 0.0);
  EXPECT_DOUBLE_EQ(g.c, 1.0);
  EXPECT_DOUBLE_EQ(g.s, 0.0);
}

TEST(HessenbergQR, SolvesSmallLeastSquares) {
  // Hessenberg H (3x2), minimize ||beta e1 - H y||.
  // Construct H from a known QR so the answer is checkable: use H = upper
  // triangular + zero subdiagonals => exact solve.
  HessenbergQR qr(2);
  qr.reset(6.0);
  std::vector<double> col0{2.0, 0.0};
  const double res0 = qr.insert_column(0, col0);
  EXPECT_NEAR(res0, 0.0, 1e-14);  // t = [6,0] rotated by identity
  std::vector<double> y(1);
  qr.solve(1, y);
  EXPECT_NEAR(y[0], 3.0, 1e-14);  // 2*y = 6
}

TEST(HessenbergQR, ResidualEstimateMatchesTrueLeastSquaresResidual) {
  // Random 4x3 Hessenberg; compare |t_4| with brute-force minimum.
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> dist(-1, 1);
  const int m = 3;
  std::vector<std::vector<double>> h_cols;
  HessenbergQR qr(m);
  const double beta = 2.0;
  qr.reset(beta);
  double est = 0;
  for (int k = 0; k < m; ++k) {
    std::vector<double> col(static_cast<std::size_t>(m) + 1, 0.0);
    for (int i = 0; i <= k + 1; ++i) {
      col[static_cast<std::size_t>(i)] = dist(rng) + (i == k ? 3.0 : 0.0);
    }
    h_cols.push_back(col);
    std::vector<double> work = col;
    est = qr.insert_column(k, work);
  }
  std::vector<double> y(m);
  qr.solve(m, y);
  // True residual ||beta e1 - H y||.
  std::vector<double> r(static_cast<std::size_t>(m) + 1, 0.0);
  r[0] = beta;
  for (int k = 0; k < m; ++k) {
    for (int i = 0; i <= m; ++i) {
      r[static_cast<std::size_t>(i)] -=
          h_cols[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
          y[static_cast<std::size_t>(k)];
    }
  }
  double nrm = 0;
  for (const double v : r) {
    nrm += v * v;
  }
  nrm = std::sqrt(nrm);
  EXPECT_NEAR(est, nrm, 1e-12);
}

// ---------------------------------------------------------------------------

ProblemHierarchy make_hierarchy(local_index_t n, const BenchParams& params) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = params.gamma;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         params.mg_levels, params.coloring_seed);
}

TEST(Multigrid, OneVCycleBeatsOneGsSweep) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  Multigrid<double> mg(h, params);
  const auto& b = h.levels[0].b;

  AlignedVector<double> z(b.size(), 0.0);
  mg.apply(comm, std::span<const double>(b.data(), b.size()),
           std::span<double>(z.data(), z.size()));
  AlignedVector<double> z_full(static_cast<std::size_t>(mg.level_op(0).vec_len()),
                               0.0);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z_full[i] = z[i];
  }
  AlignedVector<double> r(b.size(), 0.0);
  mg.level_op(0).residual(comm, std::span<const double>(b.data(), b.size()),
                          std::span<double>(z_full.data(), z_full.size()),
                          std::span<double>(r.data(), r.size()));
  const double after_mg =
      nrm2<double>(comm, std::span<const double>(r.data(), r.size()));

  // One plain GS sweep for comparison.
  AlignedVector<double> z1(static_cast<std::size_t>(mg.level_op(0).vec_len()),
                           0.0);
  mg.level_op(0).gs_forward(comm, std::span<const double>(b.data(), b.size()),
                            std::span<double>(z1.data(), z1.size()));
  mg.level_op(0).residual(comm, std::span<const double>(b.data(), b.size()),
                          std::span<double>(z1.data(), z1.size()),
                          std::span<double>(r.data(), r.size()));
  const double after_gs =
      nrm2<double>(comm, std::span<const double>(r.data(), r.size()));
  EXPECT_LT(after_mg, after_gs);
}

class GmresConfig : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GmresConfig, ConvergesOnBenchmarkProblem) {
  const auto [n, gamma] = GetParam();
  BenchParams params;
  params.gamma = gamma;
  const ProblemHierarchy h =
      make_hierarchy(static_cast<local_index_t>(n), params);
  SelfComm comm;
  Multigrid<double> mg(h, params);
  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;
  Gmres<double> solver(&mg.level_op(0), &mg, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged());
  EXPECT_LT(res.relative_residual, 1e-9);
  // Exact solution is the ones vector.
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Problems, GmresConfig,
    ::testing::Combine(::testing::Values(8, 16),
                       ::testing::Values(0.0, 0.2)));

TEST(Gmres, UnpreconditionedStillConverges) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(8, params);
  SelfComm comm;
  DistOperator<double> a(h.levels[0].a, h.structures[0].get(), params.opt, 10);
  SolverOptions opts;
  opts.max_iters = 2000;
  opts.tol = 1e-8;
  Gmres<double> solver(&a, nullptr, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged());
}

TEST(Gmres, ResidualHistoryIsMonotonePerRestart) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  Multigrid<double> mg(h, params);
  SolverOptions opts;
  opts.max_iters = 400;
  opts.tol = 1e-9;
  opts.track_history = true;
  Gmres<double> solver(&mg.level_op(0), &mg, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  ASSERT_GE(res.history.size(), 2u);
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    // GMRES minimizes the residual over a growing space: per-restart true
    // residuals must not increase.
    EXPECT_LE(res.history[i], res.history[i - 1] * (1 + 1e-10));
  }
}

TEST(Gmres, FloatAloneStallsAboveDoubleTolerance) {
  // Pure fp32 GMRES cannot converge 9 orders of magnitude — the reason the
  // benchmark prescribes IR around the low-precision cycles.
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  Multigrid<float> mg(h, params);
  SolverOptions opts;
  opts.max_iters = 200;
  opts.tol = 1e-9;
  Gmres<float> solver(&mg.level_op(0), &mg, opts);
  AlignedVector<float> bf(h.levels[0].b.size());
  for (std::size_t i = 0; i < bf.size(); ++i) {
    bf[i] = static_cast<float>(h.levels[0].b[i]);
  }
  AlignedVector<float> x(bf.size(), 0.0f);
  const SolveResult res =
      solver.solve(comm, std::span<const float>(bf.data(), bf.size()),
                   std::span<float>(x.data(), x.size()));
  EXPECT_FALSE(res.converged());
  EXPECT_GT(res.relative_residual, 1e-9);
}

TEST(GmresIr, ReachesDoubleAccuracy) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  Multigrid<float> mg_f(h, params);
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           90);
  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;
  GmresIr<float> solver(&a_d, &mg_f.level_op(0), &mg_f, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged());
  EXPECT_LT(res.relative_residual, 1e-9);
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

TEST(GmresIr, IterationOverheadIsBounded) {
  // n_ir >= n_d is typical; the benchmark penalizes the ratio. Guard that
  // the overhead stays within a sane envelope on the benchmark matrix.
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  SolverOptions opts;
  opts.max_iters = 1000;
  opts.tol = 1e-9;

  Multigrid<double> mg_d(h, params);
  Gmres<double> gd(&mg_d.level_op(0), &mg_d, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult rd = gd.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));

  Multigrid<float> mg_f(h, params);
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           90);
  GmresIr<float> gir(&a_d, &mg_f.level_op(0), &mg_f, opts);
  std::fill(x.begin(), x.end(), 0.0);
  const SolveResult rir = gir.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));

  ASSERT_TRUE(rd.converged());
  ASSERT_TRUE(rir.converged());
  EXPECT_LE(rir.iterations, rd.iterations * 2)
      << "n_d=" << rd.iterations << " n_ir=" << rir.iterations;
}

TEST(Cg, ConvergesOnSymmetricProblem) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  SymmetricMultigrid<double> mg(h, params);
  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;
  ConjugateGradient<double> cg(&mg.level_op(0), &mg, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = cg.solve(
      comm, std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(res.converged());
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

// Distributed solve: the same global problem must converge at every rank
// count (iteration counts may differ slightly across p — the smoother's
// block-Jacobi boundary coupling weakens with more subdomains, exactly as
// in HPCG) and all ranks of one world must agree on the count.
class DistributedSolve : public ::testing::TestWithParam<int> {};

TEST_P(DistributedSolve, ConvergesAndRanksAgree) {
  const int p = GetParam();
  const ProcessGrid pgrid = ProcessGrid::create(p);
  // Same global grid in every configuration: 8 * (px,py,pz).
  ProblemParams pp;
  pp.nx = static_cast<local_index_t>(16 / pgrid.px());
  pp.ny = static_cast<local_index_t>(16 / pgrid.py());
  pp.nz = static_cast<local_index_t>(16 / pgrid.pz());
  BenchParams params;
  params.mg_levels = 2;  // local dims can be small at p=8

  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;

  std::vector<SolveResult> results(static_cast<std::size_t>(p));
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const ProblemHierarchy h =
        build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                        params.mg_levels, params.coloring_seed);
    Multigrid<double> mg(h, params);
    Gmres<double> solver(&mg.level_op(0), &mg, opts);
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    results[static_cast<std::size_t>(comm.rank())] = solver.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
    // Every rank's owned part of the solution must be ≈ 1.
    for (const double v : x) {
      ASSERT_NEAR(v, 1.0, 1e-5);
    }
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(results[static_cast<std::size_t>(r)].converged());
    EXPECT_EQ(results[static_cast<std::size_t>(r)].iterations,
              results[0].iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, DistributedSolve, ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace hpgmx
