// Scripted-residual convergence oracle for InnerCycleObserver tests.
//
// GmresIr reports three kinds of observations to an attached observer:
// the outer relative residual at the top of each refinement cycle, the
// Arnoldi step count of each completed inner cycle, and rank-consistent
// non-finite detections. This harness replays a scripted sequence of those
// observations in exactly the solver's order — including the re-entry
// semantics of AdaptiveGmresIr, where a Promote aborts the segment and the
// recomputed junction residual is re-observed as the next segment's
// baseline — so controller transition logic (stagnation windows, patience,
// threshold edges, non-finite promotion, never-demote) is unit-testable
// without running a solve or even building an operator.
#pragma once

#include <span>
#include <vector>

#include "precision/adaptive_controller.hpp"

namespace hpgmx {

/// One scripted refinement cycle, as the solver would report it.
struct OracleStep {
  /// Outer relative residual observed at the top of this cycle.
  double residual = 1.0;
  /// Arnoldi steps the cycle runs (observed after the inner loop; the
  /// solver skips the call for an empty cycle, so 0 means "not reported").
  int inner_iterations = 1;
  /// The cycle ends in a rank-consistent non-finite detection (reported
  /// after the step count, matching the solver's hook order).
  bool non_finite = false;
};

/// What the replay saw the observer do.
struct OracleTrace {
  /// Promote returned from observe_residual (stagnation promotions).
  int residual_promotes = 0;
  /// Promote returned from observe_non_finite.
  int non_finite_promotes = 0;
  /// A re-observed junction residual produced a second Promote — a
  /// controller bug (the promoted segment's baseline must not count as a
  /// stagnant contraction). Tests assert this stays false.
  bool double_promote = false;

  [[nodiscard]] int promotes() const {
    return residual_promotes + non_finite_promotes;
  }
};

/// Replays `steps` against `obs` with the solver's exact call order:
/// observe_residual at the cycle top (on Promote the segment aborts and the
/// same residual is immediately re-observed as the new segment's baseline,
/// like AdaptiveGmresIr's re-entry), then observe_inner_iterations for the
/// executed cycle, then observe_non_finite when the script says the cycle
/// overflowed (a Promote there abandons the cycle's correction but the
/// replay continues with the next scripted cycle, as the solver does after
/// re-entry).
inline OracleTrace drive_oracle(InnerCycleObserver& obs,
                                std::span<const OracleStep> steps) {
  OracleTrace trace;
  for (const OracleStep& s : steps) {
    if (obs.observe_residual(s.residual) == CycleAction::Promote) {
      ++trace.residual_promotes;
      if (obs.observe_residual(s.residual) == CycleAction::Promote) {
        trace.double_promote = true;
      }
    }
    if (s.inner_iterations > 0) {
      obs.observe_inner_iterations(s.inner_iterations);
    }
    if (s.non_finite &&
        obs.observe_non_finite() == CycleAction::Promote) {
      ++trace.non_finite_promotes;
    }
  }
  return trace;
}

/// Convenience: a geometric residual script contracting by `contraction`
/// each cycle from `start`, `cycles` long, `k` Arnoldi steps per cycle.
inline std::vector<OracleStep> geometric_script(int cycles, double contraction,
                                                double start = 1.0,
                                                int k = 10) {
  std::vector<OracleStep> steps;
  steps.reserve(static_cast<std::size_t>(cycles));
  double r = start;
  for (int i = 0; i < cycles; ++i) {
    steps.push_back(OracleStep{r, k, false});
    r *= contraction;
  }
  return steps;
}

}  // namespace hpgmx
