// Tests for src/sparse: CSR/ELL formats, SpMV equivalence, residual/fused
// restriction kernels, row partitions, level scheduling.
#include <gtest/gtest.h>

#include <random>

#include "grid/problem.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/kernels.hpp"
#include "sparse/row_partition.hpp"
#include "sparse/sptrsv.hpp"

namespace hpgmx {
namespace {

/// Tiny dense-backed fixture: a 4x4 tridiagonal-ish matrix.
CsrMatrix<double> small_matrix() {
  CsrBuilder<double> b(4, 4, 4);
  // row 0: [4, -1, 0, 0]
  b.push(0, 4.0);
  b.push(1, -1.0);
  b.finish_row();
  // row 1: [-1, 4, -1, 0]
  b.push(0, -1.0);
  b.push(1, 4.0);
  b.push(2, -1.0);
  b.finish_row();
  // row 2: [0, -1, 4, -1]
  b.push(1, -1.0);
  b.push(2, 4.0);
  b.push(3, -1.0);
  b.finish_row();
  // row 3: [0, 0, -1, 4]
  b.push(2, -1.0);
  b.push(3, 4.0);
  b.finish_row();
  return b.build();
}

TEST(CsrMatrix, BuilderAndAccessors) {
  const CsrMatrix<double> a = small_matrix();
  EXPECT_EQ(a.num_rows, 4);
  EXPECT_EQ(a.nnz(), 10);
  EXPECT_EQ(a.row_cols(1).size(), 3u);
  EXPECT_DOUBLE_EQ(a.row_vals(1)[1], 4.0);
  for (local_index_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(a.diag[static_cast<std::size_t>(r)], 4.0);
  }
}

TEST(CsrMatrix, MissingDiagonalThrows) {
  CsrBuilder<double> b(2, 2, 2);
  b.push(1, 1.0);
  b.finish_row();
  b.push(1, 1.0);
  b.finish_row();
  EXPECT_THROW(b.build(), Error);
}

TEST(CsrMatrix, ConvertRoundTripsValues) {
  const CsrMatrix<double> a = small_matrix();
  const CsrMatrix<float> f = a.convert<float>();
  EXPECT_EQ(f.nnz(), a.nnz());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_FLOAT_EQ(f.values[i], static_cast<float>(a.values[i]));
  }
  EXPECT_EQ(f.diag.size(), a.diag.size());
}

TEST(EllMatrix, FromCsrPreservesEntries) {
  const CsrMatrix<double> a = small_matrix();
  const EllMatrix<double> e = ell_from_csr(a);
  EXPECT_EQ(e.slots, 3);  // widest row has 3 entries
  EXPECT_EQ(e.padded_nnz(), 12);
  // Padding entries must be zero-valued self references.
  for (local_index_t r = 0; r < e.num_rows; ++r) {
    const auto width = a.row_ptr[r + 1] - a.row_ptr[r];
    for (local_index_t s = static_cast<local_index_t>(width); s < e.slots;
         ++s) {
      EXPECT_EQ(e.col_idx[e.slot_index(r, s)], r);
      EXPECT_DOUBLE_EQ(e.values[e.slot_index(r, s)], 0.0);
    }
  }
}

TEST(Spmv, CsrMatchesDenseOracle) {
  const CsrMatrix<double> a = small_matrix();
  const AlignedVector<double> x{1.0, 2.0, 3.0, 4.0};
  AlignedVector<double> y(4, 0.0);
  csr_spmv(a, std::span<const double>(x.data(), x.size()),
           std::span<double>(y.data(), y.size()));
  EXPECT_DOUBLE_EQ(y[0], 4.0 * 1 - 2);
  EXPECT_DOUBLE_EQ(y[1], -1 + 8.0 - 3);
  EXPECT_DOUBLE_EQ(y[2], -2 + 12.0 - 4);
  EXPECT_DOUBLE_EQ(y[3], -3 + 16.0);
}

class SpmvGridSizes : public ::testing::TestWithParam<int> {};

TEST_P(SpmvGridSizes, EllEqualsCsrOnStencilMatrix) {
  const auto n = static_cast<local_index_t>(GetParam());
  ProblemParams p;
  p.nx = p.ny = p.nz = n;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const EllMatrix<double> e = ell_from_csr(prob.a);

  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1, 1);
  AlignedVector<double> x(static_cast<std::size_t>(prob.a.num_cols));
  for (auto& v : x) {
    v = dist(rng);
  }
  AlignedVector<double> y_csr(static_cast<std::size_t>(prob.a.num_rows), 0);
  AlignedVector<double> y_ell(static_cast<std::size_t>(prob.a.num_rows), 0);
  csr_spmv(prob.a, std::span<const double>(x.data(), x.size()),
           std::span<double>(y_csr.data(), y_csr.size()));
  ell_spmv(e, std::span<const double>(x.data(), x.size()),
           std::span<double>(y_ell.data(), y_ell.size()));
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    ASSERT_NEAR(y_csr[i], y_ell[i], 1e-12) << "row " << i;
  }
}

TEST_P(SpmvGridSizes, RowSubsetVariantsCoverAllRows) {
  const auto n = static_cast<local_index_t>(GetParam());
  ProblemParams p;
  p.nx = p.ny = p.nz = n;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const EllMatrix<double> e = ell_from_csr(prob.a);
  AlignedVector<double> x(static_cast<std::size_t>(prob.a.num_cols), 1.0);
  AlignedVector<double> y_full(static_cast<std::size_t>(prob.a.num_rows), 0);
  AlignedVector<double> y_split(static_cast<std::size_t>(prob.a.num_rows), -1);

  csr_spmv(prob.a, std::span<const double>(x.data(), x.size()),
           std::span<double>(y_full.data(), y_full.size()));
  // Split rows arbitrarily into evens and odds.
  AlignedVector<local_index_t> evens, odds;
  for (local_index_t r = 0; r < prob.a.num_rows; ++r) {
    (r % 2 == 0 ? evens : odds).push_back(r);
  }
  ell_spmv_rows(e, std::span<const double>(x.data(), x.size()),
                std::span<double>(y_split.data(), y_split.size()),
                std::span<const local_index_t>(evens.data(), evens.size()));
  csr_spmv_rows(prob.a, std::span<const double>(x.data(), x.size()),
                std::span<double>(y_split.data(), y_split.size()),
                std::span<const local_index_t>(odds.data(), odds.size()));
  for (std::size_t i = 0; i < y_full.size(); ++i) {
    ASSERT_NEAR(y_full[i], y_split[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, SpmvGridSizes, ::testing::Values(4, 6, 8));

TEST(Residual, ZeroWhenExact) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  AlignedVector<double> ones(static_cast<std::size_t>(prob.a.num_cols), 1.0);
  AlignedVector<double> r(static_cast<std::size_t>(prob.a.num_rows), -1.0);
  csr_residual(prob.a, std::span<const double>(prob.b.data(), prob.b.size()),
               std::span<const double>(ones.data(), ones.size()),
               std::span<double>(r.data(), r.size()));
  for (const double v : r) {
    EXPECT_NEAR(v, 0.0, 1e-12);
  }
}

TEST(FusedRestrict, MatchesUnfusedPath) {
  ProblemParams p;
  p.nx = p.ny = p.nz = 8;
  const Problem fine = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const CoarseLevel cl = coarsen(fine);

  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(-1, 1);
  AlignedVector<double> b(static_cast<std::size_t>(fine.a.num_rows));
  AlignedVector<double> x(static_cast<std::size_t>(fine.a.num_cols));
  for (auto& v : b) {
    v = dist(rng);
  }
  for (auto& v : x) {
    v = dist(rng);
  }

  // Unfused oracle: full residual, then injection.
  AlignedVector<double> rf(static_cast<std::size_t>(fine.a.num_rows), 0);
  AlignedVector<double> rc_oracle(cl.c2f.size(), 0);
  csr_residual(fine.a, std::span<const double>(b.data(), b.size()),
               std::span<const double>(x.data(), x.size()),
               std::span<double>(rf.data(), rf.size()));
  inject_restrict(std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()),
                  std::span<const double>(rf.data(), rf.size()),
                  std::span<double>(rc_oracle.data(), rc_oracle.size()));

  AlignedVector<double> rc(cl.c2f.size(), 0);
  fused_restrict_residual(
      fine.a, std::span<const double>(b.data(), b.size()),
      std::span<const double>(x.data(), x.size()),
      std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()),
      std::span<double>(rc.data(), rc.size()));
  for (std::size_t i = 0; i < rc.size(); ++i) {
    ASSERT_NEAR(rc[i], rc_oracle[i], 1e-12);
  }

  // Subset variant over all coarse ids must agree too.
  AlignedVector<double> rc_sub(cl.c2f.size(), -7.0);
  AlignedVector<local_index_t> all_ids(cl.c2f.size());
  for (std::size_t i = 0; i < all_ids.size(); ++i) {
    all_ids[i] = static_cast<local_index_t>(i);
  }
  fused_restrict_residual_subset(
      fine.a, std::span<const double>(b.data(), b.size()),
      std::span<const double>(x.data(), x.size()),
      std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()),
      std::span<double>(rc_sub.data(), rc_sub.size()),
      std::span<const local_index_t>(all_ids.data(), all_ids.size()));
  for (std::size_t i = 0; i < rc.size(); ++i) {
    ASSERT_NEAR(rc_sub[i], rc[i], 1e-12);
  }
}

TEST(ProlongCorrect, AddsAtInjectionPoints) {
  AlignedVector<local_index_t> c2f{0, 2, 4};
  AlignedVector<double> zc{1.0, 2.0, 3.0};
  AlignedVector<double> x{10, 10, 10, 10, 10};
  prolong_correct(std::span<const local_index_t>(c2f.data(), c2f.size()),
                  std::span<const double>(zc.data(), zc.size()),
                  std::span<double>(x.data(), x.size()));
  EXPECT_DOUBLE_EQ(x[0], 11);
  EXPECT_DOUBLE_EQ(x[1], 10);
  EXPECT_DOUBLE_EQ(x[2], 12);
  EXPECT_DOUBLE_EQ(x[3], 10);
  EXPECT_DOUBLE_EQ(x[4], 13);
}

TEST(RowPartition, FromGroupIds) {
  const std::vector<int> groups{1, 0, 1, 2, 0};
  const RowPartition part = RowPartition::from_group_ids(groups, 3);
  EXPECT_EQ(part.num_groups(), 3);
  EXPECT_EQ(part.num_rows(), 5);
  const auto g0 = part.group(0);
  ASSERT_EQ(g0.size(), 2u);
  EXPECT_EQ(g0[0], 1);
  EXPECT_EQ(g0[1], 4);
  const auto g2 = part.group(2);
  ASSERT_EQ(g2.size(), 1u);
  EXPECT_EQ(g2[0], 3);
}

TEST(RowPartition, InvalidGroupIdThrows) {
  const std::vector<int> groups{0, 5};
  EXPECT_THROW(RowPartition::from_group_ids(groups, 2), Error);
}

TEST(LevelSchedule, TridiagonalIsFullySequential) {
  const CsrMatrix<double> a = small_matrix();
  const RowPartition levels = build_lower_level_schedule(a);
  // Chain dependencies: every row depends on the previous one.
  EXPECT_EQ(levels.num_groups(), 4);
  for (int l = 0; l < 4; ++l) {
    ASSERT_EQ(levels.group(l).size(), 1u);
    EXPECT_EQ(levels.group(l)[0], l);
  }
}

TEST(LevelSchedule, StencilHasManyMoreLevelsThanColors) {
  // The 27-pt stencil's lower triangle chains through diagonal neighbors,
  // so level counts far exceed the 8 independent-set colors — the limited
  // parallelism of level scheduling that paper §3.1 criticizes.
  ProblemParams p;
  p.nx = p.ny = p.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, p);
  const RowPartition levels = build_lower_level_schedule(prob.a);
  EXPECT_GE(levels.num_groups(), 4 + 4 + 4 - 2);
  EXPECT_GT(levels.num_groups(), 8);      // worse than multicoloring
  EXPECT_EQ(levels.group(0).size(), 1u);  // only the (0,0,0) corner

  // Validity: every lower-triangle dependency sits in an earlier level.
  std::vector<int> level_of(static_cast<std::size_t>(prob.a.num_rows), -1);
  for (int l = 0; l < levels.num_groups(); ++l) {
    for (const local_index_t r : levels.group(l)) {
      level_of[static_cast<std::size_t>(r)] = l;
    }
  }
  for (local_index_t r = 0; r < prob.a.num_rows; ++r) {
    for (const local_index_t c : prob.a.row_cols(r)) {
      if (c < r) {
        EXPECT_LT(level_of[static_cast<std::size_t>(c)],
                  level_of[static_cast<std::size_t>(r)]);
      }
    }
  }
}

TEST(LevelSchedule, SolveMatchesSequentialSubstitution) {
  const CsrMatrix<double> a = small_matrix();
  const RowPartition levels = build_lower_level_schedule(a);
  const AlignedVector<double> t{4.0, 2.0, 0.0, 8.0};
  AlignedVector<double> z(4, 0.0);
  sptrsv_lower_levels(a, levels, std::span<const double>(t.data(), t.size()),
                      std::span<double>(z.data(), z.size()));
  // Forward substitution with (D+L).
  AlignedVector<double> z_ref(4, 0.0);
  z_ref[0] = 4.0 / 4.0;
  z_ref[1] = (2.0 + z_ref[0]) / 4.0;
  z_ref[2] = (0.0 + z_ref[1]) / 4.0;
  z_ref[3] = (8.0 + z_ref[2]) / 4.0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(z[static_cast<std::size_t>(i)],
                z_ref[static_cast<std::size_t>(i)], 1e-14);
  }
}

}  // namespace
}  // namespace hpgmx
