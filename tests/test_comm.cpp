// Unit and property tests for the message-passing substrate: SelfComm,
// ThreadComm point-to-point, collectives at several rank counts, halo
// exchange against an allgather oracle.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/comm.hpp"
#include "comm/halo.hpp"
#include "comm/thread_comm.hpp"

namespace hpgmx {
namespace {

TEST(SelfComm, RankAndSize) {
  SelfComm comm;
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
}

TEST(SelfComm, SelfMessagingRoundTrip) {
  SelfComm comm;
  const std::vector<double> out{1.0, 2.0, 3.0};
  comm.send(0, 5, std::span<const double>(out));
  std::vector<double> in(3, 0.0);
  comm.recv(0, 5, std::span<double>(in));
  EXPECT_EQ(in, out);
}

TEST(SelfComm, IrecvMatchesLaterSend) {
  SelfComm comm;
  std::vector<int32_t> in(2, 0);
  Request req = comm.irecv(0, 9, std::span<int32_t>(in));
  const std::vector<int32_t> out{7, 8};
  comm.send(0, 9, std::span<const int32_t>(out));
  req.wait();
  EXPECT_EQ(in, out);
}

TEST(SelfComm, AllreduceIsCopy) {
  SelfComm comm;
  EXPECT_DOUBLE_EQ(comm.allreduce_scalar(3.25, ReduceOp::Sum), 3.25);
  EXPECT_DOUBLE_EQ(comm.allreduce_scalar(3.25, ReduceOp::Max), 3.25);
}

TEST(SelfComm, RecvWithoutSendThrows) {
  SelfComm comm;
  std::vector<double> in(1);
  EXPECT_THROW(comm.recv(0, 1, std::span<double>(in)), Error);
}

class ThreadCommSizes : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCommSizes, RanksAreDistinctAndComplete) {
  const int p = GetParam();
  std::vector<int> seen(static_cast<std::size_t>(p), 0);
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), p);
    seen[static_cast<std::size_t>(comm.rank())] = 1;
  });
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), p);
}

TEST_P(ThreadCommSizes, AllreduceSum) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const double total =
        comm.allreduce_scalar(static_cast<double>(comm.rank() + 1),
                              ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(total, p * (p + 1) / 2.0);
  });
}

TEST_P(ThreadCommSizes, AllreduceMaxMin) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    EXPECT_EQ(
        comm.allreduce_scalar(static_cast<std::int64_t>(comm.rank()),
                              ReduceOp::Max),
        p - 1);
    EXPECT_EQ(
        comm.allreduce_scalar(static_cast<std::int64_t>(comm.rank()),
                              ReduceOp::Min),
        0);
  });
}

TEST_P(ThreadCommSizes, AllreduceVectorFloat) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const std::vector<float> in{static_cast<float>(comm.rank()), 1.0f};
    std::vector<float> out(2);
    comm.allreduce(std::span<const float>(in), std::span<float>(out),
                   ReduceOp::Sum);
    EXPECT_FLOAT_EQ(out[0], p * (p - 1) / 2.0f);
    EXPECT_FLOAT_EQ(out[1], static_cast<float>(p));
  });
}

TEST_P(ThreadCommSizes, Allgather) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const std::vector<std::int64_t> mine{comm.rank() * 10LL,
                                         comm.rank() * 10LL + 1};
    std::vector<std::int64_t> all(static_cast<std::size_t>(2 * p));
    comm.allgather(std::span<const std::int64_t>(mine),
                   std::span<std::int64_t>(all));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r * 10);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
    }
  });
}

TEST_P(ThreadCommSizes, Bcast) {
  const int p = GetParam();
  const int root = p - 1;
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    std::vector<double> data{comm.rank() == root ? 42.0 : -1.0};
    comm.bcast(std::span<double>(data), root);
    EXPECT_DOUBLE_EQ(data[0], 42.0);
  });
}

TEST_P(ThreadCommSizes, RingSendRecv) {
  const int p = GetParam();
  if (p < 2) {
    GTEST_SKIP() << "ring needs 2+ ranks";
  }
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    const std::vector<double> out{static_cast<double>(comm.rank())};
    std::vector<double> in(1, -1.0);
    comm.send(next, 3, std::span<const double>(out));
    comm.recv(prev, 3, std::span<double>(in));
    EXPECT_DOUBLE_EQ(in[0], static_cast<double>(prev));
  });
}

TEST_P(ThreadCommSizes, NonblockingExchange) {
  const int p = GetParam();
  if (p < 2) {
    GTEST_SKIP();
  }
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const int partner = comm.rank() ^ 1;
    if (partner >= p) {
      return;  // odd rank count: last rank sits out
    }
    std::vector<float> in(4, 0.0f);
    std::vector<float> out(4, static_cast<float>(comm.rank()));
    Request rreq = comm.irecv(partner, 11, std::span<float>(in));
    Request sreq = comm.isend(partner, 11, std::span<const float>(out));
    sreq.wait();
    rreq.wait();
    for (const float v : in) {
      EXPECT_FLOAT_EQ(v, static_cast<float>(partner));
    }
  });
}

TEST_P(ThreadCommSizes, DeterministicSumOrder) {
  // Rank-ordered reduction: results are bit-identical across repetitions
  // even with values that do not commute exactly in floating point.
  const int p = GetParam();
  double first = 0;
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> result(static_cast<std::size_t>(p));
    ThreadCommWorld::execute(p, [&](Comm& comm) {
      const double mine = 1.0 / (3.0 + comm.rank()) * 1e-7 + comm.rank();
      result[static_cast<std::size_t>(comm.rank())] =
          comm.allreduce_scalar(mine, ReduceOp::Sum);
    });
    for (int r = 1; r < p; ++r) {
      ASSERT_EQ(result[0], result[static_cast<std::size_t>(r)]);
    }
    if (rep == 0) {
      first = result[0];
    } else {
      ASSERT_EQ(first, result[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ThreadCommSizes,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadCommWorld, ExceptionPropagates) {
  EXPECT_THROW(ThreadCommWorld::execute(2,
                                        [](Comm& comm) {
                                          if (comm.rank() == 1) {
                                            // Both ranks throw so neither
                                            // blocks in a collective.
                                          }
                                          throw Error("boom",
                                                      std::source_location::
                                                          current());
                                        }),
               Error);
}

TEST(ThreadCommWorld, MessagesDoNotCrossTags) {
  ThreadCommWorld::execute(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int32_t> a{1}, b{2};
      comm.send(1, 100, std::span<const int32_t>(a));
      comm.send(1, 200, std::span<const int32_t>(b));
    } else {
      std::vector<int32_t> a(1), b(1);
      comm.recv(0, 200, std::span<int32_t>(b));  // out of order on purpose
      comm.recv(0, 100, std::span<int32_t>(a));
      EXPECT_EQ(a[0], 1);
      EXPECT_EQ(b[0], 2);
    }
  });
}

// ---------------------------------------------------------------------------
// Halo exchange on a hand-built 1D pattern: each rank owns 4 entries and
// reads one ghost from each side neighbor.
// ---------------------------------------------------------------------------

HaloPattern line_pattern(int rank, int p, local_index_t n_owned) {
  HaloPattern pat;
  pat.n_owned = n_owned;
  pat.n_halo = 0;
  if (rank > 0) {
    HaloNeighbor nb;
    nb.rank = rank - 1;
    nb.send_indices = {0};
    nb.recv_offset = pat.n_halo;
    nb.recv_count = 1;
    pat.n_halo += 1;
    pat.neighbors.push_back(std::move(nb));
  }
  if (rank + 1 < p) {
    HaloNeighbor nb;
    nb.rank = rank + 1;
    nb.send_indices = {n_owned - 1};
    nb.recv_offset = pat.n_halo;
    nb.recv_count = 1;
    pat.n_halo += 1;
    pat.neighbors.push_back(std::move(nb));
  }
  return pat;
}

class HaloLineSizes : public ::testing::TestWithParam<int> {};

TEST_P(HaloLineSizes, ExchangeMatchesNeighborValues) {
  const int p = GetParam();
  const local_index_t n = 4;
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const int rank = comm.rank();
    const HaloPattern pat = line_pattern(rank, p, n);
    HaloExchange<double> hx(&pat, /*tag=*/0);
    AlignedVector<double> x(static_cast<std::size_t>(pat.vector_length()),
                            -1.0);
    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = rank * 100.0 + i;
    }
    hx.exchange(comm, std::span<double>(x.data(), x.size()));
    std::size_t h = static_cast<std::size_t>(n);
    if (rank > 0) {
      // Left neighbor sent its last entry.
      EXPECT_DOUBLE_EQ(x[h++], (rank - 1) * 100.0 + (n - 1));
    }
    if (rank + 1 < p) {
      EXPECT_DOUBLE_EQ(x[h++], (rank + 1) * 100.0 + 0);
    }
  });
}

TEST_P(HaloLineSizes, SplitPhaseAllowsOwnedWrites) {
  const int p = GetParam();
  if (p < 2) {
    GTEST_SKIP();
  }
  const local_index_t n = 4;
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const int rank = comm.rank();
    const HaloPattern pat = line_pattern(rank, p, n);
    HaloExchange<float> hx(&pat, /*tag=*/1);
    AlignedVector<float> x(static_cast<std::size_t>(pat.vector_length()),
                           0.0f);
    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<float>(rank);
    }
    hx.begin(comm, std::span<float>(x.data(), x.size()));
    // The §3.2.3 event semantics: owned entries (including packed boundary
    // ones) may be overwritten after begin(); neighbors still receive the
    // OLD values.
    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = -999.0f;
    }
    hx.finish(comm);
    for (local_index_t i = n; i < pat.vector_length(); ++i) {
      EXPECT_GE(x[static_cast<std::size_t>(i)], 0.0f)
          << "halo entry must hold the neighbor's pre-overwrite value";
    }
  });
}

TEST_P(HaloLineSizes, BytesPerExchangeAccounting) {
  const int p = GetParam();
  const HaloPattern pat = line_pattern(0, p, 4);
  HaloExchange<double> hx(&pat, 2);
  const std::size_t expected =
      (p > 1) ? 2 * sizeof(double) : 0;  // 1 send + 1 recv with right neighbor
  EXPECT_EQ(hx.bytes_per_exchange(), expected);
}

INSTANTIATE_TEST_SUITE_P(LineWorlds, HaloLineSizes,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(HaloExchange, BeginTwiceThrows) {
  SelfComm comm;
  const HaloPattern pat = line_pattern(0, 1, 4);
  HaloExchange<double> hx(&pat, 3);
  AlignedVector<double> x(4, 0.0);
  hx.begin(comm, std::span<double>(x.data(), x.size()));
  EXPECT_THROW(hx.begin(comm, std::span<double>(x.data(), x.size())), Error);
  hx.finish(comm);
  EXPECT_THROW(hx.finish(comm), Error);
}

}  // namespace
}  // namespace hpgmx
