// Test doubles for the Comm interface.
//
// RecordingComm wraps any Comm and counts every call and payload byte that
// crosses it — the instrument behind the "measured halo traffic equals the
// bytes model" and "batching really removed allreduces" assertions.
//
// FaultyComm wraps any Comm and misbehaves in ways a real network does:
// sends are withheld and later delivered in reverse order (out-of-order
// arrival), and nonblocking receive completion can be delayed. Correct code
// must not care — message matching is by (src, tag) and the split-phase
// halo exchange must tolerate late completion — so the solvers and the
// HaloExchange epochs are asserted bit-exact under it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/comm.hpp"

namespace hpgmx {

/// Counts every operation (and payload byte) passing through a wrapped Comm.
class RecordingComm final : public Comm {
 public:
  struct Counts {
    std::size_t sends = 0;
    std::size_t recvs = 0;
    std::size_t isends = 0;
    std::size_t irecvs = 0;
    /// Bytes handed to send/isend (the wire payload, excluding any
    /// envelope) and bytes posted for recv/irecv.
    std::size_t send_payload_bytes = 0;
    std::size_t recv_payload_bytes = 0;
    std::size_t allreduces = 0;
    /// Bytes of this rank's allreduce contributions (n * element size).
    std::size_t allreduce_payload_bytes = 0;
    std::size_t allgathers = 0;
    std::size_t bcasts = 0;
    std::size_t barriers = 0;
  };

  explicit RecordingComm(Comm& inner) : inner_(&inner) {}

  [[nodiscard]] const Counts& counts() const { return counts_; }
  void reset() { counts_ = Counts{}; }

  [[nodiscard]] int rank() const override { return inner_->rank(); }
  [[nodiscard]] int size() const override { return inner_->size(); }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override {
    ++counts_.sends;
    counts_.send_payload_bytes += bytes;
    inner_->send_bytes(dst, tag, data, bytes);
  }
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override {
    ++counts_.recvs;
    counts_.recv_payload_bytes += bytes;
    inner_->recv_bytes(src, tag, data, bytes);
  }
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override {
    ++counts_.isends;
    counts_.send_payload_bytes += bytes;
    return inner_->isend_bytes(dst, tag, data, bytes);
  }
  Request irecv_bytes(int src, int tag, void* data,
                      std::size_t bytes) override {
    ++counts_.irecvs;
    counts_.recv_payload_bytes += bytes;
    return inner_->irecv_bytes(src, tag, data, bytes);
  }

  void barrier() override {
    ++counts_.barriers;
    inner_->barrier();
  }
  void allreduce_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops, ReduceOp op) override {
    ++counts_.allreduces;
    counts_.allreduce_payload_bytes += n * ops.size;
    inner_->allreduce_bytes(in, out, n, ops, op);
  }
  void allgather_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops) override {
    ++counts_.allgathers;
    inner_->allgather_bytes(in, out, n, ops);
  }
  void bcast_bytes(void* data, std::size_t n, const detail::TypeOps& ops,
                   int root) override {
    ++counts_.bcasts;
    inner_->bcast_bytes(data, n, ops, root);
  }

 private:
  Comm* inner_;
  Counts counts_;
};

/// Wraps a Comm and perturbs delivery: sends are buffered and flushed in
/// REVERSE posting order only when this rank next needs progress (a receive,
/// a wait on a delayed receive, or any collective), and completed receives
/// can be held for `delay_us` before the waiter is released. Matching stays
/// by (src, tag), so any code that is correct under MPI's non-overtaking
/// guarantee per (src, tag) pair must produce identical bits here.
class FaultyComm final : public Comm {
 public:
  struct Config {
    /// Microseconds each nonblocking-receive wait() sleeps after the inner
    /// transfer completed (late-completion injection).
    int delay_us = 0;
    /// Deliver withheld sends in reverse posting order.
    bool reorder_sends = true;
  };

  FaultyComm(Comm& inner, Config config) : inner_(&inner), config_(config) {}

  /// Sends still withheld (flushed on destruction so no message is lost).
  ~FaultyComm() override { flush(); }

  [[nodiscard]] int rank() const override { return inner_->rank(); }
  [[nodiscard]] int size() const override { return inner_->size(); }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override {
    buffer(dst, tag, data, bytes);
  }
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override {
    flush();
    inner_->recv_bytes(src, tag, data, bytes);
  }
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override {
    // Eager completion: the payload is copied into the withheld-send buffer,
    // so the caller's buffer is immediately reusable and the returned
    // request has nothing to wait for — the legal extreme of MPI's eager
    // protocol.
    buffer(dst, tag, data, bytes);
    return Request{};
  }
  Request irecv_bytes(int src, int tag, void* data,
                      std::size_t bytes) override {
    return Request(std::make_shared<DelayedRecv>(
        this, inner_->irecv_bytes(src, tag, data, bytes)));
  }

  void barrier() override {
    flush();
    inner_->barrier();
  }
  void allreduce_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops, ReduceOp op) override {
    flush();
    inner_->allreduce_bytes(in, out, n, ops, op);
  }
  void allgather_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops) override {
    flush();
    inner_->allgather_bytes(in, out, n, ops);
  }
  void bcast_bytes(void* data, std::size_t n, const detail::TypeOps& ops,
                   int root) override {
    flush();
    inner_->bcast_bytes(data, n, ops, root);
  }

  /// Deliver every withheld send (reverse posting order when configured).
  void flush() {
    if (pending_.empty()) {
      return;
    }
    std::vector<PendingSend> batch;
    batch.swap(pending_);
    if (config_.reorder_sends) {
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        inner_->send_bytes(it->dst, it->tag, it->data.data(),
                           it->data.size());
      }
    } else {
      for (const PendingSend& p : batch) {
        inner_->send_bytes(p.dst, p.tag, p.data.data(), p.data.size());
      }
    }
  }

 private:
  struct PendingSend {
    int dst = 0;
    int tag = 0;
    std::vector<std::byte> data;
  };

  /// wait(): release this rank's withheld sends first (otherwise two
  /// FaultyComm ranks waiting on each other would both sit on undelivered
  /// messages), complete the inner receive, then hold the caller.
  class DelayedRecv final : public Request::State {
   public:
    DelayedRecv(FaultyComm* owner, Request inner)
        : owner_(owner), inner_(std::move(inner)) {}
    void wait() override {
      owner_->flush();
      inner_.wait();
      if (owner_->config_.delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(owner_->config_.delay_us));
      }
    }

   private:
    FaultyComm* owner_;
    Request inner_;
  };

  void buffer(int dst, int tag, const void* data, std::size_t bytes) {
    PendingSend p;
    p.dst = dst;
    p.tag = tag;
    p.data.resize(bytes);
    std::memcpy(p.data.data(), data, bytes);
    pending_.push_back(std::move(p));
  }

  Comm* inner_;
  Config config_;
  std::vector<PendingSend> pending_;
};

}  // namespace hpgmx
