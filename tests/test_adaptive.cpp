// Adaptive precision controller tests: oracle-driven transition logic
// (scenario-aware starts, promote-on-stagnation with patience, threshold
// edges, non-finite promotion, never-demote, recorder passivity), config
// validation/canonicalization/env parsing, the AdaptiveGmresIr driver's
// bit-identity contract when the controller is off, full adaptive solves to
// the double target on the catalog stress scenarios, and the adaptive
// fields' round-trip through ProblemDescriptor.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/adaptive_ir.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/precision.hpp"
#include "precision/scale_guard.hpp"
#include "precision_oracle.hpp"
#include "service/descriptor.hpp"

namespace hpgmx {
namespace {

AdaptiveConfig enabled_config() {
  AdaptiveConfig cfg;
  cfg.enabled = true;
  return cfg;
}

// ---------------------------------------------------------------------------
// Start-rung selection

TEST(AdaptiveController, AutoStartPrefersTheFp32Rung) {
  // The default ladder has an fp32 rung, and fp32 is the measured knee of
  // contraction-per-byte — every scenario starts there, not at bf16.
  for (const Scenario sc : scenario_catalog()) {
    const PrecisionController c(enabled_config(), sc);
    EXPECT_EQ(c.current(), Precision::Fp32) << scenario_name(sc);
    EXPECT_EQ(c.rung(), 1) << scenario_name(sc);
  }
}

TEST(AdaptiveController, ExploratoryLadderStartsCheapestAndElevatesStress) {
  // An all-sub-fp32 ladder is exploratory: cheapest rung first, except the
  // low-precision stress scenarios start one rung higher (ROADMAP item 4).
  AdaptiveConfig cfg = enabled_config();
  cfg.ladder = {Precision::Fp16, Precision::Bf16};
  EXPECT_EQ(PrecisionController(cfg, Scenario::Poisson).current(),
            Precision::Fp16);
  EXPECT_EQ(PrecisionController(cfg, Scenario::Jump).current(),
            Precision::Bf16);
  EXPECT_EQ(PrecisionController(cfg, Scenario::Stretched).current(),
            Precision::Bf16);
}

TEST(AdaptiveController, ExplicitStartOverridesTheScenarioDefault) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  const PrecisionController c(cfg, Scenario::Jump);
  EXPECT_EQ(c.current(), Precision::Bf16);
  EXPECT_EQ(c.rung(), 0);
}

// ---------------------------------------------------------------------------
// Promote-on-stagnation (oracle-driven)

TEST(AdaptiveController, PromotesAfterPatienceConsecutiveStagnantCycles) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;  // patience = 2, threshold = 1e-3 (defaults)
  PrecisionController c(cfg);
  // Contraction 0.5 per cycle is far above the threshold: baseline, two
  // stagnant observations, promote — the third cycle runs at fp32.
  const auto steps = geometric_script(/*cycles=*/4, /*contraction=*/0.5);
  const OracleTrace t = drive_oracle(c, steps);
  EXPECT_EQ(t.residual_promotes, 1);
  EXPECT_FALSE(t.double_promote);
  EXPECT_EQ(c.promotions(), 1);
  ASSERT_EQ(c.records().size(), 4u);
  EXPECT_EQ(c.records()[0].precision, Precision::Bf16);
  EXPECT_EQ(c.records()[1].precision, Precision::Bf16);
  EXPECT_EQ(c.records()[2].precision, Precision::Fp32);
  EXPECT_EQ(c.records()[3].precision, Precision::Fp32);
}

TEST(AdaptiveController, HealthyCycleResetsThePatienceWindow) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  PrecisionController c(cfg);
  // stagnant, healthy (5 digits), stagnant, stagnant: the healthy cycle
  // breaks the first window, so promotion lands only after the second pair.
  const std::vector<OracleStep> steps = {
      {1.0, 10, false},  {0.5, 10, false},    {0.5e-5, 10, false},
      {0.25e-5, 10, false}, {0.125e-5, 10, false},
  };
  const OracleTrace t = drive_oracle(c, steps);
  EXPECT_EQ(t.residual_promotes, 1);
  ASSERT_EQ(c.records().size(), 5u);
  EXPECT_EQ(c.records()[3].precision, Precision::Bf16);
  EXPECT_EQ(c.records()[4].precision, Precision::Fp32);
}

TEST(AdaptiveController, ContractionExactlyAtThresholdIsStagnant) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  cfg.patience = 1;
  PrecisionController at(cfg);
  const std::vector<OracleStep> edge = {{1.0, 10, false},
                                        {cfg.stagnation_threshold, 10, false}};
  EXPECT_EQ(drive_oracle(at, edge).residual_promotes, 1);

  PrecisionController below(cfg);
  const double just_under =
      std::nextafter(cfg.stagnation_threshold, 0.0);
  const std::vector<OracleStep> healthy = {{1.0, 10, false},
                                           {just_under, 10, false}};
  EXPECT_EQ(drive_oracle(below, healthy).promotes(), 0);
  EXPECT_EQ(below.current(), Precision::Bf16);
}

TEST(AdaptiveController, NeverDemotesAndStopsAtTheTopRung) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  cfg.patience = 1;
  PrecisionController c(cfg);
  // Permanent stagnation climbs bf16 -> fp32 -> fp64 and then stays: the
  // ladder is monotone and bounded.
  const auto steps = geometric_script(/*cycles=*/10, /*contraction=*/0.9);
  (void)drive_oracle(c, steps);
  EXPECT_EQ(c.promotions(), 2);
  EXPECT_EQ(c.current(), Precision::Fp64);
  EXPECT_TRUE(c.at_top());
  int prev_rung = 0;
  for (const CycleRecord& r : c.records()) {
    EXPECT_GE(r.rung, prev_rung);  // monotone: no demotion anywhere
    prev_rung = r.rung;
  }
}

TEST(AdaptiveController, NonFinitePromotesImmediately) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  PrecisionController c(cfg);
  // No stagnation history needed: one rank-consistent overflow promotes.
  const std::vector<OracleStep> steps = {{1.0, 5, true}};
  const OracleTrace t = drive_oracle(c, steps);
  EXPECT_EQ(t.non_finite_promotes, 1);
  EXPECT_EQ(c.current(), Precision::Fp32);
}

TEST(AdaptiveController, NonFiniteAtTheTopFallsThroughToTheGuard) {
  AdaptiveConfig cfg = enabled_config();
  cfg.ladder = {Precision::Bf16, Precision::Fp32};  // auto start = fp32 = top
  PrecisionController c(cfg);
  ASSERT_TRUE(c.at_top());
  EXPECT_EQ(c.observe_non_finite(), CycleAction::Continue);
  EXPECT_EQ(c.promotions(), 0);
}

TEST(AdaptiveController, DisabledControllerObservesButNeverPromotes) {
  AdaptiveConfig cfg;  // enabled = false
  cfg.start = Precision::Bf16;
  PrecisionController c(cfg);
  std::vector<OracleStep> steps = geometric_script(5, 0.9);
  steps.push_back({0.9, 5, true});
  const OracleTrace t = drive_oracle(c, steps);
  EXPECT_EQ(t.promotes(), 0);
  EXPECT_EQ(c.current(), Precision::Bf16);
  EXPECT_EQ(c.records().size(), steps.size());  // still records every cycle
}

TEST(AdaptiveController, RecorderPinsItsScheduleAndNeverPromotes) {
  PrecisionController c = PrecisionController::recorder(
      *parse_precision_schedule("fp32,bf16"));
  EXPECT_FALSE(c.enabled());
  EXPECT_TRUE(c.at_top());
  EXPECT_EQ(c.current(), Precision::Fp32);
  EXPECT_EQ(c.schedule_for(0).to_string(), "fp32,bf16");
  EXPECT_EQ(c.schedule_for(7).to_string(), "fp32,bf16");  // rung-independent
  std::vector<OracleStep> steps = geometric_script(3, 0.99);
  steps.push_back({0.99, 5, true});
  EXPECT_EQ(drive_oracle(c, steps).promotes(), 0);
  ASSERT_EQ(c.records().size(), 4u);
  for (const CycleRecord& r : c.records()) {
    EXPECT_EQ(r.precision, Precision::Fp32);
  }
}

TEST(AdaptiveController, RecorderRejectsAnEmptySchedule) {
  EXPECT_THROW((void)PrecisionController::recorder(PrecisionSchedule{}),
               Error);
}

TEST(AdaptiveController, BeginSolveKeepsTheRungAndResetsTheBaseline) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  cfg.patience = 1;
  PrecisionController c(cfg);
  (void)drive_oracle(c, geometric_script(2, 0.5));  // promotes bf16 -> fp32
  ASSERT_EQ(c.promotions(), 1);
  c.begin_solve();
  EXPECT_EQ(c.current(), Precision::Fp32);  // promotion is operator knowledge
  // The first observation of the new solve is a baseline, not a (huge)
  // contraction against the previous solve's final residual...
  EXPECT_EQ(c.observe_residual(1.0), CycleAction::Continue);
  EXPECT_EQ(c.promotions(), 1);
  // ...but stagnation within the new solve still promotes.
  EXPECT_EQ(c.observe_residual(0.9), CycleAction::Promote);
  EXPECT_EQ(c.current(), Precision::Fp64);
}

TEST(AdaptiveController, TransitionsAreDeterministic) {
  AdaptiveConfig cfg = enabled_config();
  cfg.start = Precision::Bf16;
  std::vector<OracleStep> steps = geometric_script(6, 0.3);
  steps[3].non_finite = true;
  PrecisionController a(cfg);
  PrecisionController b(cfg);
  (void)drive_oracle(a, steps);
  (void)drive_oracle(b, steps);
  EXPECT_EQ(a.promotions(), b.promotions());
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].rung, b.records()[i].rung);
    EXPECT_EQ(a.records()[i].precision, b.records()[i].precision);
    EXPECT_EQ(a.records()[i].inner_iterations, b.records()[i].inner_iterations);
  }
  EXPECT_EQ(a.realized(), b.realized());
}

TEST(AdaptiveController, RungSchedulesNarrowCoarseLevelsAboveBf16) {
  const PrecisionController c(enabled_config());
  EXPECT_EQ(c.schedule_for(0).to_string(), "bf16");       // 2-byte: uniform
  EXPECT_EQ(c.schedule_for(1).to_string(), "fp32,bf16");  // progressive
  EXPECT_EQ(c.schedule_for(2).to_string(), "fp64,bf16");
  EXPECT_EQ(c.schedule().to_string(), "fp32,bf16");  // current() = fp32
}

// ---------------------------------------------------------------------------
// Config validation, canonical form, env parsing

TEST(AdaptiveConfigTest, ValidateRejectsUnusableConfigs) {
  AdaptiveConfig non_widening = enabled_config();
  non_widening.ladder = {Precision::Fp32, Precision::Bf16};
  EXPECT_THROW(non_widening.validate(), Error);

  AdaptiveConfig no_patience = enabled_config();
  no_patience.patience = 0;
  EXPECT_THROW(no_patience.validate(), Error);

  AdaptiveConfig bad_threshold = enabled_config();
  bad_threshold.stagnation_threshold = 0.0;
  EXPECT_THROW(bad_threshold.validate(), Error);

  AdaptiveConfig off_ladder = enabled_config();
  off_ladder.start = Precision::Fp16;  // not on the default ladder
  EXPECT_THROW(off_ladder.validate(), Error);

  AdaptiveConfig empty = enabled_config();
  empty.ladder = {};
  EXPECT_THROW(empty.validate(), Error);
}

TEST(AdaptiveConfigTest, CanonicalStringIsStableAndDistinguishing) {
  AdaptiveConfig off;
  EXPECT_EQ(off.to_string(), "off");

  AdaptiveConfig on = enabled_config();
  EXPECT_EQ(on.to_string(),
            "on(th=0.001,pat=2,ladder=bf16,fp32,fp64,start=auto)");
  on.start = Precision::Bf16;
  EXPECT_EQ(on.to_string(),
            "on(th=0.001,pat=2,ladder=bf16,fp32,fp64,start=bf16)");

  AdaptiveConfig other = enabled_config();
  EXPECT_TRUE(enabled_config() == enabled_config());
  other.stagnation_threshold = 0.5;
  EXPECT_FALSE(other == enabled_config());
  EXPECT_NE(other.to_string(), enabled_config().to_string());
}

TEST(AdaptiveConfigTest, FromEnvReadsEveryKnob) {
  ::setenv("HPGMX_ADAPTIVE", "on", 1);
  ::setenv("HPGMX_ADAPTIVE_THRESHOLD", "0.5", 1);
  ::setenv("HPGMX_ADAPTIVE_PATIENCE", "3", 1);
  ::setenv("HPGMX_ADAPTIVE_LADDER", "fp16,fp32", 1);
  ::setenv("HPGMX_ADAPTIVE_START", "fp16", 1);
  const AdaptiveConfig cfg = AdaptiveConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.stagnation_threshold, 0.5);
  EXPECT_EQ(cfg.patience, 3);
  EXPECT_EQ((std::vector<Precision>{Precision::Fp16, Precision::Fp32}),
            cfg.ladder);
  EXPECT_EQ(cfg.start, Precision::Fp16);

  ::setenv("HPGMX_ADAPTIVE", "not-a-switch", 1);
  EXPECT_THROW((void)AdaptiveConfig::from_env(), Error);

  ::unsetenv("HPGMX_ADAPTIVE");
  ::unsetenv("HPGMX_ADAPTIVE_THRESHOLD");
  ::unsetenv("HPGMX_ADAPTIVE_PATIENCE");
  ::unsetenv("HPGMX_ADAPTIVE_LADDER");
  ::unsetenv("HPGMX_ADAPTIVE_START");
  const AdaptiveConfig defaults = AdaptiveConfig::from_env();
  EXPECT_FALSE(defaults.enabled);
  EXPECT_TRUE(defaults == AdaptiveConfig{});
}

// ---------------------------------------------------------------------------
// AdaptiveGmresIr driver (real solves)

ProblemHierarchy make_hierarchy(local_index_t n, const BenchParams& params) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = params.gamma;
  pp.scenario = params.scenario;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         params.mg_levels, params.coloring_seed);
}

/// The plain static GMRES-IR stack, exactly as SolverService built it
/// before the adaptive driver existed — the bit-identity reference.
SolveResult solve_static_reference(const ProblemHierarchy& h,
                                   const BenchParams& params,
                                   const SolverOptions& opts,
                                   std::span<double> x) {
  SelfComm comm;
  const std::vector<double> lvl_max = hierarchy_level_max_abs(h);
  const std::span<const double> lm(lvl_max.data(), lvl_max.size());
  ScaleGuard guard;
  guard.initialize(guard_reference_max_abs(lm, params.precision_schedule),
                   PrecisionTraits<float>::max_finite);
  Multigrid<float> mg(h, params, /*tag_base=*/100, guard.scale(),
                      params.precision_schedule, lm);
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           /*tag=*/90, 1.0, params.index_width);
  a_d.set_overlap(params.overlap);
  GmresIr<float> solver(&a_d, &mg.level_op(0), &mg, opts);
  solver.set_scale_guard(&guard);
  return solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()), x);
}

TEST(AdaptiveGmresIrTest, DisabledControllerIsBitIdenticalToTheStaticPath) {
  BenchParams params;
  params.mg_levels = 3;
  params.adaptive.enabled = false;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SolverOptions opts;
  opts.max_iters = 3000;
  opts.tol = 1e-9;
  opts.track_history = true;

  AlignedVector<double> x_ref(h.levels[0].b.size(), 0.0);
  const SolveResult ref = solve_static_reference(
      h, params, opts, {x_ref.data(), x_ref.size()});

  SelfComm comm;
  AlignedVector<double> x_ad(h.levels[0].b.size(), 0.0);
  AdaptiveGmresIr solver(h, params, opts);
  const SolveResult ad = solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      {x_ad.data(), x_ad.size()});

  ASSERT_TRUE(ref.converged());
  ASSERT_TRUE(ad.converged());
  EXPECT_EQ(ref.iterations, ad.iterations);
  EXPECT_EQ(ref.relative_residual, ad.relative_residual);
  ASSERT_EQ(ref.history.size(), ad.history.size());
  for (std::size_t i = 0; i < ref.history.size(); ++i) {
    EXPECT_EQ(ref.history[i], ad.history[i]) << "cycle " << i;
  }
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    ASSERT_EQ(x_ref[i], x_ad[i]) << "x[" << i << "]";
  }
  // The passive recorder still reports the realized format sequence.
  const std::vector<Precision> realized = solver.controller().realized();
  ASSERT_FALSE(realized.empty());
  for (const Precision p : realized) {
    EXPECT_EQ(p, Precision::Fp32);
  }
  EXPECT_EQ(solver.controller().promotions(), 0);
}

TEST(AdaptiveGmresIrTest, AdaptiveSolvesTheStressScenariosToTheDoubleTarget) {
  for (const Scenario sc :
       {Scenario::Poisson, Scenario::Jump, Scenario::Stretched}) {
    BenchParams params;
    params.mg_levels = 3;
    params.scenario = ScenarioSpec{};
    params.scenario.kind = sc;
    params.adaptive.enabled = true;  // defaults: auto start at the fp32 rung
    const ProblemHierarchy h = make_hierarchy(16, params);
    SolverOptions opts;
    opts.max_iters = 3000;
    opts.tol = 1e-9;

    SelfComm comm;
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    AdaptiveGmresIr solver(h, params, opts);
    const SolveResult res = solver.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        {x.data(), x.size()});
    EXPECT_TRUE(res.converged()) << scenario_name(sc);
    EXPECT_LE(res.relative_residual, 1e-9) << scenario_name(sc);
    EXPECT_FALSE(res.switch_requested);  // switches are serviced internally
    EXPECT_GT(solver.realized_bytes(), 0.0);
  }
}

TEST(AdaptiveGmresIrTest, Bf16StartIsRescuedByPromotionAndStillConverges) {
  BenchParams params;
  params.mg_levels = 3;
  params.adaptive.enabled = true;
  params.adaptive.start = Precision::Bf16;  // exploratory start
  const ProblemHierarchy h = make_hierarchy(16, params);
  SolverOptions opts;
  opts.max_iters = 3000;
  opts.tol = 1e-9;

  SelfComm comm;
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  AdaptiveGmresIr solver(h, params, opts);
  const SolveResult res = solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      {x.data(), x.size()});
  ASSERT_TRUE(res.converged());
  EXPECT_LE(res.relative_residual, 1e-9);
  // bf16's roundoff-limited contraction trips the stagnation threshold:
  // the solve starts in bf16 and finishes in a wider format.
  const std::vector<Precision> realized = solver.controller().realized();
  ASSERT_GE(realized.size(), 2u);
  EXPECT_EQ(realized.front(), Precision::Bf16);
  EXPECT_NE(realized.back(), Precision::Bf16);
  EXPECT_GE(solver.controller().promotions(), 1);
}

// ---------------------------------------------------------------------------
// Descriptor identity

TEST(AdaptiveDescriptor, AdaptiveConfigRoundTripsAndChangesTheHash) {
  ProblemDescriptor d;
  d.adaptive = AdaptiveConfig{};
  const std::uint64_t static_hash = d.hash();
  EXPECT_NE(d.canonical().find("adaptive=off"), std::string::npos);

  d.adaptive.enabled = true;
  d.adaptive.start = Precision::Bf16;
  EXPECT_NE(d.canonical().find("adaptive=on("), std::string::npos);
  EXPECT_NE(d.hash(), static_hash);  // adaptive runs cache separately

  const BenchParams p = d.to_bench_params();
  EXPECT_TRUE(p.adaptive == d.adaptive);
  const ProblemDescriptor back =
      ProblemDescriptor::from_bench_params(p, d.ranks, d.solver);
  EXPECT_TRUE(back.adaptive == d.adaptive);
  EXPECT_EQ(back.canonical(), d.canonical());
  EXPECT_EQ(back.hash(), d.hash());
}

}  // namespace
}  // namespace hpgmx
