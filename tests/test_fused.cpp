// Fused-pass and staged-16-bit-kernel tests.
//
// The fused solver kernels (spmv_dot, waxpby_norm, residual_norm2) promise
// more than numerical closeness: their reductions are ordered per-block
// partial sums, so the fused pass must equal the unfused sequence (kernel,
// then blocked dot in a second sweep) *bit for bit*, for every storage
// format and both operator paths — and therefore GmresIr/CG must produce
// bit-identical iterates whether SolverOptions::fused_passes is on or off.
//
// The staged 16-bit ELL SpMV / colored-GS paths are checked against the
// scalar promote-through-float loops they replace (same arithmetic order,
// so agreement up to FMA-contraction-level differences).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/cg.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/float16.hpp"
#include "precision/scale_guard.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"

namespace hpgmx {
namespace {

ProblemHierarchy make_hierarchy(local_index_t n, const BenchParams& params) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = params.gamma;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         params.mg_levels, params.coloring_seed);
}

/// Deterministic, well-scaled fill pattern representable in every format.
template <typename T>
void fill_pattern(std::span<T> v, float shift = 0.0f) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float f =
        0.5f + 0.03125f * static_cast<float>(i % 37) - 0.25f + shift;
    v[i] = static_cast<T>(f);
  }
}

template <typename T>
void expect_bitwise_equal(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)));
}

// ---------------------------------------------------------------------------
// Kernel-level fused == unfused, all formats x both operator paths

template <typename T>
class FusedKernels : public ::testing::Test {};

using AllFormats = ::testing::Types<double, float, bf16_t, fp16_t>;
TYPED_TEST_SUITE(FusedKernels, AllFormats);

TYPED_TEST(FusedKernels, SpmvDotBitIdenticalToUnfused) {
  using T = TypeParam;
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  for (const OptLevel opt : {OptLevel::Reference, OptLevel::Optimized}) {
    DistOperator<T> op(h.levels[0].a, h.structures[0].get(), opt, /*tag=*/10);
    AlignedVector<T> x1(static_cast<std::size_t>(op.vec_len()), T(0));
    fill_pattern(std::span<T>(x1.data(), x1.size()));
    AlignedVector<T> x2 = x1;
    AlignedVector<T> y1(static_cast<std::size_t>(op.num_owned()), T(0));
    AlignedVector<T> y2 = y1;
    const double fused =
        op.spmv_dot(comm, std::span<T>(x1.data(), x1.size()),
                    std::span<T>(y1.data(), y1.size()));
    const double unfused =
        op.spmv_then_dot(comm, std::span<T>(x2.data(), x2.size()),
                         std::span<T>(y2.data(), y2.size()));
    EXPECT_EQ(fused, unfused) << "opt=" << opt_level_name(opt);
    expect_bitwise_equal(std::span<const T>(y1.data(), y1.size()),
                         std::span<const T>(y2.data(), y2.size()));
    EXPECT_TRUE(std::isfinite(fused));
    EXPECT_NE(fused, 0.0);
  }
}

TYPED_TEST(FusedKernels, ResidualNormBitIdenticalToUnfused) {
  using T = TypeParam;
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  for (const OptLevel opt : {OptLevel::Reference, OptLevel::Optimized}) {
    DistOperator<T> op(h.levels[0].a, h.structures[0].get(), opt, /*tag=*/20);
    AlignedVector<T> x1(static_cast<std::size_t>(op.vec_len()), T(0));
    fill_pattern(std::span<T>(x1.data(), x1.size()));
    AlignedVector<T> x2 = x1;
    AlignedVector<T> b(static_cast<std::size_t>(op.num_owned()), T(0));
    fill_pattern(std::span<T>(b.data(), b.size()), 0.125f);
    AlignedVector<T> r1(static_cast<std::size_t>(op.num_owned()), T(0));
    AlignedVector<T> r2 = r1;
    const double fused = op.residual_norm2(
        comm, std::span<const T>(b.data(), b.size()),
        std::span<T>(x1.data(), x1.size()), std::span<T>(r1.data(), r1.size()));
    const double unfused = op.residual_then_norm2(
        comm, std::span<const T>(b.data(), b.size()),
        std::span<T>(x2.data(), x2.size()), std::span<T>(r2.data(), r2.size()));
    EXPECT_EQ(fused, unfused) << "opt=" << opt_level_name(opt);
    expect_bitwise_equal(std::span<const T>(r1.data(), r1.size()),
                         std::span<const T>(r2.data(), r2.size()));
    EXPECT_GE(fused, 0.0);
  }
}

TYPED_TEST(FusedKernels, WaxpbyNormBitIdenticalToUnfused) {
  using T = TypeParam;
  const std::size_t n = 5000;  // several partial blocks plus a ragged tail
  AlignedVector<T> x(n, T(0)), y(n, T(0)), w1(n, T(0)), w2(n, T(0));
  fill_pattern(std::span<T>(x.data(), n));
  fill_pattern(std::span<T>(y.data(), n), 0.0625f);
  const double fused =
      waxpby_norm(1.75, std::span<const T>(x.data(), n), -0.5,
                  std::span<const T>(y.data(), n), std::span<T>(w1.data(), n));
  waxpby(1.75, std::span<const T>(x.data(), n), -0.5,
         std::span<const T>(y.data(), n), std::span<T>(w2.data(), n));
  const double unfused = dot_span_blocked(std::span<const T>(w2.data(), n),
                                          std::span<const T>(w2.data(), n));
  EXPECT_EQ(fused, unfused);
  expect_bitwise_equal(std::span<const T>(w1.data(), n),
                       std::span<const T>(w2.data(), n));
}

TYPED_TEST(FusedKernels, WaxpbyNormAllowsInPlaceUpdate) {
  using T = TypeParam;
  const std::size_t n = 3000;
  AlignedVector<T> r1(n, T(0)), ap(n, T(0));
  fill_pattern(std::span<T>(r1.data(), n));
  fill_pattern(std::span<T>(ap.data(), n), 0.25f);
  AlignedVector<T> r2 = r1;
  // In-place r ← r − alpha·Ap (w aliases x), CG's fused residual update.
  const double fused = waxpby_norm(1.0, std::span<const T>(r1.data(), n),
                                   -0.25, std::span<const T>(ap.data(), n),
                                   std::span<T>(r1.data(), n));
  waxpby(1.0, std::span<const T>(r2.data(), n), -0.25,
         std::span<const T>(ap.data(), n), std::span<T>(r2.data(), n));
  const double unfused = dot_span_blocked(std::span<const T>(r2.data(), n),
                                          std::span<const T>(r2.data(), n));
  EXPECT_EQ(fused, unfused);
  expect_bitwise_equal(std::span<const T>(r1.data(), n),
                       std::span<const T>(r2.data(), n));
}

// ---------------------------------------------------------------------------
// Staged 16-bit kernels vs the scalar promote-through-float loops

template <typename T>
class Staged16 : public ::testing::Test {};

using SixteenBit = ::testing::Types<bf16_t, fp16_t>;
TYPED_TEST_SUITE(Staged16, SixteenBit);

TYPED_TEST(Staged16, EllSpmvMatchesScalarPath) {
  using T = TypeParam;
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  const CsrMatrix<T> a = h.levels[0].a.convert<T>();
  const EllMatrix<T> e = ell_from_csr(a);
  AlignedVector<T> x(static_cast<std::size_t>(e.num_cols), T(0));
  fill_pattern(std::span<T>(x.data(), x.size()));
  AlignedVector<T> y_staged(static_cast<std::size_t>(e.num_rows), T(0));
  AlignedVector<T> y_scalar(static_cast<std::size_t>(e.num_rows), T(0));
  ell_spmv(e, std::span<const T>(x.data(), x.size()),
           std::span<T>(y_staged.data(), y_staged.size()));
  ell_spmv_scalar(e, std::span<const T>(x.data(), x.size()),
                  std::span<T>(y_scalar.data(), y_scalar.size()));
  // Same accumulation order in fp32; only FMA-contraction details may
  // differ before the final 16-bit rounding, so allow one output ulp.
  const float ulp = static_cast<float>(PrecisionTraits<T>::unit_roundoff) * 2;
  for (std::size_t i = 0; i < y_staged.size(); ++i) {
    const float s = static_cast<float>(y_staged[i]);
    const float c = static_cast<float>(y_scalar[i]);
    ASSERT_NEAR(s, c, std::max(std::abs(c), 1.0f) * 2 * ulp) << "row " << i;
  }
}

TYPED_TEST(Staged16, ColoredGsMatchesScalarPath) {
  using T = TypeParam;
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  const CsrMatrix<T> a = h.levels[0].a.convert<T>();
  const EllMatrix<T> e = ell_from_csr(a);
  const OperatorStructure& st = *h.structures[0];
  AlignedVector<T> r(static_cast<std::size_t>(e.num_rows), T(0));
  fill_pattern(std::span<T>(r.data(), r.size()));
  AlignedVector<T> z_staged(static_cast<std::size_t>(e.num_cols), T(0));
  AlignedVector<T> z_scalar(static_cast<std::size_t>(e.num_cols), T(0));
  gs_sweep_colored_ell(e, st.colors, std::span<const T>(r.data(), r.size()),
                       std::span<T>(z_staged.data(), z_staged.size()));
  gs_sweep_colored_ell_scalar(e, st.colors,
                              std::span<const T>(r.data(), r.size()),
                              std::span<T>(z_scalar.data(), z_scalar.size()));
  const float ulp = static_cast<float>(PrecisionTraits<T>::unit_roundoff) * 2;
  for (std::size_t i = 0; i < z_staged.size(); ++i) {
    const float s = static_cast<float>(z_staged[i]);
    const float c = static_cast<float>(z_scalar[i]);
    // GS feeds rounded updates forward color by color, so contraction
    // differences can compound a little across colors.
    ASSERT_NEAR(s, c, std::max(std::abs(c), 1.0f) * 8 * ulp) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Solver-level: fused on/off must not change one bit of the iteration

template <typename TLow>
SolveResult solve_ir_toggle(const ProblemHierarchy& h, bool fused,
                            std::span<double> x) {
  BenchParams params;
  SelfComm comm;
  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;
  opts.track_history = true;
  opts.fused_passes = fused;
  ScaleGuard guard;
  guard.initialize(hierarchy_max_abs_value(h),
                   PrecisionTraits<TLow>::max_finite);
  Multigrid<TLow> mg(h, params, /*tag_base=*/100, guard.scale());
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           /*tag=*/90);
  GmresIr<TLow> solver(&a_d, &mg.level_op(0), &mg, opts);
  solver.set_scale_guard(&guard);
  return solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()), x);
}

template <typename TLow>
void expect_gmres_ir_toggle_bit_identical() {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x_fused(h.levels[0].b.size(), 0.0);
  AlignedVector<double> x_unfused(h.levels[0].b.size(), 0.0);
  const SolveResult a = solve_ir_toggle<TLow>(
      h, /*fused=*/true, std::span<double>(x_fused.data(), x_fused.size()));
  const SolveResult b = solve_ir_toggle<TLow>(
      h, /*fused=*/false,
      std::span<double>(x_unfused.data(), x_unfused.size()));
  EXPECT_TRUE(a.converged());
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.relative_residual, b.relative_residual);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i], b.history[i]) << "outer step " << i;
  }
  expect_bitwise_equal(
      std::span<const double>(x_fused.data(), x_fused.size()),
      std::span<const double>(x_unfused.data(), x_unfused.size()));
}

TEST(FusedToggle, GmresIrBitIdenticalFp32) {
  expect_gmres_ir_toggle_bit_identical<float>();
}

TEST(FusedToggle, GmresIrBitIdenticalBf16) {
  expect_gmres_ir_toggle_bit_identical<bf16_t>();
}

TEST(FusedToggle, GmresIrBitIdenticalFp16) {
  expect_gmres_ir_toggle_bit_identical<fp16_t>();
}

TEST(FusedToggle, CgBitIdenticalDouble) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  AlignedVector<double> x1(h.levels[0].b.size(), 0.0);
  AlignedVector<double> x2(h.levels[0].b.size(), 0.0);
  SolveResult res[2];
  for (int i = 0; i < 2; ++i) {
    SolverOptions opts;
    opts.max_iters = 200;
    opts.tol = 1e-9;
    opts.track_history = true;
    opts.fused_passes = (i == 0);
    SymmetricMultigrid<double> mg(h, params);
    ConjugateGradient<double> cg(&mg.level_op(0), &mg, opts);
    AlignedVector<double>& x = (i == 0) ? x1 : x2;
    res[i] = cg.solve(
        comm,
        std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
        std::span<double>(x.data(), x.size()));
  }
  EXPECT_TRUE(res[0].converged());
  EXPECT_EQ(res[0].iterations, res[1].iterations);
  EXPECT_EQ(res[0].relative_residual, res[1].relative_residual);
  ASSERT_EQ(res[0].history.size(), res[1].history.size());
  for (std::size_t i = 0; i < res[0].history.size(); ++i) {
    EXPECT_EQ(res[0].history[i], res[1].history[i]);
  }
  expect_bitwise_equal(std::span<const double>(x1.data(), x1.size()),
                       std::span<const double>(x2.data(), x2.size()));
}

// Reference path (CSR + blocking halo) through the solver toggle too: the
// spmv_dot fused kernel has a different implementation there.
TEST(FusedToggle, CgBitIdenticalFloatReferencePath) {
  BenchParams params;
  params.opt = OptLevel::Reference;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  AlignedVector<float> b(h.levels[0].b.size(), 0.0f);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>(h.levels[0].b[i]);
  }
  AlignedVector<float> x1(b.size(), 0.0f);
  AlignedVector<float> x2(b.size(), 0.0f);
  SolveResult res[2];
  for (int i = 0; i < 2; ++i) {
    SolverOptions opts;
    opts.max_iters = 200;
    opts.tol = 1e-7;
    opts.fused_passes = (i == 0);
    SymmetricMultigrid<float> mg(h, params);
    ConjugateGradient<float> cg(&mg.level_op(0), &mg, opts);
    AlignedVector<float>& x = (i == 0) ? x1 : x2;
    res[i] = cg.solve(comm, std::span<const float>(b.data(), b.size()),
                      std::span<float>(x.data(), x.size()));
  }
  EXPECT_TRUE(res[0].converged());
  EXPECT_EQ(res[0].iterations, res[1].iterations);
  EXPECT_EQ(res[0].relative_residual, res[1].relative_residual);
  expect_bitwise_equal(std::span<const float>(x1.data(), x1.size()),
                       std::span<const float>(x2.data(), x2.size()));
}

// ---------------------------------------------------------------------------
// The blocked reductions themselves are thread-count independent

TEST(BlockedReduction, MatchesSerialBlockedSum) {
  const std::size_t n = 10000;
  AlignedVector<float> x(n, 0.0f), y(n, 0.0f);
  fill_pattern(std::span<float>(x.data(), n));
  fill_pattern(std::span<float>(y.data(), n), 0.5f);
  // Serial re-computation of the same ordered per-block partials.
  double expected = 0.0;
  for (std::size_t b0 = 0; b0 < n; b0 += detail::kReduceBlock) {
    double p = 0.0;
    const std::size_t b1 = std::min(n, b0 + detail::kReduceBlock);
    for (std::size_t i = b0; i < b1; ++i) {
      p = std::fma(static_cast<double>(x[i]), static_cast<double>(y[i]), p);
    }
    expected += p;
  }
  EXPECT_EQ(expected, dot_span_blocked(std::span<const float>(x.data(), n),
                                       std::span<const float>(y.data(), n)));
}

}  // namespace
}  // namespace hpgmx
