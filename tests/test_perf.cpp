// Tests for src/perf: motif stats, trace recorder (overlap math, timeline),
// roofline arithmetic, machine-model weak-scaling projection, bandwidth
// probe sanity.
#include <gtest/gtest.h>

#include "perf/bandwidth.hpp"
#include "perf/machine_model.hpp"
#include "perf/motifs.hpp"
#include "perf/roofline.hpp"
#include "perf/trace.hpp"

namespace hpgmx {
namespace {

TEST(MotifStats, AccumulateAndMerge) {
  MotifStats a;
  a.add(Motif::GS, 1.0, 100);
  a.add(Motif::GS, 0.5, 50);
  a.add(Motif::SpMV, 2.0, 400);
  EXPECT_DOUBLE_EQ(a.seconds(Motif::GS), 1.5);
  EXPECT_EQ(a.flops(Motif::GS), 150u);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 3.5);
  EXPECT_EQ(a.total_flops(), 550u);

  MotifStats b;
  b.add(Motif::Ortho, 1.0, 1000);
  b.merge(a);
  EXPECT_EQ(b.total_flops(), 1550u);
  EXPECT_DOUBLE_EQ(b.seconds(Motif::GS), 1.5);

  b.reset();
  EXPECT_EQ(b.total_flops(), 0u);
}

TEST(MotifStats, GflopsComputation) {
  MotifStats s;
  s.add(Motif::SpMV, 2.0, 4'000'000'000ull);
  EXPECT_DOUBLE_EQ(s.gflops(Motif::SpMV), 2.0);
  EXPECT_DOUBLE_EQ(s.gflops(Motif::GS), 0.0);  // no time charged
}

TEST(ScopedMotif, ChargesElapsedTime) {
  MotifStats s;
  {
    ScopedMotif t(&s, Motif::Restrict, 42);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + i;
    }
  }
  EXPECT_GT(s.seconds(Motif::Restrict), 0.0);
  EXPECT_EQ(s.flops(Motif::Restrict), 42u);
}

TEST(ScopedMotif, NullStatsIsSafe) {
  ScopedMotif t(nullptr, Motif::GS, 1);
  // must not crash on destruction
}

TEST(MotifNames, AllDistinct) {
  for (int i = 0; i < kNumMotifs; ++i) {
    for (int j = i + 1; j < kNumMotifs; ++j) {
      EXPECT_NE(motif_name(static_cast<Motif>(i)),
                motif_name(static_cast<Motif>(j)));
    }
  }
}

TEST(TraceRecorder, RecordsAndFilters) {
  TraceRecorder rec;
  rec.record(0, "compute", "gs", 0.0, 1.0);
  rec.record(1, "compute", "gs", 0.0, 2.0);
  rec.record(0, "halo", "wait", 0.5, 0.7);
  EXPECT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events_for(0).size(), 2u);
  EXPECT_EQ(rec.events_for(1).size(), 1u);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, OverlapFractionFullyHidden) {
  TraceRecorder rec;
  rec.record(0, "halo", "xfer", 1.0, 2.0);
  rec.record(0, "compute", "interior", 0.5, 3.0);
  EXPECT_DOUBLE_EQ(rec.overlap_fraction(0, "halo", "compute"), 1.0);
}

TEST(TraceRecorder, OverlapFractionPartial) {
  TraceRecorder rec;
  rec.record(0, "halo", "xfer", 0.0, 2.0);
  rec.record(0, "compute", "interior", 1.0, 3.0);
  EXPECT_DOUBLE_EQ(rec.overlap_fraction(0, "halo", "compute"), 0.5);
}

TEST(TraceRecorder, OverlapHandlesFragmentedIntervals) {
  TraceRecorder rec;
  rec.record(0, "halo", "a", 0.0, 1.0);
  rec.record(0, "halo", "b", 2.0, 3.0);
  rec.record(0, "compute", "c", 0.5, 2.5);
  // halo busy 2.0s; intersected: [0.5,1.0] + [2.0,2.5] = 1.0s.
  EXPECT_DOUBLE_EQ(rec.overlap_fraction(0, "halo", "compute"), 0.5);
  EXPECT_DOUBLE_EQ(rec.lane_busy_seconds(0, "halo"), 2.0);
}

TEST(TraceRecorder, BusySecondsMergesOverlappingEvents) {
  TraceRecorder rec;
  rec.record(0, "compute", "a", 0.0, 2.0);
  rec.record(0, "compute", "b", 1.0, 3.0);  // overlaps a
  EXPECT_DOUBLE_EQ(rec.lane_busy_seconds(0, "compute"), 3.0);
}

TEST(TraceRecorder, TimelineRendersLanes) {
  TraceRecorder rec;
  rec.record(0, "compute", "gs", 0.0, 1.0);
  rec.record(0, "halo", "wait", 0.0, 0.5);
  const std::string tl = rec.render_timeline(0, 40);
  EXPECT_NE(tl.find("compute"), std::string::npos);
  EXPECT_NE(tl.find("halo"), std::string::npos);
  EXPECT_NE(tl.find('g'), std::string::npos);  // event glyphs
  EXPECT_EQ(rec.render_timeline(5), "(no events)\n");
}

TEST(Roofline, AttainableIsMinOfRoofs) {
  EXPECT_DOUBLE_EQ(roofline_attainable_gflops(0.25, 1600, 23900), 400.0);
  EXPECT_DOUBLE_EQ(roofline_attainable_gflops(100.0, 1600, 23900), 23900.0);
  // Bandwidth-only roof when peak unknown.
  EXPECT_DOUBLE_EQ(roofline_attainable_gflops(100.0, 1600, 0), 160000.0);
}

TEST(Roofline, SampleDerivedQuantities) {
  KernelSample s{"spmv", 2e9, 16e9, 2.0};
  EXPECT_DOUBLE_EQ(s.arithmetic_intensity(), 0.125);
  EXPECT_DOUBLE_EQ(s.achieved_gflops(), 1.0);
  EXPECT_DOUBLE_EQ(s.achieved_gbs(), 8.0);
}

TEST(Roofline, ReportContainsAllKernels) {
  std::vector<KernelSample> samples{{"k1", 1e9, 8e9, 1.0},
                                    {"k2", 2e9, 8e9, 1.0}};
  const std::string rep = roofline_report(samples, 100.0, 0.0);
  EXPECT_NE(rep.find("k1"), std::string::npos);
  EXPECT_NE(rep.find("k2"), std::string::npos);
}

TEST(MachineModel, PresetsAreOrdered) {
  const MachineModel frontier = MachineModel::frontier_gcd();
  const MachineModel k80 = MachineModel::k80();
  EXPECT_GT(frontier.mem_bw_gbs, k80.mem_bw_gbs);
  EXPECT_EQ(frontier.devices_per_node, 8);
  // Every preset must have a positive collective-latency coefficient; the
  // magnitudes are machine-specific calibrations, not ordered quantities
  // (Frontier's encodes full-system straggler effects at 75k ranks).
  EXPECT_GT(frontier.allreduce_alpha_us, 0.0);
  EXPECT_GT(k80.allreduce_alpha_us, 0.0);
}

TEST(WeakScaling, EfficiencyDecaysWithLogP) {
  const MachineModel m = MachineModel::frontier_gcd();
  IterationProfile prof;
  prof.local_seconds = 5e-3;
  prof.flops = 1e9;
  prof.allreduces = 3;         // CGS2 batch + reorth + norm per iteration
  prof.allreduce_bytes = 240;  // 30 doubles
  prof.halo_messages = 26;
  prof.halo_bytes = 1e6;
  prof.overlap_efficiency = 0.98;

  const auto points = project_weak_scaling(m, prof, {1, 8, 512, 9408});
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].efficiency, points[i - 1].efficiency);
    EXPECT_GT(points[i].efficiency, 0.3);
  }
  EXPECT_EQ(points[3].ranks, 9408LL * 8);
}

TEST(WeakScaling, PerfectOverlapAtOneNodeStillPaysAllreduce) {
  const MachineModel m = MachineModel::frontier_gcd();
  IterationProfile prof;
  prof.local_seconds = 1e-3;
  prof.flops = 1e8;
  prof.allreduces = 1;
  prof.overlap_efficiency = 1.0;
  const auto pts = project_weak_scaling(m, prof, {1, 1024});
  EXPECT_GT(pts[0].seconds_per_iter, prof.local_seconds);  // log2(8) stages
  EXPECT_GT(pts[1].seconds_per_iter, pts[0].seconds_per_iter);
}

TEST(Bandwidth, ProbeReturnsPlausibleNumbers) {
  const BandwidthResult r = measure_stream_bandwidth(1u << 18, 2);
  EXPECT_GT(r.triad_gbs, 0.1);
  EXPECT_LT(r.triad_gbs, 10000.0);
  EXPECT_GT(r.copy_gbs, 0.1);
}

}  // namespace
}  // namespace hpgmx
