// Build-skeleton smoke test: the minimal end-to-end path through the
// library — generate the stencil problem, build the shared hierarchy,
// solve with double GMRES and with mixed GMRES-IR — mirroring
// examples/quickstart.cpp. Its job is to catch wiring regressions in the
// build system (missing TU, broken include path, unlinked dependency)
// with one fast test, independent of the per-module suites.
#include <gtest/gtest.h>

#include <span>

#include "comm/comm.hpp"
#include "core/benchmark.hpp"
#include "core/gmres.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"

namespace hpgmx {
namespace {

TEST(BuildSmoke, QuickstartPipelineConverges) {
  constexpr local_index_t n = 16;

  ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  BenchParams params;
  params.nx = params.ny = params.nz = n;

  ProblemHierarchy hierarchy =
      build_hierarchy(generate_problem(pgrid, 0, pp), params.mg_levels,
                      params.coloring_seed);
  ASSERT_EQ(hierarchy.levels[0].a.num_rows, n * n * n);
  ASSERT_EQ(hierarchy.levels.size(), static_cast<std::size_t>(params.mg_levels));

  SelfComm comm;
  SolverOptions opts;
  opts.restart = params.restart_length;
  opts.max_iters = 500;
  opts.tol = 1e-9;

  const std::span<const double> b(hierarchy.levels[0].b.data(),
                                  hierarchy.levels[0].b.size());

  Multigrid<double> mg_d(hierarchy, params);
  Gmres<double> gmres_d(&mg_d.level_op(0), &mg_d, opts);
  AlignedVector<double> x_d(b.size(), 0.0);
  const SolveResult res_d =
      gmres_d.solve(comm, b, std::span<double>(x_d.data(), x_d.size()));
  EXPECT_TRUE(res_d.converged());
  EXPECT_LE(res_d.relative_residual, opts.tol);

  Multigrid<float> mg_f(hierarchy, params);
  DistOperator<double> a_d(hierarchy.levels[0].a, hierarchy.structures[0].get(),
                           params.opt, /*tag=*/90);
  GmresIr<float> gmres_ir(&a_d, &mg_f.level_op(0), &mg_f, opts);
  AlignedVector<double> x_ir(b.size(), 0.0);
  const SolveResult res_ir =
      gmres_ir.solve(comm, b, std::span<double>(x_ir.data(), x_ir.size()));
  EXPECT_TRUE(res_ir.converged());
  EXPECT_LE(res_ir.relative_residual, opts.tol);
}

}  // namespace
}  // namespace hpgmx
