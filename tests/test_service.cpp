// Service-layer tests: descriptor hashing, operator cache (hit identity,
// LRU order, stats), solve queue (async tickets, concurrent-submit
// determinism, drain-on-shutdown, submit-after-shutdown), many-RHS solves
// (bitwise vs independent single-RHS solves), and the scenario generators
// (symmetry, diagonal dominance, Poisson bit-identity, coarsening).
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "comm/chaos.hpp"
#include "comm/comm.hpp"
#include "core/cg.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "grid/scenario.hpp"
#include "service/solver_service.hpp"

namespace hpgmx {
namespace {

ServiceConfig svc_config(int workers, std::size_t queue,
                         std::size_t cache) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue;
  cfg.cache_entries = cache;
  // Ambient HPGMX_CHAOS runs the whole service suite under fault injection
  // (the sanitizer lanes do this); every assertion below must hold anyway,
  // because chaos perturbs timing and ordering, never values.
  cfg.chaos = ChaosConfig::from_env();
  return cfg;
}

ProblemDescriptor small_descriptor() {
  ProblemDescriptor d;
  d.nx = d.ny = d.nz = 8;
  d.mg_levels = 3;
  d.tol = 1e-9;
  d.max_iters = 2000;
  return d;
}

// ---------------------------------------------------------------- descriptor

TEST(Descriptor, HashIsStableAcrossCallsAndCopies) {
  const ProblemDescriptor a = small_descriptor();
  const ProblemDescriptor b = small_descriptor();
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), a.hash());
}

TEST(Descriptor, EveryFieldChangesTheCanonicalForm) {
  const ProblemDescriptor base = small_descriptor();
  std::vector<ProblemDescriptor> variants;
  auto vary = [&](auto&& mutate) {
    ProblemDescriptor d = base;
    mutate(d);
    variants.push_back(d);
  };
  vary([](ProblemDescriptor& d) { d.nx = 16; });
  vary([](ProblemDescriptor& d) { d.ranks = 2; });
  vary([](ProblemDescriptor& d) { d.mg_levels = 2; });
  vary([](ProblemDescriptor& d) { d.gamma = 0.25; });
  vary([](ProblemDescriptor& d) { d.coloring_seed = 7; });
  vary([](ProblemDescriptor& d) { d.opt = OptLevel::Reference; });
  vary([](ProblemDescriptor& d) { d.index_width = IndexWidth::Idx32; });
  vary([](ProblemDescriptor& d) { d.solver = SolverKind::Cg; });
  vary([](ProblemDescriptor& d) { d.inner_precision = Precision::Bf16; });
  vary([](ProblemDescriptor& d) {
    d.schedule = *parse_precision_schedule("fp32,bf16");
  });
  vary([](ProblemDescriptor& d) { d.tol = 1e-6; });
  vary([](ProblemDescriptor& d) { d.max_iters = 3; });
  vary([](ProblemDescriptor& d) { d.restart = 10; });
  vary([](ProblemDescriptor& d) { d.fused = false; });
  vary([](ProblemDescriptor& d) { d.overlap = false; });
  vary([](ProblemDescriptor& d) { d.batched_reduce = false; });
  vary([](ProblemDescriptor& d) { d.scenario.kind = Scenario::Jump; });
  vary([](ProblemDescriptor& d) {
    d.scenario.kind = Scenario::Jump;
    d.scenario.jump_ratio = 2.0;
  });
  vary([](ProblemDescriptor& d) {
    d.scenario.kind = Scenario::Stretched;
    d.scenario.stretch = 1.0625;
  });
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i].canonical(), base.canonical()) << "variant " << i;
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(variants[i].canonical(), variants[j].canonical())
          << "variants " << i << " vs " << j;
    }
  }
}

TEST(Descriptor, SolverKindParsesRoundTrip) {
  for (const SolverKind k :
       {SolverKind::Gmres, SolverKind::GmresIr, SolverKind::Cg}) {
    EXPECT_EQ(parse_solver_kind(solver_kind_name(k)), k);
  }
  EXPECT_FALSE(parse_solver_kind("bicgstab").has_value());
}

// --------------------------------------------------------------------- cache

TEST(OperatorCache, HitReturnsTheSameEntryBitIdentically) {
  OperatorCache cache(4);
  const ProblemDescriptor d = small_descriptor();
  bool hit = true;
  const auto first = cache.get_or_build(d, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_build(d, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same operator

  // And the cached build is bit-identical to an independent fresh build.
  const auto fresh = OperatorCache::build_entry(d);
  ASSERT_EQ(first->hierarchy.size(), fresh->hierarchy.size());
  const CsrMatrix<double>& a = first->hierarchy[0].levels[0].a;
  const CsrMatrix<double>& b = fresh->hierarchy[0].levels[0].a;
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(a.values[i], b.values[i]) << "nnz " << i;
  }
  EXPECT_EQ(first->level_max, fresh->level_max);
}

TEST(OperatorCache, EvictsInLruOrder) {
  OperatorCache cache(2);
  ProblemDescriptor a = small_descriptor();
  ProblemDescriptor b = small_descriptor();
  b.coloring_seed = 1;
  ProblemDescriptor c = small_descriptor();
  c.coloring_seed = 2;

  bool hit = false;
  (void)cache.get_or_build(a, &hit);
  (void)cache.get_or_build(b, &hit);
  (void)cache.get_or_build(a, &hit);  // touch a: b is now least recent
  EXPECT_TRUE(hit);
  (void)cache.get_or_build(c, &hit);  // capacity 2: evicts b, keeps a+c
  EXPECT_FALSE(hit);
  (void)cache.get_or_build(a, &hit);
  EXPECT_TRUE(hit);
  (void)cache.get_or_build(c, &hit);
  EXPECT_TRUE(hit);
  (void)cache.get_or_build(b, &hit);
  EXPECT_FALSE(hit);  // b was the LRU victim
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(OperatorCache, StatsTrackHitsMissesAndBytes) {
  OperatorCache cache(4);
  const ProblemDescriptor d = small_descriptor();
  (void)cache.get_or_build(d);
  (void)cache.get_or_build(d);
  (void)cache.get_or_build(d);
  const OperatorCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
  // 8^3 fine level alone is 512 rows x 27 nnz x 8 B ≈ 110 KiB.
  EXPECT_GT(s.bytes, 100000u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// --------------------------------------------------------------------- queue

TEST(SolverService, SecondSubmitOfIdenticalDescriptorHitsTheCache) {
  SolverService service(svc_config(1, 4, 4));
  SolveRequest req;
  req.desc = small_descriptor();
  const ServiceResult first = service.submit(req).get();
  const ServiceResult second = service.submit(req).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(first.all_converged());
  EXPECT_TRUE(second.all_converged());
  // Identical request, identical (bitwise) result.
  ASSERT_EQ(first.rhs.size(), second.rhs.size());
  EXPECT_EQ(first.rhs[0].iterations, second.rhs[0].iterations);
  EXPECT_EQ(first.rhs[0].relative_residual, second.rhs[0].relative_residual);
  EXPECT_LT(second.setup_seconds, first.setup_seconds);
}

TEST(SolverService, ConcurrentSubmitsAreDeterministic) {
  // A serial reference result, then the same request submitted 8 times from
  // 4 threads onto 4 workers: every ticket must reproduce it bitwise.
  SolveRequest req;
  req.desc = small_descriptor();
  req.num_rhs = 2;
  req.rhs_spread = 0.5;
  SolveRequest other;  // interleave a second descriptor for extra contention
  other.desc = small_descriptor();
  other.desc.gamma = 0.125;

  ServiceResult reference;
  {
    SolverService serial(svc_config(1, 4, 4));
    reference = serial.solve_now(req);
  }
  ASSERT_TRUE(reference.all_converged());

  SolverService service(svc_config(4, 16, 4));
  std::vector<std::future<ServiceResult>> tickets(8);
  std::vector<std::future<ServiceResult>> noise(4);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      tickets[static_cast<std::size_t>(2 * t)] = service.submit(req);
      noise[static_cast<std::size_t>(t)] = service.submit(other);
      tickets[static_cast<std::size_t>(2 * t + 1)] = service.submit(req);
    });
  }
  for (std::thread& s : submitters) {
    s.join();
  }
  for (auto& ticket : tickets) {
    const ServiceResult r = ticket.get();
    ASSERT_EQ(r.rhs.size(), reference.rhs.size());
    for (std::size_t j = 0; j < r.rhs.size(); ++j) {
      EXPECT_EQ(r.rhs[j].iterations, reference.rhs[j].iterations);
      EXPECT_EQ(r.rhs[j].relative_residual,
                reference.rhs[j].relative_residual);
    }
    EXPECT_EQ(r.descriptor_hash, reference.descriptor_hash);
  }
  for (auto& ticket : noise) {
    EXPECT_TRUE(ticket.get().all_converged());
  }
}

TEST(SolverService, BoundedQueueStillCompletesEverything) {
  // capacity 1 on a single worker: submits block (backpressure) instead of
  // failing, and every ticket still resolves.
  SolverService service(svc_config(1, 1, 2));
  SolveRequest req;
  req.desc = small_descriptor();
  std::vector<std::future<ServiceResult>> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(service.submit(req));
  }
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.get().all_converged());
  }
}

TEST(SolverService, ShutdownDrainsOutstandingRequests) {
  SolveRequest req;
  req.desc = small_descriptor();
  std::vector<std::future<ServiceResult>> tickets;
  SolverService service(svc_config(1, 8, 2));
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(service.submit(req));
  }
  service.shutdown();  // must not abandon queued work
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.get().all_converged());
  }
  EXPECT_THROW((void)service.submit(req), Error);
}

TEST(SolverService, MultiRankRequestMatchesSingleRankIterations) {
  SolveRequest req;
  req.desc = small_descriptor();
  SolverService service(svc_config(1, 4, 4));
  const ServiceResult one = service.solve_now(req);
  req.desc.ranks = 2;
  const ServiceResult two = service.solve_now(req);
  EXPECT_TRUE(one.all_converged());
  EXPECT_TRUE(two.all_converged());
  // Different global problems (2x the domain) — just sanity, not equality.
  EXPECT_GT(two.rhs[0].iterations, 0);
}

TEST(SolverService, CgAndGmresKindsSolveTheSymmetricProblem) {
  SolverService service(svc_config(1, 4, 4));
  for (const SolverKind kind :
       {SolverKind::Gmres, SolverKind::Cg, SolverKind::GmresIr}) {
    SolveRequest req;
    req.desc = small_descriptor();
    req.desc.solver = kind;
    const ServiceResult r = service.solve_now(req);
    EXPECT_TRUE(r.all_converged()) << solver_kind_name(kind);
    EXPECT_LT(r.rhs[0].relative_residual, 1e-9) << solver_kind_name(kind);
  }
}

TEST(SolverService, GmresIrReportsTheRealizedPrecisionSequence) {
  SolverService service(svc_config(1, 4, 4));

  // Static GMRES-IR: every executed inner cycle ran the configured format.
  SolveRequest req;
  req.desc = small_descriptor();
  req.desc.solver = SolverKind::GmresIr;
  req.num_rhs = 2;
  const ServiceResult stat = service.solve_now(req);
  EXPECT_TRUE(stat.all_converged());
  ASSERT_FALSE(stat.realized_precisions.empty());
  for (const Precision p : stat.realized_precisions) {
    EXPECT_EQ(p, req.desc.inner_precision);
  }

  // Adaptive GMRES-IR: a different cache identity, and the realized
  // sequence reports what the controller ran (the auto start rung here).
  req.desc.adaptive.enabled = true;
  EXPECT_NE(req.desc.hash(), small_descriptor().hash());
  const ServiceResult adap = service.solve_now(req);
  EXPECT_TRUE(adap.all_converged());
  ASSERT_FALSE(adap.realized_precisions.empty());
  EXPECT_EQ(adap.realized_precisions.front(), Precision::Fp32);

  // Plain double GMRES has no inner-format trajectory to report.
  req.desc.adaptive = AdaptiveConfig{};
  req.desc.solver = SolverKind::Gmres;
  const ServiceResult plain = service.solve_now(req);
  EXPECT_TRUE(plain.all_converged());
  EXPECT_TRUE(plain.realized_precisions.empty());
}

// ----------------------------------------------------------------- many-RHS

TEST(ManyRhs, GmresIrBatchMatchesIndependentSolvesBitwise) {
  const ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  BenchParams params;
  const ProblemHierarchy h =
      build_hierarchy(generate_problem(pgrid, 0, pp), 3, params.coloring_seed);
  const std::vector<double> lvl_max = hierarchy_level_max_abs(h);
  SolverOptions opts;
  opts.max_iters = 2000;
  opts.tol = 1e-9;
  SelfComm comm;
  const int batch = 3;
  const auto n = h.levels[0].b.size();

  const auto make_rhs = [&](MultiVector<double>& rhs) {
    for (int j = 0; j < batch; ++j) {
      set_column_scaled(
          rhs, j,
          std::span<const double>(h.levels[0].b.data(), n),
          1.0 + 0.5 * j);
    }
  };
  const auto make_stack = [&](auto&& run) {
    ScaleGuard guard;
    guard.initialize(
        guard_reference_max_abs(
            std::span<const double>(lvl_max.data(), lvl_max.size()),
            params.precision_schedule),
        PrecisionTraits<float>::max_finite);
    Multigrid<float> mg_low(h, params, /*tag_base=*/100, guard.scale(),
                            params.precision_schedule,
                            std::span<const double>(lvl_max.data(),
                                                    lvl_max.size()));
    DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                             /*tag=*/90, /*value_scale=*/1.0,
                             params.index_width);
    a_d.set_overlap(params.overlap);
    GmresIr<float> solver(&a_d, &mg_low.level_op(0), &mg_low, opts);
    solver.set_scale_guard(&guard);
    run(solver);
  };

  MultiVector<double> rhs(static_cast<local_index_t>(n), batch);
  MultiVector<double> x_batch(static_cast<local_index_t>(n), batch);
  make_rhs(rhs);
  std::vector<SolveResult> batch_results;
  make_stack([&](GmresIr<float>& solver) {
    batch_results = solver.solve_many(comm, rhs, x_batch);
  });
  ASSERT_EQ(batch_results.size(), static_cast<std::size_t>(batch));

  for (int j = 0; j < batch; ++j) {
    MultiVector<double> b1(static_cast<local_index_t>(n), batch);
    make_rhs(b1);
    AlignedVector<double> x(n, 0.0);
    SolveResult single;
    make_stack([&](GmresIr<float>& solver) {
      single = solver.solve(comm, b1.column(j),
                            std::span<double>(x.data(), x.size()));
    });
    EXPECT_TRUE(single.converged());
    EXPECT_EQ(single.iterations, batch_results[static_cast<std::size_t>(j)]
                                     .iterations) << "rhs " << j;
    EXPECT_EQ(single.relative_residual,
              batch_results[static_cast<std::size_t>(j)].relative_residual)
        << "rhs " << j;
    const auto xb = x_batch.column(j);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(x[i], xb[i]) << "rhs " << j << " entry " << i;
    }
  }
}

TEST(ManyRhs, CgBatchMatchesIndependentSolvesBitwise) {
  const ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  BenchParams params;
  const ProblemHierarchy h =
      build_hierarchy(generate_problem(pgrid, 0, pp), 3, params.coloring_seed);
  SolverOptions opts;
  opts.max_iters = 2000;
  opts.tol = 1e-9;
  SelfComm comm;
  const int batch = 2;
  const auto n = h.levels[0].b.size();

  MultiVector<double> rhs(static_cast<local_index_t>(n), batch);
  MultiVector<double> x_batch(static_cast<local_index_t>(n), batch);
  for (int j = 0; j < batch; ++j) {
    set_column_scaled(rhs, j,
                      std::span<const double>(h.levels[0].b.data(), n),
                      1.0 + 0.25 * j);
  }
  std::vector<SolveResult> batch_results;
  {
    SymmetricMultigrid<double> mg(h, params);
    ConjugateGradient<double> cg(&mg.level_op(0), &mg, opts);
    batch_results = cg.solve_many(comm, rhs, x_batch);
  }
  for (int j = 0; j < batch; ++j) {
    SymmetricMultigrid<double> mg(h, params);
    ConjugateGradient<double> cg(&mg.level_op(0), &mg, opts);
    AlignedVector<double> x(n, 0.0);
    const SolveResult single = cg.solve(
        comm, rhs.column(j), std::span<double>(x.data(), x.size()));
    EXPECT_TRUE(single.converged());
    EXPECT_EQ(single.iterations,
              batch_results[static_cast<std::size_t>(j)].iterations);
    const auto xb = x_batch.column(j);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(x[i], xb[i]) << "rhs " << j << " entry " << i;
    }
  }
}

// ---------------------------------------------------------------- scenarios

ScenarioSpec test_spec(Scenario kind) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.jump_period = 2;  // several blocks inside an 8^3 test grid
  return spec;
}

TEST(Scenarios, ParseAndNameRoundTrip) {
  for (const Scenario sc : scenario_catalog()) {
    EXPECT_EQ(parse_scenario(scenario_name(sc)), sc);
  }
  EXPECT_EQ(parse_scenario("convection-diffusion"), Scenario::ConvDiff);
  EXPECT_FALSE(parse_scenario("helmholtz").has_value());
}

TEST(Scenarios, OperatorsAreSymmetricAtGammaZero) {
  const ProcessGrid pgrid(1, 1, 1);
  for (const Scenario sc : scenario_catalog()) {
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 8;
    pp.scenario = test_spec(sc);
    const Problem prob = generate_problem(pgrid, 0, pp);
    std::map<std::pair<local_index_t, local_index_t>, double> entries;
    for (local_index_t row = 0; row < prob.a.num_rows; ++row) {
      for (std::int64_t e = prob.a.row_ptr[static_cast<std::size_t>(row)];
           e < prob.a.row_ptr[static_cast<std::size_t>(row) + 1]; ++e) {
        entries[{row, prob.a.col_idx[static_cast<std::size_t>(e)]}] =
            prob.a.values[static_cast<std::size_t>(e)];
      }
    }
    for (const auto& [ij, v] : entries) {
      const auto it = entries.find({ij.second, ij.first});
      ASSERT_NE(it, entries.end()) << scenario_name(sc);
      ASSERT_EQ(v, it->second)
          << scenario_name(sc) << " (" << ij.first << "," << ij.second << ")";
    }
  }
}

TEST(Scenarios, OperatorsAreDiagonallyDominant) {
  const ProcessGrid pgrid(1, 1, 1);
  for (const Scenario sc : scenario_catalog()) {
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 8;
    pp.scenario = test_spec(sc);
    const Problem prob = generate_problem(pgrid, 0, pp);
    bool strict_somewhere = false;
    for (local_index_t row = 0; row < prob.a.num_rows; ++row) {
      double diag = 0.0;
      double off = 0.0;
      for (std::int64_t e = prob.a.row_ptr[static_cast<std::size_t>(row)];
           e < prob.a.row_ptr[static_cast<std::size_t>(row) + 1]; ++e) {
        const double v = prob.a.values[static_cast<std::size_t>(e)];
        if (prob.a.col_idx[static_cast<std::size_t>(e)] == row) {
          diag = v;
        } else {
          off += std::abs(v);
        }
      }
      ASSERT_GE(diag, off * (1.0 - 1e-12))
          << scenario_name(sc) << " row " << row;
      strict_somewhere = strict_somewhere || diag > off * (1.0 + 1e-12);
    }
    // Boundary rows keep their out-of-domain couplings on the diagonal.
    EXPECT_TRUE(strict_somewhere) << scenario_name(sc);
  }
}

TEST(Scenarios, DefaultPoissonReproducesTheBenchmarkMatrixBitwise) {
  const ProcessGrid pgrid(1, 1, 1);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 6;
  pp.gamma = 0.3;
  const Problem prob = generate_problem(pgrid, 0, pp);  // default scenario
  const GridBox& box = prob.box;
  for (local_index_t row = 0; row < prob.a.num_rows; ++row) {
    const local_index_t i = row % box.nx;
    const local_index_t j = (row / box.nx) % box.ny;
    const local_index_t k = row / (box.nx * box.ny);
    const global_index_t my_gid = box.global_id(i, j, k);
    for (std::int64_t e = prob.a.row_ptr[static_cast<std::size_t>(row)];
         e < prob.a.row_ptr[static_cast<std::size_t>(row) + 1]; ++e) {
      const local_index_t col = prob.a.col_idx[static_cast<std::size_t>(e)];
      const double v = prob.a.values[static_cast<std::size_t>(e)];
      const global_index_t col_gid = box.global_id(
          col % box.nx, (col / box.nx) % box.ny, col / (box.nx * box.ny));
      if (col == row) {
        ASSERT_EQ(v, 26.0);
      } else if (col_gid > my_gid) {
        ASSERT_EQ(v, -1.0 - pp.gamma);
      } else {
        ASSERT_EQ(v, -1.0 + pp.gamma);
      }
    }
  }
}

TEST(Scenarios, CoarsenedSpecHalvesPeriodsAndSquaresStretch) {
  ScenarioSpec spec = test_spec(Scenario::Jump);
  spec.jump_period = 8;
  EXPECT_EQ(spec.coarsened().jump_period, 4);
  EXPECT_EQ(spec.coarsened().coarsened().coarsened().coarsened().jump_period,
            1);  // clamps at 1
  ScenarioSpec st = test_spec(Scenario::Stretched);
  st.stretch = 1.25;
  EXPECT_EQ(st.coarsened().stretch, 1.25 * 1.25);
  // Coarse problems in a hierarchy carry the coarsened spec.
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  pp.scenario = spec;
  const ProblemHierarchy h =
      build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp), 3, 42);
  ASSERT_GE(h.levels.size(), 2u);
  EXPECT_EQ(h.levels[1].scenario.jump_period, 4);
}

TEST(Scenarios, GmresIrConvergesOnEveryScenario) {
  SolverService service(svc_config(1, 4, 8));
  for (const Scenario sc : scenario_catalog()) {
    SolveRequest req;
    req.desc = small_descriptor();
    req.desc.scenario = test_spec(sc);
    req.desc.gamma = sc == Scenario::ConvDiff ? 0.0625 : 0.0;
    const ServiceResult r = service.solve_now(req);
    EXPECT_TRUE(r.all_converged()) << scenario_name(sc);
    EXPECT_LT(r.rhs[0].relative_residual, 1e-9) << scenario_name(sc);
  }
}

}  // namespace
}  // namespace hpgmx
