// Progressive-precision multigrid tests: PrecisionSchedule parsing
// (round-trips, rejection of unknown formats), the schedule-driven
// heterogeneous V-cycle (mixed fp32,bf16 matching uniform fp32 within
// tolerance; the degenerate uniform schedule reproducing the single-format
// path exactly), per-level ScaleGuard equilibration for fp16 coarse levels
// on a badly scaled system, and the per-level V-cycle bytes model.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/benchmark.hpp"
#include "core/bytes_model.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/precision.hpp"
#include "precision/scale_guard.hpp"

namespace hpgmx {
namespace {

// ---------------------------------------------------------------------------
// Schedule parsing

TEST(PrecisionSchedule, ParsesAndRoundTrips) {
  for (const char* s :
       {"fp32", "fp32,bf16", "fp32,bf16,bf16,fp16", "fp64,fp64", "fp16"}) {
    const auto parsed = parse_precision_schedule(s);
    ASSERT_TRUE(parsed.has_value()) << s;
    EXPECT_EQ(parsed->to_string(), s);
    // to_string -> parse is the identity too.
    const auto reparsed = parse_precision_schedule(parsed->to_string());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->levels, parsed->levels);
  }
}

TEST(PrecisionSchedule, AcceptsAliasesAndNormalizes) {
  const auto parsed = parse_precision_schedule("float,bfloat16,half,double");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_string(), "fp32,bf16,fp16,fp64");
}

TEST(PrecisionSchedule, RejectsUnknownFormatsAndMalformedLists) {
  for (const char* s : {"", "fp32,", ",fp32", "fp32,,bf16", "fp32,int8",
                        "fp42", "fp32;bf16", "fp32, bf16"}) {
    EXPECT_FALSE(parse_precision_schedule(s).has_value()) << s;
  }
}

TEST(PrecisionSchedule, ClampsBeyondItsLastEntry) {
  const auto s = parse_precision_schedule("fp32,bf16");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->entry(), Precision::Fp32);
  EXPECT_EQ(s->at(1), Precision::Bf16);
  EXPECT_EQ(s->at(2), Precision::Bf16);  // extends with the last entry
  EXPECT_EQ(s->at(7), Precision::Bf16);
  EXPECT_FALSE(s->uniform());
  EXPECT_TRUE(parse_precision_schedule("bf16,bf16")->uniform());
}

TEST(PrecisionSchedule, EnvUnsetAndEmptyYieldTheUniformSchedule) {
  // Unset and set-but-empty both mean "no override": the empty schedule,
  // which keeps the single-format inner_precision path.
  unsetenv("HPGMX_TEST_SCHEDULE");
  EXPECT_TRUE(schedule_from_env("HPGMX_TEST_SCHEDULE").empty());
  setenv("HPGMX_TEST_SCHEDULE", "", /*overwrite=*/1);
  EXPECT_TRUE(schedule_from_env("HPGMX_TEST_SCHEDULE").empty());
  unsetenv("HPGMX_TEST_SCHEDULE");
}

TEST(PrecisionSchedule, EnvParsingIsCaseInsensitive) {
  setenv("HPGMX_TEST_SCHEDULE", "FP32,Bf16,BFLOAT16,Half", /*overwrite=*/1);
  const PrecisionSchedule s = schedule_from_env("HPGMX_TEST_SCHEDULE");
  EXPECT_EQ(s.to_string(), "fp32,bf16,bf16,fp16");  // normalized lowercase
  unsetenv("HPGMX_TEST_SCHEDULE");
}

TEST(PrecisionSchedule, EnvParsingNamesTheAcceptedTokens) {
  setenv("HPGMX_TEST_SCHEDULE", "fp32,notaformat", /*overwrite=*/1);
  try {
    (void)schedule_from_env("HPGMX_TEST_SCHEDULE");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fp64|fp32|bf16|fp16"), std::string::npos) << what;
    EXPECT_NE(what.find("notaformat"), std::string::npos) << what;
  }
  unsetenv("HPGMX_TEST_SCHEDULE");
}

TEST(PrecisionSchedule, PrecisionEnvErrorNamesTheAcceptedTokens) {
  setenv("HPGMX_TEST_PRECISION", "fp31", /*overwrite=*/1);
  try {
    (void)precision_from_env("HPGMX_TEST_PRECISION", Precision::Fp32);
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fp64|fp32|bf16|fp16"),
              std::string::npos)
        << e.what();
  }
  unsetenv("HPGMX_TEST_PRECISION");
}

TEST(PrecisionSchedule, BenchParamsKeepInnerPrecisionInSync) {
  BenchParams p;
  p.set_precision_schedule(*parse_precision_schedule("bf16,fp16"));
  EXPECT_EQ(p.inner_precision, Precision::Bf16);
  p.set_precision_schedule({});  // empty schedule leaves the format alone
  EXPECT_EQ(p.inner_precision, Precision::Bf16);
}

TEST(PrecisionSchedule, PrecisionOfMapsTypesBack) {
  EXPECT_EQ(precision_of_v<double>, Precision::Fp64);
  EXPECT_EQ(precision_of_v<float>, Precision::Fp32);
  EXPECT_EQ(precision_of_v<bf16_t>, Precision::Bf16);
  EXPECT_EQ(precision_of_v<fp16_t>, Precision::Fp16);
  EXPECT_EQ(precision_bytes(Precision::Fp64), 8u);
  EXPECT_EQ(precision_bytes(Precision::Fp32), 4u);
  EXPECT_EQ(precision_bytes(Precision::Bf16), 2u);
  EXPECT_EQ(precision_bytes(Precision::Fp16), 2u);
}

// ---------------------------------------------------------------------------
// Scheduled V-cycle inside GMRES-IR

ProblemHierarchy make_hierarchy(local_index_t n, const BenchParams& params) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = params.gamma;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         params.mg_levels, params.coloring_seed);
}

/// Multiply the whole system (A, b) by `s` on every level: the solution is
/// unchanged (still the ones vector) but the matrix entries leave fp16's
/// finite range when s is large.
void scale_system(ProblemHierarchy& h, double s) {
  for (Problem& lvl : h.levels) {
    for (double& v : lvl.a.values) {
      v *= s;
    }
    for (double& v : lvl.a.diag) {
      v *= s;
    }
    for (double& v : lvl.b) {
      v *= s;
    }
  }
}

template <typename TLow>
SolveResult solve_scheduled(const ProblemHierarchy& h, const BenchParams& params,
                            const PrecisionSchedule& schedule,
                            std::span<double> x, int max_iters = 3000) {
  SelfComm comm;
  SolverOptions opts;
  opts.max_iters = max_iters;
  opts.tol = 1e-9;
  opts.track_history = true;
  const std::vector<double> lvl_max = hierarchy_level_max_abs(h);
  ScaleGuard guard;
  guard.initialize(
      guard_reference_max_abs(
          std::span<const double>(lvl_max.data(), lvl_max.size()), schedule),
      PrecisionTraits<TLow>::max_finite);
  Multigrid<TLow> mg(h, params, /*tag_base=*/100, guard.scale(), schedule,
                     std::span<const double>(lvl_max.data(), lvl_max.size()));
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           /*tag=*/90);
  GmresIr<TLow> solver(&a_d, &mg.level_op(0), &mg, opts);
  solver.set_scale_guard(&guard);
  return solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()), x);
}

TEST(ScheduledMultigrid, UniformScheduleReproducesTheSingleFormatPath) {
  // The degenerate schedule (every level fp32) must be bit-identical to the
  // empty-schedule (legacy single-template) construction: same kernels, same
  // scales, same arithmetic — so identical iteration counts and history.
  BenchParams params;
  params.mg_levels = 3;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x_legacy(h.levels[0].b.size(), 0.0);
  AlignedVector<double> x_uniform(h.levels[0].b.size(), 0.0);
  const SolveResult legacy = solve_scheduled<float>(
      h, params, PrecisionSchedule{}, {x_legacy.data(), x_legacy.size()});
  const SolveResult uniform = solve_scheduled<float>(
      h, params, *parse_precision_schedule("fp32,fp32,fp32"),
      {x_uniform.data(), x_uniform.size()});
  ASSERT_TRUE(legacy.converged());
  ASSERT_TRUE(uniform.converged());
  EXPECT_EQ(legacy.iterations, uniform.iterations);
  ASSERT_EQ(legacy.history.size(), uniform.history.size());
  for (std::size_t i = 0; i < legacy.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy.history[i], uniform.history[i]);
  }
  for (std::size_t i = 0; i < x_legacy.size(); ++i) {
    ASSERT_EQ(x_legacy[i], x_uniform[i]);
  }
}

TEST(ScheduledMultigrid, MixedBf16CoarseMatchesUniformFp32WithinTolerance) {
  // Two-level V-cycle with a bf16 coarse level: the coarse grid carries a
  // fraction of the work and (per Carson's balancing argument) a fraction
  // of the error, so the outer convergence must stay close to uniform fp32.
  BenchParams params;
  params.mg_levels = 2;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x_f32(h.levels[0].b.size(), 0.0);
  AlignedVector<double> x_mixed(h.levels[0].b.size(), 0.0);
  const SolveResult f32 = solve_scheduled<float>(
      h, params, PrecisionSchedule{}, {x_f32.data(), x_f32.size()});
  const SolveResult mixed = solve_scheduled<float>(
      h, params, *parse_precision_schedule("fp32,bf16"),
      {x_mixed.data(), x_mixed.size()});
  ASSERT_TRUE(f32.converged());
  ASSERT_TRUE(mixed.converged());
  EXPECT_LT(mixed.relative_residual, 1e-9);
  // Residual histories track each other: no more than 50% extra outer
  // refinement steps, and the final accuracy is the same 1e-9 target.
  EXPECT_LE(mixed.history.size(),
            (f32.history.size() * 3 + 1) / 2 + 1);
  for (const double v : x_mixed) {
    ASSERT_NEAR(v, 1.0, 1e-5);  // exact solution is the ones vector
  }
}

TEST(ScheduledMultigrid, Fp16CoarseLevelsGuardedOnBadlyScaledSystem) {
  // Matrix entries ~2.6e10 overflow fp16 (max finite 65504). The per-level
  // equilibration demotes the fp16 coarse levels at their own power-of-two
  // scale, while the fp32 fine level needs none — the schedule must
  // converge to the 1e-9 double target where uniform unguarded fp16 dies.
  BenchParams params;
  ProblemHierarchy h = make_hierarchy(16, params);
  scale_system(h, 1.0e9);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solve_scheduled<float>(
      h, params, *parse_precision_schedule("fp32,fp16"),
      {x.data(), x.size()});
  ASSERT_TRUE(res.converged());
  EXPECT_LT(res.relative_residual, 1e-9);
  for (const double v : x) {
    ASSERT_NEAR(v, 1.0, 1e-5);
  }
}

TEST(ScheduledMultigrid, LevelPrecisionAndScalesAreReported) {
  BenchParams params;
  ProblemHierarchy h = make_hierarchy(16, params);
  scale_system(h, 1.0e9);
  const std::vector<double> lvl_max = hierarchy_level_max_abs(h);
  const auto schedule = *parse_precision_schedule("fp32,fp16,fp16");
  Multigrid<float> mg(h, params, /*tag_base=*/100, /*value_scale=*/1.0,
                      schedule,
                      std::span<const double>(lvl_max.data(), lvl_max.size()));
  ASSERT_GE(mg.num_levels(), 2);
  EXPECT_EQ(mg.level_precision(0), Precision::Fp32);
  EXPECT_EQ(mg.level_precision(1), Precision::Fp16);
  // The fine level demotes at exactly value_scale (α_0 normalized to 1);
  // the fp16 levels carry a power-of-two equilibration shrinking 2.6e10
  // into range.
  EXPECT_DOUBLE_EQ(mg.level_scale(0), 1.0);
  EXPECT_LT(mg.level_scale(1), 1.0);
  const double log2_scale = std::log2(mg.level_scale(1));
  EXPECT_DOUBLE_EQ(log2_scale, std::floor(log2_scale));  // power of two
  EXPECT_LE(lvl_max[1] * mg.level_scale(1),
            PrecisionTraits<fp16_t>::max_finite);
  // level_op typed at a non-matching level throws instead of mis-casting.
  EXPECT_NO_THROW((void)mg.level_op(0));
  EXPECT_THROW((void)mg.level_op(1), Error);
}

TEST(ScheduledMultigrid, GuardAndLevelScalesComposeToOneEquilibrationEach) {
  // A hierarchy whose *coarse* maxima dominate: if the ScaleGuard were
  // still initialized from the hierarchy-wide maximum AND the coarse level
  // carried its own equilibration, the two would compose to α² and crush
  // the coarse operator into fp16's subnormal range. With the guard
  // anchored at the fine level (guard_reference_max_abs), every level's
  // composed demotion scale lands its max|A| once, near the O(1) target.
  BenchParams params;
  params.mg_levels = 2;
  ProblemHierarchy h = make_hierarchy(16, params);
  for (std::size_t l = 1; l < h.levels.size(); ++l) {
    for (double& v : h.levels[l].a.values) {
      v *= 1.0e9;
    }
    for (double& v : h.levels[l].a.diag) {
      v *= 1.0e9;
    }
  }
  const std::vector<double> lvl_max = hierarchy_level_max_abs(h);
  ASSERT_GT(lvl_max[1], 1e9);  // coarse dominates
  const auto schedule = *parse_precision_schedule("fp16,fp16");
  ScaleGuard guard;
  guard.initialize(
      guard_reference_max_abs(
          std::span<const double>(lvl_max.data(), lvl_max.size()), schedule),
      PrecisionTraits<fp16_t>::max_finite);
  // Fine max |a_ij| = 26 fits fp16 directly: the guard stays at 1.
  EXPECT_DOUBLE_EQ(guard.scale(), 1.0);
  Multigrid<fp16_t> mg(h, params, /*tag_base=*/100, guard.scale(), schedule,
                       std::span<const double>(lvl_max.data(),
                                               lvl_max.size()));
  for (int l = 0; l < mg.num_levels(); ++l) {
    const double stored_max =
        lvl_max[static_cast<std::size_t>(l)] * guard.scale() *
        mg.level_scale(l);
    EXPECT_LE(stored_max, PrecisionTraits<fp16_t>::max_finite);
    // Never double-scaled into the subnormal drain (fp16 min normal 2^-14).
    EXPECT_GT(stored_max, 0.25);
  }
  // The dominated coarse level was equilibrated toward the O(1) target.
  EXPECT_LE(lvl_max[1] * guard.scale() * mg.level_scale(1), 1.0);
}

TEST(ScheduledMultigrid, EntryFormatMustMatchTheInstantiation) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  EXPECT_THROW(Multigrid<float>(h, params, /*tag_base=*/100,
                                /*value_scale=*/1.0,
                                *parse_precision_schedule("bf16,bf16")),
               Error);
}

// ---------------------------------------------------------------------------
// Per-level bytes model

TEST(ScheduleBytesModel, UniformVcycleMatchesPerMotifFormulas) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  const std::vector<MgLevelDims> dims = hierarchy_level_dims(h);
  const std::vector<std::size_t> widths =
      schedule_value_bytes({}, static_cast<int>(dims.size()), Precision::Fp32);
  double expected = 0.0;
  for (std::size_t l = 0; l < dims.size(); ++l) {
    const bool coarsest = (l + 1 == dims.size());
    const int sweeps = coarsest ? params.coarse_sweeps
                                : params.pre_smooth_sweeps +
                                      params.post_smooth_sweeps;
    expected += sweeps * gs_sweep_bytes<float>(dims[l].nnz, dims[l].rows);
    if (!coarsest) {
      expected += fused_restrict_bytes<float>(dims[l].nnz_coarse_rows,
                                              dims[l].rows,
                                              dims[l].coarse_rows);
      expected += prolong_bytes(dims[l].coarse_rows, sizeof(float),
                                sizeof(float));
    }
  }
  const double modeled = mg_vcycle_bytes(
      std::span<const MgLevelDims>(dims.data(), dims.size()),
      std::span<const std::size_t>(widths.data(), widths.size()),
      params.pre_smooth_sweeps, params.post_smooth_sweeps,
      params.coarse_sweeps);
  EXPECT_DOUBLE_EQ(modeled, expected);
}

TEST(ScheduleBytesModel, ProgressiveScheduleStreamsStrictlyFewerBytes) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  const std::vector<MgLevelDims> dims = hierarchy_level_dims(h);
  const int nl = static_cast<int>(dims.size());
  ASSERT_GE(nl, 2);
  const auto bytes_for = [&](const PrecisionSchedule& s) {
    const std::vector<std::size_t> widths =
        schedule_value_bytes(s, nl, Precision::Fp32);
    return mg_vcycle_bytes(
        std::span<const MgLevelDims>(dims.data(), dims.size()),
        std::span<const std::size_t>(widths.data(), widths.size()),
        params.pre_smooth_sweeps, params.post_smooth_sweeps,
        params.coarse_sweeps);
  };
  const double uniform_fp32 = bytes_for(*parse_precision_schedule("fp32"));
  const double progressive =
      bytes_for(*parse_precision_schedule("fp32,bf16,bf16"));
  const double uniform_bf16 = bytes_for(*parse_precision_schedule("bf16"));
  EXPECT_LT(progressive, uniform_fp32);
  EXPECT_LT(uniform_bf16, progressive);
}

}  // namespace
}  // namespace hpgmx
