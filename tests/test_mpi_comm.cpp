// MpiComm integration test — a plain executable (no GoogleTest: each MPI
// process must run the whole program, and gtest's per-process result
// aggregation adds nothing under mpirun). Launched by CTest as
//   mpirun -np 4 test_mpi_comm
// when HPGMX_WITH_MPI=ON. Every check is an HPGMX_CHECK: a failure throws,
// the process exits nonzero, and mpirun propagates the failure to CTest.
//
// Coverage: point-to-point (blocking + nonblocking) on a ring, the
// determinism contract of the collectives (rank-ordered reduction, checked
// against a manually gathered oracle), 2-byte bf16 payloads, the halo
// exchange, overlap on/off bit-identity of a real distributed SpMV, and a
// GMRES-IR solve whose iterates all ranks must agree on.

#ifndef HPGMX_WITH_MPI

#include <cstdio>

int main() {
  std::printf("test_mpi_comm: built without HPGMX_WITH_MPI; nothing to do\n");
  return 0;
}

#else

#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <span>
#include <vector>

#include "base/error.hpp"
#include "comm/comm_world.hpp"
#include "comm/halo.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "core/params.hpp"
#include "grid/problem.hpp"
#include "precision/float16.hpp"

namespace hpgmx {
namespace {

void test_ring_point_to_point(Comm& comm) {
  const int rank = comm.rank();
  const int p = comm.size();
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;

  // Blocking ring: post the receive via irecv first so the pattern is
  // deadlock-free at any size.
  std::vector<double> in(3, -1.0);
  Request rr = comm.irecv(left, 7, std::span<double>(in.data(), in.size()));
  const std::vector<double> out{1.0 * rank, 2.0 * rank, 3.0 * rank};
  comm.send(right, 7, std::span<const double>(out.data(), out.size()));
  rr.wait();
  for (int i = 0; i < 3; ++i) {
    HPGMX_CHECK(in[static_cast<std::size_t>(i)] == (i + 1.0) * left);
  }

  // Fully nonblocking, two tags in flight at once.
  std::vector<std::int32_t> in_a(1, -1), in_b(1, -1);
  Request ra = comm.irecv(left, 8, std::span<std::int32_t>(in_a.data(), 1));
  Request rb = comm.irecv(left, 9, std::span<std::int32_t>(in_b.data(), 1));
  const std::vector<std::int32_t> out_a{10 + rank}, out_b{20 + rank};
  Request sa =
      comm.isend(right, 8, std::span<const std::int32_t>(out_a.data(), 1));
  Request sb =
      comm.isend(right, 9, std::span<const std::int32_t>(out_b.data(), 1));
  ra.wait();
  rb.wait();
  sa.wait();
  sb.wait();
  HPGMX_CHECK(in_a[0] == 10 + left);
  HPGMX_CHECK(in_b[0] == 20 + left);
}

void test_deterministic_collectives(Comm& comm) {
  const int rank = comm.rank();
  const int p = comm.size();

  // Oracle: gather every rank's contribution, reduce in rank order on the
  // host side, and demand the allreduce report exactly those bits. The
  // pattern that would fail under raw MPI_Allreduce (unspecified order) on
  // values chosen to make fp addition order-sensitive.
  const double mine = (rank % 2 == 0 ? 1.0e16 : 1.0) + 0.001 * rank;
  std::vector<double> all(static_cast<std::size_t>(p), 0.0);
  comm.allgather(std::span<const double>(&mine, 1),
                 std::span<double>(all.data(), all.size()));
  double oracle = 0.0;
  for (int r = 0; r < p; ++r) {
    oracle += all[static_cast<std::size_t>(r)];
  }
  const double reduced = comm.allreduce_scalar(mine, ReduceOp::Sum);
  HPGMX_CHECK_MSG(std::memcmp(&reduced, &oracle, sizeof(double)) == 0,
                  "allreduce is not the rank-ordered sum");

  // Elementwise multi-double reduction (the batched-solver payload).
  const std::vector<double> vec{mine, static_cast<double>(rank)};
  std::vector<double> vec_out(2, 0.0);
  comm.allreduce(std::span<const double>(vec.data(), vec.size()),
                 std::span<double>(vec_out.data(), vec_out.size()),
                 ReduceOp::Sum);
  HPGMX_CHECK(std::memcmp(&vec_out[0], &oracle, sizeof(double)) == 0);
  HPGMX_CHECK(vec_out[1] == static_cast<double>(p * (p - 1) / 2));

  // Max, int64, and the 2-byte formats through the registered type_ops.
  HPGMX_CHECK(comm.allreduce_scalar(static_cast<std::int64_t>(rank),
                                    ReduceOp::Max) ==
              static_cast<std::int64_t>(p - 1));
  const bf16_t half_val(static_cast<float>(rank + 1));
  const bf16_t half_max = comm.allreduce_scalar(half_val, ReduceOp::Max);
  HPGMX_CHECK(static_cast<float>(half_max) == static_cast<float>(p));

  // Bcast from the last rank.
  std::vector<std::int64_t> payload(4, rank == p - 1 ? 77 : -1);
  comm.bcast(std::span<std::int64_t>(payload.data(), payload.size()), p - 1);
  for (const std::int64_t v : payload) {
    HPGMX_CHECK(v == 77);
  }
  comm.barrier();
}

HaloPattern ring_pattern(int rank, int p, local_index_t n_owned) {
  HaloPattern pat;
  pat.n_owned = n_owned;
  pat.n_halo = 0;
  const int left = (rank + p - 1) % p;
  const int right = (rank + 1) % p;
  HaloNeighbor nb_l;
  nb_l.rank = left;
  nb_l.send_indices = {0};
  nb_l.recv_offset = pat.n_halo;
  nb_l.recv_count = 1;
  pat.n_halo += 1;
  pat.neighbors.push_back(std::move(nb_l));
  HaloNeighbor nb_r;
  nb_r.rank = right;
  nb_r.send_indices = {n_owned - 1};
  nb_r.recv_offset = pat.n_halo;
  nb_r.recv_count = 1;
  pat.n_halo += 1;
  pat.neighbors.push_back(std::move(nb_r));
  return pat;
}

void test_halo_exchange_bf16(Comm& comm) {
  const int rank = comm.rank();
  const int p = comm.size();
  const local_index_t n = 4;
  const HaloPattern pat = ring_pattern(rank, p, n);
  HaloExchange<bf16_t> hx(&pat, /*tag=*/31);
  AlignedVector<bf16_t> x(static_cast<std::size_t>(pat.vector_length()),
                          bf16_t(0.0F));
  for (int round = 0; round < 5; ++round) {
    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] =
          bf16_t(static_cast<float>(8 * rank + round + i));
    }
    hx.begin(comm, std::span<bf16_t>(x.data(), x.size()));
    HPGMX_CHECK(hx.in_flight());
    hx.finish(comm);
    const int left = (rank + p - 1) % p;
    const int right = (rank + 1) % p;
    HPGMX_CHECK(static_cast<float>(x[static_cast<std::size_t>(n)]) ==
                static_cast<float>(8 * left + round + (n - 1)));
    HPGMX_CHECK(static_cast<float>(x[static_cast<std::size_t>(n) + 1]) ==
                static_cast<float>(8 * right + round));
  }
}

void test_overlap_bit_identity(Comm& comm, const ProcessGrid& pgrid) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;
  const Problem prob = generate_problem(pgrid, comm.rank(), pp);
  const OperatorStructure s = build_structure(prob, 42);
  DistOperator<double> op_on(prob.a, &s, OptLevel::Optimized, /*tag=*/51);
  DistOperator<double> op_off(prob.a, &s, OptLevel::Optimized, /*tag=*/61);
  op_on.set_overlap(true);
  op_off.set_overlap(false);

  const auto n = static_cast<std::size_t>(op_on.vec_len());
  const auto owned = static_cast<std::size_t>(op_on.num_owned());
  AlignedVector<double> x_on(n, 0.0), x_off(n, 0.0);
  for (std::size_t i = 0; i < owned; ++i) {
    x_on[i] = x_off[i] = 0.01 * static_cast<double>(i) + comm.rank();
  }
  AlignedVector<double> y_on(n, 0.0), y_off(n, 0.0);
  op_on.spmv(comm, std::span<double>(x_on.data(), n),
             std::span<double>(y_on.data(), n));
  op_off.spmv(comm, std::span<double>(x_off.data(), n),
              std::span<double>(y_off.data(), n));
  HPGMX_CHECK_MSG(
      std::memcmp(y_on.data(), y_off.data(), n * sizeof(double)) == 0,
      "overlapped SpMV diverged from the blocking exchange under MPI");
}

void test_gmres_ir_solve(Comm& comm, const ProcessGrid& pgrid) {
  BenchParams params;
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  const ProblemHierarchy h =
      build_hierarchy(generate_problem(pgrid, comm.rank(), pp),
                      params.mg_levels, params.coloring_seed);
  Multigrid<float> mg(h, params);
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           /*tag=*/90);
  SolverOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;
  GmresIr<float> solver(&a_d, &mg.level_op(0), &mg, opts);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult res = solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
      std::span<double>(x.data(), x.size()));
  HPGMX_CHECK_MSG(res.converged(), "GMRES-IR failed to converge on MPI ranks");
  for (const double v : x) {
    HPGMX_CHECK(std::abs(v - 1.0) < 1e-5);
  }
  // Every rank must have taken the same trajectory.
  const auto iters_max = comm.allreduce_scalar(
      static_cast<std::int64_t>(res.iterations), ReduceOp::Max);
  HPGMX_CHECK(iters_max == static_cast<std::int64_t>(res.iterations));
}

int run() {
  const int p = mpi_world_size();
  HPGMX_CHECK_MSG(p >= 2, "run under mpirun with at least 2 ranks");
  const std::unique_ptr<CommWorld> world =
      make_comm_world(CommBackend::Mpi, p);
  HPGMX_CHECK(world->backend() == CommBackend::Mpi);
  HPGMX_CHECK(world->local_count() == 1);

  const ProcessGrid pgrid = ProcessGrid::create(p);
  world->execute([&](Comm& comm) {
    HPGMX_CHECK(comm.size() == p);
    test_ring_point_to_point(comm);
    test_deterministic_collectives(comm);
    test_halo_exchange_bf16(comm);
    test_overlap_bit_identity(comm, pgrid);
    test_gmres_ir_solve(comm, pgrid);
  });
  if (mpi_world_rank() == 0) {
    std::printf("test_mpi_comm: all checks passed on %d ranks\n", p);
  }
  return 0;
}

}  // namespace
}  // namespace hpgmx

int main() {
  try {
    return hpgmx::run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] FAILED: %s\n", hpgmx::mpi_world_rank(),
                 e.what());
    return 1;
  }
}

#endif  // HPGMX_WITH_MPI
