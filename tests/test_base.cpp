// Unit tests for src/base: types, traits, aligned storage, RNG, errors,
// options, timers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "base/aligned_vector.hpp"
#include "base/epoch.hpp"
#include "base/error.hpp"
#include "base/options.hpp"
#include "base/rng.hpp"
#include "base/timer.hpp"
#include "base/types.hpp"

namespace hpgmx {
namespace {

TEST(PrecisionTraits, NamesAndBytes) {
  EXPECT_EQ(PrecisionTraits<double>::name, "fp64");
  EXPECT_EQ(PrecisionTraits<float>::name, "fp32");
  EXPECT_EQ(PrecisionTraits<double>::bytes, 8u);
  EXPECT_EQ(PrecisionTraits<float>::bytes, 4u);
}

TEST(PrecisionTraits, UnitRoundoff) {
  EXPECT_DOUBLE_EQ(PrecisionTraits<double>::unit_roundoff, 0x1.0p-53);
  EXPECT_FLOAT_EQ(PrecisionTraits<float>::unit_roundoff, 0x1.0p-24f);
}

TEST(PrecisionTraits, WiderType) {
  static_assert(std::is_same_v<wider_t<float, double>, double>);
  static_assert(std::is_same_v<wider_t<double, float>, double>);
  static_assert(std::is_same_v<wider_t<float, float>, float>);
}

TEST(AlignedVector, AlignmentIs64Bytes) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<double> v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u)
        << "n=" << n;
  }
}

TEST(AlignedVector, BehavesLikeVector) {
  AlignedVector<int> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  ASSERT_EQ(v.size(), 100u);
  EXPECT_EQ(v[42], 42);
}

TEST(Rng, Deterministic) {
  EXPECT_EQ(hash_rand(1, 2), hash_rand(1, 2));
  EXPECT_NE(hash_rand(1, 2), hash_rand(1, 3));
  EXPECT_NE(hash_rand(1, 2), hash_rand(2, 2));
}

TEST(Rng, UnitRangeAndSpread) {
  int low = 0, high = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = unit_rand(7, i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    if (u < 0.5) {
      ++low;
    } else {
      ++high;
    }
  }
  // Crude uniformity check: both halves populated within 10%.
  EXPECT_NEAR(static_cast<double>(low) / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(high) / 10000.0, 0.5, 0.05);
}

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(HPGMX_CHECK(1 + 1 == 2));
  try {
    HPGMX_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Options, IntAndDoubleParsing) {
  ::setenv("HPGMX_TEST_INT", "123", 1);
  ::setenv("HPGMX_TEST_DBL", "2.5", 1);
  ::setenv("HPGMX_TEST_BAD", "abc", 1);
  EXPECT_EQ(env_int_or("HPGMX_TEST_INT", 7), 123);
  EXPECT_DOUBLE_EQ(env_double_or("HPGMX_TEST_DBL", 7.0), 2.5);
  EXPECT_EQ(env_int_or("HPGMX_TEST_MISSING", 7), 7);
  EXPECT_FALSE(env_int("HPGMX_TEST_BAD").has_value());
  ::unsetenv("HPGMX_TEST_INT");
  ::unsetenv("HPGMX_TEST_DBL");
  ::unsetenv("HPGMX_TEST_BAD");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Epoch, MonotoneAcrossCalls) {
  const double a = epoch_seconds();
  const double b = epoch_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace hpgmx
