// Silent-data-corruption tests: the fault-injection grammar and injector
// determinism (base/fault.hpp), the additive halo checksum, the SdcMonitor
// verdict lane, the end-to-end detect/rollback/recover path through the
// solver service (GMRES, GMRES-IR, CG; vec/values/halo targets), the
// detection-on-clean bit-identity contract across value formats and index
// widths, and the PR's cache satellites — build-cost-aware admission and
// control-aware build skips.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "base/cancel.hpp"
#include "base/error.hpp"
#include "base/fault.hpp"
#include "base/solve_status.hpp"
#include "service/solver_service.hpp"

namespace hpgmx {
namespace {

// ------------------------------------------------------------ fault grammar

TEST(FaultConfig, DisabledByDefaultAndForOffSpec) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  EXPECT_FALSE(FaultConfig::parse("").enabled());
  EXPECT_FALSE(FaultConfig::parse("off").enabled());
  EXPECT_EQ(FaultConfig{}.to_string(), "off");
}

TEST(FaultConfig, ParsesEveryKey) {
  const FaultConfig cfg =
      FaultConfig::parse("flip:0.5,target:halo,bit:3,iter:7,count:2,rank:1");
  EXPECT_TRUE(cfg.enabled());
  EXPECT_DOUBLE_EQ(cfg.flip_prob, 0.5);
  EXPECT_EQ(cfg.target, FaultTarget::Halo);
  EXPECT_EQ(cfg.bit, 3);
  EXPECT_EQ(cfg.iter, 7);
  EXPECT_EQ(cfg.max_flips, 2);
  EXPECT_EQ(cfg.rank, 1);
}

TEST(FaultConfig, ParsesEveryTarget) {
  EXPECT_EQ(FaultConfig::parse("flip:1,target:halo").target,
            FaultTarget::Halo);
  EXPECT_EQ(FaultConfig::parse("flip:1,target:vec").target, FaultTarget::Vec);
  EXPECT_EQ(FaultConfig::parse("flip:1,target:values").target,
            FaultTarget::Values);
  EXPECT_FALSE(FaultConfig::parse("flip:1,target:none").enabled());
}

TEST(FaultConfig, ToStringRoundTripsThroughParse) {
  FaultConfig cfg;
  cfg.flip_prob = 0.125;
  cfg.target = FaultTarget::Values;
  cfg.bit = 9;
  cfg.iter = 4;
  cfg.max_flips = 3;
  cfg.rank = 2;
  const FaultConfig back = FaultConfig::parse(cfg.to_string());
  EXPECT_DOUBLE_EQ(back.flip_prob, cfg.flip_prob);
  EXPECT_EQ(back.target, cfg.target);
  EXPECT_EQ(back.bit, cfg.bit);
  EXPECT_EQ(back.iter, cfg.iter);
  EXPECT_EQ(back.max_flips, cfg.max_flips);
  EXPECT_EQ(back.rank, cfg.rank);
}

TEST(FaultConfig, RejectsMalformedSpecsWithStructuredErrors) {
  EXPECT_THROW((void)FaultConfig::parse("flip"), Error);         // no colon
  EXPECT_THROW((void)FaultConfig::parse("flip:abc"), Error);     // bad value
  EXPECT_THROW((void)FaultConfig::parse("flip:1.5"), Error);     // p > 1
  EXPECT_THROW((void)FaultConfig::parse("flip:-0.1"), Error);    // p < 0
  EXPECT_THROW((void)FaultConfig::parse("flip:1,target:cpu"), Error);
  EXPECT_THROW((void)FaultConfig::parse("flip:1,bit:-2"), Error);
  EXPECT_THROW((void)FaultConfig::parse("flip:1,count:-1"), Error);
  EXPECT_THROW((void)FaultConfig::parse("frobnicate:1"), Error);  // unknown
}

// -------------------------------------------------------- additive checksum

TEST(AdditiveChecksum, EverySingleBitFlipIsCaughtForDoubles) {
  // Message layout on the wire: payload followed by its checksum. Any
  // single-bit flip — payload or checksum word — must break verification.
  std::vector<double> msg = {1.0, -2.5, 3.25e-9, 0.0};
  msg.push_back(additive_checksum(msg.data(), msg.size()));
  const std::size_t payload = msg.size() - 1;
  for (std::size_t w = 0; w < msg.size(); ++w) {
    for (int b = 0; b < 64; ++b) {
      std::uint64_t bits = std::bit_cast<std::uint64_t>(msg[w]);
      bits ^= std::uint64_t{1} << b;
      msg[w] = std::bit_cast<double>(bits);
      const double computed = additive_checksum(msg.data(), payload);
      EXPECT_NE(std::bit_cast<std::uint64_t>(computed),
                std::bit_cast<std::uint64_t>(msg[payload]))
          << "word " << w << " bit " << b;
      bits ^= std::uint64_t{1} << b;  // restore
      msg[w] = std::bit_cast<double>(bits);
    }
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(
                additive_checksum(msg.data(), payload)),
            std::bit_cast<std::uint64_t>(msg[payload]));
}

TEST(AdditiveChecksum, EverySingleBitFlipIsCaughtFor16BitWords) {
  std::vector<std::uint16_t> msg = {0x3F80, 0xC1D0, 0x0001};
  msg.push_back(additive_checksum(msg.data(), msg.size()));
  const std::size_t payload = msg.size() - 1;
  for (std::size_t w = 0; w < msg.size(); ++w) {
    for (int b = 0; b < 16; ++b) {
      msg[w] = static_cast<std::uint16_t>(msg[w] ^ (1u << b));
      EXPECT_NE(additive_checksum(msg.data(), payload), msg[payload])
          << "word " << w << " bit " << b;
      msg[w] = static_cast<std::uint16_t>(msg[w] ^ (1u << b));
    }
  }
}

// ------------------------------------------------------------ fault injector

FaultConfig vec_flip_config() {
  FaultConfig cfg = FaultConfig::parse("flip:1,target:vec");
  return cfg;
}

TEST(FaultInjector, ArmedRespectsTargetRankAndBudget) {
  FaultConfig cfg = vec_flip_config();
  cfg.rank = 1;
  cfg.max_flips = 1;
  FaultInjector wrong_rank(cfg, 0);
  EXPECT_FALSE(wrong_rank.armed(FaultTarget::Vec));

  FaultInjector inj(cfg, 1);
  EXPECT_TRUE(inj.armed(FaultTarget::Vec));
  EXPECT_FALSE(inj.armed(FaultTarget::Halo));  // target mismatch

  std::vector<double> buf(8, 1.0);
  EXPECT_TRUE(inj.maybe_flip(FaultTarget::Vec,
                             std::as_writable_bytes(std::span<double>(buf)),
                             sizeof(double)));
  EXPECT_FALSE(inj.armed(FaultTarget::Vec));  // budget spent
  EXPECT_EQ(inj.flips(), 1u);
}

TEST(FaultInjector, PinnedIterationGatesUnscriptedSites) {
  FaultConfig cfg = vec_flip_config();
  cfg.iter = 3;
  FaultInjector inj(cfg, 0);
  std::vector<double> buf(8, 1.0);
  const auto bytes = std::as_writable_bytes(std::span<double>(buf));
  // Unscripted sites (iteration -1, e.g. halo receives) never fire when the
  // config pins an iteration; the scripted site does.
  EXPECT_FALSE(inj.maybe_flip(FaultTarget::Vec, bytes, sizeof(double), -1));
  EXPECT_FALSE(inj.maybe_flip(FaultTarget::Vec, bytes, sizeof(double), 2));
  EXPECT_TRUE(inj.maybe_flip(FaultTarget::Vec, bytes, sizeof(double), 3));
}

TEST(FaultInjector, CountCapsTotalFlips) {
  FaultConfig cfg = vec_flip_config();
  cfg.max_flips = 2;
  FaultInjector inj(cfg, 0);
  std::vector<double> buf(16, 1.0);
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    fired += inj.maybe_flip(FaultTarget::Vec,
                            std::as_writable_bytes(std::span<double>(buf)),
                            sizeof(double), i)
                 ? 1
                 : 0;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(inj.flips(), 2u);
}

TEST(FaultInjector, PinnedBitFlipsExactlyThatBit) {
  FaultConfig cfg = vec_flip_config();
  cfg.bit = 5;
  FaultInjector inj(cfg, 0);
  double v = 1.0;
  const std::uint64_t before = std::bit_cast<std::uint64_t>(v);
  ASSERT_TRUE(inj.maybe_flip(
      FaultTarget::Vec,
      std::as_writable_bytes(std::span<double>(&v, 1)), sizeof(double)));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v) ^ before, std::uint64_t{1} << 5);
}

TEST(FaultInjector, SameSeedSameRankProducesIdenticalFlips) {
  FaultConfig cfg = vec_flip_config();
  cfg.flip_prob = 0.5;
  FaultInjector a(cfg, 3);
  FaultInjector b(cfg, 3);
  std::vector<double> buf_a(32, 1.5);
  std::vector<double> buf_b(32, 1.5);
  for (int i = 0; i < 20; ++i) {
    const bool fa =
        a.maybe_flip(FaultTarget::Vec,
                     std::as_writable_bytes(std::span<double>(buf_a)),
                     sizeof(double), i);
    const bool fb =
        b.maybe_flip(FaultTarget::Vec,
                     std::as_writable_bytes(std::span<double>(buf_b)),
                     sizeof(double), i);
    EXPECT_EQ(fa, fb) << "opportunity " << i;
  }
  EXPECT_EQ(a.flips(), b.flips());
  EXPECT_EQ(a.draws(), b.draws());
  for (std::size_t i = 0; i < buf_a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(buf_a[i]),
              std::bit_cast<std::uint64_t>(buf_b[i]))
        << "element " << i;
  }
}

TEST(FaultInjector, MaybeDrawConsumesTheStreamLikeMaybeFlip) {
  // vec and values schedules must be interchangeable under one seed: a
  // fired maybe_draw consumes the same number of draws as a fired
  // maybe_flip with a drawn bit.
  FaultConfig cfg = FaultConfig::parse("flip:1,target:values");
  FaultInjector inj(cfg, 0);
  std::uint64_t value_draw = 0;
  std::uint64_t bit_draw = 0;
  ASSERT_TRUE(inj.maybe_draw(FaultTarget::Values, 0, &value_draw, &bit_draw));
  EXPECT_EQ(inj.draws(), 3u);  // fire decision + element + bit
  EXPECT_EQ(inj.flips(), 1u);

  FaultInjector flip_side(vec_flip_config(), 0);
  std::vector<double> buf(8, 1.0);
  ASSERT_TRUE(flip_side.maybe_flip(
      FaultTarget::Vec, std::as_writable_bytes(std::span<double>(buf)),
      sizeof(double), 0));
  EXPECT_EQ(flip_side.draws(), 3u);
}

// ------------------------------------------------------------ verdict lane

TEST(SdcMonitor, LaneEncodesPendingFlagAndDecodeIsAnyRank) {
  SdcMonitor m;
  EXPECT_EQ(m.lane(), 0.0);
  EXPECT_FALSE(SdcMonitor::decode(0.0));
  m.flag_checksum();
  EXPECT_EQ(m.lane(), 1.0);
  EXPECT_TRUE(SdcMonitor::decode(1.0));
  EXPECT_TRUE(SdcMonitor::decode(4.0));  // every rank flagged
  m.clear();
  EXPECT_EQ(m.lane(), 0.0);
  EXPECT_EQ(m.checksum_failures(), 1u);  // cumulative count survives clear
}

TEST(SdcPolicy, DefaultsAreOffWithDocumentedCadence) {
  const SdcPolicy p;
  EXPECT_FALSE(p.enabled());
  EXPECT_EQ(p.audit_interval, 8);
  EXPECT_EQ(p.checkpoint_interval, 4);
  EXPECT_EQ(p.max_recoveries, 3);
}

TEST(SdcPolicy, GrowthThresholdIsFormatAware) {
  SdcPolicy p;
  p.audit_growth = 100.0;
  EXPECT_DOUBLE_EQ(sdc_growth_threshold(p, 2), 1600.0);  // bf16/fp16
  EXPECT_DOUBLE_EQ(sdc_growth_threshold(p, 4), 100.0);   // fp32
  EXPECT_DOUBLE_EQ(sdc_growth_threshold(p, 8), 100.0);   // fp64
}

TEST(SolveStatusTaxonomy, CorruptedHasAStableName) {
  EXPECT_EQ(solve_status_name(SolveStatus::Corrupted), "corrupted");
}

// --------------------------------------------------------------- end to end

/// Observable fingerprint equality: the solves were bitwise identical
/// (iteration counts record every reduction decision and the residuals are
/// the reduced doubles themselves).
bool bit_identical(const ServiceResult& a, const ServiceResult& b) {
  if (a.status != b.status || a.recoveries != b.recoveries ||
      a.rhs.size() != b.rhs.size()) {
    return false;
  }
  for (std::size_t j = 0; j < a.rhs.size(); ++j) {
    if (a.rhs[j].iterations != b.rhs[j].iterations ||
        a.rhs[j].recoveries != b.rhs[j].recoveries ||
        a.rhs[j].relative_residual != b.rhs[j].relative_residual) {
      return false;
    }
  }
  return a.realized_precisions == b.realized_precisions;
}

/// The exhibit scenario (bench/exp_sdc.cpp): bf16 GMRES-IR on the 16³
/// Poisson problem, outer tolerance 1e-9.
ProblemDescriptor ir_descriptor() {
  ProblemDescriptor d;
  d.nx = d.ny = d.nz = 16;
  d.mg_levels = 4;
  d.solver = SolverKind::GmresIr;
  d.inner_precision = Precision::Bf16;
  d.tol = 1e-9;
  d.max_iters = 500;
  return d;
}

/// The scripted detectable flip: a high exponent bit of the outer iterate
/// at cycle 3 on rank 0 — by then the best-residual baseline is tight, so
/// the growth audit must flag the corrupted residual.
FaultConfig scripted_ir_flip() {
  return FaultConfig::parse("flip:1,target:vec,bit:57,iter:3,count:1,rank:0");
}

ServiceResult run_service(const ProblemDescriptor& d, const FaultConfig& fault,
                          bool detect, int max_recoveries = 3) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.retry.enabled = false;  // compare pure solves, no promotion ladder
  cfg.fault = fault;
  cfg.sdc.detect = detect;
  cfg.sdc.max_recoveries = max_recoveries;
  SolverService service(cfg);
  SolveRequest req;
  req.desc = d;
  return service.solve_now(req);
}

TEST(SdcEndToEnd, InjectedFlipIsDetectedAndRecovered) {
  const ServiceResult r =
      run_service(ir_descriptor(), scripted_ir_flip(), /*detect=*/true);
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_GE(r.recoveries, 1);
  ASSERT_EQ(r.rhs.size(), 1u);
  EXPECT_LE(r.rhs[0].relative_residual, 1e-9);
  EXPECT_GE(r.rhs[0].recoveries, 1);
}

TEST(SdcEndToEnd, RecoveredRunsAreSeedReproducible) {
  // Flip sites, detection cycles, and the recovered solution are a pure
  // function of the seed: two fresh services, same config, bit-identical
  // results. Honors an ambient HPGMX_FAULT so the sanitizer lanes can run
  // this determinism contract under arbitrary injection specs.
  FaultConfig fault = FaultConfig::from_env();
  if (!fault.enabled()) {
    fault = scripted_ir_flip();
  }
  const ServiceResult a = run_service(ir_descriptor(), fault, true);
  const ServiceResult b = run_service(ir_descriptor(), fault, true);
  EXPECT_TRUE(bit_identical(a, b));
}

TEST(SdcEndToEnd, ExhaustedRecoveryBudgetReportsCorrupted) {
  // Budget 0: the first detected corruption exceeds the rollback budget and
  // the request ends corrupted — and corrupted is never retried, so exactly
  // one attempt is recorded even with the retry policy enabled.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.fault = scripted_ir_flip();
  cfg.sdc.detect = true;
  cfg.sdc.max_recoveries = 0;
  ASSERT_TRUE(cfg.retry.enabled);
  SolverService service(cfg);
  SolveRequest req;
  req.desc = ir_descriptor();
  const ServiceResult r = service.solve_now(req);
  EXPECT_EQ(r.status, SolveStatus::Corrupted);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_EQ(r.attempts[0].status, SolveStatus::Corrupted);
}

TEST(SdcEndToEnd, CgRecurrenceAuditCatchesIterateFlip) {
  // CG detects through the recurrence-vs-true-residual drift audit: corrupt
  // the iterate (bit 62 turns a ~0 entry into 2.0), audit every 2
  // iterations, and the drift must flag, roll back, and still converge.
  ProblemDescriptor d;
  d.nx = d.ny = d.nz = 8;
  d.mg_levels = 3;
  d.solver = SolverKind::Cg;
  d.tol = 1e-9;
  d.max_iters = 2000;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.retry.enabled = false;
  cfg.fault = FaultConfig::parse("flip:1,target:vec,bit:62,count:1");
  cfg.sdc.detect = true;
  cfg.sdc.audit_interval = 2;
  SolverService service(cfg);
  SolveRequest req;
  req.desc = d;
  const ServiceResult r = service.solve_now(req);
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_GE(r.recoveries, 1);
  ASSERT_EQ(r.rhs.size(), 1u);
  EXPECT_LE(r.rhs[0].relative_residual, 1e-9);
}

TEST(SdcEndToEnd, HaloChecksumCatchesFlipOnFourRanks) {
  // A flipped halo payload byte on one of four ranks: the receive-side
  // additive checksum flags that rank's monitor, the verdict rides the next
  // packed reduction to every rank, and the solve rolls back and recovers.
  ProblemDescriptor d;
  d.nx = d.ny = d.nz = 8;
  d.ranks = 4;
  d.mg_levels = 3;
  d.solver = SolverKind::Gmres;
  d.tol = 1e-9;
  d.max_iters = 2000;
  const FaultConfig fault =
      FaultConfig::parse("flip:1,target:halo,count:1,rank:2");
  const ServiceResult r = run_service(d, fault, /*detect=*/true);
  EXPECT_EQ(r.status, SolveStatus::Converged);
  EXPECT_GE(r.recoveries, 1);
}

TEST(SdcEndToEnd, ValuesFaultIsSeedDeterministic) {
  // Operator-value corruption draws its element/bit from the same seeded
  // stream: two fresh runs are bit-identical, and recovery (redemote from
  // the double master) or benign perturbation both still converge.
  ProblemDescriptor d = ir_descriptor();
  d.nx = d.ny = d.nz = 8;
  d.mg_levels = 3;
  const FaultConfig fault =
      FaultConfig::parse("flip:1,target:values,count:1,rank:0");
  const ServiceResult a = run_service(d, fault, /*detect=*/true);
  const ServiceResult b = run_service(d, fault, /*detect=*/true);
  EXPECT_TRUE(bit_identical(a, b));
  EXPECT_EQ(a.status, SolveStatus::Converged);
}

TEST(SdcEndToEnd, DetectionOnCleanRunsAreBitIdenticalAcrossFormats) {
  // The detection machinery (checksum lanes on halo messages, verdict lanes
  // on the packed reductions, checkpoint copies) must not perturb a healthy
  // solve in any value format or index width.
  for (const Precision prec : {Precision::Fp64, Precision::Fp32,
                               Precision::Bf16, Precision::Fp16}) {
    for (const IndexWidth idx : {IndexWidth::Idx16, IndexWidth::Idx32}) {
      ProblemDescriptor d = ir_descriptor();
      d.nx = d.ny = d.nz = 8;
      d.mg_levels = 3;
      d.inner_precision = prec;
      d.index_width = idx;
      const ServiceResult off =
          run_service(d, FaultConfig{}, /*detect=*/false);
      const ServiceResult on = run_service(d, FaultConfig{}, /*detect=*/true);
      EXPECT_EQ(on.recoveries, 0)
          << std::string(precision_name(prec)) << " "
          << std::string(index_width_name(idx));
      EXPECT_TRUE(bit_identical(on, off))
          << std::string(precision_name(prec)) << " "
          << std::string(index_width_name(idx));
    }
  }
}

// ------------------------------------------------- cache-admission satellite

ProblemDescriptor cache_descriptor(local_index_t n, int mg) {
  ProblemDescriptor d;
  d.nx = d.ny = d.nz = n;
  d.mg_levels = mg;
  return d;
}

TEST(CacheAdmission, CheapCandidateIsRejectedWhenResidentsAreExpensive) {
  // Capacity-1 cache holding an expensive build; a cheap candidate with a
  // tiny admission multiple finds no victim it is allowed to evict, so it
  // is served uncached and the resident survives.
  OperatorCache cache(1, /*admit_multiple=*/1e-6);
  const ProblemDescriptor big = cache_descriptor(20, 4);
  const ProblemDescriptor small = cache_descriptor(4, 2);
  bool hit = true;
  ASSERT_NE(cache.get_or_build(big, &hit), nullptr);
  const auto uncached = cache.get_or_build(small, &hit);
  ASSERT_NE(uncached, nullptr);  // still served, just not admitted
  EXPECT_FALSE(hit);
  const OperatorCacheStats s = cache.stats();
  EXPECT_EQ(s.admission_rejects, 1u);
  EXPECT_EQ(s.eviction_skips, 1u);  // the resident was scanned and spared
  EXPECT_EQ(s.entries, 1u);
  (void)cache.get_or_build(big, &hit);
  EXPECT_TRUE(hit);  // the expensive entry was never evicted
  (void)cache.get_or_build(small, &hit);
  EXPECT_FALSE(hit);  // the cheap one was never cached
}

TEST(CacheAdmission, ExpensiveCandidateStillEvictsCheapVictim) {
  // A generous multiple keeps plain LRU behavior: the candidate admits by
  // evicting the cheap resident.
  OperatorCache cache(1, /*admit_multiple=*/1e12);
  const ProblemDescriptor big = cache_descriptor(20, 4);
  const ProblemDescriptor small = cache_descriptor(4, 2);
  bool hit = true;
  ASSERT_NE(cache.get_or_build(small, &hit), nullptr);
  ASSERT_NE(cache.get_or_build(big, &hit), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().admission_rejects, 0u);
  (void)cache.get_or_build(big, &hit);
  EXPECT_TRUE(hit);  // the expensive candidate was admitted
}

// --------------------------------------------- control-aware build satellite

TEST(CacheControl, TrippedControlSkipsTheBuildAndCountsIt) {
  OperatorCache cache(4);
  const ProblemDescriptor d = cache_descriptor(8, 3);
  SolveControl control;
  control.deadline = Deadline::after(-1.0);
  bool hit = true;
  EXPECT_EQ(cache.get_or_build(d, &hit, &control), nullptr);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().cancelled_builds, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  CancelToken token;
  token.cancel();
  SolveControl cancelled;
  cancelled.cancel = &token;
  EXPECT_EQ(cache.get_or_build(d, &hit, &cancelled), nullptr);
  EXPECT_EQ(cache.stats().cancelled_builds, 2u);
}

TEST(CacheControl, HitIsServedEvenWhenTripped) {
  OperatorCache cache(4);
  const ProblemDescriptor d = cache_descriptor(8, 3);
  bool hit = false;
  ASSERT_NE(cache.get_or_build(d, &hit), nullptr);
  SolveControl control;
  control.deadline = Deadline::after(-1.0);
  EXPECT_NE(cache.get_or_build(d, &hit, &control), nullptr);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().cancelled_builds, 0u);
}

TEST(CacheControl, ServiceSkipsBuildForPreCancelledRequest) {
  // The service builds its SolveControl before touching the cache: a
  // pre-cancelled request never pays for hierarchy construction, and the
  // skip is observable in the cache stats.
  ServiceConfig cfg;
  cfg.workers = 1;
  SolverService service(cfg);
  SolveRequest req;
  req.desc = cache_descriptor(8, 3);
  req.cancel = std::make_shared<CancelToken>();
  req.cancel->cancel();
  const ServiceResult r = service.solve_now(req);
  EXPECT_EQ(r.status, SolveStatus::Cancelled);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_EQ(r.attempts[0].iterations, 0);
  EXPECT_EQ(service.cache_stats().cancelled_builds, 1u);
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

}  // namespace
}  // namespace hpgmx
