// Gauss–Seidel smoother properties: the reference (level-scheduled) sweep
// exactly matches sequential lexicographic GS; the multicolor sweep matches
// sequential GS in its color ordering; both reduce the residual; fp32
// behaves like fp64 to single precision.
#include <gtest/gtest.h>

#include <random>

#include "blas/vector_ops.hpp"
#include "coloring/coloring.hpp"
#include "comm/comm.hpp"
#include "grid/problem.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"

namespace hpgmx {
namespace {

Problem stencil_problem(local_index_t n) {
  ProblemParams p;
  p.nx = p.ny = p.nz = n;
  return generate_problem(ProcessGrid(1, 1, 1), 0, p);
}

AlignedVector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1, 1);
  AlignedVector<double> v(n);
  for (auto& x : v) {
    x = dist(rng);
  }
  return v;
}

double residual_norm(const CsrMatrix<double>& a,
                     std::span<const double> b, std::span<const double> z) {
  AlignedVector<double> r(static_cast<std::size_t>(a.num_rows));
  csr_residual(a, b, z, std::span<double>(r.data(), r.size()));
  SelfComm comm;
  return nrm2<double>(comm, std::span<const double>(r.data(), r.size()));
}

TEST(GsReference, MatchesSequentialLexicographic) {
  const Problem prob = stencil_problem(6);
  const RowPartition levels = build_lower_level_schedule(prob.a);
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 1);

  AlignedVector<double> z_seq(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  AlignedVector<double> z_ref(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  AlignedVector<double> t(static_cast<std::size_t>(prob.a.num_rows), 0.0);

  gs_sweep_sequential(prob.a, std::span<const double>(b.data(), b.size()),
                      std::span<double>(z_seq.data(), z_seq.size()));
  gs_sweep_reference(prob.a, levels,
                     std::span<const double>(b.data(), b.size()),
                     std::span<double>(z_ref.data(), z_ref.size()),
                     std::span<double>(t.data(), t.size()));
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    ASSERT_NEAR(z_ref[i], z_seq[i], 1e-13) << "row " << i;
  }
}

TEST(GsColored, MatchesSequentialGsInColorOrder) {
  const Problem prob = stencil_problem(6);
  const auto colors = greedy_color(prob.a);
  const RowPartition part = color_partition(colors);
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 2);

  AlignedVector<double> z_col(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                   std::span<double>(z_col.data(), z_col.size()));

  // Oracle: process rows one at a time in the same (color-major) order.
  AlignedVector<double> z_seq(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  for (int c = 0; c < part.num_groups(); ++c) {
    for (const local_index_t row : part.group(c)) {
      double acc = b[static_cast<std::size_t>(row)];
      const auto cols = prob.a.row_cols(row);
      const auto vals = prob.a.row_vals(row);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] != row) {
          acc -= vals[k] * z_seq[static_cast<std::size_t>(cols[k])];
        }
      }
      z_seq[static_cast<std::size_t>(row)] =
          acc / prob.a.diag[static_cast<std::size_t>(row)];
    }
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    ASSERT_NEAR(z_col[i], z_seq[i], 1e-13);
  }
}

TEST(GsColoredEll, MatchesCsrVariant) {
  const Problem prob = stencil_problem(6);
  const auto colors = jpl_color(prob.a, 42);
  const RowPartition part = color_partition(colors);
  const EllMatrix<double> e = ell_from_csr(prob.a);
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 3);

  AlignedVector<double> z_csr(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  AlignedVector<double> z_ell(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                   std::span<double>(z_csr.data(), z_csr.size()));
  gs_sweep_colored_ell(e, part, std::span<const double>(b.data(), b.size()),
                       std::span<double>(z_ell.data(), z_ell.size()));
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    ASSERT_NEAR(z_csr[i], z_ell[i], 1e-13);
  }
}

class GsSweepCounts : public ::testing::TestWithParam<int> {};

TEST_P(GsSweepCounts, ResidualDecreasesMonotonically) {
  const Problem prob = stencil_problem(6);
  const auto colors = jpl_color(prob.a, 42);
  const RowPartition part = color_partition(colors);
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 4);
  AlignedVector<double> z(static_cast<std::size_t>(prob.a.num_cols), 0.0);

  double prev = residual_norm(prob.a, std::span<const double>(b.data(), b.size()),
                              std::span<const double>(z.data(), z.size()));
  const int sweeps = GetParam();
  for (int s = 0; s < sweeps; ++s) {
    gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                     std::span<double>(z.data(), z.size()));
    const double now =
        residual_norm(prob.a, std::span<const double>(b.data(), b.size()),
                      std::span<const double>(z.data(), z.size()));
    ASSERT_LT(now, prev) << "sweep " << s;
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, GsSweepCounts, ::testing::Values(2, 5, 10));

TEST(GsBackward, ReducesResidualAndDiffersFromForward) {
  const Problem prob = stencil_problem(4);
  const auto colors = greedy_color(prob.a);
  const RowPartition part = color_partition(colors);
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 5);

  AlignedVector<double> zf(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  AlignedVector<double> zb(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                   std::span<double>(zf.data(), zf.size()));
  gs_sweep_colored_backward(prob.a, part,
                            std::span<const double>(b.data(), b.size()),
                            std::span<double>(zb.data(), zb.size()));
  const double rb =
      residual_norm(prob.a, std::span<const double>(b.data(), b.size()),
                    std::span<const double>(zb.data(), zb.size()));
  SelfComm comm;
  const double r0 =
      nrm2<double>(comm, std::span<const double>(b.data(), b.size()));
  EXPECT_LT(rb, r0);
  // Forward and backward orders must differ somewhere (they're different
  // triangular splits).
  bool differs = false;
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    if (std::abs(zf[i] - zb[i]) > 1e-12) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GsFloat, TracksDoubleWithinSinglePrecision) {
  const Problem prob = stencil_problem(4);
  const auto colors = greedy_color(prob.a);
  const RowPartition part = color_partition(colors);
  const CsrMatrix<float> af = prob.a.convert<float>();
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 6);
  AlignedVector<float> bf(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    bf[i] = static_cast<float>(b[i]);
  }

  AlignedVector<double> zd(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  AlignedVector<float> zf(static_cast<std::size_t>(prob.a.num_cols), 0.0f);
  for (int s = 0; s < 3; ++s) {
    gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                     std::span<double>(zd.data(), zd.size()));
    gs_sweep_colored(af, part, std::span<const float>(bf.data(), bf.size()),
                     std::span<float>(zf.data(), zf.size()));
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    ASSERT_NEAR(zf[i], zd[i], 1e-4 * (1.0 + std::abs(zd[i])));
  }
}

TEST(GsRows, SubsetSweepEqualsFullSweepWhenCoveringColor) {
  const Problem prob = stencil_problem(4);
  const auto colors = greedy_color(prob.a);
  const RowPartition part = color_partition(colors);
  const auto b = random_vector(static_cast<std::size_t>(prob.a.num_rows), 7);

  AlignedVector<double> z1(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  AlignedVector<double> z2(static_cast<std::size_t>(prob.a.num_cols), 0.0);
  gs_sweep_colored(prob.a, part, std::span<const double>(b.data(), b.size()),
                   std::span<double>(z1.data(), z1.size()));
  for (int c = 0; c < part.num_groups(); ++c) {
    gs_sweep_rows(prob.a, part.group(c),
                  std::span<const double>(b.data(), b.size()),
                  std::span<double>(z2.data(), z2.size()));
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(prob.a.num_rows); ++i) {
    ASSERT_NEAR(z1[i], z2[i], 1e-14);
  }
}

}  // namespace
}  // namespace hpgmx
