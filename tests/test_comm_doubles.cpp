// Tests for the Comm test doubles themselves, plus the properties they
// instrument: measured halo traffic equals the bytes model (fp64 and the
// 2-byte formats), batched solver schedules really remove allreduces without
// moving a bit, and the stack tolerates a misbehaving network (FaultyComm's
// reordered delivery and delayed completion).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "comm_doubles.hpp"

#include "comm/halo.hpp"
#include "comm/thread_comm.hpp"
#include "core/bytes_model.hpp"
#include "core/cg.hpp"
#include "core/dist_operator.hpp"
#include "grid/problem.hpp"
#include "precision/precision.hpp"

namespace hpgmx {
namespace {

// ---------------------------------------------------------------------------
// RecordingComm bookkeeping
// ---------------------------------------------------------------------------

TEST(RecordingComm, CountsPointToPointAndCollectives) {
  SelfComm self;
  RecordingComm rec(self);
  EXPECT_EQ(rec.rank(), 0);
  EXPECT_EQ(rec.size(), 1);

  const std::vector<double> out{1.0, 2.0, 3.0};
  rec.send(0, 5, std::span<const double>(out));
  std::vector<double> in(3, 0.0);
  rec.recv(0, 5, std::span<double>(in));
  EXPECT_EQ(in, out);

  std::vector<float> fin(2, 0.0f);
  Request rreq = rec.irecv(0, 6, std::span<float>(fin));
  const std::vector<float> fout{4.0f, 5.0f};
  Request sreq = rec.isend(0, 6, std::span<const float>(fout));
  sreq.wait();
  rreq.wait();
  EXPECT_EQ(fin, fout);

  (void)rec.allreduce_scalar(1.5, ReduceOp::Sum);
  std::vector<std::int64_t> gathered(1);
  rec.allgather(std::span<const std::int64_t>(gathered.data(), 1),
                std::span<std::int64_t>(gathered));
  std::vector<double> bc{7.0};
  rec.bcast(std::span<double>(bc), 0);
  rec.barrier();

  const RecordingComm::Counts& c = rec.counts();
  EXPECT_EQ(c.sends, 1u);
  EXPECT_EQ(c.recvs, 1u);
  EXPECT_EQ(c.isends, 1u);
  EXPECT_EQ(c.irecvs, 1u);
  EXPECT_EQ(c.send_payload_bytes, 3 * sizeof(double) + 2 * sizeof(float));
  EXPECT_EQ(c.recv_payload_bytes, 3 * sizeof(double) + 2 * sizeof(float));
  EXPECT_EQ(c.allreduces, 1u);
  EXPECT_EQ(c.allreduce_payload_bytes, sizeof(double));
  EXPECT_EQ(c.allgathers, 1u);
  EXPECT_EQ(c.bcasts, 1u);
  EXPECT_EQ(c.barriers, 1u);

  rec.reset();
  EXPECT_EQ(rec.counts().sends, 0u);
  EXPECT_EQ(rec.counts().send_payload_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Measured halo traffic vs the bytes model, on real operators
// ---------------------------------------------------------------------------

/// One spmv and one gs_forward over RecordingComm; each performs exactly one
/// halo exchange, whose measured payload must equal both the bytes-model
/// prediction and HaloExchange<T>::bytes_per_exchange().
template <typename T>
void expect_halo_bytes_match_model() {
  ThreadCommWorld::execute(4, [](Comm& comm) {
    const ProcessGrid pgrid = ProcessGrid::create(4);
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 4;
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<T> op(prob.a, &s, OptLevel::Optimized, 10);

    const double model = halo_exchange_bytes(
        static_cast<std::int64_t>(s.halo.total_send_count()),
        static_cast<std::int64_t>(s.halo.n_halo), sizeof(T));
    {
      HaloExchange<T> hx(&s.halo, /*tag=*/99);
      ASSERT_EQ(static_cast<double>(hx.bytes_per_exchange()), model);
    }

    RecordingComm rec(comm);
    AlignedVector<T> x(static_cast<std::size_t>(op.vec_len()), T(0));
    for (local_index_t i = 0; i < op.num_owned(); ++i) {
      x[static_cast<std::size_t>(i)] =
          static_cast<T>(0.01 * i + comm.rank());
    }
    AlignedVector<T> y(static_cast<std::size_t>(op.num_owned()), T(0));
    op.spmv(rec, std::span<T>(x.data(), x.size()),
            std::span<T>(y.data(), y.size()));
    const auto measured_spmv = static_cast<double>(
        rec.counts().send_payload_bytes + rec.counts().recv_payload_bytes);
    ASSERT_EQ(measured_spmv, model) << "spmv halo traffic, rank "
                                    << comm.rank();

    rec.reset();
    AlignedVector<T> r(static_cast<std::size_t>(op.num_owned()), T(0));
    for (local_index_t i = 0; i < op.num_owned(); ++i) {
      r[static_cast<std::size_t>(i)] = static_cast<T>(prob.b[i]);
    }
    op.gs_forward(rec, std::span<const T>(r.data(), r.size()),
                  std::span<T>(x.data(), x.size()));
    const auto measured_gs = static_cast<double>(
        rec.counts().send_payload_bytes + rec.counts().recv_payload_bytes);
    ASSERT_EQ(measured_gs, model) << "gs halo traffic, rank " << comm.rank();
  });
}

TEST(HaloBytesModel, Fp64TrafficMatchesPrediction) {
  expect_halo_bytes_match_model<double>();
}

TEST(HaloBytesModel, Bf16TrafficIsTwoBytePayload) {
  static_assert(sizeof(bf16_t) == 2);
  expect_halo_bytes_match_model<bf16_t>();
}

TEST(HaloBytesModel, Fp16TrafficIsTwoBytePayload) {
  static_assert(sizeof(fp16_t) == 2);
  expect_halo_bytes_match_model<fp16_t>();
}

TEST(HaloBytesModel, HalvedValueWidthHalvesTraffic) {
  // The memory-wall argument on the wire: same pattern, half the bytes.
  const std::int64_t send = 123;
  const std::int64_t recv = 77;
  EXPECT_EQ(halo_exchange_bytes(send, recv, sizeof(bf16_t)) * 2.0,
            halo_exchange_bytes(send, recv, sizeof(float)));
  EXPECT_EQ(halo_exchange_bytes(send, recv, sizeof(float)) * 2.0,
            halo_exchange_bytes(send, recv, sizeof(double)));
}

// ---------------------------------------------------------------------------
// Batched reductions: fewer allreduces, identical bits
// ---------------------------------------------------------------------------

TEST(BatchedReductions, CgSendsFewerMessagesWithIdenticalIterates) {
  constexpr int kRanks = 2;
  constexpr int kIters = 8;
  std::array<std::vector<double>, 2> solutions;
  std::array<std::size_t, 2> reductions{};
  for (const bool batched : {false, true}) {
    const std::size_t which = batched ? 1 : 0;
    solutions[which].clear();
    ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
      const ProcessGrid pgrid = ProcessGrid::create(kRanks);
      ProblemParams pp;
      pp.nx = pp.ny = pp.nz = 4;
      const Problem prob = generate_problem(pgrid, comm.rank(), pp);
      const OperatorStructure s = build_structure(prob, 42);
      DistOperator<double> op(prob.a, &s, OptLevel::Optimized, 10);
      SolverOptions opts;
      opts.max_iters = kIters;
      opts.tol = 0.0;  // fixed iteration count: message counts comparable
      opts.batched_reductions = batched;
      ConjugateGradient<double> cg(&op, /*mg=*/nullptr, opts);
      RecordingComm rec(comm);
      AlignedVector<double> x(static_cast<std::size_t>(op.num_owned()), 0.0);
      const SolveResult res =
          cg.solve(rec, std::span<const double>(prob.b.data(), prob.b.size()),
                   std::span<double>(x.data(), x.size()));
      EXPECT_EQ(res.iterations, kIters);
      if (comm.rank() == 0) {
        reductions[which] = rec.counts().allreduces;
        solutions[which].assign(x.begin(), x.end());
      }
    });
  }
  // 3 reductions/iteration drop to 2 (the packed [‖r‖², ⟨r,z⟩] message);
  // the entry reduction is deliberately unbatched on both schedules.
  EXPECT_EQ(reductions[0], 2u + 3u * kIters);
  EXPECT_EQ(reductions[1], 1u + 2u * kIters);
  ASSERT_EQ(solutions[0].size(), solutions[1].size());
  EXPECT_EQ(0, std::memcmp(solutions[0].data(), solutions[1].data(),
                           solutions[0].size() * sizeof(double)))
      << "batching changed the iterates";
}

// ---------------------------------------------------------------------------
// FaultyComm: reordered delivery and delayed completion are harmless
// ---------------------------------------------------------------------------

TEST(FaultyComm, ReversesWithheldSendsButMatchingByTagHolds) {
  ThreadCommWorld::execute(2, [](Comm& comm) {
    FaultyComm faulty(comm, {.delay_us = 0, .reorder_sends = true});
    if (comm.rank() == 0) {
      const std::vector<std::int32_t> a{1}, b{2};
      faulty.send(1, 100, std::span<const std::int32_t>(a));
      faulty.send(1, 200, std::span<const std::int32_t>(b));
      faulty.barrier();  // forces the (reversed) flush
    } else {
      faulty.barrier();
      std::vector<std::int32_t> a(1), b(1);
      faulty.recv(0, 100, std::span<std::int32_t>(a));
      faulty.recv(0, 200, std::span<std::int32_t>(b));
      EXPECT_EQ(a[0], 1);
      EXPECT_EQ(b[0], 2);
    }
  });
}

TEST(FaultyComm, HaloExchangeAndSpmvSurviveReorderAndDelay) {
  ThreadCommWorld::execute(4, [](Comm& comm) {
    const ProcessGrid pgrid = ProcessGrid::create(4);
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 4;
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<double> op_plain(prob.a, &s, OptLevel::Optimized, 10);
    DistOperator<double> op_faulty(prob.a, &s, OptLevel::Optimized, 20);

    AlignedVector<double> x(static_cast<std::size_t>(op_plain.vec_len()), 0.0);
    for (local_index_t i = 0; i < op_plain.num_owned(); ++i) {
      x[static_cast<std::size_t>(i)] = 0.01 * i - comm.rank();
    }
    AlignedVector<double> x2 = x;
    AlignedVector<double> y1(static_cast<std::size_t>(op_plain.num_owned()),
                             0.0);
    AlignedVector<double> y2(y1.size(), 0.0);

    op_plain.spmv(comm, std::span<double>(x.data(), x.size()),
                  std::span<double>(y1.data(), y1.size()));
    {
      FaultyComm faulty(comm, {.delay_us = 200, .reorder_sends = true});
      op_faulty.spmv(faulty, std::span<double>(x2.data(), x2.size()),
                     std::span<double>(y2.data(), y2.size()));
    }
    ASSERT_EQ(0,
              std::memcmp(y1.data(), y2.data(), y1.size() * sizeof(double)))
        << "a reordering/delaying network changed the product, rank "
        << comm.rank();
    ASSERT_EQ(0, std::memcmp(x.data(), x2.data(), x.size() * sizeof(double)))
        << "halo contents diverged, rank " << comm.rank();
  });
}

TEST(FaultyComm, CollectivesUnaffected) {
  ThreadCommWorld::execute(3, [](Comm& comm) {
    FaultyComm faulty(comm, {.delay_us = 50, .reorder_sends = true});
    const double sum = faulty.allreduce_scalar(
        static_cast<double>(comm.rank() + 1), ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum, 6.0);
    std::vector<std::int64_t> all(3);
    const std::vector<std::int64_t> mine{comm.rank() * 7LL};
    faulty.allgather(std::span<const std::int64_t>(mine),
                     std::span<std::int64_t>(all));
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 7);
    }
  });
}

}  // namespace
}  // namespace hpgmx
