// DistOperator tests: reference vs optimized path equivalence for SpMV and
// restriction, Gauss–Seidel semantics under overlap, interior/boundary
// splits, distributed SpMV against a serial oracle, FLOP model consistency.
#include <gtest/gtest.h>

#include <random>

#include "comm/thread_comm.hpp"
#include "core/dist_operator.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "perf/trace.hpp"

namespace hpgmx {
namespace {

TEST(OperatorStructure, SplitsCoverAllRows) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;
  const ProcessGrid pgrid = ProcessGrid::create(8);
  const Problem prob = generate_problem(pgrid, 0, pp);
  const OperatorStructure s = build_structure(prob, 42);
  EXPECT_EQ(static_cast<local_index_t>(s.interior_rows.size() +
                                       s.boundary_rows.size()),
            prob.a.num_rows);
  EXPECT_EQ(s.colors.num_rows(), prob.a.num_rows);
  EXPECT_EQ(s.colors_interior.num_groups(), s.colors.num_groups());
  EXPECT_EQ(s.colors_boundary.num_groups(), s.colors.num_groups());
  // Rank 0 of a 2x2x2 grid has 3 face + 3 edge + 1 corner neighbors.
  EXPECT_EQ(prob.halo.neighbors.size(), 7u);
  // On a 4^3 box with neighbors on the high sides, boundary rows are those
  // with i==3 or j==3 or k==3: 4^3 - 3^3 = 37.
  EXPECT_EQ(s.boundary_rows.size(), 37u);
}

TEST(OperatorStructure, SingleRankHasNoBoundaryRows) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const OperatorStructure s = build_structure(prob, 42);
  EXPECT_TRUE(s.boundary_rows.empty());
  EXPECT_EQ(s.interior_rows.size(), 64u);
}

class DistSpmv : public ::testing::TestWithParam<std::tuple<int, OptLevel>> {};

TEST_P(DistSpmv, MatchesSerialOracle) {
  const auto [p, opt] = GetParam();
  const ProcessGrid pgrid = ProcessGrid::create(p);
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 4;

  // Serial oracle on the union grid: y = A x with x(global) = global id.
  ProblemParams serial_pp;
  serial_pp.nx = static_cast<local_index_t>(pp.nx * pgrid.px());
  serial_pp.ny = static_cast<local_index_t>(pp.ny * pgrid.py());
  serial_pp.nz = static_cast<local_index_t>(pp.nz * pgrid.pz());
  const Problem oracle = generate_problem(ProcessGrid(1, 1, 1), 0, serial_pp);
  AlignedVector<double> x_g(static_cast<std::size_t>(oracle.a.num_rows));
  for (std::size_t i = 0; i < x_g.size(); ++i) {
    x_g[i] = 0.01 * static_cast<double>(i) - 3.0;
  }
  AlignedVector<double> y_g(x_g.size(), 0.0);
  csr_spmv(oracle.a, std::span<const double>(x_g.data(), x_g.size()),
           std::span<double>(y_g.data(), y_g.size()));

  const OptLevel opt_level = opt;
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<double> op(prob.a, &s, opt_level, /*tag=*/7);
    AlignedVector<double> x(static_cast<std::size_t>(op.vec_len()), 0.0);
    for (local_index_t k = 0; k < prob.box.nz; ++k) {
      for (local_index_t j = 0; j < prob.box.ny; ++j) {
        for (local_index_t i = 0; i < prob.box.nx; ++i) {
          const global_index_t g = prob.box.global_id(
              prob.box.ox + i, prob.box.oy + j, prob.box.oz + k);
          x[static_cast<std::size_t>(prob.box.local_id(i, j, k))] =
              0.01 * static_cast<double>(g) - 3.0;
        }
      }
    }
    AlignedVector<double> y(static_cast<std::size_t>(op.num_owned()), 0.0);
    op.spmv(comm, std::span<double>(x.data(), x.size()),
            std::span<double>(y.data(), y.size()));
    for (local_index_t k = 0; k < prob.box.nz; ++k) {
      for (local_index_t j = 0; j < prob.box.ny; ++j) {
        for (local_index_t i = 0; i < prob.box.nx; ++i) {
          const global_index_t g = prob.box.global_id(
              prob.box.ox + i, prob.box.oy + j, prob.box.oz + k);
          ASSERT_NEAR(y[static_cast<std::size_t>(prob.box.local_id(i, j, k))],
                      y_g[static_cast<std::size_t>(g)], 1e-11)
              << "rank " << comm.rank() << " point " << g;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DistSpmv,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(OptLevel::Reference,
                                         OptLevel::Optimized)));

TEST(DistOperator, ReferenceAndOptimizedSpmvAgree) {
  ThreadCommWorld::execute(4, [](Comm& comm) {
    const ProcessGrid pgrid = ProcessGrid::create(4);
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 4;
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<double> op_ref(prob.a, &s, OptLevel::Reference, 10);
    DistOperator<double> op_opt(prob.a, &s, OptLevel::Optimized, 20);
    AlignedVector<double> x(static_cast<std::size_t>(op_ref.vec_len()));
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::sin(0.1 * static_cast<double>(i) + comm.rank());
    }
    AlignedVector<double> x2 = x;
    AlignedVector<double> y1(static_cast<std::size_t>(op_ref.num_owned()), 0);
    AlignedVector<double> y2(y1.size(), 0);
    op_ref.spmv(comm, std::span<double>(x.data(), x.size()),
                std::span<double>(y1.data(), y1.size()));
    op_opt.spmv(comm, std::span<double>(x2.data(), x2.size()),
                std::span<double>(y2.data(), y2.size()));
    for (std::size_t i = 0; i < y1.size(); ++i) {
      ASSERT_NEAR(y1[i], y2[i], 1e-12);
    }
  });
}

TEST(DistOperator, RestrictResidualPathsAgree) {
  ThreadCommWorld::execute(8, [](Comm& comm) {
    const ProcessGrid pgrid = ProcessGrid::create(8);
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 8;
    const Problem fine = generate_problem(pgrid, comm.rank(), pp);
    const CoarseLevel cl = coarsen(fine);
    const OperatorStructure s = build_structure(fine, 42);
    DistOperator<double> op_ref(fine.a, &s, OptLevel::Reference, 10);
    DistOperator<double> op_opt(fine.a, &s, OptLevel::Optimized, 20);

    AlignedVector<double> z(static_cast<std::size_t>(op_ref.vec_len()));
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] = std::cos(0.05 * static_cast<double>(i) - comm.rank());
    }
    AlignedVector<double> z2 = z;
    AlignedVector<double> rc1(cl.c2f.size(), 0.0), rc2(cl.c2f.size(), 0.0);
    std::int64_t nnz_sel = 0;
    for (const local_index_t fr : cl.c2f) {
      nnz_sel += fine.a.row_ptr[fr + 1] - fine.a.row_ptr[fr];
    }
    op_ref.restrict_residual(
        comm, std::span<const double>(fine.b.data(), fine.b.size()),
        std::span<double>(z.data(), z.size()),
        std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()), nnz_sel,
        std::span<double>(rc1.data(), rc1.size()));
    op_opt.restrict_residual(
        comm, std::span<const double>(fine.b.data(), fine.b.size()),
        std::span<double>(z2.data(), z2.size()),
        std::span<const local_index_t>(cl.c2f.data(), cl.c2f.size()), nnz_sel,
        std::span<double>(rc2.data(), rc2.size()));
    for (std::size_t i = 0; i < rc1.size(); ++i) {
      ASSERT_NEAR(rc1[i], rc2[i], 1e-12);
    }
  });
}

TEST(DistOperator, GsForwardReducesResidualBothPaths) {
  for (const OptLevel opt : {OptLevel::Reference, OptLevel::Optimized}) {
    ThreadCommWorld::execute(2, [opt](Comm& comm) {
      const ProcessGrid pgrid = ProcessGrid::create(2);
      ProblemParams pp;
      pp.nx = pp.ny = pp.nz = 4;
      const Problem prob = generate_problem(pgrid, comm.rank(), pp);
      const OperatorStructure s = build_structure(prob, 42);
      DistOperator<double> op(prob.a, &s, opt, 30);
      AlignedVector<double> z(static_cast<std::size_t>(op.vec_len()), 0.0);
      AlignedVector<double> r(static_cast<std::size_t>(op.num_owned()), 0.0);

      const std::span<const double> b(prob.b.data(), prob.b.size());
      op.residual(comm, b, std::span<double>(z.data(), z.size()),
                  std::span<double>(r.data(), r.size()));
      const double before =
          nrm2<double>(comm, std::span<const double>(r.data(), r.size()));
      for (int sweep = 0; sweep < 3; ++sweep) {
        op.gs_forward(comm, b, std::span<double>(z.data(), z.size()));
      }
      op.residual(comm, b, std::span<double>(z.data(), z.size()),
                  std::span<double>(r.data(), r.size()));
      const double after =
          nrm2<double>(comm, std::span<const double>(r.data(), r.size()));
      EXPECT_LT(after, 0.5 * before);
    });
  }
}

TEST(DistOperator, OverlapEventSemanticsSendOldValues) {
  // The §3.2.3 ordering: the interior GS kernel of the first color runs
  // while the halo carries the PRE-SWEEP boundary values. We verify by
  // checking the optimized distributed sweep equals an oracle that freezes
  // halo values first and then smooths with the same processing order.
  ThreadCommWorld::execute(2, [](Comm& comm) {
    const ProcessGrid pgrid = ProcessGrid::create(2);
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 4;
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<double> op(prob.a, &s, OptLevel::Optimized, 40);

    AlignedVector<double> z(static_cast<std::size_t>(op.vec_len()), 0.0);
    for (local_index_t i = 0; i < op.num_owned(); ++i) {
      z[static_cast<std::size_t>(i)] = 0.1 * i + comm.rank();
    }
    AlignedVector<double> z_oracle = z;

    // Oracle: blocking exchange of OLD values, then identical sweep order.
    {
      HaloExchange<double> hx(&s.halo, /*tag=*/77);
      hx.exchange(comm, std::span<double>(z_oracle.data(), z_oracle.size()));
      const std::span<const double> b(prob.b.data(), prob.b.size());
      gs_sweep_rows(prob.a, s.colors_interior.group(0), b,
                    std::span<double>(z_oracle.data(), z_oracle.size()));
      gs_sweep_rows(prob.a, s.colors_boundary.group(0), b,
                    std::span<double>(z_oracle.data(), z_oracle.size()));
      for (int c = 1; c < s.colors.num_groups(); ++c) {
        gs_sweep_rows(prob.a, s.colors_interior.group(c), b,
                      std::span<double>(z_oracle.data(), z_oracle.size()));
        gs_sweep_rows(prob.a, s.colors_boundary.group(c), b,
                      std::span<double>(z_oracle.data(), z_oracle.size()));
      }
    }
    op.gs_forward(comm, std::span<const double>(prob.b.data(), prob.b.size()),
                  std::span<double>(z.data(), z.size()));
    for (local_index_t i = 0; i < op.num_owned(); ++i) {
      ASSERT_NEAR(z[static_cast<std::size_t>(i)],
                  z_oracle[static_cast<std::size_t>(i)], 1e-12)
          << "row " << i;
    }
  });
}

TEST(DistOperator, MotifAccountingIsPathIndependent) {
  // Reference and optimized paths must charge identical model FLOPs.
  const ProblemParams pp{.nx = 4, .ny = 4, .nz = 4, .gamma = 0.0,
                         .scenario = {}};
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const OperatorStructure s = build_structure(prob, 42);
  SelfComm comm;
  flop_count_t flops[2];
  int idx = 0;
  for (const OptLevel opt : {OptLevel::Reference, OptLevel::Optimized}) {
    DistOperator<double> op(prob.a, &s, opt, 50);
    MotifStats stats;
    op.set_stats(&stats);
    AlignedVector<double> x(static_cast<std::size_t>(op.vec_len()), 1.0);
    AlignedVector<double> y(static_cast<std::size_t>(op.num_owned()), 0.0);
    op.spmv(comm, std::span<double>(x.data(), x.size()),
            std::span<double>(y.data(), y.size()));
    op.gs_forward(comm, std::span<const double>(prob.b.data(), prob.b.size()),
                  std::span<double>(x.data(), x.size()));
    flops[idx++] = stats.total_flops();
  }
  EXPECT_EQ(flops[0], flops[1]);
}

TEST(DistOperator, TraceShowsOverlapOnOptimizedPath) {
  TraceRecorder trace;
  ThreadCommWorld::execute(2, [&trace](Comm& comm) {
    const ProcessGrid pgrid = ProcessGrid::create(2);
    ProblemParams pp;
    pp.nx = pp.ny = pp.nz = 8;
    const Problem prob = generate_problem(pgrid, comm.rank(), pp);
    const OperatorStructure s = build_structure(prob, 42);
    DistOperator<double> op(prob.a, &s, OptLevel::Optimized, 60);
    op.set_event_sink(&trace);
    AlignedVector<double> z(static_cast<std::size_t>(op.vec_len()), 1.0);
    for (int sweep = 0; sweep < 5; ++sweep) {
      op.gs_forward(comm,
                    std::span<const double>(prob.b.data(), prob.b.size()),
                    std::span<double>(z.data(), z.size()));
    }
  });
  // Both lanes must have events; the compute lane must include the interior
  // kernel that runs between begin() and finish().
  bool saw_interior = false;
  for (const auto& e : trace.events_for(0)) {
    if (e.name == "GS-int-c0") {
      saw_interior = true;
    }
  }
  EXPECT_TRUE(saw_interior);
  EXPECT_GT(trace.lane_busy_seconds(0, "halo"), 0.0);
  EXPECT_GT(trace.lane_busy_seconds(0, "compute"), 0.0);
}

TEST(FlopModel, HandCountsOnTinyCases) {
  EXPECT_EQ(spmv_flops(10), 20u);
  EXPECT_EQ(gs_sweep_flops(10, 4), 24u);
  EXPECT_EQ(residual_flops(10, 4), 24u);
  EXPECT_EQ(fused_restrict_flops(27, 1), 55u);
  EXPECT_EQ(prolong_flops(8), 8u);
  EXPECT_EQ(dot_flops(100), 200u);
  EXPECT_EQ(waxpby_flops(100), 300u);
  EXPECT_EQ(cgs2_flops(100, 3), 2400u);
}

}  // namespace
}  // namespace hpgmx
