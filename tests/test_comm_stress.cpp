// Concurrency stress for the ThreadComm mailboxes and the split-phase halo
// exchange — the suite the ThreadSanitizer CI lane races. Each scenario
// hammers one sharing pattern from the real solvers at 8 ranks for many
// rounds with full value verification: a data race that TSan can catch has
// to actually execute to be caught, so the loops are deliberately hot.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/comm.hpp"
#include "comm/halo.hpp"
#include "comm/thread_comm.hpp"

namespace hpgmx {
namespace {

constexpr int kRanks = 8;
constexpr int kRounds = 150;

// Ring halo pattern: every rank owns 4 entries and reads one ghost from
// each side (wrapping), so all 8 ranks are both senders and receivers in
// every epoch.
HaloPattern ring_pattern(int rank, int p, local_index_t n_owned) {
  HaloPattern pat;
  pat.n_owned = n_owned;
  pat.n_halo = 0;
  const int left = (rank + p - 1) % p;
  const int right = (rank + 1) % p;
  {
    HaloNeighbor nb;
    nb.rank = left;
    nb.send_indices = {0};
    nb.recv_offset = pat.n_halo;
    nb.recv_count = 1;
    pat.n_halo += 1;
    pat.neighbors.push_back(std::move(nb));
  }
  {
    HaloNeighbor nb;
    nb.rank = right;
    nb.send_indices = {n_owned - 1};
    nb.recv_offset = pat.n_halo;
    nb.recv_count = 1;
    pat.n_halo += 1;
    pat.neighbors.push_back(std::move(nb));
  }
  return pat;
}

TEST(CommStress, HaloEpochStorm) {
  const local_index_t n = 4;
  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    const HaloPattern pat = ring_pattern(rank, p, n);
    HaloExchange<double> hx(&pat, /*tag=*/11);
    AlignedVector<double> x(static_cast<std::size_t>(pat.vector_length()),
                            0.0);
    for (int round = 0; round < kRounds; ++round) {
      for (local_index_t i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] =
            1000.0 * rank + 10.0 * round + static_cast<double>(i);
      }
      hx.begin(comm, std::span<double>(x.data(), x.size()));
      ASSERT_TRUE(hx.in_flight());
      // "Interior compute" between the phases.
      double scratch = 0.0;
      for (local_index_t i = 0; i < n; ++i) {
        scratch += x[static_cast<std::size_t>(i)];
      }
      ASSERT_GT(scratch, -1.0);
      hx.finish(comm);
      ASSERT_FALSE(hx.in_flight());
      const int left = (rank + p - 1) % p;
      const int right = (rank + 1) % p;
      // Ghost 0 is the left neighbor's last owned entry; ghost 1 the right
      // neighbor's first.
      EXPECT_EQ(x[static_cast<std::size_t>(n)],
                1000.0 * left + 10.0 * round + static_cast<double>(n - 1));
      EXPECT_EQ(x[static_cast<std::size_t>(n) + 1],
                1000.0 * right + 10.0 * round);
    }
  });
}

TEST(CommStress, AllreduceStorm) {
  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const int p = comm.size();
    for (int round = 0; round < kRounds; ++round) {
      const double sum =
          comm.allreduce_scalar(static_cast<double>(comm.rank() + round),
                                ReduceOp::Sum);
      EXPECT_EQ(sum, static_cast<double>(p * (p - 1) / 2 + p * round));
      const double mx = comm.allreduce_scalar(
          static_cast<double>(comm.rank() * (round % 3 + 1)), ReduceOp::Max);
      EXPECT_EQ(mx, static_cast<double>((p - 1) * (round % 3 + 1)));
      std::vector<std::int64_t> in{comm.rank() + 1, round};
      std::vector<std::int64_t> out(2, 0);
      comm.allreduce(std::span<const std::int64_t>(in.data(), in.size()),
                     std::span<std::int64_t>(out.data(), out.size()),
                     ReduceOp::Sum);
      EXPECT_EQ(out[0], static_cast<std::int64_t>(p * (p + 1) / 2));
      EXPECT_EQ(out[1], static_cast<std::int64_t>(p * round));
    }
  });
}

TEST(CommStress, MixedTagPointToPointStorm) {
  // All-to-all isend/irecv with per-(src,tag) sequencing: every rank posts
  // receives from every other rank on three tags, then sends, then waits.
  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    constexpr int kTags = 3;
    for (int round = 0; round < kRounds / 3; ++round) {
      std::vector<std::int32_t> inbox(
          static_cast<std::size_t>(p * kTags), -1);
      std::vector<std::int32_t> outbox(
          static_cast<std::size_t>(p * kTags), -1);
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(p * kTags) * 2);
      for (int src = 0; src < p; ++src) {
        if (src == rank) {
          continue;
        }
        for (int t = 0; t < kTags; ++t) {
          const auto slot = static_cast<std::size_t>(src * kTags + t);
          reqs.push_back(comm.irecv(
              src, 40 + t, std::span<std::int32_t>(&inbox[slot], 1)));
        }
      }
      for (int dst = 0; dst < p; ++dst) {
        if (dst == rank) {
          continue;
        }
        for (int t = 0; t < kTags; ++t) {
          const auto slot = static_cast<std::size_t>(dst * kTags + t);
          outbox[slot] =
              static_cast<std::int32_t>(10000 * rank + 100 * t + round);
          reqs.push_back(comm.isend(
              dst, 40 + t, std::span<const std::int32_t>(&outbox[slot], 1)));
        }
      }
      for (Request& r : reqs) {
        r.wait();
      }
      for (int src = 0; src < p; ++src) {
        if (src == rank) {
          continue;
        }
        for (int t = 0; t < kTags; ++t) {
          const auto slot = static_cast<std::size_t>(src * kTags + t);
          ASSERT_EQ(inbox[slot],
                    static_cast<std::int32_t>(10000 * src + 100 * t + round));
        }
      }
    }
  });
}

TEST(CommStress, CollectiveMixStorm) {
  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    for (int round = 0; round < kRounds / 2; ++round) {
      // Allgather of one value per rank.
      std::vector<double> mine{100.0 * rank + round};
      std::vector<double> all(static_cast<std::size_t>(p), -1.0);
      comm.allgather(std::span<const double>(mine.data(), 1),
                     std::span<double>(all.data(), all.size()));
      for (int r = 0; r < p; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)], 100.0 * r + round);
      }
      // Broadcast from a rotating root.
      const int root = round % p;
      std::vector<std::int64_t> payload(3, rank == root ? round : -1);
      comm.bcast(std::span<std::int64_t>(payload.data(), payload.size()),
                 root);
      for (const std::int64_t v : payload) {
        ASSERT_EQ(v, static_cast<std::int64_t>(round));
      }
      comm.barrier();
    }
  });
}

TEST(CommStress, ConcurrentHaloAndReductions) {
  // The real solver shape: split-phase halo traffic interleaved with
  // scalar reductions on every rank, all rounds back-to-back.
  const local_index_t n = 4;
  ThreadCommWorld::execute(kRanks, [&](Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    const HaloPattern pat = ring_pattern(rank, p, n);
    HaloExchange<float> hx(&pat, /*tag=*/21);
    AlignedVector<float> x(static_cast<std::size_t>(pat.vector_length()),
                           0.0F);
    for (int round = 0; round < kRounds; ++round) {
      for (local_index_t i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] =
            static_cast<float>(8 * rank + round % 16 + i);
      }
      hx.begin(comm, std::span<float>(x.data(), x.size()));
      const double partial = comm.allreduce_scalar(
          static_cast<double>(rank + 1), ReduceOp::Sum);
      EXPECT_EQ(partial, static_cast<double>(p * (p + 1) / 2));
      hx.finish(comm);
      const int left = (rank + p - 1) % p;
      EXPECT_EQ(x[static_cast<std::size_t>(n)],
                static_cast<float>(8 * left + round % 16 + (n - 1)));
    }
  });
}

}  // namespace
}  // namespace hpgmx
