// Integration tests of the three-phase benchmark driver: validation modes
// (§3 standard, §3.3 fullscale), phase mechanics, penalty rule, report
// content.
#include <gtest/gtest.h>

#include "core/benchmark.hpp"

namespace hpgmx {
namespace {

BenchParams tiny_params() {
  BenchParams p;
  p.nx = p.ny = p.nz = 8;
  p.mg_levels = 2;
  p.max_iters_per_solve = 20;
  p.bench_seconds = 0.05;
  p.validation_max_iters = 2000;
  return p;
}

TEST(Validation, StandardModeRecordsBothCounts) {
  BenchmarkDriver driver(tiny_params(), 1);
  const ValidationResult v = driver.run_validation(ValidationMode::Standard);
  EXPECT_GT(v.n_d, 0);
  EXPECT_GT(v.n_ir, 0);
  EXPECT_TRUE(v.d_converged);
  EXPECT_TRUE(v.ir_converged);
  EXPECT_DOUBLE_EQ(v.achieved_tol, 1e-9);
  EXPECT_GT(v.ratio(), 0.0);
  EXPECT_LE(v.penalty(), 1.0);
}

TEST(Validation, PenaltyIsCappedAtOne) {
  ValidationResult v;
  v.n_d = 100;
  v.n_ir = 80;  // mxp faster: no bonus
  EXPECT_DOUBLE_EQ(v.ratio(), 1.25);
  EXPECT_DOUBLE_EQ(v.penalty(), 1.0);
  v.n_ir = 125;  // mxp slower: penalized
  EXPECT_DOUBLE_EQ(v.penalty(), 0.8);
}

TEST(Validation, FullScaleWithLooseCapMatchesStandardTarget) {
  // With a generous iteration cap the fullscale target stays 1e-9 and both
  // modes measure the same thing (paper Table 2's small-node rows).
  BenchmarkDriver driver(tiny_params(), 1);
  const ValidationResult std_v =
      driver.run_validation(ValidationMode::Standard);
  const ValidationResult fs_v =
      driver.run_validation(ValidationMode::FullScale);
  EXPECT_TRUE(fs_v.d_converged);
  EXPECT_DOUBLE_EQ(fs_v.achieved_tol, 1e-9);
  EXPECT_EQ(fs_v.n_d, std_v.n_d);
  EXPECT_EQ(fs_v.n_ir, std_v.n_ir);
}

TEST(Validation, FullScaleCapSetsAchievedResidualAsTarget) {
  // Force the §3.3 large-scale branch: cap double GMRES below convergence;
  // GMRES-IR then only needs to match the achieved residual.
  BenchParams p = tiny_params();
  p.validation_max_iters = 7;
  BenchmarkDriver driver(p, 1);
  const ValidationResult v = driver.run_validation(ValidationMode::FullScale);
  EXPECT_FALSE(v.d_converged);
  EXPECT_EQ(v.n_d, 7);
  EXPECT_GT(v.achieved_tol, 1e-9);  // stopped early
  EXPECT_TRUE(v.ir_converged);      // to the achieved (easier) target
  EXPECT_GT(v.n_ir, 0);
}

class DriverWorlds : public ::testing::TestWithParam<int> {};

TEST_P(DriverWorlds, PhasesExecuteFixedIterationSolves) {
  BenchParams p = tiny_params();
  BenchmarkDriver driver(p, GetParam());
  const PhaseResult mxp = driver.run_phase(/*mixed=*/true);
  EXPECT_EQ(mxp.label, "mxp");
  EXPECT_GE(mxp.solves, 1);
  // Fixed-iteration runs: every solve performs max_iters_per_solve.
  EXPECT_EQ(mxp.iterations, mxp.solves * p.max_iters_per_solve);
  EXPECT_GT(mxp.wall_seconds, 0.0);
  EXPECT_GT(mxp.raw_gflops, 0.0);
  EXPECT_GT(mxp.stats.flops(Motif::GS), 0u);
  EXPECT_GT(mxp.stats.flops(Motif::Ortho), 0u);
  EXPECT_GT(mxp.stats.flops(Motif::SpMV), 0u);
  EXPECT_GT(mxp.stats.flops(Motif::Restrict), 0u);

  const PhaseResult dbl = driver.run_phase(/*mixed=*/false);
  EXPECT_EQ(dbl.label, "double");
  EXPECT_EQ(dbl.iterations, dbl.solves * p.max_iters_per_solve);
}

INSTANTIATE_TEST_SUITE_P(Worlds, DriverWorlds, ::testing::Values(1, 2));

TEST(Driver, FullRunProducesCoherentReport) {
  BenchParams p = tiny_params();
  BenchmarkDriver driver(p, 2);
  const BenchReport report = driver.run_all();
  EXPECT_EQ(report.ranks, 2);
  EXPECT_GT(report.validation.n_d, 0);
  EXPECT_GT(report.mxp.raw_gflops, 0.0);
  EXPECT_GT(report.dbl.raw_gflops, 0.0);
  EXPECT_NEAR(report.penalized_gflops(),
              report.mxp.raw_gflops * report.validation.penalty(), 1e-12);
  EXPECT_GT(report.speedup(), 0.0);
  const std::string s = report.to_string();
  EXPECT_NE(s.find("penalized"), std::string::npos);
  EXPECT_NE(s.find("mxp"), std::string::npos);
  EXPECT_NE(s.find("GS"), std::string::npos);
}

TEST(Driver, MixedPhaseIsFasterPerIterationAtMemoryResidentSize) {
  // The memory-bandwidth argument: identical model FLOPs per iteration, but
  // the fp32 inner cycles stream half the value bytes. The problem must not
  // be cache-resident or the bandwidth advantage (and the paper's premise)
  // disappears — 32³ with 4 MG levels is ~14 MB of fp64 matrix values.
  // Slack absorbs CI noise; the measured margin on a scalar host is ~1.17x.
  BenchParams p;
  p.nx = p.ny = p.nz = 32;
  p.max_iters_per_solve = 60;
  p.bench_seconds = 0.8;
  BenchmarkDriver driver(p, 1);
  const PhaseResult mxp = driver.run_phase(true);
  const PhaseResult dbl = driver.run_phase(false);
  const double mxp_per_iter = mxp.wall_seconds / mxp.iterations;
  const double dbl_per_iter = dbl.wall_seconds / dbl.iterations;
  EXPECT_LT(mxp_per_iter, dbl_per_iter * 1.05)
      << "mxp " << mxp_per_iter << " s/it vs double " << dbl_per_iter;
}

TEST(Driver, ReferencePathRunsEndToEnd) {
  BenchParams p = tiny_params();
  p.opt = OptLevel::Reference;
  BenchmarkDriver driver(p, 2);
  const ValidationResult v = driver.run_validation(ValidationMode::Standard);
  EXPECT_TRUE(v.d_converged);
  EXPECT_TRUE(v.ir_converged);
  const PhaseResult mxp = driver.run_phase(true);
  EXPECT_GT(mxp.raw_gflops, 0.0);
}

TEST(Params, EnvOverridesApply) {
  ::setenv("HPGMX_NX", "24", 1);
  ::setenv("HPGMX_BENCH_SECONDS", "7.5", 1);
  const BenchParams p = BenchParams::from_env();
  EXPECT_EQ(p.nx, 24);
  EXPECT_DOUBLE_EQ(p.bench_seconds, 7.5);
  ::unsetenv("HPGMX_NX");
  ::unsetenv("HPGMX_BENCH_SECONDS");
}

TEST(Params, Table1Defaults) {
  const BenchParams p;
  EXPECT_EQ(p.restart_length, 30);
  EXPECT_EQ(p.max_iters_per_solve, 300);
  EXPECT_EQ(p.mg_levels, 4);
  EXPECT_DOUBLE_EQ(p.validation_tol, 1e-9);
  EXPECT_EQ(p.validation_max_iters, 10000);
  EXPECT_EQ(p.validation_ranks, 8);
}

}  // namespace
}  // namespace hpgmx
