// Compressed-index (16-bit delta) ELL tests.
//
// The idx16 layout stores column indices as int16 deltas col − row next to
// the absolute 32-bit columns; every kernel resolves them back to the same
// absolute column per tile, so the contract is *bit identity*: any kernel
// on an idx16 matrix must produce exactly the bits of the idx32 layout,
// for every storage format and both dispatch paths. Plus: feasibility
// (ell_from_csr must refuse windows beyond ±32767 and fall back), and an
// end-to-end GMRES-IR solve pinned to HPGMX_IDX=16 converging to 1e-9.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "coloring/coloring.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "grid/problem.hpp"
#include "precision/float16.hpp"
#include "precision/scale_guard.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"

namespace hpgmx {
namespace {

ProblemHierarchy make_hierarchy(local_index_t n, const BenchParams& params) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = n;
  pp.gamma = params.gamma;
  return build_hierarchy(generate_problem(ProcessGrid(1, 1, 1), 0, pp),
                         params.mg_levels, params.coloring_seed);
}

template <typename T>
void fill_pattern(std::span<T> v, float shift = 0.0f) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float f =
        0.5f + 0.03125f * static_cast<float>(i % 37) - 0.25f + shift;
    v[i] = static_cast<T>(f);
  }
}

template <typename T>
void expect_bitwise_equal(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)));
}

// ---------------------------------------------------------------------------
// Construction: delta stream correctness and the requested-width contract

TEST(Idx16Construction, DeltasReconstructAbsoluteColumns) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const EllMatrix<double> e = ell_from_csr(prob.a, IndexWidth::Idx16);
  ASSERT_TRUE(e.has_idx16());
  EXPECT_EQ(e.index_bytes(), sizeof(ell_delta_t));
  ASSERT_EQ(e.col_delta.size(), e.col_idx.size());
  for (local_index_t s = 0; s < e.slots; ++s) {
    for (local_index_t r = 0; r < e.num_rows; ++r) {
      const std::size_t at = e.slot_index(r, s);
      EXPECT_EQ(r + static_cast<local_index_t>(e.col_delta[at]),
                e.col_idx[at])
          << "slot " << s << " row " << r;
    }
  }
}

TEST(Idx16Construction, Idx32RequestKeepsAbsoluteLayoutOnly) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const EllMatrix<double> e = ell_from_csr(prob.a, IndexWidth::Idx32);
  EXPECT_FALSE(e.has_idx16());
  EXPECT_EQ(e.index_bytes(), sizeof(local_index_t));
  EXPECT_TRUE(e.col_delta.empty());
}

TEST(Idx16Construction, AutoCompressesWhenFeasible) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  EXPECT_TRUE(ell_idx16_feasible(prob.a));
  const EllMatrix<double> e = ell_from_csr(prob.a);  // Auto default
  EXPECT_TRUE(e.has_idx16());
}

TEST(Idx16Construction, ConvertCarriesDeltaStream) {
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 8;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const EllMatrix<double> e = ell_from_csr(prob.a, IndexWidth::Idx16);
  const EllMatrix<bf16_t> elo = e.convert<bf16_t>();
  ASSERT_TRUE(elo.has_idx16());
  ASSERT_EQ(elo.col_delta.size(), e.col_delta.size());
  EXPECT_EQ(0, std::memcmp(elo.col_delta.data(), e.col_delta.data(),
                           e.col_delta.size() * sizeof(ell_delta_t)));
}

// ---------------------------------------------------------------------------
// Feasibility: an oversized synthetic column window must fall back to idx32

/// Two owned rows plus one entry addressing a remapped halo column far
/// beyond the ±32767 delta window (the shape a large local grid's first
/// low-face halo reference takes).
[[nodiscard]] CsrMatrix<double> oversized_window_matrix(local_index_t far_col) {
  CsrBuilder<double> b(/*num_rows=*/2, /*num_cols=*/far_col + 1,
                       /*num_owned_cols=*/2);
  b.push(0, 4.0);
  b.push(far_col, -1.0);
  b.finish_row();
  b.push(1, 4.0);
  b.finish_row();
  return b.build();
}

TEST(Idx16Feasibility, OversizedWindowFallsBackTo32Bit) {
  const CsrMatrix<double> a = oversized_window_matrix(40000);
  EXPECT_EQ(max_col_delta(a), 40000);
  EXPECT_FALSE(ell_idx16_feasible(a));
  for (const IndexWidth w :
       {IndexWidth::Auto, IndexWidth::Idx16, IndexWidth::Idx32}) {
    const EllMatrix<double> e = ell_from_csr(a, w);
    EXPECT_FALSE(e.has_idx16()) << index_width_name(w);
    EXPECT_EQ(e.index_bytes(), sizeof(local_index_t));
  }
  // The fallback matrix still multiplies correctly.
  AlignedVector<double> x(40001, 1.0);
  AlignedVector<double> y(2, 0.0);
  ell_spmv(ell_from_csr(a), std::span<const double>(x.data(), x.size()),
           std::span<double>(y.data(), y.size()));
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 4.0);
}

TEST(Idx16Feasibility, ExactlyAtTheWindowEdgeCompresses) {
  const CsrMatrix<double> a = oversized_window_matrix(kEllDeltaMax);
  EXPECT_EQ(max_col_delta(a), kEllDeltaMax);
  EXPECT_TRUE(ell_idx16_feasible(a));
  const EllMatrix<double> e = ell_from_csr(a, IndexWidth::Idx16);
  ASSERT_TRUE(e.has_idx16());
  AlignedVector<double> x(static_cast<std::size_t>(kEllDeltaMax) + 1, 1.0);
  AlignedVector<double> y(2, 0.0);
  ell_spmv(e, std::span<const double>(x.data(), x.size()),
           std::span<double>(y.data(), y.size()));
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 4.0);
}

// ---------------------------------------------------------------------------
// Kernel bit-identity across index widths, all formats

template <typename T>
class Idx16Kernels : public ::testing::Test {};

using AllFormats = ::testing::Types<double, float, bf16_t, fp16_t>;
TYPED_TEST_SUITE(Idx16Kernels, AllFormats);

TYPED_TEST(Idx16Kernels, SpmvBitIdenticalAcrossIndexWidths) {
  using T = TypeParam;
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 12;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const CsrMatrix<T> a = prob.a.convert<T>();
  const EllMatrix<T> e32 = ell_from_csr(a, IndexWidth::Idx32);
  const EllMatrix<T> e16 = ell_from_csr(a, IndexWidth::Idx16);
  ASSERT_TRUE(e16.has_idx16());
  const auto n = static_cast<std::size_t>(a.num_rows);
  AlignedVector<T> x(static_cast<std::size_t>(a.num_cols), T(0));
  fill_pattern(std::span<T>(x.data(), x.size()));
  AlignedVector<T> y32(n, T(0));
  AlignedVector<T> y16(n, T(0));

  ell_spmv(e32, std::span<const T>(x.data(), x.size()),
           std::span<T>(y32.data(), n));
  ell_spmv(e16, std::span<const T>(x.data(), x.size()),
           std::span<T>(y16.data(), n));
  expect_bitwise_equal(std::span<const T>(y32.data(), n),
                       std::span<const T>(y16.data(), n));

  ell_spmv_scalar(e32, std::span<const T>(x.data(), x.size()),
                  std::span<T>(y32.data(), n));
  ell_spmv_scalar(e16, std::span<const T>(x.data(), x.size()),
                  std::span<T>(y16.data(), n));
  expect_bitwise_equal(std::span<const T>(y32.data(), n),
                       std::span<const T>(y16.data(), n));

  // Row-list variants (a strided subset stands in for interior/boundary).
  AlignedVector<local_index_t> rows;
  for (local_index_t r = 0; r < a.num_rows; r += 3) {
    rows.push_back(r);
  }
  const std::span<const local_index_t> rspan(rows.data(), rows.size());
  std::fill(y32.begin(), y32.end(), T(0));
  std::fill(y16.begin(), y16.end(), T(0));
  ell_spmv_rows(e32, std::span<const T>(x.data(), x.size()),
                std::span<T>(y32.data(), n), rspan);
  ell_spmv_rows(e16, std::span<const T>(x.data(), x.size()),
                std::span<T>(y16.data(), n), rspan);
  expect_bitwise_equal(std::span<const T>(y32.data(), n),
                       std::span<const T>(y16.data(), n));

  // Fused rows+dot: same partials, same stored y.
  const double d32 = ell_spmv_rows_dot(
      e32, std::span<const T>(x.data(), x.size()), std::span<T>(y32.data(), n),
      rspan);
  const double d16 = ell_spmv_rows_dot(
      e16, std::span<const T>(x.data(), x.size()), std::span<T>(y16.data(), n),
      rspan);
  EXPECT_EQ(d32, d16);
  expect_bitwise_equal(std::span<const T>(y32.data(), n),
                       std::span<const T>(y16.data(), n));
}

TYPED_TEST(Idx16Kernels, GsSweepsBitIdenticalAcrossIndexWidths) {
  using T = TypeParam;
  ProblemParams pp;
  pp.nx = pp.ny = pp.nz = 12;
  const Problem prob = generate_problem(ProcessGrid(1, 1, 1), 0, pp);
  const CsrMatrix<T> a = prob.a.convert<T>();
  const EllMatrix<T> e32 = ell_from_csr(a, IndexWidth::Idx32);
  const EllMatrix<T> e16 = ell_from_csr(a, IndexWidth::Idx16);
  ASSERT_TRUE(e16.has_idx16());
  const auto colors = jpl_color(a, 42);
  const RowPartition part = color_partition(colors);
  const auto n = static_cast<std::size_t>(a.num_rows);
  AlignedVector<T> r(n, T(0));
  fill_pattern(std::span<T>(r.data(), r.size()), 0.125f);
  AlignedVector<T> z32(static_cast<std::size_t>(a.num_cols), T(0));
  AlignedVector<T> z16 = z32;

  gs_sweep_colored_ell(e32, part, std::span<const T>(r.data(), n),
                       std::span<T>(z32.data(), z32.size()));
  gs_sweep_colored_ell(e16, part, std::span<const T>(r.data(), n),
                       std::span<T>(z16.data(), z16.size()));
  expect_bitwise_equal(std::span<const T>(z32.data(), z32.size()),
                       std::span<const T>(z16.data(), z16.size()));

  gs_sweep_colored_ell_scalar(e32, part, std::span<const T>(r.data(), n),
                              std::span<T>(z32.data(), z32.size()));
  gs_sweep_colored_ell_scalar(e16, part, std::span<const T>(r.data(), n),
                              std::span<T>(z16.data(), z16.size()));
  expect_bitwise_equal(std::span<const T>(z32.data(), z32.size()),
                       std::span<const T>(z16.data(), z16.size()));
}

// Operator-level: the full optimized pipeline (overlap splits, fused
// spmv_dot) must not see the index width either.
TYPED_TEST(Idx16Kernels, DistOperatorBitIdenticalAcrossIndexWidths) {
  using T = TypeParam;
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  SelfComm comm;
  DistOperator<T> op32(h.levels[0].a, h.structures[0].get(),
                       OptLevel::Optimized, /*tag=*/10, 1.0,
                       IndexWidth::Idx32);
  DistOperator<T> op16(h.levels[0].a, h.structures[0].get(),
                       OptLevel::Optimized, /*tag=*/11, 1.0,
                       IndexWidth::Idx16);
  ASSERT_FALSE(op32.ell().has_idx16());
  ASSERT_TRUE(op16.ell().has_idx16());
  EXPECT_EQ(op32.ell_index_bytes(), sizeof(local_index_t));
  EXPECT_EQ(op16.ell_index_bytes(), sizeof(ell_delta_t));

  AlignedVector<T> x1(static_cast<std::size_t>(op32.vec_len()), T(0));
  fill_pattern(std::span<T>(x1.data(), x1.size()));
  AlignedVector<T> x2 = x1;
  AlignedVector<T> y1(static_cast<std::size_t>(op32.num_owned()), T(0));
  AlignedVector<T> y2 = y1;
  op32.spmv(comm, std::span<T>(x1.data(), x1.size()),
            std::span<T>(y1.data(), y1.size()));
  op16.spmv(comm, std::span<T>(x2.data(), x2.size()),
            std::span<T>(y2.data(), y2.size()));
  expect_bitwise_equal(std::span<const T>(y1.data(), y1.size()),
                       std::span<const T>(y2.data(), y2.size()));

  const double d32 = op32.spmv_dot(comm, std::span<T>(x1.data(), x1.size()),
                                   std::span<T>(y1.data(), y1.size()));
  const double d16 = op16.spmv_dot(comm, std::span<T>(x2.data(), x2.size()),
                                   std::span<T>(y2.data(), y2.size()));
  EXPECT_EQ(d32, d16);

  AlignedVector<T> r(static_cast<std::size_t>(op32.num_owned()), T(0));
  fill_pattern(std::span<T>(r.data(), r.size()), 0.125f);
  AlignedVector<T> z1(static_cast<std::size_t>(op32.vec_len()), T(0));
  AlignedVector<T> z2 = z1;
  op32.gs_forward(comm, std::span<const T>(r.data(), r.size()),
                  std::span<T>(z1.data(), z1.size()));
  op16.gs_forward(comm, std::span<const T>(r.data(), r.size()),
                  std::span<T>(z2.data(), z2.size()));
  expect_bitwise_equal(std::span<const T>(z1.data(), z1.size()),
                       std::span<const T>(z2.data(), z2.size()));
}

// ---------------------------------------------------------------------------
// ScaleGuard interaction: re-demotion must preserve the requested width

TEST(Idx16Operator, SetValueScaleKeepsCompressedLayout) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(8, params);
  DistOperator<bf16_t> op(h.levels[0].a, h.structures[0].get(),
                          OptLevel::Optimized, /*tag=*/12, 1.0,
                          IndexWidth::Idx16);
  ASSERT_TRUE(op.ell().has_idx16());
  op.set_value_scale(0.5);
  EXPECT_TRUE(op.ell().has_idx16());
  op.set_value_scale(1.0);
  EXPECT_TRUE(op.ell().has_idx16());
}

// ---------------------------------------------------------------------------
// End-to-end: GMRES-IR with the ELL index width pinned to 16 bit converges
// to the benchmark tolerance, and the iterates match the idx32 run bit for
// bit (the solver never observes the layout).

template <typename TLow>
SolveResult solve_ir_idx(const ProblemHierarchy& h, IndexWidth idx,
                         std::span<double> x) {
  BenchParams params;
  params.index_width = idx;  // what HPGMX_IDX=16|32 sets via from_env()
  SelfComm comm;
  SolverOptions opts;
  opts.max_iters = 500;
  opts.tol = 1e-9;
  opts.track_history = true;
  ScaleGuard guard;
  guard.initialize(hierarchy_max_abs_value(h),
                   PrecisionTraits<TLow>::max_finite);
  Multigrid<TLow> mg(h, params, /*tag_base=*/100, guard.scale());
  DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(), params.opt,
                           /*tag=*/90, 1.0, params.index_width);
  GmresIr<TLow> solver(&a_d, &mg.level_op(0), &mg, opts);
  solver.set_scale_guard(&guard);
  return solver.solve(
      comm,
      std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()), x);
}

TEST(Idx16Solve, GmresIrConvergesUnderIdx16AndMatchesIdx32) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x16(h.levels[0].b.size(), 0.0);
  AlignedVector<double> x32(h.levels[0].b.size(), 0.0);
  const SolveResult r16 = solve_ir_idx<float>(
      h, IndexWidth::Idx16, std::span<double>(x16.data(), x16.size()));
  const SolveResult r32 = solve_ir_idx<float>(
      h, IndexWidth::Idx32, std::span<double>(x32.data(), x32.size()));
  EXPECT_TRUE(r16.converged());
  EXPECT_LT(r16.relative_residual, 1e-9);
  EXPECT_EQ(r16.iterations, r32.iterations);
  EXPECT_EQ(r16.relative_residual, r32.relative_residual);
  ASSERT_EQ(r16.history.size(), r32.history.size());
  for (std::size_t i = 0; i < r16.history.size(); ++i) {
    EXPECT_EQ(r16.history[i], r32.history[i]) << "outer step " << i;
  }
  expect_bitwise_equal(std::span<const double>(x16.data(), x16.size()),
                       std::span<const double>(x32.data(), x32.size()));
}

TEST(Idx16Solve, Bf16GmresIrConvergesUnderIdx16) {
  BenchParams params;
  const ProblemHierarchy h = make_hierarchy(16, params);
  AlignedVector<double> x(h.levels[0].b.size(), 0.0);
  const SolveResult r = solve_ir_idx<bf16_t>(
      h, IndexWidth::Idx16, std::span<double>(x.data(), x.size()));
  EXPECT_TRUE(r.converged());
  EXPECT_LT(r.relative_residual, 1e-9);
}

}  // namespace
}  // namespace hpgmx
