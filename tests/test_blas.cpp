// BLAS kernel tests: dots (local/distributed, mixed precision), WAXPBY in
// all precision combinations, multivector GEMVs, CGS2 building blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "blas/multivector.hpp"
#include "blas/vector_ops.hpp"
#include "comm/thread_comm.hpp"

namespace hpgmx {
namespace {

TEST(Dot, LocalMatchesClosedForm) {
  AlignedVector<double> x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 2.0;
  }
  EXPECT_DOUBLE_EQ(dot_local(std::span<const double>(x.data(), x.size()),
                             std::span<const double>(y.data(), y.size())),
                   2.0 * 99 * 100 / 2);
}

TEST(Dot, MixedPrecisionInputs) {
  AlignedVector<double> x(10, 3.0);
  AlignedVector<float> y(10, 0.5f);
  EXPECT_DOUBLE_EQ(dot_local(std::span<const double>(x.data(), x.size()),
                             std::span<const float>(y.data(), y.size())),
                   15.0);
}

class DistributedBlas : public ::testing::TestWithParam<int> {};

TEST_P(DistributedBlas, DotSumsAcrossRanks) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    AlignedVector<double> x(8, 1.0), y(8, static_cast<double>(comm.rank() + 1));
    const double d = dot<double>(comm, std::span<const double>(x.data(), 8),
                                 std::span<const double>(y.data(), 8));
    EXPECT_DOUBLE_EQ(d, 8.0 * p * (p + 1) / 2);
  });
}

TEST_P(DistributedBlas, Nrm2AcrossRanks) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    AlignedVector<double> x(4, 2.0);
    const double n = nrm2<double>(comm, std::span<const double>(x.data(), 4));
    EXPECT_NEAR(n, std::sqrt(16.0 * p), 1e-13);
  });
}

TEST_P(DistributedBlas, FloatAllreducePath) {
  const int p = GetParam();
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    AlignedVector<float> x(4, 1.5f);
    const float d = dot<float>(comm, std::span<const float>(x.data(), 4),
                               std::span<const float>(x.data(), 4));
    EXPECT_FLOAT_EQ(d, 9.0f * p);
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, DistributedBlas, ::testing::Values(1, 2, 4));

TEST(Waxpby, AllPrecisionCombinations) {
  AlignedVector<double> xd{1.0, 2.0};
  AlignedVector<float> xf{1.0f, 2.0f};
  AlignedVector<double> yd{10.0, 20.0};
  AlignedVector<float> yf{10.0f, 20.0f};

  AlignedVector<double> wd(2);
  AlignedVector<float> wf(2);

  // double = a*double + b*double
  waxpby(2.0, std::span<const double>(xd.data(), 2), 0.5,
         std::span<const double>(yd.data(), 2), std::span<double>(wd.data(), 2));
  EXPECT_DOUBLE_EQ(wd[0], 7.0);
  EXPECT_DOUBLE_EQ(wd[1], 14.0);

  // double = a*float + b*double (the GMRES-IR update shape)
  waxpby(2.0, std::span<const float>(xf.data(), 2), 0.5,
         std::span<const double>(yd.data(), 2), std::span<double>(wd.data(), 2));
  EXPECT_DOUBLE_EQ(wd[0], 7.0);

  // float = a*double + b*float (downconversion)
  waxpby(2.0, std::span<const double>(xd.data(), 2), 0.5,
         std::span<const float>(yf.data(), 2), std::span<float>(wf.data(), 2));
  EXPECT_FLOAT_EQ(wf[0], 7.0f);
  EXPECT_FLOAT_EQ(wf[1], 14.0f);
}

TEST(Axpy, MixedPrecisionAccumulate) {
  AlignedVector<float> x{1.0f, 1.0f};
  AlignedVector<double> y{0.5, 1.5};
  axpy(3.0, std::span<const float>(x.data(), 2), std::span<double>(y.data(), 2));
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 4.5);
}

TEST(Scal, ScalesInPlace) {
  AlignedVector<float> x{2.0f, -4.0f};
  scal(0.5, std::span<float>(x.data(), 2));
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(ConvertCopy, RoundTripsWithinPrecision) {
  AlignedVector<double> x{1.0, 1e-7, 3.14159265358979};
  AlignedVector<float> f(3);
  AlignedVector<double> back(3);
  convert_copy(std::span<const double>(x.data(), 3), std::span<float>(f.data(), 3));
  convert_copy(std::span<const float>(f.data(), 3), std::span<double>(back.data(), 3));
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(back[static_cast<std::size_t>(i)],
                x[static_cast<std::size_t>(i)],
                1e-7 * std::abs(x[static_cast<std::size_t>(i)]));
  }
}

TEST(SetAll, FillsEverything) {
  AlignedVector<double> x(17, 1.0);
  set_all(std::span<double>(x.data(), x.size()), -3.0);
  for (const double v : x) {
    EXPECT_DOUBLE_EQ(v, -3.0);
  }
}

TEST(MultiVector, ColumnsAreContiguousAndZeroInitialized) {
  MultiVector<double> q(5, 3);
  EXPECT_EQ(q.rows(), 5);
  EXPECT_EQ(q.cols(), 3);
  for (int j = 0; j < 3; ++j) {
    const auto col = q.column(j);
    EXPECT_EQ(col.size(), 5u);
    for (const double v : col) {
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
  EXPECT_EQ(q.column(1).data(), q.data() + 5);
}

TEST(GemvT, MatchesPerColumnDots) {
  const local_index_t n = 50;
  MultiVector<double> q(n, 4);
  AlignedVector<double> w(static_cast<std::size_t>(n));
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(-1, 1);
  for (int j = 0; j < 4; ++j) {
    for (auto& v : q.column(j)) {
      v = dist(rng);
    }
  }
  for (auto& v : w) {
    v = dist(rng);
  }
  SelfComm comm;
  AlignedVector<double> h(4, 0.0);
  gemv_t(comm, q, 3, std::span<const double>(w.data(), w.size()),
         std::span<double>(h.data(), h.size()));
  for (int j = 0; j < 3; ++j) {
    const double expect =
        dot_local(std::span<const double>(q.column(j).data(), w.size()),
                  std::span<const double>(w.data(), w.size()));
    EXPECT_NEAR(h[static_cast<std::size_t>(j)], expect, 1e-12);
  }
}

TEST(GemvN, SubtractionOrthogonalizes) {
  // One CGS pass against an orthonormal basis leaves w ⟂ span(Q).
  const local_index_t n = 64;
  MultiVector<double> q(n, 2);
  // Orthonormal columns: indicator blocks scaled.
  for (local_index_t i = 0; i < n / 2; ++i) {
    q.column(0)[static_cast<std::size_t>(i)] = std::sqrt(2.0 / n);
  }
  for (local_index_t i = n / 2; i < n; ++i) {
    q.column(1)[static_cast<std::size_t>(i)] = std::sqrt(2.0 / n);
  }
  AlignedVector<double> w(static_cast<std::size_t>(n), 1.0);
  SelfComm comm;
  AlignedVector<double> h(2, 0.0);
  gemv_t(comm, q, 2, std::span<const double>(w.data(), w.size()),
         std::span<double>(h.data(), h.size()));
  gemv_n_sub(q, 2, std::span<const double>(h.data(), h.size()),
             std::span<double>(w.data(), w.size()));
  for (int j = 0; j < 2; ++j) {
    const double d =
        dot_local(std::span<const double>(q.column(j).data(), w.size()),
                  std::span<const double>(w.data(), w.size()));
    EXPECT_NEAR(d, 0.0, 1e-12);
  }
}

TEST(GemvN, ReconstructsLinearCombination) {
  const local_index_t n = 10;
  MultiVector<float> q(n, 3);
  for (int j = 0; j < 3; ++j) {
    for (local_index_t i = 0; i < n; ++i) {
      q.column(j)[static_cast<std::size_t>(i)] =
          static_cast<float>((j + 1) * (i + 1));
    }
  }
  AlignedVector<float> t{1.0f, -1.0f, 2.0f};
  AlignedVector<float> w(static_cast<std::size_t>(n), 0.0f);
  gemv_n(q, 3, std::span<const float>(t.data(), 3),
         std::span<float>(w.data(), w.size()));
  for (local_index_t i = 0; i < n; ++i) {
    const float expect = static_cast<float>((i + 1) * (1 - 2 + 6));
    EXPECT_FLOAT_EQ(w[static_cast<std::size_t>(i)], expect);
  }
}

TEST_P(DistributedBlas, GemvTBatchesOneAllreduce) {
  // The result must equal per-rank dot sums regardless of rank count.
  const int p = GetParam();
  const local_index_t n = 16;
  ThreadCommWorld::execute(p, [&](Comm& comm) {
    MultiVector<double> q(n, 2);
    AlignedVector<double> w(static_cast<std::size_t>(n));
    for (local_index_t i = 0; i < n; ++i) {
      q.column(0)[static_cast<std::size_t>(i)] = 1.0;
      q.column(1)[static_cast<std::size_t>(i)] = static_cast<double>(comm.rank());
      w[static_cast<std::size_t>(i)] = 2.0;
    }
    AlignedVector<double> h(2, 0.0);
    gemv_t(comm, q, 2, std::span<const double>(w.data(), w.size()),
           std::span<double>(h.data(), h.size()));
    EXPECT_DOUBLE_EQ(h[0], 2.0 * n * p);
    // Column 1 holds each rank's id: Σ_r 2n·r = 2n·p(p−1)/2.
    EXPECT_DOUBLE_EQ(h[1], 2.0 * n * p * (p - 1) / 2.0);
  });
}

INSTANTIATE_TEST_SUITE_P(GemvWorlds, DistributedBlas,
                         ::testing::Values(3, 8));

}  // namespace
}  // namespace hpgmx
