// Core scalar/index types and precision traits used throughout hpgmx.
//
// The benchmark mixes IEEE double and single precision; every kernel is
// templated on its value type(s) and uses these traits to reason about
// precision-dependent properties (bytes moved, unit roundoff, display name).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <type_traits>

namespace hpgmx {

/// Local (per-rank) row/column index. 32-bit: a rank never owns > 2^31 rows.
using local_index_t = std::int32_t;

/// Compressed ELL column index: the signed 16-bit *delta* col − row. Exact
/// for the 27-pt stencil whenever the local column window (including the
/// remapped halo range) fits in ±kEllDeltaMax; ell_from_csr checks
/// feasibility and falls back to absolute local_index_t columns otherwise.
using ell_delta_t = std::int16_t;

/// Largest representable |col − row| of the compressed-index ELL format.
/// ±32767 (symmetric; INT16_MIN is left unused) so the negation of every
/// stored delta is also representable.
inline constexpr local_index_t kEllDeltaMax = 32767;

/// THE window rule of the compressed-index format — the single predicate
/// every feasibility check (ell_idx16_feasible, ell_from_csr's fused
/// build-time check) evaluates, so the rule cannot drift between the
/// layout the constructor builds and the layout the bytes model predicts.
[[nodiscard]] constexpr bool ell_delta_fits(local_index_t delta) {
  return delta <= kEllDeltaMax && delta >= -kEllDeltaMax;
}

/// Requested column-index width of the optimized (ELL) sparse format.
/// `Auto` compresses to 16-bit deltas whenever the matrix permits and is the
/// production default; the explicit widths pin the layout for ablations
/// (HPGMX_IDX=16|32). Idx16 still falls back to 32-bit when infeasible —
/// large local grids must keep working unchanged.
enum class IndexWidth {
  Auto,   ///< 16-bit deltas when feasible, else 32-bit (default)
  Idx16,  ///< request 16-bit deltas (falls back when infeasible)
  Idx32,  ///< force absolute 32-bit columns (ablation baseline)
};

[[nodiscard]] constexpr std::string_view index_width_name(IndexWidth w) {
  switch (w) {
    case IndexWidth::Auto: return "auto";
    case IndexWidth::Idx16: return "16";
    case IndexWidth::Idx32: return "32";
  }
  return "?";
}

/// Global index across all ranks. 64-bit: global problems exceed 2^31 rows.
using global_index_t = std::int64_t;

/// Floating-point operation counter. Counts can exceed 2^53 at scale, so use
/// a 64-bit unsigned integer rather than double.
using flop_count_t = std::uint64_t;

/// True for the value types kernels are instantiated with. The 16-bit
/// storage formats (src/precision/float16.hpp) specialize this to opt in.
template <typename T>
inline constexpr bool is_supported_value_v =
    std::is_same_v<T, float> || std::is_same_v<T, double>;

/// Compile-time description of a floating-point working precision. The
/// 16-bit storage formats provide their own specializations.
template <typename T>
struct PrecisionTraits {
  static_assert(is_supported_value_v<T>, "unsupported value type");

  /// IEEE unit roundoff (half the machine epsilon).
  static constexpr T unit_roundoff = std::numeric_limits<T>::epsilon() / T(2);

  /// Bytes occupied by one value; the quantity that matters for a
  /// bandwidth-bound kernel.
  static constexpr std::size_t bytes = sizeof(T);

  /// Largest finite value (as double): what a ScaleGuard compares magnitudes
  /// against before demoting into this format.
  static constexpr double max_finite = std::numeric_limits<T>::max();

  /// Short display name used in reports ("fp64" / "fp32").
  static constexpr std::string_view name =
      std::is_same_v<T, double> ? "fp64" : "fp32";
};

/// The wider of two precisions: accumulations in mixed kernels happen here.
template <typename A, typename B>
using wider_t = std::conditional_t<(sizeof(A) >= sizeof(B)), A, B>;

/// Accumulator type a streaming kernel uses for a running sum over values of
/// type T. Identity for the hardware types; the 16-bit storage formats
/// specialize it to float (their arithmetic is promoted through float, and
/// a 16-bit running sum would lose the whole row to roundoff).
template <typename T>
struct accum {
  using type = T;
};

template <typename T>
using accum_t = typename accum<T>::type;

}  // namespace hpgmx
