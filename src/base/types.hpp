// Core scalar/index types and precision traits used throughout hpgmx.
//
// The benchmark mixes IEEE double and single precision; every kernel is
// templated on its value type(s) and uses these traits to reason about
// precision-dependent properties (bytes moved, unit roundoff, display name).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <type_traits>

namespace hpgmx {

/// Local (per-rank) row/column index. 32-bit: a rank never owns > 2^31 rows.
using local_index_t = std::int32_t;

/// Global index across all ranks. 64-bit: global problems exceed 2^31 rows.
using global_index_t = std::int64_t;

/// Floating-point operation counter. Counts can exceed 2^53 at scale, so use
/// a 64-bit unsigned integer rather than double.
using flop_count_t = std::uint64_t;

/// True for the value types kernels are instantiated with. The 16-bit
/// storage formats (src/precision/float16.hpp) specialize this to opt in.
template <typename T>
inline constexpr bool is_supported_value_v =
    std::is_same_v<T, float> || std::is_same_v<T, double>;

/// Compile-time description of a floating-point working precision. The
/// 16-bit storage formats provide their own specializations.
template <typename T>
struct PrecisionTraits {
  static_assert(is_supported_value_v<T>, "unsupported value type");

  /// IEEE unit roundoff (half the machine epsilon).
  static constexpr T unit_roundoff = std::numeric_limits<T>::epsilon() / T(2);

  /// Bytes occupied by one value; the quantity that matters for a
  /// bandwidth-bound kernel.
  static constexpr std::size_t bytes = sizeof(T);

  /// Largest finite value (as double): what a ScaleGuard compares magnitudes
  /// against before demoting into this format.
  static constexpr double max_finite = std::numeric_limits<T>::max();

  /// Short display name used in reports ("fp64" / "fp32").
  static constexpr std::string_view name =
      std::is_same_v<T, double> ? "fp64" : "fp32";
};

/// The wider of two precisions: accumulations in mixed kernels happen here.
template <typename A, typename B>
using wider_t = std::conditional_t<(sizeof(A) >= sizeof(B)), A, B>;

/// Accumulator type a streaming kernel uses for a running sum over values of
/// type T. Identity for the hardware types; the 16-bit storage formats
/// specialize it to float (their arithmetic is promoted through float, and
/// a 16-bit running sum would lose the whole row to roundoff).
template <typename T>
struct accum {
  using type = T;
};

template <typename T>
using accum_t = typename accum<T>::type;

}  // namespace hpgmx
