// Monotonic wall-clock timing.
#pragma once

#include <chrono>

namespace hpgmx {

/// Steady-clock stopwatch. Construction starts it; `seconds()` reads the
/// elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hpgmx
