#include "base/event_sink.hpp"

namespace hpgmx {

NullEventSink& null_event_sink() {
  static NullEventSink sink;
  return sink;
}

}  // namespace hpgmx
