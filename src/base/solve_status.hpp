// SolveStatus: the structured failure taxonomy every solve reports instead
// of a bare converged bool. A status is always rank-uniform — each value is
// decided from allreduce-derived quantities (residual norms, finite votes,
// the cancellation/deadline trip lane), never from a rank-local predicate —
// so all SPMD ranks exit a solve with the same status at the same iteration.
#pragma once

#include <string_view>

namespace hpgmx {

enum class SolveStatus {
  Converged,         ///< relative residual reached the tolerance
  Stagnated,         ///< iteration budget exhausted above the tolerance
  NonFinite,         ///< inner basis/correction non-finite, guard exhausted
  Corrupted,         ///< SDC detected and the recovery budget was exhausted
  DeadlineExceeded,  ///< cooperative deadline tripped mid-solve
  Cancelled,         ///< cancellation token tripped mid-solve
  Rejected,          ///< request refused before any iteration (e.g. 0 RHS)
};

[[nodiscard]] constexpr std::string_view solve_status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::Converged:
      return "converged";
    case SolveStatus::Stagnated:
      return "stagnated";
    case SolveStatus::NonFinite:
      return "non_finite";
    case SolveStatus::Corrupted:
      return "corrupted";
    case SolveStatus::DeadlineExceeded:
      return "deadline_exceeded";
    case SolveStatus::Cancelled:
      return "cancelled";
    case SolveStatus::Rejected:
      return "rejected";
  }
  return "rejected";
}

}  // namespace hpgmx
