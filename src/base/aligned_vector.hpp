// Cache-line / SIMD aligned contiguous storage.
//
// Sparse kernels stream long arrays; aligning them to 64 bytes keeps loads on
// cache-line boundaries and lets the compiler emit aligned vector moves.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace hpgmx {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator yielding 64-byte-aligned heap blocks.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) {
      return nullptr;
    }
    const std::size_t bytes =
        ((n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
        kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) {
      throw std::bad_alloc{};
    }
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// The vector type used for all numerical arrays in hpgmx.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hpgmx
