// Silent-data-corruption (SDC) harness: deterministic value-fault injection,
// the per-rank corruption monitor, and the detection/recovery policy.
//
// PR 9's ChaosComm perturbs *timing* and is deliberately value-transparent;
// this layer is its complement — it flips actual payload bits so the
// detection machinery (halo checksums + true-residual audits) and the
// checkpoint/rollback recovery path can be exercised and gated in CI:
//
//   HPGMX_FAULT=flip:1,target:vec,iter:2,count:1   HPGMX_FAULT_SEED=42
//
// Grammar (`FaultConfig::parse`):
//
//   flip:p       probability a flip opportunity fires (required, in [0,1])
//   target:t     halo    — received halo payload bytes (via ChaosComm)
//                vec     — the outer solver iterate at a cycle boundary
//                values  — low-precision operator values (ELL slab)
//   bit:n        pin the flipped bit index within an element (default: a
//                seeded draw; n is taken modulo the element's bit width)
//   iter:n       script the flip to outer iteration/cycle n (vec/values
//                targets only — halo sites carry no iteration number and
//                never fire when iter is set)
//   count:n      per-rank cap on total flips (default: unlimited)
//   rank:r       only rank r injects (default: every rank)
//
// Determinism: like ChaosComm, every decision is drawn from the stateless
// splitmix64 stream hash_rand(seed ^ rank-salt, draw-counter), so a rank's
// flip sequence depends only on (seed, rank, its own operation order) — two
// runs with the same HPGMX_FAULT_SEED corrupt exactly the same bits and,
// because detection and rollback are themselves deterministic, recover to
// bit-identical solutions. Each rank owns its injector and monitor; there is
// no cross-rank shared state.
//
// Detection rides the existing reductions: each rank contributes
// SdcMonitor::lane() (exactly 0.0 or 1.0) as one extra lane on the batched
// scalar allreduces — the same pattern as SolveControl::trip_lane — and
// every rank decodes the same verdict (sum > 0) at the same iteration. Zero
// new collectives on the detection path.
#pragma once

#include <bit>
#include <charconv>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>

#include "base/error.hpp"
#include "base/options.hpp"
#include "base/rng.hpp"

namespace hpgmx {

namespace detail {
template <std::size_t Bytes>
struct UIntBits;
template <>
struct UIntBits<2> {
  using type = std::uint16_t;
};
template <>
struct UIntBits<4> {
  using type = std::uint32_t;
};
template <>
struct UIntBits<8> {
  using type = std::uint64_t;
};
}  // namespace detail

/// Unsigned integer with the same width as T's storage (bf16_t/fp16_t are
/// 16-bit bit-holders, so every supported value type has one).
template <typename T>
using uint_bits_t = typename detail::UIntBits<sizeof(T)>::type;

/// Additive checksum over the *bit patterns* of a payload: the wrapping sum
/// of each element reinterpreted as its same-width unsigned integer. A flip
/// of bit k in any word (payload or checksum) perturbs the sum by ±2^k mod
/// 2^w, which is nonzero — so every single-bit fault is caught, at the cost
/// of one extra element per message and one add per word. Returned as a T so
/// it can ride the wire as the message's final element.
template <typename T>
[[nodiscard]] inline T additive_checksum(const T* data, std::size_t n) {
  using U = uint_bits_t<T>;
  U sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum = static_cast<U>(sum + std::bit_cast<U>(data[i]));
  }
  return std::bit_cast<T>(sum);
}

enum class FaultTarget {
  None,    ///< injector disabled
  Halo,    ///< received halo payload bytes (ChaosComm recv paths)
  Vec,     ///< outer solver iterate at the cycle/iteration boundary
  Values,  ///< low-precision operator values (optimized ELL slab)
};

[[nodiscard]] constexpr std::string_view fault_target_name(FaultTarget t) {
  switch (t) {
    case FaultTarget::None:
      return "none";
    case FaultTarget::Halo:
      return "halo";
    case FaultTarget::Vec:
      return "vec";
    case FaultTarget::Values:
      return "values";
  }
  return "none";
}

struct FaultConfig {
  double flip_prob = 0.0;                      ///< P(a flip opportunity fires)
  FaultTarget target = FaultTarget::None;      ///< what gets corrupted
  int bit = -1;                                ///< pinned bit index (-1=draw)
  std::int64_t iter = -1;                      ///< scripted iteration (-1=any)
  std::int64_t max_flips = 0;                  ///< per-rank cap (0=unlimited)
  int rank = -1;                               ///< injecting rank (-1=all)
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;  ///< HPGMX_FAULT_SEED

  [[nodiscard]] bool enabled() const {
    return flip_prob > 0.0 && target != FaultTarget::None;
  }

  /// Parse "flip:p,target:halo|vec|values[,bit:n][,iter:n][,count:n][,rank:r]".
  /// Throws hpgmx::Error on unknown keys or out-of-range values.
  [[nodiscard]] static FaultConfig parse(std::string_view spec) {
    FaultConfig cfg;
    if (spec.empty() || spec == "off") {
      return cfg;
    }
    const auto parse_double = [](std::string_view key, std::string_view value) {
      double out = 0.0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), out);
      HPGMX_CHECK_MSG(ec == std::errc{} && ptr == value.data() + value.size(),
                      "HPGMX_FAULT: bad value '" << std::string(value)
                                                 << "' for "
                                                 << std::string(key));
      return out;
    };
    const auto parse_int = [](std::string_view key, std::string_view value) {
      std::int64_t out = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), out);
      HPGMX_CHECK_MSG(ec == std::errc{} && ptr == value.data() + value.size(),
                      "HPGMX_FAULT: bad value '" << std::string(value)
                                                 << "' for "
                                                 << std::string(key));
      return out;
    };
    std::string_view rest = spec;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view field =
          comma == std::string_view::npos ? rest : rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      const std::size_t colon = field.find(':');
      HPGMX_CHECK_MSG(colon != std::string_view::npos,
                      "HPGMX_FAULT: field '" << std::string(field)
                                             << "' is not key:value");
      const std::string_view key = field.substr(0, colon);
      const std::string_view value = field.substr(colon + 1);
      if (key == "flip") {
        cfg.flip_prob = parse_double(key, value);
        HPGMX_CHECK_MSG(cfg.flip_prob >= 0.0 && cfg.flip_prob <= 1.0,
                        "HPGMX_FAULT: flip probability must be in [0,1]");
      } else if (key == "target") {
        if (value == "halo") {
          cfg.target = FaultTarget::Halo;
        } else if (value == "vec") {
          cfg.target = FaultTarget::Vec;
        } else if (value == "values") {
          cfg.target = FaultTarget::Values;
        } else {
          HPGMX_CHECK_MSG(value == "none", "HPGMX_FAULT: unknown target '"
                                               << std::string(value) << "'");
          cfg.target = FaultTarget::None;
        }
      } else if (key == "bit") {
        cfg.bit = static_cast<int>(parse_int(key, value));
        HPGMX_CHECK_MSG(cfg.bit >= -1, "HPGMX_FAULT: bit must be >= 0");
      } else if (key == "iter") {
        cfg.iter = parse_int(key, value);
      } else if (key == "count") {
        cfg.max_flips = parse_int(key, value);
        HPGMX_CHECK_MSG(cfg.max_flips >= 0,
                        "HPGMX_FAULT: count must be >= 0");
      } else if (key == "rank") {
        cfg.rank = static_cast<int>(parse_int(key, value));
      } else {
        HPGMX_CHECK_MSG(false, "HPGMX_FAULT: unknown key '" << std::string(key)
                                                            << "'");
      }
    }
    return cfg;
  }

  /// HPGMX_FAULT (spec) + HPGMX_FAULT_SEED; disabled config when unset.
  [[nodiscard]] static FaultConfig from_env() {
    FaultConfig cfg;
    if (const auto spec = env_string("HPGMX_FAULT")) {
      cfg = parse(*spec);
    }
    cfg.seed = static_cast<std::uint64_t>(
        env_int_or("HPGMX_FAULT_SEED", static_cast<std::int64_t>(cfg.seed)));
    return cfg;
  }

  /// Canonical spec string (round-trips through parse); "off" if disabled.
  [[nodiscard]] std::string to_string() const {
    if (!enabled()) {
      return "off";
    }
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "flip:%.17g,target:%s,bit:%d,iter:%lld,count:%lld,rank:%d",
                  flip_prob, std::string(fault_target_name(target)).c_str(),
                  bit, static_cast<long long>(iter),
                  static_cast<long long>(max_flips), rank);
    return buf;
  }
};

/// Per-rank bit-flip source. Each flip opportunity consumes draws from this
/// rank's stream regardless of whether it fires, so the flip schedule is a
/// pure function of (seed, rank, opportunity order).
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, int rank)
      : cfg_(cfg),
        rank_(rank),
        // Same rank-salt recipe as ChaosComm: distinct ranks draw
        // independent sequences from one seed.
        stream_(splitmix64(cfg.seed) ^
                splitmix64(0xC2B2AE3D27D4EB4FULL *
                           (static_cast<std::uint64_t>(rank) + 1))) {}

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

  /// Is this injector live for the given target on this rank (config armed,
  /// per-rank flip budget not yet spent)?
  [[nodiscard]] bool armed(FaultTarget t) const {
    return cfg_.enabled() && cfg_.target == t &&
           (cfg_.rank < 0 || cfg_.rank == rank_) &&
           (cfg_.max_flips == 0 ||
            flips_ < static_cast<std::uint64_t>(cfg_.max_flips));
  }

  /// One flip opportunity over a buffer of elements of `elem_bytes` bytes.
  /// `iteration` is the scripted site index (outer cycle for vec/values);
  /// pass -1 for unscripted sites such as halo receives — when the config
  /// pins `iter`, unscripted sites never fire. Returns true when a bit was
  /// flipped.
  bool maybe_flip(FaultTarget site, std::span<std::byte> data,
                  std::size_t elem_bytes, std::int64_t iteration = -1) {
    if (!armed(site) || data.size() < elem_bytes) {
      return false;
    }
    if (cfg_.iter >= 0 && iteration != cfg_.iter) {
      return false;
    }
    if (unit_rand(stream_, draws_++) >= cfg_.flip_prob) {
      return false;
    }
    const std::size_t elems = data.size() / elem_bytes;
    const std::size_t elem =
        static_cast<std::size_t>(hash_rand(stream_, draws_++) % elems);
    const std::size_t elem_bits = elem_bytes * 8;
    const std::size_t bit =
        cfg_.bit >= 0
            ? static_cast<std::size_t>(cfg_.bit) % elem_bits
            : static_cast<std::size_t>(hash_rand(stream_, draws_++) %
                                       elem_bits);
    data[elem * elem_bytes + bit / 8] ^= std::byte{1} << (bit % 8);
    ++flips_;
    return true;
  }

  /// Fire decision + raw draws for an external corruption site whose
  /// geometry the injector cannot see (operator values: the owner reduces
  /// the draws against its live slab — DistOperator::corrupt_value_bit).
  /// Consumes draws exactly like maybe_flip, so vec and values schedules
  /// are interchangeable under one seed.
  bool maybe_draw(FaultTarget site, std::int64_t iteration,
                  std::uint64_t* value_draw, std::uint64_t* bit_draw) {
    if (!armed(site)) {
      return false;
    }
    if (cfg_.iter >= 0 && iteration != cfg_.iter) {
      return false;
    }
    if (unit_rand(stream_, draws_++) >= cfg_.flip_prob) {
      return false;
    }
    *value_draw = hash_rand(stream_, draws_++);
    *bit_draw = hash_rand(stream_, draws_++);
    ++flips_;
    return true;
  }

  [[nodiscard]] std::uint64_t flips() const { return flips_; }
  [[nodiscard]] std::uint64_t draws() const { return draws_; }

 private:
  FaultConfig cfg_;
  int rank_;
  std::uint64_t stream_;
  std::uint64_t draws_ = 0;
  std::uint64_t flips_ = 0;
};

/// Per-rank corruption evidence, reduced to a verdict lane. A halo checksum
/// mismatch flags the monitor; the owning solver packs lane() onto its next
/// batched allreduce and every rank decodes the same verdict (sum > 0).
/// Plain fields: one monitor per rank, touched only by that rank's thread.
class SdcMonitor {
 public:
  /// Record a checksum mismatch on a received halo message.
  void flag_checksum() {
    ++checksum_failures_;
    pending_ = true;
  }

  /// Verdict-lane contribution: exactly 0.0 or 1.0, so the reduced sum is
  /// an exact rank count for any size < 2^53 and decode is rank-uniform.
  [[nodiscard]] double lane() const { return pending_ ? 1.0 : 0.0; }

  /// Decode a reduced verdict lane: did any rank flag corruption?
  [[nodiscard]] static bool decode(double reduced_sum) {
    return reduced_sum > 0.0;
  }

  /// Acknowledge the pending flag after rollback (the cumulative counter
  /// survives for reporting).
  void clear() { pending_ = false; }

  [[nodiscard]] bool pending() const { return pending_; }
  [[nodiscard]] std::uint64_t checksum_failures() const {
    return checksum_failures_;
  }

 private:
  bool pending_ = false;
  std::uint64_t checksum_failures_ = 0;
};

/// Detection + recovery policy for the outer Krylov loops.
struct SdcPolicy {
  bool detect = false;          ///< master switch (HPGMX_AUDIT=1)
  int audit_interval = 8;       ///< CG true-residual audit cadence (iters)
  double audit_drift = 1e4;     ///< CG drift threshold, multiples of eps_T
  double audit_growth = 100.0;  ///< GMRES(-IR) growth-vs-best factor
  int checkpoint_interval = 4;  ///< outer-state checkpoint cadence (cycles)
  int max_recoveries = 3;       ///< rollback budget before Corrupted

  [[nodiscard]] bool enabled() const { return detect; }

  /// HPGMX_AUDIT (0/1) + HPGMX_AUDIT_INTERVAL/HPGMX_AUDIT_DRIFT/
  /// HPGMX_AUDIT_GROWTH + HPGMX_CHECKPOINT/HPGMX_CHECKPOINT_BUDGET.
  [[nodiscard]] static SdcPolicy from_env() {
    SdcPolicy p;
    p.detect = env_int_or("HPGMX_AUDIT", 0) != 0;
    p.audit_interval = static_cast<int>(
        env_int_or("HPGMX_AUDIT_INTERVAL", p.audit_interval));
    HPGMX_CHECK_MSG(p.audit_interval > 0,
                    "HPGMX_AUDIT_INTERVAL must be positive");
    p.audit_drift = env_double_or("HPGMX_AUDIT_DRIFT", p.audit_drift);
    p.audit_growth = env_double_or("HPGMX_AUDIT_GROWTH", p.audit_growth);
    p.checkpoint_interval = static_cast<int>(
        env_int_or("HPGMX_CHECKPOINT", p.checkpoint_interval));
    HPGMX_CHECK_MSG(p.checkpoint_interval > 0,
                    "HPGMX_CHECKPOINT must be positive");
    p.max_recoveries = static_cast<int>(
        env_int_or("HPGMX_CHECKPOINT_BUDGET", p.max_recoveries));
    return p;
  }
};

/// Format-aware growth threshold: 16-bit inner formats see legitimately
/// larger residual excursions (guard backoffs, rung promotions), so the
/// growth audit gets extra headroom before calling corruption.
[[nodiscard]] inline double sdc_growth_threshold(const SdcPolicy& p,
                                                 std::size_t value_bytes) {
  return p.audit_growth * (value_bytes <= 2 ? 16.0 : 1.0);
}

}  // namespace hpgmx
