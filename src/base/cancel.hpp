// Rank-consistent cooperative cancellation and deadlines.
//
// The hard problem is not noticing that time ran out — it is making P SPMD
// ranks agree to stop at the SAME iteration, or their collective schedules
// deadlock (rank 0 exits while rank 1 posts the next allreduce). The trick,
// shared with the PR 6 finite-vote: a rank never acts on its own clock or
// token read. Each rank contributes a small "trip lane" value to a scalar
// Sum-allreduce the solver was already doing (CG's packed ‖r‖²/⟨r,z⟩
// message, GMRES-IR's candidate-accept message, GMRES's cycle-top norm) and
// every rank decodes the SAME reduced sum — zero new collectives, and the
// stop decision is bitwise-uniform by construction even under clock skew.
//
// Encoding (Sum over P ranks, each lane value a small exact integer):
//   0             — this rank sees no trip
//   1             — this rank's deadline expired
//   P + 1         — this rank saw the cancellation token
// A deadline-only sum is at most P < P+1, so the reduced value S decodes
// unambiguously: S == 0 none, S >= P+1 cancelled (cancellation outranks the
// deadline), anything else deadline. Exact in double (and in float for
// P < 2^22), so the decode is itself deterministic.
//
// A default SolveControl is inert: solvers test `active()` once and keep
// their PR 8 code paths (same messages, same bytes, same bits) when no
// deadline or token is attached.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>

#include "base/solve_status.hpp"

namespace hpgmx {

/// Sticky cooperative cancellation flag, safe to trip from any thread.
/// Solvers only ever read it; the trip becomes effective at the next
/// reduction that carries the trip lane.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A monotonic-clock deadline (same steady_clock as WallTimer). Default is
/// "never": finite() is false and expired() never trips.
class Deadline {
 public:
  Deadline() = default;

  [[nodiscard]] static Deadline never() { return Deadline{}; }

  /// Deadline `seconds` from now; non-positive values are already expired.
  [[nodiscard]] static Deadline after(double seconds) {
    Deadline d;
    d.finite_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  [[nodiscard]] bool finite() const { return finite_; }
  [[nodiscard]] bool expired() const {
    return finite_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Seconds until expiry (negative once expired); +inf for never().
  [[nodiscard]] double remaining_seconds() const {
    if (!finite_) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(at_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  bool finite_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Why a solve's trip lane fired.
enum class TripCause { None, DeadlineExpired, Cancelled };

[[nodiscard]] constexpr SolveStatus trip_status(TripCause c) {
  switch (c) {
    case TripCause::DeadlineExpired:
      return SolveStatus::DeadlineExceeded;
    case TripCause::Cancelled:
      return SolveStatus::Cancelled;
    case TripCause::None:
      break;
  }
  return SolveStatus::Stagnated;  // not a trip; callers never map None
}

/// The per-solve control block: an optional shared token plus a deadline,
/// passed by value inside SolverOptions. Both monotone (a trip never
/// un-trips), so re-evaluating the lane on a later reduction can only move
/// from "no trip" toward "tripped" — a discarded GMRES-IR candidate that
/// re-reduces at the loop top cannot lose a trip.
struct SolveControl {
  const CancelToken* cancel = nullptr;  ///< not owned; may be null
  Deadline deadline{};                  ///< never() by default

  /// Whether any control is attached. When false, solvers take their
  /// control-free code paths and the iteration is bitwise identical to a
  /// build without this header.
  [[nodiscard]] bool active() const {
    return cancel != nullptr || deadline.finite();
  }

  /// This rank's trip-lane contribution for a Sum-allreduce over
  /// `comm_size` ranks (see the encoding table above).
  [[nodiscard]] double trip_lane(int comm_size) const {
    if (cancel != nullptr && cancel->cancelled()) {
      return static_cast<double>(comm_size) + 1.0;
    }
    if (deadline.expired()) {
      return 1.0;
    }
    return 0.0;
  }

  /// Decode the Sum-reduced lane. Every rank decodes the same reduced
  /// value, so the returned cause is rank-uniform.
  [[nodiscard]] static TripCause decode_trip(double reduced_sum,
                                             int comm_size) {
    if (reduced_sum >= static_cast<double>(comm_size) + 1.0) {
      return TripCause::Cancelled;
    }
    if (reduced_sum > 0.0) {
      return TripCause::DeadlineExpired;
    }
    return TripCause::None;
  }
};

}  // namespace hpgmx
