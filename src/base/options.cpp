#include "base/options.hpp"

#include <cstdlib>

namespace hpgmx {

std::optional<std::int64_t> env_int(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(parsed);
}

std::optional<double> env_double(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) {
    return std::nullopt;
  }
  return parsed;
}

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  return std::string(v);
}

std::int64_t env_int_or(const std::string& name, std::int64_t fallback) {
  return env_int(name).value_or(fallback);
}

double env_double_or(const std::string& name, double fallback) {
  return env_double(name).value_or(fallback);
}

std::string env_string_or(const std::string& name, std::string fallback) {
  return env_string(name).value_or(std::move(fallback));
}

}  // namespace hpgmx
