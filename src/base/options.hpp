// Lightweight runtime configuration via environment variables.
//
// Bench harnesses must run unattended ("for b in build/bench/*; do $b; done"),
// so every tunable has a default sized for a laptop-class machine and can be
// scaled up via HPGMX_* environment variables on bigger hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hpgmx {

/// Read an integer environment variable; empty optional when unset/invalid.
std::optional<std::int64_t> env_int(const std::string& name);

/// Read a floating-point environment variable.
std::optional<double> env_double(const std::string& name);

/// Read a string environment variable.
std::optional<std::string> env_string(const std::string& name);

/// Integer env var with default.
std::int64_t env_int_or(const std::string& name, std::int64_t fallback);

/// Double env var with default.
double env_double_or(const std::string& name, double fallback);

/// String env var with default.
std::string env_string_or(const std::string& name, std::string fallback);

}  // namespace hpgmx
