// Deterministic, splittable pseudo-random number generation.
//
// All randomness in the benchmark (JPL coloring weights, synthetic vectors)
// is seeded so that runs are bit-reproducible at a fixed rank count, a
// property the validation phase relies on. SplitMix64 is used because a
// per-index stateless hash lets parallel loops draw independent values
// without sharing generator state.
#pragma once

#include <cstdint>

namespace hpgmx {

/// SplitMix64: high-quality 64-bit mixing function (Steele et al., OOPSLA'14).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Stateless per-index random value: hash of (seed, index). Two distinct
/// (seed, index) pairs give statistically independent draws.
constexpr std::uint64_t hash_rand(std::uint64_t seed,
                                  std::uint64_t index) noexcept {
  return splitmix64(splitmix64(seed) ^ splitmix64(index * 0xD1342543DE82EF95ULL + 1));
}

/// Uniform double in [0, 1) from a 64-bit hash value.
constexpr double to_unit_double(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Convenience: uniform double in [0,1) for (seed, index).
constexpr double unit_rand(std::uint64_t seed, std::uint64_t index) noexcept {
  return to_unit_double(hash_rand(seed, index));
}

}  // namespace hpgmx
