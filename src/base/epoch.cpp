#include "base/epoch.hpp"

#include <chrono>

namespace hpgmx {

double epoch_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

}  // namespace hpgmx
