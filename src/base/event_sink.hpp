// Minimal event-recording interface, implemented by perf::TraceRecorder.
//
// Lower-level modules (comm, sparse) emit timeline events through this
// interface without depending on the perf library; a null sink is the
// default so instrumentation has no cost when tracing is off.
#pragma once

#include <string_view>

namespace hpgmx {

/// Receives (lane, name, begin, end) intervals in seconds measured from an
/// epoch the implementation defines. Thread-safety is the implementer's
/// responsibility; hpgmx emits events from rank threads concurrently.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Record one completed interval on a named lane ("compute", "halo", ...).
  virtual void record(int rank, std::string_view lane, std::string_view name,
                      double t_begin, double t_end) = 0;
};

/// Sink that drops everything; used when tracing is disabled.
class NullEventSink final : public EventSink {
 public:
  void record(int, std::string_view, std::string_view, double,
              double) override {}
};

/// Process-wide fallback sink instance.
NullEventSink& null_event_sink();

}  // namespace hpgmx
