// Process-wide time epoch so events recorded on different rank threads share
// one time axis (needed to render Fig. 9-style overlap timelines).
#pragma once

namespace hpgmx {

/// Seconds elapsed since the first call to this function in the process.
double epoch_seconds();

}  // namespace hpgmx
