// Error handling: checked assertions that throw (so tests can verify error
// paths) and a project exception type carrying source location.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hpgmx {

/// Exception thrown on violated preconditions and invariant failures.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what_arg, std::source_location loc)
      : std::runtime_error(format(what_arg, loc)) {}

 private:
  static std::string format(const std::string& msg, std::source_location loc) {
    std::ostringstream os;
    os << loc.file_name() << ':' << loc.line() << " [" << loc.function_name()
       << "] " << msg;
    return os.str();
  }
};

namespace detail {
[[noreturn]] inline void throw_error(const char* expr, const std::string& msg,
                                     std::source_location loc) {
  std::string full = std::string("check failed: ") + expr;
  if (!msg.empty()) {
    full += " — " + msg;
  }
  throw Error(full, loc);
}
}  // namespace detail

}  // namespace hpgmx

/// Always-on precondition / invariant check. Throws hpgmx::Error on failure.
/// Unlike assert(3) this is active in Release builds: benchmark correctness
/// bugs must never be silently ignored.
#define HPGMX_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hpgmx::detail::throw_error(#expr, "",                              \
                                   std::source_location::current());       \
    }                                                                      \
  } while (false)

/// Check with an explanatory message (streamed into a string).
#define HPGMX_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream hpgmx_os_;                                        \
      hpgmx_os_ << msg;                                                    \
      ::hpgmx::detail::throw_error(#expr, hpgmx_os_.str(),                 \
                                   std::source_location::current());       \
    }                                                                      \
  } while (false)
