// Per-motif accounting of time and floating-point work.
//
// The benchmark reports its breakdown over the computational motifs of
// GMRES-IR (paper Fig. 7): Gauss–Seidel smoothing, CGS2 orthogonalization,
// SpMV, restriction, plus the smaller prolongation/vector-update/other
// buckets. FLOPs of all precisions count equally (paper §3: the metric is a
// mixed-precision GFLOP/s figure).
#pragma once

#include <array>
#include <string_view>

#include "base/timer.hpp"
#include "base/types.hpp"

namespace hpgmx {

enum class Motif : int {
  GS = 0,      ///< Gauss–Seidel smoother sweeps (all multigrid levels)
  Ortho,       ///< CGS2 orthogonalization (GEMV-T/N, norms)
  SpMV,        ///< fine-level products and residuals
  Restrict,    ///< (fused) residual restriction
  Prolong,     ///< prolongation + correction
  Vector,      ///< WAXPBY / scal / copy updates
  Other,       ///< everything else (Givens QR, small solves)
  kCount
};

inline constexpr int kNumMotifs = static_cast<int>(Motif::kCount);

[[nodiscard]] constexpr std::string_view motif_name(Motif m) {
  switch (m) {
    case Motif::GS: return "GS";
    case Motif::Ortho: return "Ortho";
    case Motif::SpMV: return "SpMV";
    case Motif::Restrict: return "Restr";
    case Motif::Prolong: return "Prolong";
    case Motif::Vector: return "Vector";
    case Motif::Other: return "Other";
    case Motif::kCount: break;
  }
  return "?";
}

/// Accumulated wall time and FLOPs per motif.
class MotifStats {
 public:
  void add(Motif m, double seconds, flop_count_t flops) {
    seconds_[static_cast<std::size_t>(m)] += seconds;
    flops_[static_cast<std::size_t>(m)] += flops;
  }

  void add_flops(Motif m, flop_count_t flops) {
    flops_[static_cast<std::size_t>(m)] += flops;
  }

  [[nodiscard]] double seconds(Motif m) const {
    return seconds_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] flop_count_t flops(Motif m) const {
    return flops_[static_cast<std::size_t>(m)];
  }

  [[nodiscard]] double total_seconds() const {
    double t = 0;
    for (const double s : seconds_) {
      t += s;
    }
    return t;
  }

  [[nodiscard]] flop_count_t total_flops() const {
    flop_count_t f = 0;
    for (const flop_count_t x : flops_) {
      f += x;
    }
    return f;
  }

  /// GFLOP/s of one motif (0 when it consumed no time).
  [[nodiscard]] double gflops(Motif m) const {
    const double s = seconds(m);
    return s > 0 ? static_cast<double>(flops(m)) / s * 1e-9 : 0.0;
  }

  void merge(const MotifStats& other) {
    for (int i = 0; i < kNumMotifs; ++i) {
      seconds_[static_cast<std::size_t>(i)] +=
          other.seconds_[static_cast<std::size_t>(i)];
      flops_[static_cast<std::size_t>(i)] +=
          other.flops_[static_cast<std::size_t>(i)];
    }
  }

  void reset() {
    seconds_.fill(0.0);
    flops_.fill(0);
  }

 private:
  std::array<double, kNumMotifs> seconds_{};
  std::array<flop_count_t, kNumMotifs> flops_{};
};

/// RAII timer: charges the elapsed scope time (and given FLOPs) to a motif.
class ScopedMotif {
 public:
  ScopedMotif(MotifStats* stats, Motif motif, flop_count_t flops = 0)
      : stats_(stats), motif_(motif), flops_(flops) {}

  ~ScopedMotif() {
    if (stats_ != nullptr) {
      stats_->add(motif_, timer_.seconds(), flops_);
    }
  }

  ScopedMotif(const ScopedMotif&) = delete;
  ScopedMotif& operator=(const ScopedMotif&) = delete;

  /// FLOPs may be known only at scope end; set/override them here.
  void set_flops(flop_count_t flops) { flops_ = flops; }

 private:
  MotifStats* stats_;
  Motif motif_;
  flop_count_t flops_;
  WallTimer timer_;
};

}  // namespace hpgmx
