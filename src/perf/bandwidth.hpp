// Measured memory-bandwidth roof for the roofline analysis (paper Fig. 8):
// a STREAM-triad-style probe on the host plays the role the vendor HBM
// bandwidth number plays on the MI250x GCD.
#pragma once

#include <cstddef>

namespace hpgmx {

struct BandwidthResult {
  double triad_gbs = 0;  ///< best-of-reps a[i] = b[i] + s*c[i] bandwidth
  double copy_gbs = 0;   ///< best-of-reps a[i] = b[i] bandwidth
};

/// Run the probe with 3 arrays of `elements` doubles, `reps` repetitions,
/// reporting the best sustained rate. The default working set (3 × 256 MB)
/// deliberately exceeds even large server L3 caches so the roof is DRAM,
/// not cache, bandwidth.
BandwidthResult measure_stream_bandwidth(std::size_t elements = (1u << 25),
                                         int reps = 3);

}  // namespace hpgmx
