#include "perf/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace hpgmx {

void TraceRecorder::record(int rank, std::string_view lane,
                           std::string_view name, double t_begin,
                           double t_end) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      {rank, std::string(lane), std::string(name), t_begin, t_end});
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<TraceEvent> TraceRecorder::events_for(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.rank == rank) {
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t_begin < b.t_begin;
            });
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

namespace {

/// Merge intervals and return total covered length.
double covered_seconds(std::vector<std::pair<double, double>> iv) {
  std::sort(iv.begin(), iv.end());
  double total = 0;
  double cur_lo = 0, cur_hi = -1;
  for (const auto& [lo, hi] : iv) {
    if (hi <= cur_hi) {
      continue;
    }
    if (lo > cur_hi) {
      if (cur_hi > cur_lo) {
        total += cur_hi - cur_lo;
      }
      cur_lo = lo;
      cur_hi = hi;
    } else {
      cur_hi = hi;
    }
  }
  if (cur_hi > cur_lo) {
    total += cur_hi - cur_lo;
  }
  return total;
}

/// Intersection length of two merged interval sets.
double intersection_seconds(std::vector<std::pair<double, double>> a,
                            std::vector<std::pair<double, double>> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double total = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

double TraceRecorder::lane_busy_seconds(int rank,
                                        std::string_view lane) const {
  std::vector<std::pair<double, double>> iv;
  for (const auto& e : events_for(rank)) {
    if (e.lane == lane) {
      iv.emplace_back(e.t_begin, e.t_end);
    }
  }
  return covered_seconds(std::move(iv));
}

double TraceRecorder::overlap_fraction(int rank, std::string_view lane_a,
                                       std::string_view lane_b) const {
  std::vector<std::pair<double, double>> a, b;
  for (const auto& e : events_for(rank)) {
    if (e.lane == lane_a) {
      a.emplace_back(e.t_begin, e.t_end);
    } else if (e.lane == lane_b) {
      b.emplace_back(e.t_begin, e.t_end);
    }
  }
  const double busy_a = covered_seconds(a);
  if (busy_a <= 0) {
    return 0.0;
  }
  return intersection_seconds(std::move(a), std::move(b)) / busy_a;
}

std::string TraceRecorder::render_timeline(int rank, int width) const {
  const auto evs = events_for(rank);
  if (evs.empty()) {
    return "(no events)\n";
  }
  double t0 = evs.front().t_begin;
  double t1 = t0;
  for (const auto& e : evs) {
    t0 = std::min(t0, e.t_begin);
    t1 = std::max(t1, e.t_end);
  }
  const double span = std::max(t1 - t0, 1e-12);

  // Stable lane order: first appearance.
  std::vector<std::string> lanes;
  for (const auto& e : evs) {
    if (std::find(lanes.begin(), lanes.end(), e.lane) == lanes.end()) {
      lanes.push_back(e.lane);
    }
  }

  std::ostringstream os;
  os << "rank " << rank << "  [" << t0 << "s .. " << t1 << "s], "
     << (span * 1e3) << " ms total\n";
  for (const auto& lane : lanes) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& e : evs) {
      if (e.lane != lane) {
        continue;
      }
      int b = static_cast<int>(std::floor((e.t_begin - t0) / span * width));
      int en = static_cast<int>(std::ceil((e.t_end - t0) / span * width));
      b = std::clamp(b, 0, width - 1);
      en = std::clamp(en, b + 1, width);
      const char glyph = e.name.empty() ? '#' : e.name[0];
      for (int c = b; c < en; ++c) {
        row[static_cast<std::size_t>(c)] = glyph;
      }
    }
    os << "  " << lane;
    for (std::size_t pad = lane.size(); pad < 10; ++pad) {
      os << ' ';
    }
    os << '|' << row << "|\n";
  }
  return os.str();
}

}  // namespace hpgmx
