// Timeline tracing of compute and communication lanes (paper Fig. 9).
//
// Ranks record (lane, name, interval) events through the EventSink
// interface; the recorder renders per-rank ASCII timelines and computes how
// much of the halo lane's busy time was hidden behind the compute lane —
// the quantitative version of "communication is completely hidden by the
// interior Gauss–Seidel kernel".
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "base/event_sink.hpp"

namespace hpgmx {

struct TraceEvent {
  int rank = 0;
  std::string lane;
  std::string name;
  double t_begin = 0;
  double t_end = 0;
};

class TraceRecorder final : public EventSink {
 public:
  void record(int rank, std::string_view lane, std::string_view name,
              double t_begin, double t_end) override;

  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events of one rank, sorted by begin time.
  [[nodiscard]] std::vector<TraceEvent> events_for(int rank) const;

  void clear();

  /// ASCII timeline of one rank: one row per lane, `width` time bins between
  /// the rank's first and last event.
  [[nodiscard]] std::string render_timeline(int rank, int width = 96) const;

  /// Fraction of `lane_a` busy time that coincides with `lane_b` busy time
  /// on `rank` (1.0 = fully overlapped/hidden).
  [[nodiscard]] double overlap_fraction(int rank, std::string_view lane_a,
                                        std::string_view lane_b) const;

  /// Total busy seconds of a lane on a rank.
  [[nodiscard]] double lane_busy_seconds(int rank,
                                         std::string_view lane) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace hpgmx
