// Roofline bookkeeping (paper Fig. 8): kernels characterized by their
// modeled FLOP and byte counts and their measured wall time, compared
// against the machine's bandwidth roof.
#pragma once

#include <string>
#include <vector>

namespace hpgmx {

/// One kernel's roofline sample.
struct KernelSample {
  std::string name;
  double flops = 0;    ///< floating-point operations performed
  double bytes = 0;    ///< bytes moved to/from memory (model)
  double seconds = 0;  ///< measured wall time

  [[nodiscard]] double arithmetic_intensity() const {
    return bytes > 0 ? flops / bytes : 0;
  }
  [[nodiscard]] double achieved_gflops() const {
    return seconds > 0 ? flops / seconds * 1e-9 : 0;
  }
  [[nodiscard]] double achieved_gbs() const {
    return seconds > 0 ? bytes / seconds * 1e-9 : 0;
  }
};

/// Attainable GFLOP/s at a given intensity under the given roofs
/// (peak_gflops <= 0 means bandwidth roof only).
double roofline_attainable_gflops(double intensity_flop_per_byte,
                                  double mem_bw_gbs, double peak_gflops);

/// Formatted table: kernel, AI, achieved GF/s, roof GF/s, % of roof,
/// achieved GB/s.
std::string roofline_report(const std::vector<KernelSample>& samples,
                            double mem_bw_gbs, double peak_gflops);

}  // namespace hpgmx
