#include "perf/roofline.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hpgmx {

double roofline_attainable_gflops(double intensity_flop_per_byte,
                                  double mem_bw_gbs, double peak_gflops) {
  const double bw_roof = mem_bw_gbs * intensity_flop_per_byte;
  if (peak_gflops <= 0) {
    return bw_roof;
  }
  return std::min(bw_roof, peak_gflops);
}

std::string roofline_report(const std::vector<KernelSample>& samples,
                            double mem_bw_gbs, double peak_gflops) {
  std::ostringstream os;
  os << std::left << std::setw(30) << "kernel" << std::right << std::setw(10)
     << "AI(F/B)" << std::setw(12) << "GFLOP/s" << std::setw(12) << "roof"
     << std::setw(9) << "%roof" << std::setw(12) << "GB/s" << '\n';
  os << std::string(85, '-') << '\n';
  for (const auto& s : samples) {
    const double ai = s.arithmetic_intensity();
    const double roof = roofline_attainable_gflops(ai, mem_bw_gbs, peak_gflops);
    os << std::left << std::setw(30) << s.name << std::right << std::fixed
       << std::setprecision(3) << std::setw(10) << ai << std::setprecision(2)
       << std::setw(12) << s.achieved_gflops() << std::setw(12) << roof
       << std::setprecision(1) << std::setw(8)
       << (roof > 0 ? s.achieved_gflops() / roof * 100.0 : 0.0) << '%'
       << std::setprecision(2) << std::setw(12) << s.achieved_gbs() << '\n';
  }
  return os.str();
}

}  // namespace hpgmx
