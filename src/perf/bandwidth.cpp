#include "perf/bandwidth.hpp"

#include <algorithm>

#include "base/aligned_vector.hpp"
#include "base/timer.hpp"

namespace hpgmx {

BandwidthResult measure_stream_bandwidth(std::size_t elements, int reps) {
  AlignedVector<double> a(elements, 1.0);
  AlignedVector<double> b(elements, 2.0);
  AlignedVector<double> c(elements, 3.0);
  const double s = 0.5;

  BandwidthResult out;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    double* __restrict av = a.data();
    const double* __restrict bv = b.data();
    const double* __restrict cv = c.data();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < elements; ++i) {
      av[i] = bv[i] + s * cv[i];
    }
    const double sec = t.seconds();
    // Triad moves 3 arrays (2 reads + 1 write).
    const double gbs =
        3.0 * static_cast<double>(elements) * sizeof(double) / sec * 1e-9;
    out.triad_gbs = std::max(out.triad_gbs, gbs);
  }
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    double* __restrict av = a.data();
    const double* __restrict bv = b.data();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < elements; ++i) {
      av[i] = bv[i];
    }
    const double sec = t.seconds();
    const double gbs =
        2.0 * static_cast<double>(elements) * sizeof(double) / sec * 1e-9;
    out.copy_gbs = std::max(out.copy_gbs, gbs);
  }
  return out;
}

}  // namespace hpgmx
