// Analytic machine & network model for projecting measured single-node
// rates to the paper's scales (Figs. 4–6; see DESIGN.md §2 for why this
// substitutes for runs on Frontier).
//
// The model encodes exactly the two large-scale effects the paper blames
// for its weak-scaling efficiency loss:
//   1. every dot-product / CGS2 batch is a global allreduce whose latency
//      grows ~ log2(P);
//   2. coarse multigrid levels have a higher communication surface-to-
//      volume ratio, so their halo time cannot be fully hidden.
// Local compute time per iteration is taken from *measured* per-rank motif
// rates, not modeled.
#pragma once

#include <string>
#include <vector>

namespace hpgmx {

/// Per-device and network parameters of a modeled machine.
struct MachineModel {
  std::string name;
  double mem_bw_gbs = 0;          ///< streaming memory bandwidth per device
  double peak_fp64_gflops = 0;    ///< arithmetic roof for rooflines
  int devices_per_node = 1;
  double allreduce_alpha_us = 0;  ///< latency per log2(P) reduction stage
  double allreduce_byte_us = 0;   ///< per-byte cost of an allreduce payload
  double halo_msg_us = 0;         ///< fixed cost per halo message
  double link_gbs = 0;            ///< point-to-point link bandwidth

  /// AMD MI250x single GCD on Frontier (vendor peak 1.6 TB/s HBM; paper §4).
  static MachineModel frontier_gcd();
  /// NVIDIA Tesla K80 (one GK210 die), the paper's Fig. 6 cluster.
  static MachineModel k80();
  /// The host this process runs on, with its measured STREAM bandwidth.
  static MachineModel host(double measured_triad_gbs);
};

/// What one solver iteration costs one rank, measured at small scale.
struct IterationProfile {
  double local_seconds = 0;    ///< on-rank compute time per iteration
  double flops = 0;            ///< FLOPs per rank per iteration
  int allreduces = 0;          ///< global reductions per iteration
  double allreduce_bytes = 0;  ///< average payload per reduction
  int halo_messages = 0;       ///< halo messages per iteration (all levels)
  double halo_bytes = 0;       ///< total halo bytes per iteration
  /// Fraction of halo time hidden behind compute (measured overlap; the
  /// optimized implementation approaches 1 on fine levels).
  double overlap_efficiency = 1.0;
};

/// Projection of one scale point.
struct ScalePoint {
  int nodes = 0;
  long long ranks = 0;
  double seconds_per_iter = 0;
  double gflops_per_rank = 0;
  double efficiency = 1.0;  ///< vs the 1-node projection
};

/// Project weak scaling over a list of node counts.
std::vector<ScalePoint> project_weak_scaling(const MachineModel& m,
                                             const IterationProfile& prof,
                                             const std::vector<int>& nodes);

}  // namespace hpgmx
