#include "perf/machine_model.hpp"

#include <algorithm>
#include <cmath>

namespace hpgmx {

MachineModel MachineModel::frontier_gcd() {
  MachineModel m;
  m.name = "Frontier-MI250x-GCD";
  m.mem_bw_gbs = 1600.0;       // vendor-claimed HBM peak per GCD (paper §4)
  m.peak_fp64_gflops = 23900;  // MI250x per-GCD FP64 vector peak
  m.devices_per_node = 8;      // 4 MI250x = 8 GCDs
  // Full-system collective behaviour: at 75k ranks a Slingshot allreduce
  // costs hundreds of microseconds end-to-end (stragglers, OS noise,
  // multi-stage reduction). alpha is the per-log2(P)-stage coefficient; at
  // log2(75264) ≈ 16.2 stages this yields ~2.4 ms of exposed latency per
  // reduction batch, which reproduces the paper's 78%-efficiency mechanism
  // (see EXPERIMENTS.md for measured-vs-paper).
  m.allreduce_alpha_us = 150.0;
  m.allreduce_byte_us = 0.002;
  m.halo_msg_us = 2.0;
  m.link_gbs = 25.0;
  return m;
}

MachineModel MachineModel::k80() {
  MachineModel m;
  m.name = "Tesla-K80-die";
  m.mem_bw_gbs = 240.0;  // per GK210 die
  m.peak_fp64_gflops = 1455;
  m.devices_per_node = 4;
  // Commodity cluster: higher-latency interconnect than Slingshot.
  m.allreduce_alpha_us = 15.0;
  m.allreduce_byte_us = 0.01;
  m.halo_msg_us = 6.0;
  m.link_gbs = 6.0;
  return m;
}

MachineModel MachineModel::host(double measured_triad_gbs) {
  MachineModel m;
  m.name = "host";
  m.mem_bw_gbs = measured_triad_gbs;
  m.peak_fp64_gflops = 0;  // unknown; roofline uses bandwidth roof only
  m.devices_per_node = 1;
  // In-process "network": negligible latency, memcpy-speed links.
  m.allreduce_alpha_us = 0.5;
  m.allreduce_byte_us = 0.0005;
  m.halo_msg_us = 0.5;
  m.link_gbs = 10.0;
  return m;
}

std::vector<ScalePoint> project_weak_scaling(const MachineModel& m,
                                             const IterationProfile& prof,
                                             const std::vector<int>& nodes) {
  std::vector<ScalePoint> out;
  out.reserve(nodes.size());
  double base_gflops = 0;
  for (const int n : nodes) {
    ScalePoint pt;
    pt.nodes = n;
    pt.ranks = static_cast<long long>(n) * m.devices_per_node;
    const double log2p =
        std::max(1.0, std::log2(static_cast<double>(pt.ranks)));

    const double allreduce_s =
        prof.allreduces *
        (m.allreduce_alpha_us * log2p +
         m.allreduce_byte_us * prof.allreduce_bytes) *
        1e-6;
    // Halo cost per iteration: latency + payload/link time; only the
    // unhidden fraction shows up on the critical path. A single node's
    // intra-node exchange is effectively free.
    const double halo_raw_s =
        (prof.halo_messages * m.halo_msg_us +
         prof.halo_bytes / (m.link_gbs * 1e3)) *
        1e-6;
    const double halo_s =
        (pt.ranks > 1) ? halo_raw_s * (1.0 - prof.overlap_efficiency) : 0.0;

    pt.seconds_per_iter = prof.local_seconds + allreduce_s + halo_s;
    pt.gflops_per_rank = prof.flops / pt.seconds_per_iter * 1e-9;
    if (base_gflops == 0) {
      base_gflops = pt.gflops_per_rank;
    }
    pt.efficiency = pt.gflops_per_rank / base_gflops;
    out.push_back(pt);
  }
  return out;
}

}  // namespace hpgmx
