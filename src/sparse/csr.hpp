// Compressed Sparse Row storage — the format of the reference HPG-MxP
// implementation (paper §3.1 issue 5) and the assembly format of the
// problem generator.
//
// Column indexing convention for distributed matrices: columns
// [0, num_owned_cols) are this rank's owned entries (row r's diagonal is
// column r), columns [num_owned_cols, num_cols) address the halo region of
// the companion vector.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "precision/convert_batch.hpp"

namespace hpgmx {

template <typename T>
struct CsrMatrix {
  static_assert(is_supported_value_v<T>);

  local_index_t num_rows = 0;
  /// Total column count: owned + halo columns.
  local_index_t num_cols = 0;
  /// Columns < num_owned_cols are owned (diagonal block); the rest are halo.
  local_index_t num_owned_cols = 0;

  AlignedVector<std::int64_t> row_ptr;  // size num_rows + 1
  AlignedVector<local_index_t> col_idx;
  AlignedVector<T> values;

  /// Diagonal values cached for relaxation kernels (filled by
  /// finalize_structure).
  AlignedVector<T> diag;
  /// Position of the diagonal entry within each row's value range.
  AlignedVector<std::int64_t> diag_pos;

  [[nodiscard]] std::int64_t nnz() const {
    return row_ptr.empty() ? 0 : row_ptr.back();
  }

  [[nodiscard]] std::span<const local_index_t> row_cols(
      local_index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr[r]);
    const auto e = static_cast<std::size_t>(row_ptr[r + 1]);
    return {col_idx.data() + b, e - b};
  }

  [[nodiscard]] std::span<const T> row_vals(local_index_t r) const {
    const auto b = static_cast<std::size_t>(row_ptr[r]);
    const auto e = static_cast<std::size_t>(row_ptr[r + 1]);
    return {values.data() + b, e - b};
  }

  /// Locate diagonals and cache them; validates that every row has one.
  void finalize_structure() {
    HPGMX_CHECK(static_cast<local_index_t>(row_ptr.size()) == num_rows + 1);
    diag.assign(static_cast<std::size_t>(num_rows), T(0));
    diag_pos.assign(static_cast<std::size_t>(num_rows), -1);
    for (local_index_t r = 0; r < num_rows; ++r) {
      for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        if (col_idx[static_cast<std::size_t>(p)] == r) {
          diag[static_cast<std::size_t>(r)] =
              values[static_cast<std::size_t>(p)];
          diag_pos[static_cast<std::size_t>(r)] = p;
          break;
        }
      }
      HPGMX_CHECK_MSG(diag_pos[static_cast<std::size_t>(r)] >= 0,
                      "row " << r << " has no diagonal entry");
    }
  }

  /// Deep-convert values to another precision (structure shared by copy).
  /// `value_scale` is applied in the source precision before demotion — the
  /// ScaleGuard's equilibration hook for narrow-exponent targets; the
  /// default 1.0 reproduces a plain conversion bit for bit and streams
  /// through the batched block primitives (convert_batch.hpp).
  template <typename U>
  [[nodiscard]] CsrMatrix<U> convert(double value_scale = 1.0) const {
    CsrMatrix<U> out;
    out.num_rows = num_rows;
    out.num_cols = num_cols;
    out.num_owned_cols = num_owned_cols;
    out.row_ptr = row_ptr;
    out.col_idx = col_idx;
    out.values.resize(values.size());
    out.diag.resize(diag.size());
    if (value_scale == 1.0) {
      convert_span(std::span<const T>(values.data(), values.size()),
                   std::span<U>(out.values.data(), out.values.size()));
      convert_span(std::span<const T>(diag.data(), diag.size()),
                   std::span<U>(out.diag.data(), out.diag.size()));
    } else {
      for (std::size_t i = 0; i < values.size(); ++i) {
        out.values[i] =
            static_cast<U>(static_cast<double>(values[i]) * value_scale);
      }
      for (std::size_t i = 0; i < diag.size(); ++i) {
        out.diag[i] =
            static_cast<U>(static_cast<double>(diag[i]) * value_scale);
      }
    }
    out.diag_pos = diag_pos;
    return out;
  }
};

/// Largest |col − row| over every stored entry — the quantity the
/// compressed-index ELL feasibility check compares against kEllDeltaMax.
/// Halo columns participate as-is: they are already remapped into the
/// compact range [num_owned_cols, num_cols), so a row near the low faces
/// reading a halo column produces the format's worst-case delta.
template <typename T>
[[nodiscard]] local_index_t max_col_delta(const CsrMatrix<T>& a) {
  local_index_t max_delta = 0;
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    for (std::int64_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      const local_index_t d = a.col_idx[static_cast<std::size_t>(p)] - r;
      max_delta = std::max(max_delta, d < 0 ? -d : d);
    }
  }
  return max_delta;
}

/// Incremental CSR assembly: rows appended in order.
template <typename T>
class CsrBuilder {
 public:
  CsrBuilder(local_index_t num_rows, local_index_t num_cols,
             local_index_t num_owned_cols, std::int64_t nnz_reserve = 0) {
    m_.num_rows = num_rows;
    m_.num_cols = num_cols;
    m_.num_owned_cols = num_owned_cols;
    m_.row_ptr.reserve(static_cast<std::size_t>(num_rows) + 1);
    m_.row_ptr.push_back(0);
    if (nnz_reserve > 0) {
      m_.col_idx.reserve(static_cast<std::size_t>(nnz_reserve));
      m_.values.reserve(static_cast<std::size_t>(nnz_reserve));
    }
  }

  /// Append one entry to the row currently being assembled.
  void push(local_index_t col, T value) {
    HPGMX_CHECK_MSG(col >= 0 && col < m_.num_cols,
                    "column " << col << " out of range " << m_.num_cols);
    m_.col_idx.push_back(col);
    m_.values.push_back(value);
  }

  /// Close the current row.
  void finish_row() {
    m_.row_ptr.push_back(static_cast<std::int64_t>(m_.col_idx.size()));
  }

  /// Finish assembly; the builder is consumed.
  [[nodiscard]] CsrMatrix<T> build() {
    HPGMX_CHECK_MSG(
        static_cast<local_index_t>(m_.row_ptr.size()) == m_.num_rows + 1,
        "build() before all rows were finished");
    m_.finalize_structure();
    return std::move(m_);
  }

 private:
  CsrMatrix<T> m_;
};

}  // namespace hpgmx
