// Level-scheduled sparse triangular solve — the reference Gauss–Seidel path
// (paper §3.1 issue 1: cuSparse/rocsparse-style analysis without reordering).
//
// Dependency levels of the lower-triangular factor are found once
// ("analysis"); the solve then sweeps levels sequentially with all rows of a
// level processed in parallel. This preserves the exact arithmetic of a
// sequential lexicographic-order solve while exposing limited parallelism —
// precisely the trade-off the paper's optimized multicolor path removes.
#pragma once

#include <span>

#include "base/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/row_partition.hpp"

namespace hpgmx {

/// Compute dependency levels of the strict lower triangle of `a` in natural
/// row order (halo columns are not dependencies — they hold old/exchanged
/// values). Group g of the result contains all rows of level g.
RowPartition build_lower_level_schedule(local_index_t num_rows,
                                        std::span<const std::int64_t> row_ptr,
                                        std::span<const local_index_t> col_idx);

template <typename T>
RowPartition build_lower_level_schedule(const CsrMatrix<T>& a) {
  return build_lower_level_schedule(a.num_rows, a.row_ptr, a.col_idx);
}

/// Solve (D + L) z = t by level: z[r] = (t[r] − Σ_{c<r} a_rc z[c]) / d_r.
/// Exactly reproduces the sequential forward substitution in natural order.
template <typename T>
void sptrsv_lower_levels(const CsrMatrix<T>& a, const RowPartition& levels,
                         std::span<const T> t, std::span<T> z) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict dv = a.diag.data();
  const T* __restrict tv = t.data();
  T* __restrict zv = z.data();
  for (int lvl = 0; lvl < levels.num_groups(); ++lvl) {
    const auto rows = levels.group(lvl);
#pragma omp parallel for schedule(static)
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const local_index_t r = rows[k];
      accum_t<T> acc = tv[r];
      for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
        const local_index_t c = ci[p];
        if (c < r) {
          acc -= av[p] * zv[c];
        }
      }
      zv[r] = acc / dv[r];
    }
  }
}

}  // namespace hpgmx
