// Local (on-rank) sparse kernels: SpMV, residual, fused residual-restrict,
// and row-subset variants used by the compute–communication overlap engine.
//
// All kernels are bandwidth-bound streaming loops; OpenMP parallelizes the
// row dimension. Accumulation happens in the matrix value type, matching the
// GPU kernels of the paper (no hidden extra precision that would perturb the
// mixed-precision convergence study).
#pragma once

#include <span>

#include "base/error.hpp"
#include "base/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"

namespace hpgmx {

/// y = A x (CSR). x covers owned + halo entries; y covers owned rows.
template <typename T>
void csr_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  HPGMX_CHECK(static_cast<local_index_t>(y.size()) >= a.num_rows);
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    accum_t<T> acc = accum_t<T>(0);
    for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
      acc += av[p] * xv[ci[p]];
    }
    yv[r] = acc;
  }
}

/// y[r] = (A x)[r] for r in rows only; other entries of y untouched.
template <typename T>
void csr_spmv_rows(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                   std::span<const local_index_t> rows) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const local_index_t r = rows[k];
    accum_t<T> acc = accum_t<T>(0);
    for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
      acc += av[p] * xv[ci[p]];
    }
    yv[r] = acc;
  }
}

namespace detail {
/// Row-block size for ELL traversal: the y sub-block stays L1-resident while
/// the slot loop streams values/columns unit-stride within the block.
inline constexpr local_index_t kEllBlockRows = 1024;
}  // namespace detail

/// y = A x (ELL, slot-major). Blocked traversal: for each row block, slots
/// are visited outer so every load of values/col_idx is unit-stride.
template <typename T>
void ell_spmv(const EllMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  HPGMX_CHECK(static_cast<local_index_t>(y.size()) >= a.num_rows);
  const local_index_t n = a.num_rows;
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
  const local_index_t nblocks =
      (n + detail::kEllBlockRows - 1) / detail::kEllBlockRows;
#pragma omp parallel for schedule(static)
  for (local_index_t blk = 0; blk < nblocks; ++blk) {
    const local_index_t r0 = blk * detail::kEllBlockRows;
    const local_index_t r1 = std::min(n, r0 + detail::kEllBlockRows);
    accum_t<T> acc[detail::kEllBlockRows];
    for (local_index_t r = r0; r < r1; ++r) {
      acc[r - r0] = accum_t<T>(0);
    }
    for (local_index_t s = 0; s < a.slots; ++s) {
      const std::size_t base = static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(n);
      for (local_index_t r = r0; r < r1; ++r) {
        acc[r - r0] += av[base + static_cast<std::size_t>(r)] *
                       xv[ci[base + static_cast<std::size_t>(r)]];
      }
    }
    for (local_index_t r = r0; r < r1; ++r) {
      yv[r] = acc[r - r0];
    }
  }
}

/// y[r] = (A x)[r] for listed rows only (ELL). Blocked like ell_spmv: the
/// slot loop runs outside a block of list entries so the slot-major value
/// and column streams are walked in near-unit stride when the row list is
/// (nearly) sorted — which interior/boundary lists are.
template <typename T>
void ell_spmv_rows(const EllMatrix<T>& a, std::span<const T> x, std::span<T> y,
                   std::span<const local_index_t> rows) {
  const local_index_t n = a.num_rows;
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
  const std::size_t nk = rows.size();
  const std::size_t block = static_cast<std::size_t>(detail::kEllBlockRows);
  const std::size_t nblocks = (nk + block - 1) / block;
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t k0 = blk * block;
    const std::size_t k1 = std::min(nk, k0 + block);
    accum_t<T> acc[detail::kEllBlockRows];
    for (std::size_t k = k0; k < k1; ++k) {
      acc[k - k0] = accum_t<T>(0);
    }
    for (local_index_t s = 0; s < a.slots; ++s) {
      const std::size_t base =
          static_cast<std::size_t>(s) * static_cast<std::size_t>(n);
      for (std::size_t k = k0; k < k1; ++k) {
        const std::size_t at = base + static_cast<std::size_t>(rows[k]);
        acc[k - k0] += av[at] * xv[ci[at]];
      }
    }
    for (std::size_t k = k0; k < k1; ++k) {
      yv[rows[k]] = acc[k - k0];
    }
  }
}

/// r = b − A x (CSR).
template <typename T>
void csr_residual(const CsrMatrix<T>& a, std::span<const T> b,
                  std::span<const T> x, std::span<T> r) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  T* __restrict rv = r.data();
#pragma omp parallel for schedule(static)
  for (local_index_t row = 0; row < a.num_rows; ++row) {
    accum_t<T> acc = bv[row];
    for (std::int64_t p = rp[row]; p < rp[row + 1]; ++p) {
      acc -= av[p] * xv[ci[p]];
    }
    rv[row] = acc;
  }
}

/// Fused smoothed-residual + injection restriction (paper §3.2.4):
/// rc[i] = b[c2f(i)] − (A x)[c2f(i)], evaluated only at coarse points.
/// Replaces a full fine-grid residual followed by an injection pass.
///
/// `TOut` may differ from the fine level's `T`: a precision-scheduled
/// multigrid demotes (or promotes) the coarse residual on the final store,
/// inside this kernel, so crossing a precision boundary between levels adds
/// no extra full-grid conversion pass.
template <typename T, typename TOut = T>
void fused_restrict_residual(const CsrMatrix<T>& a_fine, std::span<const T> b,
                             std::span<const T> x,
                             std::span<const local_index_t> c2f,
                             std::span<TOut> rc) {
  HPGMX_CHECK(rc.size() >= c2f.size());
  const std::int64_t* __restrict rp = a_fine.row_ptr.data();
  const local_index_t* __restrict ci = a_fine.col_idx.data();
  const T* __restrict av = a_fine.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  TOut* __restrict rcv = rc.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < c2f.size(); ++i) {
    const local_index_t fr = c2f[i];
    accum_t<T> acc = bv[fr];
    for (std::int64_t p = rp[fr]; p < rp[fr + 1]; ++p) {
      acc -= av[p] * xv[ci[p]];
    }
    rcv[i] = static_cast<TOut>(acc);
  }
}

/// Subset variant of the fused kernel for overlap: only coarse points whose
/// fine row is in the given list are computed.
template <typename T>
void fused_restrict_residual_subset(const CsrMatrix<T>& a_fine,
                                    std::span<const T> b, std::span<const T> x,
                                    std::span<const local_index_t> c2f,
                                    std::span<T> rc,
                                    std::span<const local_index_t> coarse_ids) {
  const std::int64_t* __restrict rp = a_fine.row_ptr.data();
  const local_index_t* __restrict ci = a_fine.col_idx.data();
  const T* __restrict av = a_fine.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  T* __restrict rcv = rc.data();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < coarse_ids.size(); ++k) {
    const local_index_t i = coarse_ids[k];
    const local_index_t fr = c2f[static_cast<std::size_t>(i)];
    accum_t<T> acc = bv[fr];
    for (std::int64_t p = rp[fr]; p < rp[fr + 1]; ++p) {
      acc -= av[p] * xv[ci[p]];
    }
    rcv[i] = acc;
  }
}

/// Injection prolongation + correction: x[c2f(i)] += alpha · zc[i].
///
/// `TC` (coarse) may be narrower or wider than `TF` (fine): a precision-
/// scheduled multigrid promotes the coarse correction here, on the fly,
/// instead of in a separate conversion pass. `alpha` compensates a
/// *per-level* demotion-scale mismatch — when the coarse operator was
/// stored as α_c·A_c and the fine one as α_f·A_f, the coarse correction is
/// 1/α_c too large relative to the fine level's scaled system, so the
/// caller passes alpha = α_c/α_f (1.0 on every uniform path, where the
/// fast branch keeps the original arithmetic).
template <typename TC, typename TF>
void prolong_correct(std::span<const local_index_t> c2f, std::span<const TC> zc,
                     std::span<TF> x, double alpha = 1.0) {
  const local_index_t* __restrict map = c2f.data();
  const TC* __restrict z = zc.data();
  TF* __restrict xv = x.data();
  if constexpr (std::is_same_v<TC, TF>) {
    if (alpha == 1.0) {
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < c2f.size(); ++i) {
        xv[map[i]] += z[i];
      }
      return;
    }
  }
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < c2f.size(); ++i) {
    using Acc = wider_t<accum_t<TF>, accum_t<TC>>;
    const Acc zi = static_cast<Acc>(static_cast<accum_t<TC>>(z[i]) *
                                    static_cast<Acc>(alpha));
    xv[map[i]] = static_cast<TF>(static_cast<accum_t<TF>>(xv[map[i]]) + zi);
  }
}

/// Injection restriction alone (reference path): rc[i] = rf[c2f(i)],
/// converting between level formats on the store (see
/// fused_restrict_residual).
template <typename T, typename TOut = T>
void inject_restrict(std::span<const local_index_t> c2f, std::span<const T> rf,
                     std::span<TOut> rc) {
  const local_index_t* __restrict map = c2f.data();
  const T* __restrict r = rf.data();
  TOut* __restrict rcv = rc.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < c2f.size(); ++i) {
    rcv[i] = static_cast<TOut>(r[map[i]]);
  }
}

}  // namespace hpgmx
