// Local (on-rank) sparse kernels: SpMV, residual, fused residual-restrict,
// fused SpMV+dot / residual+norm passes, and row-subset variants used by the
// compute–communication overlap engine.
//
// All kernels are bandwidth-bound streaming loops; OpenMP parallelizes the
// row dimension. Accumulation happens in accum_t of the matrix value type,
// matching the GPU kernels of the paper (16-bit storage promotes through
// float; no hidden extra precision beyond that).
//
// 16-bit value types take a *staged* ELL path: each row block widens a tile
// of `values` (and the gathered `x` entries) into an fp32 staging buffer
// with the batched primitives of precision/convert_batch.hpp, then FMAs
// across slots at unit stride — the scalar promote-through-float loop
// converts one element at a time inside the hot loop and never vectorizes.
// The scalar path stays available as *_scalar for ablation benchmarks.
//
// The fused reduction kernels (csr_spmv_dot, ell_spmv_rows_dot,
// csr_residual_norm) compute their dot/norm as *ordered per-block partial
// sums in double*: each kEllBlockRows-row block contributes one partial,
// combined sequentially in block order. That makes the reduction
// deterministic for any thread count and bit-identical to the unfused
// sequence (kernel, then dot_span_blocked/dot_rows_blocked over the same
// blocks) — the property the solvers' fused/unfused toggle is tested on.
#pragma once

#include <cmath>
#include <span>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "blas/vector_ops.hpp"
#include "precision/convert_batch.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"

namespace hpgmx {

namespace detail {
/// Row-block size for ELL traversal: the y sub-block stays L1-resident while
/// the slot loop streams values/columns unit-stride within the block. Also
/// the partial-sum granularity of the fused reduction kernels — it must
/// equal kReduceBlock (vector_ops.hpp) for the fused and unfused sequences
/// to produce identical bits.
inline constexpr local_index_t kEllBlockRows = 1024;
static_assert(static_cast<std::size_t>(kEllBlockRows) == kReduceBlock,
              "fused kernels and blocked reductions must share one block "
              "size or the fused/unfused toggle stops being bit-stable");

/// Staged 16-bit accumulation over one contiguous ELL row block
/// [r0, r0+len): per slot, widen the contiguous value tile and the gathered
/// x tile into fp32 staging buffers, then FMA at unit stride. When the
/// matrix carries compressed (16-bit delta) indices, the absolute column
/// tile is materialized from the delta stream first (widen_delta_block) —
/// same gather, half the index traffic.
template <typename T>
inline void ell_block_accumulate_staged(const EllMatrix<T>& a,
                                        const T* __restrict xv, float* acc,
                                        local_index_t r0, std::size_t len) {
  static_assert(is_16bit_value_v<T>);
  const local_index_t* __restrict ci = a.col_idx.data();
  const ell_delta_t* __restrict dd =
      a.has_idx16() ? a.col_delta.data() : nullptr;
  const T* __restrict av = a.values.data();
  float vstage[kEllBlockRows];
  float xstage[kEllBlockRows];
  T xtile[kEllBlockRows];
  local_index_t ctile[kEllBlockRows];
  for (local_index_t s = 0; s < a.slots; ++s) {
    const std::size_t base = static_cast<std::size_t>(s) *
                                 static_cast<std::size_t>(a.num_rows) +
                             static_cast<std::size_t>(r0);
    widen_block(av + base, vstage, len);
    const local_index_t* cols = ci + base;
    if (dd != nullptr) {
      widen_delta_block(dd + base, r0, ctile, len);
      cols = ctile;
    }
    for (std::size_t k = 0; k < len; ++k) {
      xtile[k] = xv[cols[k]];
    }
    widen_block(xtile, xstage, len);
#pragma omp simd
    for (std::size_t k = 0; k < len; ++k) {
      acc[k] += vstage[k] * xstage[k];
    }
  }
}

/// Staged 16-bit accumulation over a row-list block rows[k0..k0+len): like
/// the contiguous variant but the value/column streams are gathered through
/// the (sorted, near-contiguous) row list before widening. Compressed
/// indices resolve through widen_delta_block_rows.
template <typename T>
inline void ell_block_accumulate_staged_rows(
    const EllMatrix<T>& a, const T* __restrict xv, float* acc,
    const local_index_t* __restrict rows, std::size_t len) {
  static_assert(is_16bit_value_v<T>);
  const local_index_t* __restrict ci = a.col_idx.data();
  const ell_delta_t* __restrict dd =
      a.has_idx16() ? a.col_delta.data() : nullptr;
  const T* __restrict av = a.values.data();
  float vstage[kEllBlockRows];
  float xstage[kEllBlockRows];
  T vtile[kEllBlockRows];
  T xtile[kEllBlockRows];
  local_index_t ctile[kEllBlockRows];
  for (local_index_t s = 0; s < a.slots; ++s) {
    const std::size_t base = static_cast<std::size_t>(s) *
                             static_cast<std::size_t>(a.num_rows);
    if (dd != nullptr) {
      widen_delta_block_rows(dd + base, rows, ctile, len);
      for (std::size_t k = 0; k < len; ++k) {
        vtile[k] = av[base + static_cast<std::size_t>(rows[k])];
        xtile[k] = xv[ctile[k]];
      }
    } else {
      for (std::size_t k = 0; k < len; ++k) {
        const std::size_t at = base + static_cast<std::size_t>(rows[k]);
        vtile[k] = av[at];
        xtile[k] = xv[ci[at]];
      }
    }
    widen_block(vtile, vstage, len);
    widen_block(xtile, xstage, len);
#pragma omp simd
    for (std::size_t k = 0; k < len; ++k) {
      acc[k] += vstage[k] * xstage[k];
    }
  }
}
}  // namespace detail

/// y = A x (CSR). x covers owned + halo entries; y covers owned rows.
template <typename T>
void csr_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  HPGMX_CHECK(static_cast<local_index_t>(y.size()) >= a.num_rows);
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    accum_t<T> acc = accum_t<T>(0);
    for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
      acc += av[p] * xv[ci[p]];
    }
    yv[r] = acc;
  }
}

/// Fused y = A x with ⟨y, x⟩ over the owned rows in the same pass (the
/// spmv_dot solver kernel, CSR/reference path). The dot uses the *stored*
/// (rounded) y values and accumulates ordered per-block partials in double,
/// so the result is bit-identical to csr_spmv followed by
/// dot_span_blocked(y, x) — at one fewer full sweep over y and x.
template <typename T>
[[nodiscard]] double csr_spmv_dot(const CsrMatrix<T>& a, std::span<const T> x,
                                  std::span<T> y) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  HPGMX_CHECK(static_cast<local_index_t>(y.size()) >= a.num_rows);
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
  const local_index_t n = a.num_rows;
  const local_index_t nblocks =
      (n + detail::kEllBlockRows - 1) / detail::kEllBlockRows;
  AlignedVector<double> partial(static_cast<std::size_t>(nblocks), 0.0);
#pragma omp parallel for schedule(static)
  for (local_index_t blk = 0; blk < nblocks; ++blk) {
    const local_index_t r0 = blk * detail::kEllBlockRows;
    const local_index_t r1 = std::min(n, r0 + detail::kEllBlockRows);
    double p = 0.0;
    for (local_index_t r = r0; r < r1; ++r) {
      accum_t<T> acc = accum_t<T>(0);
      for (std::int64_t q = rp[r]; q < rp[r + 1]; ++q) {
        acc += av[q] * xv[ci[q]];
      }
      yv[r] = acc;
      p = std::fma(static_cast<double>(yv[r]),
                   static_cast<double>(xv[r]), p);
    }
    partial[static_cast<std::size_t>(blk)] = p;
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// y[r] = (A x)[r] for r in rows only; other entries of y untouched.
template <typename T>
void csr_spmv_rows(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                   std::span<const local_index_t> rows) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const local_index_t r = rows[k];
    accum_t<T> acc = accum_t<T>(0);
    for (std::int64_t p = rp[r]; p < rp[r + 1]; ++p) {
      acc += av[p] * xv[ci[p]];
    }
    yv[r] = acc;
  }
}

/// Scalar (promote-through-float) ELL SpMV — the pre-staging loop, kept as
/// the ablation baseline micro_kernels measures the staged path against,
/// and the kernel the hardware types use (their "conversion" is free).
/// Compressed-index matrices resolve columns per block-slot tile through
/// widen_delta_block; the arithmetic (and therefore every output bit) is
/// identical to the 32-bit layout.
template <typename T>
void ell_spmv_scalar(const EllMatrix<T>& a, std::span<const T> x,
                     std::span<T> y) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  HPGMX_CHECK(static_cast<local_index_t>(y.size()) >= a.num_rows);
  const local_index_t n = a.num_rows;
  const local_index_t* __restrict ci = a.col_idx.data();
  const ell_delta_t* __restrict dd =
      a.has_idx16() ? a.col_delta.data() : nullptr;
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
  const local_index_t nblocks =
      (n + detail::kEllBlockRows - 1) / detail::kEllBlockRows;
#pragma omp parallel for schedule(static)
  for (local_index_t blk = 0; blk < nblocks; ++blk) {
    const local_index_t r0 = blk * detail::kEllBlockRows;
    const local_index_t r1 = std::min(n, r0 + detail::kEllBlockRows);
    const std::size_t len = static_cast<std::size_t>(r1 - r0);
    accum_t<T> acc[detail::kEllBlockRows];
    local_index_t ctile[detail::kEllBlockRows];
    for (local_index_t r = r0; r < r1; ++r) {
      acc[r - r0] = accum_t<T>(0);
    }
    for (local_index_t s = 0; s < a.slots; ++s) {
      const std::size_t base = static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(n);
      const local_index_t* cols = ci + base + static_cast<std::size_t>(r0);
      if (dd != nullptr) {
        widen_delta_block(dd + base + static_cast<std::size_t>(r0), r0, ctile,
                          len);
        cols = ctile;
      }
      for (local_index_t r = r0; r < r1; ++r) {
        acc[r - r0] += av[base + static_cast<std::size_t>(r)] *
                       xv[cols[r - r0]];
      }
    }
    for (local_index_t r = r0; r < r1; ++r) {
      yv[r] = acc[r - r0];
    }
  }
}

/// y = A x (ELL, slot-major). Blocked traversal: for each row block, slots
/// are visited outer so every load of values/col_idx is unit-stride. 16-bit
/// value types stream through the fp32 staging tiles (see file header); the
/// hardware types keep the scalar loop, whose loads already are full-width.
template <typename T>
void ell_spmv(const EllMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  if constexpr (detail::is_16bit_value_v<T>) {
    HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
    HPGMX_CHECK(static_cast<local_index_t>(y.size()) >= a.num_rows);
    const local_index_t n = a.num_rows;
    const T* __restrict xv = x.data();
    T* __restrict yv = y.data();
    const local_index_t nblocks =
        (n + detail::kEllBlockRows - 1) / detail::kEllBlockRows;
#pragma omp parallel for schedule(static)
    for (local_index_t blk = 0; blk < nblocks; ++blk) {
      const local_index_t r0 = blk * detail::kEllBlockRows;
      const std::size_t len =
          static_cast<std::size_t>(std::min(n, r0 + detail::kEllBlockRows) - r0);
      float acc[detail::kEllBlockRows] = {};
      detail::ell_block_accumulate_staged(a, xv, acc, r0, len);
      narrow_block(acc, yv + r0, len);
    }
  } else {
    ell_spmv_scalar(a, x, y);
  }
}

/// Scalar row-list ELL SpMV (see ell_spmv_scalar). Compressed indices
/// resolve through widen_delta_block_rows per block-slot tile.
template <typename T>
void ell_spmv_rows_scalar(const EllMatrix<T>& a, std::span<const T> x,
                          std::span<T> y,
                          std::span<const local_index_t> rows) {
  const local_index_t n = a.num_rows;
  const local_index_t* __restrict ci = a.col_idx.data();
  const ell_delta_t* __restrict dd =
      a.has_idx16() ? a.col_delta.data() : nullptr;
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
  const std::size_t nk = rows.size();
  const std::size_t block = static_cast<std::size_t>(detail::kEllBlockRows);
  const std::size_t nblocks = (nk + block - 1) / block;
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t k0 = blk * block;
    const std::size_t k1 = std::min(nk, k0 + block);
    const std::size_t len = k1 - k0;
    accum_t<T> acc[detail::kEllBlockRows];
    local_index_t ctile[detail::kEllBlockRows];
    for (std::size_t k = k0; k < k1; ++k) {
      acc[k - k0] = accum_t<T>(0);
    }
    for (local_index_t s = 0; s < a.slots; ++s) {
      const std::size_t base =
          static_cast<std::size_t>(s) * static_cast<std::size_t>(n);
      if (dd != nullptr) {
        widen_delta_block_rows(dd + base, rows.data() + k0, ctile, len);
        for (std::size_t k = k0; k < k1; ++k) {
          acc[k - k0] += av[base + static_cast<std::size_t>(rows[k])] *
                         xv[ctile[k - k0]];
        }
      } else {
        for (std::size_t k = k0; k < k1; ++k) {
          const std::size_t at = base + static_cast<std::size_t>(rows[k]);
          acc[k - k0] += av[at] * xv[ci[at]];
        }
      }
    }
    for (std::size_t k = k0; k < k1; ++k) {
      yv[rows[k]] = acc[k - k0];
    }
  }
}

/// y[r] = (A x)[r] for listed rows only (ELL). Blocked like ell_spmv: the
/// slot loop runs outside a block of list entries so the slot-major value
/// and column streams are walked in near-unit stride when the row list is
/// (nearly) sorted — which interior/boundary lists are. 16-bit types take
/// the staged path.
template <typename T>
void ell_spmv_rows(const EllMatrix<T>& a, std::span<const T> x, std::span<T> y,
                   std::span<const local_index_t> rows) {
  if constexpr (detail::is_16bit_value_v<T>) {
    const T* __restrict xv = x.data();
    T* __restrict yv = y.data();
    const std::size_t nk = rows.size();
    const std::size_t block = static_cast<std::size_t>(detail::kEllBlockRows);
    const std::size_t nblocks = (nk + block - 1) / block;
#pragma omp parallel for schedule(static)
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
      const std::size_t k0 = blk * block;
      const std::size_t len = std::min(nk, k0 + block) - k0;
      float acc[detail::kEllBlockRows] = {};
      detail::ell_block_accumulate_staged_rows(a, xv, acc, rows.data() + k0,
                                               len);
      T ytile[detail::kEllBlockRows];
      narrow_block(acc, ytile, len);
      for (std::size_t k = 0; k < len; ++k) {
        yv[rows[k0 + k]] = ytile[k];
      }
    }
  } else {
    ell_spmv_rows_scalar(a, x, y, rows);
  }
}

/// Fused row-list ELL SpMV + partial ⟨y, x⟩ over those rows (the spmv_dot
/// solver kernel, optimized/overlap path: one call per interior/boundary
/// list). Returns the ordered per-block partial sum in double, computed
/// from the stored (rounded) y — bit-identical to ell_spmv_rows followed by
/// dot_rows_blocked(y, x, rows).
template <typename T>
[[nodiscard]] double ell_spmv_rows_dot(const EllMatrix<T>& a,
                                       std::span<const T> x, std::span<T> y,
                                       std::span<const local_index_t> rows) {
  const T* __restrict xv = x.data();
  T* __restrict yv = y.data();
  const std::size_t nk = rows.size();
  const std::size_t block = static_cast<std::size_t>(detail::kEllBlockRows);
  const std::size_t nblocks = (nk + block - 1) / block;
  AlignedVector<double> partial(nblocks, 0.0);
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t k0 = blk * block;
    const std::size_t len = std::min(nk, k0 + block) - k0;
    const local_index_t* __restrict rws = rows.data() + k0;
    double p = 0.0;
    if constexpr (detail::is_16bit_value_v<T>) {
      float acc[detail::kEllBlockRows] = {};
      detail::ell_block_accumulate_staged_rows(a, xv, acc, rws, len);
      T ytile[detail::kEllBlockRows];
      float ystage[detail::kEllBlockRows];
      float xostage[detail::kEllBlockRows];
      narrow_block(acc, ytile, len);
      widen_block(ytile, ystage, len);  // the rounded value the dot must see
      T xtile[detail::kEllBlockRows];
      for (std::size_t k = 0; k < len; ++k) {
        xtile[k] = xv[rws[k]];
      }
      widen_block(xtile, xostage, len);
      for (std::size_t k = 0; k < len; ++k) {
        yv[rws[k]] = ytile[k];
        p = std::fma(static_cast<double>(ystage[k]),
                     static_cast<double>(xostage[k]), p);
      }
    } else {
      const local_index_t* __restrict ci = a.col_idx.data();
      const ell_delta_t* __restrict dd =
          a.has_idx16() ? a.col_delta.data() : nullptr;
      const T* __restrict av = a.values.data();
      accum_t<T> acc[detail::kEllBlockRows];
      local_index_t ctile[detail::kEllBlockRows];
      for (std::size_t k = 0; k < len; ++k) {
        acc[k] = accum_t<T>(0);
      }
      for (local_index_t s = 0; s < a.slots; ++s) {
        const std::size_t base = static_cast<std::size_t>(s) *
                                 static_cast<std::size_t>(a.num_rows);
        if (dd != nullptr) {
          widen_delta_block_rows(dd + base, rws, ctile, len);
          for (std::size_t k = 0; k < len; ++k) {
            acc[k] += av[base + static_cast<std::size_t>(rws[k])] *
                      xv[ctile[k]];
          }
        } else {
          for (std::size_t k = 0; k < len; ++k) {
            const std::size_t at = base + static_cast<std::size_t>(rws[k]);
            acc[k] += av[at] * xv[ci[at]];
          }
        }
      }
      for (std::size_t k = 0; k < len; ++k) {
        const local_index_t r = rws[k];
        yv[r] = acc[k];
        p = std::fma(static_cast<double>(yv[r]),
                   static_cast<double>(xv[r]), p);
      }
    }
    partial[blk] = p;
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// r = b − A x (CSR).
template <typename T>
void csr_residual(const CsrMatrix<T>& a, std::span<const T> b,
                  std::span<const T> x, std::span<T> r) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  T* __restrict rv = r.data();
#pragma omp parallel for schedule(static)
  for (local_index_t row = 0; row < a.num_rows; ++row) {
    accum_t<T> acc = bv[row];
    for (std::int64_t p = rp[row]; p < rp[row + 1]; ++p) {
      acc -= av[p] * xv[ci[p]];
    }
    rv[row] = acc;
  }
}

/// Fused r = b − A x with ‖r‖² in the same pass (the waxpby_norm-family
/// fusion applied to the refinement residual — GMRES-IR's outer step reads
/// r again only for the norm, a full sweep this kernel eliminates). Same
/// ordered-partial contract as csr_spmv_dot: bit-identical to csr_residual
/// followed by dot_span_blocked(r, r).
template <typename T>
[[nodiscard]] double csr_residual_norm2(const CsrMatrix<T>& a,
                                        std::span<const T> b,
                                        std::span<const T> x, std::span<T> r) {
  HPGMX_CHECK(static_cast<local_index_t>(x.size()) >= a.num_cols);
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  T* __restrict rv = r.data();
  const local_index_t n = a.num_rows;
  const local_index_t nblocks =
      (n + detail::kEllBlockRows - 1) / detail::kEllBlockRows;
  AlignedVector<double> partial(static_cast<std::size_t>(nblocks), 0.0);
#pragma omp parallel for schedule(static)
  for (local_index_t blk = 0; blk < nblocks; ++blk) {
    const local_index_t r0 = blk * detail::kEllBlockRows;
    const local_index_t r1 = std::min(n, r0 + detail::kEllBlockRows);
    double p = 0.0;
    for (local_index_t row = r0; row < r1; ++row) {
      accum_t<T> acc = bv[row];
      for (std::int64_t q = rp[row]; q < rp[row + 1]; ++q) {
        acc -= av[q] * xv[ci[q]];
      }
      rv[row] = acc;
      const double ri = static_cast<double>(rv[row]);
      p = std::fma(ri, ri, p);
    }
    partial[static_cast<std::size_t>(blk)] = p;
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// Fused smoothed-residual + injection restriction (paper §3.2.4):
/// rc[i] = b[c2f(i)] − (A x)[c2f(i)], evaluated only at coarse points.
/// Replaces a full fine-grid residual followed by an injection pass.
///
/// `TOut` may differ from the fine level's `T`: a precision-scheduled
/// multigrid demotes (or promotes) the coarse residual on the final store,
/// inside this kernel, so crossing a precision boundary between levels adds
/// no extra full-grid conversion pass.
template <typename T, typename TOut = T>
void fused_restrict_residual(const CsrMatrix<T>& a_fine, std::span<const T> b,
                             std::span<const T> x,
                             std::span<const local_index_t> c2f,
                             std::span<TOut> rc) {
  HPGMX_CHECK(rc.size() >= c2f.size());
  const std::int64_t* __restrict rp = a_fine.row_ptr.data();
  const local_index_t* __restrict ci = a_fine.col_idx.data();
  const T* __restrict av = a_fine.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  TOut* __restrict rcv = rc.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < c2f.size(); ++i) {
    const local_index_t fr = c2f[i];
    accum_t<T> acc = bv[fr];
    for (std::int64_t p = rp[fr]; p < rp[fr + 1]; ++p) {
      acc -= av[p] * xv[ci[p]];
    }
    rcv[i] = static_cast<TOut>(acc);
  }
}

/// Subset variant of the fused kernel for overlap: only coarse points whose
/// fine row is in the given list are computed.
template <typename T>
void fused_restrict_residual_subset(const CsrMatrix<T>& a_fine,
                                    std::span<const T> b, std::span<const T> x,
                                    std::span<const local_index_t> c2f,
                                    std::span<T> rc,
                                    std::span<const local_index_t> coarse_ids) {
  const std::int64_t* __restrict rp = a_fine.row_ptr.data();
  const local_index_t* __restrict ci = a_fine.col_idx.data();
  const T* __restrict av = a_fine.values.data();
  const T* __restrict xv = x.data();
  const T* __restrict bv = b.data();
  T* __restrict rcv = rc.data();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < coarse_ids.size(); ++k) {
    const local_index_t i = coarse_ids[k];
    const local_index_t fr = c2f[static_cast<std::size_t>(i)];
    accum_t<T> acc = bv[fr];
    for (std::int64_t p = rp[fr]; p < rp[fr + 1]; ++p) {
      acc -= av[p] * xv[ci[p]];
    }
    rcv[i] = acc;
  }
}

/// Injection prolongation + correction: x[c2f(i)] += alpha · zc[i].
///
/// `TC` (coarse) may be narrower or wider than `TF` (fine): a precision-
/// scheduled multigrid promotes the coarse correction here, on the fly,
/// instead of in a separate conversion pass. `alpha` compensates a
/// *per-level* demotion-scale mismatch — when the coarse operator was
/// stored as α_c·A_c and the fine one as α_f·A_f, the coarse correction is
/// 1/α_c too large relative to the fine level's scaled system, so the
/// caller passes alpha = α_c/α_f (1.0 on every uniform path, where the
/// fast branch keeps the original arithmetic).
template <typename TC, typename TF>
void prolong_correct(std::span<const local_index_t> c2f, std::span<const TC> zc,
                     std::span<TF> x, double alpha = 1.0) {
  const local_index_t* __restrict map = c2f.data();
  const TC* __restrict z = zc.data();
  TF* __restrict xv = x.data();
  if constexpr (std::is_same_v<TC, TF>) {
    if (alpha == 1.0) {
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < c2f.size(); ++i) {
        xv[map[i]] += z[i];
      }
      return;
    }
  }
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < c2f.size(); ++i) {
    using Acc = wider_t<accum_t<TF>, accum_t<TC>>;
    const Acc zi = static_cast<Acc>(static_cast<accum_t<TC>>(z[i]) *
                                    static_cast<Acc>(alpha));
    xv[map[i]] = static_cast<TF>(static_cast<accum_t<TF>>(xv[map[i]]) + zi);
  }
}

/// Injection restriction alone (reference path): rc[i] = rf[c2f(i)],
/// converting between level formats on the store (see
/// fused_restrict_residual).
template <typename T, typename TOut = T>
void inject_restrict(std::span<const local_index_t> c2f, std::span<const T> rf,
                     std::span<TOut> rc) {
  const local_index_t* __restrict map = c2f.data();
  const T* __restrict r = rf.data();
  TOut* __restrict rcv = rc.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < c2f.size(); ++i) {
    rcv[i] = static_cast<TOut>(r[map[i]]);
  }
}

}  // namespace hpgmx
