// Gauss–Seidel smoother kernels.
//
// Two implementations, mirroring the paper:
//
// * Reference (§3.1 issues 1–2): forward GS as an upper-triangle SpMV
//   followed by a level-scheduled lower SpTRSV — arithmetic identical to the
//   sequential lexicographic sweep but two passes over the matrix.
// * Optimized (§3.2.1): "relaxation" form, one fused sweep over the matrix,
//   processed color-by-color over an independent-set (JPL) partition; rows
//   of a color touch no common unknown and run fully parallel.
//
// Distributed semantics: halo entries of z hold neighbor values exchanged
// before the sweep; they act as frozen (block-Jacobi) boundary values, as in
// HPCG/rocHPCG.
#pragma once

#include <algorithm>
#include <span>

#include "base/types.hpp"
#include "precision/convert_batch.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/row_partition.hpp"
#include "sparse/sptrsv.hpp"

namespace hpgmx {

/// One *exact* sequential forward Gauss–Seidel sweep in natural order
/// (testing oracle; also the smallest-problem fallback).
template <typename T>
void gs_sweep_sequential(const CsrMatrix<T>& a, std::span<const T> r,
                         std::span<T> z) {
  for (local_index_t row = 0; row < a.num_rows; ++row) {
    accum_t<T> acc = r[static_cast<std::size_t>(row)];
    const auto cols = a.row_cols(row);
    const auto vals = a.row_vals(row);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      if (cols[p] != row) {
        acc -= vals[p] * z[static_cast<std::size_t>(cols[p])];
      }
    }
    z[static_cast<std::size_t>(row)] = acc / a.diag[static_cast<std::size_t>(row)];
  }
}

/// Reference forward GS sweep: t = r − U z (one SpMV-like pass, where U is
/// everything right of the diagonal including halo columns), then the
/// level-scheduled solve (D+L) z = t. `t` is caller-provided scratch of
/// num_rows entries.
template <typename T>
void gs_sweep_reference(const CsrMatrix<T>& a, const RowPartition& levels,
                        std::span<const T> r, std::span<T> z,
                        std::span<T> t) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict rv = r.data();
  const T* __restrict zv = z.data();
  T* __restrict tv = t.data();
#pragma omp parallel for schedule(static)
  for (local_index_t row = 0; row < a.num_rows; ++row) {
    accum_t<T> acc = rv[row];
    for (std::int64_t p = rp[row]; p < rp[row + 1]; ++p) {
      const local_index_t c = ci[p];
      if (c > row) {  // strict upper; halo columns satisfy c >= num_rows > row
        acc -= av[p] * zv[c];
      }
    }
    tv[row] = acc;
  }
  sptrsv_lower_levels(a, levels, std::span<const T>(t.data(), t.size()), z);
}

namespace detail {

/// Relaxation update of one row: new z[row] from current z values.
/// The diagonal term is subtracted with the rest and added back, avoiding a
/// per-entry branch in the hot loop.
template <typename T>
inline T gs_row_update(const std::int64_t* rp, const local_index_t* ci,
                       const T* av, const T* dv, const T* rv, const T* zv,
                       local_index_t row) {
  accum_t<T> acc = rv[row];
  for (std::int64_t p = rp[row]; p < rp[row + 1]; ++p) {
    acc -= av[p] * zv[ci[p]];
  }
  return (acc + dv[row] * zv[row]) / dv[row];
}

template <typename T>
inline T gs_row_update_ell(const local_index_t n, const local_index_t slots,
                           const local_index_t* ci, const T* av, const T* dv,
                           const T* rv, const T* zv, local_index_t row) {
  accum_t<T> acc = rv[row];
  for (local_index_t s = 0; s < slots; ++s) {
    const std::size_t at =
        static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(row);
    acc -= av[at] * zv[ci[at]];
  }
  return (acc + dv[row] * zv[row]) / dv[row];
}

/// Row-list block size for ELL sweeps; the accumulator block lives in L1
/// while the slot loop streams values/columns near-unit-stride (the rows of
/// one color are sorted).
inline constexpr std::size_t kGsBlockRows = 1024;

/// Scalar blocked relaxation update over a sorted row list (one independent
/// set or a subset of it): slot loop outside the block so the slot-major
/// arrays stream instead of striding by num_rows per row. This is the
/// ablation baseline for the staged 16-bit path below (and the production
/// kernel for the hardware types). Compressed-index matrices materialize an
/// absolute-column tile per block-slot from the 16-bit delta stream
/// (widen_delta_block_rows) — identical arithmetic, half the index bytes.
template <typename T>
void gs_update_rows_ell_blocked_scalar(const EllMatrix<T>& a,
                                       const T* __restrict rv,
                                       T* __restrict zv,
                                       std::span<const local_index_t> rows) {
  const local_index_t n = a.num_rows;
  const local_index_t* __restrict ci = a.col_idx.data();
  const ell_delta_t* __restrict dd =
      a.has_idx16() ? a.col_delta.data() : nullptr;
  const T* __restrict av = a.values.data();
  const T* __restrict dv = a.diag.data();
  const std::size_t nk = rows.size();
  const std::size_t nblocks = (nk + kGsBlockRows - 1) / kGsBlockRows;
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t k0 = blk * kGsBlockRows;
    const std::size_t k1 = std::min(nk, k0 + kGsBlockRows);
    const std::size_t len = k1 - k0;
    accum_t<T> acc[kGsBlockRows];
    local_index_t ctile[kGsBlockRows];
    for (std::size_t k = k0; k < k1; ++k) {
      acc[k - k0] = rv[rows[k]];
    }
    for (local_index_t s = 0; s < a.slots; ++s) {
      const std::size_t base =
          static_cast<std::size_t>(s) * static_cast<std::size_t>(n);
      if (dd != nullptr) {
        widen_delta_block_rows(dd + base, rows.data() + k0, ctile, len);
        for (std::size_t k = k0; k < k1; ++k) {
          acc[k - k0] -= av[base + static_cast<std::size_t>(rows[k])] *
                         zv[ctile[k - k0]];
        }
      } else {
        for (std::size_t k = k0; k < k1; ++k) {
          const std::size_t at = base + static_cast<std::size_t>(rows[k]);
          acc[k - k0] -= av[at] * zv[ci[at]];
        }
      }
    }
    for (std::size_t k = k0; k < k1; ++k) {
      const local_index_t row = rows[k];
      zv[row] = (acc[k - k0] + dv[row] * zv[row]) / dv[row];
    }
  }
}

/// Staged 16-bit relaxation update: per slot, gather the value/solution
/// tiles through the row list, widen them into fp32 staging buffers with
/// the batched primitives (convert_batch.hpp), and FMA at unit stride —
/// the scalar loop converts every operand individually inside the hot loop
/// and never vectorizes. The final diagonal solve runs on widened tiles
/// too, with one batched narrow on the store.
template <typename T>
void gs_update_rows_ell_staged16(const EllMatrix<T>& a,
                                 const T* __restrict rv, T* __restrict zv,
                                 std::span<const local_index_t> rows) {
  static_assert(is_16bit_value_v<T>);
  const local_index_t n = a.num_rows;
  const local_index_t* __restrict ci = a.col_idx.data();
  const ell_delta_t* __restrict dd =
      a.has_idx16() ? a.col_delta.data() : nullptr;
  const T* __restrict av = a.values.data();
  const T* __restrict dv = a.diag.data();
  const std::size_t nk = rows.size();
  const std::size_t nblocks = (nk + kGsBlockRows - 1) / kGsBlockRows;
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t k0 = blk * kGsBlockRows;
    const std::size_t len = std::min(nk, k0 + kGsBlockRows) - k0;
    const local_index_t* __restrict rws = rows.data() + k0;
    float acc[kGsBlockRows];
    float vstage[kGsBlockRows];
    float zstage[kGsBlockRows];
    T vtile[kGsBlockRows];
    T ztile[kGsBlockRows];
    local_index_t ctile[kGsBlockRows];
    for (std::size_t k = 0; k < len; ++k) {
      ztile[k] = rv[rws[k]];
    }
    widen_block(ztile, acc, len);
    for (local_index_t s = 0; s < a.slots; ++s) {
      const std::size_t base =
          static_cast<std::size_t>(s) * static_cast<std::size_t>(n);
      if (dd != nullptr) {
        widen_delta_block_rows(dd + base, rws, ctile, len);
        for (std::size_t k = 0; k < len; ++k) {
          vtile[k] = av[base + static_cast<std::size_t>(rws[k])];
          ztile[k] = zv[ctile[k]];
        }
      } else {
        for (std::size_t k = 0; k < len; ++k) {
          const std::size_t at = base + static_cast<std::size_t>(rws[k]);
          vtile[k] = av[at];
          ztile[k] = zv[ci[at]];
        }
      }
      widen_block(vtile, vstage, len);
      widen_block(ztile, zstage, len);
#pragma omp simd
      for (std::size_t k = 0; k < len; ++k) {
        acc[k] -= vstage[k] * zstage[k];
      }
    }
    // (acc + d·z_old) / d on widened diagonal/solution tiles, narrowed once.
    for (std::size_t k = 0; k < len; ++k) {
      vtile[k] = dv[rws[k]];
      ztile[k] = zv[rws[k]];
    }
    widen_block(vtile, vstage, len);
    widen_block(ztile, zstage, len);
#pragma omp simd
    for (std::size_t k = 0; k < len; ++k) {
      acc[k] = (acc[k] + vstage[k] * zstage[k]) / vstage[k];
    }
    narrow_block(acc, ztile, len);
    for (std::size_t k = 0; k < len; ++k) {
      zv[rws[k]] = ztile[k];
    }
  }
}

/// Blocked relaxation update over a sorted row list, dispatching 16-bit
/// value types to the staged path.
template <typename T>
void gs_update_rows_ell_blocked(const EllMatrix<T>& a, const T* __restrict rv,
                                T* __restrict zv,
                                std::span<const local_index_t> rows) {
  if constexpr (is_16bit_value_v<T>) {
    gs_update_rows_ell_staged16(a, rv, zv, rows);
  } else {
    gs_update_rows_ell_blocked_scalar(a, rv, zv, rows);
  }
}

}  // namespace detail

/// One forward multicolor GS sweep (CSR): colors processed in ascending
/// order, rows within a color in parallel. Equivalent to sequential GS in
/// the color-sorted row ordering.
template <typename T>
void gs_sweep_colored(const CsrMatrix<T>& a, const RowPartition& colors,
                      std::span<const T> r, std::span<T> z) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict dv = a.diag.data();
  const T* __restrict rv = r.data();
  T* __restrict zv = z.data();
  for (int c = 0; c < colors.num_groups(); ++c) {
    const auto rows = colors.group(c);
#pragma omp parallel for schedule(static)
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const local_index_t row = rows[k];
      zv[row] = detail::gs_row_update(rp, ci, av, dv, rv, zv, row);
    }
  }
}

/// Colored sweep over a single row subset (one color's interior or boundary
/// rows) — building block of the overlapped distributed sweep.
template <typename T>
void gs_sweep_rows(const CsrMatrix<T>& a, std::span<const local_index_t> rows,
                   std::span<const T> r, std::span<T> z) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict dv = a.diag.data();
  const T* __restrict rv = r.data();
  T* __restrict zv = z.data();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const local_index_t row = rows[k];
    zv[row] = detail::gs_row_update(rp, ci, av, dv, rv, zv, row);
  }
}

/// One forward multicolor GS sweep (ELL), blocked per color. 16-bit value
/// types take the staged (widen-once, FMA-at-unit-stride) path.
template <typename T>
void gs_sweep_colored_ell(const EllMatrix<T>& a, const RowPartition& colors,
                          std::span<const T> r, std::span<T> z) {
  for (int c = 0; c < colors.num_groups(); ++c) {
    detail::gs_update_rows_ell_blocked(a, r.data(), z.data(),
                                       colors.group(c));
  }
}

/// Scalar-path colored ELL sweep (promote-through-float per element) — the
/// ablation baseline micro_kernels measures the staged 16-bit sweep against.
template <typename T>
void gs_sweep_colored_ell_scalar(const EllMatrix<T>& a,
                                 const RowPartition& colors,
                                 std::span<const T> r, std::span<T> z) {
  for (int c = 0; c < colors.num_groups(); ++c) {
    detail::gs_update_rows_ell_blocked_scalar(a, r.data(), z.data(),
                                              colors.group(c));
  }
}

/// ELL row-subset sweep (rows must form an independent set).
template <typename T>
void gs_sweep_rows_ell(const EllMatrix<T>& a,
                       std::span<const local_index_t> rows,
                       std::span<const T> r, std::span<T> z) {
  detail::gs_update_rows_ell_blocked(a, r.data(), z.data(), rows);
}

/// One *backward* multicolor sweep (colors in descending order): combined
/// with a forward sweep this forms the symmetric GS smoother used by the
/// HPCG baseline (CG) implementation.
template <typename T>
void gs_sweep_colored_backward(const CsrMatrix<T>& a,
                               const RowPartition& colors,
                               std::span<const T> r, std::span<T> z) {
  const std::int64_t* __restrict rp = a.row_ptr.data();
  const local_index_t* __restrict ci = a.col_idx.data();
  const T* __restrict av = a.values.data();
  const T* __restrict dv = a.diag.data();
  const T* __restrict rv = r.data();
  T* __restrict zv = z.data();
  for (int c = colors.num_groups() - 1; c >= 0; --c) {
    const auto rows = colors.group(c);
#pragma omp parallel for schedule(static)
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const local_index_t row = rows[k];
      zv[row] = detail::gs_row_update(rp, ci, av, dv, rv, zv, row);
    }
  }
}

}  // namespace hpgmx
