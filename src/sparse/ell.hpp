// ELLPACK (ELL) sparse storage — the optimized format of paper §3.2.2.
//
// Layout is structure-of-arrays, *slot-major*: slot s of row r lives at
// index s * num_rows + r. Iterating rows for a fixed slot is unit-stride,
// which keeps wide SIMD/warp lanes fully coalesced for stencil matrices
// whose row lengths are nearly uniform (27 ± boundary effects here).
// Padded slots carry the row's own index with value 0 so gather loads stay
// in-bounds without branches.
#pragma once

#include <algorithm>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "precision/convert_batch.hpp"
#include "sparse/csr.hpp"

namespace hpgmx {

template <typename T>
struct EllMatrix {
  static_assert(is_supported_value_v<T>);

  local_index_t num_rows = 0;
  local_index_t num_cols = 0;
  local_index_t num_owned_cols = 0;
  /// Max entries per row (padded width).
  local_index_t slots = 0;

  /// Slot-major: entry (r, s) at [s * num_rows + r].
  AlignedVector<local_index_t> col_idx;
  /// Compressed column indices: 16-bit deltas col − row, same slot-major
  /// layout. Non-empty iff the matrix passed the ±kEllDeltaMax feasibility
  /// check at construction; the kernels then stream these 2-byte entries
  /// instead of col_idx and reconstruct absolute columns per tile
  /// (widen_delta_block). col_idx stays populated either way — it is the
  /// structural ground truth conversions and fallback paths read.
  AlignedVector<ell_delta_t> col_delta;
  AlignedVector<T> values;
  AlignedVector<T> diag;

  /// True when the kernels address x through the 16-bit delta stream.
  [[nodiscard]] bool has_idx16() const { return !col_delta.empty(); }

  /// Stored bytes of one column index on the active path — the width the
  /// bytes model charges per nonzero.
  [[nodiscard]] std::size_t index_bytes() const {
    return has_idx16() ? sizeof(ell_delta_t) : sizeof(local_index_t);
  }

  [[nodiscard]] std::size_t slot_index(local_index_t row,
                                       local_index_t slot) const {
    return static_cast<std::size_t>(slot) *
               static_cast<std::size_t>(num_rows) +
           static_cast<std::size_t>(row);
  }

  /// Stored entries including padding.
  [[nodiscard]] std::int64_t padded_nnz() const {
    return static_cast<std::int64_t>(slots) * num_rows;
  }

  /// Deep-convert values to another precision through the batched block
  /// primitives (convert_batch.hpp) — one SIMD streaming pass instead of a
  /// per-element static_cast loop, bit-identical to it.
  template <typename U>
  [[nodiscard]] EllMatrix<U> convert() const {
    EllMatrix<U> out;
    out.num_rows = num_rows;
    out.num_cols = num_cols;
    out.num_owned_cols = num_owned_cols;
    out.slots = slots;
    out.col_idx = col_idx;
    out.col_delta = col_delta;
    out.values.resize(values.size());
    convert_span(std::span<const T>(values.data(), values.size()),
                 std::span<U>(out.values.data(), out.values.size()));
    out.diag.resize(diag.size());
    convert_span(std::span<const T>(diag.data(), diag.size()),
                 std::span<U>(out.diag.data(), out.diag.size()));
    return out;
  }
};

/// True when `a`'s every entry satisfies |col − row| ≤ kEllDeltaMax, i.e.
/// its ELL form can store 16-bit delta column indices exactly. Fails for
/// local grids whose column window (or remapped halo range) outgrows the
/// ±32767 window — e.g. the very first halo column seen from row 0 of a
/// ≥ 32³ subdomain — in which case ell_from_csr keeps the 32-bit layout.
/// Returns at the first violation, so the common infeasible shapes (a halo
/// column early in the row order) cost far less than a full nnz scan.
template <typename T>
[[nodiscard]] bool ell_idx16_feasible(const CsrMatrix<T>& a) {
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    for (std::int64_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      if (!ell_delta_fits(a.col_idx[static_cast<std::size_t>(p)] - r)) {
        return false;
      }
    }
  }
  return true;
}

/// Convert CSR → ELL. Padding slots reference the row itself with value 0,
/// so products read x[r] and add 0 — harmless and branch-free.
///
/// `idx` selects the column-index layout: Auto/Idx16 additionally store the
/// slot-major 16-bit delta stream (col − row) when the feasibility check
/// passes — the compressed-index path every ELL kernel dispatches on at
/// runtime; Idx32 (or an infeasible window) keeps absolute 32-bit columns
/// only. Padding deltas are 0 (the row's self reference), so the compressed
/// stream needs no special padding handling either.
template <typename T>
[[nodiscard]] EllMatrix<T> ell_from_csr(const CsrMatrix<T>& a,
                                        IndexWidth idx = IndexWidth::Auto) {
  EllMatrix<T> e;
  e.num_rows = a.num_rows;
  e.num_cols = a.num_cols;
  e.num_owned_cols = a.num_owned_cols;
  local_index_t width = 0;
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    width = std::max(
        width, static_cast<local_index_t>(a.row_ptr[r + 1] - a.row_ptr[r]));
  }
  e.slots = width;
  const std::size_t total = static_cast<std::size_t>(width) *
                            static_cast<std::size_t>(a.num_rows);
  e.col_idx.assign(total, 0);
  e.values.assign(total, T(0));
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (local_index_t s = 0; s < width; ++s) {
      const std::size_t at = e.slot_index(r, s);
      if (static_cast<std::size_t>(s) < cols.size()) {
        e.col_idx[at] = cols[static_cast<std::size_t>(s)];
        e.values[at] = vals[static_cast<std::size_t>(s)];
      } else {
        e.col_idx[at] = r;  // pad: in-bounds self reference
        e.values[at] = T(0);
      }
    }
  }
  e.diag = a.diag;
  if (idx != IndexWidth::Idx32) {
    // Build the compressed stream in one OpenMP-parallel pass over the
    // just-built col_idx, folding the feasibility check in (no separate
    // serial nnz scan — this runs on every ScaleGuard re-demotion too).
    // Any out-of-window delta voids the whole attempt and keeps the
    // 32-bit layout.
    e.col_delta.resize(total);
    int feasible = 1;
#pragma omp parallel for schedule(static) reduction(&& : feasible)
    for (local_index_t r = 0; r < a.num_rows; ++r) {
      for (local_index_t s = 0; s < width; ++s) {
        const std::size_t at = e.slot_index(r, s);
        const local_index_t d = e.col_idx[at] - r;
        const bool ok = ell_delta_fits(d);
        feasible = feasible && ok;
        e.col_delta[at] = static_cast<ell_delta_t>(ok ? d : 0);
      }
    }
    if (!feasible) {
      // Release the storage too — an infeasible (large) grid should not
      // hold a dead 2-bytes-per-slot allocation for the operator's life.
      AlignedVector<ell_delta_t>().swap(e.col_delta);
    }
  }
  return e;
}

}  // namespace hpgmx
