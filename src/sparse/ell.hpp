// ELLPACK (ELL) sparse storage — the optimized format of paper §3.2.2.
//
// Layout is structure-of-arrays, *slot-major*: slot s of row r lives at
// index s * num_rows + r. Iterating rows for a fixed slot is unit-stride,
// which keeps wide SIMD/warp lanes fully coalesced for stencil matrices
// whose row lengths are nearly uniform (27 ± boundary effects here).
// Padded slots carry the row's own index with value 0 so gather loads stay
// in-bounds without branches.
#pragma once

#include <algorithm>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "precision/convert_batch.hpp"
#include "sparse/csr.hpp"

namespace hpgmx {

template <typename T>
struct EllMatrix {
  static_assert(is_supported_value_v<T>);

  local_index_t num_rows = 0;
  local_index_t num_cols = 0;
  local_index_t num_owned_cols = 0;
  /// Max entries per row (padded width).
  local_index_t slots = 0;

  /// Slot-major: entry (r, s) at [s * num_rows + r].
  AlignedVector<local_index_t> col_idx;
  AlignedVector<T> values;
  AlignedVector<T> diag;

  [[nodiscard]] std::size_t slot_index(local_index_t row,
                                       local_index_t slot) const {
    return static_cast<std::size_t>(slot) *
               static_cast<std::size_t>(num_rows) +
           static_cast<std::size_t>(row);
  }

  /// Stored entries including padding.
  [[nodiscard]] std::int64_t padded_nnz() const {
    return static_cast<std::int64_t>(slots) * num_rows;
  }

  /// Deep-convert values to another precision through the batched block
  /// primitives (convert_batch.hpp) — one SIMD streaming pass instead of a
  /// per-element static_cast loop, bit-identical to it.
  template <typename U>
  [[nodiscard]] EllMatrix<U> convert() const {
    EllMatrix<U> out;
    out.num_rows = num_rows;
    out.num_cols = num_cols;
    out.num_owned_cols = num_owned_cols;
    out.slots = slots;
    out.col_idx = col_idx;
    out.values.resize(values.size());
    convert_span(std::span<const T>(values.data(), values.size()),
                 std::span<U>(out.values.data(), out.values.size()));
    out.diag.resize(diag.size());
    convert_span(std::span<const T>(diag.data(), diag.size()),
                 std::span<U>(out.diag.data(), out.diag.size()));
    return out;
  }
};

/// Convert CSR → ELL. Padding slots reference the row itself with value 0,
/// so products read x[r] and add 0 — harmless and branch-free.
template <typename T>
[[nodiscard]] EllMatrix<T> ell_from_csr(const CsrMatrix<T>& a) {
  EllMatrix<T> e;
  e.num_rows = a.num_rows;
  e.num_cols = a.num_cols;
  e.num_owned_cols = a.num_owned_cols;
  local_index_t width = 0;
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    width = std::max(
        width, static_cast<local_index_t>(a.row_ptr[r + 1] - a.row_ptr[r]));
  }
  e.slots = width;
  const std::size_t total = static_cast<std::size_t>(width) *
                            static_cast<std::size_t>(a.num_rows);
  e.col_idx.assign(total, 0);
  e.values.assign(total, T(0));
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (local_index_t s = 0; s < width; ++s) {
      const std::size_t at = e.slot_index(r, s);
      if (static_cast<std::size_t>(s) < cols.size()) {
        e.col_idx[at] = cols[static_cast<std::size_t>(s)];
        e.values[at] = vals[static_cast<std::size_t>(s)];
      } else {
        e.col_idx[at] = r;  // pad: in-bounds self reference
        e.values[at] = T(0);
      }
    }
  }
  e.diag = a.diag;
  return e;
}

}  // namespace hpgmx
