// Grouping of matrix rows into ordered groups processed one after another,
// with full parallelism inside a group.
//
// Two producers: graph coloring (groups = independent-set colors, the
// optimized Gauss–Seidel path) and level scheduling (groups = dependency
// levels of the triangular factor, the reference path).
#pragma once

#include <span>
#include <vector>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"

namespace hpgmx {

/// Concatenated row groups; group g owns rows[group_offsets[g] ..
/// group_offsets[g+1]).
struct RowPartition {
  AlignedVector<local_index_t> rows;
  std::vector<std::int64_t> group_offsets{0};

  [[nodiscard]] int num_groups() const {
    return static_cast<int>(group_offsets.size()) - 1;
  }

  [[nodiscard]] local_index_t num_rows() const {
    return static_cast<local_index_t>(rows.size());
  }

  [[nodiscard]] std::span<const local_index_t> group(int g) const {
    HPGMX_CHECK(g >= 0 && g < num_groups());
    const auto begin = static_cast<std::size_t>(group_offsets[g]);
    const auto end = static_cast<std::size_t>(group_offsets[g + 1]);
    return {rows.data() + begin, end - begin};
  }

  /// Append one group given its row ids.
  void add_group(std::span<const local_index_t> group_rows) {
    rows.insert(rows.end(), group_rows.begin(), group_rows.end());
    group_offsets.push_back(static_cast<std::int64_t>(rows.size()));
  }

  /// Build from a per-row group id array (group ids in [0, num_groups)).
  static RowPartition from_group_ids(std::span<const int> group_of_row,
                                     int num_groups);
};

}  // namespace hpgmx
