#include "sparse/row_partition.hpp"

#include <numeric>

namespace hpgmx {

RowPartition RowPartition::from_group_ids(std::span<const int> group_of_row,
                                          int num_groups) {
  HPGMX_CHECK(num_groups >= 0);
  RowPartition part;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_groups), 0);
  for (const int g : group_of_row) {
    HPGMX_CHECK_MSG(g >= 0 && g < num_groups, "group id out of range: " << g);
    ++counts[static_cast<std::size_t>(g)];
  }
  part.group_offsets.resize(static_cast<std::size_t>(num_groups) + 1, 0);
  std::partial_sum(counts.begin(), counts.end(),
                   part.group_offsets.begin() + 1);
  part.rows.resize(group_of_row.size());
  std::vector<std::int64_t> cursor(part.group_offsets.begin(),
                                   part.group_offsets.end() - 1);
  for (std::size_t r = 0; r < group_of_row.size(); ++r) {
    const auto g = static_cast<std::size_t>(group_of_row[r]);
    part.rows[static_cast<std::size_t>(cursor[g]++)] =
        static_cast<local_index_t>(r);
  }
  return part;
}

}  // namespace hpgmx
