#include "sparse/sptrsv.hpp"

#include <algorithm>
#include <vector>

namespace hpgmx {

RowPartition build_lower_level_schedule(
    local_index_t num_rows, std::span<const std::int64_t> row_ptr,
    std::span<const local_index_t> col_idx) {
  std::vector<int> level(static_cast<std::size_t>(num_rows), 0);
  int max_level = -1;
  // In natural order, all lower-triangle dependencies of row r precede r, so
  // one forward pass computes longest-path levels.
  for (local_index_t r = 0; r < num_rows; ++r) {
    int lvl = 0;
    for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const local_index_t c = col_idx[static_cast<std::size_t>(p)];
      if (c < r) {
        lvl = std::max(lvl, level[static_cast<std::size_t>(c)] + 1);
      }
    }
    level[static_cast<std::size_t>(r)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  return RowPartition::from_group_ids(level, max_level + 1);
}

}  // namespace hpgmx
