// Symmetric permutations for physically reordering a subdomain by color
// (paper §3.2.1: "we reorder the matrix and vectors symmetrically").
//
// The optimized pipeline defaults to *logical* color ordering (the smoother
// walks color-grouped row lists over the naturally ordered matrix, identical
// arithmetic); physical reordering is provided as an option and ablation.
// Only owned rows/columns are permuted — halo columns keep their indices, so
// halo patterns need only their send lists remapped.
#pragma once

#include <span>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "comm/halo.hpp"
#include "sparse/csr.hpp"

namespace hpgmx {

/// A bijection on owned row ids. perm maps new → old, iperm maps old → new.
struct Permutation {
  AlignedVector<local_index_t> perm;
  AlignedVector<local_index_t> iperm;

  [[nodiscard]] local_index_t size() const {
    return static_cast<local_index_t>(perm.size());
  }
};

/// Stable sort of rows by (color, natural index): rows of color 0 first.
Permutation color_sort_permutation(std::span<const int> colors);

/// Validate that perm/iperm are mutually inverse bijections.
bool permutation_is_valid(const Permutation& p);

/// B = P A Pᵀ on the owned block; halo column ids are left untouched.
template <typename T>
CsrMatrix<T> permute_symmetric(const CsrMatrix<T>& a, const Permutation& p) {
  HPGMX_CHECK(p.size() == a.num_rows);
  CsrBuilder<T> builder(a.num_rows, a.num_cols, a.num_owned_cols, a.nnz());
  for (local_index_t nr = 0; nr < a.num_rows; ++nr) {
    const local_index_t old_row = p.perm[static_cast<std::size_t>(nr)];
    const auto cols = a.row_cols(old_row);
    const auto vals = a.row_vals(old_row);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const local_index_t c = cols[k];
      const local_index_t nc =
          (c < a.num_owned_cols) ? p.iperm[static_cast<std::size_t>(c)] : c;
      builder.push(nc, vals[k]);
    }
    builder.finish_row();
  }
  return builder.build();
}

/// y[new] = x[old]: gather a vector into permuted order.
template <typename T>
void permute_vector(const Permutation& p, std::span<const T> x,
                    std::span<T> y) {
  const local_index_t n = p.size();
#pragma omp parallel for schedule(static)
  for (local_index_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(p.perm[static_cast<std::size_t>(i)])];
  }
}

/// y[old] = x[new]: scatter back to natural order.
template <typename T>
void unpermute_vector(const Permutation& p, std::span<const T> x,
                      std::span<T> y) {
  const local_index_t n = p.size();
#pragma omp parallel for schedule(static)
  for (local_index_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(p.perm[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
}

/// Remap a halo pattern's send lists into the permuted numbering.
HaloPattern permute_halo_pattern(const HaloPattern& halo,
                                 const Permutation& p);

/// Remap an injection map when both levels were permuted:
/// out[new_coarse] = fine_iperm[c2f[coarse_perm[new_coarse]]].
AlignedVector<local_index_t> permute_c2f(
    std::span<const local_index_t> c2f, const Permutation& coarse,
    const Permutation& fine);

}  // namespace hpgmx
