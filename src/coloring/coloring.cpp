#include "coloring/coloring.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace hpgmx {

namespace {

/// Smallest color not present in `used` (a bitmask vector).
int first_free_color(std::vector<char>& used) {
  for (int c = 0; c < static_cast<int>(used.size()); ++c) {
    if (!used[static_cast<std::size_t>(c)]) {
      return c;
    }
  }
  used.push_back(0);
  return static_cast<int>(used.size()) - 1;
}

}  // namespace

std::vector<int> greedy_color(local_index_t num_rows,
                              std::span<const std::int64_t> row_ptr,
                              std::span<const local_index_t> col_idx,
                              local_index_t num_owned) {
  std::vector<int> color(static_cast<std::size_t>(num_rows), -1);
  std::vector<char> used;
  for (local_index_t r = 0; r < num_rows; ++r) {
    std::fill(used.begin(), used.end(), 0);
    for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const local_index_t c = col_idx[static_cast<std::size_t>(p)];
      if (c < num_owned && c != r) {
        const int nc = color[static_cast<std::size_t>(c)];
        if (nc >= 0) {
          if (nc >= static_cast<int>(used.size())) {
            used.resize(static_cast<std::size_t>(nc) + 1, 0);
          }
          used[static_cast<std::size_t>(nc)] = 1;
        }
      }
    }
    color[static_cast<std::size_t>(r)] = first_free_color(used);
  }
  return color;
}

std::vector<int> jpl_color(local_index_t num_rows,
                           std::span<const std::int64_t> row_ptr,
                           std::span<const local_index_t> col_idx,
                           local_index_t num_owned, std::uint64_t seed,
                           JplPolicy policy) {
  std::vector<int> color(static_cast<std::size_t>(num_rows), -1);
  // Tie-free weights: (hash, row index) ordered lexicographically.
  std::vector<std::uint64_t> weight(static_cast<std::size_t>(num_rows));
#pragma omp parallel for schedule(static)
  for (local_index_t r = 0; r < num_rows; ++r) {
    weight[static_cast<std::size_t>(r)] =
        hash_rand(seed, static_cast<std::uint64_t>(r));
  }
  const auto beats = [&](local_index_t a, local_index_t b) {
    const std::uint64_t wa = weight[static_cast<std::size_t>(a)];
    const std::uint64_t wb = weight[static_cast<std::size_t>(b)];
    return wa > wb || (wa == wb && a > b);
  };

  local_index_t num_uncolored = num_rows;
  std::vector<local_index_t> selected;
  selected.reserve(static_cast<std::size_t>(num_rows) / 4 + 1);
  int round = 0;
  while (num_uncolored > 0) {
    selected.clear();
    // Select local maxima of the weight function among uncolored vertices.
    // (Sequential gather here; the per-vertex test itself is a parallel map
    // in the GPU version — same selection, same determinism.)
    for (local_index_t r = 0; r < num_rows; ++r) {
      if (color[static_cast<std::size_t>(r)] >= 0) {
        continue;
      }
      bool is_max = true;
      for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        const local_index_t c = col_idx[static_cast<std::size_t>(p)];
        if (c < num_owned && c != r &&
            color[static_cast<std::size_t>(c)] < 0 && beats(c, r)) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        selected.push_back(r);
      }
    }
    HPGMX_CHECK_MSG(!selected.empty(), "JPL made no progress in a round");
    for (const local_index_t r : selected) {
      if (policy == JplPolicy::RoundAsColor) {
        color[static_cast<std::size_t>(r)] = round;
      } else {
        // Smallest color unused by already-colored neighbors. Vertices in
        // this round's independent set are mutually non-adjacent, so
        // assigning within the round stays conflict-free.
        std::vector<char> used;
        for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
          const local_index_t c = col_idx[static_cast<std::size_t>(p)];
          if (c < num_owned && c != r) {
            const int nc = color[static_cast<std::size_t>(c)];
            if (nc >= 0) {
              if (nc >= static_cast<int>(used.size())) {
                used.resize(static_cast<std::size_t>(nc) + 1, 0);
              }
              used[static_cast<std::size_t>(nc)] = 1;
            }
          }
        }
        color[static_cast<std::size_t>(r)] = first_free_color(used);
      }
    }
    num_uncolored -= static_cast<local_index_t>(selected.size());
    ++round;
  }
  return color;
}

std::vector<int> geometric_color(local_index_t nx, local_index_t ny,
                                 local_index_t nz) {
  std::vector<int> color(
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
      static_cast<std::size_t>(nz));
  std::size_t id = 0;
  for (local_index_t k = 0; k < nz; ++k) {
    for (local_index_t j = 0; j < ny; ++j) {
      for (local_index_t i = 0; i < nx; ++i) {
        color[id++] = (i & 1) | ((j & 1) << 1) | ((k & 1) << 2);
      }
    }
  }
  return color;
}

int num_colors(std::span<const int> colors) {
  int max_color = -1;
  for (const int c : colors) {
    max_color = std::max(max_color, c);
  }
  return max_color + 1;
}

bool coloring_is_valid(local_index_t num_rows,
                       std::span<const std::int64_t> row_ptr,
                       std::span<const local_index_t> col_idx,
                       std::span<const int> colors) {
  for (local_index_t r = 0; r < num_rows; ++r) {
    if (colors[static_cast<std::size_t>(r)] < 0) {
      return false;
    }
    for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const local_index_t c = col_idx[static_cast<std::size_t>(p)];
      if (c < num_rows && c != r &&
          colors[static_cast<std::size_t>(c)] ==
              colors[static_cast<std::size_t>(r)]) {
        return false;
      }
    }
  }
  return true;
}

RowPartition color_partition(std::span<const int> colors) {
  return RowPartition::from_group_ids(colors, num_colors(colors));
}

}  // namespace hpgmx
