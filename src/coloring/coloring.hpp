// Independent-set (multicolor) orderings for fine-grained parallel
// Gauss–Seidel (paper §3.2.1).
//
// Each rank colors its own subdomain independently (no communication), so
// halo columns never constrain a color. Two algorithms:
//
// * greedy: sequential first-fit in natural order — the classical baseline;
//   gives exactly 8 colors on the 27-point stencil (fig. 2's 3D analog).
// * JPL: Jones–Plassmann–Luby parallel coloring with deterministic hash
//   weights (Luby '86, Jones & Plassmann '93), the algorithm the paper runs
//   on GPUs via Trost et al.'s implementation. Two assignment policies:
//   round-as-color (classic) and smallest-available (fewer colors, used by
//   the optimized pipeline).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/row_partition.hpp"

namespace hpgmx {

enum class JplPolicy {
  RoundAsColor,    ///< color = selection round (classic JPL)
  MinAvailable,    ///< smallest color unused by colored neighbors
};

/// Sequential first-fit coloring in natural row order. Only owned columns
/// (col < num_owned) induce conflicts.
std::vector<int> greedy_color(local_index_t num_rows,
                              std::span<const std::int64_t> row_ptr,
                              std::span<const local_index_t> col_idx,
                              local_index_t num_owned);

/// Parallel-structured JPL coloring with hash weights seeded by `seed`.
/// Deterministic for a fixed (seed, matrix) pair.
std::vector<int> jpl_color(local_index_t num_rows,
                           std::span<const std::int64_t> row_ptr,
                           std::span<const local_index_t> col_idx,
                           local_index_t num_owned, std::uint64_t seed,
                           JplPolicy policy);

template <typename T>
std::vector<int> greedy_color(const CsrMatrix<T>& a) {
  return greedy_color(a.num_rows, a.row_ptr, a.col_idx, a.num_rows);
}

template <typename T>
std::vector<int> jpl_color(const CsrMatrix<T>& a, std::uint64_t seed,
                           JplPolicy policy = JplPolicy::MinAvailable) {
  return jpl_color(a.num_rows, a.row_ptr, a.col_idx, a.num_rows, seed, policy);
}

/// Optimal 8-coloring of a radius-1 (27-point) stencil on an nx×ny×nz box:
/// color = parity bits of (i, j, k). Any two stencil-adjacent points differ
/// by at most 1 in each coordinate, hence in at least one parity bit; two
/// points with equal parities differ by ≥2 somewhere and are not adjacent.
/// This is the 8-independent-set structure of paper Fig. 2's 3D analog.
std::vector<int> geometric_color(local_index_t nx, local_index_t ny,
                                 local_index_t nz);

/// Number of colors used (max + 1); 0 for an empty coloring.
int num_colors(std::span<const int> colors);

/// Check that no two adjacent owned rows share a color.
bool coloring_is_valid(local_index_t num_rows,
                       std::span<const std::int64_t> row_ptr,
                       std::span<const local_index_t> col_idx,
                       std::span<const int> colors);

/// Group rows by color into a RowPartition (the smoother's sweep order).
RowPartition color_partition(std::span<const int> colors);

}  // namespace hpgmx
