#include "coloring/permutation.hpp"

#include <algorithm>
#include <numeric>

namespace hpgmx {

Permutation color_sort_permutation(std::span<const int> colors) {
  Permutation p;
  p.perm.resize(colors.size());
  std::iota(p.perm.begin(), p.perm.end(), 0);
  std::stable_sort(p.perm.begin(), p.perm.end(),
                   [&colors](local_index_t a, local_index_t b) {
                     return colors[static_cast<std::size_t>(a)] <
                            colors[static_cast<std::size_t>(b)];
                   });
  p.iperm.resize(colors.size());
  for (std::size_t i = 0; i < p.perm.size(); ++i) {
    p.iperm[static_cast<std::size_t>(p.perm[i])] =
        static_cast<local_index_t>(i);
  }
  return p;
}

bool permutation_is_valid(const Permutation& p) {
  if (p.perm.size() != p.iperm.size()) {
    return false;
  }
  const auto n = static_cast<local_index_t>(p.perm.size());
  std::vector<char> seen(p.perm.size(), 0);
  for (local_index_t i = 0; i < n; ++i) {
    const local_index_t old_id = p.perm[static_cast<std::size_t>(i)];
    if (old_id < 0 || old_id >= n || seen[static_cast<std::size_t>(old_id)]) {
      return false;
    }
    seen[static_cast<std::size_t>(old_id)] = 1;
    if (p.iperm[static_cast<std::size_t>(old_id)] != i) {
      return false;
    }
  }
  return true;
}

HaloPattern permute_halo_pattern(const HaloPattern& halo,
                                 const Permutation& p) {
  HPGMX_CHECK(p.size() == halo.n_owned);
  HaloPattern out = halo;
  for (auto& nb : out.neighbors) {
    for (auto& idx : nb.send_indices) {
      idx = p.iperm[static_cast<std::size_t>(idx)];
    }
  }
  return out;
}

AlignedVector<local_index_t> permute_c2f(std::span<const local_index_t> c2f,
                                         const Permutation& coarse,
                                         const Permutation& fine) {
  HPGMX_CHECK(coarse.size() == static_cast<local_index_t>(c2f.size()));
  AlignedVector<local_index_t> out(c2f.size());
  for (std::size_t nc = 0; nc < c2f.size(); ++nc) {
    const local_index_t old_coarse = coarse.perm[nc];
    out[nc] =
        fine.iperm[static_cast<std::size_t>(c2f[static_cast<std::size_t>(old_coarse)])];
  }
  return out;
}

}  // namespace hpgmx
