// Tall-skinny multivector (the Krylov basis Q) and the two dense BLAS-2
// kernels of CGS2 orthogonalization (paper alg. 3 lines 21–25):
//
//   gemv_t : h = Q[:,1:k]ᵀ w   — k dot products batched into ONE allreduce,
//                                the latency optimization §4.1 credits for
//                                CGS2's scalability;
//   gemv_n : w ← w − Q[:,1:k] h — the subtraction update.
//
// Storage is column-major so each basis vector is contiguous (SpMV output
// writes straight into the next column).
#pragma once

#include <algorithm>
#include <span>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "blas/vector_ops.hpp"
#include "comm/comm.hpp"

namespace hpgmx {

template <typename T>
class MultiVector {
 public:
  MultiVector() = default;
  MultiVector(local_index_t rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              T(0)) {}

  [[nodiscard]] local_index_t rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  [[nodiscard]] std::span<T> column(int j) {
    HPGMX_CHECK(j >= 0 && j < cols_);
    return {data_.data() + static_cast<std::size_t>(j) *
                               static_cast<std::size_t>(rows_),
            static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const T> column(int j) const {
    HPGMX_CHECK(j >= 0 && j < cols_);
    return {data_.data() + static_cast<std::size_t>(j) *
                               static_cast<std::size_t>(rows_),
            static_cast<std::size_t>(rows_)};
  }

  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] T* data() { return data_.data(); }

 private:
  local_index_t rows_ = 0;
  int cols_ = 0;
  AlignedVector<T> data_;
};

/// column(j) ← scale · v — batched right-hand-side construction for the
/// many-RHS solver entry points (scale 1 is a plain column copy).
template <typename T>
void set_column_scaled(MultiVector<T>& q, int j, std::span<const T> v,
                       T scale) {
  auto col = q.column(j);
  HPGMX_CHECK(v.size() >= col.size());
  const T* __restrict vv = v.data();
  T* __restrict cv = col.data();
  const local_index_t n = q.rows();
#pragma omp parallel for schedule(static)
  for (local_index_t i = 0; i < n; ++i) {
    cv[i] = vv[i] * scale;
  }
}

/// h[j] = (Q[:,j], w) for j < k, batched into a single length-k allreduce in
/// precision T. Local accumulation in T, matching the benchmark's fp32 CGS2
/// kernels (reorthogonalization absorbs the roundoff — alg. 3 lines 24–26).
template <typename T>
void gemv_t(Comm& comm, const MultiVector<T>& q, int k, std::span<const T> w,
            std::span<T> h) {
  HPGMX_CHECK(k >= 0 && k <= q.cols());
  HPGMX_CHECK(static_cast<int>(h.size()) >= k);
  HPGMX_CHECK(static_cast<local_index_t>(w.size()) >= q.rows());
  AlignedVector<T> local(static_cast<std::size_t>(k), T(0));
  const local_index_t n = q.rows();
  for (int j = 0; j < k; ++j) {
    const T* __restrict col = q.data() + static_cast<std::size_t>(j) *
                                             static_cast<std::size_t>(n);
    const T* __restrict wv = w.data();
    accum_t<T> acc = accum_t<T>(0);
#pragma omp parallel for schedule(static) reduction(+ : acc)
    for (local_index_t i = 0; i < n; ++i) {
      acc += col[i] * wv[i];
    }
    local[static_cast<std::size_t>(j)] = static_cast<T>(acc);
  }
  comm.allreduce(std::span<const T>(local.data(), local.size()),
                 h.subspan(0, static_cast<std::size_t>(k)), ReduceOp::Sum);
}

/// w ← w − Q[:,1:k] h. One pass over w; the k basis-vector streams are read
/// unit-stride.
template <typename T>
void gemv_n_sub(const MultiVector<T>& q, int k, std::span<const T> h,
                std::span<T> w) {
  HPGMX_CHECK(k >= 0 && k <= q.cols());
  const local_index_t n = q.rows();
  const T* __restrict qd = q.data();
  const T* __restrict hv = h.data();
  T* __restrict wv = w.data();
#pragma omp parallel for schedule(static)
  for (local_index_t i = 0; i < n; ++i) {
    accum_t<T> acc = wv[i];
    for (int j = 0; j < k; ++j) {
      acc -= qd[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(i)] *
             hv[j];
    }
    wv[i] = static_cast<T>(acc);
  }
}

/// w ← w − Q[:,1:k] h with the local ‖w‖² folded into the same sweep — the
/// CGS2 normalization fusion: the norm that follows the second projection
/// pass (alg. 3 line 26) rides on the w values the update already holds in
/// registers, saving the separate full read sweep of w. The reduction is
/// the same ordered per-kReduceBlock double partial sum as
/// dot_span_blocked(w, w), computed from the *stored* (rounded) w values,
/// so `gemv_n_sub_norm(...)` is bit-identical to `gemv_n_sub(...);
/// dot_span_blocked(w, w)` for any thread count — the contract the
/// solvers' fused/unfused toggle (HPGMX_FUSED) is tested on.
template <typename T>
[[nodiscard]] double gemv_n_sub_norm(const MultiVector<T>& q, int k,
                                     std::span<const T> h, std::span<T> w) {
  HPGMX_CHECK(k >= 0 && k <= q.cols());
  const local_index_t n = q.rows();
  const T* __restrict qd = q.data();
  const T* __restrict hv = h.data();
  T* __restrict wv = w.data();
  const std::size_t nblocks =
      (static_cast<std::size_t>(n) + detail::kReduceBlock - 1) /
      detail::kReduceBlock;
  AlignedVector<double> partial(nblocks, 0.0);
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t i0 = blk * detail::kReduceBlock;
    const std::size_t i1 =
        std::min(static_cast<std::size_t>(n), i0 + detail::kReduceBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      accum_t<T> acc = wv[i];
      for (int j = 0; j < k; ++j) {
        acc -= qd[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
                  i] *
               hv[j];
      }
      wv[i] = static_cast<T>(acc);
    }
    partial[blk] = detail::dot_block(wv + i0, wv + i0, i1 - i0);
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// w ← Q[:,1:k] t (used for the restart correction r = Q t, alg. 3 line 46).
template <typename T>
void gemv_n(const MultiVector<T>& q, int k, std::span<const T> t,
            std::span<T> w) {
  HPGMX_CHECK(k >= 0 && k <= q.cols());
  const local_index_t n = q.rows();
  const T* __restrict qd = q.data();
  const T* __restrict tv = t.data();
  T* __restrict wv = w.data();
#pragma omp parallel for schedule(static)
  for (local_index_t i = 0; i < n; ++i) {
    accum_t<T> acc = accum_t<T>(0);
    for (int j = 0; j < k; ++j) {
      acc += qd[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(i)] *
             tv[j];
    }
    wv[i] = static_cast<T>(acc);
  }
}

}  // namespace hpgmx
