// Dense level-1 kernels, including the custom mixed-precision variants of
// paper §3.2.5 (device-resident WAXPBY etc. — here: single-pass fused
// kernels so precision conversion never costs an extra memory sweep).
//
// Local reductions accumulate in double regardless of storage precision
// (cheap on every platform, removes accumulation-order noise from the
// mixed-precision convergence study); distributed reductions communicate in
// the *storage* precision, preserving the benchmark's halved allreduce
// payloads for the single-precision solver.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "base/aligned_vector.hpp"
#include "base/error.hpp"
#include "base/types.hpp"
#include "comm/comm.hpp"
#include "precision/convert_batch.hpp"

namespace hpgmx {

namespace detail {

/// Partial-sum granularity of every *blocked* (deterministic) reduction:
/// one double partial per kReduceBlock contiguous elements, partials
/// combined sequentially in index order. Matches kConvertBlock so 16-bit
/// inputs widen through one staging tile per partial, and matches the
/// sparse kernels' row-block size (kEllBlockRows) so the fused
/// SpMV+dot / residual+norm kernels produce bit-identical sums.
inline constexpr std::size_t kReduceBlock = kConvertBlock;

/// Sum partials in index order — deterministic for any thread count.
[[nodiscard]] inline double ordered_sum(const double* partial, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += partial[i];
  }
  return total;
}

/// One block's dot contribution, accumulated sequentially in double. 16-bit
/// operands widen through a SIMD staging tile first; the double adds stay
/// sequential so the partial is the same no matter how the caller threads.
template <typename TX, typename TY>
[[nodiscard]] inline double dot_block(const TX* x, const TY* y,
                                      std::size_t len) {
  double p = 0.0;
  if constexpr (is_16bit_value_v<TX> && is_16bit_value_v<TY>) {
    float xs[kReduceBlock];
    float ys[kReduceBlock];
    widen_block(x, xs, len);
    widen_block(y, ys, len);
    for (std::size_t i = 0; i < len; ++i) {
      p = std::fma(static_cast<double>(xs[i]),
                   static_cast<double>(ys[i]), p);
    }
  } else if constexpr (is_16bit_value_v<TX>) {
    float xs[kReduceBlock];
    widen_block(x, xs, len);
    for (std::size_t i = 0; i < len; ++i) {
      p = std::fma(static_cast<double>(xs[i]),
                   static_cast<double>(y[i]), p);
    }
  } else if constexpr (is_16bit_value_v<TY>) {
    float ys[kReduceBlock];
    widen_block(y, ys, len);
    for (std::size_t i = 0; i < len; ++i) {
      p = std::fma(static_cast<double>(x[i]),
                   static_cast<double>(ys[i]), p);
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      p = std::fma(static_cast<double>(x[i]),
                   static_cast<double>(y[i]), p);
    }
  }
  return p;
}

}  // namespace detail

/// Deterministic blocked local dot in double: per-block partials combined in
/// index order, independent of the thread count. This is the *unfused* leg
/// of the fused-pass pairs (spmv_dot, waxpby_norm, residual_norm2) — the
/// fused kernels reproduce exactly these partials inside their own sweeps,
/// which is what makes the solvers' fused/unfused toggle bit-stable.
template <typename TX, typename TY>
[[nodiscard]] double dot_span_blocked(std::span<const TX> x,
                                      std::span<const TY> y) {
  HPGMX_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const std::size_t nblocks =
      (n + detail::kReduceBlock - 1) / detail::kReduceBlock;
  AlignedVector<double> partial(nblocks, 0.0);
  const TX* __restrict xv = x.data();
  const TY* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t i0 = blk * detail::kReduceBlock;
    const std::size_t len = std::min(detail::kReduceBlock, n - i0);
    partial[blk] = detail::dot_block(xv + i0, yv + i0, len);
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// Row-subset variant of dot_span_blocked: ⟨x, y⟩ over the listed entries,
/// blocked over the *list* (the operator's interior/boundary ordering).
/// The optimized-path spmv_dot computes exactly these partials in-kernel.
template <typename TX, typename TY>
[[nodiscard]] double dot_rows_blocked(std::span<const TX> x,
                                      std::span<const TY> y,
                                      std::span<const local_index_t> rows) {
  const std::size_t nk = rows.size();
  const std::size_t nblocks =
      (nk + detail::kReduceBlock - 1) / detail::kReduceBlock;
  AlignedVector<double> partial(nblocks, 0.0);
  const TX* __restrict xv = x.data();
  const TY* __restrict yv = y.data();
  const local_index_t* __restrict rws = rows.data();
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t k0 = blk * detail::kReduceBlock;
    const std::size_t k1 = std::min(nk, k0 + detail::kReduceBlock);
    double p = 0.0;
    for (std::size_t k = k0; k < k1; ++k) {
      const local_index_t r = rws[k];
      p = std::fma(static_cast<double>(static_cast<accum_t<TX>>(xv[r])),
                   static_cast<double>(static_cast<accum_t<TY>>(yv[r])), p);
    }
    partial[blk] = p;
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// Local dot product. Accumulation happens in the wider of the two storage
/// precisions — fp32 inputs accumulate in fp32, exactly like the GPU
/// kernels of the paper's fp32 CGS2 (the re-orthogonalization step exists
/// to absorb precisely this roundoff). Deterministic for a fixed thread
/// count via OpenMP's static reduction.
template <typename TX, typename TY>
[[nodiscard]] accum_t<wider_t<TX, TY>> dot_local(std::span<const TX> x,
                                                 std::span<const TY> y) {
  // 16-bit storage promotes through float (accum_t) so the OpenMP
  // reduction runs on a hardware type and the sum keeps its digits.
  using Acc = accum_t<wider_t<TX, TY>>;
  HPGMX_CHECK(x.size() == y.size());
  const TX* __restrict xv = x.data();
  const TY* __restrict yv = y.data();
  Acc acc = Acc(0);
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<Acc>(xv[i]) * static_cast<Acc>(yv[i]);
  }
  return acc;
}

/// Distributed dot in communication precision T (one allreduce). The fp32
/// instantiation halves both the local traffic and the allreduce payload —
/// the benchmark's mixed-precision communication saving.
template <typename T, typename TX, typename TY>
[[nodiscard]] T dot(Comm& comm, std::span<const TX> x, std::span<const TY> y) {
  const T local = static_cast<T>(dot_local(x, y));
  return comm.allreduce_scalar(local, ReduceOp::Sum);
}

/// Distributed 2-norm in communication precision T.
template <typename T, typename TX>
[[nodiscard]] T nrm2(Comm& comm, std::span<const TX> x) {
  const T sq = dot<T>(comm, x, x);
  return static_cast<T>(std::sqrt(static_cast<double>(sq)));
}

/// y += alpha * x.
template <typename S, typename TX, typename TY>
void axpy(S alpha, std::span<const TX> x, std::span<TY> y) {
  HPGMX_CHECK(x.size() == y.size());
  const TX* __restrict xv = x.data();
  TY* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    yv[i] = static_cast<TY>(static_cast<S>(yv[i]) +
                            alpha * static_cast<S>(xv[i]));
  }
}

/// w = alpha * x + beta * y — the benchmark's WAXPBY, with independent
/// storage precisions on all three vectors (mixed-precision GMRES-IR update
/// kernels). Arithmetic in S (double for the required outer updates).
/// w may alias x or y (same-index in-place update), hence no __restrict.
template <typename S, typename TW, typename TX, typename TY>
void waxpby(S alpha, std::span<const TX> x, S beta, std::span<const TY> y,
            std::span<TW> w) {
  HPGMX_CHECK(x.size() == y.size() && x.size() == w.size());
  const TX* xv = x.data();
  const TY* yv = y.data();
  TW* wv = w.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    wv[i] = static_cast<TW>(alpha * static_cast<S>(xv[i]) +
                            beta * static_cast<S>(yv[i]));
  }
}

/// Fused WAXPBY + ‖w‖²: w = alpha·x + beta·y and the local squared 2-norm
/// of w in the same sweep — one fewer full read pass over w than
/// waxpby() followed by a dot (§3.2.5's single-pass custom-kernel idea
/// applied to the solver's update+norm pairs). The norm uses the *stored*
/// (rounded) w and the same ordered per-block double partials as
/// dot_span_blocked, so `waxpby_norm(...)` is bit-identical to
/// `waxpby(...); dot_span_blocked(w, w)` for any thread count. Aliasing
/// w with x or y is allowed (elementwise, same index only), which is how
/// CG fuses its in-place residual update with the next iteration's norm.
template <typename S, typename TW, typename TX, typename TY>
[[nodiscard]] double waxpby_norm(S alpha, std::span<const TX> x, S beta,
                                 std::span<const TY> y, std::span<TW> w) {
  HPGMX_CHECK(x.size() == y.size() && x.size() == w.size());
  const std::size_t n = x.size();
  const std::size_t nblocks =
      (n + detail::kReduceBlock - 1) / detail::kReduceBlock;
  AlignedVector<double> partial(nblocks, 0.0);
  // No __restrict: w is allowed to alias x or y (same-index in-place update).
  const TX* xv = x.data();
  const TY* yv = y.data();
  TW* wv = w.data();
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t i0 = blk * detail::kReduceBlock;
    const std::size_t i1 = std::min(n, i0 + detail::kReduceBlock);
    double p = 0.0;
    for (std::size_t i = i0; i < i1; ++i) {
      wv[i] = static_cast<TW>(alpha * static_cast<S>(xv[i]) +
                              beta * static_cast<S>(yv[i]));
      const double wi = static_cast<double>(static_cast<accum_t<TW>>(wv[i]));
      p = std::fma(wi, wi, p);
    }
    partial[blk] = p;
  }
  return detail::ordered_sum(partial.data(), partial.size());
}

/// x *= alpha.
template <typename S, typename T>
void scal(S alpha, std::span<T> x) {
  T* __restrict xv = x.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    xv[i] = static_cast<T>(alpha * static_cast<S>(xv[i]));
  }
}

/// y = x with (possible) precision conversion — a single streaming pass
/// through the batched block primitives (precision/convert_batch.hpp), so
/// 16-bit endpoints convert SIMD-wide instead of one scalar at a time.
/// Bit-identical to the per-element static_cast loop it replaced.
template <typename TX, typename TY>
void convert_copy(std::span<const TX> x, std::span<TY> y) {
  convert_span(x, y);
}

/// x = value everywhere.
template <typename T>
void set_all(std::span<T> x, T value) {
  T* __restrict xv = x.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    xv[i] = value;
  }
}

}  // namespace hpgmx
