// Dense level-1 kernels, including the custom mixed-precision variants of
// paper §3.2.5 (device-resident WAXPBY etc. — here: single-pass fused
// kernels so precision conversion never costs an extra memory sweep).
//
// Local reductions accumulate in double regardless of storage precision
// (cheap on every platform, removes accumulation-order noise from the
// mixed-precision convergence study); distributed reductions communicate in
// the *storage* precision, preserving the benchmark's halved allreduce
// payloads for the single-precision solver.
#pragma once

#include <cmath>
#include <span>

#include "base/error.hpp"
#include "base/types.hpp"
#include "comm/comm.hpp"

namespace hpgmx {

/// Local dot product. Accumulation happens in the wider of the two storage
/// precisions — fp32 inputs accumulate in fp32, exactly like the GPU
/// kernels of the paper's fp32 CGS2 (the re-orthogonalization step exists
/// to absorb precisely this roundoff). Deterministic for a fixed thread
/// count via OpenMP's static reduction.
template <typename TX, typename TY>
[[nodiscard]] accum_t<wider_t<TX, TY>> dot_local(std::span<const TX> x,
                                                 std::span<const TY> y) {
  // 16-bit storage promotes through float (accum_t) so the OpenMP
  // reduction runs on a hardware type and the sum keeps its digits.
  using Acc = accum_t<wider_t<TX, TY>>;
  HPGMX_CHECK(x.size() == y.size());
  const TX* __restrict xv = x.data();
  const TY* __restrict yv = y.data();
  Acc acc = Acc(0);
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<Acc>(xv[i]) * static_cast<Acc>(yv[i]);
  }
  return acc;
}

/// Distributed dot in communication precision T (one allreduce). The fp32
/// instantiation halves both the local traffic and the allreduce payload —
/// the benchmark's mixed-precision communication saving.
template <typename T, typename TX, typename TY>
[[nodiscard]] T dot(Comm& comm, std::span<const TX> x, std::span<const TY> y) {
  const T local = static_cast<T>(dot_local(x, y));
  return comm.allreduce_scalar(local, ReduceOp::Sum);
}

/// Distributed 2-norm in communication precision T.
template <typename T, typename TX>
[[nodiscard]] T nrm2(Comm& comm, std::span<const TX> x) {
  const T sq = dot<T>(comm, x, x);
  return static_cast<T>(std::sqrt(static_cast<double>(sq)));
}

/// y += alpha * x.
template <typename S, typename TX, typename TY>
void axpy(S alpha, std::span<const TX> x, std::span<TY> y) {
  HPGMX_CHECK(x.size() == y.size());
  const TX* __restrict xv = x.data();
  TY* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    yv[i] = static_cast<TY>(static_cast<S>(yv[i]) +
                            alpha * static_cast<S>(xv[i]));
  }
}

/// w = alpha * x + beta * y — the benchmark's WAXPBY, with independent
/// storage precisions on all three vectors (mixed-precision GMRES-IR update
/// kernels). Arithmetic in S (double for the required outer updates).
template <typename S, typename TW, typename TX, typename TY>
void waxpby(S alpha, std::span<const TX> x, S beta, std::span<const TY> y,
            std::span<TW> w) {
  HPGMX_CHECK(x.size() == y.size() && x.size() == w.size());
  const TX* __restrict xv = x.data();
  const TY* __restrict yv = y.data();
  TW* __restrict wv = w.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    wv[i] = static_cast<TW>(alpha * static_cast<S>(xv[i]) +
                            beta * static_cast<S>(yv[i]));
  }
}

/// x *= alpha.
template <typename S, typename T>
void scal(S alpha, std::span<T> x) {
  T* __restrict xv = x.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    xv[i] = static_cast<T>(alpha * static_cast<S>(xv[i]));
  }
}

/// y = x with (possible) precision conversion — a single streaming pass.
template <typename TX, typename TY>
void convert_copy(std::span<const TX> x, std::span<TY> y) {
  HPGMX_CHECK(x.size() == y.size());
  const TX* __restrict xv = x.data();
  TY* __restrict yv = y.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    yv[i] = static_cast<TY>(xv[i]);
  }
}

/// x = value everywhere.
template <typename T>
void set_all(std::span<T> x, T value) {
  T* __restrict xv = x.data();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < x.size(); ++i) {
    xv[i] = value;
  }
}

}  // namespace hpgmx
