#include "precision/precision.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "base/options.hpp"

namespace hpgmx {

std::optional<Precision> parse_precision(std::string_view s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "fp64" || lower == "double" || lower == "f64") {
    return Precision::Fp64;
  }
  if (lower == "fp32" || lower == "float" || lower == "single" ||
      lower == "f32") {
    return Precision::Fp32;
  }
  if (lower == "bf16" || lower == "bfloat16") {
    return Precision::Bf16;
  }
  if (lower == "fp16" || lower == "half" || lower == "f16" ||
      lower == "binary16") {
    return Precision::Fp16;
  }
  return std::nullopt;
}

Precision precision_from_env(const char* var, Precision fallback) {
  const auto raw = env_string(var);
  if (!raw.has_value()) {
    return fallback;
  }
  const auto parsed = parse_precision(*raw);
  HPGMX_CHECK_MSG(parsed.has_value(),
                  var << "='" << *raw
                      << "' is not a precision (fp64|fp32|bf16|fp16)");
  return *parsed;
}

}  // namespace hpgmx
