#include "precision/precision.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "base/options.hpp"

namespace hpgmx {

std::optional<Precision> parse_precision(std::string_view s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "fp64" || lower == "double" || lower == "f64") {
    return Precision::Fp64;
  }
  if (lower == "fp32" || lower == "float" || lower == "single" ||
      lower == "f32") {
    return Precision::Fp32;
  }
  if (lower == "bf16" || lower == "bfloat16") {
    return Precision::Bf16;
  }
  if (lower == "fp16" || lower == "half" || lower == "f16" ||
      lower == "binary16") {
    return Precision::Fp16;
  }
  return std::nullopt;
}

Precision precision_from_env(const char* var, Precision fallback) {
  const auto raw = env_string(var);
  if (!raw.has_value()) {
    return fallback;
  }
  const auto parsed = parse_precision(*raw);
  HPGMX_CHECK_MSG(parsed.has_value(), var << "='" << *raw
                                          << "' is not a precision (accepted: "
                                          << kPrecisionTokens << ")");
  return *parsed;
}

std::string PrecisionSchedule::to_string() const {
  std::string out;
  for (const Precision p : levels) {
    if (!out.empty()) {
      out += ',';
    }
    out += precision_name(p);
  }
  return out;
}

std::optional<PrecisionSchedule> parse_precision_schedule(std::string_view s) {
  PrecisionSchedule schedule;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view elem =
        comma == std::string_view::npos ? s : s.substr(0, comma);
    const auto p = parse_precision(elem);
    if (!p.has_value()) {
      return std::nullopt;  // includes empty elements ("fp32,,bf16")
    }
    schedule.levels.push_back(*p);
    if (comma == std::string_view::npos) {
      break;
    }
    s.remove_prefix(comma + 1);
    if (s.empty()) {
      return std::nullopt;  // trailing comma
    }
  }
  if (schedule.levels.empty()) {
    return std::nullopt;
  }
  return schedule;
}

PrecisionSchedule schedule_from_env(const char* var) {
  const auto raw = env_string(var);
  if (!raw.has_value() || raw->empty()) {
    return {};
  }
  const auto parsed = parse_precision_schedule(*raw);
  HPGMX_CHECK_MSG(parsed.has_value(),
                  var << "='" << *raw
                      << "' is not a precision schedule: expected a "
                         "comma-separated list of "
                      << kPrecisionTokens << " tokens, e.g. fp32,bf16,bf16");
  return *parsed;
}

}  // namespace hpgmx
