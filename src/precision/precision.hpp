// Runtime selection of the GMRES-IR inner storage precision.
//
// The solver stack (DistOperator/Multigrid/GmresIr) is templated on its
// value type; this header is the bridge from a run-time choice — a
// BenchParams field, the HPGMX_PRECISION environment variable, a sweep
// loop in an exhibit — to those instantiations. dispatch_precision()
// instantiates its callable once per supported format, which is where the
// bf16/fp16 kernel and solver template bodies get compiled.
#pragma once

#include <optional>
#include <string_view>

#include "base/error.hpp"
#include "precision/float16.hpp"

namespace hpgmx {

/// Storage formats the inner GMRES-IR cycles can run in.
enum class Precision {
  Fp64,  ///< double — degenerate "mixed" solver, useful as a control
  Fp32,  ///< float — the paper's benchmark configuration
  Bf16,  ///< bfloat16 — half the bytes, fp32 exponent range
  Fp16,  ///< IEEE binary16 — half the bytes, needs ScaleGuard
};

/// Value-type tag passed to dispatch_precision() callables.
template <typename T>
struct PrecisionTag {
  using type = T;
};

[[nodiscard]] constexpr std::string_view precision_name(Precision p) {
  switch (p) {
    case Precision::Fp64: return "fp64";
    case Precision::Fp32: return "fp32";
    case Precision::Bf16: return "bf16";
    case Precision::Fp16: return "fp16";
  }
  return "?";
}

/// Parse "fp64"/"fp32"/"bf16"/"fp16" (also accepts "double"/"float"/"half").
[[nodiscard]] std::optional<Precision> parse_precision(std::string_view s);

/// Environment override: parse `var` when set, else `fallback`. Throws on
/// an unparseable value (a typo'd sweep must not silently run fp32).
[[nodiscard]] Precision precision_from_env(const char* var, Precision fallback);

/// Invoke `f(PrecisionTag<T>{})` with T selected by `p`; returns f's result.
template <typename F>
decltype(auto) dispatch_precision(Precision p, F&& f) {
  switch (p) {
    case Precision::Fp64: return f(PrecisionTag<double>{});
    case Precision::Fp32: return f(PrecisionTag<float>{});
    case Precision::Bf16: return f(PrecisionTag<bf16_t>{});
    case Precision::Fp16: return f(PrecisionTag<fp16_t>{});
  }
  HPGMX_CHECK_MSG(false, "invalid Precision value");
  return f(PrecisionTag<float>{});  // unreachable
}

}  // namespace hpgmx
