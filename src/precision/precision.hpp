// Runtime selection of the GMRES-IR inner storage precision.
//
// The solver stack (DistOperator/Multigrid/GmresIr) is templated on its
// value type; this header is the bridge from a run-time choice — a
// BenchParams field, the HPGMX_PRECISION environment variable, a sweep
// loop in an exhibit — to those instantiations. dispatch_precision()
// instantiates its callable once per supported format, which is where the
// bf16/fp16 kernel and solver template bodies get compiled.
//
// PrecisionSchedule extends the single-format choice to one format *per
// multigrid level* (progressive precision: fp32 fine level, 16-bit coarse
// levels). The schedule's entry level (index 0) is what the solver
// dispatches on; Multigrid consumes the rest.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "precision/float16.hpp"

namespace hpgmx {

/// Storage formats the inner GMRES-IR cycles can run in.
enum class Precision {
  Fp64,  ///< double — degenerate "mixed" solver, useful as a control
  Fp32,  ///< float — the paper's benchmark configuration
  Bf16,  ///< bfloat16 — half the bytes, fp32 exponent range
  Fp16,  ///< IEEE binary16 — half the bytes, needs ScaleGuard
};

/// Value-type tag passed to dispatch_precision() callables.
template <typename T>
struct PrecisionTag {
  using type = T;
};

/// The accepted canonical tokens, in the order of the enum — every parse /
/// dispatch error message names these so a typo'd environment variable
/// tells the user what would have worked.
inline constexpr std::string_view kPrecisionTokens = "fp64|fp32|bf16|fp16";

[[nodiscard]] constexpr std::string_view precision_name(Precision p) {
  switch (p) {
    case Precision::Fp64: return "fp64";
    case Precision::Fp32: return "fp32";
    case Precision::Bf16: return "bf16";
    case Precision::Fp16: return "fp16";
  }
  return "?";
}

/// Map a supported value type back to its enum (the inverse of
/// dispatch_precision's tag), so runtime schedule entries can be checked
/// against compile-time instantiations. Unsupported types fail to compile
/// rather than silently mapping to a wrong format.
namespace detail {
template <typename T>
struct PrecisionOf {
  static_assert(is_supported_value_v<T>,
                "precision_of_v requires a supported value type");
  static constexpr Precision value =
      std::is_same_v<T, double>   ? Precision::Fp64
      : std::is_same_v<T, float>  ? Precision::Fp32
      : std::is_same_v<T, bf16_t> ? Precision::Bf16
                                  : Precision::Fp16;
};
}  // namespace detail

template <typename T>
inline constexpr Precision precision_of_v = detail::PrecisionOf<T>::value;

/// Bytes one stored value of format `p` occupies — the runtime counterpart
/// of PrecisionTraits<T>::bytes for schedule-driven byte accounting.
[[nodiscard]] constexpr std::size_t precision_bytes(Precision p) {
  return (p == Precision::Fp64) ? 8u : (p == Precision::Fp32) ? 4u : 2u;
}

/// Parse "fp64"/"fp32"/"bf16"/"fp16" (also accepts "double"/"float"/"half").
[[nodiscard]] std::optional<Precision> parse_precision(std::string_view s);

/// Environment override: parse `var` when set, else `fallback`. Throws on
/// an unparseable value (a typo'd sweep must not silently run fp32); the
/// message names the accepted tokens (kPrecisionTokens).
[[nodiscard]] Precision precision_from_env(const char* var, Precision fallback);

/// A storage format per multigrid level (progressive-precision multigrid).
///
/// `levels[0]` is the fine level — the format the GMRES-IR inner solver
/// dispatches on; deeper levels may narrow (e.g. fp32,bf16,bf16,fp16).
/// A schedule shorter than the hierarchy extends with its last entry, so
/// "fp32,bf16" means "fp32 fine level, bf16 everywhere below". An empty
/// schedule is the degenerate uniform case: every level runs the single
/// configured inner precision.
struct PrecisionSchedule {
  std::vector<Precision> levels;

  [[nodiscard]] bool empty() const { return levels.empty(); }

  /// True when every level (after extension) shares one format.
  [[nodiscard]] bool uniform() const {
    for (const Precision p : levels) {
      if (p != levels.front()) {
        return false;
      }
    }
    return true;
  }

  /// Format of level `l`; schedules shorter than the hierarchy clamp to
  /// their last entry. Must not be called on an empty schedule.
  [[nodiscard]] Precision at(int l) const {
    HPGMX_CHECK(!levels.empty() && l >= 0);
    const auto i = static_cast<std::size_t>(l);
    return i < levels.size() ? levels[i] : levels.back();
  }

  /// The format the inner solver dispatches on (fine level).
  [[nodiscard]] Precision entry() const { return at(0); }

  /// Canonical comma-separated form, e.g. "fp32,bf16,bf16" ("" if empty).
  [[nodiscard]] std::string to_string() const;
};

/// Parse a comma-separated schedule, e.g. "fp32,bf16,bf16,fp16". Every
/// element must be a valid precision token; empty elements (or an empty
/// string) are rejected.
[[nodiscard]] std::optional<PrecisionSchedule> parse_precision_schedule(
    std::string_view s);

/// Environment override: parse `var` when set, else return an empty
/// (uniform) schedule. Throws on an unparseable value, naming the offending
/// element and the accepted tokens.
[[nodiscard]] PrecisionSchedule schedule_from_env(const char* var);

/// Invoke `f(PrecisionTag<T>{})` with T selected by `p`; returns f's result.
template <typename F>
decltype(auto) dispatch_precision(Precision p, F&& f) {
  switch (p) {
    case Precision::Fp64: return f(PrecisionTag<double>{});
    case Precision::Fp32: return f(PrecisionTag<float>{});
    case Precision::Bf16: return f(PrecisionTag<bf16_t>{});
    case Precision::Fp16: return f(PrecisionTag<fp16_t>{});
  }
  HPGMX_CHECK_MSG(false, "invalid Precision value "
                             << static_cast<int>(p)
                             << " (accepted: " << kPrecisionTokens << ")");
  return f(PrecisionTag<float>{});  // unreachable
}

}  // namespace hpgmx
