// Adaptive per-iteration precision control for GMRES-IR.
//
// The paper's thesis is that memory traffic, not flops, bounds HPG-MxP —
// so the byte-optimal inner format is the *lowest one that still
// converges*, which is a property of the operator observed at run time,
// not of a static config. PrecisionController is the deterministic state
// machine that discovers it: each outer IR cycle runs in the current rung
// of a promotion ladder (starting at the cheapest rung that can win — see
// AdaptiveConfig::start), the controller watches the measured
// outer-residual contraction per cycle,
// and when contraction stagnates — Carson's promote-on-stagnation
// criterion (Balancing Inexactness in Mixed Precision Matrix
// Computations) — it promotes to the next (wider) rung. Non-finite growth
// in the inner basis promotes immediately. There is no demotion: a rung
// that has been observed to stagnate once would stagnate again at the
// same residual magnitude, so the ladder is climbed monotonically.
//
// The controller is the promotion half of the AMP scaler pattern whose
// backoff/regrowth half already lives in scale_guard.hpp: ScaleGuard moves
// the *exponent window* of one fixed format, the controller moves the
// *format* itself. Both are driven exclusively by rank-consistent
// (allreduce-derived or collectively voted) observations, so every SPMD
// rank takes identical transitions without extra communication.
//
// The state machine is pure: it never touches a solver. GmresIr reports
// observations through the InnerCycleObserver interface; the
// tests/precision_oracle.hpp harness drives the same interface with
// scripted residual trajectories, which is how stagnation, recovery, and
// non-finite paths are unit-tested without running a solve.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "grid/scenario.hpp"
#include "precision/precision.hpp"

namespace hpgmx {

/// Configuration of the adaptive controller (HPGMX_ADAPTIVE* knobs).
struct AdaptiveConfig {
  /// Master switch (HPGMX_ADAPTIVE=on|off). Off is bit-identical to the
  /// static inner_precision / precision_schedule path.
  bool enabled = false;
  /// A cycle whose outer contraction rho_new/rho_prev lands at or above
  /// this is stagnant (HPGMX_ADAPTIVE_THRESHOLD; 1.0 = only literal
  /// non-progress). The default 1e-3 calls a cycle stagnant when it
  /// recovers fewer than three decimal digits: a format whose roundoff
  /// floor limits the cycle (bf16 here measures ~1.8 digits/cycle) sits
  /// well above it, a healthy format (fp32, ~4.5 digits/cycle) well below
  /// — ~30x margin to each regime on the catalog operators.
  double stagnation_threshold = 1e-3;
  /// Consecutive stagnant cycles tolerated before promoting
  /// (HPGMX_ADAPTIVE_PATIENCE). One good cycle resets the count.
  int patience = 2;
  /// Promotion ladder, cheapest rung first, strictly widening
  /// (HPGMX_ADAPTIVE_LADDER, schedule syntax, e.g. "fp16,bf16,fp32").
  /// Rung order is fp16 < bf16 < fp32 < fp64: bf16 has fp32's exponent
  /// range (the robustness axis that matters for promotion), fp16 only
  /// better roundoff.
  std::vector<Precision> ladder = {Precision::Bf16, Precision::Fp32,
                                   Precision::Fp64};
  /// Starting rung override (HPGMX_ADAPTIVE_START, must name a ladder
  /// entry). Unset = the measured auto rule: prefer the fp32 rung when the
  /// ladder has one — per the realized-bytes model a 16-bit inner step buys
  /// ~0.5x the contraction of an fp32 step for ~0.66x the bytes, a net
  /// loss at any tolerance (docs/PRECISION_POLICY.md; it is why the paper
  /// benchmarks fp32 inner solves) — so fp32 is the cheapest rung that can
  /// win. An all-sub-fp32 ladder is explicitly exploratory: it starts at
  /// ladder.front(), except the low-precision stress scenarios (jump,
  /// stretched) start one rung higher — their contraction at the cheapest
  /// rung is known-poor, so starting there only burns cycles the
  /// controller would spend discovering the promotion.
  std::optional<Precision> start;

  /// Promotion rank of `p` within the ladder ordering above.
  [[nodiscard]] static int rung_order(Precision p) {
    switch (p) {
      case Precision::Fp16: return 0;
      case Precision::Bf16: return 1;
      case Precision::Fp32: return 2;
      case Precision::Fp64: return 3;
    }
    return 3;
  }

  /// Throws unless the config is usable: non-empty strictly-widening
  /// ladder, threshold > 0, patience >= 1, start (when set) on the ladder.
  void validate() const;

  /// The rung this config starts `scenario` at (scenario-aware default).
  [[nodiscard]] int start_rung(Scenario scenario) const;

  /// Canonical text form, stable across runs — part of the problem
  /// descriptor's cache identity ("off", or
  /// "on(th=0.001,pat=2,ladder=bf16,fp32,fp64,start=auto)").
  [[nodiscard]] std::string to_string() const;

  /// HPGMX_ADAPTIVE (on|off|1|0), HPGMX_ADAPTIVE_THRESHOLD,
  /// HPGMX_ADAPTIVE_PATIENCE, HPGMX_ADAPTIVE_LADDER,
  /// HPGMX_ADAPTIVE_START overrides. Throws on unparseable values.
  [[nodiscard]] static AdaptiveConfig from_env();

  friend bool operator==(const AdaptiveConfig&, const AdaptiveConfig&) =
      default;
};

/// What a cycle observation asks the solver to do next.
enum class CycleAction {
  Continue,  ///< keep iterating in the current format
  Promote,   ///< stop; the caller re-enters at the promoted format
};

/// Observation interface GmresIr reports through (and the scripted-residual
/// oracle drives in tests). Every call site in the solver is reached only
/// after a rank-consistent (allreduce-derived or collectively voted)
/// detection, so implementations may change state without communicating.
class InnerCycleObserver {
 public:
  virtual ~InnerCycleObserver() = default;
  /// Outer relative residual at the top of each refinement cycle (the
  /// first call of a solve is the baseline). Promote aborts the solve
  /// with SolveResult::switch_requested; x keeps its warm value.
  virtual CycleAction observe_residual(double relative_residual) = 0;
  /// A completed inner GMRES cycle of `k` Arnoldi steps (bytes were
  /// streamed whether or not the correction is later accepted).
  virtual void observe_inner_iterations(int k) = 0;
  /// Rank-consistent non-finite detection in the inner basis or the
  /// correction. Promote abandons the cycle (x untouched); Continue hands
  /// the overflow to the ScaleGuard exactly as without an observer.
  virtual CycleAction observe_non_finite() = 0;
};

/// One executed inner cycle: which rung ran it and how many Arnoldi steps
/// it took — the input of the realized-bytes model.
struct CycleRecord {
  int rung = 0;
  Precision precision = Precision::Fp32;
  int inner_iterations = 0;
};

/// The promote-on-stagnation state machine. Deterministic: transitions
/// depend only on the observation sequence, so identical runs produce
/// identical format sequences (asserted by tests/test_adaptive.cpp).
class PrecisionController : public InnerCycleObserver {
 public:
  PrecisionController() = default;

  /// Adaptive controller for `cfg` solving `scenario` (picks the
  /// scenario-aware start rung). cfg.validate() must hold.
  explicit PrecisionController(AdaptiveConfig cfg,
                               Scenario scenario = Scenario::Poisson)
      : cfg_(std::move(cfg)), rung_(cfg_.start_rung(scenario)) {
    cfg_.validate();
  }

  /// Passive recorder pinned to a static `schedule` (non-empty): observes
  /// and records cycles but never promotes. This is what static solver
  /// paths attach so ServiceResult can carry a realized format sequence,
  /// and what exp_adaptive uses to model static-schedule bytes.
  [[nodiscard]] static PrecisionController recorder(PrecisionSchedule schedule);

  [[nodiscard]] const AdaptiveConfig& config() const { return cfg_; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }

  /// Format of the current rung — what the next cycle dispatches on.
  [[nodiscard]] Precision current() const {
    return pinned_.empty() ? cfg_.ladder[static_cast<std::size_t>(rung_)]
                           : pinned_.entry();
  }
  [[nodiscard]] int rung() const { return rung_; }
  [[nodiscard]] bool at_top() const {
    return !pinned_.empty() ||
           rung_ + 1 >= static_cast<int>(cfg_.ladder.size());
  }

  /// Per-level multigrid schedule of rung `r`: the rung's format on the
  /// fine (entry) level; coarse levels narrow to bf16 whenever the rung
  /// is wider (coarse-grid roundoff is attenuated by fine smoothing —
  /// the progressive-precision result the static schedules established),
  /// and stay uniform for the 16-bit rungs. A pinned recorder returns its
  /// static schedule regardless of `r`.
  [[nodiscard]] PrecisionSchedule schedule_for(int r) const;
  /// Schedule of the current rung.
  [[nodiscard]] PrecisionSchedule schedule() const {
    return schedule_for(rung_);
  }

  /// Reset the contraction baseline at a solve (or RHS-batch-column)
  /// boundary. The rung is retained: promotion is knowledge about the
  /// operator, not about one right-hand side.
  void begin_solve() {
    prev_residual_.reset();
    stagnant_ = 0;
  }

  // -- InnerCycleObserver ---------------------------------------------------
  CycleAction observe_residual(double relative_residual) override;
  void observe_inner_iterations(int k) override {
    records_.push_back(CycleRecord{rung_, current(), k});
  }
  CycleAction observe_non_finite() override;

  /// Every executed cycle, in order, across all solves this controller
  /// observed (rung + format + Arnoldi steps).
  [[nodiscard]] const std::vector<CycleRecord>& records() const {
    return records_;
  }
  /// The realized per-cycle format sequence (records(), formats only).
  [[nodiscard]] std::vector<Precision> realized() const {
    std::vector<Precision> out;
    out.reserve(records_.size());
    for (const CycleRecord& r : records_) {
      out.push_back(r.precision);
    }
    return out;
  }
  [[nodiscard]] int promotions() const { return promotions_; }

 private:
  /// Climb one rung (never called at the top). Resets the contraction
  /// baseline: the first cycle in the new format re-establishes it.
  void promote() {
    ++rung_;
    ++promotions_;
    prev_residual_.reset();
    stagnant_ = 0;
  }

  AdaptiveConfig cfg_;
  /// Non-empty: a recorder pinned to this static schedule.
  PrecisionSchedule pinned_;
  int rung_ = 0;
  int stagnant_ = 0;
  int promotions_ = 0;
  std::optional<double> prev_residual_;
  std::vector<CycleRecord> records_;
};

}  // namespace hpgmx
