#include "precision/adaptive_controller.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/options.hpp"

namespace hpgmx {

void AdaptiveConfig::validate() const {
  HPGMX_CHECK_MSG(!ladder.empty(), "adaptive ladder must not be empty");
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    HPGMX_CHECK_MSG(
        rung_order(ladder[i]) > rung_order(ladder[i - 1]),
        "adaptive ladder must widen strictly (fp16<bf16<fp32<fp64), got "
            << precision_name(ladder[i - 1]) << " -> "
            << precision_name(ladder[i]));
  }
  HPGMX_CHECK_MSG(stagnation_threshold > 0.0,
                  "HPGMX_ADAPTIVE_THRESHOLD must be positive, got "
                      << stagnation_threshold);
  HPGMX_CHECK_MSG(patience >= 1,
                  "HPGMX_ADAPTIVE_PATIENCE must be >= 1, got " << patience);
  if (start.has_value()) {
    HPGMX_CHECK_MSG(std::find(ladder.begin(), ladder.end(), *start) !=
                        ladder.end(),
                    "HPGMX_ADAPTIVE_START="
                        << precision_name(*start)
                        << " is not on the ladder (HPGMX_ADAPTIVE_LADDER)");
  }
}

int AdaptiveConfig::start_rung(Scenario scenario) const {
  if (start.has_value()) {
    const auto it = std::find(ladder.begin(), ladder.end(), *start);
    HPGMX_CHECK(it != ladder.end());
    return static_cast<int>(it - ladder.begin());
  }
  // Auto: fp32 is the measured knee of contraction-per-byte (a 16-bit step
  // recovers ~half the digits of an fp32 step for two-thirds of its bytes,
  // so a 16-bit rung loses end-to-end at any tolerance) — start there
  // whenever the ladder offers it.
  const auto fp32 = std::find(ladder.begin(), ladder.end(), Precision::Fp32);
  if (fp32 != ladder.end()) {
    return static_cast<int>(fp32 - ladder.begin());
  }
  // All-sub-fp32 ladder: exploratory by construction. Scenario-aware
  // default (ROADMAP item 4): jump/stretched operators are the known
  // low-precision stressors — start them one rung up rather than spending
  // `patience` stagnant cycles rediscovering it per solve.
  const bool stressed =
      scenario == Scenario::Jump || scenario == Scenario::Stretched;
  const int top = static_cast<int>(ladder.size()) - 1;
  return stressed ? std::min(1, top) : 0;
}

std::string AdaptiveConfig::to_string() const {
  if (!enabled) {
    return "off";
  }
  char head[64];
  std::snprintf(head, sizeof(head), "on(th=%.17g,pat=%d,ladder=",
                stagnation_threshold, patience);
  std::string out(head);
  out += PrecisionSchedule{ladder}.to_string();
  out += ",start=";
  out += start.has_value() ? precision_name(*start) : "auto";
  out += ')';
  return out;
}

AdaptiveConfig AdaptiveConfig::from_env() {
  AdaptiveConfig cfg;
  if (const auto raw = env_string("HPGMX_ADAPTIVE"); raw.has_value()) {
    if (*raw == "on" || *raw == "1") {
      cfg.enabled = true;
    } else if (*raw == "off" || *raw == "0") {
      cfg.enabled = false;
    } else {
      HPGMX_CHECK_MSG(false, "HPGMX_ADAPTIVE='" << *raw
                                                << "' is not a switch "
                                                   "(on|off|1|0)");
    }
  }
  cfg.stagnation_threshold =
      env_double_or("HPGMX_ADAPTIVE_THRESHOLD", cfg.stagnation_threshold);
  cfg.patience = static_cast<int>(
      env_int_or("HPGMX_ADAPTIVE_PATIENCE", cfg.patience));
  if (const auto raw = env_string("HPGMX_ADAPTIVE_LADDER");
      raw.has_value() && !raw->empty()) {
    const auto parsed = parse_precision_schedule(*raw);
    HPGMX_CHECK_MSG(parsed.has_value(),
                    "HPGMX_ADAPTIVE_LADDER='"
                        << *raw << "' is not a comma-separated list of "
                        << kPrecisionTokens << " tokens");
    cfg.ladder = parsed->levels;
  }
  if (const auto raw = env_string("HPGMX_ADAPTIVE_START");
      raw.has_value() && !raw->empty()) {
    const auto parsed = parse_precision(*raw);
    HPGMX_CHECK_MSG(parsed.has_value(),
                    "HPGMX_ADAPTIVE_START='" << *raw
                                             << "' is not a precision "
                                                "(accepted: "
                                             << kPrecisionTokens << ")");
    cfg.start = *parsed;
  }
  cfg.validate();
  return cfg;
}

PrecisionController PrecisionController::recorder(PrecisionSchedule schedule) {
  HPGMX_CHECK_MSG(!schedule.empty(),
                  "recorder controller needs a non-empty schedule");
  PrecisionController c;
  c.cfg_.enabled = false;
  c.pinned_ = std::move(schedule);
  c.rung_ = 0;
  return c;
}

PrecisionSchedule PrecisionController::schedule_for(int r) const {
  if (!pinned_.empty()) {
    return pinned_;
  }
  HPGMX_CHECK(r >= 0 && r < static_cast<int>(cfg_.ladder.size()));
  const Precision fine = cfg_.ladder[static_cast<std::size_t>(r)];
  if (precision_bytes(fine) <= precision_bytes(Precision::Bf16)) {
    return PrecisionSchedule{{fine}};  // already 2-byte: stay uniform
  }
  // Wider rungs keep the coarse levels in bf16 (the progressive-precision
  // schedule the static sweeps validated): promotion buys back fine-level
  // accuracy, which is where the contraction was lost, without giving up
  // the coarse-level byte savings.
  return PrecisionSchedule{{fine, Precision::Bf16}};
}

CycleAction PrecisionController::observe_residual(double relative_residual) {
  if (!prev_residual_.has_value()) {
    prev_residual_ = relative_residual;  // baseline, nothing to compare yet
    return CycleAction::Continue;
  }
  const double contraction = relative_residual / *prev_residual_;
  prev_residual_ = relative_residual;
  if (!std::isfinite(contraction) || contraction < cfg_.stagnation_threshold) {
    stagnant_ = 0;  // healthy cycle (non-finite is observe_non_finite's job)
    return CycleAction::Continue;
  }
  ++stagnant_;
  if (!cfg_.enabled || at_top() || stagnant_ < cfg_.patience) {
    return CycleAction::Continue;
  }
  promote();
  return CycleAction::Promote;
}

CycleAction PrecisionController::observe_non_finite() {
  if (!cfg_.enabled || at_top()) {
    return CycleAction::Continue;  // ScaleGuard backoff handles it
  }
  // Overflow at this rung: promotion fixes the range problem outright,
  // where a ScaleGuard backoff would only shift the window and retry.
  promote();
  return CycleAction::Promote;
}

}  // namespace hpgmx
