// Software 16-bit storage formats: bfloat16 (`bf16_t`) and IEEE binary16
// (`fp16_t`).
//
// These are *storage* types in the sense of the paper's memory-wall
// argument: what matters for a bandwidth-bound sparse solver is the number
// of bytes a value occupies in memory, not the width of the ALU that
// combines it. Both types hold a 16-bit payload (sizeof == 2, so the bytes
// model and halo/allreduce payloads are automatically halved relative to
// fp32) and promote all arithmetic through float via an implicit
// conversion operator — the same contract hardware bf16/fp16 units expose
// when they accumulate in fp32.
//
// Conversions from float use round-to-nearest-even, the IEEE default and
// the behavior of __float2half_rn / hardware bf16 converters; NaNs are
// quieted and keep their sign, infinities and overflow saturate to the
// format's infinity.
#pragma once

#include <bit>
#include <cstdint>

#include "base/types.hpp"

namespace hpgmx {
namespace detail {

/// float -> bfloat16 bits, round-to-nearest-even on the dropped 16 bits.
[[nodiscard]] constexpr std::uint16_t float_to_bf16_bits(float f) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    // NaN: quiet it and keep the sign; rounding could otherwise carry the
    // mantissa into the exponent and turn the NaN into an infinity.
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  const std::uint32_t rounded = u + 0x7fffu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(rounded >> 16);
}

[[nodiscard]] constexpr float bf16_bits_to_float(std::uint16_t b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

/// float -> IEEE binary16 bits, round-to-nearest-even, overflow to inf,
/// gradual underflow into half subnormals.
[[nodiscard]] constexpr std::uint16_t float_to_fp16_bits(float f) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  const auto sign = static_cast<std::uint16_t>((u >> 16) & 0x8000u);
  const std::uint32_t abs = u & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf or NaN
    const auto mant =
        abs > 0x7f800000u
            ? static_cast<std::uint16_t>(((abs >> 13) & 0x3ffu) | 0x200u)
            : static_cast<std::uint16_t>(0);
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }
  if (abs >= 0x47800000u) {  // >= 2^16: past the largest half even after RNE
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x38800000u) {  // normal half range [2^-14, 65504]
    // RNE on the 13 dropped mantissa bits; a mantissa carry walks into the
    // exponent, which also handles 65520 -> inf correctly.
    const std::uint32_t rounded = abs + 0xfffu + ((abs >> 13) & 1u);
    return static_cast<std::uint16_t>(sign | ((rounded - 0x38000000u) >> 13));
  }
  if (abs < 0x33000000u) {  // < 2^-25: underflows to (signed) zero
    return sign;
  }
  // Subnormal half: quantize to multiples of 2^-24 with RNE.
  const std::uint32_t exp = abs >> 23;               // biased, 102..112
  const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
  const std::uint32_t shift = 126u - exp;            // 14..24
  const std::uint32_t q = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t half = 1u << (shift - 1u);
  const std::uint32_t up = (rem > half || (rem == half && (q & 1u))) ? 1u : 0u;
  return static_cast<std::uint16_t>(sign | (q + up));
}

[[nodiscard]] constexpr float fp16_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  if (exp == 0x1fu) {  // inf / NaN
    return std::bit_cast<float>(sign | 0x7f800000u | (mant << 13));
  }
  if (exp == 0) {  // zero / subnormal: value = mant * 2^-24
    if (mant == 0) {
      return std::bit_cast<float>(sign);
    }
    const float v = static_cast<float>(mant) * 0x1p-24f;
    return sign != 0 ? -v : v;
  }
  return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
}

}  // namespace detail

/// bfloat16: 1 sign, 8 exponent, 7 mantissa bits — float's exponent range
/// at half the storage. The format of choice for demoted matrices whose
/// dynamic range is unknown (no overflow risk relative to fp32).
struct bf16_t {
  std::uint16_t bits = 0;

  constexpr bf16_t() = default;
  constexpr bf16_t(float f) : bits(detail::float_to_bf16_bits(f)) {}  // NOLINT
  explicit constexpr bf16_t(double d) : bf16_t(static_cast<float>(d)) {}
  explicit constexpr bf16_t(int i) : bf16_t(static_cast<float>(i)) {}

  constexpr operator float() const {  // NOLINT: promotion is the arithmetic
    return detail::bf16_bits_to_float(bits);
  }

  constexpr bf16_t& operator+=(float o) { return *this = bf16_t(static_cast<float>(*this) + o); }
  constexpr bf16_t& operator-=(float o) { return *this = bf16_t(static_cast<float>(*this) - o); }
  constexpr bf16_t& operator*=(float o) { return *this = bf16_t(static_cast<float>(*this) * o); }
  constexpr bf16_t& operator/=(float o) { return *this = bf16_t(static_cast<float>(*this) / o); }

  [[nodiscard]] static constexpr bf16_t from_bits(std::uint16_t b) {
    bf16_t v;
    v.bits = b;
    return v;
  }
};

/// IEEE binary16: 1 sign, 5 exponent, 10 mantissa bits — three extra digits
/// of precision over bf16, paid for with a [6e-8, 65504] magnitude window
/// that needs a ScaleGuard to survive inside GMRES-IR.
struct fp16_t {
  std::uint16_t bits = 0;

  constexpr fp16_t() = default;
  constexpr fp16_t(float f) : bits(detail::float_to_fp16_bits(f)) {}  // NOLINT
  explicit constexpr fp16_t(double d) : fp16_t(static_cast<float>(d)) {}
  explicit constexpr fp16_t(int i) : fp16_t(static_cast<float>(i)) {}

  constexpr operator float() const {  // NOLINT: promotion is the arithmetic
    return detail::fp16_bits_to_float(bits);
  }

  constexpr fp16_t& operator+=(float o) { return *this = fp16_t(static_cast<float>(*this) + o); }
  constexpr fp16_t& operator-=(float o) { return *this = fp16_t(static_cast<float>(*this) - o); }
  constexpr fp16_t& operator*=(float o) { return *this = fp16_t(static_cast<float>(*this) * o); }
  constexpr fp16_t& operator/=(float o) { return *this = fp16_t(static_cast<float>(*this) / o); }

  [[nodiscard]] static constexpr fp16_t from_bits(std::uint16_t b) {
    fp16_t v;
    v.bits = b;
    return v;
  }
};

static_assert(sizeof(bf16_t) == 2 && sizeof(fp16_t) == 2);

template <>
inline constexpr bool is_supported_value_v<bf16_t> = true;
template <>
inline constexpr bool is_supported_value_v<fp16_t> = true;

/// 16-bit accumulations promote through float: a running bf16 sum over a
/// 27-entry stencil row would lose ~5% of it to roundoff.
template <>
struct accum<bf16_t> {
  using type = float;
};
template <>
struct accum<fp16_t> {
  using type = float;
};

template <>
struct PrecisionTraits<bf16_t> {
  /// eps = 2^-7 (7 mantissa bits), so unit roundoff is 2^-8.
  static constexpr bf16_t unit_roundoff{0x1p-8f};
  static constexpr std::size_t bytes = sizeof(bf16_t);
  /// 0x7f7f: exponent 254, mantissa all ones.
  static constexpr double max_finite = 3.3895313892515355e38;
  static constexpr std::string_view name = "bf16";
};

template <>
struct PrecisionTraits<fp16_t> {
  /// eps = 2^-10 (10 mantissa bits), so unit roundoff is 2^-11.
  static constexpr fp16_t unit_roundoff{0x1p-11f};
  static constexpr std::size_t bytes = sizeof(fp16_t);
  static constexpr double max_finite = 65504.0;
  static constexpr std::string_view name = "fp16";
};

}  // namespace hpgmx
