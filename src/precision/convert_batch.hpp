// Batched (span-level) precision conversion primitives.
//
// The scalar conversion routines in float16.hpp are exact but branchy —
// inlined into a streaming kernel they keep the loop from vectorizing, so
// the 16-bit storage formats were paying their byte savings back in scalar
// convert latency. This header provides block conversions written so that
// `#pragma omp simd` auto-vectorizes them:
//
//   widen_block   bf16/fp16 -> float   bf16 is a pure bit shift; fp16 uses
//                                      the branch-light exponent-rebias
//                                      trick (select-form, no early returns)
//   narrow_block  float -> bf16/fp16   RNE via integer manipulation, all
//                                      range cases computed unconditionally
//                                      and combined with selects
//
// Every fast path is bit-identical to its scalar counterpart in
// float16.hpp; tests/test_precision.cpp asserts this exhaustively over all
// 65536 16-bit patterns (widen) and over widened + randomized float inputs
// (narrow). convert_block()/convert_span() route any supported value-type
// pair through these primitives (staging through float where needed) and
// are what EllMatrix::convert and convert_copy stream through.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>

#include "base/error.hpp"
#include "base/types.hpp"
#include "precision/float16.hpp"

namespace hpgmx {
namespace detail {

/// Block length the staged kernels and convert_span() chunk by: big enough
/// to amortize the loop prologue, small enough that a float staging tile
/// (4 KiB) plus its 16-bit source stays L1-resident.
inline constexpr std::size_t kConvertBlock = 1024;

/// Branch-light fp16 bits -> float bits (Giesen-style exponent rebias).
/// Normals get the +112 exponent rebias directly; inf/NaN take a second
/// rebias so the exponent saturates; subnormals renormalize through one
/// exact float subtraction. All three candidates are computed and the
/// result selected, so the loop body has no control flow to break SIMD.
[[nodiscard]] inline float fp16_bits_to_float_fast(std::uint16_t h) {
  const std::uint32_t em = (static_cast<std::uint32_t>(h) & 0x7fffu) << 13;
  const std::uint32_t exp = em & 0x0f800000u;  // exponent field, shifted
  std::uint32_t o = em + 0x38000000u;          // (127 - 15) << 23 rebias
  o = (exp == 0x0f800000u) ? o + 0x38000000u : o;  // inf/NaN: saturate
  // Zero/subnormal: value = mant * 2^-24, produced exactly by subtracting
  // the magic 2^-14 from (em | 2^-14's bits) — same-exponent floats, so the
  // subtraction is exact (Sterbenz).
  const float sub = std::bit_cast<float>(em + 0x38800000u) -
                    std::bit_cast<float>(0x38800000u);
  o = (exp == 0) ? std::bit_cast<std::uint32_t>(sub) : o;
  return std::bit_cast<float>(
      o | (static_cast<std::uint32_t>(h & 0x8000u) << 16));
}

/// Branch-light float -> bf16 bits (RNE): the scalar routine's NaN early
/// return becomes a select.
[[nodiscard]] inline std::uint16_t float_to_bf16_bits_fast(float f) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t rounded = u + 0x7fffu + ((u >> 16) & 1u);
  return ((u & 0x7fffffffu) > 0x7f800000u)
             ? static_cast<std::uint16_t>((u >> 16) | 0x0040u)  // quiet NaN
             : static_cast<std::uint16_t>(rounded >> 16);
}

/// Branch-light float -> fp16 bits (RNE, overflow to inf, gradual
/// underflow): every range case of the scalar routine computed
/// unconditionally (shifts clamped so nothing is UB), then selected in
/// nesting order — later selects override earlier ones.
[[nodiscard]] inline std::uint16_t float_to_fp16_bits_fast(float f) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t abs = u & 0x7fffffffu;
  // NaN payload and the normal-range RNE (unsigned wrap below the normal
  // threshold is harmless — the select gates it out).
  const std::uint32_t nan16 = 0x7c00u | ((abs >> 13) & 0x3ffu) | 0x200u;
  const std::uint32_t norm =
      (abs + 0xfffu + ((abs >> 13) & 1u) - 0x38000000u) >> 13;
  // Subnormal half: quantize to multiples of 2^-24 with RNE. The true shift
  // is 14..24 in the gated range; clamp keeps the speculative computation
  // defined for every input.
  const std::uint32_t exp = abs >> 23;
  const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
  const std::uint32_t shift = std::min(126u - exp, 24u);
  const std::uint32_t q = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t half = (shift > 0) ? (1u << (shift - 1u)) : 0u;
  const std::uint32_t subn =
      q + ((rem > half || (rem == half && (q & 1u))) ? 1u : 0u);
  std::uint32_t h16 = (abs < 0x33000000u) ? 0u : subn;  // < 2^-25: signed zero
  h16 = (abs >= 0x38800000u) ? norm : h16;              // normal half range
  h16 = (abs >= 0x47800000u) ? 0x7c00u : h16;           // overflow -> inf
  h16 = (abs > 0x7f800000u) ? nan16 : h16;              // NaN
  return static_cast<std::uint16_t>(sign | h16);
}

}  // namespace detail

/// dst[i] = float(src[i]) — bf16 widening is one shift per lane.
inline void widen_block(const bf16_t* src, float* dst, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::bit_cast<float>(static_cast<std::uint32_t>(src[i].bits)
                                  << 16);
  }
}

/// dst[i] = float(src[i]) — branch-light fp16 widening.
inline void widen_block(const fp16_t* src, float* dst, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = detail::fp16_bits_to_float_fast(src[i].bits);
  }
}

/// dst[i] = bf16(src[i]) with round-to-nearest-even.
inline void narrow_block(const float* src, bf16_t* dst, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = bf16_t::from_bits(detail::float_to_bf16_bits_fast(src[i]));
  }
}

/// dst[i] = fp16(src[i]) with round-to-nearest-even.
inline void narrow_block(const float* src, fp16_t* dst, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = fp16_t::from_bits(detail::float_to_fp16_bits_fast(src[i]));
  }
}

namespace detail {
template <typename T>
inline constexpr bool is_16bit_value_v =
    std::is_same_v<T, bf16_t> || std::is_same_v<T, fp16_t>;
}  // namespace detail

/// Delta-widen (contiguous rows): cols[k] = (row0 + k) + delta[k] — the
/// index analogue of widen_block. A compressed-index ELL kernel materializes
/// one absolute-column tile per slot from the 16-bit delta stream, so the
/// x-gather that follows is indexed exactly like the 32-bit path while the
/// memory traffic is halved.
inline void widen_delta_block(const ell_delta_t* __restrict delta,
                              local_index_t row0,
                              local_index_t* __restrict cols, std::size_t n) {
#pragma omp simd
  for (std::size_t k = 0; k < n; ++k) {
    cols[k] = row0 + static_cast<local_index_t>(k) +
              static_cast<local_index_t>(delta[k]);
  }
}

/// Delta-widen (gathered rows): cols[k] = rows[k] + delta_slot[rows[k]],
/// where `delta_slot` points at one slot's delta stream (slot * num_rows).
/// Used by the row-list kernels (interior/boundary splits, GS colors).
inline void widen_delta_block_rows(const ell_delta_t* __restrict delta_slot,
                                   const local_index_t* __restrict rows,
                                   local_index_t* __restrict cols,
                                   std::size_t n) {
#pragma omp simd
  for (std::size_t k = 0; k < n; ++k) {
    cols[k] = rows[k] + static_cast<local_index_t>(
                            delta_slot[static_cast<std::size_t>(rows[k])]);
  }
}

/// Convert one block (n <= detail::kConvertBlock) between any two supported
/// value types, bit-identical to the per-element `static_cast<TY>(TX)` path:
/// 16-bit endpoints stage through float exactly as the scalar conversion
/// chain does (e.g. static_cast<bf16_t>(double) == bf16_t(float(double))).
template <typename TX, typename TY>
inline void convert_block(const TX* src, TY* dst, std::size_t n) {
  HPGMX_CHECK(n <= detail::kConvertBlock);
  if constexpr (std::is_same_v<TX, TY>) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = src[i];
    }
  } else if constexpr (detail::is_16bit_value_v<TX> &&
                       std::is_same_v<TY, float>) {
    widen_block(src, dst, n);
  } else if constexpr (std::is_same_v<TX, float> &&
                       detail::is_16bit_value_v<TY>) {
    narrow_block(src, dst, n);
  } else if constexpr (detail::is_16bit_value_v<TX>) {
    // 16-bit -> double / other 16-bit: widen to a float tile, then cast or
    // re-narrow — the same two-step chain the scalar conversions take.
    float stage[detail::kConvertBlock];
    widen_block(src, stage, n);
    if constexpr (std::is_same_v<TY, double>) {
#pragma omp simd
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<double>(stage[i]);
      }
    } else {
      narrow_block(stage, dst, n);
    }
  } else if constexpr (detail::is_16bit_value_v<TY>) {
    // double -> 16-bit: demote to float first (what the explicit 16-bit
    // constructors from double do), then narrow.
    float stage[detail::kConvertBlock];
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
      stage[i] = static_cast<float>(src[i]);
    }
    narrow_block(stage, dst, n);
  } else {
    // float <-> double.
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<TY>(src[i]);
    }
  }
}

/// Whole-span conversion: OpenMP-parallel over kConvertBlock chunks, each
/// chunk converted by the SIMD block primitive. This is the engine behind
/// convert_copy() and the matrix convert() routines.
template <typename TX, typename TY>
inline void convert_span(std::span<const TX> src, std::span<TY> dst) {
  HPGMX_CHECK(src.size() == dst.size());
  const std::size_t n = src.size();
  const std::size_t nblocks =
      (n + detail::kConvertBlock - 1) / detail::kConvertBlock;
  const TX* __restrict s = src.data();
  TY* __restrict d = dst.data();
#pragma omp parallel for schedule(static)
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t i0 = blk * detail::kConvertBlock;
    const std::size_t len = std::min(detail::kConvertBlock, n - i0);
    convert_block(s + i0, d + i0, len);
  }
}

}  // namespace hpgmx
