// AMP-style dynamic scaling for low-precision demotion inside GMRES-IR.
//
// The narrow-exponent format (fp16: largest finite 65504) cannot hold a
// badly scaled matrix: demoting A produces infinities, the inner Krylov
// basis turns non-finite, and the solver silently burns its iteration
// budget. In the spirit of gradient scaling in ML AMP runtimes, ScaleGuard
// manages one power-of-two scale α applied when the operator is demoted:
//
//   * at initialization, α is chosen so max|A| lands near `target_max_abs`
//     whenever the unscaled demotion would come close to the format's
//     overflow threshold (HPL-MxP-style equilibration to O(1); the demoted
//     residual is already scaled to unit norm by GMRES-IR's 1/ρ
//     normalization — α handles the matrix side the ρ scaling cannot);
//   * during the solve, the caller reports non-finite growth detected in
//     the inner Krylov basis (a NaN basis norm, a non-finite correction)
//     and backs α off multiplicatively, re-demoting the stored operator
//     from its double source at the new absolute scale;
//   * after clean outer cycles, α grows back toward its initial value.
//
// α is kept a power of two so demotion at any scale differs from the
// unscaled one only in the exponent, and the inner solve's arithmetic is
// unchanged up to exponent shifts. The inner GMRES then solves
// (αA) z = r/ρ, and the outer update compensates with x += (ρ·α) z —
// scaling is invisible to the converged answer.
//
// The guard is format-agnostic: initialized against fp32/bf16's huge range
// it stays at α = 1 and only monitors for non-finite growth.
#pragma once

#include <cmath>
#include <span>

namespace hpgmx {

struct ScaleGuardConfig {
  /// Demotion engages scaling only when max|A| exceeds this fraction of
  /// the format's largest finite value (below it, demotion is exact enough
  /// and α = 1 keeps fp32 semantics bit-identical to the unguarded path).
  double safety_fraction = 0.25;
  /// When engaged, α maps max|A| to roughly this magnitude. O(1) centers
  /// the demoted operator in the format's exponent window, leaving
  /// headroom both up (overflow) and down (subnormal underflow).
  double target_max_abs = 1.0;
  /// Multiplicative backoff applied on detected overflow (power of two).
  double backoff = 0.5;
  /// Growth factor applied after `growth_interval` clean outer cycles,
  /// never beyond the initial scale (power of two).
  double growth = 2.0;
  int growth_interval = 4;
  /// Overflows tolerated before the guard declares the solve lost.
  int max_backoffs = 60;
};

/// The power-of-two scale α that demotes values of magnitude up to
/// `max_abs_value` into a format whose largest finite value is
/// `format_max_finite` (PrecisionTraits<T>::max_finite): 1.0 when the
/// format's range absorbs the values directly, else the equilibration
/// toward `cfg.target_max_abs`. This is both the ScaleGuard's initial
/// scale and the per-level demotion scale of a precision-scheduled
/// multigrid, whose fp16 coarse levels each equilibrate against their own
/// level's max|A| (the guard's dynamic backoff then multiplies on top).
[[nodiscard]] inline double equilibration_scale(double max_abs_value,
                                                double format_max_finite,
                                                const ScaleGuardConfig& cfg = {}) {
  if (max_abs_value > cfg.safety_fraction * format_max_finite &&
      max_abs_value > 0.0 && std::isfinite(max_abs_value)) {
    return std::exp2(std::floor(std::log2(cfg.target_max_abs / max_abs_value)));
  }
  return 1.0;
}

class ScaleGuard {
 public:
  ScaleGuard() = default;
  explicit ScaleGuard(ScaleGuardConfig cfg) : cfg_(cfg) {}

  /// Choose the initial scale for demoting values of magnitude up to
  /// `max_abs_value` into a format whose largest finite value is
  /// `format_max_finite` (PrecisionTraits<T>::max_finite).
  void initialize(double max_abs_value, double format_max_finite) {
    init_scale_ = equilibration_scale(max_abs_value, format_max_finite, cfg_);
    scale_ = init_scale_;
    good_cycles_ = 0;
    backoffs_ = 0;
  }

  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double initial_scale() const { return init_scale_; }
  [[nodiscard]] bool engaged() const { return init_scale_ != 1.0; }
  [[nodiscard]] int overflow_count() const { return backoffs_; }
  [[nodiscard]] bool exhausted() const {
    return backoffs_ > cfg_.max_backoffs;
  }

  /// Record non-finite growth; the scale backs off by cfg_.backoff. The
  /// caller re-demotes its operators to the new absolute scale()
  /// (DistOperator::set_value_scale); the returned factor is informational.
  [[nodiscard]] double on_overflow() {
    ++backoffs_;
    good_cycles_ = 0;
    scale_ *= cfg_.backoff;
    return cfg_.backoff;
  }

  /// Restore the scale recorded in an SDC checkpoint during rollback. The
  /// clean-cycle counter resets (the rolled-back state must re-earn its
  /// regrowth) but the backoff count survives — overflow history is real
  /// even when the iterate is rewound. The caller re-demotes its operators
  /// to the restored scale (DistOperator::redemote).
  void restore(double checkpoint_scale) {
    scale_ = checkpoint_scale;
    good_cycles_ = 0;
  }

  /// Record a clean outer cycle. The scale regrows by cfg_.growth after
  /// growth_interval clean cycles, never past the initial scale; callers
  /// re-sync operators to scale(). Returns the applied factor.
  [[nodiscard]] double on_good_cycle() {
    if (scale_ >= init_scale_) {
      return 1.0;
    }
    if (++good_cycles_ < cfg_.growth_interval) {
      return 1.0;
    }
    good_cycles_ = 0;
    scale_ *= cfg_.growth;
    return cfg_.growth;
  }

 private:
  ScaleGuardConfig cfg_;
  double scale_ = 1.0;
  double init_scale_ = 1.0;
  int good_cycles_ = 0;
  int backoffs_ = 0;
};

/// True when every value of `v` is finite after promotion to double —
/// the non-finite detector the guard's caller runs over inner-basis and
/// correction vectors.
template <typename T>
[[nodiscard]] bool all_finite(std::span<const T> v) {
  for (const T& x : v) {
    if (!std::isfinite(static_cast<double>(x))) {
      return false;
    }
  }
  return true;
}

}  // namespace hpgmx
