// The three-phase HPG-MxP benchmark driver (paper §3):
//
//   1. validation  — double GMRES to 1e-9 (n_d iterations), then
//                    mixed GMRES-IR to the same target (n_ir); the ratio
//                    n_d/n_ir (capped at 1) penalizes the mxp score.
//                    Two modes: `standard` (small fixed rank count, §3) and
//                    `fullscale` (all ranks, iteration-capped target, §3.3).
//   2. mxp         — GMRES-IR runs of a fixed iteration count repeated
//                    until the time budget is filled; mixed-precision
//                    GFLOP/s collected from the motif model.
//   3. double      — the same with the all-double GMRES solver.
//
// Each phase executes as an SPMD region on a pluggable CommWorld
// (HPGMX_COMM): SelfComm for serial runs, ThreadComm — the historical
// in-process MPI substitute and still the default — or real MpiComm ranks
// under mpirun when built with HPGMX_WITH_MPI=ON. Per-rank problems and
// hierarchies are generated once for the ranks hosted by this process
// (all of them in-process, exactly one under MPI) and shared across phases.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/comm_world.hpp"
#include "core/gmres.hpp"
#include "core/gmres_ir.hpp"
#include "core/multigrid.hpp"
#include "core/params.hpp"
#include "perf/motifs.hpp"

namespace hpgmx {

enum class ValidationMode { Standard, FullScale };

struct ValidationResult {
  ValidationMode mode = ValidationMode::Standard;
  int ranks = 0;
  int n_d = 0;               ///< double-GMRES iterations to the target
  int n_ir = 0;              ///< GMRES-IR iterations to the same target
  double achieved_tol = 0;   ///< the target actually used (§3.3: fullscale
                             ///< may stop above 1e-9 at the iteration cap)
  bool d_converged = false;
  bool ir_converged = false;

  [[nodiscard]] double ratio() const {
    return n_ir > 0 ? static_cast<double>(n_d) / n_ir : 1.0;
  }
  /// Ratios above 1 confer no advantage (paper §3).
  [[nodiscard]] double penalty() const {
    const double r = ratio();
    return r < 1.0 ? r : 1.0;
  }
};

struct PhaseResult {
  std::string label;      ///< "mxp" or "double"
  int solves = 0;         ///< complete solver runs executed
  int iterations = 0;     ///< total iterations across solves (all ranks equal)
  double wall_seconds = 0;///< max across ranks
  MotifStats stats;       ///< merged across ranks
  double raw_gflops = 0;  ///< aggregate model FLOPs / wall
  double final_relres = 0;///< residual after the last fixed-iteration solve
};

struct BenchReport {
  BenchParams params;
  int ranks = 0;
  ValidationResult validation;
  PhaseResult mxp;
  PhaseResult dbl;

  [[nodiscard]] double penalized_gflops() const {
    return mxp.raw_gflops * validation.penalty();
  }
  /// The paper's headline metric: penalized mxp throughput over double.
  [[nodiscard]] double speedup() const {
    return dbl.raw_gflops > 0 ? penalized_gflops() / dbl.raw_gflops : 0;
  }
  /// Per-motif speedup (penalized), Fig. 5's bars.
  [[nodiscard]] double motif_speedup(Motif m) const {
    const double d = dbl.stats.gflops(m);
    return d > 0 ? mxp.stats.gflops(m) * validation.penalty() / d : 0;
  }

  [[nodiscard]] std::string to_string() const;
};

class BenchmarkDriver {
 public:
  /// Builds the problem hierarchy of every rank hosted by this process up
  /// front (shared by all phases). `num_ranks` sizes the SPMD world on the
  /// in-process backends; on the MPI backend the world size comes from
  /// mpirun instead (pass mpi_world_size(), which is what the requested
  /// count is checked against).
  BenchmarkDriver(BenchParams params, int num_ranks);
  ~BenchmarkDriver();

  [[nodiscard]] int num_ranks() const { return num_ranks_; }
  [[nodiscard]] const BenchParams& params() const { return params_; }

  /// Switch the inner GMRES-IR storage precision between runs — precision
  /// sweeps reuse one driver (and its generated hierarchies) per rank count.
  /// Clears any installed per-level schedule (a uniform format replaces it).
  void set_inner_precision(Precision p) {
    params_.precision_schedule = {};
    params_.inner_precision = p;
  }

  /// Install a per-level precision schedule for the inner multigrid
  /// (progressive precision); the inner solver dispatches on its entry
  /// format. An empty schedule restores the uniform inner_precision path.
  void set_precision_schedule(PrecisionSchedule s) {
    params_.set_precision_schedule(std::move(s));
  }

  /// Phase 1. `mode` selects §3 standard or §3.3 fullscale validation.
  ValidationResult run_validation(ValidationMode mode);

  /// Phases 2–3. `mixed` selects GMRES-IR (true) or double GMRES (false).
  PhaseResult run_phase(bool mixed);

  /// All three phases; standard validation.
  BenchReport run_all();

 private:
  BenchParams params_;
  int num_ranks_;
  /// SPMD world of the full-size run (params_.comm_backend), plus the
  /// locally hosted hierarchies — one per local slot, indexed by
  /// world_->slot_of(comm.rank()) inside SPMD bodies.
  std::unique_ptr<CommWorld> world_;
  std::vector<ProblemHierarchy> hierarchy_;
  /// Lazily built world/hierarchies for the standard-validation rank count
  /// when it differs (always in-process threads: an mpirun launch cannot
  /// shrink its process count, so MPI validation runs on the full world).
  std::unique_ptr<CommWorld> validation_world_;
  std::vector<ProblemHierarchy> validation_hierarchy_;
  int validation_ranks_ = 0;

  std::vector<ProblemHierarchy> build_hierarchies(const CommWorld& world) const;
  /// World + locally hosted hierarchies to run a `ranks`-wide region on.
  std::pair<CommWorld*, const std::vector<ProblemHierarchy>*> context_for(
      int ranks);
  /// Validation's double reference solve depends only on the problem and
  /// rank count, not on inner_precision — cache it so precision sweeps
  /// (several run_validation calls on one driver) run it once per ranks.
  SolveResult validation_double_result_;
  int validation_double_ranks_ = -1;
  /// Phase body instantiated per inner storage format (TLow is ignored for
  /// mixed == false, the all-double phase).
  template <typename TLow>
  PhaseResult run_phase_impl(bool mixed);
};

}  // namespace hpgmx
