// One distributed sparse operator (one multigrid level): matrix in both
// formats, halo machinery, color/level-schedule orderings, and the
// interior/boundary row split that drives compute–communication overlap.
//
// Every public operation has two runtime paths selected by OptLevel:
//
//   Reference  — CSR SpMV, two-kernel level-scheduled Gauss–Seidel,
//                blocking halo exchange before each kernel (paper §3.1);
//   Optimized  — ELL SpMV, one-sweep multicolor GS, fused restriction, and
//                split-phase halo exchange hidden behind interior rows
//                (paper §3.2).
//
// FLOP accounting uses the model in flops.hpp identically on both paths.
#pragma once

#include <utility>

#include "base/aligned_vector.hpp"
#include "base/event_sink.hpp"
#include "base/epoch.hpp"
#include "base/types.hpp"
#include "blas/vector_ops.hpp"
#include "coloring/coloring.hpp"
#include "comm/halo.hpp"
#include "core/flops.hpp"
#include "core/params.hpp"
#include "grid/problem.hpp"
#include "perf/motifs.hpp"
#include "sparse/gauss_seidel.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sptrsv.hpp"

namespace hpgmx {

/// Orderings and row splits shared by all precisions of one level.
struct OperatorStructure {
  HaloPattern halo;
  RowPartition colors;           ///< all rows grouped by color
  RowPartition colors_interior;  ///< per color: rows with no halo columns
  RowPartition colors_boundary;  ///< per color: rows reading halo columns
  RowPartition level_schedule;   ///< reference-path SpTRSV levels
  AlignedVector<local_index_t> interior_rows;  ///< all interior rows
  AlignedVector<local_index_t> boundary_rows;  ///< all boundary rows
  int num_colors = 0;
};

/// How to find the independent sets for the multicolor smoother.
enum class ColoringMode {
  Geometric,  ///< parity 8-coloring — exact for the 27-pt stencil (default)
  Jpl,        ///< Jones–Plassmann–Luby with hash weights (general graphs)
  Greedy,     ///< sequential first-fit (oracle/baseline)
};

/// Build orderings from a generated problem.
OperatorStructure build_structure(const Problem& prob, std::uint64_t seed,
                                  ColoringMode mode = ColoringMode::Geometric);

template <typename T>
class DistOperator {
 public:
  /// `tag` namespaces this level's halo traffic; `a` and `structure` must
  /// outlive the operator (`a` is retained as the re-demotion source for
  /// set_value_scale; `structure` is shared between the double and float
  /// instantiations). `value_scale` (a ScaleGuard's power-of-two α) scales
  /// values before demotion so narrow-exponent formats are not overflowed
  /// by a badly scaled matrix; 1.0 reproduces the plain conversion exactly.
  /// `idx` requests the ELL column-index layout (HPGMX_IDX): Auto/Idx16
  /// compress to 16-bit deltas when the local column window permits,
  /// falling back to 32-bit otherwise, so every kernel result is
  /// bit-identical across widths.
  DistOperator(const CsrMatrix<double>& a, const OperatorStructure* structure,
               OptLevel opt, int tag, double value_scale = 1.0,
               IndexWidth idx = IndexWidth::Auto)
      : source_(&a),
        value_scale_(value_scale),
        idx_(idx),
        csr_(a.convert<T>(value_scale)),
        ell_(ell_from_csr(csr_, idx)),
        structure_(structure),
        opt_(opt),
        halo_exchange_(&structure->halo, tag) {}

  // Not copyable (HaloExchange holds per-instance buffers); movable.
  DistOperator(DistOperator&&) noexcept = default;
  DistOperator& operator=(DistOperator&&) noexcept = default;

  [[nodiscard]] local_index_t num_owned() const { return csr_.num_rows; }
  [[nodiscard]] local_index_t vec_len() const { return csr_.num_cols; }
  [[nodiscard]] std::int64_t nnz() const { return csr_.nnz(); }
  [[nodiscard]] const CsrMatrix<T>& csr() const { return csr_; }
  [[nodiscard]] const EllMatrix<T>& ell() const { return ell_; }
  [[nodiscard]] const OperatorStructure& structure() const {
    return *structure_;
  }
  [[nodiscard]] OptLevel opt_level() const { return opt_; }

  void set_stats(MotifStats* stats) { stats_ = stats; }
  void set_event_sink(EventSink* sink) { sink_ = sink; }

  /// Attach (non-null) or detach (null) the SDC monitor: this level's halo
  /// messages carry verified additive checksums while attached (see
  /// HaloExchange::set_sdc_monitor for the cost and bit-identity contract).
  void set_sdc_monitor(SdcMonitor* monitor) {
    halo_exchange_.set_sdc_monitor(monitor);
  }

  /// Re-demote the stored matrix from its pristine double source at the
  /// current value_scale(), unconditionally. set_value_scale() no-ops when
  /// the scale is unchanged, so SDC rollback calls this to repair possibly
  /// corrupted low-precision values even when the checkpointed ScaleGuard
  /// scale equals the live one.
  void redemote() {
    csr_ = source_->convert<T>(value_scale_);
    ell_ = ell_from_csr(csr_, idx_);
  }

  /// Flip one bit of one stored nonzero on the *active* kernel path (ELL
  /// values when optimized, CSR values when reference) — the target:values
  /// fault site. `value_draw`/`bit_draw` are the injector's raw draws,
  /// reduced here against the live slab's geometry; `pinned_bit` >= 0 pins
  /// the in-element bit index. The double source is untouched, so
  /// redemote() repairs the damage.
  void corrupt_value_bit(std::uint64_t value_draw, std::uint64_t bit_draw,
                         int pinned_bit) {
    std::span<T> values = opt_ == OptLevel::Reference
                              ? std::span<T>(csr_.values)
                              : std::span<T>(ell_.values);
    if (values.empty()) {
      return;
    }
    constexpr std::size_t bits = sizeof(T) * 8;
    const std::size_t elem =
        static_cast<std::size_t>(value_draw % values.size());
    const std::size_t bit =
        pinned_bit >= 0 ? static_cast<std::size_t>(pinned_bit) % bits
                        : static_cast<std::size_t>(bit_draw % bits);
    auto* bytes = reinterpret_cast<unsigned char*>(values.data());
    bytes[elem * sizeof(T) + bit / 8] ^=
        static_cast<unsigned char>(1u << (bit % 8));
  }

  /// Enable/disable compute–communication overlap on the optimized path
  /// (HPGMX_OVERLAP). Off substitutes a blocking exchange for begin/finish
  /// and then runs the identical interior and boundary kernels in the
  /// identical order, so the two settings are bit-identical — the toggle is
  /// a pure scheduling ablation. The reference path always blocks.
  void set_overlap(bool overlap) { overlap_ = overlap; }
  [[nodiscard]] bool overlap() const { return overlap_; }

  [[nodiscard]] double value_scale() const { return value_scale_; }

  /// Set the demotion scale to the *absolute* value `scale`, re-demoting
  /// the stored matrix from the double source — a ScaleGuard backing off
  /// or recovering mid-solve. Re-demoting (rather than multiplying the
  /// rounded low-precision values in place) keeps the stored operator
  /// exactly (T)(scale·A) — entries in fp16's subnormal range would
  /// otherwise be double-rounded on every backoff/regrow round trip — and
  /// makes the call idempotent, so callers holding aliased views of one
  /// operator (GmresIr's a_low is the multigrid's fine level) stay
  /// consistent. No-op when the scale is unchanged.
  void set_value_scale(double scale) {
    if (scale == value_scale_) {
      return;
    }
    value_scale_ = scale;
    csr_ = source_->convert<T>(scale);
    ell_ = ell_from_csr(csr_, idx_);
  }

  /// Bytes one stored ELL column index occupies on the active path (2 when
  /// the compressed delta stream is in use, 4 otherwise) — what the bytes
  /// model should charge per optimized-path nonzero.
  [[nodiscard]] std::size_t ell_index_bytes() const {
    return ell_.index_bytes();
  }

  /// y = A x. x is a full-length vector (owned+halo); its halo region is
  /// refreshed as part of the product. Overlapped on the optimized path.
  void spmv(Comm& comm, std::span<T> x, std::span<T> y) {
    ScopedMotif sm(stats_, Motif::SpMV, spmv_flops(nnz()));
    if (opt_ == OptLevel::Reference) {
      halo_exchange_.exchange(comm, x, sink_);
      csr_spmv(csr_, std::span<const T>(x.data(), x.size()), y);
      return;
    }
    if (overlap_) {
      halo_exchange_.begin(comm, x, sink_);
    } else {
      halo_exchange_.exchange(comm, x, sink_);
    }
    const double t0 = epoch_seconds();
    ell_spmv_rows(ell_, std::span<const T>(x.data(), x.size()), y,
                  structure_->interior_rows);
    sink_->record(comm.rank(), "compute", "interior-spmv", t0,
                  epoch_seconds());
    if (overlap_) {
      halo_exchange_.finish(comm, sink_);
    }
    const double t1 = epoch_seconds();
    ell_spmv_rows(ell_, std::span<const T>(x.data(), x.size()), y,
                  structure_->boundary_rows);
    sink_->record(comm.rank(), "compute", "boundary-spmv", t1,
                  epoch_seconds());
  }

  /// Fused y = A x with the distributed ⟨y, x⟩ over owned rows folded into
  /// the same sweep (one allreduce). The local dot is an ordered per-block
  /// partial sum: on the reference path over row blocks, on the optimized
  /// path interior-list partials then boundary-list partials — exactly the
  /// sums spmv_then_dot() computes in a second pass, so the fused/unfused
  /// solver toggle flips memory traffic without perturbing one bit.
  [[nodiscard]] double spmv_dot(Comm& comm, std::span<T> x, std::span<T> y) {
    ScopedMotif sm(stats_, Motif::SpMV, spmv_flops(nnz()));
    if (stats_ != nullptr) {
      stats_->add_flops(Motif::SpMV, dot_flops(num_owned()));
    }
    double local;
    if (opt_ == OptLevel::Reference) {
      halo_exchange_.exchange(comm, x, sink_);
      local = csr_spmv_dot(csr_, std::span<const T>(x.data(), x.size()), y);
    } else {
      if (overlap_) {
        halo_exchange_.begin(comm, x, sink_);
      } else {
        halo_exchange_.exchange(comm, x, sink_);
      }
      const double t0 = epoch_seconds();
      const double interior = ell_spmv_rows_dot(
          ell_, std::span<const T>(x.data(), x.size()), y,
          structure_->interior_rows);
      sink_->record(comm.rank(), "compute", "interior-spmv", t0,
                    epoch_seconds());
      if (overlap_) {
        halo_exchange_.finish(comm, sink_);
      }
      const double t1 = epoch_seconds();
      const double boundary = ell_spmv_rows_dot(
          ell_, std::span<const T>(x.data(), x.size()), y,
          structure_->boundary_rows);
      sink_->record(comm.rank(), "compute", "boundary-spmv", t1,
                    epoch_seconds());
      local = interior + boundary;
    }
    return comm.allreduce_scalar(local, ReduceOp::Sum);
  }

  /// Unfused reference sequence for spmv_dot: the product, then a second
  /// full sweep for the dot with the same partial ordering. Same bits,
  /// one extra pass over y and x — the solvers' fused_passes=false leg.
  [[nodiscard]] double spmv_then_dot(Comm& comm, std::span<T> x,
                                     std::span<T> y) {
    spmv(comm, x, y);
    // The extra reduction sweep is timed under the same motif the fused
    // kernel folds it into, so fused/unfused breakdowns stay comparable.
    ScopedMotif sm(stats_, Motif::SpMV, dot_flops(num_owned()));
    const std::span<const T> xc(x.data(), x.size());
    const std::span<const T> yc(y.data(), y.size());
    double local;
    if (opt_ == OptLevel::Reference) {
      local = dot_span_blocked(
          std::span<const T>(yc.data(), static_cast<std::size_t>(num_owned())),
          std::span<const T>(xc.data(), static_cast<std::size_t>(num_owned())));
    } else {
      local = dot_rows_blocked(yc, xc, structure_->interior_rows) +
              dot_rows_blocked(yc, xc, structure_->boundary_rows);
    }
    return comm.allreduce_scalar(local, ReduceOp::Sum);
  }

  /// r = b − A x (owned rows).
  void residual(Comm& comm, std::span<const T> b, std::span<T> x,
                std::span<T> r) {
    ScopedMotif sm(stats_, Motif::SpMV, residual_flops(nnz(), num_owned()));
    halo_exchange_.exchange(comm, x, sink_);
    csr_residual(csr_, b, std::span<const T>(x.data(), x.size()), r);
  }

  /// Fused r = b − A x with the distributed ‖r‖² in the same sweep (the
  /// update+norm fusion of the refinement residual; one allreduce). Same
  /// ordered-partial contract as spmv_dot: bit-identical to residual()
  /// followed by dot_span_blocked(r, r), minus a full read sweep of r.
  [[nodiscard]] double residual_norm2(Comm& comm, std::span<const T> b,
                                      std::span<T> x, std::span<T> r) {
    return comm.allreduce_scalar(residual_norm2_local(comm, b, x, r),
                                 ReduceOp::Sum);
  }

  /// Local leg of residual_norm2: the same fused sweep (including the halo
  /// exchange of x) minus the allreduce, for callers that coalesce the
  /// reduction with other scalars (GmresIr's batched_reductions path packs
  /// it with the correction-finite vote in one 2-double message).
  [[nodiscard]] double residual_norm2_local(Comm& comm, std::span<const T> b,
                                            std::span<T> x, std::span<T> r) {
    ScopedMotif sm(stats_, Motif::SpMV, residual_flops(nnz(), num_owned()));
    if (stats_ != nullptr) {
      stats_->add_flops(Motif::SpMV, dot_flops(num_owned()));
    }
    halo_exchange_.exchange(comm, x, sink_);
    return csr_residual_norm2(csr_, b, std::span<const T>(x.data(), x.size()),
                              r);
  }

  /// Unfused reference sequence for residual_norm2 (fused_passes=false leg).
  [[nodiscard]] double residual_then_norm2(Comm& comm, std::span<const T> b,
                                           std::span<T> x, std::span<T> r) {
    return comm.allreduce_scalar(residual_then_norm2_local(comm, b, x, r),
                                 ReduceOp::Sum);
  }

  /// Local leg of residual_then_norm2 (see residual_norm2_local).
  [[nodiscard]] double residual_then_norm2_local(Comm& comm,
                                                 std::span<const T> b,
                                                 std::span<T> x,
                                                 std::span<T> r) {
    residual(comm, b, x, r);
    ScopedMotif sm(stats_, Motif::SpMV, dot_flops(num_owned()));
    const auto n = static_cast<std::size_t>(num_owned());
    return dot_span_blocked(std::span<const T>(r.data(), n),
                            std::span<const T>(r.data(), n));
  }

  /// One forward Gauss–Seidel sweep on A z = r. z is full-length; its halo
  /// holds the neighbors' pre-sweep values (block-Jacobi coupling).
  ///
  /// Optimized-path overlap follows the paper's event semantics: the send
  /// buffer is packed from the *old* z before the interior kernel may
  /// overwrite boundary entries; interior rows of the first color are
  /// smoothed while the exchange is in flight.
  void gs_forward(Comm& comm, std::span<const T> r, std::span<T> z) {
    ScopedMotif sm(stats_, Motif::GS, gs_sweep_flops(nnz(), num_owned()));
    if (opt_ == OptLevel::Reference) {
      halo_exchange_.exchange(comm, z, sink_);
      scratch_.resize(static_cast<std::size_t>(num_owned()));
      gs_sweep_reference(csr_, structure_->level_schedule, r, z,
                         std::span<T>(scratch_.data(), scratch_.size()));
      return;
    }
    if (overlap_) {
      halo_exchange_.begin(comm, z, sink_);  // packs old z first (the "event")
    } else {
      halo_exchange_.exchange(comm, z, sink_);
    }
    const double t0 = epoch_seconds();
    gs_sweep_rows_ell(ell_, structure_->colors_interior.group(0), r, z);
    sink_->record(comm.rank(), "compute", "GS-int-c0", t0, epoch_seconds());
    if (overlap_) {
      halo_exchange_.finish(comm, sink_);
    }
    const double t1 = epoch_seconds();
    gs_sweep_rows_ell(ell_, structure_->colors_boundary.group(0), r, z);
    for (int c = 1; c < structure_->colors_interior.num_groups(); ++c) {
      gs_sweep_rows_ell(ell_, structure_->colors_interior.group(c), r, z);
      gs_sweep_rows_ell(ell_, structure_->colors_boundary.group(c), r, z);
    }
    sink_->record(comm.rank(), "compute", "GS-rest", t1, epoch_seconds());
  }

  /// One backward sweep (colors descending); with gs_forward this forms the
  /// symmetric GS smoother of the HPCG-baseline CG solver. Optimized path
  /// only (the baseline comparison runs on the optimized configuration).
  void gs_backward(Comm& comm, std::span<const T> r, std::span<T> z) {
    ScopedMotif sm(stats_, Motif::GS, gs_sweep_flops(nnz(), num_owned()));
    halo_exchange_.exchange(comm, z, sink_);
    gs_sweep_colored_backward(csr_, structure_->colors, r, z);
  }

  /// Coarse-grid residual rc = R(b − A z) via the given injection map.
  /// Optimized: fused kernel evaluated only at coarse points (§3.2.4);
  /// reference: full fine-grid residual followed by injection, using
  /// caller-provided fine-length scratch. `TOut` is the coarse level's
  /// storage format — a precision-scheduled multigrid converts on the
  /// kernel's final store, never in a separate full-grid pass.
  template <typename TOut = T>
  void restrict_residual(Comm& comm, std::span<const T> b, std::span<T> z,
                         std::span<const local_index_t> c2f,
                         std::int64_t nnz_coarse_rows, std::span<TOut> rc) {
    if (opt_ == OptLevel::Reference) {
      // Unfused: the motif model still charges only the fused cost so both
      // paths report identical work; the reference path just takes longer.
      ScopedMotif sm(stats_, Motif::Restrict,
                     fused_restrict_flops(nnz_coarse_rows,
                                          static_cast<local_index_t>(c2f.size())));
      halo_exchange_.exchange(comm, z, sink_);
      scratch_.resize(static_cast<std::size_t>(num_owned()));
      csr_residual(csr_, b, std::span<const T>(z.data(), z.size()),
                   std::span<T>(scratch_.data(), scratch_.size()));
      inject_restrict(c2f,
                      std::span<const T>(scratch_.data(), scratch_.size()),
                      rc);
      return;
    }
    ScopedMotif sm(stats_, Motif::Restrict,
                   fused_restrict_flops(nnz_coarse_rows,
                                        static_cast<local_index_t>(c2f.size())));
    halo_exchange_.exchange(comm, z, sink_);
    fused_restrict_residual(csr_, b, std::span<const T>(z.data(), z.size()),
                            c2f, rc);
  }

 private:
  const CsrMatrix<double>* source_;
  double value_scale_;
  IndexWidth idx_ = IndexWidth::Auto;
  CsrMatrix<T> csr_;
  EllMatrix<T> ell_;
  const OperatorStructure* structure_;
  OptLevel opt_;
  bool overlap_ = true;
  HaloExchange<T> halo_exchange_;
  AlignedVector<T> scratch_;
  MotifStats* stats_ = nullptr;
  EventSink* sink_ = &null_event_sink();
};

}  // namespace hpgmx
