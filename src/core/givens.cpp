#include "core/givens.hpp"

#include <cmath>

#include "base/error.hpp"

namespace hpgmx {

GivensRotation compute_givens(double a, double b) {
  GivensRotation g;
  if (b == 0.0) {
    g.c = 1.0;
    g.s = 0.0;
    return g;
  }
  const double r = std::hypot(a, b);
  g.c = a / r;
  g.s = b / r;
  return g;
}

HessenbergQR::HessenbergQR(int m) : m_(m) {
  HPGMX_CHECK(m >= 1);
  r_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(m), 0.0);
  c_.assign(static_cast<std::size_t>(m), 0.0);
  s_.assign(static_cast<std::size_t>(m), 0.0);
  t_.assign(static_cast<std::size_t>(m) + 1, 0.0);
}

void HessenbergQR::reset(double beta) {
  std::fill(t_.begin(), t_.end(), 0.0);
  t_[0] = beta;
}

double HessenbergQR::insert_column(int k, std::span<double> h) {
  HPGMX_CHECK(k >= 0 && k < m_);
  HPGMX_CHECK(static_cast<int>(h.size()) >= k + 2);
  // Apply the k previous rotations to the new column.
  for (int j = 0; j < k; ++j) {
    const double hj = h[static_cast<std::size_t>(j)];
    const double hj1 = h[static_cast<std::size_t>(j) + 1];
    h[static_cast<std::size_t>(j)] =
        c_[static_cast<std::size_t>(j)] * hj +
        s_[static_cast<std::size_t>(j)] * hj1;
    h[static_cast<std::size_t>(j) + 1] =
        -s_[static_cast<std::size_t>(j)] * hj +
        c_[static_cast<std::size_t>(j)] * hj1;
  }
  // New rotation eliminating the subdiagonal.
  const GivensRotation g = compute_givens(h[static_cast<std::size_t>(k)],
                                          h[static_cast<std::size_t>(k) + 1]);
  c_[static_cast<std::size_t>(k)] = g.c;
  s_[static_cast<std::size_t>(k)] = g.s;
  h[static_cast<std::size_t>(k)] =
      g.c * h[static_cast<std::size_t>(k)] +
      g.s * h[static_cast<std::size_t>(k) + 1];
  h[static_cast<std::size_t>(k) + 1] = 0.0;
  // Update the reduced right-hand side.
  const double tk = t_[static_cast<std::size_t>(k)];
  t_[static_cast<std::size_t>(k)] = g.c * tk;
  t_[static_cast<std::size_t>(k) + 1] = -g.s * tk;
  // Store the rotated column into the packed triangular factor.
  for (int j = 0; j <= k; ++j) {
    r_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_) +
       static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j)];
  }
  return std::abs(t_[static_cast<std::size_t>(k) + 1]);
}

void HessenbergQR::solve(int k, std::span<double> y) const {
  HPGMX_CHECK(k >= 1 && k <= m_);
  HPGMX_CHECK(static_cast<int>(y.size()) >= k);
  for (int i = k - 1; i >= 0; --i) {
    double acc = t_[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      acc -= r_[static_cast<std::size_t>(j) * static_cast<std::size_t>(m_) +
                static_cast<std::size_t>(i)] *
             y[static_cast<std::size_t>(j)];
    }
    const double rii =
        r_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(i)];
    HPGMX_CHECK_MSG(rii != 0.0, "singular triangular factor at " << i);
    y[static_cast<std::size_t>(i)] = acc / rii;
  }
}

double HessenbergQR::residual_estimate(int k) const {
  HPGMX_CHECK(k >= 0 && k <= m_);
  return std::abs(t_[static_cast<std::size_t>(k)]);
}

}  // namespace hpgmx
