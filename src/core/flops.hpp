// The benchmark's floating-point operation model (paper §3: "the number of
// floating point operations is counted using a carefully constructed
// model"). Counts depend only on problem structure — never on which
// implementation path executed them — so reference and optimized runs are
// compared on identical work. Operations of all precisions count equally.
#pragma once

#include "base/types.hpp"

namespace hpgmx {

/// y = A x over nnz stored nonzeros: one multiply + one add each.
[[nodiscard]] constexpr flop_count_t spmv_flops(std::int64_t nnz) {
  return 2 * static_cast<flop_count_t>(nnz);
}

/// One forward Gauss–Seidel sweep: a multiply+add per nonzero plus a divide
/// per row (the relaxation form's arithmetic).
[[nodiscard]] constexpr flop_count_t gs_sweep_flops(std::int64_t nnz,
                                                    local_index_t n) {
  return 2 * static_cast<flop_count_t>(nnz) + static_cast<flop_count_t>(n);
}

/// r = b − A x: SpMV plus a subtraction per row.
[[nodiscard]] constexpr flop_count_t residual_flops(std::int64_t nnz,
                                                    local_index_t n) {
  return 2 * static_cast<flop_count_t>(nnz) + static_cast<flop_count_t>(n);
}

/// Fused residual+restriction evaluated only at coarse points: 2 ops per
/// nonzero of the *restricted* fine rows (paper §3.2.4: "we updated the
/// accounting ... to include this optimization").
[[nodiscard]] constexpr flop_count_t fused_restrict_flops(
    std::int64_t nnz_coarse_rows, local_index_t n_coarse) {
  return 2 * static_cast<flop_count_t>(nnz_coarse_rows) +
         static_cast<flop_count_t>(n_coarse);
}

/// Injection prolongation + correction: one add per coarse point.
[[nodiscard]] constexpr flop_count_t prolong_flops(local_index_t n_coarse) {
  return static_cast<flop_count_t>(n_coarse);
}

/// Dot product: multiply + add per element.
[[nodiscard]] constexpr flop_count_t dot_flops(local_index_t n) {
  return 2 * static_cast<flop_count_t>(n);
}

/// w = αx + βy: three ops per element.
[[nodiscard]] constexpr flop_count_t waxpby_flops(local_index_t n) {
  return 3 * static_cast<flop_count_t>(n);
}

/// x *= α.
[[nodiscard]] constexpr flop_count_t scal_flops(local_index_t n) {
  return static_cast<flop_count_t>(n);
}

/// CGS2 orthogonalization of the (k+1)-th basis vector against k vectors:
/// two GEMV-T + two GEMV-N passes of 2nk each (classical Gram–Schmidt run
/// twice, alg. 3 lines 21–26).
[[nodiscard]] constexpr flop_count_t cgs2_flops(local_index_t n, int k) {
  return 8 * static_cast<flop_count_t>(n) * static_cast<flop_count_t>(k);
}

/// Norm + normalization of the new basis vector.
[[nodiscard]] constexpr flop_count_t normalize_flops(local_index_t n) {
  return 3 * static_cast<flop_count_t>(n);
}

}  // namespace hpgmx
