// Geometric multigrid preconditioner (paper §2–§3): one V-cycle, forward
// Gauss–Seidel smoothing, injection restriction (fused with the residual on
// the optimized path), injection-transpose prolongation, re-discretized
// coarse operators, four levels by default.
//
// The precision-independent hierarchy (problems + injection maps +
// orderings) is built once; DistOperator<T> instantiations for double and
// float share it, exactly as the paper's GMRES-IR keeps a low-precision
// copy of the system matrix alongside the double one.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "base/aligned_vector.hpp"
#include "base/types.hpp"
#include "core/dist_operator.hpp"
#include "core/params.hpp"
#include "grid/problem.hpp"

namespace hpgmx {

/// Precision-independent multigrid hierarchy of one rank's subdomain.
struct ProblemHierarchy {
  /// levels[0] is the fine problem.
  std::vector<Problem> levels;
  /// c2f[l]: level-(l+1) coarse id → level-l fine id. size levels.size()-1.
  std::vector<AlignedVector<local_index_t>> c2f;
  /// Total nonzeros of level-l rows selected by c2f[l] (fused-restrict
  /// FLOP model input).
  std::vector<std::int64_t> nnz_coarse_rows;
  /// Orderings per level, shared by all precisions.
  std::vector<std::unique_ptr<OperatorStructure>> structures;
};

/// Build `max_levels` levels (fewer if local dims stop being even).
ProblemHierarchy build_hierarchy(Problem fine, int max_levels,
                                 std::uint64_t coloring_seed);

/// Largest |a_ij| across every level of the hierarchy — what a ScaleGuard
/// compares against the target format's overflow threshold before the
/// low-precision operators are demoted.
[[nodiscard]] inline double hierarchy_max_abs_value(
    const ProblemHierarchy& hierarchy) {
  double max_abs = 0.0;
  for (const Problem& lvl : hierarchy.levels) {
    for (const double v : lvl.a.values) {
      max_abs = std::max(max_abs, std::abs(v));
    }
  }
  return max_abs;
}

/// Multigrid preconditioner in precision T over a shared hierarchy.
template <typename T>
class Multigrid {
 public:
  /// `value_scale` demotes every level's matrix as α·A (ScaleGuard hook);
  /// the scalar commutes through Gauss–Seidel and injection exactly, so
  /// the V-cycle preconditions α·A as well as it preconditions A.
  Multigrid(const ProblemHierarchy& hierarchy, const BenchParams& params,
            int tag_base = 100, double value_scale = 1.0)
      : hierarchy_(&hierarchy), params_(params) {
    const int nl = static_cast<int>(hierarchy.levels.size());
    ops_.reserve(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
      ops_.emplace_back(hierarchy.levels[static_cast<std::size_t>(l)].a,
                        hierarchy.structures[static_cast<std::size_t>(l)].get(),
                        params.opt, tag_base + l, value_scale);
    }
    r_.resize(static_cast<std::size_t>(nl));
    z_.resize(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
      const auto len = static_cast<std::size_t>(
          ops_[static_cast<std::size_t>(l)].vec_len());
      r_[static_cast<std::size_t>(l)].assign(len, T(0));
      z_[static_cast<std::size_t>(l)].assign(len, T(0));
    }
  }

  [[nodiscard]] int num_levels() const { return static_cast<int>(ops_.size()); }
  [[nodiscard]] DistOperator<T>& level_op(int l) {
    return ops_[static_cast<std::size_t>(l)];
  }

  void set_stats(MotifStats* stats) {
    stats_ = stats;
    for (auto& op : ops_) {
      op.set_stats(stats);
    }
  }
  void set_event_sink(EventSink* sink) {
    for (auto& op : ops_) {
      op.set_event_sink(sink);
    }
  }

  /// Re-demote every level at the absolute scale (ScaleGuard backoff/regrow).
  void set_value_scale(double scale) {
    for (auto& op : ops_) {
      op.set_value_scale(scale);
    }
  }

  /// z ← M⁻¹ r: one V-cycle with zero initial guess on every level.
  /// r and z are fine-level owned-length (or longer) spans.
  void apply(Comm& comm, std::span<const T> r, std::span<T> z) {
    // Copy r into the level-0 buffer (the cycle needs halo-capable storage).
    auto& r0 = r_[0];
    for (local_index_t i = 0; i < ops_[0].num_owned(); ++i) {
      r0[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
    }
    cycle(comm, 0);
    for (local_index_t i = 0; i < ops_[0].num_owned(); ++i) {
      z[static_cast<std::size_t>(i)] = z_[0][static_cast<std::size_t>(i)];
    }
  }

 private:
  void cycle(Comm& comm, int l) {
    auto& op = ops_[static_cast<std::size_t>(l)];
    auto& r = r_[static_cast<std::size_t>(l)];
    auto& z = z_[static_cast<std::size_t>(l)];
    std::fill(z.begin(), z.end(), T(0));

    const bool coarsest = (l + 1 == num_levels());
    const int pre =
        coarsest ? params_.coarse_sweeps : params_.pre_smooth_sweeps;
    for (int s = 0; s < pre; ++s) {
      op.gs_forward(comm, std::span<const T>(r.data(), r.size()),
                    std::span<T>(z.data(), z.size()));
    }
    if (coarsest) {
      return;
    }

    auto& rc = r_[static_cast<std::size_t>(l + 1)];
    const auto& c2f = hierarchy_->c2f[static_cast<std::size_t>(l)];
    op.restrict_residual(
        comm, std::span<const T>(r.data(), r.size()),
        std::span<T>(z.data(), z.size()),
        std::span<const local_index_t>(c2f.data(), c2f.size()),
        hierarchy_->nnz_coarse_rows[static_cast<std::size_t>(l)],
        std::span<T>(rc.data(), rc.size()));

    cycle(comm, l + 1);

    {
      ScopedMotif sm(stats_, Motif::Prolong,
                     prolong_flops(static_cast<local_index_t>(c2f.size())));
      prolong_correct(std::span<const local_index_t>(c2f.data(), c2f.size()),
                      std::span<const T>(z_[static_cast<std::size_t>(l + 1)].data(),
                                         z_[static_cast<std::size_t>(l + 1)].size()),
                      std::span<T>(z.data(), z.size()));
    }

    for (int s = 0; s < params_.post_smooth_sweeps; ++s) {
      op.gs_forward(comm, std::span<const T>(r.data(), r.size()),
                    std::span<T>(z.data(), z.size()));
    }
  }

  const ProblemHierarchy* hierarchy_;
  BenchParams params_;
  std::vector<DistOperator<T>> ops_;
  std::vector<AlignedVector<T>> r_;
  std::vector<AlignedVector<T>> z_;
  MotifStats* stats_ = nullptr;
};

}  // namespace hpgmx
