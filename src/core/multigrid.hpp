// Geometric multigrid preconditioner (paper §2–§3): one V-cycle, forward
// Gauss–Seidel smoothing, injection restriction (fused with the residual on
// the optimized path), injection-transpose prolongation, re-discretized
// coarse operators, four levels by default.
//
// The precision-independent hierarchy (problems + injection maps +
// orderings) is built once; DistOperator<T> instantiations for double and
// float share it, exactly as the paper's GMRES-IR keeps a low-precision
// copy of the system matrix alongside the double one.
//
// Progressive precision: each level may store its operator, smoother state,
// and level vectors in its *own* format, driven by a PrecisionSchedule
// (e.g. fp32 fine level, bf16/fp16 coarse levels). Levels are held in a
// per-level variant; promotion/demotion happens inside the restriction and
// prolongation kernels (on their final stores), so crossing a precision
// boundary between levels adds no extra full-grid conversion pass. The
// empty schedule is the degenerate uniform case and reproduces the
// single-format V-cycle exactly.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "base/aligned_vector.hpp"
#include "base/types.hpp"
#include "core/bytes_model.hpp"
#include "core/dist_operator.hpp"
#include "core/params.hpp"
#include "grid/problem.hpp"
#include "precision/precision.hpp"
#include "precision/scale_guard.hpp"

namespace hpgmx {

/// Precision-independent multigrid hierarchy of one rank's subdomain.
struct ProblemHierarchy {
  /// levels[0] is the fine problem.
  std::vector<Problem> levels;
  /// c2f[l]: level-(l+1) coarse id → level-l fine id. size levels.size()-1.
  std::vector<AlignedVector<local_index_t>> c2f;
  /// Total nonzeros of level-l rows selected by c2f[l] (fused-restrict
  /// FLOP model input).
  std::vector<std::int64_t> nnz_coarse_rows;
  /// Orderings per level, shared by all precisions.
  std::vector<std::unique_ptr<OperatorStructure>> structures;
};

/// Build `max_levels` levels (fewer if local dims stop being even).
ProblemHierarchy build_hierarchy(Problem fine, int max_levels,
                                 std::uint64_t coloring_seed);

/// Largest |a_ij| of each level of the hierarchy — what the per-level
/// demotion scales of a precision-scheduled multigrid are chosen from.
/// Local to this rank's subdomain: multi-rank callers allreduce each entry
/// (ReduceOp::Max) before handing the vector to Multigrid, so every rank
/// picks identical power-of-two scales.
[[nodiscard]] inline std::vector<double> hierarchy_level_max_abs(
    const ProblemHierarchy& hierarchy) {
  std::vector<double> out;
  out.reserve(hierarchy.levels.size());
  for (const Problem& lvl : hierarchy.levels) {
    double max_abs = 0.0;
    for (const double v : lvl.a.values) {
      max_abs = std::max(max_abs, std::abs(v));
    }
    out.push_back(max_abs);
  }
  return out;
}

/// Largest |a_ij| across every level of the hierarchy — what a ScaleGuard
/// compares against the target format's overflow threshold before the
/// low-precision operators are demoted.
[[nodiscard]] inline double hierarchy_max_abs_value(
    const ProblemHierarchy& hierarchy) {
  double max_abs = 0.0;
  for (const double v : hierarchy_level_max_abs(hierarchy)) {
    max_abs = std::max(max_abs, v);
  }
  return max_abs;
}

/// The max|A| a ScaleGuard should be initialized against for a given
/// schedule. Uniform (empty schedule) runs demote every level at the
/// guard's single scale, so the guard must see the whole hierarchy's
/// maximum. Scheduled runs anchor the guard at the *fine* level only:
/// each coarser level carries its own equilibration relative to the fine
/// one (Multigrid's level_scale), so folding a coarse level's larger
/// maximum into the guard as well would scale that level twice.
[[nodiscard]] inline double guard_reference_max_abs(
    std::span<const double> level_max_abs, const PrecisionSchedule& schedule) {
  HPGMX_CHECK(!level_max_abs.empty());
  if (schedule.empty()) {
    double max_abs = 0.0;
    for (const double v : level_max_abs) {
      max_abs = std::max(max_abs, v);
    }
    return max_abs;
  }
  return level_max_abs[0];
}

/// Streaming dimensions of every hierarchy level, feeding the per-level
/// V-cycle traffic model (mg_vcycle_bytes in core/bytes_model.hpp).
[[nodiscard]] inline std::vector<MgLevelDims> hierarchy_level_dims(
    const ProblemHierarchy& hierarchy) {
  std::vector<MgLevelDims> dims(hierarchy.levels.size());
  for (std::size_t l = 0; l < hierarchy.levels.size(); ++l) {
    dims[l].nnz = hierarchy.levels[l].a.nnz();
    dims[l].rows = hierarchy.levels[l].a.num_rows;
    if (l + 1 < hierarchy.levels.size()) {
      dims[l].nnz_coarse_rows = hierarchy.nnz_coarse_rows[l];
      dims[l].coarse_rows = hierarchy.levels[l + 1].a.num_rows;
    }
  }
  return dims;
}

/// Per-level stored-value widths for a schedule over `num_levels` levels
/// (uniform `fallback` when the schedule is empty) — the bytes half of the
/// V-cycle traffic model.
[[nodiscard]] inline std::vector<std::size_t> schedule_value_bytes(
    const PrecisionSchedule& schedule, int num_levels, Precision fallback) {
  std::vector<std::size_t> out(static_cast<std::size_t>(num_levels));
  for (int l = 0; l < num_levels; ++l) {
    out[static_cast<std::size_t>(l)] =
        precision_bytes(schedule.empty() ? fallback : schedule.at(l));
  }
  return out;
}

/// Multigrid preconditioner over a shared hierarchy. `TFine` is the fine
/// (entry) level's precision — the format the attached solver exchanges
/// vectors in; coarser levels follow the PrecisionSchedule (uniform TFine
/// when the schedule is empty).
template <typename TFine>
class Multigrid {
 public:
  /// `value_scale` demotes every level's matrix as α·A (ScaleGuard hook);
  /// the scalar commutes through Gauss–Seidel and injection exactly, so
  /// the V-cycle preconditions α·A as well as it preconditions A.
  ///
  /// `schedule` selects one storage format per level ({} = uniform TFine;
  /// its entry must match TFine, and shorter schedules extend with their
  /// last entry). Scheduled narrow-format levels get an *additional*
  /// per-level power-of-two equilibration scale on top of `value_scale`,
  /// chosen from `level_max_abs` (global per-level max|A|; multi-rank
  /// callers must pass values already allreduced with ReduceOp::Max so
  /// every rank demotes identically — when empty, they are computed from
  /// the local hierarchy, which is exact on one rank). Prolongation
  /// compensates the scale mismatch between adjacent levels, so the
  /// V-cycle still preconditions value_scale·A.
  Multigrid(const ProblemHierarchy& hierarchy, const BenchParams& params,
            int tag_base = 100, double value_scale = 1.0,
            PrecisionSchedule schedule = {},
            std::span<const double> level_max_abs = {})
      : hierarchy_(&hierarchy), params_(params) {
    const int nl = static_cast<int>(hierarchy.levels.size());
    if (!schedule.empty()) {
      HPGMX_CHECK_MSG(
          schedule.entry() == precision_of_v<TFine>,
          "precision schedule '"
              << schedule.to_string() << "' enters at "
              << precision_name(schedule.entry())
              << " but the multigrid is instantiated for "
              << precision_name(precision_of_v<TFine>)
              << " — dispatch the solver on the schedule's entry format");
    }
    std::vector<double> local_max_abs;
    if (!schedule.empty() && level_max_abs.empty()) {
      local_max_abs = hierarchy_level_max_abs(hierarchy);
      level_max_abs = std::span<const double>(local_max_abs);
    }
    level_scale_.assign(static_cast<std::size_t>(nl), 1.0);
    if (!schedule.empty()) {
      HPGMX_CHECK(static_cast<int>(level_max_abs.size()) >= nl);
      for (int l = 0; l < nl; ++l) {
        dispatch_precision(schedule.at(l), [&](auto tag) {
          using TL = typename decltype(tag)::type;
          level_scale_[static_cast<std::size_t>(l)] = equilibration_scale(
              level_max_abs[static_cast<std::size_t>(l)],
              PrecisionTraits<TL>::max_finite);
        });
      }
      // Normalize so the entry level demotes at exactly `value_scale`, the
      // contract GmresIr's ScaleGuard compensation (x += ρ·α·z) relies on;
      // coarser levels keep only their *relative* equilibration.
      const double entry_scale = level_scale_[0];
      for (double& s : level_scale_) {
        s /= entry_scale;
      }
    }
    levels_.reserve(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
      const Precision pl =
          schedule.empty() ? precision_of_v<TFine> : schedule.at(l);
      dispatch_precision(pl, [&](auto tag) {
        using TL = typename decltype(tag)::type;
        MgLevel<TL> lvl{
            DistOperator<TL>(
                hierarchy.levels[static_cast<std::size_t>(l)].a,
                hierarchy.structures[static_cast<std::size_t>(l)].get(),
                params.opt, tag_base + l,
                value_scale * level_scale_[static_cast<std::size_t>(l)],
                params.index_width),
            {},
            {}};
        lvl.op.set_overlap(params.overlap);
        const auto len = static_cast<std::size_t>(lvl.op.vec_len());
        lvl.r.assign(len, TL(0));
        lvl.z.assign(len, TL(0));
        levels_.emplace_back(std::move(lvl));
      });
    }
  }

  [[nodiscard]] int num_levels() const {
    return static_cast<int>(levels_.size());
  }

  /// Storage format of level `l` (schedule entry, or TFine when uniform).
  [[nodiscard]] Precision level_precision(int l) const {
    return std::visit(
        [](const auto& lvl) {
          using TL = typename std::decay_t<decltype(lvl)>::value_type;
          return precision_of_v<TL>;
        },
        levels_[static_cast<std::size_t>(l)]);
  }

  /// Per-level equilibration scale α_l (1.0 on every uniform path).
  [[nodiscard]] double level_scale(int l) const {
    return level_scale_[static_cast<std::size_t>(l)];
  }

  /// The level-l operator, typed as the fine format. Valid whenever level
  /// l's scheduled format *is* TFine (always true for uniform schedules —
  /// the degenerate case every pre-schedule caller lives in).
  [[nodiscard]] DistOperator<TFine>& level_op(int l) {
    auto* lvl =
        std::get_if<MgLevel<TFine>>(&levels_[static_cast<std::size_t>(l)]);
    HPGMX_CHECK_MSG(lvl != nullptr,
                    "level " << l << " is scheduled as "
                             << precision_name(level_precision(l)) << ", not "
                             << precision_name(precision_of_v<TFine>));
    return lvl->op;
  }

  void set_stats(MotifStats* stats) {
    stats_ = stats;
    for (auto& level : levels_) {
      std::visit([&](auto& lvl) { lvl.op.set_stats(stats); }, level);
    }
  }
  void set_event_sink(EventSink* sink) {
    for (auto& level : levels_) {
      std::visit([&](auto& lvl) { lvl.op.set_event_sink(sink); }, level);
    }
  }

  /// Attach/detach the SDC monitor on every level's halo exchange.
  void set_sdc_monitor(SdcMonitor* monitor) {
    for (auto& level : levels_) {
      std::visit([&](auto& lvl) { lvl.op.set_sdc_monitor(monitor); }, level);
    }
  }

  /// Re-demote every level from its pristine double source at its current
  /// scale — the SDC-rollback repair for possibly corrupted values.
  void redemote() {
    for (auto& level : levels_) {
      std::visit([&](auto& lvl) { lvl.op.redemote(); }, level);
    }
  }

  /// Re-demote every level at the absolute scale (ScaleGuard backoff/regrow).
  /// Scheduled levels compose the guard's global scale with their fixed
  /// per-level equilibration.
  void set_value_scale(double scale) {
    for (int l = 0; l < num_levels(); ++l) {
      std::visit(
          [&](auto& lvl) {
            lvl.op.set_value_scale(scale *
                                   level_scale_[static_cast<std::size_t>(l)]);
          },
          levels_[static_cast<std::size_t>(l)]);
    }
  }

  /// z ← M⁻¹ r: one V-cycle with zero initial guess on every level.
  /// r and z are fine-level owned-length (or longer) spans.
  void apply(Comm& comm, std::span<const TFine> r, std::span<TFine> z) {
    // Copy r into the level-0 buffer (the cycle needs halo-capable storage).
    auto& l0 = std::get<MgLevel<TFine>>(levels_[0]);
    const auto owned = static_cast<std::size_t>(l0.op.num_owned());
    for (std::size_t i = 0; i < owned; ++i) {
      l0.r[i] = r[i];
    }
    cycle(comm, 0);
    for (std::size_t i = 0; i < owned; ++i) {
      z[i] = l0.z[i];
    }
  }

 private:
  /// One level's typed state: operator plus residual/correction buffers in
  /// the level's own storage format.
  template <typename T>
  struct MgLevel {
    using value_type = T;
    DistOperator<T> op;
    AlignedVector<T> r;
    AlignedVector<T> z;
  };
  using LevelVariant = std::variant<MgLevel<double>, MgLevel<float>,
                                    MgLevel<bf16_t>, MgLevel<fp16_t>>;

  void cycle(Comm& comm, int l) {
    const bool coarsest = (l + 1 == num_levels());
    auto& level = levels_[static_cast<std::size_t>(l)];

    std::visit(
        [&](auto& lvl) {
          using TL = typename std::decay_t<decltype(lvl)>::value_type;
          std::fill(lvl.z.begin(), lvl.z.end(), TL(0));
          const int pre =
              coarsest ? params_.coarse_sweeps : params_.pre_smooth_sweeps;
          for (int s = 0; s < pre; ++s) {
            lvl.op.gs_forward(
                comm, std::span<const TL>(lvl.r.data(), lvl.r.size()),
                std::span<TL>(lvl.z.data(), lvl.z.size()));
          }
        },
        level);
    if (coarsest) {
      return;
    }

    auto& coarse = levels_[static_cast<std::size_t>(l + 1)];
    const auto& c2f = hierarchy_->c2f[static_cast<std::size_t>(l)];
    const std::span<const local_index_t> c2f_span(c2f.data(), c2f.size());

    // Restriction demotes/promotes into the coarse level's format on the
    // kernel's final store — no separate conversion sweep.
    std::visit(
        [&](auto& lvl, auto& clvl) {
          using TL = typename std::decay_t<decltype(lvl)>::value_type;
          using TC = typename std::decay_t<decltype(clvl)>::value_type;
          lvl.op.restrict_residual(
              comm, std::span<const TL>(lvl.r.data(), lvl.r.size()),
              std::span<TL>(lvl.z.data(), lvl.z.size()), c2f_span,
              hierarchy_->nnz_coarse_rows[static_cast<std::size_t>(l)],
              std::span<TC>(clvl.r.data(), clvl.r.size()));
        },
        level, coarse);

    cycle(comm, l + 1);

    // The coarse level solved (α_{l+1}/α_l)-rescaled equations relative to
    // this one; prolongation compensates while it promotes the correction.
    const double alpha = level_scale_[static_cast<std::size_t>(l + 1)] /
                         level_scale_[static_cast<std::size_t>(l)];
    std::visit(
        [&](auto& lvl, auto& clvl) {
          using TL = typename std::decay_t<decltype(lvl)>::value_type;
          using TC = typename std::decay_t<decltype(clvl)>::value_type;
          ScopedMotif sm(stats_, Motif::Prolong,
                         prolong_flops(static_cast<local_index_t>(c2f.size())));
          prolong_correct(c2f_span,
                          std::span<const TC>(clvl.z.data(), clvl.z.size()),
                          std::span<TL>(lvl.z.data(), lvl.z.size()), alpha);
        },
        level, coarse);

    std::visit(
        [&](auto& lvl) {
          using TL = typename std::decay_t<decltype(lvl)>::value_type;
          for (int s = 0; s < params_.post_smooth_sweeps; ++s) {
            lvl.op.gs_forward(
                comm, std::span<const TL>(lvl.r.data(), lvl.r.size()),
                std::span<TL>(lvl.z.data(), lvl.z.size()));
          }
        },
        level);
  }

  const ProblemHierarchy* hierarchy_;
  BenchParams params_;
  std::vector<LevelVariant> levels_;
  std::vector<double> level_scale_;
  MotifStats* stats_ = nullptr;
};

}  // namespace hpgmx
