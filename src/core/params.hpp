// Benchmark parameters (paper Table 1) with laptop-scale defaults and
// HPGMX_* environment overrides so the same binaries scale from CI to a
// large host.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

#include "base/error.hpp"
#include "base/options.hpp"
#include "base/types.hpp"
#include "comm/comm_world.hpp"
#include "grid/scenario.hpp"
#include "precision/adaptive_controller.hpp"
#include "precision/precision.hpp"

namespace hpgmx {

/// Which implementation path to run (paper §3.1 vs §3.2).
enum class OptLevel {
  Reference,  ///< CSR, level-scheduled two-kernel GS, unfused restrict, no overlap
  Optimized,  ///< ELL, one-sweep multicolor GS, fused restrict, overlap
};

[[nodiscard]] constexpr const char* opt_level_name(OptLevel o) {
  return o == OptLevel::Reference ? "reference" : "optimized";
}

[[nodiscard]] inline std::optional<OptLevel> parse_opt_level(
    std::string_view s) {
  if (s == "reference" || s == "ref") {
    return OptLevel::Reference;
  }
  if (s == "optimized" || s == "opt") {
    return OptLevel::Optimized;
  }
  return std::nullopt;
}

/// Parse the HPGMX_IDX tokens: "auto", "16"/"idx16", "32"/"idx32".
[[nodiscard]] inline std::optional<IndexWidth> parse_index_width(
    std::string_view s) {
  if (s == "auto") {
    return IndexWidth::Auto;
  }
  if (s == "16" || s == "idx16") {
    return IndexWidth::Idx16;
  }
  if (s == "32" || s == "idx32") {
    return IndexWidth::Idx32;
  }
  return std::nullopt;
}

/// Run-time parameters of the benchmark (paper Table 1 values in comments).
struct BenchParams {
  // Local (per-rank) grid. Paper: 320^3 per GCD; default here is sized for
  // a single-core CI host. Must be divisible by 2^(mg_levels-1).
  local_index_t nx = 32;
  local_index_t ny = 32;
  local_index_t nz = 32;

  int restart_length = 30;          ///< Table 1: 30
  int max_iters_per_solve = 300;    ///< Table 1: 300
  int mg_levels = 4;                ///< HPCG/HPG-MxP: 4
  int pre_smooth_sweeps = 1;        ///< forward GS sweeps before restriction
  int post_smooth_sweeps = 1;       ///< sweeps after prolongation
  int coarse_sweeps = 1;            ///< sweeps on the coarsest level

  double validation_tol = 1e-9;     ///< Table 1: relative tolerance 1e-9
  int validation_max_iters = 10000; ///< §3.3: fullscale iteration cap
  int validation_ranks = 8;         ///< Table 1: GCDs used for validation

  double bench_seconds = 2.0;       ///< Table 1: 1800/900 s; CI-sized default
  double gamma = 0.0;               ///< nonsymmetry (0 = benchmark default)
  std::uint64_t coloring_seed = 42; ///< JPL weight seed

  /// Coefficient scenario the problem generator assembles
  /// (HPGMX_SCENARIO=poisson|convdiff|aniso|jump|stretched plus per-shape
  /// knobs — see grid/scenario.hpp). Default reproduces the paper matrix.
  ScenarioSpec scenario;

  OptLevel opt = OptLevel::Optimized;

  /// SPMD backend the driver launches ranks on (HPGMX_COMM=self|thread|mpi).
  /// Thread is the historical in-process default; mpi requires a build with
  /// HPGMX_WITH_MPI=ON and takes its rank count from mpirun. Results are
  /// bit-identical across backends at a fixed rank count (all three honor
  /// the rank-ordered allreduce contract).
  CommBackend comm_backend = CommBackend::Thread;

  /// Overlap the halo exchange with interior-row compute on the optimized
  /// path (paper §3.2.3). Off runs the blocking exchange followed by the
  /// same kernels over the same row lists in the same order, so the toggle
  /// moves only wall time, never a bit (HPGMX_OVERLAP=0 for the ablation).
  bool overlap = true;

  /// Coalesce independent per-scalar solver allreduces into multi-double
  /// reductions (CG's ‖r‖²+⟨r,z⟩ pair, GMRES-IR's candidate-residual+
  /// finite-vote pair). The elementwise rank-ordered allreduce makes every
  /// packed entry bit-identical to its stand-alone reduction, so this
  /// changes message count, not iterates (HPGMX_BATCH_REDUCE=0 to disable).
  bool batched_reduce = true;

  /// Column-index width of the optimized ELL format (HPGMX_IDX=auto|16|32).
  /// Auto stores 16-bit delta indices whenever the local column window fits
  /// ±32767 and falls back to 32-bit otherwise; 32 pins the uncompressed
  /// layout for ablations. Bit-identical either way — only bytes move.
  IndexWidth index_width = IndexWidth::Auto;

  /// Single-pass fused solver kernels (spmv_dot / waxpby_norm /
  /// residual_norm2). Disabling runs the bit-identical unfused sequences —
  /// same iterates, one extra memory sweep per reduction (HPGMX_FUSED=0).
  bool fused = true;

  /// Storage precision of the inner GMRES-IR cycles (the paper's fp32
  /// column by default; bf16/fp16 open the sub-32-bit territory). When a
  /// non-empty `precision_schedule` is set this always equals its entry
  /// (fine-level) format — the type the solver stack dispatches on.
  Precision inner_precision = Precision::Fp32;

  /// Per-multigrid-level storage formats for the inner solver (progressive
  /// precision, e.g. fp32,bf16,bf16,fp16). Empty = uniform inner_precision
  /// on every level (the degenerate single-format case).
  PrecisionSchedule precision_schedule;

  /// Adaptive precision control (HPGMX_ADAPTIVE* — see
  /// precision/adaptive_controller.hpp). When enabled, solvers routed
  /// through AdaptiveGmresIr ignore the static inner_precision/schedule and
  /// climb the configured ladder on measured stagnation; off (default) runs
  /// the static configuration bit-identically.
  AdaptiveConfig adaptive;

  /// Install `s` as the precision schedule, keeping inner_precision in sync
  /// with the schedule's entry format (empty schedule leaves it unchanged).
  void set_precision_schedule(PrecisionSchedule s) {
    precision_schedule = std::move(s);
    if (!precision_schedule.empty()) {
      inner_precision = precision_schedule.entry();
    }
  }

  /// Apply HPGMX_NX/NY/NZ, HPGMX_RESTART, HPGMX_MAXITERS, HPGMX_BENCH_SECONDS,
  /// HPGMX_GAMMA, HPGMX_MG_LEVELS, HPGMX_PRECISION (fp64|fp32|bf16|fp16),
  /// HPGMX_PRECISION_SCHEDULE (comma-separated per-level formats, e.g.
  /// fp32,bf16,bf16 — overrides HPGMX_PRECISION with its entry format),
  /// HPGMX_OPT (reference|optimized), HPGMX_IDX (auto|16|32),
  /// HPGMX_COMM (self|thread|mpi), HPGMX_OVERLAP (0|1),
  /// HPGMX_BATCH_REDUCE (0|1), HPGMX_SCENARIO (+ shape knobs) and
  /// HPGMX_ADAPTIVE (+ _THRESHOLD/_PATIENCE/_LADDER/_START)
  /// environment overrides.
  static BenchParams from_env() {
    BenchParams p;
    p.scenario = ScenarioSpec::from_env();
    p.nx = static_cast<local_index_t>(env_int_or("HPGMX_NX", p.nx));
    p.ny = static_cast<local_index_t>(env_int_or("HPGMX_NY", p.ny));
    p.nz = static_cast<local_index_t>(env_int_or("HPGMX_NZ", p.nz));
    p.restart_length =
        static_cast<int>(env_int_or("HPGMX_RESTART", p.restart_length));
    p.max_iters_per_solve =
        static_cast<int>(env_int_or("HPGMX_MAXITERS", p.max_iters_per_solve));
    p.mg_levels = static_cast<int>(env_int_or("HPGMX_MG_LEVELS", p.mg_levels));
    p.bench_seconds = env_double_or("HPGMX_BENCH_SECONDS", p.bench_seconds);
    p.gamma = env_double_or("HPGMX_GAMMA", p.gamma);
    p.fused = env_int_or("HPGMX_FUSED", p.fused ? 1 : 0) != 0;
    p.inner_precision = precision_from_env("HPGMX_PRECISION", p.inner_precision);
    p.set_precision_schedule(schedule_from_env("HPGMX_PRECISION_SCHEDULE"));
    p.adaptive = AdaptiveConfig::from_env();
    if (const auto opt = env_string("HPGMX_OPT"); opt.has_value()) {
      const auto parsed = parse_opt_level(*opt);
      HPGMX_CHECK_MSG(parsed.has_value(),
                      "HPGMX_OPT='" << *opt
                                    << "' is not a path (reference|optimized)");
      p.opt = *parsed;
    }
    if (const auto idx = env_string("HPGMX_IDX"); idx.has_value()) {
      const auto parsed = parse_index_width(*idx);
      HPGMX_CHECK_MSG(parsed.has_value(),
                      "HPGMX_IDX='" << *idx
                                    << "' is not an index width (auto|16|32)");
      p.index_width = *parsed;
    }
    if (const auto comm = env_string("HPGMX_COMM"); comm.has_value()) {
      const auto parsed = parse_comm_backend(*comm);
      HPGMX_CHECK_MSG(parsed.has_value(),
                      "HPGMX_COMM='" << *comm
                                     << "' is not a backend (self|thread|mpi)");
      p.comm_backend = *parsed;
    }
    p.overlap = env_int_or("HPGMX_OVERLAP", p.overlap ? 1 : 0) != 0;
    p.batched_reduce =
        env_int_or("HPGMX_BATCH_REDUCE", p.batched_reduce ? 1 : 0) != 0;
    return p;
  }
};

}  // namespace hpgmx
