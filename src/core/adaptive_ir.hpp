// Adaptive-precision GMRES-IR driver: GmresIr re-entered across precision
// promotions.
//
// GmresIr<TLow> is compiled for one storage format; a promotion decision by
// the PrecisionController therefore cannot be acted on inside a solve — the
// solver stops with SolveResult::switch_requested and a warm iterate, and
// something has to rebuild the low-precision stack (ScaleGuard + demoted
// Multigrid hierarchy) at the promoted format and re-enter. AdaptiveGmresIr
// is that something: it owns the controller, the format-independent double
// operator, and the current rung's stack, and splices the per-format solve
// segments into one SolveResult indistinguishable from a single solve
// (monotone history, cumulative Arnoldi count, final true residual).
//
// With the controller disabled (HPGMX_ADAPTIVE=off) the driver builds the
// exact static stack SolverService builds — same guard reference, same
// (possibly empty) schedule — and attaches only a passive recorder, so the
// iteration is bit-identical to the plain GmresIr path while still
// reporting the realized per-cycle formats (ServiceResult's
// realized_precisions and the exhibits' byte accounting).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "blas/multivector.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres.hpp"
#include "core/multigrid.hpp"
#include "core/params.hpp"
#include "precision/adaptive_controller.hpp"

namespace hpgmx {

class AdaptiveGmresIr {
 public:
  /// `hierarchy` must outlive the driver (params are copied). `level_max`
  /// is the per-level max|A| the demotion scales are chosen from — pass the
  /// globally reduced vector on multi-rank worlds (OperatorCache entries
  /// carry it); empty computes this rank's local maxima, which is exact on
  /// a single-rank world.
  AdaptiveGmresIr(const ProblemHierarchy& hierarchy, const BenchParams& params,
                  SolverOptions opts, std::span<const double> level_max = {});
  ~AdaptiveGmresIr();

  AdaptiveGmresIr(const AdaptiveGmresIr&) = delete;
  AdaptiveGmresIr& operator=(const AdaptiveGmresIr&) = delete;

  /// One right-hand side: GmresIr::solve re-entered across promotions
  /// under one shared iteration budget (opts.max_iters total Arnoldi
  /// steps). The returned result never carries switch_requested — every
  /// requested switch was serviced internally.
  SolveResult solve(Comm& comm, std::span<const double> b,
                    std::span<double> x);

  /// Column-sequential batch, like GmresIr::solve_many. The controller's
  /// rung persists across columns (promotion is knowledge about the
  /// operator); its contraction baseline resets per column.
  std::vector<SolveResult> solve_many(Comm& comm, const MultiVector<double>& b,
                                      MultiVector<double>& x);

  /// The controller (rung trajectory, per-cycle records, promotions).
  [[nodiscard]] const PrecisionController& controller() const { return ctrl_; }

  /// Attach the per-rank SDC monitor / fault injector; forwarded into every
  /// rung's GmresIr stack (survives promotions — Stack::run re-attaches).
  void set_sdc(SdcMonitor* monitor) { monitor_ = monitor; }
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Modeled main-memory bytes of every inner cycle executed so far: each
  /// CycleRecord charged ir_inner_iteration_bytes at the schedule its rung
  /// actually ran (per-level value widths + the runtime ELL index widths).
  /// This is the quantity exp_adaptive gates against the static schedules.
  [[nodiscard]] double realized_bytes() const;

 private:
  /// Type-erased low-precision stack of one rung: ScaleGuard + demoted
  /// Multigrid, rebuilt only when the controller changes rung.
  struct StackBase {
    virtual ~StackBase() = default;
    virtual SolveResult run(Comm& comm, std::span<const double> b,
                            std::span<double> x, const SolverOptions& opts,
                            SdcMonitor* monitor, FaultInjector* injector) = 0;
  };
  template <typename TLow>
  struct Stack;

  /// Schedule the current stack must be built from (the rung schedule when
  /// adaptive, the configured static schedule — possibly empty — when not).
  [[nodiscard]] PrecisionSchedule stack_schedule() const;
  void ensure_stack();

  const ProblemHierarchy& hierarchy_;
  BenchParams params_;
  SolverOptions opts_;
  std::vector<double> level_max_;
  std::vector<MgLevelDims> dims_;
  std::vector<std::size_t> index_bytes_;
  PrecisionController ctrl_;
  DistOperator<double> a_high_;
  std::unique_ptr<StackBase> stack_;
  int stack_rung_ = -1;
  SdcMonitor* monitor_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace hpgmx
