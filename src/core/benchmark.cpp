#include "core/benchmark.hpp"

#include <algorithm>
#include <array>
#include <iomanip>
#include <sstream>

#include "base/timer.hpp"
#include "comm/comm_world.hpp"
#include "grid/process_grid.hpp"

namespace hpgmx {

std::string BenchReport::to_string() const {
  std::ostringstream os;
  os << "=== HPG-MxP report ===\n";
  os << "ranks: " << ranks << "  local grid: " << params.nx << "x" << params.ny
     << "x" << params.nz << "  restart: " << params.restart_length
     << "  path: " << opt_level_name(params.opt)
     << "  inner: " << precision_name(params.inner_precision);
  if (!params.precision_schedule.empty()) {
    os << "  schedule: " << params.precision_schedule.to_string();
  }
  os << "\n";
  os << "validation: n_d=" << validation.n_d << " n_ir=" << validation.n_ir
     << " ratio=" << std::fixed << std::setprecision(3) << validation.ratio()
     << " penalty=" << validation.penalty() << "\n";
  const auto phase = [&os](const PhaseResult& p) {
    os << std::left << std::setw(8) << p.label << " solves=" << p.solves
       << " iters=" << p.iterations << " wall=" << std::setprecision(3)
       << p.wall_seconds << "s raw=" << std::setprecision(2) << p.raw_gflops
       << " GF/s relres=" << std::scientific << std::setprecision(2)
       << p.final_relres << std::fixed << "\n";
    for (int m = 0; m < kNumMotifs; ++m) {
      const Motif motif = static_cast<Motif>(m);
      os << "   " << std::left << std::setw(8) << motif_name(motif)
         << std::right << std::setw(9) << std::setprecision(3)
         << p.stats.seconds(motif) << " s " << std::setw(9)
         << std::setprecision(2) << p.stats.gflops(motif) << " GF/s\n";
    }
  };
  phase(mxp);
  phase(dbl);
  os << "penalized mxp: " << std::setprecision(2) << penalized_gflops()
     << " GF/s   speedup vs double: " << std::setprecision(3) << speedup()
     << "x\n";
  return os.str();
}

BenchmarkDriver::BenchmarkDriver(BenchParams params, int num_ranks)
    : params_(params), num_ranks_(num_ranks) {
  HPGMX_CHECK(num_ranks >= 1);
  world_ = make_comm_world(params_.comm_backend, num_ranks_);
  hierarchy_ = build_hierarchies(*world_);
}

BenchmarkDriver::~BenchmarkDriver() = default;

std::vector<ProblemHierarchy> BenchmarkDriver::build_hierarchies(
    const CommWorld& world) const {
  const ProcessGrid pgrid = ProcessGrid::create(world.size());
  std::vector<ProblemHierarchy> out(
      static_cast<std::size_t>(world.local_count()));
  ProblemParams pp;
  pp.nx = params_.nx;
  pp.ny = params_.ny;
  pp.nz = params_.nz;
  pp.gamma = params_.gamma;
  pp.scenario = params_.scenario;
  // Generation is pure per-rank work, built only for the ranks this process
  // hosts (all of them in-process, one under MPI); build serially (rank
  // threads would contend for the same cores anyway).
  for (int s = 0; s < world.local_count(); ++s) {
    out[static_cast<std::size_t>(s)] =
        build_hierarchy(generate_problem(pgrid, world.local_rank(s), pp),
                        params_.mg_levels, params_.coloring_seed);
  }
  return out;
}

std::pair<CommWorld*, const std::vector<ProblemHierarchy>*>
BenchmarkDriver::context_for(int ranks) {
  if (ranks == num_ranks_) {
    return {world_.get(), &hierarchy_};
  }
  if (validation_ranks_ != ranks) {
    validation_world_ = make_comm_world(CommBackend::Thread, ranks);
    validation_hierarchy_ = build_hierarchies(*validation_world_);
    validation_ranks_ = ranks;
  }
  return {validation_world_.get(), &validation_hierarchy_};
}

ValidationResult BenchmarkDriver::run_validation(ValidationMode mode) {
  ValidationResult v;
  v.mode = mode;
  v.ranks = (mode == ValidationMode::Standard)
                ? std::min(params_.validation_ranks, num_ranks_)
                : num_ranks_;
  if (params_.comm_backend == CommBackend::Mpi) {
    // An mpirun launch cannot idle a subset of its processes outside the
    // SPMD region (they would hang in the collectives), so MPI validation
    // always runs on the full world.
    v.ranks = num_ranks_;
  }
  auto [world, hier_ptr] = context_for(v.ranks);
  const auto& hier = *hier_ptr;

  SolverOptions val_opts;
  val_opts.restart = params_.restart_length;
  val_opts.max_iters = params_.validation_max_iters;
  val_opts.tol = params_.validation_tol;
  val_opts.fused_passes = params_.fused;
  val_opts.batched_reductions = params_.batched_reduce;

  // Pass 1: double-precision GMRES from a zero guess. The result depends
  // only on the problem and rank count (not on inner_precision), so it is
  // cached across the run_validation calls of a precision sweep.
  if (validation_double_ranks_ != v.ranks) {
    std::vector<SolveResult> d_results(
        static_cast<std::size_t>(world->local_count()));
    world->execute([&](Comm& comm) {
      const auto slot = static_cast<std::size_t>(world->slot_of(comm.rank()));
      const auto& h = hier[slot];
      Multigrid<double> mg(h, params_);
      Gmres<double> solver(&mg.level_op(0), &mg, val_opts);
      AlignedVector<double> x(h.levels[0].b.size(), 0.0);
      d_results[slot] = solver.solve(
          comm,
          std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
          std::span<double>(x.data(), x.size()));
    });
    // Iteration counts and convergence are rank-uniform (every decision is
    // allreduce-derived), so the first local slot speaks for the world.
    validation_double_result_ = d_results[0];
    validation_double_ranks_ = v.ranks;
  }
  v.n_d = validation_double_result_.iterations;
  v.d_converged = validation_double_result_.converged();
  // §3.3 fullscale: if the cap was hit first, the achieved residual becomes
  // the target GMRES-IR must match; standard keeps 1e-9.
  v.achieved_tol = (mode == ValidationMode::FullScale && !v.d_converged)
                       ? validation_double_result_.relative_residual
                       : params_.validation_tol;

  // Pass 2: GMRES-IR (at the configured inner storage precision) to the
  // same target, zero guess again.
  SolverOptions ir_opts = val_opts;
  // A hair of slack: "converged until the same relative residual norm is
  // achieved" must not fail on the last fractional digit of the recorded
  // target.
  ir_opts.tol = v.achieved_tol * (1.0 + 1e-12);
  if (mode == ValidationMode::FullScale) {
    // §3.3: the iteration cap bounds the *double* run (its achieved residual
    // becomes the target); GMRES-IR then runs "until the same relative
    // residual norm is achieved". Give it headroom beyond n_d so the ratio
    // can be measured even when mixed precision converges slower.
    ir_opts.max_iters = std::max(params_.validation_max_iters, 4 * v.n_d);
  }
  std::vector<SolveResult> ir_results(
      static_cast<std::size_t>(world->local_count()));
  dispatch_precision(params_.inner_precision, [&](auto tag) {
    using TLow = typename decltype(tag)::type;
    world->execute([&](Comm& comm) {
      const auto slot = static_cast<std::size_t>(world->slot_of(comm.rank()));
      const auto& h = hier[slot];
      ScaleGuard guard;
      // Global per-level maxima so every rank demotes with the same
      // power-of-two scales (both the guard's α and the schedule's
      // per-level equilibration).
      const std::vector<double> lvl_max_local = hierarchy_level_max_abs(h);
      std::vector<double> lvl_max(lvl_max_local.size());
      comm.allreduce(std::span<const double>(lvl_max_local.data(),
                                             lvl_max_local.size()),
                     std::span<double>(lvl_max.data(), lvl_max.size()),
                     ReduceOp::Max);
      guard.initialize(
          guard_reference_max_abs(
              std::span<const double>(lvl_max.data(), lvl_max.size()),
              params_.precision_schedule),
          PrecisionTraits<TLow>::max_finite);
      Multigrid<TLow> mg_low(h, params_, /*tag_base=*/100, guard.scale(),
                             params_.precision_schedule,
                             std::span<const double>(lvl_max.data(),
                                                     lvl_max.size()));
      DistOperator<double> a_d(h.levels[0].a, h.structures[0].get(),
                               params_.opt, /*tag=*/90, /*value_scale=*/1.0,
                               params_.index_width);
      a_d.set_overlap(params_.overlap);
      GmresIr<TLow> solver(&a_d, &mg_low.level_op(0), &mg_low, ir_opts);
      solver.set_scale_guard(&guard);
      AlignedVector<double> x(h.levels[0].b.size(), 0.0);
      ir_results[slot] = solver.solve(
          comm,
          std::span<const double>(h.levels[0].b.data(), h.levels[0].b.size()),
          std::span<double>(x.data(), x.size()));
    });
  });
  v.n_ir = ir_results[0].iterations;
  v.ir_converged = ir_results[0].converged();
  return v;
}

PhaseResult BenchmarkDriver::run_phase(bool mixed) {
  if (!mixed) {
    return run_phase_impl<float>(false);  // TLow unused on the double path
  }
  return dispatch_precision(params_.inner_precision, [&](auto tag) {
    return run_phase_impl<typename decltype(tag)::type>(true);
  });
}

template <typename TLow>
PhaseResult BenchmarkDriver::run_phase_impl(bool mixed) {
  PhaseResult phase;
  phase.label = mixed ? "mxp" : "double";
  const auto& hier = hierarchy_;
  CommWorld& world = *world_;
  const auto local = static_cast<std::size_t>(world.local_count());

  SolverOptions opts;
  opts.restart = params_.restart_length;
  opts.max_iters = params_.max_iters_per_solve;
  opts.tol = 0.0;  // benchmark phases run a fixed iteration count
  opts.fused_passes = params_.fused;
  opts.batched_reductions = params_.batched_reduce;

  std::vector<MotifStats> rank_stats(local);
  std::vector<double> rank_wall(local, 0.0);
  std::vector<double> rank_relres(local, 0.0);
  std::vector<int> rank_iters(local, 0);
  std::vector<int> rank_solves(local, 0);

  world.execute([&](Comm& comm) {
    const auto slot = static_cast<std::size_t>(world.slot_of(comm.rank()));
    const auto& h = hier[slot];
    MotifStats& stats = rank_stats[slot];

    // Setup outside the timed region, as in the benchmark.
    std::unique_ptr<Multigrid<double>> mg_d;
    std::unique_ptr<Multigrid<TLow>> mg_low;
    std::unique_ptr<DistOperator<double>> a_d;
    std::unique_ptr<Gmres<double>> gmres_d;
    std::unique_ptr<GmresIr<TLow>> gmres_ir;
    ScaleGuard guard;
    if (mixed) {
      const std::vector<double> lvl_max_local = hierarchy_level_max_abs(h);
      std::vector<double> lvl_max(lvl_max_local.size());
      comm.allreduce(std::span<const double>(lvl_max_local.data(),
                                             lvl_max_local.size()),
                     std::span<double>(lvl_max.data(), lvl_max.size()),
                     ReduceOp::Max);
      guard.initialize(
          guard_reference_max_abs(
              std::span<const double>(lvl_max.data(), lvl_max.size()),
              params_.precision_schedule),
          PrecisionTraits<TLow>::max_finite);
      mg_low = std::make_unique<Multigrid<TLow>>(
          h, params_, /*tag_base=*/100, guard.scale(),
          params_.precision_schedule,
          std::span<const double>(lvl_max.data(), lvl_max.size()));
      a_d = std::make_unique<DistOperator<double>>(
          h.levels[0].a, h.structures[0].get(), params_.opt, /*tag=*/90,
          /*value_scale=*/1.0, params_.index_width);
      a_d->set_overlap(params_.overlap);
      gmres_ir = std::make_unique<GmresIr<TLow>>(a_d.get(),
                                                 &mg_low->level_op(0),
                                                 mg_low.get(), opts);
      gmres_ir->set_scale_guard(&guard);
      gmres_ir->set_stats(&stats);
    } else {
      mg_d = std::make_unique<Multigrid<double>>(h, params_);
      gmres_d =
          std::make_unique<Gmres<double>>(&mg_d->level_op(0), mg_d.get(), opts);
      gmres_d->set_stats(&stats);
    }
    AlignedVector<double> x(h.levels[0].b.size(), 0.0);
    const std::span<const double> b(h.levels[0].b.data(),
                                    h.levels[0].b.size());

    comm.barrier();
    WallTimer timer;
    bool out_of_time = false;
    while (!out_of_time) {
      std::fill(x.begin(), x.end(), 0.0);  // each solve restarts from zero
      SolveResult res;
      if (mixed) {
        res = gmres_ir->solve(comm, b, std::span<double>(x.data(), x.size()));
      } else {
        res = gmres_d->solve(comm, b, std::span<double>(x.data(), x.size()));
      }
      rank_iters[slot] += res.iterations;
      rank_solves[slot] += 1;
      rank_relres[slot] = res.relative_residual;
      // All ranks must agree to stop: reduce the max elapsed time.
      const double elapsed =
          comm.allreduce_scalar(timer.seconds(), ReduceOp::Max);
      out_of_time = elapsed >= params_.bench_seconds;
    }
    // Aggregate across the whole world *inside* the SPMD region, so the
    // report is identical whether the ranks were threads or mpirun
    // processes: per-motif seconds and FLOPs sum elementwise (the same
    // arithmetic, in the same rank order, as the host-side merge the
    // in-process driver used to do), wall time takes the max.
    std::array<double, kNumMotifs> sec_local{};
    std::array<double, kNumMotifs> sec_global{};
    std::array<flop_count_t, kNumMotifs> fl_local{};
    std::array<flop_count_t, kNumMotifs> fl_global{};
    for (int m = 0; m < kNumMotifs; ++m) {
      sec_local[static_cast<std::size_t>(m)] =
          stats.seconds(static_cast<Motif>(m));
      fl_local[static_cast<std::size_t>(m)] =
          stats.flops(static_cast<Motif>(m));
    }
    comm.allreduce(std::span<const double>(sec_local.data(), sec_local.size()),
                   std::span<double>(sec_global.data(), sec_global.size()),
                   ReduceOp::Sum);
    comm.allreduce(
        std::span<const flop_count_t>(fl_local.data(), fl_local.size()),
        std::span<flop_count_t>(fl_global.data(), fl_global.size()),
        ReduceOp::Sum);
    stats.reset();
    for (int m = 0; m < kNumMotifs; ++m) {
      stats.add(static_cast<Motif>(m), sec_global[static_cast<std::size_t>(m)],
                fl_global[static_cast<std::size_t>(m)]);
    }
    rank_wall[slot] = comm.allreduce_scalar(timer.seconds(), ReduceOp::Max);
  });

  // Every local slot now holds identical world-reduced values; the first
  // speaks for the run (iterations/solves/relres are rank-uniform already —
  // every stopping decision above is allreduce-derived).
  phase.stats = rank_stats[0];
  phase.wall_seconds = rank_wall[0];
  phase.iterations = rank_iters[0];
  phase.solves = rank_solves[0];
  phase.final_relres = rank_relres[0];
  phase.raw_gflops =
      phase.wall_seconds > 0
          ? static_cast<double>(phase.stats.total_flops()) /
                phase.wall_seconds * 1e-9
          : 0;
  return phase;
}

BenchReport BenchmarkDriver::run_all() {
  BenchReport report;
  report.params = params_;
  report.ranks = num_ranks_;
  report.validation = run_validation(ValidationMode::Standard);
  report.mxp = run_phase(/*mixed=*/true);
  report.dbl = run_phase(/*mixed=*/false);
  return report;
}

}  // namespace hpgmx
