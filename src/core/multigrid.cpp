#include "core/multigrid.hpp"

namespace hpgmx {

ProblemHierarchy build_hierarchy(Problem fine, int max_levels,
                                 std::uint64_t coloring_seed) {
  HPGMX_CHECK(max_levels >= 1);
  ProblemHierarchy h;
  h.levels.push_back(std::move(fine));
  while (static_cast<int>(h.levels.size()) < max_levels) {
    const Problem& f = h.levels.back();
    if (f.box.nx % 2 != 0 || f.box.ny % 2 != 0 || f.box.nz % 2 != 0 ||
        f.box.nx < 4 || f.box.ny < 4 || f.box.nz < 4) {
      break;  // cannot coarsen further
    }
    CoarseLevel cl = coarsen(f);
    // Fused-restrict FLOP model input: nonzeros of the fine rows that the
    // injection actually evaluates.
    std::int64_t nnz_sel = 0;
    for (const local_index_t fr : cl.c2f) {
      nnz_sel += f.a.row_ptr[fr + 1] - f.a.row_ptr[fr];
    }
    h.nnz_coarse_rows.push_back(nnz_sel);
    h.c2f.push_back(std::move(cl.c2f));
    h.levels.push_back(std::move(cl.problem));
  }
  for (const Problem& p : h.levels) {
    h.structures.push_back(
        std::make_unique<OperatorStructure>(build_structure(p, coloring_seed)));
  }
  return h;
}

}  // namespace hpgmx
