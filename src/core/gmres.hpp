// Right-preconditioned restarted GMRES with CGS2 (re-orthogonalized
// classical Gram–Schmidt) — paper algorithm 2, in a single precision T.
// The all-double instantiation is the benchmark's 'double' reference
// solver; the float instantiation is exercised by tests.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/aligned_vector.hpp"
#include "base/cancel.hpp"
#include "base/fault.hpp"
#include "base/solve_status.hpp"
#include "blas/multivector.hpp"
#include "blas/vector_ops.hpp"
#include "core/dist_operator.hpp"
#include "core/givens.hpp"
#include "core/multigrid.hpp"
#include "perf/motifs.hpp"
#include "precision/precision.hpp"

namespace hpgmx {

struct SolverOptions {
  int restart = 30;
  int max_iters = 300;
  double tol = 1e-9;  ///< relative to ||b||
  bool track_history = false;
  /// Use the single-pass fused kernels (spmv_dot, waxpby_norm,
  /// residual_norm2) in GmresIr/CG. The unfused sequence computes the same
  /// ordered per-block reductions in a second memory sweep, so flipping
  /// this changes bytes moved but not one bit of the iteration — a property
  /// tests/test_fused.cpp asserts.
  bool fused_passes = true;
  /// Coalesce independent per-scalar allreduces into one multi-double
  /// message where a bit-identical pairing exists: CG packs ‖r‖² with
  /// ⟨r,z⟩ (3 → 2 reductions/iteration), GmresIr packs the next outer ‖r‖²
  /// with the correction-finite vote (2 → 1 reductions/cycle). The
  /// elementwise rank-ordered allreduce makes each packed entry
  /// bit-identical to its stand-alone reduction, so flipping this changes
  /// message count, never iterates (tests/test_overlap.cpp asserts it).
  /// CGS2's h1 → h2 → β chain is sequentially dependent — each reduction's
  /// input needs the previous one's output — so its three reductions per
  /// Arnoldi step are irreducible; gemv_t already batches each projection's
  /// k dots into a single message.
  bool batched_reductions = true;
  /// Cooperative cancellation/deadline control. The trip decision rides an
  /// existing reduction as one extra packed lane (base/cancel.hpp), so all
  /// ranks exit the same iteration; with the default (inactive) control the
  /// solvers keep their exact control-free message schedule and bits.
  SolveControl control;
  /// SDC detection + recovery policy (base/fault.hpp). With detect on, the
  /// corruption verdict rides the same packed reductions as the trip lane
  /// (zero new collectives) and the outer iterate is checkpointed every
  /// checkpoint_interval cycles for rollback; with the default (off) policy
  /// the solvers keep their exact detection-free schedule and bits, and a
  /// detection-on fault-free run is bit-identical to detection-off.
  SdcPolicy sdc;
};

struct SolveResult {
  int iterations = 0;  ///< Arnoldi steps performed (the benchmark's count)
  /// Structured outcome (rank-uniform; see base/solve_status.hpp). A failed
  /// solve still carries relative_residual (the last allreduce-derived
  /// value) and final_precision so callers can decide on retry/promotion.
  SolveStatus status = SolveStatus::Stagnated;
  double relative_residual = 0.0;  ///< true relative residual at exit
  /// Storage format the (final) iteration ran in: T for Gmres/CG, the inner
  /// TLow for GmresIr, and the last rung for AdaptiveGmresIr.
  Precision final_precision = Precision::Fp64;
  std::vector<double> history;     ///< per-restart true relative residuals
  /// A cycle observer asked the solver to stop so the caller can re-enter
  /// at a promoted precision (GmresIr::set_cycle_observer); x holds the
  /// warm iterate. Always false for Gmres/CG and observer-less GMRES-IR.
  bool switch_requested = false;
  /// Checkpoint rollbacks performed after an SDC verdict (rank-uniform:
  /// every rollback is decided from reduced lanes). 0 unless opts.sdc is on.
  int recoveries = 0;

  [[nodiscard]] bool converged() const {
    return status == SolveStatus::Converged;
  }
};

template <typename T>
class Gmres {
 public:
  /// `a` and `mg` must outlive the solver. `mg` may be nullptr
  /// (unpreconditioned GMRES, used in tests).
  Gmres(DistOperator<T>* a, Multigrid<T>* mg, SolverOptions opts)
      : a_(a), mg_(mg), opts_(opts) {}

  void set_stats(MotifStats* stats) {
    stats_ = stats;
    a_->set_stats(stats);
    if (mg_ != nullptr) {
      mg_->set_stats(stats);
    }
  }

  /// Attach the per-rank SDC monitor: halo messages of the operator and the
  /// preconditioner levels carry verified checksums, and the monitor's
  /// verdict lane rides this solver's cycle-top reduction when opts.sdc is
  /// on. Null detaches.
  void set_sdc(SdcMonitor* monitor) {
    monitor_ = monitor;
    a_->set_sdc_monitor(monitor);
    if (mg_ != nullptr) {
      mg_->set_sdc_monitor(monitor);
    }
  }

  /// Attach the per-rank fault injector (target:vec flips the iterate at
  /// cycle boundaries, target:values corrupts the operator's stored
  /// nonzeros; target:halo is ChaosComm's job). Null detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Solve A x = b from the given initial guess (owned-length spans).
  SolveResult solve(Comm& comm, std::span<const T> b, std::span<T> x) {
    const local_index_t n = a_->num_owned();
    const int m = opts_.restart;
    MultiVector<T> q(n, m + 1);
    AlignedVector<T> x_full(static_cast<std::size_t>(a_->vec_len()), T(0));
    AlignedVector<T> z_full(static_cast<std::size_t>(a_->vec_len()), T(0));
    AlignedVector<T> r(static_cast<std::size_t>(n), T(0));
    AlignedVector<T> u(static_cast<std::size_t>(n), T(0));
    AlignedVector<double> h(static_cast<std::size_t>(m) + 2, 0.0);
    AlignedVector<T> h1(static_cast<std::size_t>(m) + 1, T(0));
    AlignedVector<T> h2(static_cast<std::size_t>(m) + 1, T(0));
    AlignedVector<double> y(static_cast<std::size_t>(m), 0.0);
    AlignedVector<T> y_t(static_cast<std::size_t>(m), T(0));
    HessenbergQR qr(m);

    SolveResult result;
    result.final_precision = precision_of_v<T>;
    const SolveControl& ctl = opts_.control;
    const bool control_active = ctl.active();
    TripCause trip = TripCause::None;
    const bool sdc_active = opts_.sdc.detect;
    const double growth_limit = sdc_growth_threshold(opts_.sdc, sizeof(T));
    bool sdc_flagged = false;
    double best_rel = std::numeric_limits<double>::infinity();
    AlignedVector<T> ckpt_x;
    std::int64_t outer_cycle = 0;
    double rho0;
    {
      ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
      rho0 = static_cast<double>(nrm2<T>(comm, b));
    }
    if (rho0 == 0.0) {
      set_all(x, T(0));
      result.status = SolveStatus::Converged;
      return result;
    }
    for (local_index_t i = 0; i < n; ++i) {
      x_full[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
    }
    if (sdc_active) {
      ckpt_x = x_full;  // rollback target before the first checkpoint lands
    }

    while (result.iterations < opts_.max_iters) {
      const std::int64_t cycle = outer_cycle++;
      // Scripted value faults enter here, before the cycle-top residual, so
      // a flip at site `cycle` is visible to this cycle's audit.
      if (injector_ != nullptr) {
        injector_->maybe_flip(
            FaultTarget::Vec,
            std::as_writable_bytes(
                std::span<T>(x_full.data(), static_cast<std::size_t>(n))),
            sizeof(T), cycle);
        std::uint64_t value_draw = 0;
        std::uint64_t bit_draw = 0;
        if (injector_->maybe_draw(FaultTarget::Values, cycle, &value_draw,
                                  &bit_draw)) {
          a_->corrupt_value_bit(value_draw, bit_draw,
                                injector_->config().bit);
        }
      }
      // True residual at the top of each cycle (alg. 2/3 line 7).
      a_->residual(comm, b, std::span<T>(x_full.data(), x_full.size()),
                   std::span<T>(r.data(), r.size()));
      double rho;
      {
        ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
        if (control_active || sdc_active) {
          // Same local partial and Sum-reduction as nrm2<T>, widened by the
          // trip and/or SDC verdict lanes: entry 0 is bit-identical to the
          // stand-alone norm (elementwise rank-ordered combine), the extra
          // entries carry the deadline/cancel vote and the checksum verdict
          // at zero extra collectives.
          const T rho2_local = static_cast<T>(
              dot_local(std::span<const T>(r.data(), r.size()),
                        std::span<const T>(r.data(), r.size())));
          std::array<T, 3> local{};
          std::size_t lanes = 0;
          local[lanes++] = rho2_local;
          if (control_active) {
            local[lanes++] = static_cast<T>(ctl.trip_lane(comm.size()));
          }
          if (sdc_active) {
            local[lanes++] =
                static_cast<T>(monitor_ != nullptr ? monitor_->lane() : 0.0);
          }
          std::array<T, 3> global{};
          comm.allreduce(std::span<const T>(local.data(), lanes),
                         std::span<T>(global.data(), lanes), ReduceOp::Sum);
          std::size_t gi = 1;
          if (control_active) {
            trip = SolveControl::decode_trip(
                static_cast<double>(global[gi++]), comm.size());
          }
          if (sdc_active) {
            sdc_flagged = SdcMonitor::decode(static_cast<double>(global[gi]));
          }
          rho = static_cast<double>(static_cast<T>(
              std::sqrt(static_cast<double>(global[0]))));
        } else {
          rho = static_cast<double>(
              nrm2<T>(comm, std::span<const T>(r.data(), r.size())));
        }
      }
      result.relative_residual = rho / rho0;
      if (opts_.track_history) {
        result.history.push_back(result.relative_residual);
      }
      if (sdc_active) {
        // Verdict first: a checksum flag during the residual exchange, a
        // non-finite norm, or growth past the format-aware audit threshold
        // makes this cycle's measurement untrustworthy — including an
        // apparent convergence. All three inputs are allreduce-derived, so
        // every rank rolls back (or gives up) at the same cycle.
        const bool verdict =
            sdc_flagged || !std::isfinite(rho) ||
            (std::isfinite(best_rel) &&
             result.relative_residual > growth_limit * best_rel);
        if (verdict) {
          ++result.recoveries;
          if (result.recoveries > opts_.sdc.max_recoveries) {
            result.status = SolveStatus::Corrupted;
            break;
          }
          x_full = ckpt_x;
          if (monitor_ != nullptr) {
            monitor_->clear();
          }
          sdc_flagged = false;
          // The rolled-back residual legitimately jumps back up; the growth
          // baseline must be re-earned, not inherited.
          best_rel = std::numeric_limits<double>::infinity();
          continue;
        }
        best_rel = std::min(best_rel, result.relative_residual);
      }
      if (result.relative_residual < opts_.tol) {
        result.status = SolveStatus::Converged;
        break;
      }
      if (trip != TripCause::None) {
        result.status = trip_status(trip);  // rank-uniform: decoded from the
        break;                              // reduced lane, never local state
      }
      if (sdc_active && cycle % opts_.sdc.checkpoint_interval == 0) {
        ckpt_x = x_full;  // audited clean just above — safe to keep
      }
      // q1 = r / rho; the reduced RHS is e1 (scale folded into the final
      // update to keep T-precision magnitudes O(1)).
      {
        ScopedMotif sm(stats_, Motif::Vector, scal_flops(n));
        auto q0 = q.column(0);
        const T inv = static_cast<T>(1.0 / rho);
        for (local_index_t i = 0; i < n; ++i) {
          q0[static_cast<std::size_t>(i)] =
              r[static_cast<std::size_t>(i)] * inv;
        }
      }
      qr.reset(1.0);

      int k_used = 0;
      bool cycle_converged = false;
      for (int k = 0; k < m && result.iterations < opts_.max_iters; ++k) {
        // z = M⁻¹ q_k ; w = A z  (alg. 3 lines 18–19)
        if (mg_ != nullptr) {
          mg_->apply(comm, q.column(k), std::span<T>(z_full.data(), z_full.size()));
        } else {
          convert_copy(std::span<const T>(q.column(k).data(),
                                          static_cast<std::size_t>(n)),
                       std::span<T>(z_full.data(), static_cast<std::size_t>(n)));
        }
        auto w = q.column(k + 1);
        a_->spmv(comm, std::span<T>(z_full.data(), z_full.size()), w);

        // CGS2 with re-orthogonalization (alg. 3 lines 20–27). The ‖w‖² of
        // the normalization that follows is folded into the second
        // projection pass (gemv_n_sub_norm) on the fused path; the unfused
        // leg recomputes the same ordered per-block partials in a separate
        // sweep, so the toggle changes bytes moved but not one bit.
        double beta_sq;
        {
          ScopedMotif sm(stats_, Motif::Ortho, cgs2_flops(n, k + 1));
          gemv_t(comm, q, k + 1, std::span<const T>(w.data(), w.size()),
                 std::span<T>(h1.data(), h1.size()));
          gemv_n_sub(q, k + 1, std::span<const T>(h1.data(), h1.size()), w);
          gemv_t(comm, q, k + 1, std::span<const T>(w.data(), w.size()),
                 std::span<T>(h2.data(), h2.size()));
          if (opts_.fused_passes) {
            beta_sq = gemv_n_sub_norm(
                q, k + 1, std::span<const T>(h2.data(), h2.size()), w);
          } else {
            gemv_n_sub(q, k + 1, std::span<const T>(h2.data(), h2.size()), w);
            beta_sq = dot_span_blocked(
                std::span<const T>(w.data(), w.size()),
                std::span<const T>(w.data(), w.size()));
          }
        }
        for (int j = 0; j <= k; ++j) {
          h[static_cast<std::size_t>(j)] =
              static_cast<double>(h1[static_cast<std::size_t>(j)]) +
              static_cast<double>(h2[static_cast<std::size_t>(j)]);
        }
        double beta;
        {
          ScopedMotif sm(stats_, Motif::Ortho, normalize_flops(n));
          beta = std::sqrt(
              comm.allreduce_scalar(beta_sq, ReduceOp::Sum));
          if (beta > 0) {
            scal(static_cast<T>(1.0 / beta), w);
          }
        }
        h[static_cast<std::size_t>(k) + 1] = beta;

        double rho_est;
        {
          ScopedMotif sm(stats_, Motif::Other);
          rho_est = qr.insert_column(k, std::span<double>(h.data(), h.size())) *
                    rho;
        }
        ++result.iterations;
        k_used = k + 1;
        if (rho_est / rho0 < opts_.tol || beta == 0.0) {
          cycle_converged = true;
          break;
        }
      }
      if (k_used == 0) {
        break;  // no progress possible (max_iters hit exactly at a restart)
      }

      // x ← x + rho · M⁻¹ (Q y)   (alg. 3 lines 45–47)
      {
        ScopedMotif sm(stats_, Motif::Other);
        qr.solve(k_used, std::span<double>(y.data(), y.size()));
        for (int j = 0; j < k_used; ++j) {
          y_t[static_cast<std::size_t>(j)] =
              static_cast<T>(y[static_cast<std::size_t>(j)]);
        }
      }
      {
        ScopedMotif sm(stats_, Motif::Ortho,
                       2 * static_cast<flop_count_t>(n) *
                           static_cast<flop_count_t>(k_used));
        gemv_n(q, k_used, std::span<const T>(y_t.data(), y_t.size()),
               std::span<T>(u.data(), u.size()));
      }
      if (mg_ != nullptr) {
        mg_->apply(comm, std::span<const T>(u.data(), u.size()),
                   std::span<T>(z_full.data(), z_full.size()));
      } else {
        convert_copy(std::span<const T>(u.data(), u.size()),
                     std::span<T>(z_full.data(), static_cast<std::size_t>(n)));
      }
      {
        ScopedMotif sm(stats_, Motif::Vector, waxpby_flops(n));
        axpy(rho, std::span<const T>(z_full.data(), static_cast<std::size_t>(n)),
             std::span<T>(x_full.data(), static_cast<std::size_t>(n)));
      }
      (void)cycle_converged;  // verified against the true residual next cycle
    }

    if (!result.converged() && trip == TripCause::None &&
        result.status != SolveStatus::Corrupted) {
      // Loop left on the iteration cap: report the final true residual.
      // (A tripped exit keeps the last cycle-top residual instead: the
      // caller asked us to stop spending collectives, not start new ones.)
      a_->residual(comm, b, std::span<T>(x_full.data(), x_full.size()),
                   std::span<T>(r.data(), r.size()));
      const double rho = static_cast<double>(
          nrm2<T>(comm, std::span<const T>(r.data(), r.size())));
      result.relative_residual = rho / rho0;
      result.status = result.relative_residual < opts_.tol
                          ? SolveStatus::Converged
                          : SolveStatus::Stagnated;
    }
    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = x_full[static_cast<std::size_t>(i)];
    }
    return result;
  }

  /// Solve the B columns of `b` against the same operator state, one after
  /// another. Each column runs the exact solve() sequence, so the results
  /// are bitwise identical to B independent single-RHS calls — the batch
  /// amortizes the expensive setup (hierarchy, coloring, ELL/idx16 packing,
  /// demotion) that lives in the operator, not the per-column arithmetic.
  std::vector<SolveResult> solve_many(Comm& comm, const MultiVector<T>& b,
                                      MultiVector<T>& x) {
    HPGMX_CHECK(b.cols() == x.cols());
    std::vector<SolveResult> results;
    results.reserve(static_cast<std::size_t>(b.cols()));
    for (int j = 0; j < b.cols(); ++j) {
      results.push_back(solve(comm, b.column(j), x.column(j)));
    }
    return results;
  }

 private:
  DistOperator<T>* a_;
  Multigrid<T>* mg_;
  SolverOptions opts_;
  MotifStats* stats_ = nullptr;
  SdcMonitor* monitor_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace hpgmx
