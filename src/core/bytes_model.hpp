// Memory-traffic model: bytes each motif must move to/from main memory per
// execution, assuming streaming (no temporal reuse of matrix data, perfect
// reuse inside a row). Used for the roofline analysis (Fig. 8) and the
// machine-model projections (Figs. 4–6): a bandwidth-bound kernel's runtime
// is bytes / bandwidth, which is how halving the value width buys speed.
#pragma once

#include <cstddef>
#include <span>

#include "base/types.hpp"

namespace hpgmx {

// Runtime-format variants: `value_bytes` is the stored width of one value
// (PrecisionTraits<T>::bytes / precision_bytes(p)); `index_bytes` is the
// stored width of one column index (sizeof(local_index_t), or
// sizeof(ell_delta_t) on the compressed-index ELL path —
// EllMatrix::index_bytes()). These are what schedule-driven accounting
// calls, with one width per multigrid level; the templated wrappers below
// delegate here at the uncompressed default.

/// Column-index width of the uncompressed formats (CSR, 32-bit ELL) — the
/// historical constant every `sizeof(local_index_t)` charge came from.
inline constexpr std::size_t kIndexBytes32 = sizeof(local_index_t);
/// Column-index width of the compressed (16-bit delta) ELL path.
inline constexpr std::size_t kIndexBytes16 = sizeof(ell_delta_t);

/// y = A x: matrix values + column indices once, x gathered (~n unique
/// entries), y written.
[[nodiscard]] constexpr double spmv_bytes(std::int64_t nnz, local_index_t n,
                                          std::size_t value_bytes,
                                          std::size_t index_bytes =
                                              kIndexBytes32) {
  return static_cast<double>(nnz) *
             (static_cast<double>(value_bytes) +
              static_cast<double>(index_bytes)) +
         2.0 * static_cast<double>(n) * static_cast<double>(value_bytes);
}

/// One GS relaxation sweep: like SpMV plus the diagonal array and the
/// read-modify-write of z.
[[nodiscard]] constexpr double gs_sweep_bytes(std::int64_t nnz, local_index_t n,
                                              std::size_t value_bytes,
                                              std::size_t index_bytes =
                                                  kIndexBytes32) {
  return static_cast<double>(nnz) *
             (static_cast<double>(value_bytes) +
              static_cast<double>(index_bytes)) +
         4.0 * static_cast<double>(n) * static_cast<double>(value_bytes);
}

/// r = b − A x.
[[nodiscard]] constexpr double residual_bytes(std::int64_t nnz, local_index_t n,
                                              std::size_t value_bytes,
                                              std::size_t index_bytes =
                                                  kIndexBytes32) {
  return static_cast<double>(nnz) *
             (static_cast<double>(value_bytes) +
              static_cast<double>(index_bytes)) +
         3.0 * static_cast<double>(n) * static_cast<double>(value_bytes);
}

/// Fused residual+restrict touching only the restricted fine rows. The
/// coarse store happens in the coarse level's format (`coarse_value_bytes`
/// — equal to `value_bytes` on a uniform hierarchy).
[[nodiscard]] constexpr double fused_restrict_bytes(
    std::int64_t nnz_sel, local_index_t n_fine, local_index_t n_coarse,
    std::size_t value_bytes, std::size_t coarse_value_bytes) {
  // CSR kernel + injection maps: both keep 32-bit indices (the compressed
  // 16-bit delta stream exists only in the ELL layout).
  return static_cast<double>(nnz_sel) *
             (static_cast<double>(value_bytes) + kIndexBytes32) +
         static_cast<double>(n_fine) *
             static_cast<double>(value_bytes) +  // gathered x
         static_cast<double>(n_coarse) *
             (static_cast<double>(value_bytes) +
              kIndexBytes32) +  // b at c2f + map
         static_cast<double>(n_coarse) *
             (static_cast<double>(coarse_value_bytes) +
              kIndexBytes32);  // rc store + map
}

/// Injection prolongation + correction: read the coarse correction and the
/// map, read-modify-write the fine correction at the mapped points.
[[nodiscard]] constexpr double prolong_bytes(local_index_t n_coarse,
                                             std::size_t fine_value_bytes,
                                             std::size_t coarse_value_bytes) {
  return static_cast<double>(n_coarse) *
         (static_cast<double>(coarse_value_bytes) + sizeof(local_index_t) +
          2.0 * static_cast<double>(fine_value_bytes));
}

/// y = A x: matrix values + column indices once, x gathered (~n unique
/// entries), y written.
template <typename T>
[[nodiscard]] constexpr double spmv_bytes(std::int64_t nnz, local_index_t n) {
  return spmv_bytes(nnz, n, PrecisionTraits<T>::bytes);
}

/// One GS relaxation sweep: like SpMV plus the diagonal array and the
/// read-modify-write of z.
template <typename T>
[[nodiscard]] constexpr double gs_sweep_bytes(std::int64_t nnz,
                                              local_index_t n) {
  return gs_sweep_bytes(nnz, n, PrecisionTraits<T>::bytes);
}

/// r = b − A x.
template <typename T>
[[nodiscard]] constexpr double residual_bytes(std::int64_t nnz,
                                              local_index_t n) {
  return residual_bytes(nnz, n, PrecisionTraits<T>::bytes);
}

/// Fused residual+restrict touching only the restricted fine rows.
template <typename T>
[[nodiscard]] constexpr double fused_restrict_bytes(std::int64_t nnz_sel,
                                                    local_index_t n_fine,
                                                    local_index_t n_coarse) {
  return fused_restrict_bytes(nnz_sel, n_fine, n_coarse,
                              PrecisionTraits<T>::bytes,
                              PrecisionTraits<T>::bytes);
}

/// Streaming dimensions of one multigrid level, the schedule-independent
/// half of the V-cycle traffic model (mirrors ProblemHierarchy).
struct MgLevelDims {
  std::int64_t nnz = 0;            ///< nonzeros of this level's operator
  local_index_t rows = 0;          ///< owned rows of this level
  std::int64_t nnz_coarse_rows = 0;///< nnz of rows selected by c2f (0 on coarsest)
  local_index_t coarse_rows = 0;   ///< next level's rows (0 on coarsest)
};

/// Main-memory bytes one V-cycle streams under a per-level value width:
/// pre/post (or coarse) GS sweeps on every level, plus the fused
/// restriction and the prolongation between adjacent levels, each charged
/// at its level's format. `value_bytes[l]` is the stored width at level l
/// (`value_bytes.size() == levels.size()`); with a uniform width this is
/// exactly the sum of the templated per-motif formulas. `index_bytes[l]`,
/// when non-empty, is the stored ELL column-index width of level l's
/// smoother (2 on the compressed-delta path, 4 otherwise); empty charges
/// the historical 32-bit width everywhere.
[[nodiscard]] inline double mg_vcycle_bytes(
    std::span<const MgLevelDims> levels,
    std::span<const std::size_t> value_bytes, int pre_sweeps, int post_sweeps,
    int coarse_sweeps, std::span<const std::size_t> index_bytes = {}) {
  double total = 0.0;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const MgLevelDims& d = levels[l];
    const bool coarsest = (l + 1 == levels.size());
    const int sweeps =
        coarsest ? coarse_sweeps : pre_sweeps + post_sweeps;
    const std::size_t ib =
        index_bytes.empty() ? kIndexBytes32 : index_bytes[l];
    total += sweeps * gs_sweep_bytes(d.nnz, d.rows, value_bytes[l], ib);
    if (!coarsest) {
      total += fused_restrict_bytes(d.nnz_coarse_rows, d.rows, d.coarse_rows,
                                    value_bytes[l], value_bytes[l + 1]);
      total += prolong_bytes(d.coarse_rows, value_bytes[l], value_bytes[l + 1]);
    }
  }
  return total;
}

/// Main-memory bytes one inner GMRES-IR Arnoldi step streams under a
/// per-level value width: the fine-level SpMV (levels[0], at the fine
/// format and its ELL index width) plus one V-cycle of the preconditioner.
/// Multiplying by a realized per-cycle iteration count (CycleRecord) is how
/// the adaptive controller's runs are charged against static schedules —
/// same formula, per-cycle widths instead of one static set.
[[nodiscard]] inline double ir_inner_iteration_bytes(
    std::span<const MgLevelDims> levels,
    std::span<const std::size_t> value_bytes, int pre_sweeps, int post_sweeps,
    int coarse_sweeps, std::span<const std::size_t> index_bytes = {}) {
  const std::size_t ib0 =
      index_bytes.empty() ? kIndexBytes32 : index_bytes[0];
  return spmv_bytes(levels[0].nnz, levels[0].rows, value_bytes[0], ib0) +
         mg_vcycle_bytes(levels, value_bytes, pre_sweeps, post_sweeps,
                         coarse_sweeps, index_bytes);
}

/// Network bytes one halo exchange moves, both directions: every boundary
/// entry sent plus every halo entry received, at the exchanged value width.
/// `send_entries` is HaloPattern::total_send_count(), `recv_entries` is
/// HaloPattern::n_halo, so the prediction equals
/// HaloExchange<T>::bytes_per_exchange() exactly — the invariant the
/// RecordingComm tests pin down for fp64 and the 2-byte formats.
[[nodiscard]] constexpr double halo_exchange_bytes(std::int64_t send_entries,
                                                   std::int64_t recv_entries,
                                                   std::size_t value_bytes) {
  return static_cast<double>(send_entries + recv_entries) *
         static_cast<double>(value_bytes);
}

/// CGS2 step k: four passes over Q[:, :k] plus the vector w.
template <typename T>
[[nodiscard]] constexpr double cgs2_bytes(local_index_t n, int k) {
  return 4.0 * static_cast<double>(n) * k * PrecisionTraits<T>::bytes +
         6.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

template <typename T>
[[nodiscard]] constexpr double dot_bytes(local_index_t n) {
  return 2.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

template <typename T>
[[nodiscard]] constexpr double waxpby_bytes(local_index_t n) {
  return 3.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

// Fused solver passes: the reduction rides on data the producing kernel
// already holds in registers, so the fused pass costs exactly the producing
// kernel's traffic. What the fusion *saves* is the separate reduction sweep
// the unfused sequence pays (dot_bytes for spmv_dot's ⟨Av,v⟩ and
// waxpby_norm's / residual_norm2's ‖·‖²).

/// w = A·v with ⟨w,v⟩ folded in: SpMV traffic only.
[[nodiscard]] constexpr double spmv_dot_bytes(std::int64_t nnz, local_index_t n,
                                              std::size_t value_bytes,
                                              std::size_t index_bytes =
                                                  kIndexBytes32) {
  return spmv_bytes(nnz, n, value_bytes, index_bytes);
}

/// w = αx + βy with ‖w‖² folded in: WAXPBY traffic only.
[[nodiscard]] constexpr double waxpby_norm_bytes(local_index_t n,
                                                 std::size_t value_bytes) {
  return 3.0 * static_cast<double>(n) * static_cast<double>(value_bytes);
}

/// r = b − Ax with ‖r‖² folded in: residual traffic only.
[[nodiscard]] constexpr double residual_norm_bytes(std::int64_t nnz,
                                                   local_index_t n,
                                                   std::size_t value_bytes,
                                                   std::size_t index_bytes =
                                                       kIndexBytes32) {
  return residual_bytes(nnz, n, value_bytes, index_bytes);
}

/// CGS2 projection update w ← w − Q[:,1:k] h: k basis-vector streams read
/// once plus the read-modify-write of w.
[[nodiscard]] constexpr double gemv_n_sub_bytes(local_index_t n, int k,
                                                std::size_t value_bytes) {
  return (static_cast<double>(k) + 2.0) * static_cast<double>(n) *
         static_cast<double>(value_bytes);
}

/// w ← w − Q h with ‖w‖² folded into the same sweep (the CGS2
/// normalization-norm fusion): projection traffic only — the separate norm
/// sweep (dot_bytes) is what the fusion saves.
[[nodiscard]] constexpr double gemv_n_norm_bytes(local_index_t n, int k,
                                                 std::size_t value_bytes) {
  return gemv_n_sub_bytes(n, k, value_bytes);
}

template <typename T>
[[nodiscard]] constexpr double spmv_dot_bytes(std::int64_t nnz,
                                              local_index_t n) {
  return spmv_dot_bytes(nnz, n, PrecisionTraits<T>::bytes);
}

template <typename T>
[[nodiscard]] constexpr double waxpby_norm_bytes(local_index_t n) {
  // Identical to the plain WAXPBY by design — the fused norm is free.
  return waxpby_bytes<T>(n);
}

template <typename T>
[[nodiscard]] constexpr double residual_norm_bytes(std::int64_t nnz,
                                                   local_index_t n) {
  return residual_norm_bytes(nnz, n, PrecisionTraits<T>::bytes);
}

}  // namespace hpgmx
