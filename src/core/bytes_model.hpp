// Memory-traffic model: bytes each motif must move to/from main memory per
// execution, assuming streaming (no temporal reuse of matrix data, perfect
// reuse inside a row). Used for the roofline analysis (Fig. 8) and the
// machine-model projections (Figs. 4–6): a bandwidth-bound kernel's runtime
// is bytes / bandwidth, which is how halving the value width buys speed.
#pragma once

#include <cstddef>

#include "base/types.hpp"

namespace hpgmx {

/// y = A x: matrix values + column indices once, x gathered (~n unique
/// entries), y written.
template <typename T>
[[nodiscard]] constexpr double spmv_bytes(std::int64_t nnz, local_index_t n) {
  return static_cast<double>(nnz) * (PrecisionTraits<T>::bytes + sizeof(local_index_t)) +
         2.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

/// One GS relaxation sweep: like SpMV plus the diagonal array and the
/// read-modify-write of z.
template <typename T>
[[nodiscard]] constexpr double gs_sweep_bytes(std::int64_t nnz,
                                              local_index_t n) {
  return static_cast<double>(nnz) * (PrecisionTraits<T>::bytes + sizeof(local_index_t)) +
         4.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

/// r = b − A x.
template <typename T>
[[nodiscard]] constexpr double residual_bytes(std::int64_t nnz,
                                              local_index_t n) {
  return static_cast<double>(nnz) * (PrecisionTraits<T>::bytes + sizeof(local_index_t)) +
         3.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

/// Fused residual+restrict touching only the restricted fine rows.
template <typename T>
[[nodiscard]] constexpr double fused_restrict_bytes(std::int64_t nnz_sel,
                                                    local_index_t n_fine,
                                                    local_index_t n_coarse) {
  return static_cast<double>(nnz_sel) * (PrecisionTraits<T>::bytes + sizeof(local_index_t)) +
         static_cast<double>(n_fine) * PrecisionTraits<T>::bytes +  // gathered x
         2.0 * static_cast<double>(n_coarse) *
             (PrecisionTraits<T>::bytes + sizeof(local_index_t));  // b at c2f, rc, map
}

/// CGS2 step k: four passes over Q[:, :k] plus the vector w.
template <typename T>
[[nodiscard]] constexpr double cgs2_bytes(local_index_t n, int k) {
  return 4.0 * static_cast<double>(n) * k * PrecisionTraits<T>::bytes +
         6.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

template <typename T>
[[nodiscard]] constexpr double dot_bytes(local_index_t n) {
  return 2.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

template <typename T>
[[nodiscard]] constexpr double waxpby_bytes(local_index_t n) {
  return 3.0 * static_cast<double>(n) * PrecisionTraits<T>::bytes;
}

}  // namespace hpgmx
