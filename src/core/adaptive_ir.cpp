#include "core/adaptive_ir.hpp"

#include <cstddef>
#include <utility>

#include "core/bytes_model.hpp"
#include "core/gmres_ir.hpp"
#include "precision/scale_guard.hpp"
#include "sparse/ell.hpp"

namespace hpgmx {

template <typename TLow>
struct AdaptiveGmresIr::Stack final : AdaptiveGmresIr::StackBase {
  Stack(const ProblemHierarchy& hierarchy, const BenchParams& params,
        const PrecisionSchedule& schedule, std::span<const double> level_max,
        DistOperator<double>* a_high, InnerCycleObserver* observer)
      : a_high_(a_high), observer_(observer) {
    // Same stack SolverService builds for a static run: guard anchored per
    // the schedule's reference rule, hierarchy demoted at the guard's scale.
    guard_.initialize(guard_reference_max_abs(level_max, schedule),
                      PrecisionTraits<TLow>::max_finite);
    mg_low_ = std::make_unique<Multigrid<TLow>>(hierarchy, params,
                                                /*tag_base=*/100,
                                                guard_.scale(), schedule,
                                                level_max);
  }

  SolveResult run(Comm& comm, std::span<const double> b, std::span<double> x,
                  const SolverOptions& opts, SdcMonitor* monitor,
                  FaultInjector* injector) override {
    GmresIr<TLow> solver(a_high_, &mg_low_->level_op(0), mg_low_.get(), opts);
    solver.set_scale_guard(&guard_);
    solver.set_cycle_observer(observer_);
    solver.set_sdc(monitor);
    solver.set_fault_injector(injector);
    return solver.solve(comm, b, x);
  }

  DistOperator<double>* a_high_;
  InnerCycleObserver* observer_;
  ScaleGuard guard_;
  std::unique_ptr<Multigrid<TLow>> mg_low_;
};

AdaptiveGmresIr::AdaptiveGmresIr(const ProblemHierarchy& hierarchy,
                                 const BenchParams& params, SolverOptions opts,
                                 std::span<const double> level_max)
    : hierarchy_(hierarchy),
      params_(params),
      opts_(opts),
      level_max_(level_max.empty()
                     ? hierarchy_level_max_abs(hierarchy)
                     : std::vector<double>(level_max.begin(),
                                           level_max.end())),
      dims_(hierarchy_level_dims(hierarchy)),
      ctrl_(params.adaptive.enabled
                ? PrecisionController(params.adaptive, params.scenario.kind)
                : PrecisionController::recorder(
                      params.precision_schedule.empty()
                          ? PrecisionSchedule{{params.inner_precision}}
                          : params.precision_schedule)),
      a_high_(hierarchy.levels[0].a, hierarchy.structures[0].get(), params.opt,
              /*tag=*/90, /*value_scale=*/1.0, params.index_width) {
  a_high_.set_overlap(params_.overlap);
  // Column-index width each level's ELL kernels actually stream under the
  // configured HPGMX_IDX — realized_bytes must charge the runtime layout.
  index_bytes_.resize(hierarchy.levels.size());
  for (std::size_t l = 0; l < hierarchy.levels.size(); ++l) {
    const bool idx16 = params_.index_width != IndexWidth::Idx32 &&
                       ell_idx16_feasible(hierarchy.levels[l].a);
    index_bytes_[l] = idx16 ? kIndexBytes16 : kIndexBytes32;
  }
}

AdaptiveGmresIr::~AdaptiveGmresIr() = default;

PrecisionSchedule AdaptiveGmresIr::stack_schedule() const {
  // Disabled controllers run the configured static schedule verbatim —
  // including the empty (uniform) case, whose guard reference is the whole
  // hierarchy rather than the fine level. Substituting the recorder's
  // single-entry schedule here would silently change that anchoring.
  return ctrl_.enabled() ? ctrl_.schedule() : params_.precision_schedule;
}

void AdaptiveGmresIr::ensure_stack() {
  if (stack_ != nullptr && stack_rung_ == ctrl_.rung()) {
    return;
  }
  const PrecisionSchedule schedule = stack_schedule();
  dispatch_precision(ctrl_.current(), [&](auto tag) {
    using TLow = typename decltype(tag)::type;
    stack_ = std::make_unique<Stack<TLow>>(
        hierarchy_, params_, schedule,
        std::span<const double>(level_max_.data(), level_max_.size()),
        &a_high_, &ctrl_);
  });
  stack_rung_ = ctrl_.rung();
}

SolveResult AdaptiveGmresIr::solve(Comm& comm, std::span<const double> b,
                                   std::span<double> x) {
  ctrl_.begin_solve();
  SolveResult total;
  int budget = opts_.max_iters;
  bool continuation = false;
  // Each pass is one format segment; a switch_requested exit implies the
  // controller just promoted, so the loop runs at most ladder-size times.
  while (true) {
    ensure_stack();
    SolverOptions o = opts_;
    o.max_iters = budget;
    const SolveResult seg = stack_->run(comm, b, x, o, monitor_, injector_);
    total.iterations += seg.iterations;
    total.recoveries += seg.recoveries;
    total.status = seg.status;
    total.relative_residual = seg.relative_residual;
    total.final_precision = seg.final_precision;
    if (opts_.track_history) {
      // A continuation segment re-measures the junction residual at the
      // warm x its predecessor left behind — drop the duplicate entry so
      // the spliced history reads like a single solve.
      const std::ptrdiff_t skip =
          (continuation && !seg.history.empty()) ? 1 : 0;
      total.history.insert(total.history.end(), seg.history.begin() + skip,
                           seg.history.end());
    }
    budget -= seg.iterations;
    if (!seg.switch_requested || seg.converged() || budget <= 0) {
      break;
    }
    continuation = true;
  }
  return total;
}

std::vector<SolveResult> AdaptiveGmresIr::solve_many(Comm& comm,
                                                     const MultiVector<double>& b,
                                                     MultiVector<double>& x) {
  HPGMX_CHECK(b.cols() == x.cols());
  std::vector<SolveResult> results;
  results.reserve(static_cast<std::size_t>(b.cols()));
  for (int j = 0; j < b.cols(); ++j) {
    results.push_back(solve(comm, b.column(j), x.column(j)));
  }
  return results;
}

double AdaptiveGmresIr::realized_bytes() const {
  double total = 0.0;
  const int nl = static_cast<int>(dims_.size());
  for (const CycleRecord& rec : ctrl_.records()) {
    const PrecisionSchedule sched = ctrl_.enabled()
                                        ? ctrl_.schedule_for(rec.rung)
                                        : params_.precision_schedule;
    const std::vector<std::size_t> widths =
        schedule_value_bytes(sched, nl, rec.precision);
    total += static_cast<double>(rec.inner_iterations) *
             ir_inner_iteration_bytes(
                 std::span<const MgLevelDims>(dims_.data(), dims_.size()),
                 std::span<const std::size_t>(widths.data(), widths.size()),
                 params_.pre_smooth_sweeps, params_.post_smooth_sweeps,
                 params_.coarse_sweeps,
                 std::span<const std::size_t>(index_bytes_.data(),
                                              index_bytes_.size()));
  }
  return total;
}

}  // namespace hpgmx
