// Incremental QR of the GMRES Hessenberg matrix via Givens rotations
// (paper alg. 3 lines 31–43). Runs redundantly on every rank in double
// precision — the m×m problem is tiny next to the distributed vectors.
#pragma once

#include <span>
#include <vector>

namespace hpgmx {

/// Plane rotation [c s; -s c] eliminating b against a.
struct GivensRotation {
  double c = 1.0;
  double s = 0.0;
};

/// Rotation zeroing `b`: [c s; -s c]ᵀ [a; b] = [r; 0], r = hypot(a, b).
GivensRotation compute_givens(double a, double b);

/// Incremental QR factorization state of the (m+1)×m Hessenberg matrix.
class HessenbergQR {
 public:
  explicit HessenbergQR(int m);

  /// Start a new cycle: t = beta·e1, no columns.
  void reset(double beta);

  /// Insert column k (0-based) given its k+2 Hessenberg entries h[0..k+1].
  /// Applies all previous rotations, computes and stores the new one, and
  /// updates t. Returns |t[k+1]| — the residual-norm estimate of the
  /// least-squares problem after k+1 steps.
  double insert_column(int k, std::span<double> h);

  /// Back-substitute R y = t over the first k columns.
  void solve(int k, std::span<double> y) const;

  [[nodiscard]] int restart_length() const { return m_; }

  /// Current residual estimate |t[k]| after k inserted columns.
  [[nodiscard]] double residual_estimate(int k) const;

 private:
  int m_;
  std::vector<double> r_;  ///< packed upper-triangular factor, column-major
  std::vector<double> c_;
  std::vector<double> s_;
  std::vector<double> t_;
};

}  // namespace hpgmx
