// Preconditioned Conjugate Gradient — the HPCG baseline (paper algorithm 1),
// used by the §4.1 comparison ("when we ran HPCG ourselves on Frontier ...
// 10.4 petaflops"). Preconditioner: one multigrid V-cycle with symmetric
// (forward+backward) Gauss–Seidel smoothing, per the HPCG specification.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "base/aligned_vector.hpp"
#include "base/fault.hpp"
#include "blas/vector_ops.hpp"
#include "core/dist_operator.hpp"
#include "core/gmres.hpp"
#include "core/multigrid.hpp"

namespace hpgmx {

/// Symmetric-GS multigrid V-cycle preconditioner for CG: wraps the shared
/// Multigrid<T> machinery with forward+backward sweeps so M stays symmetric.
template <typename T>
class SymmetricMultigrid {
 public:
  SymmetricMultigrid(const ProblemHierarchy& hierarchy,
                     const BenchParams& params, int tag_base = 500)
      : hierarchy_(&hierarchy), params_(params) {
    const int nl = static_cast<int>(hierarchy.levels.size());
    for (int l = 0; l < nl; ++l) {
      ops_.emplace_back(hierarchy.levels[static_cast<std::size_t>(l)].a,
                        hierarchy.structures[static_cast<std::size_t>(l)].get(),
                        params.opt, tag_base + l, /*value_scale=*/1.0,
                        params.index_width);
      ops_.back().set_overlap(params.overlap);
    }
    r_.resize(static_cast<std::size_t>(nl));
    z_.resize(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
      const auto len = static_cast<std::size_t>(
          ops_[static_cast<std::size_t>(l)].vec_len());
      r_[static_cast<std::size_t>(l)].assign(len, T(0));
      z_[static_cast<std::size_t>(l)].assign(len, T(0));
    }
  }

  [[nodiscard]] DistOperator<T>& level_op(int l) {
    return ops_[static_cast<std::size_t>(l)];
  }

  void set_stats(MotifStats* stats) {
    for (auto& op : ops_) {
      op.set_stats(stats);
    }
    stats_ = stats;
  }

  /// Attach/detach the SDC monitor on every level's halo exchange.
  void set_sdc_monitor(SdcMonitor* monitor) {
    for (auto& op : ops_) {
      op.set_sdc_monitor(monitor);
    }
  }

  /// Re-demote every level from its double source (SDC-rollback repair).
  void redemote() {
    for (auto& op : ops_) {
      op.redemote();
    }
  }

  void apply(Comm& comm, std::span<const T> r, std::span<T> z) {
    auto& r0 = r_[0];
    for (local_index_t i = 0; i < ops_[0].num_owned(); ++i) {
      r0[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
    }
    cycle(comm, 0);
    for (local_index_t i = 0; i < ops_[0].num_owned(); ++i) {
      z[static_cast<std::size_t>(i)] = z_[0][static_cast<std::size_t>(i)];
    }
  }

 private:
  void cycle(Comm& comm, int l) {
    auto& op = ops_[static_cast<std::size_t>(l)];
    auto& r = r_[static_cast<std::size_t>(l)];
    auto& z = z_[static_cast<std::size_t>(l)];
    std::fill(z.begin(), z.end(), T(0));
    const bool coarsest = (l + 1 == static_cast<int>(ops_.size()));

    // HPCG smoothing step: forward then backward sweep (symmetric GS).
    op.gs_forward(comm, std::span<const T>(r.data(), r.size()),
                  std::span<T>(z.data(), z.size()));
    op.gs_backward(comm, std::span<const T>(r.data(), r.size()),
                   std::span<T>(z.data(), z.size()));
    if (coarsest) {
      return;
    }
    auto& rc = r_[static_cast<std::size_t>(l + 1)];
    const auto& c2f = hierarchy_->c2f[static_cast<std::size_t>(l)];
    op.restrict_residual(
        comm, std::span<const T>(r.data(), r.size()),
        std::span<T>(z.data(), z.size()),
        std::span<const local_index_t>(c2f.data(), c2f.size()),
        hierarchy_->nnz_coarse_rows[static_cast<std::size_t>(l)],
        std::span<T>(rc.data(), rc.size()));
    cycle(comm, l + 1);
    {
      ScopedMotif sm(stats_, Motif::Prolong,
                     prolong_flops(static_cast<local_index_t>(c2f.size())));
      prolong_correct(std::span<const local_index_t>(c2f.data(), c2f.size()),
                      std::span<const T>(z_[static_cast<std::size_t>(l + 1)].data(),
                                         z_[static_cast<std::size_t>(l + 1)].size()),
                      std::span<T>(z.data(), z.size()));
    }
    op.gs_forward(comm, std::span<const T>(r.data(), r.size()),
                  std::span<T>(z.data(), z.size()));
    op.gs_backward(comm, std::span<const T>(r.data(), r.size()),
                   std::span<T>(z.data(), z.size()));
  }

  const ProblemHierarchy* hierarchy_;
  BenchParams params_;
  std::vector<DistOperator<T>> ops_;
  std::vector<AlignedVector<T>> r_;
  std::vector<AlignedVector<T>> z_;
  MotifStats* stats_ = nullptr;
};

/// Preconditioned CG (paper algorithm 1) in precision T.
template <typename T>
class ConjugateGradient {
 public:
  ConjugateGradient(DistOperator<T>* a, SymmetricMultigrid<T>* mg,
                    SolverOptions opts)
      : a_(a), mg_(mg), opts_(opts) {}

  void set_stats(MotifStats* stats) {
    stats_ = stats;
    a_->set_stats(stats);
    if (mg_ != nullptr) {
      mg_->set_stats(stats);
    }
  }

  /// Attach the per-rank SDC monitor (checksummed halos on the operator and
  /// every preconditioner level; verdict lane on the packed reductions when
  /// opts.sdc is on). Null detaches.
  void set_sdc(SdcMonitor* monitor) {
    monitor_ = monitor;
    a_->set_sdc_monitor(monitor);
    if (mg_ != nullptr) {
      mg_->set_sdc_monitor(monitor);
    }
  }

  /// Attach the per-rank fault injector (target:vec flips the iterate,
  /// target:values corrupts stored nonzeros). Null detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  SolveResult solve(Comm& comm, std::span<const T> b, std::span<T> x) {
    const local_index_t n = a_->num_owned();
    AlignedVector<T> x_full(static_cast<std::size_t>(a_->vec_len()), T(0));
    AlignedVector<T> p_full(static_cast<std::size_t>(a_->vec_len()), T(0));
    AlignedVector<T> r(static_cast<std::size_t>(n), T(0));
    AlignedVector<T> z(static_cast<std::size_t>(n), T(0));
    AlignedVector<T> ap(static_cast<std::size_t>(n), T(0));

    SolveResult result;
    result.final_precision = precision_of_v<T>;
    const SolveControl& ctl = opts_.control;
    const bool control_active = ctl.active();
    TripCause trip = TripCause::None;
    // SDC detection state. CG audits by recurrence-vs-true residual drift:
    // every audit_interval iterations the true ‖b − A·x‖² rides one extra
    // lane on the existing packed reduction and is compared against the
    // recurrence ‖r‖². The rollback point refreshes only on iterations whose
    // audit came back clean, so a checkpoint can never capture corrupted
    // state that a later audit would flag.
    const bool sdc_active = opts_.sdc.detect;
    const double drift_limit =
        opts_.sdc.audit_drift *
        static_cast<double>(PrecisionTraits<T>::unit_roundoff);
    bool sdc_verdict = false;
    bool restart_direction = false;
    AlignedVector<T> ckpt_x;
    AlignedVector<T> r_audit;
    double rho0;
    {
      ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
      rho0 = static_cast<double>(nrm2<T>(comm, b));
    }
    if (rho0 == 0.0) {
      set_all(x, T(0));
      result.status = SolveStatus::Converged;
      return result;
    }
    for (local_index_t i = 0; i < n; ++i) {
      x_full[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
    }
    a_->residual(comm, b, std::span<T>(x_full.data(), x_full.size()),
                 std::span<T>(r.data(), r.size()));
    if (sdc_active) {
      ckpt_x = x_full;
      r_audit.assign(r.size(), T(0));
    }
    // ‖r‖² of the initial residual; every later iteration carries the local
    // partial out of the fused residual-update pass (waxpby_norm) below.
    // The allreduce itself runs per-scalar, or rides with ⟨r,z⟩ in one
    // 2-double message on the batched schedule.
    double rho2_local;
    {
      ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
      rho2_local = dot_span_blocked(std::span<const T>(r.data(), r.size()),
                                    std::span<const T>(r.data(), r.size()));
    }
    // Widened-by-lanes variant of an existing Sum reduction: entry 0 is
    // bit-identical to the stand-alone scalar reduce; the conditional extra
    // lanes carry the deadline/cancel trip vote (base/cancel.hpp), the SDC
    // checksum verdict, and — on audit iterations — the local true-residual
    // ‖b − A·x‖² partial. Zero new collectives; every decoded quantity is
    // allreduce-derived, hence rank-uniform.
    const auto reduce_lanes = [&](double value_local, bool audit_now,
                                  double audit_local) {
      std::array<double, 4> local{};
      std::size_t lanes = 0;
      local[lanes++] = value_local;
      if (control_active) {
        local[lanes++] = ctl.trip_lane(comm.size());
      }
      if (sdc_active) {
        local[lanes++] = monitor_ != nullptr ? monitor_->lane() : 0.0;
      }
      if (audit_now) {
        local[lanes++] = audit_local;
      }
      std::array<double, 4> global{};
      comm.allreduce(std::span<const double>(local.data(), lanes),
                     std::span<double>(global.data(), lanes), ReduceOp::Sum);
      std::size_t gi = 1;
      if (control_active) {
        trip = SolveControl::decode_trip(global[gi++], comm.size());
      }
      if (sdc_active) {
        sdc_verdict = SdcMonitor::decode(global[gi++]);
      }
      if (audit_now) {
        const double drift =
            std::abs(std::sqrt(global[gi]) - std::sqrt(global[0]));
        if (!(drift <= drift_limit * rho0)) {
          sdc_verdict = true;  // also catches NaN drift
        }
        if (!sdc_verdict && std::isfinite(global[0])) {
          // x_full just passed a true-residual audit — refresh the rollback
          // point before the next iteration can inject or accumulate error.
          ckpt_x = x_full;
        }
      }
      return global[0];
    };
    double rho2 = 0.0;
    if (!opts_.batched_reductions) {
      rho2 = (control_active || sdc_active)
                 ? reduce_lanes(rho2_local, false, 0.0)
                 : comm.allreduce_scalar(rho2_local, ReduceOp::Sum);
    }

    const auto apply_m = [&] {
      if (mg_ != nullptr) {
        mg_->apply(comm, std::span<const T>(r.data(), r.size()),
                   std::span<T>(z.data(), z.size()));
      } else {
        convert_copy(std::span<const T>(r.data(), r.size()),
                     std::span<T>(z.data(), z.size()));
      }
    };

    // Restore the last audited-clean iterate, rebuild demoted operator
    // storage (a value flip may have hit it), recompute the recurrence
    // residual from scratch, and restart the search direction. Every input
    // to the decision that calls this is allreduce-derived, so all ranks
    // roll back (or exhaust the budget) together. Returns false when the
    // recovery budget is spent — the caller breaks with status Corrupted.
    const auto rollback = [&]() -> bool {
      ++result.recoveries;
      if (result.recoveries > opts_.sdc.max_recoveries) {
        result.status = SolveStatus::Corrupted;
        return false;
      }
      x_full = ckpt_x;
      a_->redemote();
      if (mg_ != nullptr) {
        mg_->redemote();
      }
      a_->residual(comm, b, std::span<T>(x_full.data(), x_full.size()),
                   std::span<T>(r.data(), r.size()));
      {
        ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
        rho2_local = dot_span_blocked(std::span<const T>(r.data(), r.size()),
                                      std::span<const T>(r.data(), r.size()));
      }
      if (monitor_ != nullptr) {
        monitor_->clear();
      }
      sdc_verdict = false;
      restart_direction = true;
      if (!opts_.batched_reductions) {
        rho2 = reduce_lanes(rho2_local, false, 0.0);
      }
      return true;
    };

    double rz_old = 0.0;
    while (result.iterations < opts_.max_iters) {
      if (injector_ != nullptr) {
        // Deterministic fault sites, keyed by the iteration count: a bit
        // flip in the owned iterate, or in the operator's stored values.
        injector_->maybe_flip(
            FaultTarget::Vec,
            std::as_writable_bytes(
                std::span<T>(x_full.data(), static_cast<std::size_t>(n))),
            sizeof(T), result.iterations);
        std::uint64_t value_draw = 0;
        std::uint64_t bit_draw = 0;
        if (injector_->maybe_draw(FaultTarget::Values, result.iterations,
                                  &value_draw, &bit_draw)) {
          a_->corrupt_value_bit(value_draw, bit_draw,
                                injector_->config().bit);
        }
      }
      double rz = 0.0;
      if (opts_.batched_reductions) {
        // z = M r is hoisted above the convergence check so ⟨r,z⟩ can share
        // one 2-double reduction with ‖r‖² (3 → 2 allreduces/iteration).
        // The elementwise rank-ordered combine makes each packed entry
        // bit-identical to its stand-alone reduction, so iterates are
        // unchanged; the price is one speculative preconditioner
        // application on the final (converging) iteration.
        apply_m();
        double rz_local;
        {
          ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
          rz_local = static_cast<double>(
              dot_local(std::span<const T>(r.data(), r.size()),
                        std::span<const T>(z.data(), z.size())));
        }
        if (control_active || sdc_active) {
          // Extra packed lanes on the same message: trip vote, SDC verdict,
          // and — on audit iterations — the local true-residual partial.
          const bool audit_now =
              sdc_active && result.iterations > 0 &&
              result.iterations % opts_.sdc.audit_interval == 0;
          double audit_local = 0.0;
          if (audit_now) {
            a_->residual(comm, b,
                         std::span<T>(x_full.data(), x_full.size()),
                         std::span<T>(r_audit.data(), r_audit.size()));
            ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
            audit_local = dot_span_blocked(
                std::span<const T>(r_audit.data(), r_audit.size()),
                std::span<const T>(r_audit.data(), r_audit.size()));
          }
          std::array<double, 5> local{};
          std::size_t lanes = 0;
          local[lanes++] = rho2_local;
          local[lanes++] = rz_local;
          if (control_active) {
            local[lanes++] = ctl.trip_lane(comm.size());
          }
          if (sdc_active) {
            local[lanes++] = monitor_ != nullptr ? monitor_->lane() : 0.0;
          }
          if (audit_now) {
            local[lanes++] = audit_local;
          }
          std::array<double, 5> global{};
          comm.allreduce(std::span<const double>(local.data(), lanes),
                         std::span<double>(global.data(), lanes),
                         ReduceOp::Sum);
          rho2 = global[0];
          rz = global[1];
          std::size_t gi = 2;
          if (control_active) {
            trip = SolveControl::decode_trip(global[gi++], comm.size());
          }
          if (sdc_active) {
            sdc_verdict = SdcMonitor::decode(global[gi++]);
          }
          if (audit_now) {
            const double drift =
                std::abs(std::sqrt(global[gi]) - std::sqrt(rho2));
            if (!(drift <= drift_limit * rho0)) {
              sdc_verdict = true;  // also catches NaN drift
            }
            if (!sdc_verdict && std::isfinite(rho2)) {
              ckpt_x = x_full;  // audited clean — refresh the rollback point
            }
          }
        } else {
          const std::array<double, 2> local{rho2_local, rz_local};
          std::array<double, 2> global{};
          comm.allreduce(std::span<const double>(local.data(), local.size()),
                         std::span<double>(global.data(), global.size()),
                         ReduceOp::Sum);
          rho2 = global[0];
          rz = global[1];
        }
      }
      const double rho = std::sqrt(rho2);
      result.relative_residual = rho / rho0;
      if (opts_.track_history) {
        result.history.push_back(result.relative_residual);
      }
      if (sdc_active && (sdc_verdict || !std::isfinite(rho))) {
        // Corruption verdict (checksum lane, drift audit, or non-finite
        // reduced norm — all rank-uniform): roll back and retry, checked
        // before convergence so a flipped-to-tiny norm cannot fake success.
        if (!rollback()) {
          break;
        }
        continue;
      }
      if (result.relative_residual < opts_.tol) {
        result.status = SolveStatus::Converged;
        break;
      }
      if (trip != TripCause::None) {
        result.status = trip_status(trip);  // decoded from the reduced lane,
        break;                              // so every rank breaks here
      }
      if (!opts_.batched_reductions) {
        apply_m();
        ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
        rz = dot<double>(comm, std::span<const T>(r.data(), r.size()),
                         std::span<const T>(z.data(), z.size()));
      }
      if (result.iterations == 0 || restart_direction) {
        restart_direction = false;
        ScopedMotif sm(stats_, Motif::Vector, scal_flops(n));
        for (local_index_t i = 0; i < n; ++i) {
          p_full[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)];
        }
      } else {
        const double beta = rz / rz_old;
        ScopedMotif sm(stats_, Motif::Vector, waxpby_flops(n));
        for (local_index_t i = 0; i < n; ++i) {
          p_full[static_cast<std::size_t>(i)] =
              z[static_cast<std::size_t>(i)] +
              static_cast<T>(beta) * p_full[static_cast<std::size_t>(i)];
        }
      }
      rz_old = rz;
      // w = A p with ⟨Ap, p⟩ in the same sweep (spmv_dot); the unfused leg
      // recomputes the identical blocked dot in a second pass.
      const double pap =
          opts_.fused_passes
              ? a_->spmv_dot(comm, std::span<T>(p_full.data(), p_full.size()),
                             std::span<T>(ap.data(), ap.size()))
              : a_->spmv_then_dot(comm,
                                  std::span<T>(p_full.data(), p_full.size()),
                                  std::span<T>(ap.data(), ap.size()));
      if (sdc_active && !(pap > 0)) {
        // Corrupted curvature (NaN or nonpositive ⟨Ap, p⟩ after a value
        // flip). pap is allreduce-derived, hence rank-uniform — recover
        // instead of aborting the run.
        if (!rollback()) {
          break;
        }
        continue;
      }
      HPGMX_CHECK_MSG(pap > 0, "CG: matrix is not positive definite");
      const double alpha = rz / pap;
      {
        ScopedMotif sm(stats_, Motif::Vector, waxpby_flops(n));
        axpy(alpha, std::span<const T>(p_full.data(), static_cast<std::size_t>(n)),
             std::span<T>(x_full.data(), static_cast<std::size_t>(n)));
      }
      // r ← r − alpha·Ap fused with the next iteration's ‖r‖² (waxpby_norm):
      // the unfused leg runs the same WAXPBY then the same blocked dot as a
      // separate read sweep.
      {
        ScopedMotif sm(stats_, Motif::Vector,
                       waxpby_flops(n) + dot_flops(n));
        const std::span<const T> rc(r.data(), r.size());
        const std::span<const T> apc(ap.data(), ap.size());
        if (opts_.fused_passes) {
          rho2_local = waxpby_norm(1.0, rc, -alpha, apc,
                                   std::span<T>(r.data(), r.size()));
        } else {
          waxpby(1.0, rc, -alpha, apc, std::span<T>(r.data(), r.size()));
          rho2_local =
              dot_span_blocked(std::span<const T>(r.data(), r.size()),
                               std::span<const T>(r.data(), r.size()));
        }
      }
      if (!opts_.batched_reductions) {
        if (control_active || sdc_active) {
          // The audit rides the bottom reduce here: x_full was just
          // updated, so the true residual is compared against the fresh
          // recurrence ‖r‖² carried in lane 0 of the same message.
          const bool audit_now =
              sdc_active &&
              (result.iterations + 1) % opts_.sdc.audit_interval == 0;
          double audit_local = 0.0;
          if (audit_now) {
            a_->residual(comm, b,
                         std::span<T>(x_full.data(), x_full.size()),
                         std::span<T>(r_audit.data(), r_audit.size()));
            ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
            audit_local = dot_span_blocked(
                std::span<const T>(r_audit.data(), r_audit.size()),
                std::span<const T>(r_audit.data(), r_audit.size()));
          }
          rho2 = reduce_lanes(rho2_local, audit_now, audit_local);
        } else {
          rho2 = comm.allreduce_scalar(rho2_local, ReduceOp::Sum);
        }
      }
      ++result.iterations;
    }

    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = x_full[static_cast<std::size_t>(i)];
    }
    return result;
  }

  /// Solve the B columns of `b` sequentially against the same operator
  /// state; bitwise identical to B independent solve() calls (the batch
  /// amortizes setup, not per-column arithmetic).
  std::vector<SolveResult> solve_many(Comm& comm, const MultiVector<T>& b,
                                      MultiVector<T>& x) {
    HPGMX_CHECK(b.cols() == x.cols());
    std::vector<SolveResult> results;
    results.reserve(static_cast<std::size_t>(b.cols()));
    for (int j = 0; j < b.cols(); ++j) {
      results.push_back(solve(comm, b.column(j), x.column(j)));
    }
    return results;
  }

 private:
  DistOperator<T>* a_;
  SymmetricMultigrid<T>* mg_;
  SolverOptions opts_;
  MotifStats* stats_ = nullptr;
  SdcMonitor* monitor_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace hpgmx
