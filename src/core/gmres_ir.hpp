// Mixed-precision GMRES-IR (paper algorithm 3): iterative refinement whose
// correction equations are solved by restarted GMRES cycles running entirely
// in a low precision TLow, while the outer residual (line 7) and solution
// update (line 47) are performed in double — the two steps the benchmark
// *requires* in double so the final accuracy matches a full double solver.
//
// In low precision: the matrix copy (A_low), the multigrid hierarchy, the
// Krylov basis, SpMV, smoothing, and CGS2 orthogonalization (including its
// float allreduces — half the payload of the double solver's reductions).
// In double: outer residual/norm, Givens QR (host-redundant), and the
// mixed-precision WAXPBY that applies the correction.
//
// TLow is the *entry* format: with a progressive-precision schedule the
// multigrid's coarse levels may narrow further (fp32 fine, bf16/fp16
// coarse — see Multigrid and docs/MULTIGRID.md). The solver is oblivious:
// it exchanges TLow vectors with the fine level, and the schedule's
// per-level scales are compensated inside prolongation, so the guard's
// x += ρ·α·z update is unchanged.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/aligned_vector.hpp"
#include "blas/multivector.hpp"
#include "blas/vector_ops.hpp"
#include "core/dist_operator.hpp"
#include "core/givens.hpp"
#include "core/gmres.hpp"
#include "core/multigrid.hpp"
#include "perf/motifs.hpp"
#include "precision/adaptive_controller.hpp"
#include "precision/scale_guard.hpp"

namespace hpgmx {

template <typename TLow = float>
class GmresIr {
 public:
  /// `a_high` performs the double outer residual; `a_low`/`mg_low` run the
  /// inner cycles. All must outlive the solver and share one
  /// OperatorStructure per level.
  GmresIr(DistOperator<double>* a_high, DistOperator<TLow>* a_low,
          Multigrid<TLow>* mg_low, SolverOptions opts)
      : a_high_(a_high), a_low_(a_low), mg_low_(mg_low), opts_(opts) {}

  void set_stats(MotifStats* stats) {
    stats_ = stats;
    a_high_->set_stats(stats);
    a_low_->set_stats(stats);
    mg_low_->set_stats(stats);
  }

  /// Attach an AMP-style scale guard. `a_low`/`mg_low` must have been
  /// demoted with `guard->scale()` as their value_scale; the solver then
  /// compensates updates with the current scale, watches the inner basis
  /// for non-finite growth, and drives the guard's backoff/regrow cycle.
  /// Without a guard, a non-finite inner basis aborts the solve
  /// (converged = false) instead of burning the iteration budget.
  void set_scale_guard(ScaleGuard* guard) { guard_ = guard; }

  /// Attach a per-cycle observer (the adaptive PrecisionController, or its
  /// passive recorder). The solver reports the outer relative residual at
  /// the top of each refinement cycle, the Arnoldi step count of each inner
  /// cycle, and rank-consistent non-finite detections. When an observation
  /// returns CycleAction::Promote the solve stops with
  /// `switch_requested = true` and x holding its current (warm) iterate, so
  /// the caller can re-enter at a wider format. Every observation point is
  /// allreduce-derived or collectively voted, so all SPMD ranks observe the
  /// same sequence and stop together. A null or passive observer leaves the
  /// iteration bitwise unchanged.
  void set_cycle_observer(InnerCycleObserver* observer) {
    observer_ = observer;
  }

  /// Attach the per-rank SDC monitor: every halo exchange (outer double
  /// residual, inner TLow SpMV/smoothing on all levels) carries verified
  /// checksums, and the monitor's verdict lane rides the solver's existing
  /// packed reductions when opts.sdc is on. Null detaches.
  void set_sdc(SdcMonitor* monitor) {
    monitor_ = monitor;
    a_high_->set_sdc_monitor(monitor);
    a_low_->set_sdc_monitor(monitor);
    mg_low_->set_sdc_monitor(monitor);
  }

  /// Attach the per-rank fault injector (target:vec flips the double outer
  /// iterate at cycle boundaries, target:values corrupts the low-precision
  /// operator's stored nonzeros; target:halo is ChaosComm's). Null detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  SolveResult solve(Comm& comm, std::span<const double> b,
                    std::span<double> x) {
    const local_index_t n = a_high_->num_owned();
    const int m = opts_.restart;
    MultiVector<TLow> q(n, m + 1);
    AlignedVector<double> x_full(static_cast<std::size_t>(a_high_->vec_len()),
                                 0.0);
    AlignedVector<TLow> z_full(static_cast<std::size_t>(a_low_->vec_len()),
                               TLow(0));
    AlignedVector<double> r(static_cast<std::size_t>(n), 0.0);
    AlignedVector<TLow> u(static_cast<std::size_t>(n), TLow(0));
    AlignedVector<double> h(static_cast<std::size_t>(m) + 2, 0.0);
    AlignedVector<TLow> h1(static_cast<std::size_t>(m) + 1, TLow(0));
    AlignedVector<TLow> h2(static_cast<std::size_t>(m) + 1, TLow(0));
    AlignedVector<double> y(static_cast<std::size_t>(m), 0.0);
    AlignedVector<TLow> y_t(static_cast<std::size_t>(m), TLow(0));
    HessenbergQR qr(m);

    SolveResult result;
    result.final_precision = precision_of_v<TLow>;
    const SolveControl& ctl = opts_.control;
    const bool control_active = ctl.active();
    TripCause trip = TripCause::None;
    double rho0;
    {
      ScopedMotif sm(stats_, Motif::Ortho, dot_flops(n));
      rho0 = nrm2<double>(comm, b);
    }
    if (rho0 == 0.0) {
      set_all(x, 0.0);
      result.status = SolveStatus::Converged;
      return result;
    }
    for (local_index_t i = 0; i < n; ++i) {
      x_full[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
    }

    // SDC detection state. The checkpoint is the outer state a rollback
    // must restore exactly: the double iterate and the ScaleGuard scale
    // (the adaptive rung is per-segment — AdaptiveGmresIr re-enters this
    // solver per rung, so a rollback never crosses a rung boundary).
    const bool sdc_active = opts_.sdc.detect;
    const double growth_limit = sdc_growth_threshold(opts_.sdc, sizeof(TLow));
    bool sdc_flagged = false;
    double best_rel = std::numeric_limits<double>::infinity();
    AlignedVector<double> ckpt_x;
    double ckpt_scale = guard_ != nullptr ? guard_->scale() : 1.0;
    std::int64_t outer_cycle = 0;
    if (sdc_active) {
      ckpt_x = x_full;  // rollback target before the first checkpoint lands
    }

    bool aborted = false;
    // Batched-reduction state: an accepted candidate update below already
    // carries the next cycle's globally reduced ‖r‖² (and its residual, in
    // r) out of the coalesced 2-double message, so the loop top skips the
    // stand-alone recomputation on that cycle.
    AlignedVector<double> x_next;
    if (opts_.batched_reductions) {
      x_next.assign(x_full.size(), 0.0);
    }
    double rho2 = 0.0;
    bool have_rho2 = false;
    while (result.iterations < opts_.max_iters) {
      const std::int64_t cycle = outer_cycle++;
      // Scripted value faults enter here, before the outer residual, so a
      // flip at site `cycle` reaches this cycle's (unbatched) or the next
      // cycle's (batched, carried ‖r‖²) audit deterministically.
      if (injector_ != nullptr) {
        injector_->maybe_flip(
            FaultTarget::Vec,
            std::as_writable_bytes(
                std::span<double>(x_full.data(), static_cast<std::size_t>(n))),
            sizeof(double), cycle);
        std::uint64_t value_draw = 0;
        std::uint64_t bit_draw = 0;
        if (injector_->maybe_draw(FaultTarget::Values, cycle, &value_draw,
                                  &bit_draw)) {
          a_low_->corrupt_value_bit(value_draw, bit_draw,
                                    injector_->config().bit);
        }
      }
      // -- outer refinement step, REQUIRED double (alg. 3 line 7), with
      //    ‖r‖² folded into the residual sweep (fused) or recomputed in a
      //    second bit-identical pass (unfused) --------------------------
      if (!have_rho2) {
        if (control_active || sdc_active) {
          // Same local leg as residual_norm2 / residual_then_norm2, widened
          // by the trip and/or SDC verdict lanes: entry 0 of the packed Sum
          // is bit-identical to the internal scalar allreduce those entry
          // points run, the extra entries carry the deadline/cancel vote
          // (base/cancel.hpp) and the checksum verdict (base/fault.hpp) —
          // both decisions cost zero additional collectives.
          const double rho2_local =
              opts_.fused_passes
                  ? a_high_->residual_norm2_local(
                        comm, b,
                        std::span<double>(x_full.data(), x_full.size()),
                        std::span<double>(r.data(), r.size()))
                  : a_high_->residual_then_norm2_local(
                        comm, b,
                        std::span<double>(x_full.data(), x_full.size()),
                        std::span<double>(r.data(), r.size()));
          std::array<double, 3> local{};
          std::size_t lanes = 0;
          local[lanes++] = rho2_local;
          if (control_active) {
            local[lanes++] = ctl.trip_lane(comm.size());
          }
          if (sdc_active) {
            local[lanes++] = monitor_ != nullptr ? monitor_->lane() : 0.0;
          }
          std::array<double, 3> global{};
          comm.allreduce(std::span<const double>(local.data(), lanes),
                         std::span<double>(global.data(), lanes),
                         ReduceOp::Sum);
          rho2 = global[0];
          std::size_t gi = 1;
          if (control_active) {
            trip = SolveControl::decode_trip(global[gi++], comm.size());
          }
          if (sdc_active) {
            sdc_flagged = SdcMonitor::decode(global[gi]);
          }
        } else {
          rho2 = opts_.fused_passes
                     ? a_high_->residual_norm2(
                           comm, b,
                           std::span<double>(x_full.data(), x_full.size()),
                           std::span<double>(r.data(), r.size()))
                     : a_high_->residual_then_norm2(
                           comm, b,
                           std::span<double>(x_full.data(), x_full.size()),
                           std::span<double>(r.data(), r.size()));
        }
      }
      have_rho2 = false;
      const double rho = std::sqrt(rho2);
      result.relative_residual = rho / rho0;
      if (opts_.track_history) {
        result.history.push_back(result.relative_residual);
      }
      if (sdc_active) {
        // Verdict before the convergence check: a checksum flag, a
        // non-finite outer norm, or residual growth past the format-aware
        // audit threshold makes this cycle's measurement untrustworthy,
        // including an apparent convergence. Every input is
        // allreduce-derived, so all ranks roll back (or give up) together.
        const bool verdict =
            sdc_flagged || !std::isfinite(rho) ||
            (std::isfinite(best_rel) &&
             result.relative_residual > growth_limit * best_rel);
        if (verdict) {
          ++result.recoveries;
          if (result.recoveries > opts_.sdc.max_recoveries) {
            result.status = SolveStatus::Corrupted;
            break;
          }
          x_full = ckpt_x;
          if (guard_ != nullptr) {
            guard_->restore(ckpt_scale);
            sync_operator_scale();
          }
          // Unconditional re-demotion repairs target:values corruption even
          // when the checkpointed scale equals the live one (where
          // set_value_scale would no-op).
          a_low_->redemote();
          mg_low_->redemote();
          if (monitor_ != nullptr) {
            monitor_->clear();
          }
          sdc_flagged = false;
          // The rolled-back residual legitimately jumps back up; the
          // growth baseline must be re-earned, not inherited.
          best_rel = std::numeric_limits<double>::infinity();
          continue;  // loop top recomputes ‖r‖² from the restored iterate
        }
        best_rel = std::min(best_rel, result.relative_residual);
      }
      if (result.relative_residual < opts_.tol) {
        result.status = SolveStatus::Converged;
        break;
      }
      if (trip != TripCause::None) {
        // Decoded from the previous reduced lane, never from a local clock
        // read, so all ranks exit this same cycle bitwise-identically; x
        // holds the last accepted iterate. A trip outranks a pending
        // observer promotion — the caller asked us to stop, not widen.
        result.status = trip_status(trip);
        break;
      }
      if (sdc_active && cycle % opts_.sdc.checkpoint_interval == 0) {
        // Audited clean just above — safe to keep as the rollback target.
        ckpt_x = x_full;
        ckpt_scale = guard_ != nullptr ? guard_->scale() : 1.0;
      }
      // relative_residual is allreduce-derived, so the observer's decision
      // is rank-consistent without another collective.
      if (observer_ != nullptr &&
          observer_->observe_residual(result.relative_residual) ==
              CycleAction::Promote) {
        result.switch_requested = true;
        break;  // x_full is copied out below: the re-entry starts warm
      }
      // q1 = (TLow)(r / rho): one fused convert+scale pass (§3.2.5 — no
      // host round-trip, no separate conversion sweep).
      {
        ScopedMotif sm(stats_, Motif::Vector, scal_flops(n));
        auto q0 = q.column(0);
        const double inv = 1.0 / rho;
        const double* __restrict rv = r.data();
        TLow* __restrict qv = q0.data();
#pragma omp parallel for schedule(static)
        for (local_index_t i = 0; i < n; ++i) {
          qv[i] = static_cast<TLow>(rv[i] * inv);
        }
      }
      qr.reset(1.0);

      // -- inner GMRES cycle, all TLow (blue region of alg. 3) -------------
      int k_used = 0;
      bool basis_overflowed = false;
      for (int k = 0; k < m && result.iterations < opts_.max_iters; ++k) {
        mg_low_->apply(comm, q.column(k),
                       std::span<TLow>(z_full.data(), z_full.size()));
        auto w = q.column(k + 1);
        a_low_->spmv(comm, std::span<TLow>(z_full.data(), z_full.size()), w);

        // ‖w‖² folds into the second CGS2 projection pass (fused) or is
        // recomputed in a bit-identical separate sweep (unfused) — see
        // gemv_n_sub_norm.
        double beta_sq;
        {
          ScopedMotif sm(stats_, Motif::Ortho, cgs2_flops(n, k + 1));
          gemv_t(comm, q, k + 1, std::span<const TLow>(w.data(), w.size()),
                 std::span<TLow>(h1.data(), h1.size()));
          gemv_n_sub(q, k + 1, std::span<const TLow>(h1.data(), h1.size()), w);
          gemv_t(comm, q, k + 1, std::span<const TLow>(w.data(), w.size()),
                 std::span<TLow>(h2.data(), h2.size()));
          if (opts_.fused_passes) {
            beta_sq = gemv_n_sub_norm(
                q, k + 1, std::span<const TLow>(h2.data(), h2.size()), w);
          } else {
            gemv_n_sub(q, k + 1, std::span<const TLow>(h2.data(), h2.size()),
                       w);
            beta_sq = dot_span_blocked(
                std::span<const TLow>(w.data(), w.size()),
                std::span<const TLow>(w.data(), w.size()));
          }
        }
        for (int j = 0; j <= k; ++j) {
          h[static_cast<std::size_t>(j)] =
              static_cast<double>(h1[static_cast<std::size_t>(j)]) +
              static_cast<double>(h2[static_cast<std::size_t>(j)]);
        }
        double beta;
        {
          ScopedMotif sm(stats_, Motif::Ortho, normalize_flops(n));
          beta = std::sqrt(
              comm.allreduce_scalar(beta_sq, ReduceOp::Sum));
          if (beta > 0) {
            scal(static_cast<TLow>(1.0 / beta), w);
          }
        }
        h[static_cast<std::size_t>(k) + 1] = beta;

        double rho_est;
        {
          // Givens QR on the host, redundantly per rank, in double.
          ScopedMotif sm(stats_, Motif::Other);
          rho_est = qr.insert_column(k, std::span<double>(h.data(), h.size())) *
                    rho;
        }
        // fp16's narrow exponent range can blow the inner basis up to
        // inf/NaN; a poisoned beta or Hessenberg column means this whole
        // cycle is garbage — hand control to the ScaleGuard.
        if (!std::isfinite(beta) || !std::isfinite(rho_est)) {
          basis_overflowed = true;
          break;
        }
        ++result.iterations;
        k_used = k + 1;
        if (rho_est / rho0 < opts_.tol || beta == 0.0) {
          break;
        }
      }
      // Bytes were streamed for every executed Arnoldi step whether or not
      // the cycle's correction is later accepted — record them all.
      if (observer_ != nullptr && k_used > 0) {
        observer_->observe_inner_iterations(k_used);
      }
      if (basis_overflowed) {
        // basis_overflowed is decided on allreduce-derived beta/rho_est, so
        // promotion (like the guard backoff below) is rank-consistent. A
        // promoting observer outranks the guard: widening the format fixes
        // the range problem outright instead of shifting the window.
        if (observer_ != nullptr &&
            observer_->observe_non_finite() == CycleAction::Promote) {
          result.switch_requested = true;
          break;  // x untouched; the cycle retries at the promoted format
        }
        if (guard_ == nullptr || guard_->exhausted()) {
          aborted = true;  // unrecoverable: stop burning the budget
          break;
        }
        (void)guard_->on_overflow();
        sync_operator_scale();
        continue;  // x is untouched; retry the outer step at smaller scale
      }
      if (k_used == 0) {
        break;
      }

      // -- correction: u = Q y (TLow), z = M⁻¹ u (TLow), then the REQUIRED
      //    double update x += rho · z (alg. 3 lines 45–47) -----------------
      {
        ScopedMotif sm(stats_, Motif::Other);
        qr.solve(k_used, std::span<double>(y.data(), y.size()));
        for (int j = 0; j < k_used; ++j) {
          y_t[static_cast<std::size_t>(j)] =
              static_cast<TLow>(y[static_cast<std::size_t>(j)]);
        }
      }
      {
        ScopedMotif sm(stats_, Motif::Ortho,
                       2 * static_cast<flop_count_t>(n) *
                           static_cast<flop_count_t>(k_used));
        gemv_n(q, k_used, std::span<const TLow>(y_t.data(), y_t.size()),
               std::span<TLow>(u.data(), u.size()));
      }
      mg_low_->apply(comm, std::span<const TLow>(u.data(), u.size()),
                     std::span<TLow>(z_full.data(), z_full.size()));
      // alpha compensates the guard's matrix demotion scale: the inner
      // cycle solved (alpha A) z = r/rho, so the correction is rho·alpha·z.
      const double alpha = guard_ != nullptr ? guard_->scale() : 1.0;
      if (!opts_.batched_reductions) {
        // Collective vote: every rank must agree on discarding a correction,
        // or the SPMD ranks' collective schedules (and the guard's uniform
        // scale) would drift apart. beta/rho_est above are allreduce-derived
        // and therefore already rank-consistent.
        const int correction_finite = comm.allreduce_scalar(
            all_finite(std::span<const TLow>(z_full.data(),
                                             static_cast<std::size_t>(n)))
                ? 1
                : 0,
            ReduceOp::Min);
        if (correction_finite == 0) {
          // Non-finite correction: never fold it into x. Promote (observer),
          // back the scale off (guarded), or abandon the solve (unguarded).
          if (observer_ != nullptr &&
              observer_->observe_non_finite() == CycleAction::Promote) {
            result.switch_requested = true;
            break;
          }
          if (guard_ == nullptr || guard_->exhausted()) {
            aborted = true;
            break;
          }
          (void)guard_->on_overflow();
          sync_operator_scale();
          continue;
        }
        // Mixed-precision WAXPBY: double x += rho * alpha * low z, single
        // pass.
        ScopedMotif sm(stats_, Motif::Vector, waxpby_flops(n));
        axpy(rho * alpha,
             std::span<const TLow>(z_full.data(), static_cast<std::size_t>(n)),
             std::span<double>(x_full.data(), static_cast<std::size_t>(n)));
      } else {
        // Batched schedule: apply the update to a candidate x_next (copy +
        // the same axpy kernel as the unbatched path, so the arithmetic is
        // instruction-identical), evaluate its outer residual locally, and
        // let ONE 2-double Sum reduction carry both the next cycle's ‖r‖²
        // and the finite vote — each rank contributes exactly 0.0 or 1.0,
        // so all-finite ⟺ sum == size(), the same decision the unbatched
        // Min-vote takes. 2 → 1 outer reductions per cycle.
        {
          ScopedMotif sm(stats_, Motif::Vector, waxpby_flops(n));
          std::copy(x_full.begin(),
                    x_full.begin() + static_cast<std::ptrdiff_t>(n),
                    x_next.begin());
          axpy(rho * alpha,
               std::span<const TLow>(z_full.data(),
                                     static_cast<std::size_t>(n)),
               std::span<double>(x_next.data(), static_cast<std::size_t>(n)));
        }
        const double finite_local =
            all_finite(std::span<const TLow>(z_full.data(),
                                             static_cast<std::size_t>(n)))
                ? 1.0
                : 0.0;
        const double rho2_cand_local =
            opts_.fused_passes
                ? a_high_->residual_norm2_local(
                      comm, b, std::span<double>(x_next.data(), x_next.size()),
                      std::span<double>(r.data(), r.size()))
                : a_high_->residual_then_norm2_local(
                      comm, b, std::span<double>(x_next.data(), x_next.size()),
                      std::span<double>(r.data(), r.size()));
        double finite_sum;
        {
          // Extra packed lanes: the deadline/cancel trip vote and the SDC
          // verdict ride the same coalesced message; the loop top acts on
          // them next cycle.
          std::array<double, 4> local{};
          std::size_t lanes = 0;
          local[lanes++] = rho2_cand_local;
          local[lanes++] = finite_local;
          if (control_active) {
            local[lanes++] = ctl.trip_lane(comm.size());
          }
          if (sdc_active) {
            local[lanes++] = monitor_ != nullptr ? monitor_->lane() : 0.0;
          }
          std::array<double, 4> global{};
          comm.allreduce(std::span<const double>(local.data(), lanes),
                         std::span<double>(global.data(), lanes),
                         ReduceOp::Sum);
          rho2 = global[0];
          finite_sum = global[1];
          std::size_t gi = 2;
          if (control_active) {
            trip = SolveControl::decode_trip(global[gi++], comm.size());
          }
          if (sdc_active) {
            sdc_flagged = SdcMonitor::decode(global[gi]);
          }
        }
        if (finite_sum != static_cast<double>(comm.size())) {
          // Same recovery as the unbatched vote. x is untouched; r holds
          // the discarded candidate's residual, but have_rho2 == false
          // makes the loop top recompute both from x.
          if (observer_ != nullptr &&
              observer_->observe_non_finite() == CycleAction::Promote) {
            result.switch_requested = true;
            break;
          }
          if (guard_ == nullptr || guard_->exhausted()) {
            aborted = true;
            break;
          }
          (void)guard_->on_overflow();
          sync_operator_scale();
          continue;
        }
        std::swap(x_full, x_next);
        have_rho2 = true;
      }
      if (guard_ != nullptr) {
        (void)guard_->on_good_cycle();
        sync_operator_scale();
      }
    }

    if (aborted) {
      // Guard exhausted or unguarded overflow: x was never poisoned, but no
      // further progress is possible at this format. The caller (service
      // RetryPolicy) can re-run at a promoted precision.
      result.status = SolveStatus::NonFinite;
    } else if (!result.converged() && trip == TripCause::None &&
               result.status != SolveStatus::Corrupted) {
      const double rho2 =
          opts_.fused_passes
              ? a_high_->residual_norm2(
                    comm, b, std::span<double>(x_full.data(), x_full.size()),
                    std::span<double>(r.data(), r.size()))
              : a_high_->residual_then_norm2(
                    comm, b, std::span<double>(x_full.data(), x_full.size()),
                    std::span<double>(r.data(), r.size()));
      result.relative_residual = std::sqrt(rho2) / rho0;
      result.status = result.relative_residual < opts_.tol
                          ? SolveStatus::Converged
                          : SolveStatus::Stagnated;
    }
    for (local_index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = x_full[static_cast<std::size_t>(i)];
    }
    return result;
  }

  /// Many-RHS entry point: solve the B columns of `b` sequentially against
  /// the same demoted operator/hierarchy state. Column j's iteration is the
  /// exact solve() sequence, so results are bitwise identical to B
  /// independent single-RHS calls; the batch amortizes generation,
  /// coloring, ELL packing and demotion across all B solves. (A ScaleGuard
  /// backoff triggered by column j does carry its smaller scale into
  /// column j+1 — identical to B sequential calls on shared operators.)
  std::vector<SolveResult> solve_many(Comm& comm, const MultiVector<double>& b,
                                      MultiVector<double>& x) {
    HPGMX_CHECK(b.cols() == x.cols());
    std::vector<SolveResult> results;
    results.reserve(static_cast<std::size_t>(b.cols()));
    for (int j = 0; j < b.cols(); ++j) {
      results.push_back(solve(comm, b.column(j), x.column(j)));
    }
    return results;
  }

 private:
  /// Bring the low-precision operators to the guard's current absolute
  /// scale. set_value_scale re-demotes from the double source and is
  /// idempotent, so the (usual) aliasing of a_low_ with the multigrid's
  /// fine-level operator cannot double-apply a scale change.
  void sync_operator_scale() {
    mg_low_->set_value_scale(guard_->scale());
    a_low_->set_value_scale(guard_->scale());
  }

  DistOperator<double>* a_high_;
  DistOperator<TLow>* a_low_;
  Multigrid<TLow>* mg_low_;
  SolverOptions opts_;
  MotifStats* stats_ = nullptr;
  ScaleGuard* guard_ = nullptr;
  InnerCycleObserver* observer_ = nullptr;
  SdcMonitor* monitor_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace hpgmx
