// Matrix-free 27-point stencil operator — the paper's conclusion (§5) notes
// that matrix-free GMRES [Chisholm & Zingg] removes the double-precision
// matrix entirely: "Only the low-precision matrix needs to be stored ...
// for preconditioning." This operator applies the benchmark matrix from
// geometry alone (diag 26, off-diag −1∓γ), so the outer GMRES-IR residual
// can run matrix-free while the float preconditioner keeps its stored copy.
//
// Bytes per apply drop from nnz·(8+4)+O(n) to O(n) — the memory-wall win
// the paper projects for applications.
#pragma once

#include <span>

#include "base/types.hpp"
#include "comm/halo.hpp"
#include "grid/problem.hpp"

namespace hpgmx {

/// Applies y = A x for the benchmark stencil without stored coefficients.
/// Works on the same [owned | halo] vector layout as the assembled
/// DistOperator, using the problem's halo pattern for neighbor access.
template <typename T>
class StencilOperator {
 public:
  /// The problem provides geometry and the halo pattern; no matrix values
  /// are read. `tag` namespaces this operator's halo traffic.
  StencilOperator(const Problem* prob, int tag)
      : prob_(prob), halo_exchange_(&prob->halo, tag) {}

  [[nodiscard]] local_index_t num_owned() const {
    return prob_->box.num_local();
  }
  [[nodiscard]] local_index_t vec_len() const {
    return prob_->halo.vector_length();
  }

  /// y = A x; refreshes x's halo region first.
  void apply(Comm& comm, std::span<T> x, std::span<T> y) {
    halo_exchange_.exchange(comm, x);
    apply_local(std::span<const T>(x.data(), x.size()), y);
  }

  /// Local apply assuming x's halo region is already current.
  void apply_local(std::span<const T> x, std::span<T> y) const {
    const GridBox& box = prob_->box;
    const T gamma = static_cast<T>(prob_->gamma);
    const local_index_t nx = box.nx, ny = box.ny, nz = box.nz;
#pragma omp parallel for schedule(static)
    for (local_index_t k = 0; k < nz; ++k) {
      for (local_index_t j = 0; j < ny; ++j) {
        for (local_index_t i = 0; i < nx; ++i) {
          const local_index_t row = box.local_id(i, j, k);
          const global_index_t gi = box.ox + i;
          const global_index_t gj = box.oy + j;
          const global_index_t gk = box.oz + k;
          const global_index_t my_gid = box.global_id(gi, gj, gk);
          T acc = T(26) * x[static_cast<std::size_t>(row)];
          for (int dk = -1; dk <= 1; ++dk) {
            for (int dj = -1; dj <= 1; ++dj) {
              for (int di = -1; di <= 1; ++di) {
                if (di == 0 && dj == 0 && dk == 0) {
                  continue;
                }
                const global_index_t ci = gi + di;
                const global_index_t cj = gj + dj;
                const global_index_t ck = gk + dk;
                if (ci < 0 || ci >= box.gnx || cj < 0 || cj >= box.gny ||
                    ck < 0 || ck >= box.gnz) {
                  continue;
                }
                const T coeff = (box.global_id(ci, cj, ck) > my_gid)
                                    ? (T(-1) - gamma)
                                    : (T(-1) + gamma);
                acc += coeff * x[static_cast<std::size_t>(
                                  neighbor_index(i + di, j + dj, k + dk, ci,
                                                 cj, ck))];
              }
            }
          }
          y[static_cast<std::size_t>(row)] = acc;
        }
      }
    }
  }

 private:
  /// Index of a stencil neighbor: owned points map directly; points outside
  /// the box resolve through the halo pattern's recv boxes (same geometric
  /// lookup the matrix generator used for column ids).
  [[nodiscard]] local_index_t neighbor_index(local_index_t li, local_index_t lj,
                                             local_index_t lk,
                                             global_index_t gi,
                                             global_index_t gj,
                                             global_index_t gk) const {
    const GridBox& box = prob_->box;
    if (li >= 0 && li < box.nx && lj >= 0 && lj < box.ny && lk >= 0 &&
        lk < box.nz) {
      return box.local_id(li, lj, lk);
    }
    // External: find the owning neighbor's recv slot. Neighbor recv regions
    // were assigned in ascending-rank order with points in global-id order;
    // we reconstruct the same enumeration here.
    local_index_t offset = prob_->halo.n_owned;
    for (const HaloNeighbor& nb : prob_->halo.neighbors) {
      const local_index_t idx =
          recv_index_of(nb, gi, gj, gk);
      if (idx >= 0) {
        return offset + idx;
      }
      offset += nb.recv_count;
    }
    HPGMX_CHECK_MSG(false, "stencil neighbor not found in halo pattern");
    return -1;
  }

  /// Position of (gi,gj,gk) within a neighbor's recv box, or -1. The recv
  /// box is the owner's boundary layer facing this rank, derivable from the
  /// owner's process coordinates (uniform local box sizes).
  [[nodiscard]] local_index_t recv_index_of(const HaloNeighbor& nb,
                                            global_index_t gi,
                                            global_index_t gj,
                                            global_index_t gk) const {
    const GridBox& box = prob_->box;
    const ProcCoords me = prob_->pgrid.coords_of(prob_->rank);
    const ProcCoords oc = prob_->pgrid.coords_of(nb.rank);
    const auto layer = [](global_index_t owner_lo, global_index_t owner_n,
                          int d, global_index_t& lo, global_index_t& hi) {
      if (d == 0) {
        lo = owner_lo;
        hi = owner_lo + owner_n;
      } else if (d > 0) {
        lo = owner_lo;
        hi = owner_lo + 1;
      } else {
        lo = owner_lo + owner_n - 1;
        hi = owner_lo + owner_n;
      }
    };
    global_index_t xlo, xhi, ylo, yhi, zlo, zhi;
    layer(static_cast<global_index_t>(oc.x) * box.nx, box.nx, oc.x - me.x,
          xlo, xhi);
    layer(static_cast<global_index_t>(oc.y) * box.ny, box.ny, oc.y - me.y,
          ylo, yhi);
    layer(static_cast<global_index_t>(oc.z) * box.nz, box.nz, oc.z - me.z,
          zlo, zhi);
    if (gi < xlo || gi >= xhi || gj < ylo || gj >= yhi || gk < zlo ||
        gk >= zhi) {
      return -1;
    }
    return static_cast<local_index_t>(
        (gi - xlo) + (xhi - xlo) * ((gj - ylo) + (yhi - ylo) * (gk - zlo)));
  }

  const Problem* prob_;
  HaloExchange<T> halo_exchange_;
};

}  // namespace hpgmx
