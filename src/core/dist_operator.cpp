#include "core/dist_operator.hpp"

namespace hpgmx {

OperatorStructure build_structure(const Problem& prob, std::uint64_t seed,
                                  ColoringMode mode) {
  OperatorStructure s;
  s.halo = prob.halo;
  const CsrMatrix<double>& a = prob.a;

  std::vector<int> colors;
  switch (mode) {
    case ColoringMode::Geometric:
      colors = geometric_color(prob.box.nx, prob.box.ny, prob.box.nz);
      break;
    case ColoringMode::Jpl:
      colors = jpl_color(a, seed, JplPolicy::MinAvailable);
      break;
    case ColoringMode::Greedy:
      colors = greedy_color(a);
      break;
  }
  HPGMX_CHECK(coloring_is_valid(a.num_rows, a.row_ptr, a.col_idx, colors));
  s.num_colors = num_colors(colors);
  s.colors = color_partition(colors);

  // Boundary rows read at least one halo column; everything else is
  // interior and can be processed while the halo exchange is in flight.
  std::vector<char> is_boundary(static_cast<std::size_t>(a.num_rows), 0);
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    for (const local_index_t c : a.row_cols(r)) {
      if (c >= a.num_owned_cols) {
        is_boundary[static_cast<std::size_t>(r)] = 1;
        break;
      }
    }
  }
  for (local_index_t r = 0; r < a.num_rows; ++r) {
    if (is_boundary[static_cast<std::size_t>(r)]) {
      s.boundary_rows.push_back(r);
    } else {
      s.interior_rows.push_back(r);
    }
  }

  // Per-color interior/boundary splits, preserving color order.
  for (int c = 0; c < s.colors.num_groups(); ++c) {
    AlignedVector<local_index_t> interior, boundary;
    for (const local_index_t r : s.colors.group(c)) {
      if (is_boundary[static_cast<std::size_t>(r)]) {
        boundary.push_back(r);
      } else {
        interior.push_back(r);
      }
    }
    s.colors_interior.add_group(
        std::span<const local_index_t>(interior.data(), interior.size()));
    s.colors_boundary.add_group(
        std::span<const local_index_t>(boundary.data(), boundary.size()));
  }

  s.level_schedule = build_lower_level_schedule(a);
  return s;
}

}  // namespace hpgmx
