// MPI-backed communicator: the Comm interface on real ranks under mpirun.
//
// Compiled only when HPGMX_WITH_MPI=ON (the default build has no MPI
// dependency; runtime selection of an MPI world without it throws a clear
// error from make_comm_world). Collectives keep the repo's determinism
// contract — contributions combined in rank order through the registered
// type_ops, NOT MPI_Allreduce, whose reduction order is unspecified — so a
// fixed-size run is bit-identical across backends, and the 2-byte bf16/fp16
// payloads ride through the same descriptors as in-process traffic.
#pragma once

#ifdef HPGMX_WITH_MPI

#include <vector>

#include "comm/comm.hpp"

namespace hpgmx {

/// One rank of MPI_COMM_WORLD. Construction initializes MPI on first use
/// (finalized at process exit); all instances alias the world communicator.
class MpiComm final : public Comm {
 public:
  MpiComm();

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return size_; }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override;
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override;
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override;
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes) override;

  void barrier() override;
  void allreduce_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops, ReduceOp op) override;
  void allgather_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops) override;
  void bcast_bytes(void* data, std::size_t n, const detail::TypeOps& ops,
                   int root) override;

 private:
  int rank_ = 0;
  int size_ = 1;
  /// Rank-0 staging area for the gather-reduce-bcast allreduce.
  std::vector<std::byte> gather_buf_;
};

}  // namespace hpgmx

#endif  // HPGMX_WITH_MPI
