// Pluggable SPMD backends behind one launch interface.
//
// A CommWorld owns "where the ranks live" — in this process (SelfComm,
// ThreadComm) or across processes (MpiComm under mpirun) — and launches SPMD
// regions on them, so the benchmark driver is written once against
// execute(fn) instead of hard-wiring ThreadCommWorld. The split matters for
// MPI: there each process hosts exactly ONE rank, so per-rank host-side
// state must be indexed by local slot (slot_of) rather than by global rank.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "comm/comm.hpp"

namespace hpgmx {

/// Which communicator implementation an SPMD region runs on (HPGMX_COMM).
enum class CommBackend {
  Self,    ///< one rank, no threads (serial runs, unit tests)
  Thread,  ///< P virtual ranks on std::threads in one process (default)
  Mpi,     ///< real MPI ranks under mpirun (requires HPGMX_WITH_MPI=ON)
};

[[nodiscard]] constexpr const char* comm_backend_name(CommBackend b) {
  switch (b) {
    case CommBackend::Self: return "self";
    case CommBackend::Thread: return "thread";
    case CommBackend::Mpi: return "mpi";
  }
  return "?";
}

/// Parse the HPGMX_COMM tokens: "self" | "thread" | "mpi".
[[nodiscard]] inline std::optional<CommBackend> parse_comm_backend(
    std::string_view s) {
  if (s == "self") {
    return CommBackend::Self;
  }
  if (s == "thread" || s == "threads") {
    return CommBackend::Thread;
  }
  if (s == "mpi") {
    return CommBackend::Mpi;
  }
  return std::nullopt;
}

/// A fixed-size SPMD world: launches fn(comm) on every rank and says which
/// of those ranks live in this process (the "local slots").
class CommWorld {
 public:
  virtual ~CommWorld() = default;

  [[nodiscard]] virtual CommBackend backend() const = 0;
  /// Global rank count of the SPMD region.
  [[nodiscard]] virtual int size() const = 0;
  /// Ranks hosted by this process: size() for the in-process backends, 1
  /// under MPI.
  [[nodiscard]] virtual int local_count() const = 0;
  /// Global rank of local slot `slot` (0 <= slot < local_count()).
  [[nodiscard]] virtual int local_rank(int slot) const = 0;
  /// Local slot of a global rank hosted here; callers inside execute() use
  /// slot_of(comm.rank()) to index per-rank host arrays.
  [[nodiscard]] virtual int slot_of(int global_rank) const = 0;

  /// Run fn on every rank of the world; returns when the local ranks have
  /// finished (all ranks, for the in-process backends). Rank exceptions
  /// propagate in rank order.
  virtual void execute(const std::function<void(Comm&)>& fn) = 0;
};

/// Build a world of `ranks` global ranks on the given backend. Self requires
/// ranks == 1; Mpi requires the binary to run under mpirun with exactly
/// `ranks` processes (and HPGMX_WITH_MPI=ON at build time — a clear error is
/// thrown otherwise).
[[nodiscard]] std::unique_ptr<CommWorld> make_comm_world(CommBackend backend,
                                                         int ranks);

/// True when the binary was compiled with HPGMX_WITH_MPI=ON.
[[nodiscard]] bool mpi_compiled();
/// MPI_COMM_WORLD size/rank, initializing MPI on first use. Without MPI
/// compiled in (or outside mpirun) these report a 1-rank world.
[[nodiscard]] int mpi_world_size();
[[nodiscard]] int mpi_world_rank();

}  // namespace hpgmx
