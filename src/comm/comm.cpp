#include "comm/comm.hpp"

#include <algorithm>
#include <cstring>

#include "precision/float16.hpp"

namespace hpgmx {
namespace detail {

template <typename T>
static void reduce_typed(void* acc, const void* in, std::size_t n,
                         ReduceOp op) {
  T* a = static_cast<T*>(acc);
  const T* b = static_cast<const T*>(in);
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) {
        a[i] += b[i];
      }
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = std::max(a[i], b[i]);
      }
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = std::min(a[i], b[i]);
      }
      break;
  }
}

template <typename T>
const TypeOps& type_ops() {
  static const TypeOps ops{sizeof(T), &reduce_typed<T>};
  return ops;
}

template const TypeOps& type_ops<float>();
template const TypeOps& type_ops<double>();
// 16-bit formats reduce elementwise through their float-promoted compound
// operators; payload stays 2 bytes per value on the wire.
template const TypeOps& type_ops<bf16_t>();
template const TypeOps& type_ops<fp16_t>();
template const TypeOps& type_ops<std::int32_t>();
template const TypeOps& type_ops<std::int64_t>();
template const TypeOps& type_ops<std::uint64_t>();

}  // namespace detail

namespace {

/// Request that completed at creation time (eager sends, self messaging).
class CompletedRequest final : public Request::State {
 public:
  void wait() override {}
};

}  // namespace

void SelfComm::send_bytes(int dst, int tag, const void* data,
                          std::size_t bytes) {
  HPGMX_CHECK_MSG(dst == 0, "SelfComm can only message rank 0");
  Pending p;
  p.tag = tag;
  p.data.resize(bytes);
  std::memcpy(p.data.data(), data, bytes);
  queue_.push_back(std::move(p));
}

void SelfComm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  HPGMX_CHECK_MSG(src == 0, "SelfComm can only message rank 0");
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [tag](const Pending& p) { return p.tag == tag; });
  HPGMX_CHECK_MSG(it != queue_.end(),
                  "SelfComm::recv with no matching pending self-send");
  HPGMX_CHECK(it->data.size() == bytes);
  std::memcpy(data, it->data.data(), bytes);
  queue_.erase(it);
}

Request SelfComm::isend_bytes(int dst, int tag, const void* data,
                              std::size_t bytes) {
  send_bytes(dst, tag, data, bytes);
  return Request(std::make_shared<CompletedRequest>());
}

namespace {

/// Deferred self-receive: the matching send may be posted after the irecv,
/// so the copy happens at wait() time.
class SelfRecvRequest final : public Request::State {
 public:
  SelfRecvRequest(SelfComm* comm, int tag, void* data, std::size_t bytes)
      : comm_(comm), tag_(tag), data_(data), bytes_(bytes) {}
  void wait() override { comm_->recv_bytes(0, tag_, data_, bytes_); }

 private:
  SelfComm* comm_;
  int tag_;
  void* data_;
  std::size_t bytes_;
};

}  // namespace

Request SelfComm::irecv_bytes(int src, int tag, void* data,
                              std::size_t bytes) {
  HPGMX_CHECK_MSG(src == 0, "SelfComm can only message rank 0");
  return Request(std::make_shared<SelfRecvRequest>(this, tag, data, bytes));
}

void SelfComm::allreduce_bytes(const void* in, void* out, std::size_t n,
                               const detail::TypeOps& ops, ReduceOp) {
  std::memcpy(out, in, n * ops.size);
}

void SelfComm::allgather_bytes(const void* in, void* out, std::size_t n,
                               const detail::TypeOps& ops) {
  std::memcpy(out, in, n * ops.size);
}

}  // namespace hpgmx
