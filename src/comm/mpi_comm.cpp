// MpiComm implementation plus the MPI half of comm_world.hpp's free
// functions (mpi_compiled / mpi_world_*); their no-MPI stubs live in
// comm_world.cpp behind the inverse #ifdef.
#include "comm/mpi_comm.hpp"

#ifdef HPGMX_WITH_MPI

#include <mpi.h>

#include <climits>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "comm/comm_world.hpp"

namespace hpgmx {

namespace {

void check_mpi(int err, const char* what) {
  HPGMX_CHECK_MSG(err == MPI_SUCCESS,
                  "MPI error " << err << " from " << what);
}

[[nodiscard]] int as_count(std::size_t bytes, const char* what) {
  HPGMX_CHECK_MSG(bytes <= static_cast<std::size_t>(INT_MAX),
                  what << ": message of " << bytes
                       << " bytes exceeds the MPI int count range");
  return static_cast<int>(bytes);
}

/// MPI is initialized lazily on first comm use and finalized at process
/// exit, so binaries that never select the MPI backend (the default) pay
/// nothing even when built with HPGMX_WITH_MPI=ON.
void mpi_init_once() {
  int initialized = 0;
  check_mpi(MPI_Initialized(&initialized), "MPI_Initialized");
  if (initialized != 0) {
    return;
  }
  int provided = 0;
  // FUNNELED: only the thread that initialized MPI makes MPI calls. The
  // SPMD body runs on the main thread (MpiWorld::execute calls fn inline);
  // OpenMP worker threads never touch the communicator.
  check_mpi(MPI_Init_thread(nullptr, nullptr, MPI_THREAD_FUNNELED, &provided),
            "MPI_Init_thread");
  std::atexit([] {
    int finalized = 0;
    MPI_Finalized(&finalized);
    if (finalized == 0) {
      MPI_Finalize();
    }
  });
}

class MpiRequestState final : public Request::State {
 public:
  explicit MpiRequestState(MPI_Request req) : req_(req) {}
  void wait() override {
    if (req_ != MPI_REQUEST_NULL) {
      check_mpi(MPI_Wait(&req_, MPI_STATUS_IGNORE), "MPI_Wait");
    }
  }

 private:
  MPI_Request req_ = MPI_REQUEST_NULL;
};

}  // namespace

bool mpi_compiled() { return true; }

int mpi_world_size() {
  mpi_init_once();
  int size = 1;
  check_mpi(MPI_Comm_size(MPI_COMM_WORLD, &size), "MPI_Comm_size");
  return size;
}

int mpi_world_rank() {
  mpi_init_once();
  int rank = 0;
  check_mpi(MPI_Comm_rank(MPI_COMM_WORLD, &rank), "MPI_Comm_rank");
  return rank;
}

MpiComm::MpiComm() {
  mpi_init_once();
  check_mpi(MPI_Comm_rank(MPI_COMM_WORLD, &rank_), "MPI_Comm_rank");
  check_mpi(MPI_Comm_size(MPI_COMM_WORLD, &size_), "MPI_Comm_size");
}

void MpiComm::send_bytes(int dst, int tag, const void* data,
                         std::size_t bytes) {
  check_mpi(MPI_Send(data, as_count(bytes, "send"), MPI_BYTE, dst, tag,
                     MPI_COMM_WORLD),
            "MPI_Send");
}

void MpiComm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  check_mpi(MPI_Recv(data, as_count(bytes, "recv"), MPI_BYTE, src, tag,
                     MPI_COMM_WORLD, MPI_STATUS_IGNORE),
            "MPI_Recv");
}

Request MpiComm::isend_bytes(int dst, int tag, const void* data,
                             std::size_t bytes) {
  MPI_Request req = MPI_REQUEST_NULL;
  check_mpi(MPI_Isend(data, as_count(bytes, "isend"), MPI_BYTE, dst, tag,
                      MPI_COMM_WORLD, &req),
            "MPI_Isend");
  return Request(std::make_shared<MpiRequestState>(req));
}

Request MpiComm::irecv_bytes(int src, int tag, void* data, std::size_t bytes) {
  MPI_Request req = MPI_REQUEST_NULL;
  check_mpi(MPI_Irecv(data, as_count(bytes, "irecv"), MPI_BYTE, src, tag,
                      MPI_COMM_WORLD, &req),
            "MPI_Irecv");
  return Request(std::make_shared<MpiRequestState>(req));
}

void MpiComm::barrier() {
  check_mpi(MPI_Barrier(MPI_COMM_WORLD), "MPI_Barrier");
}

void MpiComm::allreduce_bytes(const void* in, void* out, std::size_t n,
                              const detail::TypeOps& ops, ReduceOp op) {
  // Gather to rank 0, combine in rank order through the registered type
  // descriptor, broadcast the result. MPI_Allreduce would be faster but its
  // combine order is unspecified, which breaks the bit-reproducibility
  // contract the in-process backends honor (and MPI has no built-in bf16/
  // fp16 types anyway — this path reduces any registered 2-byte format).
  const std::size_t bytes = n * ops.size;
  const int count = as_count(bytes, "allreduce");
  if (rank_ == 0) {
    gather_buf_.resize(bytes * static_cast<std::size_t>(size_));
  }
  check_mpi(MPI_Gather(in, count, MPI_BYTE, gather_buf_.data(), count,
                       MPI_BYTE, 0, MPI_COMM_WORLD),
            "MPI_Gather");
  if (rank_ == 0) {
    std::memcpy(out, gather_buf_.data(), bytes);
    for (int r = 1; r < size_; ++r) {
      ops.reduce(out, gather_buf_.data() + static_cast<std::size_t>(r) * bytes,
                 n, op);
    }
  }
  check_mpi(MPI_Bcast(out, count, MPI_BYTE, 0, MPI_COMM_WORLD), "MPI_Bcast");
}

void MpiComm::allgather_bytes(const void* in, void* out, std::size_t n,
                              const detail::TypeOps& ops) {
  const int count = as_count(n * ops.size, "allgather");
  check_mpi(MPI_Allgather(in, count, MPI_BYTE, out, count, MPI_BYTE,
                          MPI_COMM_WORLD),
            "MPI_Allgather");
}

void MpiComm::bcast_bytes(void* data, std::size_t n, const detail::TypeOps& ops,
                          int root) {
  check_mpi(MPI_Bcast(data, as_count(n * ops.size, "bcast"), MPI_BYTE, root,
                      MPI_COMM_WORLD),
            "MPI_Bcast");
}

}  // namespace hpgmx

#endif  // HPGMX_WITH_MPI
