// Deterministic, seed-driven fault injection over any Comm.
//
// ChaosComm promotes the test-only FaultyComm idioms (tests/comm_doubles.hpp)
// into a first-class layer the service, the stress suite, the sanitizer
// lanes, and bench/exp_resilience.cpp can all enable from the environment:
//
//   HPGMX_CHAOS=delay:0.25,reorder:0.5,slow_rank:1   HPGMX_CHAOS_SEED=42
//
// Faults are timing-and-ordering perturbations only — values are never
// altered, dropped, or duplicated. (The one deliberate exception: when a
// FaultInjector with target:halo is attached, received point-to-point
// payloads — halo traffic — get seeded bit flips after the inner receive
// completes. That is the SDC harness's entry point, see base/fault.hpp;
// without an attached injector the layer stays bit-transparent.)
//
//   reorder:p    sends are withheld and delivered at this rank's next
//                progress point (a blocking receive, a wait on a
//                nonblocking receive, or any collective); each flush
//                delivers in reverse posting order with probability p.
//                Matching stays by (src, tag), so code correct under MPI's
//                non-overtaking guarantee produces identical bits — the
//                property the FaultyComm solver tests already assert.
//   delay:p      each completed receive holds the waiter for delay_us
//                microseconds with probability p (late completion).
//   slow_rank:r  rank r sleeps slow_us before every collective (a
//                persistent straggler, the load-imbalance stressor).
//
// Determinism: every probabilistic decision is drawn from the stateless
// splitmix64 stream hash_rand(seed ^ rank-salt, draw-counter). A rank's
// draw sequence depends only on (seed, rank, its own operation order), and
// an SPMD rank's operation order is itself deterministic, so two runs with
// the same seed inject faults at exactly the same points — and because
// faults never change values, solver results are bit-identical with chaos
// on, off, or reseeded. Each rank wraps its own ChaosComm instance; there
// is no cross-rank shared state, so the layer is TSan-clean by design.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/fault.hpp"
#include "base/rng.hpp"
#include "comm/comm.hpp"

namespace hpgmx {

struct ChaosConfig {
  double delay_prob = 0.0;    ///< P(hold a completed receive)
  double reorder_prob = 0.0;  ///< P(a flush delivers in reverse order)
  int slow_rank = -1;         ///< straggler rank (-1 = none)
  int delay_us = 50;          ///< held-receive sleep (delay_us: key)
  int slow_us = 200;          ///< straggler pre-collective sleep (slow_us:)
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;  ///< HPGMX_CHAOS_SEED

  [[nodiscard]] bool enabled() const {
    return delay_prob > 0.0 || reorder_prob > 0.0 || slow_rank >= 0;
  }

  /// Parse "delay:p,reorder:p,slow_rank:r[,delay_us:n][,slow_us:n]".
  /// Throws hpgmx::Error on unknown keys or out-of-range values.
  [[nodiscard]] static ChaosConfig parse(std::string_view spec);

  /// HPGMX_CHAOS (spec) + HPGMX_CHAOS_SEED; disabled config when unset.
  [[nodiscard]] static ChaosConfig from_env();

  /// Canonical spec string (round-trips through parse); "off" if disabled.
  [[nodiscard]] std::string to_string() const;
};

/// The fault-injecting wrapper. One instance per rank, wrapping that rank's
/// inner Comm; destruction flushes any still-withheld sends.
class ChaosComm final : public Comm {
 public:
  ChaosComm(Comm& inner, const ChaosConfig& cfg,
            FaultInjector* fault = nullptr)
      : inner_(&inner),
        cfg_(cfg),
        fault_(fault),
        // Per-rank stream salt: distinct ranks draw independent sequences
        // from one seed without sharing any generator state.
        stream_(splitmix64(cfg.seed) ^
                splitmix64(0xC2B2AE3D27D4EB4FULL *
                           (static_cast<std::uint64_t>(inner.rank()) + 1))) {}

  ~ChaosComm() override { flush(); }
  ChaosComm(const ChaosComm&) = delete;
  ChaosComm& operator=(const ChaosComm&) = delete;

  [[nodiscard]] int rank() const override { return inner_->rank(); }
  [[nodiscard]] int size() const override { return inner_->size(); }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override {
    if (cfg_.reorder_prob > 0.0) {
      withhold(dst, tag, data, bytes);
    } else {
      inner_->send_bytes(dst, tag, data, bytes);
    }
  }
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override {
    flush();
    inner_->recv_bytes(src, tag, data, bytes);
    maybe_corrupt(data, bytes);
    maybe_delay();
  }
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override {
    if (cfg_.reorder_prob > 0.0) {
      // Eager completion (the legal extreme of MPI's eager protocol): the
      // payload is copied into the withheld buffer, so the returned request
      // has nothing left to wait for.
      withhold(dst, tag, data, bytes);
      return Request{};
    }
    return inner_->isend_bytes(dst, tag, data, bytes);
  }
  Request irecv_bytes(int src, int tag, void* data,
                      std::size_t bytes) override {
    return Request(std::make_shared<PerturbedRecv>(
        this, inner_->irecv_bytes(src, tag, data, bytes), data, bytes));
  }

  void barrier() override {
    before_collective();
    inner_->barrier();
  }
  void allreduce_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops, ReduceOp op) override {
    before_collective();
    inner_->allreduce_bytes(in, out, n, ops, op);
  }
  void allgather_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops) override {
    before_collective();
    inner_->allgather_bytes(in, out, n, ops);
  }
  void bcast_bytes(void* data, std::size_t n, const detail::TypeOps& ops,
                   int root) override {
    before_collective();
    inner_->bcast_bytes(data, n, ops, root);
  }

  /// Deliver every withheld send; one draw decides whether this flush
  /// reverses posting order (within one flush window the codebase never
  /// posts two sends to the same (dst, tag), so reversal preserves
  /// per-(src, tag) non-overtaking — see FaultyComm).
  void flush() {
    if (pending_.empty()) {
      return;
    }
    std::vector<PendingSend> batch;
    batch.swap(pending_);
    if (next_unit() < cfg_.reorder_prob) {
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        inner_->send_bytes(it->dst, it->tag, it->data.data(),
                           it->data.size());
      }
    } else {
      for (const PendingSend& p : batch) {
        inner_->send_bytes(p.dst, p.tag, p.data.data(), p.data.size());
      }
    }
  }

  /// Probabilistic decisions drawn so far (observability/testing).
  [[nodiscard]] std::uint64_t draws() const { return draws_; }

 private:
  struct PendingSend {
    int dst = 0;
    int tag = 0;
    std::vector<std::byte> data;
  };

  /// wait(): release withheld sends first (two chaotic ranks waiting on
  /// each other must not both sit on undelivered messages), complete the
  /// inner receive, corrupt the landed payload if a halo fault is armed,
  /// then perhaps hold the waiter.
  class PerturbedRecv final : public Request::State {
   public:
    PerturbedRecv(ChaosComm* owner, Request inner, void* data,
                  std::size_t bytes)
        : owner_(owner), inner_(std::move(inner)), data_(data),
          bytes_(bytes) {}
    void wait() override {
      owner_->flush();
      inner_.wait();
      owner_->maybe_corrupt(data_, bytes_);
      owner_->maybe_delay();
    }

   private:
    ChaosComm* owner_;
    Request inner_;
    void* data_;
    std::size_t bytes_ = 0;
  };

  void withhold(int dst, int tag, const void* data, std::size_t bytes) {
    PendingSend p;
    p.dst = dst;
    p.tag = tag;
    p.data.resize(bytes);
    std::memcpy(p.data.data(), data, bytes);
    pending_.push_back(std::move(p));
  }

  /// Point-to-point traffic in the solvers is exclusively halo exchange, so
  /// a landed receive is exactly the halo-payload fault site. Byte-granular
  /// (elem_bytes = 1): the wire format is opaque at this layer.
  void maybe_corrupt(void* data, std::size_t bytes) {
    if (fault_ != nullptr && fault_->armed(FaultTarget::Halo)) {
      fault_->maybe_flip(FaultTarget::Halo,
                         {static_cast<std::byte*>(data), bytes}, 1);
    }
  }

  void maybe_delay() {
    if (cfg_.delay_prob > 0.0 && next_unit() < cfg_.delay_prob) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.delay_us));
    }
  }

  void before_collective() {
    flush();
    if (cfg_.slow_rank == rank() && cfg_.slow_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.slow_us));
    }
  }

  [[nodiscard]] double next_unit() { return unit_rand(stream_, draws_++); }

  Comm* inner_;
  ChaosConfig cfg_;
  FaultInjector* fault_;
  std::uint64_t stream_;
  std::uint64_t draws_ = 0;
  std::vector<PendingSend> pending_;
};

}  // namespace hpgmx
