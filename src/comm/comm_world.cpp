#include "comm/comm_world.hpp"

#include "comm/thread_comm.hpp"

#ifdef HPGMX_WITH_MPI
#include "comm/mpi_comm.hpp"
#endif

namespace hpgmx {

namespace {

class SelfWorld final : public CommWorld {
 public:
  [[nodiscard]] CommBackend backend() const override {
    return CommBackend::Self;
  }
  [[nodiscard]] int size() const override { return 1; }
  [[nodiscard]] int local_count() const override { return 1; }
  [[nodiscard]] int local_rank(int slot) const override {
    HPGMX_CHECK(slot == 0);
    return 0;
  }
  [[nodiscard]] int slot_of(int global_rank) const override {
    HPGMX_CHECK(global_rank == 0);
    return 0;
  }
  void execute(const std::function<void(Comm&)>& fn) override {
    SelfComm comm;
    fn(comm);
  }
};

class ThreadWorld final : public CommWorld {
 public:
  explicit ThreadWorld(int ranks) : ranks_(ranks) {}
  [[nodiscard]] CommBackend backend() const override {
    return CommBackend::Thread;
  }
  [[nodiscard]] int size() const override { return ranks_; }
  [[nodiscard]] int local_count() const override { return ranks_; }
  [[nodiscard]] int local_rank(int slot) const override { return slot; }
  [[nodiscard]] int slot_of(int global_rank) const override {
    return global_rank;
  }
  void execute(const std::function<void(Comm&)>& fn) override {
    ThreadCommWorld::execute(ranks_, fn);
  }

 private:
  int ranks_;
};

#ifdef HPGMX_WITH_MPI
class MpiWorld final : public CommWorld {
 public:
  MpiWorld() : rank_(mpi_world_rank()), size_(mpi_world_size()) {}
  [[nodiscard]] CommBackend backend() const override {
    return CommBackend::Mpi;
  }
  [[nodiscard]] int size() const override { return size_; }
  [[nodiscard]] int local_count() const override { return 1; }
  [[nodiscard]] int local_rank(int slot) const override {
    HPGMX_CHECK(slot == 0);
    return rank_;
  }
  [[nodiscard]] int slot_of(int global_rank) const override {
    HPGMX_CHECK_MSG(global_rank == rank_,
                    "rank " << global_rank
                            << " is not hosted by this process (rank " << rank_
                            << ")");
    return 0;
  }
  void execute(const std::function<void(Comm&)>& fn) override {
    MpiComm comm;
    fn(comm);
  }

 private:
  int rank_;
  int size_;
};
#endif  // HPGMX_WITH_MPI

}  // namespace

std::unique_ptr<CommWorld> make_comm_world(CommBackend backend, int ranks) {
  HPGMX_CHECK(ranks >= 1);
  switch (backend) {
    case CommBackend::Self:
      HPGMX_CHECK_MSG(ranks == 1,
                      "HPGMX_COMM=self hosts exactly 1 rank, not " << ranks
                          << " — use the thread or mpi backend");
      return std::make_unique<SelfWorld>();
    case CommBackend::Thread:
      return std::make_unique<ThreadWorld>(ranks);
    case CommBackend::Mpi:
#ifdef HPGMX_WITH_MPI
    {
      auto world = std::make_unique<MpiWorld>();
      HPGMX_CHECK_MSG(world->size() == ranks,
                      "HPGMX_COMM=mpi world has " << world->size()
                          << " rank(s) but " << ranks
                          << " were requested — launch with mpirun -np "
                          << ranks << " (callers should size the run from "
                             "mpi_world_size())");
      return world;
    }
#else
      HPGMX_CHECK_MSG(false,
                      "HPGMX_COMM=mpi requires a build with "
                      "-DHPGMX_WITH_MPI=ON (this binary was built without "
                      "MPI support)");
#endif
  }
  HPGMX_CHECK_MSG(false, "unknown comm backend");
  return nullptr;
}

#ifndef HPGMX_WITH_MPI
bool mpi_compiled() { return false; }
int mpi_world_size() { return 1; }
int mpi_world_rank() { return 0; }
#endif

}  // namespace hpgmx
