// In-process SPMD world: P virtual ranks, each a std::thread, exchanging
// messages through shared mailboxes.
//
// This is the repo's substitute for MPI (see DESIGN.md §2). The semantics
// mirror MPI's eager protocol: sends buffer and complete immediately;
// receives match on (source, tag) in posting order. Collectives combine
// contributions in rank order, making results bit-reproducible at fixed P.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/comm.hpp"

namespace hpgmx {

class ThreadCommWorld;

/// Per-rank communicator handle into a ThreadCommWorld. Created by the world;
/// valid only inside the function passed to ThreadCommWorld::run.
class ThreadComm final : public Comm {
 public:
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override;

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override;
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override;
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override;
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes) override;

  void barrier() override;
  void allreduce_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops, ReduceOp op) override;
  void allgather_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops) override;
  void bcast_bytes(void* data, std::size_t n, const detail::TypeOps& ops,
                   int root) override;

 private:
  friend class ThreadCommWorld;
  ThreadComm(ThreadCommWorld* world, int rank) : world_(world), rank_(rank) {}

  ThreadCommWorld* world_;
  int rank_;
};

/// Owns the shared state of a P-rank virtual machine and launches SPMD
/// regions on it.
class ThreadCommWorld {
 public:
  explicit ThreadCommWorld(int size);
  ~ThreadCommWorld();

  ThreadCommWorld(const ThreadCommWorld&) = delete;
  ThreadCommWorld& operator=(const ThreadCommWorld&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Run `fn(comm)` on every rank concurrently; returns when all ranks have
  /// finished. If any rank throws, the first exception (by rank order) is
  /// rethrown here after all threads joined.
  void run(const std::function<void(Comm&)>& fn);

  /// One-shot convenience: build a world of `size` ranks and run `fn`.
  static void execute(int size, const std::function<void(Comm&)>& fn);

 private:
  friend class ThreadComm;

  struct Message {
    int src = -1;
    int tag = 0;
    std::vector<std::byte> data;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  /// Shared payload state for rank-ordered deterministic collectives.
  struct CollectiveState {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::vector<std::byte>> slots;  // one per rank
    std::vector<std::byte> result;
    int arrived = 0;
    std::uint64_t generation = 0;
  };

  void post_message(int dst, Message msg);
  void match_receive(int self, int src, int tag, void* data,
                     std::size_t bytes);

  // Collective engine: each rank deposits `in` into its slot; the last
  // arriver combines slots in rank order via `combine` and publishes the
  // result; everyone copies `out_bytes` of the result to `out`.
  void collective(int self, const void* in, std::size_t in_bytes, void* out,
                  std::size_t out_bytes,
                  const std::function<void(CollectiveState&)>& combine);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveState coll_;
};

}  // namespace hpgmx
