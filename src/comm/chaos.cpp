#include "comm/chaos.hpp"

#include <charconv>
#include <cstdio>

#include "base/error.hpp"
#include "base/options.hpp"

namespace hpgmx {

namespace {

double parse_double_field(std::string_view key, std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  HPGMX_CHECK_MSG(ec == std::errc{} && ptr == value.data() + value.size(),
                  "HPGMX_CHAOS: bad value '" << std::string(value) << "' for "
                                             << std::string(key));
  return out;
}

int parse_int_field(std::string_view key, std::string_view value) {
  int out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  HPGMX_CHECK_MSG(ec == std::errc{} && ptr == value.data() + value.size(),
                  "HPGMX_CHAOS: bad value '" << std::string(value) << "' for "
                                             << std::string(key));
  return out;
}

}  // namespace

ChaosConfig ChaosConfig::parse(std::string_view spec) {
  ChaosConfig cfg;
  if (spec.empty() || spec == "off") {
    return cfg;
  }
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t colon = field.find(':');
    HPGMX_CHECK_MSG(colon != std::string_view::npos,
                    "HPGMX_CHAOS: field '" << std::string(field)
                                           << "' is not key:value");
    const std::string_view key = field.substr(0, colon);
    const std::string_view value = field.substr(colon + 1);
    if (key == "delay") {
      cfg.delay_prob = parse_double_field(key, value);
      HPGMX_CHECK_MSG(cfg.delay_prob >= 0.0 && cfg.delay_prob <= 1.0,
                      "HPGMX_CHAOS: delay probability must be in [0,1]");
    } else if (key == "reorder") {
      cfg.reorder_prob = parse_double_field(key, value);
      HPGMX_CHECK_MSG(cfg.reorder_prob >= 0.0 && cfg.reorder_prob <= 1.0,
                      "HPGMX_CHAOS: reorder probability must be in [0,1]");
    } else if (key == "slow_rank") {
      cfg.slow_rank = parse_int_field(key, value);
    } else if (key == "delay_us") {
      cfg.delay_us = parse_int_field(key, value);
      HPGMX_CHECK_MSG(cfg.delay_us >= 0, "HPGMX_CHAOS: delay_us must be >= 0");
    } else if (key == "slow_us") {
      cfg.slow_us = parse_int_field(key, value);
      HPGMX_CHECK_MSG(cfg.slow_us >= 0, "HPGMX_CHAOS: slow_us must be >= 0");
    } else {
      HPGMX_CHECK_MSG(false, "HPGMX_CHAOS: unknown key '" << std::string(key)
                                                          << "'");
    }
  }
  return cfg;
}

ChaosConfig ChaosConfig::from_env() {
  ChaosConfig cfg;
  if (const auto spec = env_string("HPGMX_CHAOS")) {
    cfg = parse(*spec);
  }
  cfg.seed = static_cast<std::uint64_t>(env_int_or(
      "HPGMX_CHAOS_SEED", static_cast<std::int64_t>(cfg.seed)));
  return cfg;
}

std::string ChaosConfig::to_string() const {
  if (!enabled()) {
    return "off";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "delay:%.17g,reorder:%.17g,slow_rank:%d,delay_us:%d,slow_us:%d",
                delay_prob, reorder_prob, slow_rank, delay_us, slow_us);
  return buf;
}

}  // namespace hpgmx
