// Message-passing interface for SPMD execution.
//
// This mirrors the MPI subset the HPG-MxP benchmark uses: tagged
// point-to-point messages (halo exchange), nonblocking variants (overlap),
// and collectives (dot-product allreduce, validation allgather). Two
// implementations exist: SelfComm (one rank, no threads) and ThreadComm
// (P virtual ranks on std::threads inside one process) — see DESIGN.md for
// why this substitutes for MPI on the paper's machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "base/error.hpp"

namespace hpgmx {

// 16-bit storage formats (src/precision/float16.hpp); registered with the
// collective engine so halo exchange and CGS2 allreduces move 2-byte
// payloads.
struct bf16_t;
struct fp16_t;

/// Reduction operator for collectives.
enum class ReduceOp { Sum, Max, Min };

namespace detail {

/// Type descriptor used to type-erase collectives through the virtual
/// interface while keeping the public API templated.
struct TypeOps {
  std::size_t size = 0;
  // Reduce n elements of `in` into `acc` elementwise with `op`.
  void (*reduce)(void* acc, const void* in, std::size_t n, ReduceOp op) =
      nullptr;
};

template <typename T>
const TypeOps& type_ops();

extern template const TypeOps& type_ops<float>();
extern template const TypeOps& type_ops<double>();
extern template const TypeOps& type_ops<bf16_t>();
extern template const TypeOps& type_ops<fp16_t>();
extern template const TypeOps& type_ops<std::int32_t>();
extern template const TypeOps& type_ops<std::int64_t>();
extern template const TypeOps& type_ops<std::uint64_t>();

}  // namespace detail

/// Handle for a nonblocking operation. wait() blocks until the transfer is
/// complete; destruction of an un-waited request waits implicitly so data
/// buffers never outlive their transfers.
class Request {
 public:
  class State {
   public:
    virtual ~State() = default;
    virtual void wait() = 0;
  };

  Request() = default;
  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}

  /// Block until complete. Idempotent.
  void wait() {
    if (state_) {
      state_->wait();
      state_.reset();
    }
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

  ~Request() { wait(); }
  Request(Request&&) = default;
  Request& operator=(Request&& other) noexcept {
    wait();
    state_ = std::move(other.state_);
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

 private:
  std::shared_ptr<State> state_;
};

/// Abstract communicator. All byte-level entry points are virtual; typed
/// convenience wrappers are non-virtual templates.
class Comm {
 public:
  virtual ~Comm() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  // -- point to point ------------------------------------------------------
  virtual void send_bytes(int dst, int tag, const void* data,
                          std::size_t bytes) = 0;
  virtual void recv_bytes(int src, int tag, void* data, std::size_t bytes) = 0;
  virtual Request isend_bytes(int dst, int tag, const void* data,
                              std::size_t bytes) = 0;
  virtual Request irecv_bytes(int src, int tag, void* data,
                              std::size_t bytes) = 0;

  // -- collectives ---------------------------------------------------------
  virtual void barrier() = 0;
  /// Deterministic allreduce: contributions are combined in rank order, so
  /// results are bit-identical across runs at fixed size().
  virtual void allreduce_bytes(const void* in, void* out, std::size_t n,
                               const detail::TypeOps& ops, ReduceOp op) = 0;
  /// Concatenate each rank's n elements into out (size n * size()).
  virtual void allgather_bytes(const void* in, void* out, std::size_t n,
                               const detail::TypeOps& ops) = 0;
  /// Broadcast root's n elements to all ranks.
  virtual void bcast_bytes(void* data, std::size_t n,
                           const detail::TypeOps& ops, int root) = 0;

  // -- typed wrappers ------------------------------------------------------
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    send_bytes(dst, tag, data.data(), data.size_bytes());
  }
  template <typename T>
  void recv(int src, int tag, std::span<T> data) {
    recv_bytes(src, tag, data.data(), data.size_bytes());
  }
  template <typename T>
  [[nodiscard]] Request isend(int dst, int tag, std::span<const T> data) {
    return isend_bytes(dst, tag, data.data(), data.size_bytes());
  }
  template <typename T>
  [[nodiscard]] Request irecv(int src, int tag, std::span<T> data) {
    return irecv_bytes(src, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
    HPGMX_CHECK(in.size() == out.size());
    allreduce_bytes(in.data(), out.data(), in.size(), detail::type_ops<T>(),
                    op);
  }

  /// Scalar allreduce convenience.
  template <typename T>
  [[nodiscard]] T allreduce_scalar(T value, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  template <typename T>
  void allgather(std::span<const T> in, std::span<T> out) {
    HPGMX_CHECK(out.size() == in.size() * static_cast<std::size_t>(size()));
    allgather_bytes(in.data(), out.data(), in.size(), detail::type_ops<T>());
  }

  template <typename T>
  void bcast(std::span<T> data, int root) {
    bcast_bytes(data.data(), data.size(), detail::type_ops<T>(), root);
  }
};

/// Single-rank communicator: collectives are copies, self-messaging works
/// through an internal queue. Used for serial runs and unit tests.
class SelfComm final : public Comm {
 public:
  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int size() const override { return 1; }

  void send_bytes(int dst, int tag, const void* data,
                  std::size_t bytes) override;
  void recv_bytes(int src, int tag, void* data, std::size_t bytes) override;
  Request isend_bytes(int dst, int tag, const void* data,
                      std::size_t bytes) override;
  Request irecv_bytes(int src, int tag, void* data, std::size_t bytes) override;

  void barrier() override {}
  void allreduce_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops, ReduceOp op) override;
  void allgather_bytes(const void* in, void* out, std::size_t n,
                       const detail::TypeOps& ops) override;
  void bcast_bytes(void*, std::size_t, const detail::TypeOps&, int) override {}

 private:
  struct Pending {
    int tag;
    std::vector<std::byte> data;
  };
  std::vector<Pending> queue_;
};

}  // namespace hpgmx
