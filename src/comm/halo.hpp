// Halo (ghost-layer) exchange for domain-decomposed vectors.
//
// A distributed vector on a rank has layout [owned | halo]: the first
// n_owned entries are the rank's rows; the halo region holds copies of
// neighbor-owned entries this rank's stencil reads. The pattern (who sends
// what to whom) is geometric and is built by grid::build_halo_pattern; both
// sides of a pair order the shared points by global index, so no negotiation
// messages are needed.
//
// The split-phase API (begin/finish) is the substrate for the paper's
// compute–communication overlap (§3.2.3): begin() packs and posts the
// transfers, the caller smooths/multiplies interior rows, finish() completes
// the transfers before boundary rows are processed.
#pragma once

#include <bit>
#include <span>
#include <string_view>
#include <vector>

#include "base/aligned_vector.hpp"
#include "base/epoch.hpp"
#include "base/error.hpp"
#include "base/event_sink.hpp"
#include "base/fault.hpp"
#include "base/types.hpp"
#include "comm/comm.hpp"

namespace hpgmx {

/// One neighbor's worth of a halo pattern.
struct HaloNeighbor {
  int rank = -1;
  /// Owned local indices to copy into the send buffer, ordered by global id.
  AlignedVector<local_index_t> send_indices;
  /// Where this neighbor's data lands inside the halo region (offset from
  /// n_owned) and how many entries it contributes.
  local_index_t recv_offset = 0;
  local_index_t recv_count = 0;
};

/// Complete halo pattern for one level of one rank's subdomain.
struct HaloPattern {
  local_index_t n_owned = 0;
  local_index_t n_halo = 0;
  std::vector<HaloNeighbor> neighbors;

  [[nodiscard]] local_index_t total_send_count() const {
    local_index_t total = 0;
    for (const auto& nb : neighbors) {
      total += static_cast<local_index_t>(nb.send_indices.size());
    }
    return total;
  }

  /// Total vector length a rank must allocate: owned + halo entries.
  [[nodiscard]] local_index_t vector_length() const { return n_owned + n_halo; }
};

/// Executes halo exchanges for one value type over a fixed pattern. Owns the
/// send buffers so repeated exchanges do not allocate.
template <typename T>
class HaloExchange {
 public:
  /// `tag` namespaces messages so exchanges on different multigrid levels
  /// never match each other's traffic.
  HaloExchange(const HaloPattern* pattern, int tag)
      : pattern_(pattern), tag_(tag) {
    HPGMX_CHECK(pattern != nullptr);
    send_buffers_.resize(pattern->neighbors.size());
    for (std::size_t n = 0; n < pattern->neighbors.size(); ++n) {
      send_buffers_[n].resize(pattern->neighbors[n].send_indices.size());
    }
  }

  [[nodiscard]] const HaloPattern& pattern() const { return *pattern_; }

  /// Enable (non-null) or disable (null) SDC checksums. With a monitor
  /// attached, every message carries one extra T element — the additive
  /// checksum of its payload bit patterns — receives land in staging
  /// buffers, and finish() verifies before copying the payload into the
  /// halo region; a mismatch flags the monitor. Both endpoints of a pair
  /// must agree on the mode (message lengths differ by one element), which
  /// the service guarantees by applying one policy to every rank. On clean
  /// runs the staged copy delivers byte-identical halo contents, so
  /// detection-on results stay bit-identical to detection-off.
  void set_sdc_monitor(SdcMonitor* monitor) {
    HPGMX_CHECK_MSG(!in_flight_, "set_sdc_monitor() during an exchange");
    sdc_ = monitor;
    const std::size_t extra = monitor != nullptr ? 1 : 0;
    for (std::size_t n = 0; n < pattern_->neighbors.size(); ++n) {
      send_buffers_[n].resize(pattern_->neighbors[n].send_indices.size() +
                              extra);
    }
    recv_buffers_.clear();
    if (monitor != nullptr) {
      recv_buffers_.resize(pattern_->neighbors.size());
      for (std::size_t n = 0; n < pattern_->neighbors.size(); ++n) {
        recv_buffers_[n].resize(
            static_cast<std::size_t>(pattern_->neighbors[n].recv_count) + 1);
      }
    }
  }

  /// Blocking exchange: pack, post, wait, all in one call.
  void exchange(Comm& comm, std::span<T> x,
                EventSink* sink = &null_event_sink()) {
    begin(comm, x, sink);
    finish(comm, sink);
  }

  /// Pack boundary entries of x and post all sends/receives. x must have
  /// pattern().vector_length() entries. After begin(), the caller may write
  /// to owned entries of x (including the packed boundary entries — the
  /// event semantics of §3.2.3) but must not read the halo region until
  /// finish() returns.
  void begin(Comm& comm, std::span<T> x, EventSink* sink = &null_event_sink()) {
    HPGMX_CHECK(static_cast<local_index_t>(x.size()) >=
                pattern_->vector_length());
    HPGMX_CHECK_MSG(!in_flight_, "begin() called twice without finish()");
    const double t_pack0 = epoch_seconds();
    for (std::size_t n = 0; n < pattern_->neighbors.size(); ++n) {
      const HaloNeighbor& nb = pattern_->neighbors[n];
      AlignedVector<T>& buf = send_buffers_[n];
      for (std::size_t k = 0; k < nb.send_indices.size(); ++k) {
        buf[k] = x[static_cast<std::size_t>(nb.send_indices[k])];
      }
      if (sdc_ != nullptr) {
        buf[nb.send_indices.size()] =
            additive_checksum(buf.data(), nb.send_indices.size());
      }
    }
    const double t_pack1 = epoch_seconds();
    sink->record(comm.rank(), "halo", "pack", t_pack0, t_pack1);

    // Post every receive before any send. A blocking send-first ordering
    // deadlocks on rendezvous-protocol backends (MPI beyond the eager-size
    // threshold: both sides would sit in send with no receive posted);
    // receives-first with nonblocking sends is the portable schedule. The
    // in-process backends complete sends eagerly, so for them this is just
    // a reordering of the identical transfers.
    recv_requests_.clear();
    recv_requests_.reserve(pattern_->neighbors.size());
    halo_base_ = x.data() + pattern_->n_owned;
    for (std::size_t n = 0; n < pattern_->neighbors.size(); ++n) {
      const HaloNeighbor& nb = pattern_->neighbors[n];
      // Checksummed receives land in staging (payload + checksum) and are
      // verified, then copied into the halo, in finish(); plain receives
      // keep the zero-copy landing directly in x's halo region.
      T* recv_ptr = sdc_ != nullptr
                        ? recv_buffers_[n].data()
                        : halo_base_ + static_cast<std::size_t>(nb.recv_offset);
      const std::size_t recv_len =
          static_cast<std::size_t>(nb.recv_count) + (sdc_ != nullptr ? 1 : 0);
      recv_requests_.push_back(
          comm.irecv(nb.rank, tag_, std::span<T>(recv_ptr, recv_len)));
    }
    send_requests_.clear();
    send_requests_.reserve(pattern_->neighbors.size());
    for (std::size_t n = 0; n < pattern_->neighbors.size(); ++n) {
      const HaloNeighbor& nb = pattern_->neighbors[n];
      send_requests_.push_back(
          comm.isend(nb.rank, tag_, std::span<const T>(send_buffers_[n])));
    }
    const double t_post1 = epoch_seconds();
    sink->record(comm.rank(), "halo", "post", t_pack1, t_post1);
    t_begin_done_ = t_post1;
    in_flight_ = true;
  }

  /// Complete all posted receives; afterwards the halo region of x is valid.
  void finish(Comm& comm, EventSink* sink = &null_event_sink()) {
    HPGMX_CHECK_MSG(in_flight_, "finish() without begin()");
    const double t0 = epoch_seconds();
    // The transfers progressed between begin() and now — the in-flight
    // window that interior compute can hide (Fig. 9's overlap).
    sink->record(comm.rank(), "halo", "xfer", t_begin_done_, t0);
    for (auto& req : recv_requests_) {
      req.wait();
    }
    recv_requests_.clear();
    if (sdc_ != nullptr) {
      using U = uint_bits_t<T>;
      for (std::size_t n = 0; n < pattern_->neighbors.size(); ++n) {
        const HaloNeighbor& nb = pattern_->neighbors[n];
        const AlignedVector<T>& buf = recv_buffers_[n];
        const std::size_t count = static_cast<std::size_t>(nb.recv_count);
        const T computed = additive_checksum(buf.data(), count);
        if (std::bit_cast<U>(computed) != std::bit_cast<U>(buf[count])) {
          sdc_->flag_checksum();
        }
        // Deliver the payload even on mismatch: the verdict lane, not this
        // rank alone, decides the rollback, so every rank must keep walking
        // the same deterministic path until the reduced verdict lands.
        T* dst = halo_base_ + static_cast<std::size_t>(nb.recv_offset);
        for (std::size_t k = 0; k < count; ++k) {
          dst[k] = buf[k];
        }
      }
    }
    // Sends must also complete before the epoch closes: the next begin()
    // repacks send_buffers_, which a still-in-flight MPI isend may be
    // reading from.
    for (auto& req : send_requests_) {
      req.wait();
    }
    send_requests_.clear();
    in_flight_ = false;
    const double t1 = epoch_seconds();
    sink->record(comm.rank(), "halo", "wait", t0, t1);
  }

  /// True between begin() and finish() — the epoch guard tests probe this.
  [[nodiscard]] bool in_flight() const { return in_flight_; }

  /// Bytes moved over the (virtual) network by one exchange, both
  /// directions. With checksums enabled each message carries one extra T —
  /// the whole cost model of the detection layer.
  [[nodiscard]] std::size_t bytes_per_exchange() const {
    std::size_t bytes = 0;
    for (const auto& nb : pattern_->neighbors) {
      bytes += (nb.send_indices.size() +
                static_cast<std::size_t>(nb.recv_count)) *
               sizeof(T);
    }
    if (sdc_ != nullptr) {
      bytes += 2 * pattern_->neighbors.size() * sizeof(T);
    }
    return bytes;
  }

 private:
  const HaloPattern* pattern_;
  int tag_;
  std::vector<AlignedVector<T>> send_buffers_;
  std::vector<AlignedVector<T>> recv_buffers_;  ///< checksum-mode staging
  std::vector<Request> recv_requests_;
  std::vector<Request> send_requests_;
  SdcMonitor* sdc_ = nullptr;
  T* halo_base_ = nullptr;  ///< x.data() + n_owned, retained from begin()
  bool in_flight_ = false;
  double t_begin_done_ = 0.0;
};

}  // namespace hpgmx
