#include "comm/thread_comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

namespace hpgmx {

int ThreadComm::size() const { return world_->size(); }

void ThreadComm::send_bytes(int dst, int tag, const void* data,
                            std::size_t bytes) {
  HPGMX_CHECK_MSG(dst >= 0 && dst < world_->size(), "invalid destination rank");
  ThreadCommWorld::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  std::memcpy(msg.data.data(), data, bytes);
  world_->post_message(dst, std::move(msg));
}

void ThreadComm::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  HPGMX_CHECK_MSG(src >= 0 && src < world_->size(), "invalid source rank");
  world_->match_receive(rank_, src, tag, data, bytes);
}

namespace {

class CompletedRequest final : public Request::State {
 public:
  void wait() override {}
};

/// Progress for a threaded irecv happens at wait(): the matching eager send
/// has (or will have) deposited the payload in this rank's mailbox, so the
/// wait is a blocking match + copy. Transfer of bytes genuinely overlaps with
/// the receiver's compute because the *sender* thread runs concurrently.
class ThreadRecvRequest final : public Request::State {
 public:
  ThreadRecvRequest(Comm* comm, int src, int tag, void* data,
                    std::size_t bytes)
      : comm_(comm), src_(src), tag_(tag), data_(data), bytes_(bytes) {}
  void wait() override { comm_->recv_bytes(src_, tag_, data_, bytes_); }

 private:
  Comm* comm_;
  int src_;
  int tag_;
  void* data_;
  std::size_t bytes_;
};

}  // namespace

Request ThreadComm::isend_bytes(int dst, int tag, const void* data,
                                std::size_t bytes) {
  send_bytes(dst, tag, data, bytes);  // eager: buffered and complete
  return Request(std::make_shared<CompletedRequest>());
}

Request ThreadComm::irecv_bytes(int src, int tag, void* data,
                                std::size_t bytes) {
  HPGMX_CHECK_MSG(src >= 0 && src < world_->size(), "invalid source rank");
  return Request(
      std::make_shared<ThreadRecvRequest>(this, src, tag, data, bytes));
}

void ThreadComm::barrier() {
  world_->collective(rank_, nullptr, 0, nullptr, 0,
                     [](ThreadCommWorld::CollectiveState&) {});
}

void ThreadComm::allreduce_bytes(const void* in, void* out, std::size_t n,
                                 const detail::TypeOps& ops, ReduceOp op) {
  const std::size_t bytes = n * ops.size;
  world_->collective(
      rank_, in, bytes, out, bytes,
      [n, &ops, op, bytes](ThreadCommWorld::CollectiveState& st) {
        st.result.assign(st.slots[0].begin(), st.slots[0].end());
        for (std::size_t r = 1; r < st.slots.size(); ++r) {
          HPGMX_CHECK(st.slots[r].size() == bytes);
          ops.reduce(st.result.data(), st.slots[r].data(), n, op);
        }
      });
}

void ThreadComm::allgather_bytes(const void* in, void* out, std::size_t n,
                                 const detail::TypeOps& ops) {
  const std::size_t bytes = n * ops.size;
  world_->collective(
      rank_, in, bytes, out, bytes * static_cast<std::size_t>(size()),
      [bytes](ThreadCommWorld::CollectiveState& st) {
        st.result.clear();
        for (const auto& slot : st.slots) {
          HPGMX_CHECK(slot.size() == bytes);
          st.result.insert(st.result.end(), slot.begin(), slot.end());
        }
      });
}

void ThreadComm::bcast_bytes(void* data, std::size_t n,
                             const detail::TypeOps& ops, int root) {
  const std::size_t bytes = n * ops.size;
  // Every rank contributes its buffer; the combiner publishes the root's.
  world_->collective(rank_, data, bytes, data, bytes,
                     [root](ThreadCommWorld::CollectiveState& st) {
                       st.result = st.slots[static_cast<std::size_t>(root)];
                     });
}

ThreadCommWorld::ThreadCommWorld(int size) : size_(size) {
  HPGMX_CHECK_MSG(size >= 1, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  coll_.slots.resize(static_cast<std::size_t>(size));
}

ThreadCommWorld::~ThreadCommWorld() = default;

void ThreadCommWorld::post_message(int dst, Message msg) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void ThreadCommWorld::match_receive(int self, int src, int tag, void* data,
                                    std::size_t bytes) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [src, tag](const Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.messages.end()) {
      HPGMX_CHECK_MSG(it->data.size() == bytes,
                      "message size mismatch: expected "
                          << bytes << " got " << it->data.size());
      std::memcpy(data, it->data.data(), bytes);
      box.messages.erase(it);
      return;
    }
    box.cv.wait(lock);
  }
}

void ThreadCommWorld::collective(
    int self, const void* in, std::size_t in_bytes, void* out,
    std::size_t out_bytes,
    const std::function<void(CollectiveState&)>& combine) {
  std::unique_lock<std::mutex> lock(coll_.mutex);
  auto& slot = coll_.slots[static_cast<std::size_t>(self)];
  slot.resize(in_bytes);
  if (in_bytes > 0) {
    std::memcpy(slot.data(), in, in_bytes);
  }
  ++coll_.arrived;
  const std::uint64_t my_generation = coll_.generation;
  if (coll_.arrived == size_) {
    combine(coll_);
    coll_.arrived = 0;
    ++coll_.generation;
    coll_.cv.notify_all();
  } else {
    coll_.cv.wait(lock, [this, my_generation] {
      return coll_.generation != my_generation;
    });
  }
  if (out_bytes > 0) {
    HPGMX_CHECK(coll_.result.size() >= out_bytes);
    std::memcpy(out, coll_.result.data(), out_bytes);
  }
}

void ThreadCommWorld::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
        ThreadComm comm(this, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

void ThreadCommWorld::execute(int size, const std::function<void(Comm&)>& fn) {
  ThreadCommWorld world(size);
  world.run(fn);
}

}  // namespace hpgmx
