// SolverService: the solver-as-a-service layer. Clients submit()
// (descriptor, batch-of-RHS) requests and get a std::future ticket; a pool
// of worker threads drains a bounded queue, resolves each request's
// operator/hierarchy through the shared OperatorCache, and runs the
// requested solver (double GMRES, mixed-precision GMRES-IR, or CG) over all
// B right-hand sides with one setup. Backpressure: submit() blocks while
// the queue is at capacity. shutdown() drains outstanding requests, then
// joins the pool; submitting afterwards throws.
//
// Determinism: a request's results depend only on its descriptor and RHS
// batch — never on queue order, worker identity, or cache state. Cached
// hierarchies are bit-identical to fresh builds, and the SPMD solve inside
// a worker uses the same rank-ordered deterministic reductions as the
// benchmark driver, so N concurrent submissions of one request yield N
// bitwise-equal results (tests/test_service.cpp asserts this).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/gmres.hpp"
#include "precision/precision.hpp"
#include "service/operator_cache.hpp"

namespace hpgmx {

struct ServiceConfig {
  int workers = 2;                 ///< solver worker threads
  std::size_t queue_capacity = 16; ///< pending requests before submit() blocks
  std::size_t cache_entries = 8;   ///< OperatorCache LRU capacity

  /// HPGMX_SERVICE_WORKERS, HPGMX_SERVICE_QUEUE, HPGMX_SERVICE_CACHE.
  [[nodiscard]] static ServiceConfig from_env();
};

struct SolveRequest {
  ProblemDescriptor desc;
  int num_rhs = 1;
  /// RHS batch shape: column j solves b_j = (1 + j·rhs_spread) · b where
  /// b = A·1 is the benchmark RHS (0 = B identical systems).
  double rhs_spread = 0.0;
};

struct ServiceResult {
  std::uint64_t descriptor_hash = 0;
  bool cache_hit = false;
  double setup_seconds = 0.0;  ///< operator acquisition (≈0 on a hit)
  double solve_seconds = 0.0;  ///< solver construction + all-RHS solve wall
  /// Per-RHS outcome, rank-uniform (every stopping decision is
  /// allreduce-derived).
  std::vector<SolveResult> rhs;
  /// Realized per-cycle inner formats of a GMRES-IR request, across the
  /// whole RHS batch in execution order — what the adaptive controller
  /// actually ran (static requests report their configured format per
  /// cycle; Gmres/CG leave this empty). Rank-uniform like every other
  /// controller decision.
  std::vector<Precision> realized_precisions;

  [[nodiscard]] bool all_converged() const {
    for (const SolveResult& r : rhs) {
      if (!r.converged) {
        return false;
      }
    }
    return !rhs.empty();
  }
};

class SolverService {
 public:
  explicit SolverService(ServiceConfig cfg = {});
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueue a request; blocks while the queue is full (backpressure).
  /// The future resolves when a worker finishes the solve (or carries the
  /// worker's exception). Throws after shutdown().
  [[nodiscard]] std::future<ServiceResult> submit(SolveRequest req);

  /// Drain every queued request, then stop and join the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Synchronous solve on the caller's thread, through the same cache and
  /// execution path as the queue (the exhibits' cold/warm reference).
  [[nodiscard]] ServiceResult solve_now(const SolveRequest& req) {
    return execute(req);
  }

  [[nodiscard]] OperatorCacheStats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

 private:
  struct Item {
    SolveRequest req;
    std::promise<ServiceResult> promise;
  };

  void worker_loop();
  [[nodiscard]] ServiceResult execute(const SolveRequest& req);

  ServiceConfig cfg_;
  OperatorCache cache_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Item> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hpgmx
