// SolverService: the solver-as-a-service layer. Clients submit()
// (descriptor, batch-of-RHS) requests and get a std::future ticket; a pool
// of worker threads drains a bounded queue, resolves each request's
// operator/hierarchy through the shared OperatorCache, and runs the
// requested solver (double GMRES, mixed-precision GMRES-IR, or CG) over all
// B right-hand sides with one setup. Backpressure: submit() blocks while
// the queue is at capacity (try_submit bounds the wait). shutdown() drains
// outstanding requests, wakes any caller still blocked in backpressure,
// then joins the pool; submitting afterwards throws (submit) or returns
// nullopt (try_submit).
//
// Resilience (docs/RESILIENCE.md): every result carries a structured
// SolveStatus instead of a bare bool; requests may attach a Deadline and a
// shared CancelToken whose rank-consistent trip rides the solvers' existing
// packed reductions (base/cancel.hpp); a RetryPolicy re-executes a
// non_finite/stagnated GMRES-IR request once per rung at a promoted inner
// precision — warm descriptor (the cached hierarchy is precision-
// independent and is reused directly), cold iterate — recording the ladder
// in ServiceResult::attempts; and a ChaosConfig wraps each worker rank's
// Comm in the deterministic fault injector (comm/chaos.hpp).
//
// Determinism: a request's results depend only on its descriptor and RHS
// batch — never on queue order, worker identity, or cache state. Cached
// hierarchies are bit-identical to fresh builds, and the SPMD solve inside
// a worker uses the same rank-ordered deterministic reductions as the
// benchmark driver, so N concurrent submissions of one request yield N
// bitwise-equal results (tests/test_service.cpp asserts this). Chaos
// perturbs timing and message order, never values, so results stay
// bit-identical under it too.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "base/cancel.hpp"
#include "comm/chaos.hpp"
#include "core/gmres.hpp"
#include "precision/precision.hpp"
#include "service/operator_cache.hpp"

namespace hpgmx {

/// Failure-recovery policy for the service: a GMRES-IR request that ends
/// non_finite or stagnated below the top rung is re-executed at the next
/// wider inner precision (fp16 → bf16 → fp32 → fp64), at most max_retries
/// times per request. Adaptive requests climb their own ladder in-solve and
/// are not retried. Deadline/cancel trips are never retried, and neither is
/// corrupted — an exhausted SDC recovery budget means rollback already
/// failed repeatedly, which a format promotion does not address.
struct RetryPolicy {
  bool enabled = true;
  int max_retries = 1;

  /// HPGMX_RETRY (0 disables), HPGMX_RETRY_MAX.
  [[nodiscard]] static RetryPolicy from_env();
};

struct ServiceConfig {
  int workers = 2;                 ///< solver worker threads
  std::size_t queue_capacity = 16; ///< pending requests before submit() blocks
  std::size_t cache_entries = 8;   ///< OperatorCache LRU capacity
  /// Build-cost-aware cache admission multiple (HPGMX_CACHE_ADMIT); 0 keeps
  /// pure LRU. See OperatorCache.
  double cache_admit = 0.0;
  RetryPolicy retry;               ///< promoted-retry policy
  ChaosConfig chaos;               ///< timing/ordering chaos (off by default)
  FaultConfig fault;               ///< SDC value-fault injection (off)
  SdcPolicy sdc;                   ///< SDC detection/recovery policy (off)

  /// HPGMX_SERVICE_WORKERS, HPGMX_SERVICE_QUEUE, HPGMX_SERVICE_CACHE,
  /// HPGMX_CACHE_ADMIT, plus RetryPolicy/ChaosConfig/FaultConfig/SdcPolicy
  /// ::from_env.
  [[nodiscard]] static ServiceConfig from_env();
};

struct SolveRequest {
  ProblemDescriptor desc;
  int num_rhs = 1;
  /// RHS batch shape: column j solves b_j = (1 + j·rhs_spread) · b where
  /// b = A·1 is the benchmark RHS (0 = B identical systems).
  double rhs_spread = 0.0;
  /// Wall-clock budget for the whole request, retries included; the default
  /// never expires. The solve exits cooperatively (status
  /// deadline_exceeded) at the same iteration on every rank.
  Deadline deadline{};
  /// Optional cancellation token, shared so the client can trip it from any
  /// thread after submitting; the solve exits with status cancelled.
  std::shared_ptr<CancelToken> cancel;
};

/// One execution of a request at one precision configuration — the entries
/// of ServiceResult::attempts, recording the retry ladder.
struct AttemptRecord {
  /// Configured inner entry format of the attempt (fp64 for Gmres/CG).
  Precision precision = Precision::Fp64;
  SolveStatus status = SolveStatus::Rejected;
  int iterations = 0;               ///< total Arnoldi steps over the batch
  int recoveries = 0;               ///< SDC rollbacks summed over the batch
  double relative_residual = 0.0;   ///< worst (max) across the batch
};

struct ServiceResult {
  std::uint64_t descriptor_hash = 0;
  bool cache_hit = false;
  /// Aggregate outcome of the served (final) attempt: the worst per-RHS
  /// status, priority cancelled > deadline_exceeded > non_finite >
  /// stagnated > converged; rejected for requests refused before solving.
  SolveStatus status = SolveStatus::Rejected;
  double setup_seconds = 0.0;  ///< operator acquisition (≈0 on a hit)
  double solve_seconds = 0.0;  ///< solver construction + all-RHS solve wall
  /// SDC rollbacks of the served attempt, summed over the RHS batch
  /// (rank-uniform — every rollback decision is allreduce-derived).
  int recoveries = 0;
  /// Per-RHS outcome of the served attempt, rank-uniform (every stopping
  /// decision is allreduce-derived).
  std::vector<SolveResult> rhs;
  /// Realized per-cycle inner formats of a GMRES-IR request, across the
  /// whole RHS batch in execution order — what the adaptive controller
  /// actually ran (static requests report their configured format per
  /// cycle; Gmres/CG leave this empty). Rank-uniform like every other
  /// controller decision. On a retried request this reports the served
  /// attempt; `attempts` records the full ladder.
  std::vector<Precision> realized_precisions;
  /// Every attempt in execution order (size 1 without retries). A promoted
  /// retry appends a second record, so degradation is observable.
  std::vector<AttemptRecord> attempts;

  [[nodiscard]] bool all_converged() const {
    return status == SolveStatus::Converged;
  }
};

/// Worst-status aggregation used for ServiceResult::status (Rejected for an
/// empty batch — a zero-RHS request never reaches a solver).
[[nodiscard]] SolveStatus aggregate_status(const std::vector<SolveResult>& rhs);

class SolverService {
 public:
  explicit SolverService(ServiceConfig cfg = {});
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueue a request; blocks while the queue is full (backpressure) but
  /// wakes — and throws — if shutdown() begins while waiting. The future
  /// resolves when a worker finishes the solve (or carries the worker's
  /// exception). A request with num_rhs < 1 is not enqueued: its future is
  /// already resolved with status rejected. Throws after shutdown().
  [[nodiscard]] std::future<ServiceResult> submit(SolveRequest req);

  /// Bounded-wait submit: like submit(), but gives up after `timeout` in
  /// backpressure and returns std::nullopt instead of blocking forever.
  /// Also returns nullopt (never throws) when the service is shutting
  /// down. Zero-RHS requests resolve immediately with status rejected.
  [[nodiscard]] std::optional<std::future<ServiceResult>> try_submit(
      SolveRequest req, std::chrono::milliseconds timeout);

  /// Drain every queued request, then stop and join the workers; any
  /// request still queued after the drain (defensive: a worker died) is
  /// resolved with status cancelled so no future is ever abandoned.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Synchronous solve on the caller's thread, through the same cache and
  /// execution path as the queue (the exhibits' cold/warm reference).
  [[nodiscard]] ServiceResult solve_now(const SolveRequest& req) {
    return execute(req);
  }

  [[nodiscard]] OperatorCacheStats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] bool shutting_down() const;

 private:
  struct Item {
    SolveRequest req;
    std::promise<ServiceResult> promise;
  };

  void worker_loop();
  [[nodiscard]] ServiceResult execute(const SolveRequest& req);
  /// One solve of `req` with descriptor `d` against the (precision-
  /// independent) cached entry; appends the AttemptRecord and installs the
  /// per-RHS results into `out`.
  void run_attempt(const ProblemDescriptor& d, const SolveRequest& req,
                   const std::shared_ptr<const OperatorCache::Entry>& entry,
                   const SolveControl& control, ServiceResult& out);
  [[nodiscard]] static std::future<ServiceResult> rejected_future(
      const SolveRequest& req);

  ServiceConfig cfg_;
  OperatorCache cache_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Item> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hpgmx
